# Convenience targets around dune.

.PHONY: all build test check bench metrics fleet faults perf engines \
	validate sim respond clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 gate plus a telemetry smoke run: build, full test suite, and one
# interpreted program under CSOD with metrics on (must detect and print
# the METRICS / CYCLE ATTRIBUTION tables).
check:
	dune build
	dune runtest
	dune exec bin/csod_run.exe -- exec examples/demo.mc --input 12 --tool csod --metrics

bench:
	dune exec bench/main.exe

# Machine-readable JSONL telemetry for every workload (stdout only).
metrics:
	@dune exec bench/main.exe -- metrics

# Fleet bench: serial vs. parallel wall clock plus a determinism
# re-check, one csod.bench.fleet/1 JSONL row per app (stdout only).
fleet:
	@dune exec bench/main.exe -- fleet

# Resilience bench: sweep the deterministic fault injector over a range
# of rates, one csod.bench.resilience/1 JSONL row per (app, rate) — the
# detection-rate-vs-fault-rate curve (stdout only).
faults:
	@dune exec bench/main.exe -- resilience

# Throughput bench: real ns/op of the hot paths (malloc, free, read,
# write, trap), shipped vs. reference implementations measured in the
# same process, one csod.bench.throughput/1 JSONL row per (op, mode)
# (stdout only).  BENCH_THROUGHPUT.jsonl holds a committed baseline.
perf:
	@dune exec bench/main.exe -- throughput

# Engine bench: end-to-end executions/sec of the AST interpreter vs the
# bytecode VM over app and pure-compute kernel workloads, one
# csod.bench.exec/1 JSONL row per (workload, mode) (stdout only).
engines:
	@dune exec bench/main.exe -- exec

# Event-stream hygiene: the JSONL emitted by --events must be one JSON
# object per line, never a torn line.
validate:
	dune exec bin/csod_run.exe -- run heartbleed --seed 3 --events /tmp/csod_events.jsonl > /dev/null
	tools/validate_jsonl.sh /tmp/csod_events.jsonl

# Bounded simulation sweep: ~2k weighted operation sequences across the
# five stack-layer alphabets (heap+sparse memory, runtime, fleet, store,
# respond),
# model invariants checked after every step, counterexamples shrunk and
# printed as runnable csod.sim.repro/1 lines (non-zero exit on failure).
# The committed planted-bug repro must also keep replaying bit-identically.
sim:
	dune exec bin/csod_run.exe -- sim --seed 1 --runs 500 --ops 60
	dune exec bin/csod_run.exe -- sim --replay examples/sim/planted.repro.jsonl

# Survival smoke: Heartbleed under the failure-oblivious policy must run
# to completion (exit 0) with at least one redirect recorded as a
# csod.respond.event/1 line, and a short zziplib service with code-less
# patching armed must fire and then clear a patch alert once fleet
# evidence convicts the overflowing context.
respond:
	dune exec bin/csod_run.exe -- run heartbleed --seed 1 --respond oblivious --events /tmp/csod_respond.jsonl > /dev/null
	grep -q '"kind":"redirect-' /tmp/csod_respond.jsonl
	tools/validate_jsonl.sh /tmp/csod_respond.jsonl
	dune exec bin/csod_run.exe -- serve zziplib --users 200 --epoch 32 --epochs 12 --domains 2 --seed 1 --respond patch=3 --alerts 'patch>0@2' > /tmp/csod_respond_serve.out
	grep -q 'patch>0@2 FIRING' /tmp/csod_respond_serve.out
	grep -q 'patch>0@2 cleared' /tmp/csod_respond_serve.out

clean:
	dune clean
