(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section V), plus the ablation study and Bechamel timings of
   the runtime's real hot paths.

     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- table2 --runs 200
     dune exec bench/main.exe -- fig7 micro

   Commands: table1 table2 table3 table4 table5 fig6 fig7 evidence fleet
   ablate syscalls micro.  `--runs N` controls the Table II / ablation execution
   counts (default 1000 / 200, as in the paper).

   `metrics` is an extra, explicit-only target (not part of the default
   everything run): it prints one JSONL record per workload with the run's
   metrics registry and cycle attribution — machine-readable counterparts
   of the tables above.  Schema: csod.bench.metrics/2.

   `fleet`, when requested by name, likewise switches to JSONL: each row
   (schema csod.bench.fleet/1) runs the parallel fleet simulator with 1
   domain and with a domain pool, checks the two reports are identical,
   and records the measured wall-clock speedup.  In the default
   everything run it prints the human-readable first-detection table
   instead.

   `resilience` (explicit-only, JSONL) sweeps the deterministic fault
   injector over a range of rates and emits one csod.bench.resilience/1
   row per (app, rate): the detection-rate-vs-fault-rate curve.

   `throughput` (explicit-only, JSONL) times the single-execution hot
   paths — malloc, free, read, write, trap — in real nanoseconds, both as
   shipped and with the hot-path optimizations toggled back to their
   reference implementations, and emits one csod.bench.throughput/1 row
   per (op, mode) with the measured speedup.  This is the `make perf`
   target.

   `exec` (explicit-only, JSONL) times end-to-end executions/sec of the
   AST interpreter against the bytecode VM over app and pure-compute
   kernel workloads, serial and metrics modes, and emits one
   csod.bench.exec/1 row per (workload, mode) with the vm-over-interp
   speedup.  This is the `make engines` target. *)

let progress fmt = Printf.ksprintf (fun s -> Printf.eprintf "  .. %s\n%!" s) fmt

let section title = Printf.printf "\n==== %s ====\n\n%!" title

(* ------------------------------------------------------------------ *)
(* Table I                                                             *)

let table1 () =
  section "Table I: applications used for effectiveness evaluation";
  let t =
    Table_fmt.create ~title:"TABLE I"
      ~columns:[ ("Application", Table_fmt.Left); ("Vulnerability", Table_fmt.Left);
                 ("Reference", Table_fmt.Left) ]
  in
  List.iter
    (fun (r : Characteristics.table1_row) ->
      Table_fmt.add_row t [ r.Characteristics.app; r.Characteristics.vulnerability;
                            r.Characteristics.reference ])
    (Characteristics.table1 ());
  Table_fmt.print t

(* ------------------------------------------------------------------ *)
(* Table II                                                            *)

(* Paper values for side-by-side comparison (out of 1,000). *)
let paper_table2 =
  [ ("Gzip", (1000, 1000, 1000)); ("Heartbleed", (0, 364, 396));
    ("Libdwarf", (1000, 480, 459)); ("LibHX", (1000, 929, 885));
    ("Libtiff", (1000, 1000, 1000)); ("Memcached", (0, 163, 183));
    ("MySQL", (0, 161, 174)); ("Polymorph", (1000, 1000, 1000));
    ("Zziplib", (0, 110, 102)) ]

let table2 ~runs () =
  section
    (Printf.sprintf "Table II: detections out of %d executions per policy" runs);
  let rows = Effectiveness.table2 ~runs ~progress:(progress "%s") () in
  let t =
    Table_fmt.create
      ~title:"TABLE II (paper values, scaled to the run count, in brackets)"
      ~columns:[ ("Application", Table_fmt.Left); ("Naive", Table_fmt.Right);
                 ("Random", Table_fmt.Right); ("Near-FIFO", Table_fmt.Right) ]
  in
  List.iter
    (fun (r : Effectiveness.row) ->
      let pn, pr, pf =
        match List.assoc_opt r.Effectiveness.app_name paper_table2 with
        | Some (a, b, c) -> (a * runs / 1000, b * runs / 1000, c * runs / 1000)
        | None -> (0, 0, 0)
      in
      Table_fmt.add_row t
        [ r.Effectiveness.app_name;
          Printf.sprintf "%d [%d]" r.Effectiveness.naive pn;
          Printf.sprintf "%d [%d]" r.Effectiveness.random pr;
          Printf.sprintf "%d [%d]" r.Effectiveness.near_fifo pf ])
    rows;
  Table_fmt.add_separator t;
  let an, ar, af = Effectiveness.average_rate rows in
  Table_fmt.add_row t
    [ "Average rate"; Table_fmt.fmt_percent an; Table_fmt.fmt_percent ar;
      Table_fmt.fmt_percent af ];
  Table_fmt.print t;
  Printf.printf
    "Paper: random and near-FIFO detect between 10%% and 100%% per app, 58%% on average.\n"

(* ------------------------------------------------------------------ *)
(* Table III                                                           *)

let paper_table3 =
  [ ("Gzip", (1, 1, 1, 1)); ("Heartbleed", (307, 5403, 273, 5392));
    ("Libdwarf", (26, 152, 24, 147)); ("LibHX", (4, 5, 1, 1));
    ("Libtiff", (1, 1, 1, 1)); ("Memcached", (74, 442, 74, 442));
    ("MySQL", (488, 57464, 445, 57356)); ("Polymorph", (1, 1, 1, 1));
    ("Zziplib", (13, 17, 13, 17)) ]

let table3 () =
  section "Table III: allocation census of the buggy applications (oracle runs)";
  let t =
    Table_fmt.create ~title:"TABLE III (paper values in brackets)"
      ~columns:[ ("Application", Table_fmt.Left);
                 ("Contexts", Table_fmt.Right); ("Allocations", Table_fmt.Right);
                 ("Ctx before", Table_fmt.Right); ("Allocs before", Table_fmt.Right);
                 ("Class", Table_fmt.Left) ]
  in
  List.iter
    (fun (r : Characteristics.table3_row) ->
      let pc, pa, pbc, pba =
        match List.assoc_opt r.Characteristics.app paper_table3 with
        | Some v -> v
        | None -> (0, 0, 0, 0)
      in
      Table_fmt.add_row t
        [ r.Characteristics.app;
          Printf.sprintf "%d [%d]" r.Characteristics.total_contexts pc;
          Printf.sprintf "%s [%s]"
            (Table_fmt.fmt_int r.Characteristics.total_allocations)
            (Table_fmt.fmt_int pa);
          Printf.sprintf "%d [%d]" r.Characteristics.before_contexts pbc;
          Printf.sprintf "%s [%s]"
            (Table_fmt.fmt_int r.Characteristics.before_allocations)
            (Table_fmt.fmt_int pba);
          r.Characteristics.detected_kind ])
    (Characteristics.table3 ());
  Table_fmt.print t;
  Printf.printf
    "Note: \"before\" columns count at the overflowed object's allocation\n\
     (inclusive).  Libdwarf's paper row counts up to the overflow event\n\
     instead; see EXPERIMENTS.md.\n"

(* ------------------------------------------------------------------ *)
(* Table IV                                                            *)

let paper_wt =
  [ ("Blackscholes", 4); ("Bodytrack", 325); ("Canneal", 79); ("Dedup", 182);
    ("Facesim", 369); ("Ferret", 346); ("Fluidanimate", 5); ("Freqmine", 218);
    ("Raytrace", 561); ("Streamcluster", 30); ("Swaptions", 370); ("Vips", 259);
    ("X264", 37); ("Aget", 16); ("Apache", 27); ("Memcached", 79);
    ("MySQL", 1362); ("Pbzip2", 58); ("Pfscan", 5) ]

let table4 () =
  section "Table IV: characteristics of the performance applications";
  let t =
    Table_fmt.create ~title:"TABLE IV (paper WT in brackets)"
      ~columns:[ ("Application", Table_fmt.Left); ("LOC", Table_fmt.Right);
                 ("CC", Table_fmt.Right); ("Allocations", Table_fmt.Right);
                 ("WT", Table_fmt.Right); ("sim 1/", Table_fmt.Right) ]
  in
  List.iter
    (fun (r : Characteristics.table4_row) ->
      let pwt = Option.value ~default:0 (List.assoc_opt r.Characteristics.app paper_wt) in
      Table_fmt.add_row t
        [ r.Characteristics.app;
          Table_fmt.fmt_int r.Characteristics.loc;
          Table_fmt.fmt_int r.Characteristics.contexts;
          Table_fmt.fmt_int r.Characteristics.allocations;
          Printf.sprintf "%d [%d]" r.Characteristics.watched_times pwt;
          string_of_int r.Characteristics.sim_scale ])
    (Characteristics.table4 ~progress:(progress "%s") ());
  Table_fmt.print t

(* ------------------------------------------------------------------ *)
(* Table V                                                             *)

let paper_table5 =
  [ ("Blackscholes", (613, 103, 110)); ("Bodytrack", (34, 151, 1079));
    ("Canneal", (940, 144, 169)); ("Dedup", (1599, 111, 96));
    ("Facesim", (2422, 102, 133)); ("Ferret", (68, 133, 610));
    ("Fluidanimate", (408, 106, 120)); ("Freqmine", (1241, 102, 0));
    ("Raytrace", (1135, 115, 222)); ("Streamcluster", (111, 115, 136));
    ("Swaptions", (9, 289, 4178)); ("Vips", (59, 133, 570));
    ("X264", (486, 104, 142)); ("Aget", (7, 359, 320)); ("Apache", (5, 523, 477));
    ("Memcached", (7, 391, 359)); ("MySQL", (124, 117, 317));
    ("Pbzip2", (128, 116, 322)); ("Pfscan", (4044, 91, 102)) ]

let table5 () =
  section "Table V: peak memory usage";
  let rows = Overhead.table5 ~progress:(progress "%s") () in
  let t =
    Table_fmt.create ~title:"TABLE V (paper percentages in brackets)"
      ~columns:[ ("Application", Table_fmt.Left); ("Original Kb", Table_fmt.Right);
                 ("CSOD Kb", Table_fmt.Right); ("CSOD %", Table_fmt.Right);
                 ("ASan Kb", Table_fmt.Right); ("ASan %", Table_fmt.Right) ]
  in
  let add (r : Overhead.table5_row) =
    let _, pc, pa =
      Option.value ~default:(0, 0, 0) (List.assoc_opt r.Overhead.app paper_table5)
    in
    Table_fmt.add_row t
      [ r.Overhead.app;
        Table_fmt.fmt_int r.Overhead.original_kb;
        Table_fmt.fmt_int r.Overhead.csod_kb;
        Printf.sprintf "%d [%d]" r.Overhead.csod_pct pc;
        Table_fmt.fmt_int r.Overhead.asan_kb;
        Printf.sprintf "%d [%d]" r.Overhead.asan_pct pa ]
  in
  List.iter add rows;
  Table_fmt.add_separator t;
  add (Overhead.table5_totals rows);
  Table_fmt.print t;
  Printf.printf "Paper totals: CSOD 105%%, ASan 143%%.\n"

(* ------------------------------------------------------------------ *)
(* Figure 6                                                            *)

let fig6 () =
  section "Figure 6: bug report for Heartbleed";
  let app = Option.get (Buggy_app.by_name "Heartbleed") in
  match
    Execution.run_until_detected ~app ~config:Config.csod_default ~max_runs:64
  with
  | None -> Printf.printf "Heartbleed not detected within 64 executions (unexpected)\n"
  | Some (n, o) ->
    Printf.printf "(detected on execution %d)\n\n" n;
    List.iter
      (fun r -> print_endline (Report.format ~symbolize:(Execution.symbolizer app) r))
      o.Execution.watchpoint_reports

(* ------------------------------------------------------------------ *)
(* Figure 7                                                            *)

let fig7 () =
  section "Figure 7: performance overhead of CSOD vs ASan (normalized runtime)";
  let rows = Overhead.fig7 ~progress:(progress "%s") () in
  let t =
    Table_fmt.create ~title:"FIGURE 7 (series as normalized runtime, 1.00 = baseline)"
      ~columns:[ ("Application", Table_fmt.Left);
                 ("CSOD w/o Evidence", Table_fmt.Right); ("CSOD", Table_fmt.Right);
                 ("ASan min-rz", Table_fmt.Right); ("ASan", Table_fmt.Right) ]
  in
  List.iter
    (fun (r : Overhead.fig7_row) ->
      Table_fmt.add_row t
        [ r.Overhead.app;
          Table_fmt.fmt_float r.Overhead.csod_no_evidence;
          Table_fmt.fmt_float r.Overhead.csod;
          Table_fmt.fmt_float r.Overhead.asan_min;
          Table_fmt.fmt_float r.Overhead.asan ])
    rows;
  Table_fmt.add_separator t;
  let a, b, c, d = Overhead.fig7_averages rows in
  Table_fmt.add_row t
    [ "Average"; Table_fmt.fmt_float a; Table_fmt.fmt_float b; Table_fmt.fmt_float c;
      Table_fmt.fmt_float d ];
  Table_fmt.print t;
  Printf.printf
    "Paper: CSOD 6.7%% average (4.3%% without evidence); ASan ~39%% with minimal\n\
     redzones; CSOD exceeds 10%% only on Canneal, Ferret and Raytrace.\n"

(* ------------------------------------------------------------------ *)
(* Evidence (Section V-A2) and fleet detection                         *)

let evidence () =
  section "Section V-A2: evidence-based over-write detection across two executions";
  let t =
    Table_fmt.create ~title:"EVIDENCE (over-write apps)"
      ~columns:[ ("Application", Table_fmt.Left); ("Run 1 watchpoint", Table_fmt.Left);
                 ("Run 1 evidence", Table_fmt.Left); ("Run 2 watchpoint", Table_fmt.Left) ]
  in
  List.iter
    (fun (r : Evidence.row) ->
      let b v = if v then "yes" else "no" in
      Table_fmt.add_row t
        [ r.Evidence.app; b r.Evidence.first_run_watchpoint;
          b r.Evidence.first_run_evidence; b r.Evidence.second_run_watchpoint ])
    (Evidence.second_execution ());
  Table_fmt.print t;
  Printf.printf
    "Paper: every over-write is detected by the second execution at the latest.\n"

let fleet_table () =
  section "Fleet simulation: executions needed until first detection (shared store)";
  let t =
    Table_fmt.create ~title:"FLEET (near-FIFO, evidence on, up to 64 users)"
      ~columns:[ ("Application", Table_fmt.Left); ("Detected at run", Table_fmt.Right);
                 ("Mechanism", Table_fmt.Left) ]
  in
  List.iter
    (fun app ->
      match Evidence.fleet ~app ~users:64 () with
      | Some (n, src) ->
        Table_fmt.add_row t
          [ app.Buggy_app.name; string_of_int n; Report.source_name src ]
      | None -> Table_fmt.add_row t [ app.Buggy_app.name; ">64"; "-" ])
    (Buggy_app.all ());
  Table_fmt.print t

(* Explicit-only JSONL twin of the fleet table: run the parallel fleet
   simulator serially and on a domain pool, check the reports agree, and
   emit one row per app with the measured wall-clock speedup.  Schema:
   csod.bench.fleet/1. *)

let fleet_schema = "csod.bench.fleet/1"

let fleet_bench () =
  let parallel_domains = max 2 (Pool.default_domains ()) in
  let bench_one ~users (app : Buggy_app.t) =
    progress "fleet: %s, %d users, 1 vs %d domains" app.Buggy_app.name users
      parallel_domains;
    let config = Config.csod_default in
    let workload = Workload.make ~benign_frac:0.25 ~users () in
    let simulate domains =
      Pool.timed (fun () ->
          Fleet.run
            (Fleet.config ~domains ~epoch_size:32 workload)
            ~execute:(Execution.executor ~app ~config ()))
    in
    let serial, wall_serial = simulate 1 in
    let parallel, wall_parallel = simulate parallel_domains in
    let identical =
      Fleet.detection_uids serial = Fleet.detection_uids parallel
      && Persist.keys serial.Fleet.store = Persist.keys parallel.Fleet.store
      && Metrics.counters_list serial.Fleet.metrics
         = Metrics.counters_list parallel.Fleet.metrics
    in
    print_endline
      (Obs_json.to_string
         (`Assoc
           [ ("schema", `String fleet_schema);
             ("app", `String app.Buggy_app.name);
             ("config", `String (Config.label config));
             ("users", `Int users);
             ("epoch_size", `Int 32);
             ("benign_frac", `Float 0.25);
             ("domains", `Int parallel_domains);
             ("detections", `Int serial.Fleet.detections);
             ("first_catch",
              match serial.Fleet.first_catch with
              | Some s ->
                `Assoc
                  [ ("uid", `Int s.Fleet.user.Workload.uid);
                    ("epoch", `Int s.Fleet.epoch) ]
              | None -> `Null);
             ("store_contexts", `Int (Persist.count serial.Fleet.store));
             ("deterministic", `Bool identical);
             ("wall_seconds_serial", `Float wall_serial);
             ("wall_seconds_parallel", `Float wall_parallel);
             ("speedup", `Float (wall_serial /. max 1e-9 wall_parallel)) ]))
  in
  List.iter
    (fun (name, users) ->
      bench_one ~users (Option.get (Buggy_app.by_name name)))
    [ ("Zziplib", 1000); ("Memcached", 512); ("Heartbleed", 192) ]

(* ------------------------------------------------------------------ *)
(* Engine bench: end-to-end executions/sec, interpreter vs VM (JSONL)  *)

(* Explicit-only target.  Each row times complete executions of one
   workload under both engines and records executions/sec plus the
   vm-over-interp speedup.  Two workload kinds: "app" rows run a buggy
   application through the full CSOD detection path (allocator-bound —
   most of the time is malloc/canary/watchpoint work shared by both
   engines, so the speedup is modest), "kernel" rows run a pure-compute
   MiniC program where engine dispatch dominates and the VM's advantage
   shows undiluted.  [mode] is "serial" (bare run) or "metrics" (flight
   recorder armed; the kernel also takes telemetry snapshots).  Both
   engines are checked to agree on the workload's observables before
   timing and the row carries the verdict.  Schema: csod.bench.exec/1. *)

let exec_schema = "csod.bench.exec/1"

(* Integer-mixing kernel: tight loops, calls, branches and shifts, no
   allocation — the dispatch-bound regime the bytecode VM targets. *)
let exec_kernel_src =
  "fn mix(a, b) {\n\
  \  var h = a * 31 + b;\n\
  \  h = h ^ (h >> 7);\n\
  \  h = h + (h << 3);\n\
  \  return h;\n\
   }\n\
   fn main() {\n\
  \  var acc = 0;\n\
  \  var i = 0;\n\
  \  while (i < 20000) {\n\
  \    var j = 0;\n\
  \    for (j = 0; j < 5; j = j + 1) {\n\
  \      acc = mix(acc, i + j);\n\
  \      if (acc & 1) { acc = acc + 3; } else { acc = acc - 1; }\n\
  \    }\n\
  \    i = i + 1;\n\
  \  }\n\
  \  return acc;\n\
   }\n"

let exec_bench () =
  let kernel_program =
    Program.load_exn
      [ { Program.file = "kernel.mc"; module_name = "kernel";
          source = exec_kernel_src } ]
  in
  let kernel_once ~metrics engine =
    let machine = Machine.create ~seed:1 () in
    if metrics then
      Telemetry.set_snapshot_interval (Machine.telemetry machine)
        ~cycles:50_000_000;
    let heap = Heap.create machine in
    let r =
      Engine.run ~engine ~machine ~tool:(Tool.baseline heap)
        ~program:kernel_program ~app_seed:1 ()
    in
    Sparse_mem.release (Machine.mem machine);
    (r.Interp.return_value, Clock.cycles (Machine.clock machine))
  in
  let app_once app ~metrics:_ engine =
    let o = Execution.run ~app ~config:Config.csod_default ~engine ~seed:1 () in
    ((if o.Execution.detected then 1 else 0), o.Execution.cycles)
  in
  let time ~mode ~runs once engine =
    let body () =
      (* warm run: the VM pays its one-time bytecode compile here *)
      ignore (once ~metrics:(mode = `Metrics) engine);
      let t0 = Unix.gettimeofday () in
      for _ = 1 to runs do
        ignore (once ~metrics:(mode = `Metrics) engine)
      done;
      Unix.gettimeofday () -. t0
    in
    match mode with
    | `Serial -> body ()
    | `Metrics -> Flight_recorder.with_recorder (Flight_recorder.create ()) body
  in
  let bench_one ~workload ~kind ~runs once =
    let (vi, ci) = once ~metrics:false Engine.Interp in
    let (vv, cv) = once ~metrics:false Engine.Vm in
    let identical = vi = vv && ci = cv in
    List.iter
      (fun (mode_name, mode) ->
        progress "exec: %s, %s, %d runs per engine" workload mode_name runs;
        let wi = time ~mode ~runs once Engine.Interp in
        let wv = time ~mode ~runs once Engine.Vm in
        let rate w = float_of_int runs /. max 1e-9 w in
        print_endline
          (Obs_json.to_string
             (`Assoc
               [ ("schema", `String exec_schema);
                 ("workload", `String workload);
                 ("kind", `String kind);
                 ("mode", `String mode_name);
                 ("runs", `Int runs);
                 ("cycles", `Int ci);
                 ("deterministic", `Bool identical);
                 ("interp_wall_seconds", `Float wi);
                 ("vm_wall_seconds", `Float wv);
                 ("interp_execs_per_sec", `Float (rate wi));
                 ("vm_execs_per_sec", `Float (rate wv));
                 ("speedup", `Float (wi /. max 1e-9 wv)) ])))
      [ ("serial", `Serial); ("metrics", `Metrics) ]
  in
  bench_one ~workload:"kernel-mix" ~kind:"kernel" ~runs:10 kernel_once;
  List.iter
    (fun (name, runs) ->
      let app = Option.get (Buggy_app.by_name name) in
      bench_one ~workload:name ~kind:"app" ~runs (app_once app))
    [ ("Zziplib", 400); ("LibHX", 1500); ("Heartbleed", 15) ]

(* ------------------------------------------------------------------ *)
(* Resilience: detection rate under injected faults (JSONL)            *)

(* Explicit-only target: one row per (app, fault rate) running the fleet
   simulator with the deterministic fault injector armed at the same rate
   on every relevant point.  The curve quantifies graceful degradation —
   how much detection survives when perf_event_open is contended, traps
   are dropped, and worker domains crash.  Schema: csod.bench.resilience/1. *)

(* Active response rows, riding the resilience target: how many buggy
   executions run to completion under the failure-oblivious policy, and
   what the armed squash/override hooks cost when nothing overflows.
   Schema: csod.bench.respond/1. *)

let respond_schema = "csod.bench.respond/1"

let respond_survival () =
  let config = Config.csod_default in
  let runs = 10 in
  List.iter
    (fun (app : Buggy_app.t) ->
      progress "respond: %s, %d oblivious executions" app.Buggy_app.name runs;
      let outcomes =
        List.init runs (fun i ->
            Execution.run ~app ~config ~seed:(i + 1)
              ~respond:Respond.Oblivious ())
      in
      let count p = List.length (List.filter p outcomes) in
      let survived = count (fun (o : Execution.outcome) -> o.Execution.survived) in
      let detected = count (fun (o : Execution.outcome) -> o.Execution.detected) in
      let sum f =
        List.fold_left
          (fun acc (o : Execution.outcome) ->
            acc + match o.Execution.respond with Some s -> f s | None -> 0)
          0 outcomes
      in
      print_endline
        (Obs_json.to_string
           (`Assoc
             [ ("schema", `String respond_schema);
               ("metric", `String "survival");
               ("app", `String app.Buggy_app.name);
               ("mode", `String "oblivious");
               ("runs", `Int runs);
               ("survived", `Int survived);
               ("survival_rate", `Float (float_of_int survived /. float_of_int runs));
               ("detections", `Int detected);
               ("redirected_reads",
                `Int (sum (fun s -> s.Respond.redirected_reads)));
               ("redirected_writes",
                `Int (sum (fun s -> s.Respond.redirected_writes)));
               ("escapes", `Int (sum (fun s -> s.Respond.escapes))) ])))
    (Buggy_app.all ())

(* The purity pin guarantees oblivious mode changes no virtual cycle, so
   its cost is purely host-side: the armed pre-store value capture on every
   write.  Measured serially on benign input — no overflow, no redirects —
   normalized per machine memory access. *)
let respond_overhead () =
  let config = Config.csod_default in
  let app = Option.get (Buggy_app.by_name "Memcached") in
  let runs = 30 in
  progress "respond: overhead, %s benign, %d serial runs per mode"
    app.Buggy_app.name runs;
  let accesses_of (o : Execution.outcome) =
    match
      List.assoc_opt "machine.accesses"
        (Metrics.counters_list (Telemetry.metrics o.Execution.telemetry))
    with
    | Some n -> n
    | None -> 0
  in
  let one ?respond seed =
    let t0 = Unix.gettimeofday () in
    let o =
      Execution.run ~app ~config ~input:Execution.Benign ~seed ?respond ()
    in
    (Unix.gettimeofday () -. t0, accesses_of o)
  in
  (* Warm both paths, then interleave the modes per seed so host drift
     (frequency scaling, page cache) cancels out of each pair; the median
     over the paired per-seed ratios shrugs off GC and scheduler
     outliers.  Oblivious mode is observably pure, so both runs of a pair
     perform the identical access sequence. *)
  ignore (one 1);
  ignore (one ~respond:Respond.Oblivious 1);
  let median a =
    let s = Array.copy a in
    Array.sort compare s;
    s.(Array.length s / 2)
  in
  let pairs =
    Array.init runs (fun i ->
        let seed = i + 1 in
        let bs, ops = one seed in
        let os, _ = one ~respond:Respond.Oblivious seed in
        let ops = float_of_int (max 1 ops) in
        (bs *. 1e9 /. ops, os *. 1e9 /. ops))
  in
  let baseline_ns = median (Array.map fst pairs) in
  let oblivious_ns = median (Array.map snd pairs) in
  let ratio = median (Array.map (fun (b, o) -> o /. b) pairs) in
  print_endline
    (Obs_json.to_string
       (`Assoc
         [ ("schema", `String respond_schema);
           ("metric", `String "overhead");
           ("app", `String app.Buggy_app.name);
           ("mode", `String "oblivious");
           ("runs", `Int runs);
           ("ns_per_op", `Float oblivious_ns);
           ("baseline_ns_per_op", `Float baseline_ns);
           ("overhead_frac", `Float (ratio -. 1.0)) ]))

let resilience_schema = "csod.bench.resilience/1"

let resilience () =
  let domains = max 2 (Pool.default_domains ()) in
  let users = 300 in
  let rates = [ 0.0; 0.05; 0.15; 0.3; 0.6; 1.0 ] in
  let bench_one (app : Buggy_app.t) rate =
    let spec =
      if rate = 0.0 then "seed=7"
      else
        Printf.sprintf "seed=7,ebusy=%g,trap-drop=%g,worker-crash=%g" rate rate
          rate
    in
    let plan =
      match Fault_plan.of_string spec with Ok p -> p | Error m -> failwith m
    in
    progress "resilience: %s, %d users, faults %s" app.Buggy_app.name users
      (Fault_plan.to_string plan);
    let config = Config.csod_default in
    let workload = Workload.make ~benign_frac:0.25 ~users () in
    let r =
      Fleet.run
        (Fleet.config ~domains ~epoch_size:32 ~faults:plan workload)
        ~execute:(Execution.executor ~app ~config ~faults:plan ())
    in
    let buggy =
      Array.fold_left
        (fun n s -> if s.Fleet.user.Workload.benign then n else n + 1)
        0 r.Fleet.seats
    in
    let degraded = ref 0 and injected = ref 0 in
    Array.iter
      (fun s ->
        let (o : Execution.outcome) = s.Fleet.exec.Fleet.payload in
        if o.Execution.degraded then incr degraded;
        match o.Execution.faults with
        | Some inj -> injected := !injected + Fault_injector.total inj
        | None -> ())
      r.Fleet.seats;
    let crashes =
      match r.Fleet.faults with
      | Some inj -> Fault_injector.count inj Fault_plan.Worker_crash
      | None -> 0
    in
    print_endline
      (Obs_json.to_string
         (`Assoc
           [ ("schema", `String resilience_schema);
             ("app", `String app.Buggy_app.name);
             ("config", `String (Config.label config));
             ("users", `Int users);
             ("benign_frac", `Float 0.25);
             ("domains", `Int domains);
             ("epoch_size", `Int 32);
             ("fault_rate", `Float rate);
             ("faults", `String (Fault_plan.to_string plan));
             ("detections", `Int r.Fleet.detections);
             ("detection_rate",
              `Float
                (float_of_int r.Fleet.detections /. float_of_int (max 1 buggy)));
             ("degraded_executions", `Int !degraded);
             ("faults_injected", `Int (!injected + crashes));
             ("worker_crashes", `Int crashes);
             ("store_contexts", `Int (Persist.count r.Fleet.store));
             ("wall_seconds", `Float r.Fleet.wall_seconds) ]))
  in
  List.iter
    (fun name ->
      let app = Option.get (Buggy_app.by_name name) in
      List.iter (fun rate -> bench_one app rate) rates)
    [ "Zziplib"; "Gzip" ];
  respond_survival ();
  respond_overhead ()

(* ------------------------------------------------------------------ *)
(* Ablation                                                            *)

let ablate ~runs () =
  section (Printf.sprintf "Ablation: one mechanism disabled at a time (%d runs)" runs);
  List.iter
    (fun (v : Ablation.variant) ->
      Printf.printf "  %-22s %s\n" v.Ablation.name v.Ablation.note)
    (Ablation.variants ());
  print_newline ();
  let rows = Ablation.run ~runs ~progress:(progress "%s") () in
  let apps = List.map (fun a -> a.Buggy_app.name) (Ablation.apps_under_test ()) in
  let t =
    Table_fmt.create ~title:"ABLATION (watchpoint detections)"
      ~columns:
        (("Variant", Table_fmt.Left)
        :: List.map (fun a -> (a, Table_fmt.Right)) apps)
  in
  List.iter
    (fun (r : Ablation.row) ->
      Table_fmt.add_row t
        (r.Ablation.variant
        :: List.map
             (fun a ->
               string_of_int
                 (Option.value ~default:0 (List.assoc_opt a r.Ablation.detections)))
             apps))
    rows;
  Table_fmt.print t

(* ------------------------------------------------------------------ *)
(* Combined-syscall study (the paper's proposed OS optimization)       *)

let syscalls () =
  section
    "Combined-syscall study: Section V-B's proposed single-syscall install";
  let combined_params = { Params.default with Params.combined_syscall = true } in
  let t =
    Table_fmt.create
      ~title:"WATCHPOINT SYSCALL TRAFFIC (CSOD, default vs combined syscall)"
      ~columns:[ ("Application", Table_fmt.Left); ("WT", Table_fmt.Right);
                 ("syscalls", Table_fmt.Right); ("combined", Table_fmt.Right);
                 ("overhead", Table_fmt.Right); ("overhead'", Table_fmt.Right) ]
  in
  List.iter
    (fun name ->
      let p = Option.get (Perf_profile.by_name name) in
      let base = Perf_driver.run ~profile:p ~config:Config.Baseline () in
      let std = Perf_driver.run ~profile:p ~config:Config.csod_default () in
      let comb = Perf_driver.run ~profile:p ~config:(Config.Csod combined_params) () in
      Table_fmt.add_row t
        [ p.Perf_profile.name;
          Table_fmt.fmt_int std.Perf_driver.watched_times;
          Table_fmt.fmt_int std.Perf_driver.syscalls;
          Table_fmt.fmt_int comb.Perf_driver.syscalls;
          Table_fmt.fmt_float (Perf_driver.overhead ~baseline:base std);
          Table_fmt.fmt_float (Perf_driver.overhead ~baseline:base comb) ])
    [ "Ferret"; "Vips"; "MySQL"; "Memcached"; "Bodytrack" ];
  Table_fmt.print t;
  Printf.printf
    "The paper: \"eight system calls are used to install and remove a\n\
     watchpoint for each thread.  We could further reduce the performance\n\
     overhead by combining these system calls into one custom system call,\n\
     but this requires modification of the underlying OS.\"\n"

(* ------------------------------------------------------------------ *)
(* Machine-readable telemetry export (JSONL, stable schema)            *)

(* One line per workload on stdout; everything human-oriented goes to
   stderr so the stream can be piped straight into jq.  The schema is
   versioned: additive changes keep /1, field renames or removals bump it. *)

let metrics_schema = "csod.bench.metrics/2"

let metrics_record ~kind ~app ~config ~seed ~detected ~cycles ?tele_cycles tele =
  (* [cycles] is the workload's reported (possibly extrapolated) runtime;
     [tele_cycles] is the raw clock total the telemetry was charged
     against, when the two differ (subsampled perf streams). *)
  let tele_cycles = Option.value ~default:cycles tele_cycles in
  `Assoc
    [ ("schema", `String metrics_schema);
      ("kind", `String kind);
      ("app", `String app);
      ("config", `String config);
      ("seed", `Int seed);
      ("detected", `Bool detected);
      ("cycles", `Int cycles);
      ("telemetry", Telemetry.to_json tele ~total_cycles:tele_cycles) ]

let metrics () =
  progress "metrics: buggy applications under CSOD (seed 1)";
  List.iter
    (fun (app : Buggy_app.t) ->
      let o = Execution.run ~app ~config:Config.csod_default () in
      print_endline
        (Obs_json.to_string
           (metrics_record ~kind:"detection" ~app:app.Buggy_app.name
              ~config:"csod-near-fifo" ~seed:1 ~detected:o.Execution.detected
              ~cycles:o.Execution.cycles o.Execution.telemetry)))
    (Buggy_app.all ());
  progress "metrics: performance workloads under CSOD (seed 1)";
  List.iter
    (fun name ->
      let p = Option.get (Perf_profile.by_name name) in
      let r = Perf_driver.run ~profile:p ~config:Config.csod_default () in
      let tele = r.Perf_driver.telemetry in
      print_endline
        (Obs_json.to_string
           (metrics_record ~kind:"perf" ~app:p.Perf_profile.name
              ~config:"csod-near-fifo" ~seed:1 ~detected:r.Perf_driver.detected
              ~cycles:r.Perf_driver.cycles
              ~tele_cycles:(Profiler.total (Telemetry.profiler tele)) tele)))
    [ "Blackscholes"; "Memcached"; "Pfscan" ]

(* ------------------------------------------------------------------ *)
(* Throughput: ns/op of the single-execution hot paths (JSONL)         *)

(* Explicit-only target.  Each row times one hot-path operation (malloc,
   free, read, write, trap) twice in the same process: once as shipped and
   once with the hot-path optimizations reverted to their pre-optimization
   reference implementations (chunk cache off, armed-event fast scan off,
   context memo off).  The toggles are observably pure — virtual cycles,
   PRNG stream and detection outcomes are identical either way — so the
   pair isolates real OCaml time and the row's [speedup] is the measured
   improvement over the pre-PR baseline.  [mode] is "serial" (bare
   machine) or "metrics" (flight recorder + telemetry snapshots armed).
   Schema: csod.bench.throughput/1. *)

let throughput_schema = "csod.bench.throughput/1"

(* Wall-clock ns/op of [f iters], after a warmup run of [f 1000]. *)
let measure ~iters f =
  f (min 1000 iters);
  let t0 = Unix.gettimeofday () in
  f iters;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters

let throughput () =
  let row ~op ~mode ~iters ~opt ~base =
    let ops ns = 1e9 /. ns in
    print_endline
      (Obs_json.to_string
         (`Assoc
           [ ("schema", `String throughput_schema);
             ("op", `String op);
             ("mode", `String mode);
             ("iters", `Int iters);
             ("ns_per_op", `Float opt);
             ("ops_per_sec", `Float (ops opt));
             ("baseline_ns_per_op", `Float base);
             ("baseline_ops_per_sec", `Float (ops base));
             ("speedup", `Float (base /. opt)) ]))
  in
  let with_machine ~mode ~reference f =
    let machine = Machine.create ~seed:11 () in
    Sparse_mem.set_cache (Machine.mem machine) (not reference);
    Hw_breakpoint.set_fast_scan (Machine.hw machine) (not reference);
    let run () = f machine in
    match mode with
    | `Serial -> run ()
    | `Metrics ->
      Telemetry.set_snapshot_interval (Machine.telemetry machine)
        ~cycles:50_000_000;
      Flight_recorder.with_recorder (Flight_recorder.create ()) run
  in
  (* Reads/writes over a 1 MiB region with all four debug registers armed
     (far away, never hit) — the busy-execution configuration where every
     access pays the armed-event scan. *)
  let iters_rw = 2_000_000 in
  let rw_bench ~mode ~reference op =
    with_machine ~mode ~reference (fun m ->
        let tid = Threads.current (Machine.threads m) in
        for i = 0 to 3 do
          match Machine.install_watch m ~addr:(0x4000_0000 + (i * 64)) ~tid with
          | Ok _ -> ()
          | Error _ -> ()
        done;
        measure ~iters:iters_rw (fun n ->
            match op with
            | `Read ->
              for i = 0 to n - 1 do
                ignore (Machine.load_word m ((i * 8) land 0xFFFFF))
              done
            | `Write ->
              for i = 0 to n - 1 do
                Machine.store_word m ((i * 8) land 0xFFFFF) (i land 0xFF)
              done))
  in
  (* Full CSOD allocation path (context lookup, canary plant, sampling
     decision) and the matching free path, timed as separate phases of the
     same batched loop.  Call sites repeat in runs of 256, the loop-local
     pattern the context memo exists for. *)
  let alloc_rounds = 30 and alloc_batch = 4096 in
  let alloc_pair ~mode ~reference =
    with_machine ~mode ~reference (fun m ->
        let heap = Heap.create m in
        let rt = Runtime.create ~machine:m ~heap () in
        Context_table.set_memo (Runtime.context_table rt) (not reference);
        let tool = Runtime.tool rt in
        let ptrs = Array.make alloc_batch 0 in
        let t_m = ref 0.0 and t_f = ref 0.0 in
        let k = ref 0 in
        for _ = 1 to alloc_rounds do
          let t0 = Unix.gettimeofday () in
          for i = 0 to alloc_batch - 1 do
            incr k;
            let ctx =
              Alloc_ctx.synthetic ~callsite:(0x40 + (!k / 256 mod 64)) ()
            in
            ptrs.(i) <- tool.Tool.malloc ~size:(16 + (!k mod 7 * 24)) ~ctx
          done;
          let t1 = Unix.gettimeofday () in
          for i = 0 to alloc_batch - 1 do
            tool.Tool.free ~ptr:ptrs.(i)
          done;
          let t2 = Unix.gettimeofday () in
          t_m := !t_m +. (t1 -. t0);
          t_f := !t_f +. (t2 -. t1)
        done;
        let n = float_of_int (alloc_rounds * alloc_batch) in
        (!t_m *. 1e9 /. n, !t_f *. 1e9 /. n))
  in
  (* Trap delivery: every store hits an armed watchpoint and synchronously
     runs a no-op SIGTRAP handler. *)
  let iters_trap = 200_000 in
  let trap_bench ~mode ~reference =
    with_machine ~mode ~reference (fun m ->
        Machine.set_trap_handler m (fun _ -> ());
        let tid = Threads.current (Machine.threads m) in
        (match Machine.install_watch m ~addr:0x9000 ~tid with
        | Ok _ -> ()
        | Error _ -> failwith "throughput: watchpoint install failed");
        measure ~iters:iters_trap (fun n ->
            for i = 0 to n - 1 do
              Machine.store_word m 0x9000 i
            done))
  in
  List.iter
    (fun (mode_name, mode) ->
      progress "throughput: read/write, mode %s" mode_name;
      row ~op:"read" ~mode:mode_name ~iters:iters_rw
        ~opt:(rw_bench ~mode ~reference:false `Read)
        ~base:(rw_bench ~mode ~reference:true `Read);
      row ~op:"write" ~mode:mode_name ~iters:iters_rw
        ~opt:(rw_bench ~mode ~reference:false `Write)
        ~base:(rw_bench ~mode ~reference:true `Write);
      progress "throughput: malloc/free, mode %s" mode_name;
      let m_opt, f_opt = alloc_pair ~mode ~reference:false in
      let m_base, f_base = alloc_pair ~mode ~reference:true in
      let alloc_iters = alloc_rounds * alloc_batch in
      row ~op:"malloc" ~mode:mode_name ~iters:alloc_iters ~opt:m_opt
        ~base:m_base;
      row ~op:"free" ~mode:mode_name ~iters:alloc_iters ~opt:f_opt
        ~base:f_base;
      progress "throughput: trap, mode %s" mode_name;
      row ~op:"trap" ~mode:mode_name ~iters:iters_trap
        ~opt:(trap_bench ~mode ~reference:false)
        ~base:(trap_bench ~mode ~reference:true))
    [ ("serial", `Serial); ("metrics", `Metrics) ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the real hot paths                     *)

let micro () =
  section "Micro-benchmarks (Bechamel; real OCaml time of the runtime hot paths)";
  let open Bechamel in
  let mk_csod_env evidence =
    let machine = Machine.create ~seed:5 () in
    let heap = Heap.create machine in
    let params = { Params.default with Params.evidence } in
    let rt = Runtime.create ~params ~machine ~heap () in
    (Runtime.tool rt, ref 0)
  in
  let alloc_free_test name tool counter =
    Test.make ~name
      (Staged.stage (fun () ->
           incr counter;
           let ctx = Alloc_ctx.synthetic ~callsite:(0x40 + (!counter mod 64)) () in
           let p = tool.Tool.malloc ~size:64 ~ctx in
           tool.Tool.free ~ptr:p))
  in
  let baseline_tool, c0 =
    let machine = Machine.create ~seed:5 () in
    let heap = Heap.create machine in
    (Tool.baseline heap, ref 0)
  in
  let csod_tool, c1 = mk_csod_env true in
  let csod_ne_tool, c2 = mk_csod_env false in
  let asan_tool, c3 =
    let machine = Machine.create ~seed:5 () in
    let heap = Heap.create machine in
    let a = Asan.create ~machine ~heap () in
    (Asan.tool a, ref 0)
  in
  let prng = Prng.create ~seed:99 in
  let shadow = Shadow.create () in
  Shadow.poison shadow ~addr:4096 ~len:64;
  let tests =
    Test.make_grouped ~name:"hot-paths"
      [ alloc_free_test "baseline-malloc-free" baseline_tool c0;
        alloc_free_test "csod-malloc-free" csod_tool c1;
        alloc_free_test "csod-noevidence-malloc-free" csod_ne_tool c2;
        alloc_free_test "asan-malloc-free" asan_tool c3;
        Test.make ~name:"prng-draw" (Staged.stage (fun () -> ignore (Prng.float prng)));
        Test.make ~name:"shadow-check"
          (Staged.stage (fun () -> ignore (Shadow.is_poisoned shadow ~addr:4100 ~len:8))) ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> nan
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  List.iter (fun (name, est) -> Printf.printf "  %-45s %10.1f ns/op\n" name est) rows

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let args = List.filter (fun a -> a <> "--") args in
  let rec extract_runs acc = function
    | [] -> (None, List.rev acc)
    | "--runs" :: n :: rest -> (int_of_string_opt n, List.rev_append acc rest)
    | x :: rest -> extract_runs (x :: acc) rest
  in
  let runs_opt, cmds = extract_runs [] args in
  let runs = Option.value ~default:1000 runs_opt in
  let ablate_runs = Option.value ~default:200 runs_opt in
  let all = cmds = [] in
  let want c = all || List.mem c cmds in
  if want "table1" then table1 ();
  if want "table2" then table2 ~runs ();
  if want "table3" then table3 ();
  if want "table4" then table4 ();
  if want "table5" then table5 ();
  if want "fig6" then fig6 ();
  if want "fig7" then fig7 ();
  if want "evidence" then evidence ();
  if all then fleet_table ();
  if want "ablate" then ablate ~runs:ablate_runs ();
  if want "syscalls" then syscalls ();
  if want "micro" then micro ();
  (* Explicit-only: JSONL on stdout, so it never mixes into the default
     everything run.  `fleet` prints the human table in the everything run
     but emits csod.bench.fleet/1 rows when requested by name. *)
  if List.mem "metrics" cmds then metrics ();
  if List.mem "fleet" cmds then fleet_bench ();
  if List.mem "exec" cmds then exec_bench ();
  if List.mem "resilience" cmds then resilience ();
  if List.mem "throughput" cmds then throughput ();
  (* Keep stdout pure JSONL when a JSONL stream was requested. *)
  let jsonl =
    List.mem "metrics" cmds || List.mem "fleet" cmds
    || List.mem "exec" cmds
    || List.mem "resilience" cmds || List.mem "throughput" cmds
  in
  let done_ch = if jsonl then stderr else stdout in
  Printf.fprintf done_ch "\nDone.\n"
