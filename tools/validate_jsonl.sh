#!/bin/sh
# Validate that a file (or stdin) is well-formed JSONL: exactly one JSON
# object per line, no torn or truncated lines.  Used by CI on the event
# streams csod_run --events and bench metrics produce.
#
#   tools/validate_jsonl.sh events.jsonl
#   csod_run run heartbleed --events - | tools/validate_jsonl.sh
#
# With --schema NAME every line must additionally carry that schema tag,
# and for known schemas the required fields are type-checked:
#
#   tools/validate_jsonl.sh --schema csod.bench.resilience/1 resilience.jsonl
set -eu

schema=""
if [ "${1:-}" = "--schema" ]; then
    schema="$2"
    shift 2
fi

input="${1:--}"

exec python3 - "$input" "$schema" <<'EOF'
import json
import numbers
import sys

path, schema = sys.argv[1], sys.argv[2]
stream = sys.stdin if path == "-" else open(path, encoding="utf-8")

# Required fields per known schema: name -> expected Python type.
KNOWN = {
    "csod.bench.resilience/1": {
        "app": str,
        "config": str,
        "users": int,
        "domains": int,
        "fault_rate": numbers.Real,
        "faults": str,
        "detections": int,
        "detection_rate": numbers.Real,
        "degraded_executions": int,
        "faults_injected": int,
        "worker_crashes": int,
        "store_contexts": int,
        "wall_seconds": numbers.Real,
    },
    "csod.bench.throughput/1": {
        "op": str,
        "mode": str,
        "iters": int,
        "ns_per_op": numbers.Real,
        "ops_per_sec": numbers.Real,
        "baseline_ns_per_op": numbers.Real,
        "baseline_ops_per_sec": numbers.Real,
        "speedup": numbers.Real,
    },
    "csod.fleet.health/1": {
        "epoch": int,
        "arrivals": int,
        "detections": int,
        "cumulative": int,
        "users": int,
        "cdf": numbers.Real,
        "store_contexts": int,
        "degraded": int,
        "worker_crashes": int,
        "faults": dict,
        "snapshots": int,
        "epoch_seconds": numbers.Real,
        "merge_seconds": numbers.Real,
        "observer_seconds": numbers.Real,
        "execs_per_sec": numbers.Real,
        "straggler_skew": numbers.Real,
        "telemetry": str,
        "domains": list,
    },
}

fields = KNOWN.get(schema)

lines = 0
with stream:
    for n, line in enumerate(stream, start=1):
        if not line.endswith("\n"):
            sys.exit(f"{path}:{n}: truncated final line (no newline)")
        line = line.rstrip("\n")
        if not line:
            sys.exit(f"{path}:{n}: empty line")
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            sys.exit(f"{path}:{n}: invalid JSON: {e}")
        if not isinstance(obj, dict):
            sys.exit(f"{path}:{n}: line is not a JSON object")
        if schema:
            if obj.get("schema") != schema:
                sys.exit(f"{path}:{n}: schema {obj.get('schema')!r}, "
                         f"expected {schema!r}")
            for key, ty in (fields or {}).items():
                if key not in obj:
                    sys.exit(f"{path}:{n}: missing field {key!r}")
                if not isinstance(obj[key], ty) or isinstance(obj[key], bool):
                    sys.exit(f"{path}:{n}: field {key!r} has type "
                             f"{type(obj[key]).__name__}")
            if fields and "detection_rate" in fields \
                    and not 0.0 <= obj["detection_rate"] <= 1.0:
                sys.exit(f"{path}:{n}: detection_rate out of [0, 1]")
            if fields and "cdf" in fields \
                    and not 0.0 <= obj["cdf"] <= 1.0:
                sys.exit(f"{path}:{n}: cdf out of [0, 1]")
        lines += 1

if not lines and schema:
    sys.exit(f"{path}: empty stream (expected {schema} rows)")
print(f"{path}: {lines} valid JSONL line(s)"
      + (f" [{schema}]" if schema else ""))
EOF
