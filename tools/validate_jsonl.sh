#!/bin/sh
# Validate that a file (or stdin) is well-formed JSONL: exactly one JSON
# object per line, no torn or truncated lines.  Used by CI on the event
# streams csod_run --events and bench metrics produce.
#
#   tools/validate_jsonl.sh events.jsonl
#   csod_run run heartbleed --events - | tools/validate_jsonl.sh
set -eu

input="${1:--}"

exec python3 - "$input" <<'EOF'
import json
import sys

path = sys.argv[1]
stream = sys.stdin if path == "-" else open(path, encoding="utf-8")

lines = 0
with stream:
    for n, line in enumerate(stream, start=1):
        if not line.endswith("\n"):
            sys.exit(f"{path}:{n}: truncated final line (no newline)")
        line = line.rstrip("\n")
        if not line:
            sys.exit(f"{path}:{n}: empty line")
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            sys.exit(f"{path}:{n}: invalid JSON: {e}")
        if not isinstance(obj, dict):
            sys.exit(f"{path}:{n}: line is not a JSON object")
        lines += 1

print(f"{path}: {lines} valid JSONL line(s)")
EOF
