#!/bin/sh
# Validate that a file (or stdin) is well-formed JSONL: exactly one JSON
# object per line, no torn or truncated lines.  Used by CI on the event
# streams csod_run --events and bench metrics produce.
#
#   tools/validate_jsonl.sh events.jsonl
#   csod_run run heartbleed --events - | tools/validate_jsonl.sh
#
# With --schema NAME every line must additionally carry that schema tag,
# and for known schemas the required fields are type-checked:
#
#   tools/validate_jsonl.sh --schema csod.bench.resilience/1 resilience.jsonl
set -eu

schema=""
if [ "${1:-}" = "--schema" ]; then
    schema="$2"
    shift 2
fi

input="${1:--}"

# The program is passed via -c (not a heredoc on stdin) so that stdin
# stays available for piped JSONL when input is "-".
program=$(cat <<'EOF'
import json
import numbers
import sys

path, schema = sys.argv[1], sys.argv[2]
stream = sys.stdin if path == "-" else open(path, encoding="utf-8")

# Required fields per known schema: name -> expected Python type.
KNOWN = {
    "csod.bench.resilience/1": {
        "app": str,
        "config": str,
        "users": int,
        "domains": int,
        "fault_rate": numbers.Real,
        "faults": str,
        "detections": int,
        "detection_rate": numbers.Real,
        "degraded_executions": int,
        "faults_injected": int,
        "worker_crashes": int,
        "store_contexts": int,
        "wall_seconds": numbers.Real,
    },
    "csod.bench.throughput/1": {
        "op": str,
        "mode": str,
        "iters": int,
        "ns_per_op": numbers.Real,
        "ops_per_sec": numbers.Real,
        "baseline_ns_per_op": numbers.Real,
        "baseline_ops_per_sec": numbers.Real,
        "speedup": numbers.Real,
    },
    "csod.bench.exec/1": {
        "workload": str,
        "kind": str,
        "mode": str,
        "runs": int,
        "cycles": int,
        "interp_wall_seconds": numbers.Real,
        "vm_wall_seconds": numbers.Real,
        "interp_execs_per_sec": numbers.Real,
        "vm_execs_per_sec": numbers.Real,
        "speedup": numbers.Real,
    },
    "csod.respond.event/1": {
        "kind": str,
        "source": str,
        "site": int,
        "ctx": list,
        "addr": int,
        "offset": int,
        "len": int,
        "at_sec": numbers.Real,
    },
    "csod.bench.respond/1": {
        "metric": str,
        "app": str,
        "mode": str,
        "runs": int,
    },
    "csod.fleet.health/1": {
        "epoch": int,
        "arrivals": int,
        "detections": int,
        "cumulative": int,
        "patched": int,
        "users": int,
        "cdf": numbers.Real,
        "store_contexts": int,
        "degraded": int,
        "worker_crashes": int,
        "faults": dict,
        "snapshots": int,
        "epoch_seconds": numbers.Real,
        "merge_seconds": numbers.Real,
        "observer_seconds": numbers.Real,
        "execs_per_sec": numbers.Real,
        "straggler_skew": numbers.Real,
        "telemetry": str,
        "domains": list,
    },
    "csod.fleet.alert/1": {
        "alert": str,
        "spec": str,
        "state": str,
        "epoch": int,
        "since": int,
        "window": dict,
    },
    "csod.serve.history/1": {
        "seq": int,
        "kind": str,
        "crc": str,
        "body": dict,
    },
    "csod.sim.repro/1": {
        "alphabet": str,
        "seed": int,
        "ops": list,
        "failed_at": int,
        "failure": str,
        "replay_hash": str,
        "shrunk_from": int,
    },
}

# Operation vocabulary of each simulation alphabet (lib/sim): a repro may
# only name ops its alphabet declares.  Planted-bug variants share their
# base alphabet's vocabulary.
SIM_OPS = {
    "heap": {"alloc", "free", "double-free", "write-u8", "write-u64",
             "read-u8", "read-u64", "fill", "cache", "recycle"},
    "runtime": {"alloc", "free", "write", "read", "overflow", "disarm",
                "fault-ebusy", "fault-eacces", "fault-trap-drop",
                "fault-trap-delay"},
    "store": {"add1", "add2", "merge", "persist-save", "persist-load",
              "fault-persist-torn", "fault-persist-enospc"},
    "fleet": {"barrier", "fault-trap-drop", "persist-save", "persist-load",
              "crash"},
    "respond": {"respond-oblivious-read", "respond-oblivious-write",
                "convict-context", "apply-patch"},
}
SIM_OPS["store-buggy-merge"] = SIM_OPS["store"]
SIM_OPS["fleet-evidence-bug"] = SIM_OPS["fleet"]
SIM_OPS["respond-lost-conviction"] = SIM_OPS["respond"]

def check_respond_event(obj, where):
    if obj["kind"] not in ("redirect-read", "redirect-write", "escape",
                           "patch"):
        sys.exit(f"{where}: unknown respond event kind {obj['kind']!r}")
    if obj["source"] not in ("watchpoint", "asan", "canary"):
        sys.exit(f"{where}: unknown respond source {obj['source']!r}")
    ctx = obj["ctx"]
    if len(ctx) != 2 or any(
            not isinstance(c, int) or isinstance(c, bool) for c in ctx):
        sys.exit(f"{where}: respond ctx {ctx!r} is not an [int, int] pair")

# Per-metric required fields of csod.bench.respond/1: survival rows carry
# the redirect tallies, the overhead row carries the paired timings.
RESPOND_METRICS = {
    "survival": {
        "survived": int,
        "survival_rate": numbers.Real,
        "detections": int,
        "redirected_reads": int,
        "redirected_writes": int,
        "escapes": int,
    },
    "overhead": {
        "ns_per_op": numbers.Real,
        "baseline_ns_per_op": numbers.Real,
        "overhead_frac": numbers.Real,
    },
}

def check_respond_bench(obj, where):
    metric = obj["metric"]
    extra = RESPOND_METRICS.get(metric)
    if extra is None:
        sys.exit(f"{where}: unknown respond bench metric {metric!r}")
    for key, ty in extra.items():
        if key not in obj:
            sys.exit(f"{where}: {metric} row missing field {key!r}")
        if not isinstance(obj[key], ty) or isinstance(obj[key], bool):
            sys.exit(f"{where}: {metric} field {key!r} has type "
                     f"{type(obj[key]).__name__}")
    if metric == "survival":
        if not 0 <= obj["survived"] <= obj["runs"]:
            sys.exit(f"{where}: survived {obj['survived']} outside "
                     f"[0, {obj['runs']}]")
        if not 0.0 <= obj["survival_rate"] <= 1.0:
            sys.exit(f"{where}: survival_rate out of [0, 1]")
    elif metric == "overhead" and obj["baseline_ns_per_op"] <= 0:
        sys.exit(f"{where}: non-positive baseline_ns_per_op")

def check_exec_bench(obj, where):
    if obj["kind"] not in ("app", "kernel"):
        sys.exit(f"{where}: unknown exec workload kind {obj['kind']!r}")
    if obj["mode"] not in ("serial", "metrics"):
        sys.exit(f"{where}: unknown exec mode {obj['mode']!r}")
    if obj["runs"] < 1:
        sys.exit(f"{where}: non-positive run count")
    if not isinstance(obj.get("deterministic"), bool):
        sys.exit(f"{where}: missing bool field 'deterministic'")
    for key in ("interp_wall_seconds", "vm_wall_seconds",
                "interp_execs_per_sec", "vm_execs_per_sec", "speedup"):
        if obj[key] <= 0:
            sys.exit(f"{where}: non-positive {key}")

def check_sim_repro(obj, where):
    alphabet = obj["alphabet"]
    ops = SIM_OPS.get(alphabet)
    if ops is None:
        sys.exit(f"{where}: unknown alphabet {alphabet!r}")
    if not obj["ops"]:
        sys.exit(f"{where}: empty op sequence")
    for i, step in enumerate(obj["ops"]):
        if not isinstance(step, dict):
            sys.exit(f"{where}: op {i} is not an object")
        name = step.get("op")
        if name not in ops:
            sys.exit(f"{where}: op {i} {name!r} is not in the "
                     f"{alphabet} alphabet")
        args = step.get("args")
        if not isinstance(args, list) or any(
                not isinstance(a, int) or isinstance(a, bool) for a in args):
            sys.exit(f"{where}: op {i} args are not a list of ints")
    if not 0 <= obj["failed_at"] < len(obj["ops"]):
        sys.exit(f"{where}: failed_at {obj['failed_at']} outside the "
                 f"{len(obj['ops'])}-op sequence")
    h = obj["replay_hash"]
    if len(h) != 16 or any(c not in "0123456789abcdef" for c in h):
        sys.exit(f"{where}: replay_hash {h!r} is not 16 lowercase hex digits")
    if obj["shrunk_from"] < len(obj["ops"]):
        sys.exit(f"{where}: shrunk_from {obj['shrunk_from']} below the kept "
                 f"{len(obj['ops'])} ops")

# ---- Stateful checks for the serve streams -------------------------------
#
# Alert transitions must alternate fire -> clear per spec (the engine only
# emits transitions), and the window snapshot on each event must describe a
# span that ends at or before the event's epoch.  History lines must carry
# contiguous sequence numbers and a well-formed 64-bit checksum.

alert_states = {}    # spec -> last seen state ("fire" | "clear")
history_next = None  # expected next seq, once the first line fixes the origin
mid_stream = False   # history segment starting past seq 0: prior alert
                     # state is unknown, so an initial clear is legal

def check_alert(obj, where):
    for key, ty in KNOWN["csod.fleet.alert/1"].items():
        if key not in obj:
            sys.exit(f"{where}: alert record missing field {key!r}")
        if not isinstance(obj[key], ty) or isinstance(obj[key], bool):
            sys.exit(f"{where}: alert field {key!r} has type "
                     f"{type(obj[key]).__name__}")
    spec, state = obj["spec"], obj["state"]
    if state not in ("fire", "clear"):
        sys.exit(f"{where}: alert state {state!r} is not fire/clear")
    w = obj["window"]
    for key in ("epochs", "first_epoch", "last_epoch"):
        v = w.get(key)
        if not isinstance(v, int) or isinstance(v, bool):
            sys.exit(f"{where}: alert window lacks int field {key!r}")
    if not w["first_epoch"] <= w["last_epoch"] <= obj["epoch"]:
        sys.exit(f"{where}: alert window [{w['first_epoch']}, "
                 f"{w['last_epoch']}] outside epoch {obj['epoch']}")
    if w["epochs"] < 1:
        sys.exit(f"{where}: alert window covers {w['epochs']} epochs")
    prev = alert_states.get(spec)
    if state == "fire" and prev == "fire":
        sys.exit(f"{where}: {spec} fired twice without clearing")
    if state == "clear" and prev != "fire" \
            and not (mid_stream and prev is None):
        sys.exit(f"{where}: {spec} cleared without firing")
    if state == "fire" and obj["since"] != obj["epoch"]:
        sys.exit(f"{where}: fire event since {obj['since']} != "
                 f"epoch {obj['epoch']}")
    if state == "clear" and not 0 <= obj["since"] <= obj["epoch"]:
        sys.exit(f"{where}: clear event since {obj['since']} "
                 f"outside [0, {obj['epoch']}]")
    alert_states[spec] = state

def check_history(obj, where):
    global history_next, mid_stream
    if obj["kind"] not in ("meta", "health", "alert"):
        sys.exit(f"{where}: unknown history kind {obj['kind']!r}")
    if history_next is None and obj["seq"] != 0:
        mid_stream = True
    crc = obj["crc"]
    if len(crc) != 16 or any(c not in "0123456789abcdef" for c in crc):
        sys.exit(f"{where}: crc {crc!r} is not 16 lowercase hex digits")
    if history_next is not None and obj["seq"] != history_next:
        sys.exit(f"{where}: seq {obj['seq']}, expected {history_next}")
    history_next = obj["seq"] + 1
    body = obj["body"]
    if obj["kind"] == "health":
        for key in ("epoch", "arrivals", "detections", "cumulative"):
            v = body.get(key)
            if not isinstance(v, int) or isinstance(v, bool):
                sys.exit(f"{where}: health body lacks int field {key!r}")
        if not 0.0 <= body.get("cdf", -1.0) <= 1.0:
            sys.exit(f"{where}: health body cdf out of [0, 1]")
    elif obj["kind"] == "alert":
        check_alert(body, where)

fields = KNOWN.get(schema)

lines = 0
with stream:
    for n, line in enumerate(stream, start=1):
        if not line.endswith("\n"):
            sys.exit(f"{path}:{n}: truncated final line (no newline)")
        line = line.rstrip("\n")
        if not line:
            sys.exit(f"{path}:{n}: empty line")
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            sys.exit(f"{path}:{n}: invalid JSON: {e}")
        if not isinstance(obj, dict):
            sys.exit(f"{path}:{n}: line is not a JSON object")
        if schema:
            if obj.get("schema") != schema:
                sys.exit(f"{path}:{n}: schema {obj.get('schema')!r}, "
                         f"expected {schema!r}")
            for key, ty in (fields or {}).items():
                if key not in obj:
                    sys.exit(f"{path}:{n}: missing field {key!r}")
                if not isinstance(obj[key], ty) or isinstance(obj[key], bool):
                    sys.exit(f"{path}:{n}: field {key!r} has type "
                             f"{type(obj[key]).__name__}")
            if fields and "detection_rate" in fields \
                    and not 0.0 <= obj["detection_rate"] <= 1.0:
                sys.exit(f"{path}:{n}: detection_rate out of [0, 1]")
            if fields and "cdf" in fields \
                    and not 0.0 <= obj["cdf"] <= 1.0:
                sys.exit(f"{path}:{n}: cdf out of [0, 1]")
            if schema == "csod.fleet.alert/1":
                check_alert(obj, f"{path}:{n}")
            elif schema == "csod.serve.history/1":
                check_history(obj, f"{path}:{n}")
            elif schema == "csod.sim.repro/1":
                check_sim_repro(obj, f"{path}:{n}")
            elif schema == "csod.respond.event/1":
                check_respond_event(obj, f"{path}:{n}")
            elif schema == "csod.bench.exec/1":
                check_exec_bench(obj, f"{path}:{n}")
            elif schema == "csod.bench.respond/1":
                check_respond_bench(obj, f"{path}:{n}")
        lines += 1

if not lines and schema:
    sys.exit(f"{path}: empty stream (expected {schema} rows)")
print(f"{path}: {lines} valid JSONL line(s)"
      + (f" [{schema}]" if schema else ""))
EOF
)
exec python3 -c "$program" "$input" "$schema"
