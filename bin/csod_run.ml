(* csod_run: command-line front end to the CSOD simulation.

     csod_run list                         enumerate the bundled buggy apps
     csod_run run heartbleed               one execution under CSOD
     csod_run run mysql --policy random --seed 7 --runs 20
     csod_run run libtiff --tool asan      compare against the ASan model
     csod_run fleet zziplib --users 1000 --domains 4 --epoch 32
                                           parallel fleet simulation with
                                           epoch-based evidence aggregation
     csod_run exec prog.mc --input 3 --input 9
                                           run your own MiniC program

   The persistent store of overflowing contexts can be saved/loaded with
   --store FILE, mirroring how the paper's runtime carries evidence across
   executions. *)

open Cmdliner

let policy_conv =
  let parse = function
    | "naive" -> Ok Params.Naive
    | "random" -> Ok Params.Random
    | "near-fifo" | "nearfifo" | "fifo" -> Ok Params.Near_fifo
    | s -> Error (`Msg (Printf.sprintf "unknown policy %S (naive|random|near-fifo)" s))
  in
  let print ppf p = Fmt.string ppf (Params.policy_name p) in
  Arg.conv (parse, print)

let tool_conv =
  let parse = function
    | "csod" -> Ok `Csod
    | "asan" -> Ok `Asan
    | "none" | "baseline" -> Ok `None
    | s -> Error (`Msg (Printf.sprintf "unknown tool %S (csod|asan|none)" s))
  in
  let print ppf t =
    Fmt.string ppf (match t with `Csod -> "csod" | `Asan -> "asan" | `None -> "none")
  in
  Arg.conv (parse, print)

let engine_conv =
  let parse = function
    | "interp" -> Ok `Interp
    | "vm" -> Ok `Vm
    | "vm-buggy-cycles" -> Ok `Vm_buggy
    | s ->
      Error
        (`Msg (Printf.sprintf "unknown engine %S (interp|vm|vm-buggy-cycles)" s))
  in
  let print ppf e =
    Fmt.string ppf
      (match e with
      | `Interp -> "interp"
      | `Vm -> "vm"
      | `Vm_buggy -> "vm-buggy-cycles")
  in
  Arg.conv (parse, print)

(* Resolve --engine into the process-wide default that Execution.run picks
   up.  vm-buggy-cycles is the planted miscounting bug kept around for the
   differential-testing net — a live demonstration that the golden pins
   and the sweep catch a one-cycle divergence. *)
let apply_engine = function
  | `Interp ->
    Vm.buggy_cycles := false;
    Engine.set_default Engine.Interp
  | `Vm ->
    Vm.buggy_cycles := false;
    Engine.set_default Engine.Vm
  | `Vm_buggy ->
    Vm.buggy_cycles := true;
    Engine.set_default Engine.Vm

(* Shared options *)
let engine_arg =
  Arg.(value & opt engine_conv `Vm
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"MiniC execution engine: $(b,vm) (default — compiled \
                 bytecode, several times faster), $(b,interp) (the \
                 reference AST interpreter), or $(b,vm-buggy-cycles) (the \
                 VM with a deliberately planted cycle-miscounting bug, for \
                 exercising the differential-testing net).  Both real \
                 engines are observably bit-identical: same virtual \
                 cycles, detections, output and PRNG stream.")

let policy_arg =
  Arg.(value & opt policy_conv Params.Near_fifo
       & info [ "policy" ] ~docv:"POLICY" ~doc:"Watchpoint replacement policy.")

let tool_arg =
  Arg.(value & opt tool_conv `Csod
       & info [ "tool" ] ~docv:"TOOL" ~doc:"Detection tool to run under.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Execution seed.")

let runs_arg =
  Arg.(value & opt int 1 & info [ "runs" ] ~docv:"N" ~doc:"Number of executions.")

let no_evidence_arg =
  Arg.(value & flag & info [ "no-evidence" ] ~doc:"Disable the canary mechanism.")

let benign_arg =
  Arg.(value & flag & info [ "benign" ] ~doc:"Use the overflow-free input.")

let store_arg =
  Arg.(value & opt (some string) None
       & info [ "store" ] ~docv:"FILE"
           ~doc:"Load/save the persistent store of overflowing contexts.")

let faults_conv =
  let parse s =
    match Fault_plan.of_string s with Ok p -> Ok p | Error m -> Error (`Msg m)
  in
  let print ppf p = Fmt.string ppf (Fault_plan.to_string p) in
  Arg.conv (parse, print)

let faults_arg =
  Arg.(value & opt (some faults_conv) None
       & info [ "faults" ] ~docv:"SPEC"
           ~doc:"Deterministic fault injection plan, e.g. \
                 $(b,seed=7,ebusy=0.25,trap-drop=0.1,persist-torn\\@0).  \
                 Points: ebusy, eacces (perf_event_open failures), \
                 trap-drop, trap-delay (SIGTRAP delivery), persist-torn, \
                 persist-enospc (store writes), worker-crash (fleet pool).  \
                 $(i,point)=$(i,RATE) fails that fraction of opportunities; \
                 $(i,point)\\@$(i,T) fails once at virtual second T \
                 (worker-crash\\@N: chunk index N).  Faults draw from their \
                 own PRNG stream, so a plan of $(b,none) is bit-identical \
                 to no plan.")

let respond_conv =
  let parse s =
    match Respond.mode_of_string s with
    | Ok m -> Ok m
    | Error m -> Error (`Msg m)
  in
  let print ppf m = Fmt.string ppf (Respond.mode_to_string m) in
  Arg.conv (parse, print)

let respond_arg =
  Arg.(value & opt respond_conv Respond.Off
       & info [ "respond" ] ~docv:"MODE"
           ~doc:"Active response to detected overflows: $(b,off) (default — \
                 report only), $(b,oblivious) (failure-oblivious execution: \
                 out-of-bounds writes land in a per-allocation shadow slab, \
                 out-of-bounds reads return manufactured values, the program \
                 keeps running), or $(b,patch)[=$(i,N)] (code-less patching: \
                 once a context has accumulated $(i,N) evidence hits — \
                 default 3 — its allocation sites are over-allocated and \
                 redzoned so the overflow becomes harmless).")

(* Telemetry options *)
let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Print the metrics registry and per-phase cycle attribution \
                 after the run.")

let profile_arg =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Print the per-phase cycle-attribution table after the run.")

let metrics_json_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-json" ] ~docv:"FILE"
           ~doc:"Write the full telemetry dump (counters, gauges, histograms, \
                 per-phase cycles) as JSON to $(docv) ($(b,-) for stdout).")

let events_arg =
  Arg.(value & opt (some string) None
       & info [ "events" ] ~docv:"FILE"
           ~doc:"Stream structured JSONL events (sampling decisions, \
                 replacements, traps, canaries, periodic snapshots) to $(docv) \
                 ($(b,-) for stdout).")

let snapshot_arg =
  Arg.(value & opt (some float) None
       & info [ "snapshot-sec" ] ~docv:"SECS"
           ~doc:"Emit a telemetry snapshot event every $(docv) of virtual time \
                 (requires $(b,--events)).")

let snapshot_cycles_of = function
  | None -> 0
  | Some sec ->
    if sec <= 0.0 then 0
    else int_of_float (sec *. float_of_int Cost.cycles_per_second)

(* Flight recorder options *)
let flight_arg =
  Arg.(value
       & opt ~vopt:(Some Flight_recorder.default_capacity) (some int) None
       & info [ "flight-recorder" ] ~docv:"N"
           ~doc:"Record the last $(docv) lifecycle events (allocations, \
                 sampling decisions, watchpoint installs/evictions, traps, \
                 canary checks, probability changes) in an in-memory ring; \
                 defaults to 65536 records when $(docv) is omitted.")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write the recorded execution as Chrome trace-event JSON to \
                 $(docv) ($(b,-) for stdout) — open it in chrome://tracing or \
                 ui.perfetto.dev.  Implies $(b,--flight-recorder).")

let recorder_capacity ~flight ~trace_out =
  match (flight, trace_out) with
  | Some n, _ -> Some n
  | None, Some _ -> Some Flight_recorder.default_capacity
  | None, None -> None

let write_trace file records =
  let s =
    Trace_export.to_string ~cycles_per_second:Cost.cycles_per_second records
  in
  match file with
  | "-" ->
    print_string s;
    print_newline ()
  | file ->
    Out_channel.with_open_text file (fun oc ->
        output_string oc s;
        output_char oc '\n');
    Printf.printf "trace written to %s\n" file

let print_recorder_summary r =
  Printf.printf "flight recorder: %d records kept (%d emitted, %d overwritten)\n"
    (Flight_recorder.recorded r - Flight_recorder.dropped r)
    (Flight_recorder.recorded r) (Flight_recorder.dropped r)

(* Run [f] with a JSONL event sink streaming to [file], if one was asked
   for. *)
let with_events file f =
  match file with
  | None -> f ()
  | Some "-" ->
    Event_sink.install (Event_sink.to_channel stdout);
    Fun.protect
      ~finally:(fun () -> Event_sink.uninstall (); flush stdout)
      f
  | Some file ->
    Out_channel.with_open_text file (fun oc ->
        Event_sink.install (Event_sink.to_channel oc);
        Fun.protect ~finally:Event_sink.uninstall f)

let emit_telemetry ~metrics ~profile ~metrics_json tele ~cycles =
  if metrics then print_string (Telemetry.summary tele ~total_cycles:cycles)
  else if profile then print_string (Telemetry.profile_table tele ~total_cycles:cycles);
  if metrics || profile then print_newline ();
  match metrics_json with
  | None -> ()
  | Some "-" -> print_endline (Telemetry.json_string tele ~total_cycles:cycles)
  | Some file ->
    Out_channel.with_open_text file (fun oc ->
        output_string oc (Telemetry.json_string tele ~total_cycles:cycles);
        output_char oc '\n')

let config_of ~tool ~policy ~no_evidence =
  match tool with
  | `Csod -> Config.csod_with_policy policy ~evidence:(not no_evidence)
  | `Asan -> Config.asan_min_redzone
  | `None -> Config.Baseline

let load_store = function
  | None -> Persist.create ()
  | Some file -> Persist.load file

let save_store ?faults store = function
  | None -> ()
  | Some file -> Persist.save ?faults store file

let print_fault_summary = function
  | None -> ()
  | Some inj -> Printf.printf "faults: %s\n" (Fault_injector.summary inj)

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun (a : Buggy_app.t) ->
        Printf.printf "%-12s %-10s %s\n" a.Buggy_app.name
          (Report.kind_name a.Buggy_app.vuln)
          a.Buggy_app.reference)
      (Buggy_app.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List the bundled buggy applications.")
    Term.(const run $ const ())

(* ---- run ---- *)

let print_outcome app (o : Execution.outcome) =
  (match o.Execution.crashed with
  | Some msg -> Printf.printf "! program fault: %s\n" msg
  | None -> ());
  if o.Execution.output <> "" then Printf.printf "--- program output ---\n%s" o.Execution.output;
  if o.Execution.reports = [] && o.Execution.asan_detections = [] then
    Printf.printf "no overflow detected in this execution\n"
  else begin
    List.iter
      (fun r ->
        Printf.printf "[%s]\n%s\n" (Report.source_name r.Report.source)
          (Report.format ~symbolize:(Execution.symbolizer app) r))
      o.Execution.reports;
    List.iter
      (fun (d : Asan.detection) ->
        Printf.printf "[asan] heap-buffer-overflow %s at 0x%x (site %s)\n"
          (match d.Asan.kind with Tool.Read -> "READ" | Tool.Write -> "WRITE")
          d.Asan.addr
          (Execution.symbolizer app d.Asan.site))
      o.Execution.asan_detections
  end;
  (match o.Execution.stats with
  | Some s ->
    Printf.printf
      "stats: contexts=%d allocations=%d watched=%d traps=%d canary-checks=%d\n"
      s.Runtime.contexts s.Runtime.allocations s.Runtime.watched_times
      s.Runtime.traps s.Runtime.canary_checks
  | None -> ());
  print_fault_summary o.Execution.faults;
  (match o.Execution.respond with
  | Some s when s.Respond.smode <> Respond.Off ->
    Printf.printf "respond: %s\n" (Format.asprintf "%a" Respond.pp_summary s);
    if s.Respond.smode = Respond.Oblivious then
      Printf.printf
        (if o.Execution.survived then
           "survived: execution ran to completion with every detected \
            out-of-bounds access redirected\n"
         else "not survived\n")
  | _ -> ());
  if o.Execution.degraded then
    Printf.printf
      "! degraded: watchpoint installation kept failing; fell back to \
       canary-only detection\n"

let run_cmd =
  let app_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"APP" ~doc:"Application name (see $(b,list)).")
  in
  let run name engine tool policy no_evidence benign seed runs store_file
      faults respond metrics profile metrics_json events snapshot_sec flight
      trace_out =
    apply_engine engine;
    match Buggy_app.by_name name with
    | None ->
      Printf.eprintf "unknown application %S; try 'csod_run list'\n" name;
      exit 1
    | Some app ->
      let config = config_of ~tool ~policy ~no_evidence in
      let store = load_store store_file in
      let input = if benign then Execution.Benign else Execution.Buggy in
      let snapshot_cycles = snapshot_cycles_of snapshot_sec in
      let cap = recorder_capacity ~flight ~trace_out in
      let detected = ref 0 in
      let survived = ref 0 in
      let last = ref None in
      let last_rec = ref None in
      with_events events (fun () ->
          for s = seed to seed + runs - 1 do
            let execute () =
              Execution.run ~app ~config ~input ~seed:s ~store ~respond
                ~snapshot_cycles ?faults ()
            in
            let o =
              match cap with
              | None -> execute ()
              | Some capacity ->
                (* A fresh recorder per execution so the kept recording is
                   one coherent run, not a splice. *)
                let r = Flight_recorder.create ~capacity () in
                last_rec := Some r;
                Flight_recorder.with_recorder r execute
            in
            if runs = 1 then print_outcome app o;
            if o.Execution.detected then incr detected;
            if o.Execution.survived then incr survived;
            last := Some o
          done);
      if runs > 1 then begin
        Printf.printf "%s: detected in %d/%d executions (%s)\n" app.Buggy_app.name
          !detected runs (Config.label config);
        if respond = Respond.Oblivious then
          Printf.printf "%s: survived %d/%d executions under oblivious mode\n"
            app.Buggy_app.name !survived runs;
        match !last with
        | Some o ->
          print_fault_summary o.Execution.faults;
          if o.Execution.degraded then
            Printf.printf "(final execution degraded to canary-only mode)\n"
        | None -> ()
      end;
      (match !last with
      | Some o ->
        (* With --runs > 1 the telemetry shown is the final execution's:
           each execution runs on a fresh machine, so registries are not
           carried across runs. *)
        if (metrics || profile) && runs > 1 then
          Printf.printf "(telemetry of the final execution, seed %d)\n"
            (seed + runs - 1);
        emit_telemetry ~metrics ~profile ~metrics_json o.Execution.telemetry
          ~cycles:o.Execution.cycles
      | None -> ());
      (match !last_rec with
      | Some r ->
        if runs > 1 then
          Printf.printf "(flight recording of the final execution, seed %d)\n"
            (seed + runs - 1);
        print_recorder_summary r;
        (match trace_out with
        | Some file -> write_trace file (Flight_recorder.records r)
        | None -> ())
      | None -> ());
      save_store
        ?faults:(match !last with Some o -> o.Execution.faults | None -> None)
        store store_file
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a bundled buggy application under a detection tool.")
    Term.(const run $ app_arg $ engine_arg $ tool_arg $ policy_arg $ no_evidence_arg $ benign_arg
          $ seed_arg $ runs_arg $ store_arg $ faults_arg $ respond_arg
          $ metrics_arg $ profile_arg $ metrics_json_arg $ events_arg
          $ snapshot_arg $ flight_arg $ trace_out_arg)

(* ---- explain: post-mortem diagnosis ---- *)

let explain_cmd =
  let app_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"APP" ~doc:"Application name (see $(b,list)).")
  in
  let run name policy no_evidence benign seed runs flight trace_out =
    match Buggy_app.by_name name with
    | None ->
      Printf.eprintf "unknown application %S; try 'csod_run list'\n" name;
      exit 1
    | Some app ->
      let config = Config.csod_with_policy policy ~evidence:(not no_evidence) in
      let input = if benign then Execution.Benign else Execution.Buggy in
      let capacity =
        Option.value flight ~default:Flight_recorder.default_capacity
      in
      let a = Postmortem.analyze ~app ~config ~input ~seed ~capacity () in
      Printf.printf "%s, %s, seed %d\n" app.Buggy_app.name (Config.label config)
        seed;
      print_string (Postmortem.render ~symbolize:(Execution.symbolizer app) a);
      (match trace_out with
      | Some file -> write_trace file a.Postmortem.records
      | None -> ());
      if runs > 1 then begin
        Printf.printf "\n=== miss attribution over %d runs (seeds %d..%d) ===\n"
          runs seed (seed + runs - 1);
        let tally =
          Effectiveness.miss_attribution ~app ~config ~runs ~from_seed:seed ()
        in
        List.iter
          (fun (label, n) ->
            Printf.printf "  %-24s %5d  (%.1f%%)\n" label n
              (100.0 *. float_of_int n /. float_of_int runs))
          tally
      end
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Post-mortem diagnosis: run an app under CSOD with a flight \
             recorder plus the ground-truth oracle, and explain why the bug \
             was detected or missed (failed coin flips, lost watchpoints, \
             probability timeline).  With $(b,--runs) N, also tally the \
             verdicts across N seeds.")
    Term.(const run $ app_arg $ policy_arg $ no_evidence_arg $ benign_arg
          $ seed_arg $ runs_arg $ flight_arg $ trace_out_arg)

(* ---- fleet ---- *)

let burst_conv =
  let parse s =
    match Workload.burst_of_string s with
    | Some b -> Ok b
    | None ->
      Error (`Msg (Printf.sprintf "unknown burst %S (steady|frontload|wave)" s))
  in
  let print ppf b = Fmt.string ppf (Workload.burst_name b) in
  Arg.conv (parse, print)

let fleet_cmd =
  let app_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"APP" ~doc:"Application name.")
  in
  let users_arg =
    Arg.(value & opt int 1000 & info [ "users" ] ~docv:"N" ~doc:"Fleet size.")
  in
  let domains_arg =
    Arg.(value & opt int (Pool.default_domains ())
         & info [ "domains" ] ~docv:"N"
             ~doc:"Domains executing users in parallel (default: the \
                   hardware's recommended count).  The report is identical \
                   for every value; only the wall clock changes.")
  in
  let epoch_arg =
    Arg.(value & opt int 32
         & info [ "epoch" ] ~docv:"N"
             ~doc:"Mean arrivals per epoch.  Evidence is exchanged only at \
                   epoch barriers (periodic fleet report upload): contexts \
                   found in epoch $(i,e) are pinned from epoch $(i,e+1) on.")
  in
  let benign_frac_arg =
    Arg.(value & opt float 0.0
         & info [ "benign-frac" ] ~docv:"F"
             ~doc:"Fraction of users running the overflow-free input.")
  in
  let burst_arg =
    Arg.(value & opt burst_conv Workload.Steady
         & info [ "burst" ] ~docv:"SHAPE"
             ~doc:"Arrival shape: steady, frontload (launch spike) or wave.")
  in
  let wave_period_arg =
    Arg.(value & opt int 2
         & info [ "wave-period" ] ~docv:"N"
             ~doc:"Full heavy+light cycle of the $(b,wave) burst, in epochs \
                   (the heavy half comes first, so even a period longer than \
                   the run admits its launch cohort at epoch 0).")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the full fleet report as one JSON object on stdout \
                   (schema csod.fleet.report/1) instead of the summary.")
  in
  let live_arg =
    Arg.(value & opt ~vopt:(Some "-") (some string) None
         & info [ "live" ] ~docv:"FILE"
             ~doc:"Stream one csod.fleet.health/1 JSONL record per epoch \
                   barrier to $(docv) (default stdout), flushed line by \
                   line — tail it, or watch it with $(b,csod_run top).")
  in
  let no_sharded_arg =
    Arg.(value & flag
         & info [ "no-sharded" ]
             ~doc:"Aggregate telemetry with the legacy per-user fold instead \
                   of per-domain shards.  The report is bit-identical either \
                   way; this exists for A/B-ing the merge cost (the health \
                   stream's $(b,merge_seconds)).")
  in
  let fleet_trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write the run's wall-clock timeline (per-domain user \
                   chunks, barrier waits, merges) as Chrome trace-event JSON \
                   to $(docv) ($(b,-) for stdout) — open it in \
                   ui.perfetto.dev.")
  in
  let run name engine users domains epoch benign_frac burst wave_period seed
      policy no_evidence store_file faults respond json live no_sharded
      trace_out =
    apply_engine engine;
    match Buggy_app.by_name name with
    | None ->
      Printf.eprintf "unknown application %S\n" name;
      exit 1
    | Some app ->
      let config = config_of ~tool:`Csod ~policy ~no_evidence in
      let workload =
        Workload.make ~benign_frac ~base_seed:seed ~burst ~wave_period ~users
          ()
      in
      (* The live stream goes through the fleet's health callback — invoked
         at barriers, in the main domain — NOT through a process-global
         event sink, which runtime trace points would race from the worker
         domains. *)
      let with_live f =
        match live with
        | None -> f None
        | Some "-" -> f (Some stdout)
        | Some file -> Out_channel.with_open_text file (fun oc -> f (Some oc))
      in
      with_live (fun live_oc ->
          let on_health =
            Option.map
              (fun oc s ->
                output_string oc (Obs_json.to_string (Health.to_json s));
                output_char oc '\n';
                (* Line-by-line flush: the stream is tail-able while the
                   run is still going. *)
                flush oc)
              live_oc
          in
          let cfg =
            Fleet.config ~domains ~epoch_size:epoch ?faults
              ~sharded:(not no_sharded)
              ~trace:(trace_out <> None)
              ?on_health
              ?patch_threshold:
                (match respond with Respond.Patch n -> Some n | _ -> None)
              workload
          in
          let store =
            match store_file with Some f -> Some (Persist.load f) | None -> None
          in
          let report =
            Fleet.run ?store cfg
              ~execute:(Execution.executor ~app ~config ~respond ?faults ())
          in
          save_store ?faults:report.Fleet.faults report.Fleet.store store_file;
          (match trace_out with
          | None -> ()
          | Some out ->
            let s =
              Trace_export.fleet_spans_to_string ~domains
                report.Fleet.trace_spans
            in
            (match out with
            | "-" -> print_endline s
            | file ->
              Out_channel.with_open_text file (fun oc ->
                  output_string oc s;
                  output_char oc '\n');
              (* stderr: stdout may be carrying --json or --live=- *)
              Printf.eprintf "fleet trace written to %s\n" file));
          if json then
            print_endline
              (Obs_json.to_string
                 (Fleet.to_json ~app:app.Buggy_app.name
                    ~config:(Config.label config) report))
          else if live <> Some "-" then begin
            Printf.printf "%s under %s\n" app.Buggy_app.name
              (Config.label config);
            print_string (Fleet.summary report);
            match report.Fleet.faults with
            | Some inj ->
              Printf.printf "pool faults: %s\n" (Fault_injector.summary inj)
            | None -> ()
          end)
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:"Crowdsourcing simulation: a parallel fleet of users sharing \
             overflow evidence at epoch barriers.")
    Term.(const run $ app_arg $ engine_arg $ users_arg $ domains_arg
          $ epoch_arg $ benign_frac_arg $ burst_arg $ wave_period_arg
          $ seed_arg $ policy_arg $ no_evidence_arg $ store_arg $ faults_arg
          $ respond_arg $ json_arg $ live_arg $ no_sharded_arg
          $ fleet_trace_arg)

(* ---- serve: long-running service loop over the fleet ---- *)

let no_color_arg =
  Arg.(value & flag & info [ "no-color" ] ~doc:"Disable ANSI colors.")

let serve_cmd =
  let app_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"APP" ~doc:"Application name.")
  in
  let users_arg =
    Arg.(value & opt int 100_000
         & info [ "users" ] ~docv:"N"
             ~doc:"Population ceiling: arrivals stop once $(docv) users have \
                   been admitted (the service keeps observing the idle \
                   fleet).")
  in
  let domains_arg =
    Arg.(value & opt int (Pool.default_domains ())
         & info [ "domains" ] ~docv:"N"
             ~doc:"Domains executing users in parallel.  History, alerts and \
                   the status snapshot (minus its $(b,wall) member) are \
                   bit-identical for every value.")
  in
  let epoch_arg =
    Arg.(value & opt int 32
         & info [ "epoch" ] ~docv:"N" ~doc:"Mean arrivals per epoch.")
  in
  let epochs_arg =
    Arg.(value & opt int 200
         & info [ "epochs" ] ~docv:"N"
             ~doc:"Epoch barriers to drive before exiting (a resumed service \
                   counts the epochs already served).")
  in
  let benign_frac_arg =
    Arg.(value & opt float 0.0
         & info [ "benign-frac" ] ~docv:"F"
             ~doc:"Fraction of users running the overflow-free input.")
  in
  let burst_arg =
    Arg.(value & opt burst_conv Workload.Wave
         & info [ "burst" ] ~docv:"SHAPE"
             ~doc:"Arrival shape: steady, frontload or wave (default wave — \
                   diurnal traffic is what a service sees).")
  in
  let wave_period_arg =
    Arg.(value & opt int 2
         & info [ "wave-period" ] ~docv:"N"
             ~doc:"Full heavy+light wave cycle, in epochs.")
  in
  let alerts_arg =
    Arg.(value & opt (some string) None
         & info [ "alerts" ] ~docv:"SPEC"
             ~doc:"Alert rules, comma-separated: \
                   $(i,name)[>$(i,LIMIT)|<$(i,LIMIT)][\\@$(i,WINDOW)] with \
                   names stall, degraded, skew, faults, cdf, patch — e.g. \
                   $(b,stall\\@50,degraded>0.1\\@10).  Default \
                   $(b,stall,degraded,skew).")
  in
  let alerts_file_arg =
    Arg.(value & opt (some string) None
         & info [ "alerts-file" ] ~docv:"FILE"
             ~doc:"Read alert rules from $(docv) (one per line, $(b,#) \
                   comments); combined with $(b,--alerts).")
  in
  let windows_arg =
    Arg.(value & opt string "1,10,100"
         & info [ "windows" ] ~docv:"LIST"
             ~doc:"Rolling-window sizes (epochs) for the dashboard, \
                   comma-separated.")
  in
  let history_arg =
    Arg.(value & opt (some string) None
         & info [ "history" ] ~docv:"DIR"
             ~doc:"Append checksummed csod.serve.history/1 segments under \
                   $(docv); $(b,csod_run replay) re-renders and re-checks \
                   them offline.")
  in
  let rotate_arg =
    Arg.(value & opt int 4096
         & info [ "rotate" ] ~docv:"N" ~doc:"History lines per segment file.")
  in
  let status_file_arg =
    Arg.(value & opt (some string) None
         & info [ "status-file" ] ~docv:"FILE"
             ~doc:"Atomically republish a csod.serve.status/1 snapshot to \
                   $(docv) — watch it with $(b,csod_run top --follow).")
  in
  let status_every_arg =
    Arg.(value & opt int 1
         & info [ "status-every" ] ~docv:"N"
             ~doc:"Epochs between status republications.")
  in
  let checkpoint_file_arg =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Checkpoint the service state to $(docv); a later \
                   $(b,serve) with the same configuration resumes the same \
                   deterministic stream from it.")
  in
  let checkpoint_every_arg =
    Arg.(value & opt int 0
         & info [ "checkpoint-every" ] ~docv:"N"
             ~doc:"Epochs between checkpoints (0: only on exit).")
  in
  let live_arg =
    Arg.(value & flag
         & info [ "live" ]
             ~doc:"Redraw the service dashboard in place at every barrier.")
  in
  let parse_windows s =
    let parts =
      String.split_on_char ',' s |> List.map String.trim
      |> List.filter (( <> ) "")
    in
    let ints = List.filter_map int_of_string_opt parts in
    if List.length ints <> List.length parts || ints = []
       || List.exists (fun w -> w < 1) ints
    then None
    else Some ints
  in
  let run name engine users domains epoch epochs benign_frac burst wave_period
      seed policy no_evidence faults respond alerts alerts_file windows
      history rotate status_file status_every checkpoint checkpoint_every live
      no_color =
    apply_engine engine;
    match Buggy_app.by_name name with
    | None ->
      Printf.eprintf "unknown application %S\n" name;
      exit 1
    | Some app ->
      let rules_spec =
        String.concat "\n"
          (Option.to_list alerts
          @ (match alerts_file with
            | Some f -> [ In_channel.with_open_text f In_channel.input_all ]
            | None -> []))
      in
      let rules =
        if rules_spec = "" then Alert.defaults
        else
          match Alert.parse rules_spec with
          | Ok [] -> Alert.defaults
          | Ok rules -> rules
          | Error m ->
            Printf.eprintf "%s\n" m;
            exit 1
      in
      let windows =
        match parse_windows windows with
        | Some ws -> ws
        | None ->
          Printf.eprintf "bad --windows %S (comma-separated sizes >= 1)\n"
            windows;
          exit 1
      in
      let config = config_of ~tool:`Csod ~policy ~no_evidence in
      let workload =
        Workload.make ~benign_frac ~base_seed:seed ~burst ~wave_period ~users
          ()
      in
      let cfg =
        Serve.config ~domains ~epoch_size:epoch ?faults
          ?patch_threshold:
            (match respond with Respond.Patch n -> Some n | _ -> None)
          ~rules ~windows ?history_dir:history ~rotate
          ?status_path:status_file ~status_every ?checkpoint_path:checkpoint
          ~checkpoint_every workload
      in
      (match
         Serve.start cfg
           ~execute:(Execution.executor ~app ~config ~respond ?faults ())
       with
      | Error m ->
        Printf.eprintf "serve: %s\n" m;
        exit 1
      | Ok t ->
        let color = (not no_color) && Unix.isatty Unix.stdout in
        let resumed_at = Serve.epoch t in
        if resumed_at > 0 then
          Printf.printf "resumed from %s at epoch %d\n"
            (Option.value checkpoint ~default:"checkpoint") resumed_at;
        let fired = ref 0 and cleared = ref 0 in
        while Serve.epoch t < epochs do
          let o = Serve.step t in
          List.iter
            (fun (ev : Alert.event) ->
              if ev.Alert.firing then incr fired else incr cleared;
              if not live then
                Printf.printf "[alert] %s %s at epoch %d\n"
                  (Alert.to_spec ev.Alert.rule)
                  (if ev.Alert.firing then "FIRING" else "cleared")
                  ev.Alert.epoch)
            o.Serve.events;
          if live then begin
            if color then print_string "\x1b[2J\x1b[H";
            (match Serve.render_status ~color (Serve.status_json t) with
            | Some s -> print_string s
            | None -> ());
            flush stdout
          end
        done;
        let report = Serve.finish t in
        if not live then begin
          match Serve.render_status ~color (Serve.status_json t) with
          | Some s -> print_string s
          | None -> ()
        end;
        Printf.printf
          "served %d epochs: %d arrived, %d detections, %d alerts fired, %d \
           cleared, %.3f s wall\n"
          (Serve.epoch t - resumed_at)
          (Serve.arrived t) (Serve.detections t) !fired !cleared
          report.Fleet.wall_seconds;
        (match report.Fleet.first_catch with
        | Some s ->
          Printf.printf "first catch: user #%d in epoch %d\n"
            s.Fleet.user.Workload.uid s.Fleet.epoch
        | None -> ()))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the fleet as a long-lived service in virtual time: \
             open-ended arrivals, rolling-window telemetry, alert rules, \
             durable checksummed history, live status snapshots and \
             checkpoint/resume.  Deterministic: the same seed and schedule \
             produce bit-identical history and alerts at any \
             $(b,--domains).")
    Term.(const run $ app_arg $ engine_arg $ users_arg $ domains_arg
          $ epoch_arg $ epochs_arg $ benign_frac_arg $ burst_arg
          $ wave_period_arg
          $ seed_arg $ policy_arg $ no_evidence_arg $ faults_arg
          $ respond_arg $ alerts_arg
          $ alerts_file_arg $ windows_arg $ history_arg $ rotate_arg
          $ status_file_arg $ status_every_arg $ checkpoint_file_arg
          $ checkpoint_every_arg $ live_arg $ no_color_arg)

(* ---- replay: re-render and re-check a history directory offline ---- *)

let replay_cmd =
  let dir_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"DIR"
             ~doc:"History directory written by $(b,serve --history).")
  in
  let run dir no_color =
    match Serve.replay dir with
    | Error m ->
      Printf.eprintf "replay: %s\n" m;
      exit 1
    | Ok r ->
      let color = (not no_color) && Unix.isatty Unix.stdout in
      (match Serve.render_status ~color r.Serve.status with
      | Some s -> print_string s
      | None -> ());
      List.iter
        (fun body ->
          let str k =
            match Obs_json.member k body with
            | Some (`String s) -> s
            | _ -> "?"
          in
          let int k =
            Option.value ~default:0
              (Option.bind (Obs_json.member k body) Obs_json.to_int)
          in
          Printf.printf "[alert] %s %s at epoch %d\n" (str "spec")
            (if str "state" = "fire" then "FIRING" else "cleared")
            (int "epoch"))
        r.Serve.recorded;
      Printf.printf "history: %d health records, %d alert transitions%s\n"
        (List.length r.Serve.observations)
        (List.length r.Serve.recorded)
        (match r.Serve.read_errors with
        | [] -> ""
        | es -> Printf.sprintf ", %d corrupt lines skipped" (List.length es));
      List.iter (fun e -> Printf.eprintf "corrupt: %s\n" e) r.Serve.read_errors;
      if r.Serve.mismatches = [] then
        Printf.printf
          "replay: recomputed alert stream matches the recorded one\n"
      else begin
        List.iter (fun m -> Printf.eprintf "replay: %s\n" m) r.Serve.mismatches;
        exit 1
      end
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Rebuild the service's view from its durable history alone: \
             verify line checksums, re-render the dashboard, re-evaluate the \
             alert rules over the recorded health stream and compare against \
             the recorded alert transitions (non-zero exit on mismatch).")
    Term.(const run $ dir_arg $ no_color_arg)

(* ---- top: one-screen dashboard over a health stream ---- *)

let top_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE"
             ~doc:"Health JSONL stream (written by $(b,fleet --live=FILE)).")
  in
  let follow_arg =
    Arg.(value & flag
         & info [ "follow"; "f" ]
             ~doc:"Keep re-reading and re-rendering until interrupted, like \
                   $(b,tail -f) for the dashboard.")
  in
  let interval_arg =
    Arg.(value & opt float 0.5
         & info [ "interval" ] ~docv:"SECS"
             ~doc:"Polling interval with $(b,--follow).")
  in
  let read_samples file =
    if not (Sys.file_exists file) then []
    else
      In_channel.with_open_text file (fun ic ->
          let rec go acc =
            match In_channel.input_line ic with
            | None -> List.rev acc
            | Some line ->
              let acc =
                (* Skip blank, foreign and torn lines: the stream may be
                   mid-write when we poll it. *)
                if String.trim line = "" then acc
                else
                  match Obs_json.of_string line with
                  | Ok json ->
                    (match Health.of_json json with
                    | Some s -> s :: acc
                    | None -> acc)
                  | Error _ -> acc
              in
              go acc
          in
          go [])
  in
  (* A status file is a single csod.serve.status/1 object (atomically
     republished by [serve --status-file]); anything else is treated as a
     health JSONL stream. *)
  let read_status file =
    if not (Sys.file_exists file) then None
    else
      let content = In_channel.with_open_text file In_channel.input_all in
      match Obs_json.of_string (String.trim content) with
      | Ok json -> (
        match Obs_json.member "schema" json with
        | Some (`String "csod.serve.status/1") -> Some json
        | _ -> None)
      | Error _ -> None
  in
  let run file follow interval no_color =
    let color = (not no_color) && Unix.isatty Unix.stdout in
    let render () =
      (match Option.bind (read_status file) (Serve.render_status ~color) with
      | Some s -> print_string s
      | None -> print_string (Health.render ~color (read_samples file)));
      flush stdout
    in
    if not follow then render ()
    else begin
      let interval = if interval > 0.0 then interval else 0.5 in
      try
        while true do
          (* Clear + home, then redraw the whole screen. *)
          if color then print_string "\x1b[2J\x1b[H";
          render ();
          Unix.sleepf interval
        done
      with Sys.Break -> ()
    end
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Render a fleet health stream (csod.fleet.health/1 JSONL) or a \
             service status snapshot (csod.serve.status/1, auto-detected) as \
             a one-screen dashboard: detection CDF, rolling windows, alert \
             states, throughput, straggler skew, per-domain load bars.")
    Term.(const run $ file_arg $ follow_arg $ interval_arg $ no_color_arg)

(* ---- sim: deterministic simulation testing with shrinking ---- *)

let sim_cmd =
  let alphabet_arg =
    Arg.(value & opt_all string []
         & info [ "alphabet" ] ~docv:"NAME"
             ~doc:"Alphabet to sweep (repeatable).  Default: every \
                   real-system alphabet (heap, runtime, fleet, store).  The \
                   planted-bug alphabets (store-buggy-merge, \
                   fleet-evidence-bug) are reachable only by explicit name.")
  in
  let sim_runs_arg =
    Arg.(value & opt int 100
         & info [ "runs" ] ~docv:"N"
             ~doc:"Operation sequences per alphabet (seeds $(b,--seed), \
                   $(b,--seed)+1, ...).")
  in
  let ops_arg =
    Arg.(value & opt int 60
         & info [ "ops" ] ~docv:"N" ~doc:"Maximum operations per sequence.")
  in
  let no_shrink_arg =
    Arg.(value & flag
         & info [ "no-shrink" ]
             ~doc:"Report the first failing sequence as generated, without \
                   minimizing it.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Append each counterexample as one csod.sim.repro/1 JSONL \
                   line to $(docv).")
  in
  let replay_arg =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"FILE"
             ~doc:"Re-execute every csod.sim.repro/1 record in $(docv) and \
                   verify each fails at the recorded step with the recorded \
                   message and replay hash (bit-identical trace).  Non-zero \
                   exit on any divergence.")
  in
  let replay_file file =
    let lines =
      In_channel.with_open_text file In_channel.input_lines
      |> List.filter (fun l -> String.trim l <> "")
    in
    if lines = [] then begin
      Printf.eprintf "replay: %s holds no repro records\n" file;
      exit 1
    end;
    let bad = ref 0 in
    List.iteri
      (fun i line ->
        let fail msg =
          incr bad;
          Printf.printf "record %d: FAIL %s\n" (i + 1) msg
        in
        match Obs_json.of_string line with
        | Error m -> fail ("unparsable JSON: " ^ m)
        | Ok json -> (
          match Sim.of_json json with
          | Error m -> fail ("bad repro record: " ^ m)
          | Ok f -> (
            match Sim.replay Sim_registry.all f with
            | Ok msg ->
              Printf.printf "record %d: ok %s/%d %s\n" (i + 1) f.Sim.alphabet
                f.Sim.seed msg
            | Error m -> fail m)))
      lines;
    if !bad > 0 then begin
      Printf.eprintf "replay: %d of %d records diverged\n" !bad
        (List.length lines);
      exit 1
    end;
    Printf.printf "replay: %d records re-executed bit-identically\n"
      (List.length lines)
  in
  let run engine alphabets seed runs ops no_shrink out replay =
    apply_engine engine;
    match replay with
    | Some file -> replay_file file
    | None ->
      let packs =
        match alphabets with
        | [] -> Sim_registry.default
        | names ->
          List.map
            (fun n ->
              match Sim_registry.find n with
              | Some p -> p
              | None ->
                Printf.eprintf "unknown alphabet %S (have: %s)\n" n
                  (String.concat ", " Sim_registry.names);
                exit 1)
            names
      in
      let out_oc =
        Option.map (fun f -> open_out_gen [ Open_append; Open_creat ] 0o644 f) out
      in
      let failures = ref 0 in
      List.iter
        (fun pack ->
          let fs =
            Sim.run_packed ~shrink_failures:(not no_shrink) pack ~seed ~runs
              ~ops
          in
          (match fs with
          | [] ->
            Printf.printf "%-18s %d runs x %d ops: ok\n" (Sim.name_of pack)
              runs ops
          | fs ->
            List.iter
              (fun f ->
                incr failures;
                Printf.printf "%-18s FAILED\n%s" (Sim.name_of pack)
                  (Sim.summary f);
                match out_oc with
                | Some oc ->
                  output_string oc (Sim.repro_line f);
                  output_char oc '\n'
                | None -> ())
              fs);
          flush stdout)
        packs;
      Option.iter close_out out_oc;
      (match (out, !failures) with
      | Some file, n when n > 0 ->
        Printf.printf "%d counterexample%s appended to %s\n" n
          (if n = 1 then "" else "s")
          file
      | _ -> ());
      if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:"Deterministic simulation testing: draw weighted operation \
             sequences over a stack layer (heap, runtime, fleet, store), \
             check a model-based invariant after every step, shrink any \
             counterexample to a minimal operation list, and emit it as a \
             runnable csod.sim.repro/1 record.  $(b,--replay FILE) \
             re-executes recorded counterexamples bit-identically (replay \
             hash over ops, arguments and per-step state digests).")
    Term.(const run $ engine_arg $ alphabet_arg $ seed_arg $ sim_runs_arg
          $ ops_arg $ no_shrink_arg $ out_arg $ replay_arg)

(* ---- exec: user-supplied MiniC program ---- *)

let exec_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"MiniC source file.")
  in
  let inputs_arg =
    Arg.(value & opt_all int []
         & info [ "input" ] ~docv:"N" ~doc:"Value for the input() builtin (repeatable).")
  in
  let module_arg =
    Arg.(value & opt string "main"
         & info [ "module" ] ~docv:"NAME" ~doc:"Module tag for the compilation unit.")
  in
  let dump_arg =
    Arg.(value & flag
         & info [ "dump" ] ~doc:"Pretty-print the checked program and exit.")
  in
  let run file inputs module_name engine tool policy no_evidence seed
      store_file faults respond dump metrics profile metrics_json events
      snapshot_sec flight trace_out =
    apply_engine engine;
    let source = In_channel.with_open_text file In_channel.input_all in
    match Program.load [ { Program.file; module_name; source } ] with
    | Error errs ->
      List.iter (fun e -> Printf.eprintf "%s\n" (Format.asprintf "%a" Program.pp_error e)) errs;
      exit 1
    | Ok program when dump ->
      print_endline (Pretty.program_to_string (Program.functions program))
    | Ok program ->
      let injector =
        Option.map (fun plan -> Fault_injector.create ~plan ~salt:seed) faults
      in
      let machine = Machine.create ~seed ?faults:injector () in
      let snapshot_cycles = snapshot_cycles_of snapshot_sec in
      if snapshot_cycles > 0 then
        Telemetry.set_snapshot_interval (Machine.telemetry machine)
          ~cycles:snapshot_cycles;
      let heap = Heap.create machine in
      let store = load_store store_file in
      let config = config_of ~tool ~policy ~no_evidence in
      let inst =
        Config.instantiate config ~machine ~heap ~store ~respond ~seed ()
      in
      let recorder =
        Option.map
          (fun capacity -> Flight_recorder.create ~capacity ())
          (recorder_capacity ~flight ~trace_out)
      in
      let with_rec f =
        match recorder with
        | None -> f ()
        | Some r -> Flight_recorder.with_recorder r f
      in
      let crashed =
        with_events events (fun () ->
            with_rec (fun () ->
                let crashed =
                  try
                    let r =
                      Engine.run
                        ~engine:(Engine.current_default ())
                        ~machine ~tool:inst.Config.tool ~program
                        ~inputs:(Array.of_list inputs) ~app_seed:seed ()
                    in
                    print_string r.Interp.output;
                    None
                  with
                  | Interp.Runtime_error (msg, loc) ->
                    Some (Printf.sprintf "%s: %s" (Srcloc.to_string loc) msg)
                  | Heap.Error msg -> Some msg
                in
                (* Termination handling inside the sink's and recorder's
                   scope: the canary sweep at exit emits events too. *)
                inst.Config.finish ();
                crashed))
      in
      (match crashed with
      | Some msg -> Printf.printf "! program fault: %s\n" msg
      | None -> ());
      (match inst.Config.csod with
      | Some rt ->
        List.iter
          (fun r ->
            Printf.printf "[%s]\n%s\n" (Report.source_name r.Report.source)
              (Report.format ~symbolize:(Program.symbolize program) r))
          (Runtime.detections rt)
      | None -> ());
      (match inst.Config.asan with
      | Some a ->
        List.iter
          (fun (d : Asan.detection) ->
            Printf.printf "[asan] heap-buffer-overflow %s at 0x%x (site %s)\n"
              (match d.Asan.kind with Tool.Read -> "READ" | Tool.Write -> "WRITE")
              d.Asan.addr
              (Program.symbolize program d.Asan.site))
          (Asan.detections a)
      | None -> ());
      save_store ?faults:injector store store_file;
      if not (inst.Config.detected ()) then
        Printf.printf "no overflow detected in this execution\n";
      print_fault_summary injector;
      (match inst.Config.respond with
      | Some r ->
        Printf.printf "respond: %s\n"
          (Format.asprintf "%a" Respond.pp_summary (Respond.summary r))
      | None -> ());
      (match inst.Config.csod with
      | Some rt when Runtime.degraded rt ->
        Printf.printf
          "! degraded: watchpoint installation kept failing; fell back to \
           canary-only detection\n"
      | _ -> ());
      emit_telemetry ~metrics ~profile ~metrics_json (Machine.telemetry machine)
        ~cycles:(Clock.cycles (Machine.clock machine));
      (match recorder with
      | Some r ->
        print_recorder_summary r;
        (match trace_out with
        | Some out -> write_trace out (Flight_recorder.records r)
        | None -> ())
      | None -> ())
  in
  Cmd.v
    (Cmd.info "exec" ~doc:"Run a MiniC source file under a detection tool.")
    Term.(const run $ file_arg $ inputs_arg $ module_arg $ engine_arg
          $ tool_arg $ policy_arg
          $ no_evidence_arg $ seed_arg $ store_arg $ faults_arg $ respond_arg
          $ dump_arg $ metrics_arg $ profile_arg $ metrics_json_arg
          $ events_arg $ snapshot_arg $ flight_arg $ trace_out_arg)

let () =
  (* --trace anywhere on the command line streams the runtime's sampling
     decisions (watch/skip, replacements, traps, canaries) to stderr *)
  if Array.exists (( = ) "--trace") Sys.argv then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.Src.set_level Trace.src (Some Logs.Debug)
  end;
  let argv = Array.of_list (List.filter (( <> ) "--trace") (Array.to_list Sys.argv)) in
  let info =
    Cmd.info "csod_run" ~version:"1.0.0"
      ~doc:"Context-Sensitive Overflow Detection (CGO 2019) — simulation CLI"
  in
  exit
    (Cmd.eval ~argv
       (Cmd.group info
          [ list_cmd; run_cmd; explain_cmd; fleet_cmd; serve_cmd; replay_cmd;
            top_cmd; sim_cmd; exec_cmd ]))
