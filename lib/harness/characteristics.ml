type table1_row = { app : string; vulnerability : string; reference : string }

let table1 () =
  List.map
    (fun (a : Buggy_app.t) ->
      { app = a.Buggy_app.name;
        vulnerability =
          (match a.Buggy_app.vuln with
          | Report.Over_read -> "Over-read"
          | Report.Over_write -> "Over-write");
        reference = a.Buggy_app.reference })
    (Buggy_app.all ())

type table3_row = {
  app : string;
  total_contexts : int;
  total_allocations : int;
  before_contexts : int;
  before_allocations : int;
  detected_kind : string;
}

let table3 () =
  List.map
    (fun (a : Buggy_app.t) ->
      match Oracle.observe ~app:a ~input:Execution.Buggy () with
      | Error e -> failwith (Printf.sprintf "oracle run of %s crashed: %s" a.Buggy_app.name e)
      | Ok t -> (
        match Oracle.first_overflow t with
        | None ->
          failwith (Printf.sprintf "oracle run of %s saw no overflow" a.Buggy_app.name)
        | Some o ->
          { app = a.Buggy_app.name;
            total_contexts = Oracle.total_contexts t;
            total_allocations = Oracle.total_allocations t;
            before_contexts = o.Oracle.contexts_before;
            before_allocations = o.Oracle.allocs_before;
            detected_kind =
              (match o.Oracle.kind with
              | Tool.Read -> "Over-read"
              | Tool.Write -> "Over-write") }))
    (Buggy_app.all ())

type table4_row = {
  app : string;
  loc : int;
  contexts : int;
  allocations : int;
  watched_times : int;
  sim_scale : int;
}

let table4 ?(progress = fun _ -> ()) () =
  List.map
    (fun (p : Perf_profile.t) ->
      let r = Perf_driver.run ~profile:p ~config:Config.csod_default () in
      progress (Printf.sprintf "%s: WT=%d" p.Perf_profile.name r.Perf_driver.watched_times);
      { app = p.Perf_profile.name;
        loc = p.Perf_profile.loc;
        contexts = p.Perf_profile.contexts;
        allocations = p.Perf_profile.allocations;
        watched_times = r.Perf_driver.watched_times;
        sim_scale = r.Perf_driver.scale })
    (Perf_profile.all ())
