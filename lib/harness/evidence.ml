type row = {
  app : string;
  vuln : string;
  first_run_watchpoint : bool;
  first_run_evidence : bool;
  second_run_watchpoint : bool;
}

let is_write (a : Buggy_app.t) = a.Buggy_app.vuln = Report.Over_write

let has_source reports src =
  List.exists (fun r -> r.Report.source = src) reports

let second_execution ?(seed = 1) () =
  Buggy_app.all ()
  |> List.filter is_write
  |> List.map (fun app ->
         let store = Persist.create () in
         let config = Config.csod_default in
         let o1 = Execution.run ~app ~config ~seed ~store () in
         let o2 = Execution.run ~app ~config ~seed:(seed + 1) ~store () in
         { app = app.Buggy_app.name;
           vuln = "Over-write";
           first_run_watchpoint = has_source o1.Execution.reports Report.Watchpoint;
           first_run_evidence =
             has_source o1.Execution.reports Report.Canary_free
             || has_source o1.Execution.reports Report.Canary_exit;
           second_run_watchpoint = has_source o2.Execution.reports Report.Watchpoint })

let fleet ~app ~users ?(policy = Params.Near_fifo) () =
  let store = Persist.create () in
  let config = Config.csod_with_policy policy ~evidence:true in
  match
    Fleet.until_detected ~store ~users
      ~execute:(Execution.executor ~app ~config ()) ()
  with
  | Some s -> Option.map (fun src -> (s.Fleet.user.Workload.uid, src)) s.Fleet.exec.Fleet.source
  | None -> None
