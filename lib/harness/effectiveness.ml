type row = {
  app_name : string;
  naive : int;
  random : int;
  near_fifo : int;
  runs : int;
}

let run_app ~app ~policy ~runs ?(from_seed = 1) () =
  let config = Config.csod_with_policy policy ~evidence:false in
  let detected = ref 0 in
  for seed = from_seed to from_seed + runs - 1 do
    let o = Execution.run ~app ~config ~seed () in
    if o.Execution.watchpoint_reports <> [] then incr detected
  done;
  !detected

(* Where do the misses go?  Classify every run of an app with the
   post-mortem verdict machinery and tally the labels — "coin-failed"
   vs "watch-evicted" etc. tells you whether sampling or replacement is
   the bottleneck for this workload. *)
let miss_attribution ~app ~config ?(runs = 20) ?(from_seed = 1)
    ?(progress = fun _ -> ()) () =
  let tally = Hashtbl.create 8 in
  for seed = from_seed to from_seed + runs - 1 do
    let a = Postmortem.analyze ~app ~config ~seed () in
    let label = Postmortem.verdict_label a.Postmortem.verdict in
    Hashtbl.replace tally label
      (1 + Option.value ~default:0 (Hashtbl.find_opt tally label));
    progress (Printf.sprintf "seed %d: %s" seed label)
  done;
  Hashtbl.fold (fun label n acc -> (label, n) :: acc) tally []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let table2 ?(runs = 1000) ?(progress = fun _ -> ()) () =
  List.map
    (fun app ->
      let cell policy =
        let n = run_app ~app ~policy ~runs () in
        progress
          (Printf.sprintf "%s / %s: %d/%d" app.Buggy_app.name
             (Params.policy_name policy) n runs);
        n
      in
      let naive = cell Params.Naive in
      let random = cell Params.Random in
      let near_fifo = cell Params.Near_fifo in
      { app_name = app.Buggy_app.name; naive; random; near_fifo; runs })
    (Buggy_app.all ())

let average_rate rows =
  let avg f =
    Stats.mean (List.map (fun r -> float_of_int (f r) /. float_of_int r.runs) rows)
  in
  (avg (fun r -> r.naive), avg (fun r -> r.random), avg (fun r -> r.near_fifo))
