(** Ground-truth overflow oracle.

    A harness-only tool that tracks the exact bounds of every live object
    and inspects {e every} access (it instruments everything, unlike ASan,
    and needs no watchpoints, unlike CSOD).  It never misses a contiguous
    overflow, so one oracle run per application yields Table III's ground
    truth: the total context/allocation census, the census {e at the moment
    the overflowed object was allocated}, and the overflow class.

    Like the detection tools, the oracle pads each allocation so its
    tripwire zone lies inside the object's own block — a neighbouring
    object can then neither clobber the zone nor touch it legitimately.

    The oracle is an experimental instrument, not part of the reproduced
    system — the paper's authors extracted the same numbers with separate
    profiling runs. *)

type overflow = {
  kind : Tool.access_kind;
  object_addr : int;
  object_size : int;
  alloc_index : int;      (** 1-based index of the object's allocation *)
  contexts_before : int;  (** distinct contexts when it was allocated (inclusive) *)
  allocs_before : int;    (** allocations when it was allocated (inclusive) *)
  access_site : int;
  alloc_ctx_key : Alloc_ctx.key;
}

type t

val create : Machine.t -> Heap.t -> t
val tool : t -> Tool.t

val first_overflow : t -> overflow option
val total_contexts : t -> int
val total_allocations : t -> int

val observe :
  ?seed:int -> ?engine:Engine.t -> app:Buggy_app.t ->
  input:Execution.input_choice -> unit -> (t, string) result
(** Run the app once under the oracle and return it for inspection;
    [Error] carries a crash message if the program faulted.  [seed]
    (default 1) seeds both the machine and the program-visible [rand], so
    an oracle run can be paired with a detection run of the same seed for
    allocation-index correlation.  [engine] defaults to {!Engine.Interp}
    — unlike {!Execution.run}, the oracle ignores the process default, so
    ground truth always rides the reference semantics unless a caller
    explicitly opts into the VM (the engine A/B tests do). *)
