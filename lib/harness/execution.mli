(** One execution of a buggy application under a tool configuration. *)

type input_choice = Buggy | Benign

type outcome = {
  detected : bool;                 (** did the tool flag an overflow? *)
  reports : Report.t list;         (** CSOD reports (empty for other tools) *)
  watchpoint_reports : Report.t list;
      (** the subset detected by a firing watchpoint — what Table II counts *)
  asan_detections : Asan.detection list;
  stats : Runtime.stats option;    (** CSOD runtime counters *)
  cycles : int;                    (** virtual cycles of the execution *)
  output : string;                 (** program stdout *)
  crashed : string option;         (** runtime/heap fault, if any; the tool's
                                       termination handling still ran *)
  degraded : bool;                 (** did CSOD fall back to canary-only mode?
                                       (see {!Runtime.degraded}) *)
  faults : Fault_injector.t option;
      (** this execution's injector, carrying per-point fired counts *)
  telemetry : Telemetry.t;         (** the machine's metrics registry and
                                       cycle-attribution profile for this run *)
  respond : Respond.summary option;
      (** active-response tallies, when a mode other than [Off] ran *)
  survived : bool;
      (** oblivious mode only: the execution ran to completion with every
          detected out-of-bounds access redirected and no corruption
          escaping past a canary.  Always false when the response layer is
          off — an undetected silent run is not a survival claim. *)
}

val run :
  app:Buggy_app.t ->
  config:Config.t ->
  ?engine:Engine.t ->
  ?input:input_choice ->
  ?seed:int ->
  ?store:Persist.t ->
  ?respond:Respond.mode ->
  ?snapshot_cycles:int ->
  ?faults:Fault_plan.t ->
  unit ->
  outcome
(** Execute the app once on a fresh machine.  [engine] picks the MiniC
    execution engine (default {!Engine.current_default}, i.e. the bytecode
    VM unless the CLI overrode it); both engines are observably identical,
    so the choice only affects host-time throughput.  [seed] (default 1) varies
    both the machine RNG (CSOD's sampling draws) and the program-visible
    [rand] (timing jitter), modeling distinct production executions.
    [input] defaults to [Buggy].  [snapshot_cycles] (default 0 = off)
    enables periodic telemetry snapshots at that virtual-cycle interval.
    [faults] arms deterministic fault injection on the machine
    (perf-event failures, trap drop/delay), with an injector salted by
    [seed]; the injector is returned in the outcome for accounting and
    for faulting any subsequent {!Persist.save}.  The tool's termination
    handling always runs, even after a crash — mirroring CSOD's
    interception of erroneous exits (Section IV-B). *)

val executor :
  app:Buggy_app.t ->
  config:Config.t ->
  ?engine:Engine.t ->
  ?input_of:(Workload.user -> input_choice) ->
  ?respond:Respond.mode ->
  ?faults:Fault_plan.t ->
  unit ->
  outcome Fleet.executor
(** Adapt {!run} to the fleet simulator: one user execution per call, on
    the user's seed and input choice (default: [Benign] iff
    [user.benign]), against the store snapshot the fleet hands over.  The
    returned closure is safe to call from pool domains — the app's
    program memo (and the VM's bytecode cache) is forced eagerly, and each
    execution builds its own machine, heap and tool.  The engine is
    resolved once, when the executor is built, so a fleet run is uniform
    even if the process default changes mid-flight. *)

val run_until_detected :
  app:Buggy_app.t -> config:Config.t -> max_runs:int -> (int * outcome) option
(** Repeat single executions with seeds 1, 2, ... until one detects the
    overflow; returns (number of executions needed, that outcome).  Each
    execution is independent (fresh empty store) — this is
    {!Fleet.until_detected} without a shared store. *)

val symbolizer : Buggy_app.t -> int -> string
(** Address symbolizer for the app's program, for report formatting. *)
