(* Post-mortem diagnosis of one execution: pair a flight-recorder
   recording with the oracle's ground truth and explain, per detection and
   per missed bug, exactly what the sampling machinery did. *)

open Flight_recorder

type verdict =
  | Detected of string
  | Coin_failed of float
  | Outbid of float
  | Evicted of { by : int; by_ctx : int }
  | Removed_on_free
  | Watched_no_trap
  | Record_dropped
  | No_oracle of string

let verdict_label = function
  | Detected src -> "detected:" ^ src
  | Coin_failed _ -> "coin-failed"
  | Outbid _ -> "outbid"
  | Evicted _ -> "watch-evicted"
  | Removed_on_free -> "removed-on-free"
  | Watched_no_trap -> "watched-no-trap"
  | Record_dropped -> "record-dropped"
  | No_oracle _ -> "no-oracle"

type analysis = {
  outcome : Execution.outcome;
  records : record list;
  recorded : int;
  dropped : int;
  oracle : Oracle.overflow option;
  target_addr : int option; (* overflowing object's address in this run *)
  target_ctx : int option;
  verdict : verdict;
  seed : int;
}

(* ---- correlation ---- *)

let find_alloc_by_index records index =
  List.find_opt
    (fun r -> match r.kind with Alloc a -> a.index = index | _ -> false)
    records

(* The object's story: records touching [addr] from its allocation up to
   (and including) the free that ends its life — address reuse by a later
   object must not bleed in. *)
let story records ~addr ~from_seq =
  let rec go acc = function
    | [] -> List.rev acc
    | r :: rest when r.seq < from_seq -> go acc rest
    | r :: rest -> (
      let mine a = a = addr in
      match r.kind with
      | Free a when mine a.addr -> List.rev (r :: acc)
      | Alloc a when mine a.addr && r.seq > from_seq -> List.rev acc
      | Alloc a when mine a.addr -> go (r :: acc) rest
      | Decision a when mine a.addr -> go (r :: acc) rest
      | Watch a when mine a.addr -> go (r :: acc) rest
      | Replace a when mine a.victim || mine a.by -> go (r :: acc) rest
      | Unwatch_free a when mine a.addr -> go (r :: acc) rest
      | Trap a when mine a.addr -> go (r :: acc) rest
      | Canary_check a when mine a.addr -> go (r :: acc) rest
      | Detection a when mine a.addr -> go (r :: acc) rest
      | _ -> go acc rest)
  in
  (* The Watch/Replace record is emitted inside the install that the
     sampling decision triggered, so it carries an earlier seq than its
     Decision; swap them so the story reads cause before effect. *)
  let rec reorder = function
    | ({ kind = Watch _ | Replace _; _ } as w)
      :: ({ kind = Decision _; _ } as d)
      :: rest
      when w.at = d.at -> d :: w :: reorder rest
    | r :: rest -> r :: reorder rest
    | [] -> []
  in
  reorder (go [] records)

let classify ~records ~story:st ~addr =
  let detection =
    List.find_map
      (fun r -> match r.kind with Detection d when d.addr = addr -> Some d.source | _ -> None)
      st
  in
  match detection with
  | Some src -> Detected src
  | None ->
    let watched =
      List.exists (fun r -> match r.kind with Watch _ -> true | _ -> false) st
    in
    if watched then
      let evicted =
        List.find_map
          (fun r ->
            match r.kind with
            | Replace p when p.victim = addr ->
              Some (Evicted { by = p.by; by_ctx = p.by_ctx })
            | _ -> None)
          st
      in
      match evicted with
      | Some v -> v
      | None ->
        if
          List.exists
            (fun r -> match r.kind with Unwatch_free _ -> true | _ -> false)
            st
        then Removed_on_free
        else Watched_no_trap
    else
      let decision =
        List.find_map
          (fun r ->
            match r.kind with Decision d -> Some (d.coin, d.prob) | _ -> None)
          st
      in
      (match decision with
      | Some (false, p) -> Coin_failed p
      | Some (true, p) -> Outbid p
      | None -> ignore records; Record_dropped)

let analyze ~(app : Buggy_app.t) ~config ?(input = Execution.Buggy) ?(seed = 1)
    ?(capacity = Flight_recorder.default_capacity) () =
  let oracle =
    match Oracle.observe ~seed ~app ~input () with
    | Ok o -> (
      match Oracle.first_overflow o with
      | Some ov -> Ok ov
      | None -> Error "oracle saw no overflow on this input")
    | Error msg -> Error (Printf.sprintf "oracle run crashed: %s" msg)
  in
  let recorder = Flight_recorder.create ~capacity () in
  let outcome =
    Flight_recorder.with_recorder recorder (fun () ->
        Execution.run ~app ~config ~input ~seed ())
  in
  let records = Flight_recorder.records recorder in
  let target =
    match oracle with
    | Error _ -> None
    | Ok ov -> (
      match find_alloc_by_index records ov.Oracle.alloc_index with
      | Some ({ kind = Alloc a; _ } as r) -> Some (r.seq, a.addr, a.ctx)
      | _ -> None)
  in
  let verdict =
    match (oracle, target) with
    | Error msg, _ -> No_oracle msg
    | Ok _, None -> Record_dropped
    | Ok _, Some (from_seq, addr, _) ->
      classify ~records ~story:(story records ~addr ~from_seq) ~addr
  in
  { outcome;
    records;
    recorded = Flight_recorder.recorded recorder;
    dropped = Flight_recorder.dropped recorder;
    oracle = (match oracle with Ok ov -> Some ov | Error _ -> None);
    target_addr = Option.map (fun (_, addr, _) -> addr) target;
    target_ctx = Option.map (fun (_, _, ctx) -> ctx) target;
    verdict;
    seed }

(* ---- rendering ---- *)

let secs at = float_of_int at /. float_of_int Cost.cycles_per_second
let fmt_t at = Printf.sprintf "t=%10.6fs" (secs at)
let pct p = Printf.sprintf "%.4f%%" (p *. 100.)

let line_of_record ~symbolize r =
  let t = fmt_t r.at in
  match r.kind with
  | Alloc a ->
    Some
      (Printf.sprintf "%s  allocated (alloc #%d, %d bytes) at %s" t a.index
         a.size (symbolize a.site))
  | Decision d when d.startup ->
    Some (Printf.sprintf "%s  watched on startup (installation due to availability)" t)
  | Decision d ->
    Some
      (Printf.sprintf "%s  sampling decision p=%s: %s" t (pct d.prob)
         (if d.watched then "coin won -> WATCH"
          else if d.coin then "coin won, but no watchpoint slot yielded"
          else "coin failed -> skip"))
  | Watch _ -> Some (Printf.sprintf "%s  watchpoint installed at object boundary" t)
  | Replace p ->
    Some
      (Printf.sprintf "%s  EVICTED: watchpoint handed to 0x%x (ctx#%d)" t p.by
         p.by_ctx)
  | Unwatch_free _ -> Some (Printf.sprintf "%s  watchpoint removed (object freed)" t)
  | Trap tr ->
    Some (Printf.sprintf "%s  TRAP: %s of the guarded boundary (tid %d)" t tr.access tr.tid)
  | Canary_check c ->
    Some
      (Printf.sprintf "%s  canary check: %s" t
         (if c.ok then "intact" else "CORRUPTED"))
  | Detection d -> Some (Printf.sprintf "%s  DETECTED via %s" t d.source)
  | Free _ -> Some (Printf.sprintf "%s  freed" t)
  | Fault f -> Some (Printf.sprintf "%s  FAULT injected: %s" t f.point)
  | Prob _ | Phase _ -> None

(* A context's probability timeline.  Runs of consecutive decays collapse
   to one line each — a long-lived context decays on every allocation and
   the interesting transitions would otherwise drown. *)
let prob_timeline records ~ctx =
  (* (at, cause, from_p, to_p), oldest first *)
  let transitions =
    List.filter_map
      (fun r ->
        match r.kind with
        | Prob p when p.ctx = ctx -> Some (r.at, p.cause, p.from_p, p.to_p)
        | _ -> None)
      records
  in
  let buf = Buffer.create 256 in
  (* [pending] holds a run of consecutive decays, newest first. *)
  let flush_decays = function
    | [] -> ()
    | [ (at, _, from_p, to_p) ] ->
      Buffer.add_string buf
        (Printf.sprintf "  %s  decay %s -> %s\n" (fmt_t at) (pct from_p)
           (pct to_p))
    | run ->
      let at0, _, from_p, _ = List.hd (List.rev run) in
      let at1, _, _, to_p = List.hd run in
      Buffer.add_string buf
        (Printf.sprintf "  %s  decay %s -> %s (%d allocations, through t=%.6fs)\n"
           (fmt_t at0) (pct from_p) (pct to_p) (List.length run) (secs at1))
  in
  let pending = ref [] in
  List.iter
    (fun ((at, cause, from_p, to_p) as tr) ->
      match cause with
      | Decay -> pending := tr :: !pending
      | cause ->
        flush_decays !pending;
        pending := [];
        Buffer.add_string buf
          (Printf.sprintf "  %s  %s %s -> %s\n" (fmt_t at)
             (prob_cause_name cause) (pct from_p) (pct to_p)))
    transitions;
  flush_decays !pending;
  if Buffer.length buf = 0 then "  (no probability transitions recorded)\n"
  else Buffer.contents buf

let ctx_sampling_summary records ~ctx =
  let decisions =
    List.filter_map
      (fun r ->
        match r.kind with
        | Decision d when d.ctx = ctx -> Some (d.coin, d.watched)
        | _ -> None)
      records
  in
  let total = List.length decisions in
  let count f = List.length (List.filter f decisions) in
  let watched = count (fun (_, w) -> w) in
  let coin_failed = count (fun (c, _) -> not c) in
  let outbid = count (fun (c, w) -> c && not w) in
  Printf.sprintf
    "  %d sampling decisions recorded: %d watched, %d coin flips failed, %d outbid\n"
    total watched coin_failed outbid

let verdict_sentence = function
  | Detected src -> Printf.sprintf "the bug WAS detected (via %s)." src
  | Coin_failed p ->
    Printf.sprintf
      "the overflowing object was never watched: its sampling coin flip failed \
       (probability was %s at allocation time)."
      (pct p)
  | Outbid p ->
    Printf.sprintf
      "the overflowing object won its coin flip (p=%s) but every debug register \
       was held by a higher-probability watchpoint — no slot yielded."
      (pct p)
  | Evicted { by; by_ctx } ->
    Printf.sprintf
      "the overflowing object WAS watched, but the replacement policy evicted \
       its watchpoint in favour of object 0x%x (ctx#%d) before the overflowing \
       access." by by_ctx
  | Removed_on_free ->
    "the overflowing object was watched, but the watchpoint was removed when \
     the object was freed before any overflowing access."
  | Watched_no_trap ->
    "the overflowing object was watched and kept its watchpoint, yet no trap \
     fired — the overflow must have skipped the guarded boundary word."
  | Record_dropped ->
    "the flight recorder no longer holds the overflowing object's records; \
     rerun with a larger --flight-recorder capacity."
  | No_oracle msg -> Printf.sprintf "no ground truth available (%s)." msg

let render ~symbolize a =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "flight recorder: %d records kept (%d emitted, %d overwritten)\n"
    (List.length a.records) a.recorded a.dropped;
  (* Detections, each with its object's lifecycle span. *)
  (match a.outcome.Execution.reports with
  | [] -> add "\nno detection in this execution.\n"
  | reports ->
    List.iteri
      (fun i r ->
        add "\n=== detection #%d: %s ===\n" (i + 1) (Report.one_line ~symbolize r);
        let addr = r.Report.object_addr in
        match
          List.find_opt
            (fun rec_ -> match rec_.kind with Alloc al -> al.addr = addr | _ -> false)
            a.records
        with
        | None -> add "  (object's allocation record no longer in the ring)\n"
        | Some alloc_rec ->
          List.iter
            (fun rec_ ->
              match line_of_record ~symbolize rec_ with
              | Some l -> add "  %s\n" l
              | None -> ())
            (story a.records ~addr ~from_seq:alloc_rec.seq))
      reports);
  (* The bug itself, detected or missed. *)
  (match (a.oracle, a.target_addr) with
  | Some ov, Some addr ->
    let site, _off = ov.Oracle.alloc_ctx_key in
    add "\n=== the bug (oracle ground truth) ===\n";
    add "overflowing allocation context: %s (ctx#%d), alloc #%d\n"
      (symbolize site)
      (Option.value ~default:(-1) a.target_ctx)
      ov.Oracle.alloc_index;
    add "verdict: %s\n" (verdict_sentence a.verdict);
    (match a.verdict with
    | Detected _ -> ()
    | _ ->
      add "\nthe overflowing object's life:\n";
      (match
         List.find_opt
           (fun r -> match r.kind with Alloc al -> al.addr = addr | _ -> false)
           a.records
       with
      | None -> add "  (records overwritten)\n"
      | Some alloc_rec ->
        List.iter
          (fun rec_ ->
            match line_of_record ~symbolize rec_ with
            | Some l -> add "  %s\n" l
            | None -> ())
          (story a.records ~addr ~from_seq:alloc_rec.seq)));
    (match a.target_ctx with
    | None -> ()
    | Some ctx ->
      add "\ncontext #%d sampling history:\n" ctx;
      add "%s" (ctx_sampling_summary a.records ~ctx);
      add "\ncontext #%d probability timeline:\n" ctx;
      add "%s" (prob_timeline a.records ~ctx))
  | _ ->
    add "\n=== ground truth ===\n";
    add "%s\n" (verdict_sentence a.verdict));
  Buffer.contents buf
