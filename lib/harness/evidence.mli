(** Section V-A2: evidence-based over-write detection, and the
    crowdsourcing/fleet story of Section I.

    The paper's claim: with the canary mechanism on, every buffer
    over-write application "can always [be detected] during their second
    execution, if missed in the first" — the first run's corrupted canary
    pins the context in persistent storage, and the second run watches it
    at probability 1.  {!second_execution} verifies that per app.

    {!fleet} generalizes it: a population of users runs the same buggy
    program repeatedly, sharing CSOD's persisted context store the way a
    crowd-sourced deployment would aggregate reports; it returns the
    execution index at which the bug was first caught by a watchpoint. *)

type row = {
  app : string;
  vuln : string;
  first_run_watchpoint : bool;   (** watchpoint caught it on run 1 *)
  first_run_evidence : bool;     (** canary evidence observed on run 1 *)
  second_run_watchpoint : bool;  (** watchpoint caught it on run 2 (the claim) *)
}

val second_execution : ?seed:int -> unit -> row list
(** Over-write applications only (canaries cannot witness over-reads). *)

val fleet :
  app:Buggy_app.t -> users:int -> ?policy:Params.policy -> unit ->
  (int * Report.source) option
(** Run up to [users] executions with a shared store; returns the 1-based
    execution at which the overflow was first detected and how.  A thin
    wrapper over {!Fleet.until_detected} (the subsystem's sequential
    path); for a parallel population with epoch-based aggregation use
    {!Fleet.run}. *)
