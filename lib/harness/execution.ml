type input_choice = Buggy | Benign

type outcome = {
  detected : bool;
  reports : Report.t list;
  watchpoint_reports : Report.t list;
  asan_detections : Asan.detection list;
  stats : Runtime.stats option;
  cycles : int;
  output : string;
  crashed : string option;
  degraded : bool;
  faults : Fault_injector.t option;
  telemetry : Telemetry.t;
  respond : Respond.summary option;
  survived : bool;
      (* oblivious mode only: ran to completion with every detected
         out-of-bounds access redirected and no corruption escaping *)
}

let instrumented_pred (app : Buggy_app.t) program site =
  match Program.module_of_addr program site with
  | Some m -> List.mem m app.Buggy_app.instrumented_modules
  | None -> false

let run ~(app : Buggy_app.t) ~config ?engine ?(input = Buggy) ?(seed = 1)
    ?store ?(respond = Respond.Off) ?(snapshot_cycles = 0) ?faults () =
  let engine =
    match engine with Some e -> e | None -> Engine.current_default ()
  in
  let program = Buggy_app.program app in
  (* One injector per execution, salted by the execution seed: a fleet of
     executions sharing one plan still faults each user differently, and
     identically for any domain count. *)
  let injector =
    Option.map (fun plan -> Fault_injector.create ~plan ~salt:seed) faults
  in
  let machine = Machine.create ~seed ?faults:injector () in
  if snapshot_cycles > 0 then
    Telemetry.set_snapshot_interval (Machine.telemetry machine)
      ~cycles:snapshot_cycles;
  let heap = Heap.create machine in
  let inst =
    Config.instantiate config ~machine ~heap
      ~instrumented:(instrumented_pred app program)
      ?store ~respond ~seed ()
  in
  let inputs =
    match input with Buggy -> app.Buggy_app.buggy_inputs | Benign -> app.Buggy_app.benign_inputs
  in
  let output = Buffer.create 64 in
  let crashed =
    try
      let r =
        Engine.run ~engine ~machine ~tool:inst.Config.tool ~program ~inputs
          ~app_seed:seed ()
      in
      Buffer.add_string output r.Interp.output;
      None
    with
    | Interp.Runtime_error (msg, loc) ->
      Some (Printf.sprintf "%s: %s" (Srcloc.to_string loc) msg)
    | Heap.Error msg -> Some msg
  in
  (* Termination handling runs regardless of how the program exited. *)
  inst.Config.finish ();
  let reports =
    match inst.Config.csod with Some rt -> Runtime.detections rt | None -> []
  in
  let outcome = { detected = inst.Config.detected ();
    reports;
    watchpoint_reports =
      List.filter (fun r -> r.Report.source = Report.Watchpoint) reports;
    asan_detections =
      (match inst.Config.asan with Some a -> Asan.detections a | None -> []);
    stats = Option.map Runtime.stats inst.Config.csod;
    cycles = Clock.cycles (Machine.clock machine);
    output = Buffer.contents output;
    crashed;
    degraded =
      (match inst.Config.csod with
      | Some rt -> Runtime.degraded rt
      | None -> false);
    faults = injector;
    telemetry = Machine.telemetry machine;
    respond = Option.map Respond.summary inst.Config.respond;
    survived =
      (match inst.Config.respond with
      | Some r -> Respond.survived r && crashed = None
      | None -> false) }
  in
  (* All outcome fields are computed; hand the chunk storage back to the
     domain-local page pool for the next execution. *)
  Sparse_mem.release (Machine.mem machine);
  outcome

let executor ~app ~config ?engine ?input_of ?(respond = Respond.Off) ?faults ()
    =
  let engine =
    match engine with Some e -> e | None -> Engine.current_default ()
  in
  (* Force the program memo (and, for the VM, the bytecode cache) now:
     fleet workers may call the executor from several domains at once, and
     neither memo table is synchronized. *)
  let program = Buggy_app.program app in
  (match engine with
  | Engine.Vm -> Engine.precompile program
  | Engine.Interp -> ());
  let input_of =
    match input_of with
    | Some f -> f
    | None -> fun (u : Workload.user) -> if u.Workload.benign then Benign else Buggy
  in
  fun ~(user : Workload.user) ~store ->
    let o =
      run ~app ~config ~engine ~input:(input_of user) ~seed:user.Workload.seed
        ~store ~respond ?faults ()
    in
    { Fleet.payload = o;
      detected = o.detected;
      source =
        (match o.reports with r :: _ -> Some r.Report.source | [] -> None);
      cycles = o.cycles;
      telemetry = Some o.telemetry;
      degraded = o.degraded }

let run_until_detected ~app ~config ~max_runs =
  match
    Fleet.until_detected ~users:max_runs ~execute:(executor ~app ~config ()) ()
  with
  | Some s -> Some (s.Fleet.user.Workload.uid, s.Fleet.exec.Fleet.payload)
  | None -> None

let symbolizer app = Program.symbolize (Buggy_app.program app)
