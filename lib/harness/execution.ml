type input_choice = Buggy | Benign

type outcome = {
  detected : bool;
  reports : Report.t list;
  watchpoint_reports : Report.t list;
  asan_detections : Asan.detection list;
  stats : Runtime.stats option;
  cycles : int;
  output : string;
  crashed : string option;
  telemetry : Telemetry.t;
}

let instrumented_pred (app : Buggy_app.t) program site =
  match Program.module_of_addr program site with
  | Some m -> List.mem m app.Buggy_app.instrumented_modules
  | None -> false

let run ~(app : Buggy_app.t) ~config ?(input = Buggy) ?(seed = 1) ?store
    ?(snapshot_cycles = 0) () =
  let program = Buggy_app.program app in
  let machine = Machine.create ~seed () in
  if snapshot_cycles > 0 then
    Telemetry.set_snapshot_interval (Machine.telemetry machine)
      ~cycles:snapshot_cycles;
  let heap = Heap.create machine in
  let inst =
    Config.instantiate config ~machine ~heap
      ~instrumented:(instrumented_pred app program)
      ?store ~seed ()
  in
  let inputs =
    match input with Buggy -> app.Buggy_app.buggy_inputs | Benign -> app.Buggy_app.benign_inputs
  in
  let output = Buffer.create 64 in
  let crashed =
    try
      let r =
        Interp.run ~machine ~tool:inst.Config.tool ~program ~inputs ~app_seed:seed ()
      in
      Buffer.add_string output r.Interp.output;
      None
    with
    | Interp.Runtime_error (msg, loc) ->
      Some (Printf.sprintf "%s: %s" (Srcloc.to_string loc) msg)
    | Heap.Error msg -> Some msg
  in
  (* Termination handling runs regardless of how the program exited. *)
  inst.Config.finish ();
  let reports =
    match inst.Config.csod with Some rt -> Runtime.detections rt | None -> []
  in
  { detected = inst.Config.detected ();
    reports;
    watchpoint_reports =
      List.filter (fun r -> r.Report.source = Report.Watchpoint) reports;
    asan_detections =
      (match inst.Config.asan with Some a -> Asan.detections a | None -> []);
    stats = Option.map Runtime.stats inst.Config.csod;
    cycles = Clock.cycles (Machine.clock machine);
    output = Buffer.contents output;
    crashed;
    telemetry = Machine.telemetry machine }

let run_until_detected ~app ~config ~max_runs =
  let rec go seed =
    if seed > max_runs then None
    else
      let o = run ~app ~config ~seed () in
      if o.detected then Some (seed, o) else go (seed + 1)
  in
  go 1

let symbolizer app = Program.symbolize (Buggy_app.program app)
