(** The Table II experiment: detections out of N executions per
    application per watchpoint replacement policy.

    Each execution uses a fresh machine and a distinct seed (the paper's
    1,000 runs differ in the PRNG the sampling decisions consume; seeds
    also jitter the programs' virtual timing).  Detection follows the
    paper's Table II semantics: a hardware watchpoint fired on the
    overflow — the evidence-based canary mechanism is evaluated separately
    (Section V-A2 / {!Evidence}), so these runs disable it. *)

type row = {
  app_name : string;
  naive : int;
  random : int;
  near_fifo : int;
  runs : int;
}

val run_app :
  app:Buggy_app.t -> policy:Params.policy -> runs:int -> ?from_seed:int -> unit -> int
(** Number of executions (seeds [from_seed..from_seed+runs-1], default from
    1) in which a watchpoint caught the overflow. *)

val miss_attribution :
  app:Buggy_app.t -> config:Config.t -> ?runs:int -> ?from_seed:int ->
  ?progress:(string -> unit) -> unit -> (string * int) list
(** Run [runs] (default 20) seeded executions through {!Postmortem.analyze}
    and tally the verdict labels (most frequent first): how often the bug
    was detected, how often the coin flip failed, how often an eviction
    lost the watchpoint, and so on.  [progress] receives one line per
    seed. *)

val table2 : ?runs:int -> ?progress:(string -> unit) -> unit -> row list
(** The full experiment over all nine applications (default 1,000 runs,
    matching the paper).  [progress] receives one message per
    (app, policy) cell as it completes. *)

val average_rate : row list -> float * float * float
(** Mean detection rate (naive, random, near-FIFO) across apps. *)
