let max_sim_allocations = 2_000_000

type result = {
  config : Config.t;
  cycles : int;
  sim_allocations : int;
  scale : int;
  watched_times : int;
  contexts_seen : int;
  resident_kb : int;
  syscalls : int;
  detected : bool;
  telemetry : Telemetry.t;
}

(* Code-address bases for the synthetic context census: one-shot "cold"
   contexts and the hot set carrying ~90% of allocations. *)
let cold_base = 0x100000
let hot_base = 0x200000

let run ~(profile : Perf_profile.t) ~config ?(seed = 11) () =
  let machine = Machine.create ~seed () in
  let heap = Heap.create machine in
  let inst = Config.instantiate config ~machine ~heap ~seed () in
  let tool = inst.Config.tool in
  (* Worker threads exist before the allocation stream begins; watchpoint
     installs pay their per-thread syscalls for all of them. *)
  for w = 2 to profile.Perf_profile.threads do
    ignore (Threads.spawn (Machine.threads machine) ~name:(Printf.sprintf "worker%d" w))
  done;
  Machine.work_as machine Profiler.Init inst.Config.startup_cycles;
  let n = profile.Perf_profile.allocations in
  let scale = max 1 ((n + max_sim_allocations - 1) / max_sim_allocations) in
  let nsim = max 1 (n / scale) in
  let compute_total =
    int_of_float (profile.Perf_profile.runtime_sec *. float_of_int Cost.cycles_per_second)
  in
  let compute_per_iter = max 1 (compute_total / nsim) in
  (* ASan pays a shadow check on every instrumented access; the baseline's
     access time is already inside the compute budget. *)
  let access_charge_per_iter =
    match config with
    | Config.Asan _ ->
      let accesses =
        profile.Perf_profile.access_rate *. profile.Perf_profile.runtime_sec
      in
      int_of_float (accesses /. float_of_int nsim) * Cost.shadow_check
    | Config.Baseline | Config.Csod _ -> 0
  in
  let live = Array.make (Perf_profile.live_target profile) 0 in
  let rng = Prng.create ~seed:(seed * 7919 + 13) in
  let contexts = profile.Perf_profile.contexts in
  let hot = max 1 profile.Perf_profile.hot_contexts in
  (* Mint the cold census evenly across the run: real programs keep
     discovering new allocation sites as they move through phases. *)
  let cold = max 0 (contexts - hot) in
  let mint_every = if cold = 0 then max_int else max 1 (nsim / (cold + 1)) in
  let next_cold = ref 0 in
  let avg = profile.Perf_profile.avg_obj_bytes in
  for i = 0 to nsim - 1 do
    Machine.work machine compute_per_iter;
    if access_charge_per_iter > 0 then Machine.work machine access_charge_per_iter;
    let callsite =
      if !next_cold < cold && i mod mint_every = mint_every - 1 then begin
        let c = cold_base + !next_cold in
        incr next_cold;
        c
      end
      else if Prng.int rng 10 < 9 then hot_base + Prng.int rng hot
      else cold_base + Prng.int rng (max 1 cold)
    in
    let ctx = Alloc_ctx.synthetic ~callsite ~stack_offset:(callsite land 0xff) () in
    (* a handful of distinct size classes per program, as real
       allocators observe; spread around the profile mean *)
    let size = max 1 ((avg / 2) + (max 1 (avg / 4) * Prng.int rng 5)) in
    let slot = i mod Array.length live in
    if live.(slot) <> 0 then tool.Tool.free ~ptr:live.(slot);
    live.(slot) <- tool.Tool.malloc ~size ~ctx
  done;
  inst.Config.finish ();
  (* Resident peak: heap blocks plus tool side structures. *)
  let resident_bytes =
    Heap.resident_bytes heap + tool.Tool.extra_resident_bytes ()
  in
  let measured = Clock.cycles (Machine.clock machine) in
  let charged = (compute_per_iter + access_charge_per_iter) * nsim in
  let tool_alloc_cycles = max 0 (measured - charged - inst.Config.startup_cycles) in
  let cycles =
    inst.Config.startup_cycles + charged + (tool_alloc_cycles * scale)
  in
  let watched_times, contexts_seen =
    match inst.Config.csod with
    | Some rt ->
      let s = Runtime.stats rt in
      (s.Runtime.watched_times, s.Runtime.contexts)
    | None -> (0, 0)
  in
  { config;
    cycles;
    sim_allocations = nsim;
    scale;
    watched_times;
    contexts_seen;
    resident_kb = resident_bytes / 1024;
    syscalls = Machine.syscall_count machine;
    detected = inst.Config.detected ();
    telemetry = Machine.telemetry machine }

let overhead ~baseline r = float_of_int r.cycles /. float_of_int baseline.cycles
