(** Tool configurations compared by the experiments.

    Figure 7 compares four configurations against the uninstrumented
    baseline: "CSOD w/o Evidence", "CSOD", "ASan w/ Minimal Size of
    Redzones", and "ASan" (default redzones).  This module names them and
    instantiates the right tool over a machine/heap pair. *)

type t =
  | Baseline
  | Csod of Params.t
  | Asan of { redzone : int }

val csod_default : t
(** Near-FIFO, evidence on — the paper's headline configuration. *)

val csod_no_evidence : t
val csod_with_policy : Params.policy -> evidence:bool -> t
val asan_min_redzone : t  (* 16-byte redzones, as in the paper's Figure 7 *)
val asan_default : t      (* 128-byte redzones *)

val label : t -> string

type instance = {
  tool : Tool.t;
  finish : unit -> unit;
      (** end-of-execution hook (CSOD's Termination Handling Unit) *)
  detected : unit -> bool;
      (** any overflow detected so far, by whichever mechanism the tool has *)
  csod : Runtime.t option;
  asan : Asan.t option;
  respond : Respond.t option;
      (** the active-response layer, when a mode other than [Off] was
          requested (present for CSOD and ASan configurations) *)
  startup_cycles : int;
      (** one-time initialization cost this configuration charges *)
}

val instantiate :
  t ->
  machine:Machine.t ->
  heap:Heap.t ->
  ?instrumented:(int -> bool) ->
  ?store:Persist.t ->
  ?respond:Respond.mode ->
  ?seed:int ->
  unit ->
  instance
(** Build the tool.  [instrumented] is consulted by ASan only (default:
    everything is instrumented); [store] and [seed] are CSOD's persistence
    and per-execution sampling offset.  [respond] (default [Off]) selects
    the active-response policy; [Off] constructs no layer at all, keeping
    the instance bit-identical to a build without one. *)
