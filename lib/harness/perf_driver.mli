(** Replays a performance workload's allocation stream against a tool and
    measures virtual cycles, resident memory, and watchpoint activity —
    the machinery behind Figure 7 and Tables IV and V.

    The stream realizes the profile's characteristics: its context census
    is minted the way the paper observes real programs doing it (a long
    tail of one-shot contexts plus a few hot ones carrying ~90% of
    allocations), objects live in a FIFO working set sized to the
    profile's footprint, and each iteration charges the profile's share of
    application compute.  ASan's per-access shadow-check cost is charged
    from the profile's instrumented-access rate: those accesses are
    modeled in aggregate (performing hundreds of millions of individual
    simulated loads would measure the simulator, not the tool).

    Allocation streams above {!max_sim_allocations} are subsampled: the
    stream runs [n/scale] allocations and tool-attributable cycles are
    re-extrapolated by [scale] (tool cost is per-allocation, so it scales
    linearly); compute cycles are spread so the full virtual runtime is
    preserved, keeping the time-dependent sampling machinery (burst
    windows, probability decay) on the same clock as the native run. *)

val max_sim_allocations : int
(** 2,000,000. *)

type result = {
  config : Config.t;
  cycles : int;            (** extrapolated virtual cycles of the full run *)
  sim_allocations : int;   (** allocations actually simulated *)
  scale : int;             (** subsampling factor (1 = exact) *)
  watched_times : int;     (** watchpoint installs observed in the simulated
                               stream (Table IV WT); not extrapolated, since
                               install pressure saturates as probabilities
                               degrade *)
  contexts_seen : int;     (** distinct contexts the tool observed *)
  resident_kb : int;       (** peak resident set: heap + tool side tables *)
  syscalls : int;          (** kernel crossings charged (watchpoint traffic) *)
  detected : bool;         (** must stay false: these workloads are bug-free *)
  telemetry : Telemetry.t; (** metrics + per-phase cycle attribution (not
                               extrapolated: raw simulated-stream figures) *)
}

val run : profile:Perf_profile.t -> config:Config.t -> ?seed:int -> unit -> result

val overhead : baseline:result -> result -> float
(** [overhead ~baseline r] is the normalized runtime of [r], e.g. 1.067
    for +6.7%. *)
