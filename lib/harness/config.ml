type t =
  | Baseline
  | Csod of Params.t
  | Asan of { redzone : int }

let csod_default = Csod Params.default
let csod_no_evidence = Csod { Params.default with Params.evidence = false }

let csod_with_policy policy ~evidence =
  Csod { Params.default with Params.policy; evidence }

let asan_min_redzone = Asan { redzone = 16 }
let asan_default = Asan { redzone = 128 }

let label = function
  | Baseline -> "baseline"
  | Csod p ->
    if p.Params.evidence then
      Printf.sprintf "CSOD (%s)" (Params.policy_name p.Params.policy)
    else Printf.sprintf "CSOD w/o evidence (%s)" (Params.policy_name p.Params.policy)
  | Asan { redzone } ->
    if redzone <= 16 then "ASan w/ minimal redzones" else "ASan"

type instance = {
  tool : Tool.t;
  finish : unit -> unit;
  detected : unit -> bool;
  csod : Runtime.t option;
  asan : Asan.t option;
  respond : Respond.t option;
  startup_cycles : int;
}

let instantiate t ~machine ~heap ?(instrumented = fun _ -> true) ?store
    ?(respond = Respond.Off) ?(seed = 0) () =
  (* [Off] constructs no layer at all: the tools receive [None] and behave
     bit-identically to a build that predates the response code. *)
  let rsp = match respond with Respond.Off -> None | m -> Some (Respond.create m) in
  match t with
  | Baseline ->
    { tool = Tool.baseline heap;
      finish = (fun () -> ());
      detected = (fun () -> false);
      csod = None;
      asan = None;
      respond = None;
      startup_cycles = 0 }
  | Csod params ->
    let rt = Runtime.create ~params ?store ?respond:rsp ~seed ~machine ~heap () in
    { tool = Runtime.tool rt;
      finish = (fun () -> Runtime.finish rt);
      detected = (fun () -> Runtime.detected rt);
      csod = Some rt;
      asan = None;
      respond = rsp;
      startup_cycles = Cost.csod_init }
  | Asan { redzone } ->
    let a = Asan.create ~redzone ~instrumented ?respond:rsp ~machine ~heap () in
    { tool = Asan.tool a;
      finish = (fun () -> ());
      detected = (fun () -> Asan.detected a);
      csod = None;
      asan = Some a;
      respond = rsp;
      startup_cycles = Cost.asan_init }
