type overflow = {
  kind : Tool.access_kind;
  object_addr : int;
  object_size : int;
  alloc_index : int;
  contexts_before : int;
  allocs_before : int;
  access_site : int;
  alloc_ctx_key : Alloc_ctx.key;
}

type obj = {
  o_addr : int;
  o_size : int;
  o_index : int;
  o_contexts : int;
  o_allocs : int;
  o_key : Alloc_ctx.key;
}

(* Bytes past each object's end that we register as tripwire territory.
   Contiguous overflows strike within the first few words. *)
let zone = 32

type t = {
  heap : Heap.t;
  tripwires : (int, obj) Hashtbl.t; (* one entry per zone byte *)
  contexts : (Alloc_ctx.key, unit) Hashtbl.t;
  sizes : (int, int) Hashtbl.t; (* live object -> requested size *)
  mutable allocs : int;
  mutable first : overflow option;
}

let create _machine heap =
  { heap;
    tripwires = Hashtbl.create 4096;
    contexts = Hashtbl.create 256;
    sizes = Hashtbl.create 1024;
    allocs = 0;
    first = None }

let register t (obj : obj) =
  for i = 0 to zone - 1 do
    Hashtbl.replace t.tripwires (obj.o_addr + obj.o_size + i) obj
  done

let unregister t addr size =
  for i = 0 to zone - 1 do
    Hashtbl.remove t.tripwires (addr + size + i)
  done

let oracle_malloc t ~size ~ctx =
  (* Pad the block so the tripwire zone lies inside the object's own
     allocation, exactly as detection tools pad theirs: a neighbour can
     then never sit inside (or legitimately touch) the zone. *)
  let addr = Heap.malloc t.heap (size + zone) in
  Hashtbl.replace t.sizes addr size;
  t.allocs <- t.allocs + 1;
  if not (Hashtbl.mem t.contexts (Alloc_ctx.key ctx)) then
    Hashtbl.add t.contexts (Alloc_ctx.key ctx) ();
  let obj =
    { o_addr = addr;
      o_size = size;
      o_index = t.allocs;
      o_contexts = Hashtbl.length t.contexts;
      o_allocs = t.allocs;
      o_key = Alloc_ctx.key ctx }
  in
  register t obj;
  addr

let oracle_free t ~ptr =
  (match Hashtbl.find_opt t.sizes ptr with
  | Some size ->
    unregister t ptr size;
    Hashtbl.remove t.sizes ptr
  | None -> ());
  Heap.free t.heap ptr

let on_access t ~addr ~len ~kind ~site =
  if t.first = None then
    let rec scan i =
      if i >= len then ()
      else
        match Hashtbl.find_opt t.tripwires (addr + i) with
        | Some obj ->
          t.first <-
            Some
              { kind;
                object_addr = obj.o_addr;
                object_size = obj.o_size;
                alloc_index = obj.o_index;
                contexts_before = obj.o_contexts;
                allocs_before = obj.o_allocs;
                access_site = site;
                alloc_ctx_key = obj.o_key }
        | None -> scan (i + 1)
    in
    scan 0

let tool t =
  { Tool.name = "oracle";
    malloc = (fun ~size ~ctx -> oracle_malloc t ~size ~ctx);
    free = (fun ~ptr -> oracle_free t ~ptr);
    on_access = (fun ~addr ~len ~kind ~site -> on_access t ~addr ~len ~kind ~site);
    at_exit = (fun () -> ());
    extra_resident_bytes = (fun () -> 0) }

let first_overflow t = t.first
let total_contexts t = Hashtbl.length t.contexts
let total_allocations t = t.allocs

let observe ?(seed = 1) ?(engine = Engine.Interp) ~(app : Buggy_app.t) ~input
    () =
  let program = Buggy_app.program app in
  let machine = Machine.create ~seed () in
  let heap = Heap.create machine in
  let t = create machine heap in
  let inputs =
    match input with
    | Execution.Buggy -> app.Buggy_app.buggy_inputs
    | Execution.Benign -> app.Buggy_app.benign_inputs
  in
  try
    (* The oracle defaults to the AST interpreter: ground truth rides the
       reference semantics, independent of the VM under test. *)
    let (_ : Interp.result) =
      Engine.run ~engine ~machine ~tool:(tool t) ~program ~inputs
        ~app_seed:seed ()
    in
    Ok t
  with
  | Interp.Runtime_error (msg, loc) ->
    Error (Printf.sprintf "%s: %s" (Srcloc.to_string loc) msg)
  | Heap.Error msg -> Error msg
