(** Post-mortem diagnosis: why a detection happened, or why a bug slipped
    through.

    [analyze] runs the {!Oracle} and a CSOD execution with the same seed
    (so the 1-based allocation index correlates the two runs even though
    tool padding shifts addresses), recording the CSOD run with a
    {!Flight_recorder}.  The verdict classifies the overflowing object's
    fate from its lifecycle records; [render] turns the whole analysis
    into the human-readable report behind [csod_run explain]. *)

type verdict =
  | Detected of string  (** detection source name, e.g. ["watchpoint"] *)
  | Coin_failed of float
      (** never watched: the sampling coin flip failed (probability at
          allocation time attached) *)
  | Outbid of float
      (** coin won, but no watchpoint slot yielded to this object *)
  | Evicted of { by : int; by_ctx : int }
      (** watched, then preempted by [by] before the overflowing access *)
  | Removed_on_free  (** watched, but freed before the overflowing access *)
  | Watched_no_trap
      (** watched through the overflow yet no trap fired (access skipped
          the guarded boundary word) *)
  | Record_dropped
      (** the ring overwrote the object's records; retry with a larger
          capacity *)
  | No_oracle of string  (** ground truth unavailable (reason attached) *)

val verdict_label : verdict -> string
(** Short stable label (["coin-failed"], ["watch-evicted"], ...) for
    tallies and machine consumption. *)

type analysis = {
  outcome : Execution.outcome;
  records : Flight_recorder.record list;  (** oldest first *)
  recorded : int;
  dropped : int;
  oracle : Oracle.overflow option;
  target_addr : int option;
      (** the overflowing object's address in the recorded run *)
  target_ctx : int option;
  verdict : verdict;
  seed : int;
}

val analyze :
  app:Buggy_app.t ->
  config:Config.t ->
  ?input:Execution.input_choice ->
  ?seed:int ->
  ?capacity:int ->
  unit ->
  analysis
(** One oracle run plus one recorded CSOD run, both with [seed]
    (default 1).  [capacity] sizes the flight recorder (default
    {!Flight_recorder.default_capacity}). *)

val render : symbolize:(int -> string) -> analysis -> string
(** The full post-mortem: per-detection object stories, the missed-bug
    diagnosis (which coin flips failed, which eviction lost the
    watchpoint), and the overflowing context's probability timeline. *)
