(** Deterministic fault injection.

    An injector turns a {!Fault_plan} into per-opportunity decisions.  Each
    execution builds its own injector from the plan's seed and a per-
    execution salt (the execution seed), so a fleet reaches identical
    verdicts for any domain count, and re-running with the same [--faults]
    spec replays the same faults.

    The injector draws from its own PRNG stream, never the workload's: a
    fault point whose rate is zero (and with no pending one-shot) performs
    {e no} draw, so an all-zero plan is bit-identical to no plan. *)

type t

val create : plan:Fault_plan.t -> salt:int -> t
(** [salt] decorrelates executions sharing one plan (use the execution
    seed).  Same (plan, salt) ⇒ same decision stream. *)

val plan : t -> Fault_plan.t

val force : t -> Fault_plan.point -> unit
(** [force t point] schedules a deterministic single-shot: the next
    {!fire} at [point] returns true, consuming the forced shot instead of
    drawing — the plan's PRNG stream does not advance, so a forced fault
    perturbs no later rate decision.  Multiple forces queue.  This is the
    simulation harness's hook for firing a fault at an exact step. *)

val fire : ?now:float -> t -> Fault_plan.point -> bool
(** Should this opportunity fail?  True consumes a pending one-shot due at
    virtual second [now] (any pending one-shot when [now] is not supplied —
    clockless call sites), else draws against the plan's rate.  Fired
    faults are tallied for {!summary}. *)

val indexed : t -> Fault_plan.point -> index:int -> attempt:int -> bool
(** Stateless decision for parallel call sites (the fleet pool): a pure
    function of (plan seed, point, index, attempt) — independent of
    scheduling, domain count, and call order.  One-shots interpret their
    [@N] as the chunk index, firing on attempt 1.  Mutates nothing; tally
    with {!record} from a single domain. *)

val record : ?n:int -> t -> Fault_plan.point -> unit
(** Tally [n] (default 1) injected faults at [point]. *)

val count : t -> Fault_plan.point -> int
val total : t -> int

val draw_float : t -> float
(** A uniform draw from the fault stream, for fault {e shapes} (e.g. where
    to tear a torn write). *)

val summary : t -> string
(** One line: the plan and the per-point injected counts. *)
