(* One injector per execution: a PRNG stream derived from (plan seed, salt)
   that is consulted only at configured fault points, so an all-zero plan
   performs no draws at all and perturbs nothing. *)

type t = {
  plan : Fault_plan.t;
  salt : int;
  rng : Prng.t;
  mutable pending : (Fault_plan.point * float) list; (* unfired one-shots *)
  mutable forced : Fault_plan.point list; (* deterministic single-shots *)
  counts : (Fault_plan.point, int) Hashtbl.t;
}

(* splitmix64-style finalizer: decorrelates (plan seed, salt) pairs so
   neighbouring execution seeds get unrelated fault streams. *)
let mix a b =
  let open Int64 in
  let h = add (of_int a) (mul (of_int b) 0x9E3779B97F4A7C15L) in
  let h = mul (logxor h (shift_right_logical h 30)) 0xBF58476D1CE4E5B9L in
  let h = mul (logxor h (shift_right_logical h 27)) 0x94D049BB133111EBL in
  to_int (logxor h (shift_right_logical h 31)) land Stdlib.max_int

let create ~plan ~salt =
  { plan;
    salt;
    rng = Prng.create ~seed:(mix plan.Fault_plan.seed salt);
    pending = plan.Fault_plan.oneshots;
    forced = [];
    counts = Hashtbl.create 8 }

let plan t = t.plan

let record ?(n = 1) t point =
  let c = Option.value ~default:0 (Hashtbl.find_opt t.counts point) in
  Hashtbl.replace t.counts point (c + n)

let count t point =
  Option.value ~default:0 (Hashtbl.find_opt t.counts point)

let total t = Hashtbl.fold (fun _ n acc -> acc + n) t.counts 0

let take_oneshot t ?now point =
  let due at = match now with None -> true | Some s -> s >= at in
  let rec go acc = function
    | [] -> false
    | (p, at) :: rest when p = point && due at ->
      t.pending <- List.rev_append acc rest;
      true
    | entry :: rest -> go (entry :: acc) rest
  in
  go [] t.pending

let force t point = t.forced <- t.forced @ [ point ]

let take_forced t point =
  let rec go acc = function
    | [] -> false
    | p :: rest when p = point ->
      t.forced <- List.rev_append acc rest;
      true
    | p :: rest -> go (p :: acc) rest
  in
  go [] t.forced

let fire ?now t point =
  (* Forced single-shots are consumed first and, like zero-rate points,
     perform no draw — firing a forced fault leaves the plan's PRNG stream
     exactly where it was. *)
  let forced = t.forced <> [] && take_forced t point in
  let hit =
    forced
    || (t.pending <> [] && take_oneshot t ?now point)
    ||
    let r = Fault_plan.rate t.plan point in
    r > 0.0 && Prng.float t.rng < r
  in
  if hit then record t point;
  hit

let draw_float t = Prng.float t.rng

(* Scheduling-independent decision for parallel callers: the outcome is a
   pure function of (plan seed, point, index, attempt), so fleet workers
   reach the same verdicts for any domain count and interleaving.  The
   caller tallies via [record] after joining — [indexed] itself mutates
   nothing. *)
let indexed t point ~index ~attempt =
  List.exists
    (fun (p, at) -> p = point && attempt = 1 && int_of_float at = index)
    t.plan.Fault_plan.oneshots
  ||
  let r = Fault_plan.rate t.plan point in
  r > 0.0
  &&
  let g =
    Prng.create
      ~seed:
        (mix
           (mix t.plan.Fault_plan.seed (Fault_plan.point_id point))
           ((index * 2) + attempt))
  in
  Prng.float g < r

let summary t =
  let injected =
    List.filter_map
      (fun p ->
        match count t p with
        | 0 -> None
        | n -> Some (Printf.sprintf "%s=%d" (Fault_plan.point_name p) n))
      Fault_plan.all_points
  in
  Printf.sprintf "faults (%s): %s"
    (Fault_plan.to_string t.plan)
    (if injected = [] then "none injected" else String.concat " " injected)
