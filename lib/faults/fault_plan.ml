type point =
  | Perf_ebusy
  | Perf_eacces
  | Trap_drop
  | Trap_delay
  | Persist_torn
  | Persist_enospc
  | Worker_crash

let all_points =
  [ Perf_ebusy; Perf_eacces; Trap_drop; Trap_delay; Persist_torn;
    Persist_enospc; Worker_crash ]

let point_name = function
  | Perf_ebusy -> "ebusy"
  | Perf_eacces -> "eacces"
  | Trap_drop -> "trap-drop"
  | Trap_delay -> "trap-delay"
  | Persist_torn -> "persist-torn"
  | Persist_enospc -> "persist-enospc"
  | Worker_crash -> "worker-crash"

let point_of_name s =
  List.find_opt (fun p -> point_name p = s) all_points

(* [point_id] keys the per-point hash streams; it must stay stable across
   reorderings of [all_points], so it is spelled out rather than derived. *)
let point_id = function
  | Perf_ebusy -> 1
  | Perf_eacces -> 2
  | Trap_drop -> 3
  | Trap_delay -> 4
  | Persist_torn -> 5
  | Persist_enospc -> 6
  | Worker_crash -> 7

type t = {
  seed : int;
  rates : (point * float) list; (* nonzero entries only, spec order *)
  oneshots : (point * float) list; (* virtual seconds; spec order *)
}

let zero = { seed = 0; rates = []; oneshots = [] }
let is_zero t = t.rates = [] && t.oneshots = []

let rate t p =
  match List.assoc_opt p t.rates with Some r -> r | None -> 0.0

let oneshots_for t p =
  List.filter_map (fun (q, at) -> if q = p then Some at else None) t.oneshots

let of_string spec =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let parse_entry acc entry =
    match acc with
    | Error _ as e -> e
    | Ok t -> (
      match String.index_opt entry '=' with
      | Some i ->
        let name = String.sub entry 0 i in
        let value = String.sub entry (i + 1) (String.length entry - i - 1) in
        if name = "seed" then
          match int_of_string_opt value with
          | Some seed -> Ok { t with seed }
          | None -> err "faults: bad seed %S" value
        else (
          match (point_of_name name, float_of_string_opt value) with
          | None, _ -> err "faults: unknown fault point %S" name
          | _, None -> err "faults: bad rate %S for %s" value name
          | Some _, Some r when r < 0.0 || r > 1.0 ->
            err "faults: rate for %s must be in [0,1], got %s" name value
          | Some p, Some r ->
            if r = 0.0 then Ok t
            else Ok { t with rates = t.rates @ [ (p, r) ] })
      | None -> (
        match String.index_opt entry '@' with
        | Some i ->
          let name = String.sub entry 0 i in
          let value = String.sub entry (i + 1) (String.length entry - i - 1) in
          (match (point_of_name name, float_of_string_opt value) with
          | None, _ -> err "faults: unknown fault point %S" name
          | _, None -> err "faults: bad one-shot time %S for %s" value name
          | Some _, Some at when at < 0.0 ->
            err "faults: one-shot time for %s must be >= 0, got %s" name value
          | Some p, Some at -> Ok { t with oneshots = t.oneshots @ [ (p, at) ] })
        | None -> err "faults: expected point=rate or point@time, got %S" entry))
  in
  String.split_on_char ',' spec
  |> List.filter (fun s -> s <> "")
  |> List.fold_left parse_entry (Ok zero)

let to_string t =
  let seed = if t.seed = 0 then [] else [ Printf.sprintf "seed=%d" t.seed ] in
  let rates =
    List.map (fun (p, r) -> Printf.sprintf "%s=%g" (point_name p) r) t.rates
  in
  let oneshots =
    List.map
      (fun (p, at) -> Printf.sprintf "%s@%g" (point_name p) at)
      t.oneshots
  in
  match seed @ rates @ oneshots with
  | [] -> "none"
  | entries -> String.concat "," entries
