(** Declarative fault plans: what can fail, how often, and when.

    A plan is a pure description — per-point failure rates (probability per
    opportunity) plus one-shot faults scheduled in virtual time — shared by
    every execution of a run.  The randomness making the per-opportunity
    decisions lives in {!Fault_injector}, instantiated once per execution
    from the plan's seed, on a PRNG stream {e separate} from the workload's:
    injecting faults never consumes a draw the simulated application or the
    CSOD runtime would otherwise have made.

    Plans are written on the command line as comma-separated entries:

    {v seed=7,ebusy=0.25,trap-drop=0.1,persist-torn@0 v}

    [point=RATE] injects with probability RATE at every opportunity;
    [point@T] injects exactly once, at the first opportunity at or after
    virtual second T ([worker-crash@N] instead names the chunk index N,
    the fleet pool having no virtual clock of its own). *)

type point =
  | Perf_ebusy      (** [perf_event_open] fails: debug registers held by
                        another debugger (transient — retryable) *)
  | Perf_eacces     (** [perf_event_open] fails: no permission (persistent) *)
  | Trap_drop       (** a SIGTRAP is lost before delivery *)
  | Trap_delay      (** a SIGTRAP is delivered late (extra latency cycles) *)
  | Persist_torn    (** a store write is torn: truncated, non-atomic *)
  | Persist_enospc  (** a store write hits a full disk *)
  | Worker_crash    (** a fleet worker domain crashes, losing its chunk *)

val all_points : point list
val point_name : point -> string
val point_of_name : string -> point option

val point_id : point -> int
(** Stable small integer naming the point in hash-derived streams. *)

type t = {
  seed : int;                      (** fault-stream seed (default 0) *)
  rates : (point * float) list;    (** nonzero per-opportunity rates *)
  oneshots : (point * float) list; (** scheduled one-shots, virtual seconds *)
}

val zero : t
(** No faults.  Running under [zero] is bit-identical to running with no
    plan at all — the no-perturbation pin of [test_faults]. *)

val is_zero : t -> bool
val rate : t -> point -> float
val oneshots_for : t -> point -> float list

val of_string : string -> (t, string) result
(** Parse a CLI spec.  Rates outside [0, 1], negative times, and unknown
    point names are rejected with a message. *)

val to_string : t -> string
(** Round-trips through {!of_string} (modulo zero-rate entries, which are
    dropped).  [zero] prints as ["none"]. *)
