type detection = { kind : Tool.access_kind; addr : int; site : int; at_sec : float }

type live = { base : int; size : int; request : int }

type t = {
  machine : Machine.t;
  heap : Heap.t;
  shadow : Shadow.t;
  quarantine : Quarantine.t;
  redzone : int;
  instrumented : int -> bool;
  respond : Respond.t option;
  registry : (int, live) Hashtbl.t; (* app ptr -> block info *)
  c_shadow_checks : Metrics.counter;
  c_detections : Metrics.counter;
  c_quarantine_ops : Metrics.counter;
  mutable detections : detection list; (* newest first *)
}

let create ?(redzone = 16) ?(quarantine_budget = 98_304) ?(instrumented = fun _ -> true)
    ?respond ~machine ~heap () =
  if redzone < 16 || redzone mod 8 <> 0 then
    invalid_arg "Asan.create: redzone must be a multiple of 8, at least 16";
  let reg = Machine.registry machine in
  (match respond with
  | Some r when Respond.oblivious r -> Respond.attach r machine
  | _ -> ());
  { machine;
    heap;
    shadow = Shadow.create ();
    quarantine = Quarantine.create ~budget_bytes:quarantine_budget;
    redzone;
    instrumented;
    respond;
    registry = Hashtbl.create 1024;
    c_shadow_checks = Metrics.counter reg "asan.shadow_checks";
    c_detections = Metrics.counter reg "asan.detections";
    c_quarantine_ops = Metrics.counter reg "asan.quarantine_ops";
    detections = [] }

let rounded8 n = (n + 7) land lnot 7

let asan_malloc t ~size ~ctx:_ =
  (* poisoning cost grows with the redzone width: the default-redzone
     configuration pays more per allocation than the minimal one *)
  Machine.work_as t.machine Profiler.Asan_poison (Cost.redzone_poison + (4 * t.redzone));
  let request = t.redzone + rounded8 size + t.redzone in
  let base = Heap.malloc t.heap request in
  let app = base + t.redzone in
  Shadow.poison t.shadow ~addr:base ~len:t.redzone;
  Shadow.unpoison t.shadow ~addr:app ~len:size;
  (* Right redzone starts at the first byte past the object, covering the
     rounding slack plus the configured redzone. *)
  Shadow.poison t.shadow ~addr:(app + size) ~len:(rounded8 size - size + t.redzone);
  Hashtbl.replace t.registry app { base; size; request };
  app

let release t (b : Quarantine.block) =
  (* Memory leaving quarantine becomes ordinary allocator memory again. *)
  Shadow.unpoison t.shadow ~addr:b.Quarantine.base ~len:b.Quarantine.bytes;
  Heap.free t.heap b.Quarantine.base

let asan_free t ~ptr =
  if ptr = 0 then Heap.free t.heap 0
  else
    match Hashtbl.find_opt t.registry ptr with
    | None -> Heap.free t.heap ptr (* foreign pointer: let the heap diagnose *)
    | Some l ->
      Metrics.incr t.c_quarantine_ops;
      Machine.work_as t.machine Profiler.Asan_poison Cost.quarantine_op;
      Hashtbl.remove t.registry ptr;
      (* The whole block, object included, is poisoned while quarantined. *)
      Shadow.poison t.shadow ~addr:l.base ~len:l.request;
      let evicted = t.quarantine |> fun q -> Quarantine.push q { base = l.base; bytes = l.request } in
      List.iter (release t) evicted

(* The allocation whose block (object + redzones) contains [addr], if it
   is still live.  A linear scan, but it runs only on a detection — the
   no-overflow path never reaches it. *)
let owning_block t addr =
  Hashtbl.fold
    (fun app l acc ->
      match acc with
      | Some _ -> acc
      | None ->
        if addr >= l.base && addr < l.base + l.request then Some (app, l)
        else None)
    t.registry None

let on_access t ~addr ~len ~kind ~site =
  if t.instrumented site then begin
    Metrics.incr t.c_shadow_checks;
    Machine.work_as t.machine Profiler.Asan_shadow Cost.shadow_check;
    if Shadow.is_poisoned t.shadow ~addr ~len then begin
      Metrics.incr t.c_detections;
      t.detections <-
        { kind; addr; site; at_sec = Clock.seconds (Machine.clock t.machine) }
        :: t.detections;
      (* Oblivious response: the shadow check runs {e before} the machine
         access, so the redirect is armed ahead of it — the pending
         squash/override is consumed by the very next load/store. *)
      match t.respond with
      | Some r when Respond.oblivious r ->
        let obj =
          match owning_block t addr with Some (app, _) -> app | None -> addr
        in
        Respond.redirect r t.machine ~source:Respond.Asan_shadow ~kind ~site
          ~ctx:(site, 0) ~obj ~addr ~len
          ~at_sec:(Clock.seconds (Machine.clock t.machine))
      | _ -> ()
    end
  end

let extra_resident_bytes t =
  (* real ASan's flat shadow costs 1/8 of the memory the application
     touches, plus whatever the quarantine is holding back *)
  (Heap.resident_bytes t.heap / 8) + Quarantine.held_bytes t.quarantine

let tool t =
  { Tool.name = (if t.redzone <= 16 then "asan-min-rz" else "asan");
    malloc = (fun ~size ~ctx -> asan_malloc t ~size ~ctx);
    free = (fun ~ptr -> asan_free t ~ptr);
    on_access = (fun ~addr ~len ~kind ~site -> on_access t ~addr ~len ~kind ~site);
    at_exit = (fun () -> ());
    extra_resident_bytes = (fun () -> extra_resident_bytes t) }

let detections t = List.rev t.detections
let detected t = t.detections <> []
let redzone t = t.redzone
