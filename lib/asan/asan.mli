(** The AddressSanitizer baseline (paper, Sections V and VII).

    A model of ASan's heap checking, faithful in the three properties the
    paper's comparison rests on:

    - {b per-access cost}: every access compiled inside an {e instrumented}
      module performs a shadow check ({!Cost.shadow_check}) whether or not
      anything is wrong — the source of ASan's ~39% overhead;
    - {b instrumentation boundary}: accesses from uninstrumented modules
      (prebuilt libraries) are never checked, which is why ASan misses the
      Libtiff, LibHX, and Zziplib bugs when those libraries are not
      recompiled — its interposed allocator still pads every object, but
      nothing inspects the shadow on the library's accesses;
    - {b redzone geometry}: objects are flanked by poisoned redzones
      (16 bytes minimum, larger by default), so overflows are caught only
      while they land inside a redzone.

    Detections are recorded rather than aborting the process, so one
    execution can be compared like-for-like with CSOD's. *)

type detection = {
  kind : Tool.access_kind;
  addr : int;
  site : int;      (** code address of the offending access *)
  at_sec : float;
}

type t

val create :
  ?redzone:int ->
  ?quarantine_budget:int ->
  ?instrumented:(int -> bool) ->
  ?respond:Respond.t ->
  machine:Machine.t ->
  heap:Heap.t ->
  unit ->
  t
(** [redzone] is the per-side redzone width (default 16, the paper's
    "minimal size"; real ASan defaults are larger — the Figure 7 "ASan"
    series uses 128).  [quarantine_budget] bounds the bytes retained by
    the deallocation quarantine (default 96 KiB).  [instrumented] decides,
    from a code address, whether the access was compiled with
    instrumentation (default: everything).  [respond] in oblivious mode
    redirects each access whose shadow check fails: since the check runs
    before the machine access, the redirect is armed ahead of the
    load/store it compensates. *)

val tool : t -> Tool.t
val detections : t -> detection list
val detected : t -> bool
val redzone : t -> int

val extra_resident_bytes : t -> int
(** Shadow granules + quarantine holdings, for Table V. *)
