(** The service loop's per-epoch observation: the deterministic
    projection of one epoch barrier.

    A {!Health.sample} mixes virtual-time facts (arrivals, detections,
    store growth) with wall-clock measurements (busy seconds, straggler
    skew, merge cost) that legitimately differ run to run and domain
    count to domain count.  A service that promises {e bit-identical
    durable history} for the same seed and schedule can only persist the
    former — so this record keeps exactly the fields that are a pure
    function of [(seed, schedule)], plus the fleet's virtual clock
    (summed execution cycles), and re-derives the straggler signal from
    {e virtual} per-execution cycles instead of wall time.

    Tally fields are per-epoch deltas, not cumulative — deltas make
    rolling-window aggregation an exact sum ({!Window.merge}) and let a
    resumed service keep emitting correct records without replaying its
    past. *)

type t = {
  epoch : int;
  arrivals : int;          (** users admitted this epoch *)
  arrived : int;           (** users admitted so far (cumulative) *)
  detections : int;        (** detections this epoch *)
  cumulative : int;        (** detections so far *)
  cdf : float;             (** [cumulative / arrived]; 0 for an empty fleet *)
  store_contexts : int;    (** shared store size after the barrier *)
  patched : int;
      (** contexts newly convicted (evidence crossed the patch threshold)
          this epoch; 0 when no patch policy is active *)
  degraded : int;          (** canary-only fallbacks this epoch *)
  worker_crashes : int;    (** injected pool crashes this epoch *)
  faults : (string * int) list;
      (** fault/degradation counter increments this epoch, name-sorted *)
  snapshots : int;         (** telemetry snapshots emitted this epoch *)
  cycles : int;            (** summed execution virtual cycles this epoch *)
  virtual_seconds : float; (** fleet virtual clock after the barrier *)
  cycle_skew : float;
      (** slowest / median execution of the epoch, in virtual cycles *)
}

val to_json : t -> Obs_json.t
(** The record as a JSON object — the [body] of a [kind = "health"]
    history line. *)

val of_json : Obs_json.t -> t option
(** Parse a record back ([csod_run replay]'s reader).  [None] when a
    required field is missing or mistyped. *)
