(** The service loop: a long-running fleet driver in virtual time.

    [csod_run serve] wraps this module: it drives {!Fleet.step} epoch by
    epoch under an open-ended {!Workload.rate} arrival process, and at
    every barrier

    - projects the epoch into a deterministic {!Serve_obs.t},
    - pushes it through the rolling {!Window.set},
    - evaluates the {!Alert} rules and logs fire/clear transitions,
    - appends health and alert records to the durable {!History},
    - republishes the status snapshot and, periodically, a checkpoint.

    Determinism contract: for a given workload (seed, schedule) the
    history segments, the alert stream and the status document minus its
    ["wall"] member are bit-identical at any [domains] count — pinned by
    [test_serve].  Wall-clock facts exist only in the status ["wall"]
    object, never in history.

    The service is resumable: {!start} finding an intact checkpoint at
    [config.checkpoint_path] reconstructs the store, windows, alert
    states and history position and continues the {e same} deterministic
    stream (fleet epoch/uid offsets keep fault draws aligned), so the
    remaining history bytes match an uninterrupted run's. *)

type config = {
  workload : Workload.t;
  domains : int;
  epoch_size : int;
  faults : Fault_plan.t option;
  patch_threshold : int option;
      (** evidence hits at which a context counts as convicted — threaded
          to {!Fleet.config} so the health stream's [patched] tally (and
          this module's per-epoch deltas) track the executor's code-less
          patching policy *)
  rules : Alert.rule list;
  windows : int list;  (** dashboard window sizes; rule windows are added *)
  history_dir : string option;
  rotate : int;  (** history lines per segment *)
  status_path : string option;
  status_every : int;  (** epochs between status republications *)
  checkpoint_path : string option;
  checkpoint_every : int;  (** epochs between checkpoints; 0 = only final *)
}

val config :
  ?domains:int ->
  ?epoch_size:int ->
  ?faults:Fault_plan.t ->
  ?patch_threshold:int ->
  ?rules:Alert.rule list ->
  ?windows:int list ->
  ?history_dir:string ->
  ?rotate:int ->
  ?status_path:string ->
  ?status_every:int ->
  ?checkpoint_path:string ->
  ?checkpoint_every:int ->
  Workload.t ->
  config
(** Defaults: [domains = Pool.default_domains ()], [epoch_size = 32],
    no faults, no patch threshold, [rules = Alert.defaults],
    [windows = \[1; 10; 100\]],
    no history/status/checkpoint files, [rotate = 4096],
    [status_every = 1], [checkpoint_every = 0]. *)

type 'a t

val start : config -> execute:'a Fleet.executor -> ('a t, string) result
(** A fresh service — unless [config.checkpoint_path] names an existing
    file, in which case the service resumes from it ([Error] if the
    checkpoint is unreadable or inconsistent, rather than silently
    restarting the stream from epoch 0).  On resume the history
    directory is truncated back to the checkpointed position, so a crash
    after the last checkpoint cannot leave duplicate records. *)

type outcome = {
  obs : Serve_obs.t;           (** the epoch's deterministic record *)
  events : Alert.event list;   (** alert transitions at this barrier *)
}

val step : 'a t -> outcome
(** Run the next epoch: arrivals are [Workload.rate] at the current
    epoch, clamped to the unserved population (0 once everyone has
    arrived — the service keeps observing an idle fleet). *)

val finish : 'a t -> 'a Fleet.report
(** Close out: publish the final status and checkpoint (if configured),
    close the history writer, and return the underlying fleet report
    (lean: first catch, merged registries, store). *)

val epoch : 'a t -> int
val arrived : 'a t -> int
val detections : 'a t -> int
val virtual_seconds : 'a t -> float
val last : 'a t -> Serve_obs.t option
val windows : 'a t -> Window.set
val alert_engine : 'a t -> Alert.t

val status_json : 'a t -> Obs_json.t
(** The live status document (schema [csod.serve.status/1]):
    deterministic run state, window aggregates, alert states, plus the
    ["wall"] sub-object (domain count, wall seconds, unix time) — the
    only nondeterministic member. *)

val render_status : ?color:bool -> Obs_json.t -> string option
(** One-screen dashboard for a [csod.serve.status/1] document — used by
    [serve --live], [top] on a status file, and [replay].  [None] if the
    document is not a status snapshot. *)

(** {2 Offline replay}

    [csod_run replay] rebuilds the service's view from the history
    directory alone: windows and alert rules are re-evaluated over the
    recorded health bodies and the recomputed alert stream is compared,
    JSON-for-JSON, against the recorded one. *)

type replay = {
  meta : Obs_json.t option;        (** the run's meta record *)
  observations : Serve_obs.t list; (** health bodies, epoch order *)
  recorded : Obs_json.t list;      (** alert bodies as written *)
  recomputed : Obs_json.t list;    (** alert bodies re-derived offline *)
  mismatches : string list;        (** recorded/recomputed differences *)
  read_errors : string list;       (** corrupt or checksum-failed lines *)
  status : Obs_json.t;             (** final status rebuilt from history
                                       (no ["wall"] member) *)
}

val replay : string -> (replay, string) result
(** [Error] when the directory has no readable meta record. *)
