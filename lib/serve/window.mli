(** Bounded-memory rolling windows over the service observation stream.

    A window of size [W] holds per-epoch aggregates for the last [W]
    epochs in a ring and reduces them on demand — O(W) memory however
    long the service runs.  The reduction has {e exact merge semantics}:
    {!merge} over adjacent spans is associative, delta fields are plain
    sums, so {!aggregate} — computed as a pairwise tree over the ring,
    the same shape {!Metrics_shard.reduce_into} uses at epoch barriers —
    is bit-identical to a from-scratch linear fold over the same epochs
    (pinned by [test_serve]).  Windowed numbers read off a dashboard are
    therefore never "approximately" the last [W] epochs: they are exactly
    the fold of those epochs' records. *)

type agg = {
  epochs : int;        (** epochs covered; 0 for {!empty} *)
  first_epoch : int;   (** lowest epoch in the span (-1 when empty) *)
  last_epoch : int;    (** highest epoch in the span (-1 when empty) *)
  arrivals : int;      (** summed over the span *)
  detections : int;
  patched : int;       (** contexts newly convicted over the span *)
  degraded : int;
  worker_crashes : int;
  faults : (string * int) list;  (** summed per counter, name-sorted *)
  snapshots : int;
  cycles : int;
  skew_max : float;    (** max per-epoch virtual straggler skew *)
  cdf_last : float;    (** the span's most recent cdf *)
  store_last : int;    (** the span's most recent store size *)
  virtual_last : float;  (** virtual clock at the span's last barrier *)
}

val empty : agg

val of_obs : Serve_obs.t -> agg
(** The single-epoch aggregate. *)

val merge : agg -> agg -> agg
(** [merge a b] with [a] covering the epochs just before [b].
    Associative over any adjacent grouping; [empty] is the identity. *)

val agg_to_json : agg -> Obs_json.t
val agg_of_json : Obs_json.t -> agg option

type t
(** One rolling window: a ring of the last [size] per-epoch aggregates. *)

val create : size:int -> t
(** Raises [Invalid_argument] if [size < 1]. *)

val size : t -> int

val pushed : t -> int
(** Epochs pushed over the window's lifetime (not capped at [size]). *)

val push : t -> Serve_obs.t -> unit

val aggregate : t -> agg
(** Pairwise tree-reduction of the ring in epoch order — provably equal
    to folding the covered epochs' records from scratch. *)

(** {2 Window sets}

    The service keeps one ring per distinct window size (the dashboard's
    1/10/100 plus every alert rule's); a set pushes each observation into
    all of them and tracks the stream position for rule eligibility. *)

type set

val set : int list -> set
(** Deduplicates and sorts the sizes; raises on any size < 1. *)

val sizes : set -> int list
val rows : set -> int
(** Observations pushed into the set over its lifetime (survives
    checkpoint/resume). *)

val push_set : set -> Serve_obs.t -> unit
val get : set -> int -> agg option
(** The aggregate of the window of that exact size, if the set has one. *)

val set_to_json : set -> Obs_json.t
val set_of_json : Obs_json.t -> set option
(** Checkpoint round-trip: ring contents, push counts and stream
    position are all restored, so a resumed service aggregates exactly
    as the uninterrupted one. *)
