(** Declarative alert rules over rolling-window aggregates.

    A rule names a condition on one {!Window.agg} (detection stall,
    degraded fraction, virtual straggler skew, fault budget burn, CDF
    floor) and the window size it is judged over.  The engine evaluates
    every rule at each epoch barrier and emits an event only on a {e
    transition} — fire when the condition starts holding, clear when it
    stops — carrying the window snapshot that triggered it (schema
    [csod.fleet.alert/1]).  A rule is eligible only once its window is
    full ([rows >= window]), so a 50-epoch stall rule cannot fire at
    epoch 3 of a cold start.

    Conditions read only {!Serve_obs.t}-derived aggregates, so alert
    streams are bit-identical for a given seed and schedule, and
    [csod_run replay] re-derives them offline from history alone. *)

type condition =
  | Stall                      (** no detections anywhere in the window *)
  | Degraded_above of float    (** window degraded / arrivals > limit *)
  | Skew_above of float        (** max virtual cycle-skew > limit *)
  | Fault_burn_above of float  (** (crashes + fault counters) / epoch > limit *)
  | Cdf_below of float         (** detection CDF at window end < limit *)
  | Patch_above of float       (** contexts newly convicted in window > limit *)

type rule = { name : string; window : int; cond : condition }

val to_spec : rule -> string
(** Canonical spec string, re-parseable by {!parse}. *)

val parse : string -> (rule list, string) result
(** Parse an alert spec: rules separated by commas or newlines, [#]
    comment lines ignored.  Each rule is [name[>limit|<limit][@window]]
    with names [stall], [degraded], [skew], [faults], [cdf], [patch] —
    e.g. ["stall@50,degraded>0.1@10"].  Omitted limits and windows take
    the rule's defaults ([stall@50]; [degraded>0.1@10]; [skew>3@10];
    [faults>1@10]; [cdf<0.5@10]; [patch>0@10]).  [cdf] takes [<], the
    others [>]; [stall] takes no limit.  [Error] names the offending
    token. *)

val defaults : rule list
(** The rules [parse "stall,degraded,skew"] yields — the service's
    out-of-the-box set. *)

val holds : rule -> Window.agg -> bool
(** Does the condition hold over this (full) window aggregate? *)

type event = {
  rule : rule;
  epoch : int;         (** barrier at which the transition happened *)
  firing : bool;       (** [true] = fire, [false] = clear *)
  since : int;         (** epoch of the matching fire (= [epoch] on fire) *)
  window : Window.agg; (** the aggregate that triggered the transition *)
}

val event_to_json : event -> Obs_json.t
(** Schema [csod.fleet.alert/1]: spec echo, state, epochs, and the full
    window snapshot. *)

type t
(** Evaluation engine: rules plus their firing state. *)

val engine : rule list -> t
val rules : t -> rule list

val observe : t -> Window.set -> epoch:int -> event list
(** Evaluate every eligible rule against the set's aggregates at this
    barrier; returns the transitions (usually none), rule order. *)

val firing : t -> (rule * int) list
(** Currently-firing rules with their fire epochs. *)

val states_to_json : t -> Obs_json.t
val restore_states : t -> Obs_json.t -> bool
(** Checkpoint round-trip for the firing states.  [restore_states]
    matches entries to rules by canonical spec and returns [false] if
    any entry is unknown or malformed (engine left untouched on
    failure). *)
