type t = {
  epoch : int;
  arrivals : int;
  arrived : int;
  detections : int;
  cumulative : int;
  cdf : float;
  store_contexts : int;
  patched : int;
  degraded : int;
  worker_crashes : int;
  faults : (string * int) list;
  snapshots : int;
  cycles : int;
  virtual_seconds : float;
  cycle_skew : float;
}

let to_json o : Obs_json.t =
  `Assoc
    [ ("epoch", `Int o.epoch); ("arrivals", `Int o.arrivals);
      ("arrived", `Int o.arrived); ("detections", `Int o.detections);
      ("cumulative", `Int o.cumulative); ("cdf", `Float o.cdf);
      ("store_contexts", `Int o.store_contexts);
      ("patched", `Int o.patched);
      ("degraded", `Int o.degraded);
      ("worker_crashes", `Int o.worker_crashes);
      ("faults", `Assoc (List.map (fun (k, v) -> (k, `Int v)) o.faults));
      ("snapshots", `Int o.snapshots); ("cycles", `Int o.cycles);
      ("virtual_seconds", `Float o.virtual_seconds);
      ("cycle_skew", `Float o.cycle_skew) ]

let of_json json =
  let ( let* ) = Option.bind in
  let int k = Option.bind (Obs_json.member k json) Obs_json.to_int in
  let flt k = Option.bind (Obs_json.member k json) Obs_json.to_float in
  let* epoch = int "epoch" in
  let* arrivals = int "arrivals" in
  let* arrived = int "arrived" in
  let* detections = int "detections" in
  let* cumulative = int "cumulative" in
  let* cdf = flt "cdf" in
  let* store_contexts = int "store_contexts" in
  (* Absent in pre-respond histories: read as 0 so old segments replay. *)
  let patched = Option.value ~default:0 (int "patched") in
  let* degraded = int "degraded" in
  let* worker_crashes = int "worker_crashes" in
  let* snapshots = int "snapshots" in
  let* cycles = int "cycles" in
  let* virtual_seconds = flt "virtual_seconds" in
  let* cycle_skew = flt "cycle_skew" in
  let* faults =
    match Obs_json.member "faults" json with
    | Some (`Assoc kvs) ->
      let parsed =
        List.filter_map
          (fun (k, v) -> Option.map (fun n -> (k, n)) (Obs_json.to_int v))
          kvs
      in
      if List.length parsed = List.length kvs then Some parsed else None
    | _ -> None
  in
  Some
    { epoch; arrivals; arrived; detections; cumulative; cdf; store_contexts;
      patched; degraded; worker_crashes; faults; snapshots; cycles;
      virtual_seconds; cycle_skew }
