let status_schema = "csod.serve.status/1"
let checkpoint_schema = "csod.serve.checkpoint/1"

type config = {
  workload : Workload.t;
  domains : int;
  epoch_size : int;
  faults : Fault_plan.t option;
  patch_threshold : int option;
  rules : Alert.rule list;
  windows : int list;
  history_dir : string option;
  rotate : int;
  status_path : string option;
  status_every : int;
  checkpoint_path : string option;
  checkpoint_every : int;
}

let config ?domains ?(epoch_size = 32) ?faults ?patch_threshold
    ?(rules = Alert.defaults) ?(windows = [ 1; 10; 100 ]) ?history_dir
    ?(rotate = 4096) ?status_path ?(status_every = 1) ?checkpoint_path
    ?(checkpoint_every = 0) workload =
  let domains =
    match domains with Some d -> d | None -> Pool.default_domains ()
  in
  (match patch_threshold with
  | Some n when n < 1 -> invalid_arg "Serve.config: patch_threshold < 1"
  | _ -> ());
  if rotate < 1 then invalid_arg "Serve.config: rotate < 1";
  if status_every < 1 then invalid_arg "Serve.config: status_every < 1";
  if checkpoint_every < 0 then invalid_arg "Serve.config: checkpoint_every < 0";
  List.iter
    (fun w -> if w < 1 then invalid_arg "Serve.config: window < 1")
    windows;
  { workload; domains; epoch_size; faults; patch_threshold; rules; windows;
    history_dir; rotate; status_path; status_every; checkpoint_path;
    checkpoint_every }

(* Dashboard sizes plus every rule's judging window: one ring each. *)
let all_window_sizes cfg =
  List.sort_uniq compare
    (cfg.windows @ List.map (fun (r : Alert.rule) -> r.window) cfg.rules)

type 'a t = {
  cfg : config;
  fleet : 'a Fleet.t;
  wins : Window.set;
  alerts : Alert.t;
  hist : History.writer option;
  t_start : float;
  (* Run-lifetime cumulatives (survive checkpoint/resume; the fleet
     session's own registries restart at zero after a resume). *)
  mutable arrived : int;
  mutable detections : int;
  mutable total_cycles : int;
  mutable patched : int;
  mutable degraded : int;
  mutable worker_crashes : int;
  mutable snapshots : int;
  mutable faults_cum : (string * int) list;
  (* Previous barrier's fleet-session cumulatives, for per-epoch deltas. *)
  mutable prev_patched : int;
  mutable prev_degraded : int;
  mutable prev_crashes : int;
  mutable prev_snapshots : int;
  mutable prev_faults : (string * int) list;
  mutable last_obs : Serve_obs.t option;
}

let virtual_seconds_of cycles =
  float_of_int cycles /. float_of_int Cost.cycles_per_second

(* Meta body: the deterministic run description — everything here must be
   independent of the domain count, or history segments would differ
   across --domains. *)
let meta_body cfg : Obs_json.t =
  let w = cfg.workload in
  `Assoc
    [ ("workload",
       `Assoc
         [ ("users", `Int w.Workload.users);
           ("benign_frac", `Float w.Workload.benign_frac);
           ("base_seed", `Int w.Workload.base_seed);
           ("burst", `String (Workload.burst_name w.Workload.burst));
           ("wave_period", `Int w.Workload.wave_period) ]);
      ("epoch_size", `Int cfg.epoch_size);
      ("faults",
       match cfg.faults with
       | Some p -> `String (Fault_plan.to_string p)
       | None -> `Null);
      ("patch_threshold",
       match cfg.patch_threshold with Some n -> `Int n | None -> `Null);
      ("alerts",
       `List (List.map (fun r -> `String (Alert.to_spec r)) cfg.rules));
      ("windows", `List (List.map (fun w -> `Int w) cfg.windows)) ]

let atomic_write path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp path

(* ---- status ---- *)

let status_core ~epoch ~arrived ~detections ~patched ~total_cycles ~last ~wins
    ~alerts ~window_sizes : (string * Obs_json.t) list =
  [ ("schema", `String status_schema); ("epoch", `Int epoch);
    ("arrived", `Int arrived); ("detections", `Int detections);
    ("patched", `Int patched);
    ("cdf",
     `Float
       (if arrived > 0 then float_of_int detections /. float_of_int arrived
        else 0.0));
    ("virtual_seconds", `Float (virtual_seconds_of total_cycles));
    ("last",
     match last with Some o -> Serve_obs.to_json o | None -> `Null);
    ("windows",
     `Assoc
       (List.filter_map
          (fun w ->
            Option.map
              (fun a -> (string_of_int w, Window.agg_to_json a))
              (Window.get wins w))
          window_sizes));
    ("alerts",
     `Assoc
       [ ("rules",
          `List
            (List.map
               (fun r -> (`String (Alert.to_spec r) : Obs_json.t))
               (Alert.rules alerts)));
         ("firing",
          `List
            (List.map
               (fun ((r : Alert.rule), since) ->
                 (`Assoc
                    [ ("spec", `String (Alert.to_spec r));
                      ("since", `Int since) ]
                   : Obs_json.t))
               (Alert.firing alerts))) ]) ]

let status_json t : Obs_json.t =
  `Assoc
    (status_core ~epoch:(Fleet.epoch t.fleet) ~arrived:t.arrived
       ~detections:t.detections ~patched:t.patched ~total_cycles:t.total_cycles
       ~last:t.last_obs ~wins:t.wins ~alerts:t.alerts
       ~window_sizes:t.cfg.windows
    @ [ ("wall",
         `Assoc
           [ ("domains", `Int t.cfg.domains);
             ("wall_seconds", `Float (Unix.gettimeofday () -. t.t_start));
             ("unix_time", `Float (Unix.gettimeofday ())) ]) ])

let publish_status t =
  match t.cfg.status_path with
  | None -> ()
  | Some path -> atomic_write path (Obs_json.to_string (status_json t) ^ "\n")

(* ---- checkpoint ---- *)

let checkpoint_json t : Obs_json.t =
  `Assoc
    [ ("schema", `String checkpoint_schema);
      ("epoch", `Int (Fleet.epoch t.fleet));
      ("next_uid", `Int (Fleet.next_uid t.fleet));
      ("arrived", `Int t.arrived); ("detections", `Int t.detections);
      ("total_cycles", `Int t.total_cycles); ("patched", `Int t.patched);
      ("degraded", `Int t.degraded);
      ("worker_crashes", `Int t.worker_crashes);
      ("snapshots", `Int t.snapshots);
      ("faults",
       `Assoc (List.map (fun (k, v) -> (k, `Int v)) t.faults_cum));
      ("store",
       (* [site; off; hits]: evidence counts survive the checkpoint so a
          resumed service keeps its convictions. *)
       `List
         (let store = Fleet.store t.fleet in
          List.map
            (fun (a, b) ->
              (`List [ `Int a; `Int b; `Int (Persist.hits store (a, b)) ]
                : Obs_json.t))
            (Persist.keys store)));
      ("windows", Window.set_to_json t.wins);
      ("alerts", Alert.states_to_json t.alerts);
      ("history",
       match t.hist with
       | Some w ->
         `Assoc
           [ ("seq", `Int (History.seq w));
             ("segment", `Int (History.segment w));
             ("lines", `Int (History.lines_in_segment w)) ]
       | None -> `Null) ]

let publish_checkpoint t =
  match t.cfg.checkpoint_path with
  | None -> ()
  | Some path ->
    atomic_write path (Obs_json.to_string (checkpoint_json t) ^ "\n")

(* ---- start / resume ---- *)

let fresh cfg ~execute =
  let hist =
    Option.map (fun dir -> History.writer ~rotate:cfg.rotate dir)
      cfg.history_dir
  in
  let t =
    { cfg;
      fleet = Fleet.start ~lean:true (Fleet.config ~domains:cfg.domains
                ~epoch_size:cfg.epoch_size ?faults:cfg.faults
                ?patch_threshold:cfg.patch_threshold cfg.workload)
                ~execute;
      wins = Window.set (all_window_sizes cfg);
      alerts = Alert.engine cfg.rules;
      hist;
      t_start = Unix.gettimeofday ();
      arrived = 0; detections = 0; total_cycles = 0; patched = 0;
      degraded = 0; worker_crashes = 0; snapshots = 0; faults_cum = [];
      prev_patched = 0; prev_degraded = 0; prev_crashes = 0;
      prev_snapshots = 0; prev_faults = []; last_obs = None }
  in
  (* The meta record leads the history; only the first session writes it
     (seq 0), so a resumed run's segments stay byte-identical to an
     uninterrupted one's. *)
  (match t.hist with
  | Some w when History.seq w = 0 ->
    ignore (History.append w History.Meta (meta_body cfg))
  | _ -> ());
  t

let resume cfg ~execute json =
  let ( let* ) = Option.bind in
  let int k = Option.bind (Obs_json.member k json) Obs_json.to_int in
  let parsed =
    let* schema =
      match Obs_json.member "schema" json with
      | Some (`String s) -> Some s
      | _ -> None
    in
    if schema <> checkpoint_schema then None
    else
      let* epoch = int "epoch" in
      let* next_uid = int "next_uid" in
      let* arrived = int "arrived" in
      let* detections = int "detections" in
      let* total_cycles = int "total_cycles" in
      (* Absent in pre-respond checkpoints: read as 0. *)
      let patched = Option.value ~default:0 (int "patched") in
      let* degraded = int "degraded" in
      let* worker_crashes = int "worker_crashes" in
      let* snapshots = int "snapshots" in
      let* faults_cum =
        match Obs_json.member "faults" json with
        | Some (`Assoc kvs) ->
          let parsed =
            List.filter_map
              (fun (k, v) -> Option.map (fun n -> (k, n)) (Obs_json.to_int v))
              kvs
          in
          if List.length parsed = List.length kvs then Some parsed else None
        | _ -> None
      in
      let* store_keys =
        match Obs_json.member "store" json with
        | Some (`List l) ->
          (* [site; off] (pre-respond, hits = 1) or [site; off; hits]. *)
          let key = function
            | `List [ a; b ] -> (
              match (Obs_json.to_int a, Obs_json.to_int b) with
              | Some a, Some b -> Some (a, b, 1)
              | _ -> None)
            | `List [ a; b; h ] -> (
              match (Obs_json.to_int a, Obs_json.to_int b, Obs_json.to_int h)
              with
              | Some a, Some b, Some h when h >= 1 -> Some (a, b, h)
              | _ -> None)
            | _ -> None
          in
          let parsed = List.filter_map key l in
          if List.length parsed = List.length l then Some parsed else None
        | _ -> None
      in
      let* wins =
        Option.bind (Obs_json.member "windows" json) Window.set_of_json
      in
      let* history =
        match Obs_json.member "history" json with
        | Some `Null -> Some None
        | Some h ->
          let hint k = Option.bind (Obs_json.member k h) Obs_json.to_int in
          let* seq = hint "seq" in
          let* segment = hint "segment" in
          let* lines = hint "lines" in
          Some (Some (seq, segment, lines))
        | None -> None
      in
      Some
        ( epoch, next_uid, arrived, detections, total_cycles, patched,
          degraded, worker_crashes, snapshots, faults_cum, store_keys, wins,
          history )
  in
  match parsed with
  | None -> Error "malformed checkpoint"
  | Some
      ( epoch, next_uid, arrived, detections, total_cycles, patched, degraded,
        worker_crashes, snapshots, faults_cum, store_keys, wins, history ) ->
    let alerts = Alert.engine cfg.rules in
    let ok =
      match Obs_json.member "alerts" json with
      | Some states -> Alert.restore_states alerts states
      | None -> false
    in
    if not ok then Error "checkpoint alert states do not match the rule set"
    else if Window.sizes wins <> all_window_sizes cfg then
      Error "checkpoint window sizes do not match the configuration"
    else begin
      let store = Persist.create () in
      List.iter
        (fun (a, b, h) ->
          for _ = 1 to h do Persist.add store (a, b) done)
        store_keys;
      (* The fleet's [patched] tally is a state count over the shared
         store; seed the delta baseline from the restored evidence so the
         first resumed epoch reports only {e new} convictions. *)
      let prev_patched =
        match cfg.patch_threshold with
        | None -> 0
        | Some th ->
          List.length (List.filter (fun (_, _, h) -> h >= th) store_keys)
      in
      let hist =
        match (cfg.history_dir, history) with
        | Some dir, Some (seq, segment, lines) ->
          History.truncate dir ~segment ~lines;
          Some (History.writer ~rotate:cfg.rotate ~seq ~segment ~lines dir)
        | Some dir, None -> Some (History.writer ~rotate:cfg.rotate dir)
        | None, _ -> None
      in
      Ok
        { cfg;
          fleet =
            Fleet.start ~store ~lean:true ~epoch0:epoch ~uid0:next_uid
              (Fleet.config ~domains:cfg.domains ~epoch_size:cfg.epoch_size
                 ?faults:cfg.faults ?patch_threshold:cfg.patch_threshold
                 cfg.workload)
              ~execute;
          wins; alerts; hist;
          t_start = Unix.gettimeofday ();
          arrived; detections; total_cycles; patched; degraded;
          worker_crashes; snapshots; faults_cum;
          prev_patched; prev_degraded = 0; prev_crashes = 0;
          prev_snapshots = 0; prev_faults = []; last_obs = None }
    end

let start cfg ~execute =
  match cfg.checkpoint_path with
  | Some path when Sys.file_exists path -> (
    let ic = open_in path in
    let len = in_channel_length ic in
    let content = really_input_string ic len in
    close_in ic;
    match Obs_json.of_string (String.trim content) with
    | Error e -> Error (Printf.sprintf "checkpoint %s: %s" path e)
    | Ok json -> resume cfg ~execute json)
  | _ -> Ok (fresh cfg ~execute)

(* ---- the epoch ---- *)

type outcome = { obs : Serve_obs.t; events : Alert.event list }

let delta_faults ~prev now =
  List.filter_map
    (fun (k, v) ->
      let d = v - Option.value ~default:0 (List.assoc_opt k prev) in
      if d <> 0 then Some (k, d) else None)
    now
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let add_faults cum delta =
  List.fold_left
    (fun acc (k, d) ->
      let v = Option.value ~default:0 (List.assoc_opt k acc) + d in
      (k, v) :: List.remove_assoc k acc)
    cum delta
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let step t =
  let e = Fleet.epoch t.fleet in
  let remaining = t.cfg.workload.Workload.users - t.arrived in
  let n =
    min remaining (Workload.rate t.cfg.workload ~epoch_size:t.cfg.epoch_size e)
  in
  let n = max 0 n in
  let r = Fleet.step t.fleet ~arrivals:n in
  let s = r.Fleet.sample in
  (* The sample's tallies are fleet-session cumulatives; the observation
     wants this epoch's deltas (and a resumed session's registries
     restart at zero, so deltas are the only thing that survives a
     checkpoint boundary unchanged). *)
  let crashes_now = s.Health.worker_crashes in
  (* [patched] is a state count (convictions only accumulate), so the
     delta is never negative. *)
  let d_patched = max 0 (s.Health.patched - t.prev_patched) in
  let d_degraded = s.Health.degraded - t.prev_degraded in
  let d_crashes = crashes_now - t.prev_crashes in
  let d_snapshots = s.Health.snapshots - t.prev_snapshots in
  let d_faults = delta_faults ~prev:t.prev_faults s.Health.faults in
  t.prev_patched <- s.Health.patched;
  t.prev_degraded <- s.Health.degraded;
  t.prev_crashes <- crashes_now;
  t.prev_snapshots <- s.Health.snapshots;
  t.prev_faults <- s.Health.faults;
  t.arrived <- t.arrived + n;
  t.detections <- t.detections + s.Health.detections;
  t.total_cycles <- t.total_cycles + r.Fleet.epoch_cycles;
  t.patched <- t.patched + d_patched;
  t.degraded <- t.degraded + d_degraded;
  t.worker_crashes <- t.worker_crashes + d_crashes;
  t.snapshots <- t.snapshots + d_snapshots;
  t.faults_cum <- add_faults t.faults_cum d_faults;
  let obs =
    { Serve_obs.epoch = e; arrivals = n; arrived = t.arrived;
      detections = s.Health.detections; cumulative = t.detections;
      cdf =
        (if t.arrived > 0 then
           float_of_int t.detections /. float_of_int t.arrived
         else 0.0);
      store_contexts = s.Health.store_contexts; patched = d_patched;
      degraded = d_degraded;
      worker_crashes = d_crashes; faults = d_faults; snapshots = d_snapshots;
      cycles = r.Fleet.epoch_cycles;
      virtual_seconds = virtual_seconds_of t.total_cycles;
      cycle_skew = r.Fleet.cycle_skew }
  in
  Window.push_set t.wins obs;
  let events = Alert.observe t.alerts t.wins ~epoch:e in
  (match t.hist with
  | Some w ->
    ignore (History.append w History.Health (Serve_obs.to_json obs));
    List.iter
      (fun ev -> ignore (History.append w History.Alert (Alert.event_to_json ev)))
      events
  | None -> ());
  t.last_obs <- Some obs;
  let completed = e + 1 in
  if completed mod t.cfg.status_every = 0 then publish_status t;
  if t.cfg.checkpoint_every > 0 && completed mod t.cfg.checkpoint_every = 0
  then publish_checkpoint t;
  { obs; events }

let finish t =
  publish_status t;
  publish_checkpoint t;
  (match t.hist with Some w -> History.close w | None -> ());
  Fleet.finish t.fleet

let epoch t = Fleet.epoch t.fleet
let arrived t = t.arrived
let detections t = t.detections
let virtual_seconds t = virtual_seconds_of t.total_cycles
let last t = t.last_obs
let windows t = t.wins
let alert_engine t = t.alerts

(* ---- rendering ---- *)

let render_status ?(color = true) json =
  match Obs_json.member "schema" json with
  | Some (`String s) when s = status_schema ->
    let c code s = if color then Printf.sprintf "\x1b[%sm%s\x1b[0m" code s else s in
    let int k = Option.value ~default:0 (Option.bind (Obs_json.member k json) Obs_json.to_int) in
    let flt k =
      Option.value ~default:0.0 (Option.bind (Obs_json.member k json) Obs_json.to_float)
    in
    let b = Buffer.create 1024 in
    Buffer.add_string b
      (Printf.sprintf "%s  epoch %d  virtual %.1f s\n"
         (c "1" "csod serve") (int "epoch") (flt "virtual_seconds"));
    Buffer.add_string b
      (Printf.sprintf
         "arrived %d  detections %d  cdf %.2f%%  store %s%s\n"
         (int "arrived") (int "detections")
         (100.0 *. flt "cdf")
         (match
            Option.bind (Obs_json.member "last" json) (fun l ->
                Obs_json.member "store_contexts" l)
          with
         | Some (`Int n) -> string_of_int n
         | _ -> "-")
         (let p = int "patched" in
          if p > 0 then Printf.sprintf "  patched %d" p else ""));
    (match Obs_json.member "windows" json with
    | Some (`Assoc wins) when wins <> [] ->
      Buffer.add_string b
        (c "2"
           "window   epochs  arrivals  detect  degraded  crashes   skew     cdf\n");
      List.iter
        (fun (w, agg) ->
          match Window.agg_of_json agg with
          | Some a ->
            Buffer.add_string b
              (Printf.sprintf
                 "%6s  %7d  %8d  %6d  %8d  %7d  %5.2f  %5.2f%%\n" w
                 a.Window.epochs a.Window.arrivals a.Window.detections
                 a.Window.degraded a.Window.worker_crashes a.Window.skew_max
                 (100.0 *. a.Window.cdf_last))
          | None -> ())
        wins
    | _ -> ());
    (match Obs_json.member "alerts" json with
    | Some alerts ->
      let firing =
        match Obs_json.member "firing" alerts with
        | Some (`List l) -> l
        | _ -> []
      in
      let rules =
        match Obs_json.member "rules" alerts with
        | Some (`List l) ->
          List.filter_map
            (function `String s -> Some s | _ -> None)
            l
        | _ -> []
      in
      let firing_specs =
        List.filter_map
          (fun f ->
            match (Obs_json.member "spec" f, Obs_json.member "since" f) with
            | Some (`String s), Some since ->
              Some (s, Option.value ~default:0 (Obs_json.to_int since))
            | _ -> None)
          firing
      in
      Buffer.add_string b "alerts: ";
      if rules = [] then Buffer.add_string b "(none)"
      else
        Buffer.add_string b
          (String.concat "  "
             (List.map
                (fun spec ->
                  match List.assoc_opt spec firing_specs with
                  | Some since ->
                    c "31;1"
                      (Printf.sprintf "%s FIRING since %d" spec since)
                  | None -> Printf.sprintf "%s %s" spec (c "32" "ok"))
                rules));
      Buffer.add_char b '\n'
    | None -> ());
    Some (Buffer.contents b)
  | _ -> None

(* ---- offline replay ---- *)

type replay = {
  meta : Obs_json.t option;
  observations : Serve_obs.t list;
  recorded : Obs_json.t list;
  recomputed : Obs_json.t list;
  mismatches : string list;
  read_errors : string list;
  status : Obs_json.t;
}

let replay dir =
  let records, read_errors = History.read dir in
  let meta =
    List.find_map
      (fun (r : History.record) ->
        if r.kind = History.Meta then Some r.body else None)
      records
  in
  match meta with
  | None -> Error (Printf.sprintf "%s: no meta record in history" dir)
  | Some meta_json -> (
    let rules =
      match Obs_json.member "alerts" meta_json with
      | Some (`List l) ->
        let specs =
          List.filter_map (function `String s -> Some s | _ -> None) l
        in
        Result.value ~default:Alert.defaults
          (Alert.parse (String.concat "," specs))
      | _ -> Alert.defaults
    in
    let window_sizes =
      match Obs_json.member "windows" meta_json with
      | Some (`List l) -> List.filter_map Obs_json.to_int l
      | _ -> [ 1; 10; 100 ]
    in
    let observations =
      List.filter_map
        (fun (r : History.record) ->
          if r.kind = History.Health then Serve_obs.of_json r.body else None)
        records
    in
    let recorded =
      List.filter_map
        (fun (r : History.record) ->
          if r.kind = History.Alert then Some r.body else None)
        records
    in
    (* Re-drive the windows and rules over the recorded health stream:
       the alert stream is a pure function of it. *)
    let all_sizes =
      List.sort_uniq compare
        (window_sizes @ List.map (fun (r : Alert.rule) -> r.window) rules)
    in
    let wins = Window.set all_sizes in
    let alerts = Alert.engine rules in
    let recomputed =
      List.concat_map
        (fun (o : Serve_obs.t) ->
          Window.push_set wins o;
          List.map Alert.event_to_json
            (Alert.observe alerts wins ~epoch:o.Serve_obs.epoch))
        observations
    in
    let rec diff i rec_l comp_l acc =
      match (rec_l, comp_l) with
      | [], [] -> List.rev acc
      | r :: rt, c :: ct ->
        let acc =
          if Obs_json.to_string r = Obs_json.to_string c then acc
          else
            Printf.sprintf "alert %d differs: recorded %s, recomputed %s" i
              (Obs_json.to_string r) (Obs_json.to_string c)
            :: acc
        in
        diff (i + 1) rt ct acc
      | r :: rt, [] ->
        diff (i + 1) rt []
          (Printf.sprintf "alert %d only recorded: %s" i
             (Obs_json.to_string r)
          :: acc)
      | [], c :: ct ->
        diff (i + 1) [] ct
          (Printf.sprintf "alert %d only recomputed: %s" i
             (Obs_json.to_string c)
          :: acc)
    in
    let mismatches = diff 0 recorded recomputed [] in
    let last_obs =
      match List.rev observations with [] -> None | o :: _ -> Some o
    in
    let epoch, arrived, detections, total_cycles =
      match last_obs with
      | Some o ->
        ( o.Serve_obs.epoch + 1, o.Serve_obs.arrived, o.Serve_obs.cumulative,
          List.fold_left (fun s (o : Serve_obs.t) -> s + o.cycles) 0
            observations )
      | None -> (0, 0, 0, 0)
    in
    let patched =
      List.fold_left (fun s (o : Serve_obs.t) -> s + o.patched) 0 observations
    in
    let status : Obs_json.t =
      `Assoc
        (status_core ~epoch ~arrived ~detections ~patched ~total_cycles
           ~last:last_obs ~wins ~alerts ~window_sizes)
    in
    Ok
      { meta = Some meta_json; observations; recorded; recomputed;
        mismatches; read_errors; status })
