type condition =
  | Stall
  | Degraded_above of float
  | Skew_above of float
  | Fault_burn_above of float
  | Cdf_below of float
  | Patch_above of float

type rule = { name : string; window : int; cond : condition }

let limit_str x =
  (* Shortest round-trip form: "0.1", "3", not "3." *)
  let s = Printf.sprintf "%.12g" x in
  if String.length s > 0 && s.[String.length s - 1] = '.' then
    String.sub s 0 (String.length s - 1)
  else s

let to_spec r =
  let body =
    match r.cond with
    | Stall -> "stall"
    | Degraded_above l -> "degraded>" ^ limit_str l
    | Skew_above l -> "skew>" ^ limit_str l
    | Fault_burn_above l -> "faults>" ^ limit_str l
    | Cdf_below l -> "cdf<" ^ limit_str l
    | Patch_above l -> "patch>" ^ limit_str l
  in
  Printf.sprintf "%s@%d" body r.window

let parse_rule tok =
  let tok = String.trim tok in
  let body, window =
    match String.index_opt tok '@' with
    | None -> (tok, None)
    | Some i ->
      ( String.sub tok 0 i,
        Some (String.sub tok (i + 1) (String.length tok - i - 1)) )
  in
  let name, op, limit =
    match (String.index_opt body '>', String.index_opt body '<') with
    | Some _, Some _ -> (body, '?', None)
    | Some i, None ->
      ( String.sub body 0 i, '>',
        Some (String.sub body (i + 1) (String.length body - i - 1)) )
    | None, Some i ->
      ( String.sub body 0 i, '<',
        Some (String.sub body (i + 1) (String.length body - i - 1)) )
    | None, None -> (body, ' ', None)
  in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let limit_of default =
    match limit with
    | None -> Ok default
    | Some s -> (
      match float_of_string_opt s with
      | Some l when Float.is_finite l && l >= 0. -> Ok l
      | _ -> err "alert %S: bad limit %S" tok s)
  in
  let cond =
    match (name, op) with
    | "stall", ' ' -> Ok (Stall, 50)
    | "stall", _ -> err "alert %S: stall takes no limit" tok
    | "degraded", (' ' | '>') ->
      Result.map (fun l -> (Degraded_above l, 10)) (limit_of 0.1)
    | "skew", (' ' | '>') ->
      Result.map (fun l -> (Skew_above l, 10)) (limit_of 3.)
    | "faults", (' ' | '>') ->
      Result.map (fun l -> (Fault_burn_above l, 10)) (limit_of 1.)
    | "cdf", (' ' | '<') ->
      Result.map (fun l -> (Cdf_below l, 10)) (limit_of 0.5)
    | "patch", (' ' | '>') ->
      Result.map (fun l -> (Patch_above l, 10)) (limit_of 0.)
    | ("degraded" | "skew" | "faults" | "patch"), '<' | "cdf", '>' ->
      err "alert %S: comparator points the wrong way" tok
    | _ -> err "unknown alert %S" tok
  in
  match cond with
  | Error _ as e -> e
  | Ok (cond, default_window) -> (
    match window with
    | None -> Ok { name; window = default_window; cond }
    | Some w -> (
      match int_of_string_opt w with
      | Some w when w >= 1 -> Ok { name; window = w; cond }
      | _ -> err "alert %S: bad window %S" tok w))

let parse spec =
  let toks =
    String.split_on_char '\n' spec
    |> List.concat_map (String.split_on_char ',')
    |> List.map String.trim
    |> List.filter (fun t -> t <> "" && t.[0] <> '#')
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | t :: rest -> (
      match parse_rule t with
      | Ok r -> go (r :: acc) rest
      | Error _ as e -> e)
  in
  go [] toks

let defaults =
  match parse "stall,degraded,skew" with
  | Ok rules -> rules
  | Error _ -> assert false

let holds r (a : Window.agg) =
  match r.cond with
  | Stall -> a.detections = 0
  | Degraded_above l ->
    a.arrivals > 0 && float_of_int a.degraded /. float_of_int a.arrivals > l
  | Skew_above l -> a.skew_max > l
  | Fault_burn_above l ->
    let burns =
      a.worker_crashes + List.fold_left (fun s (_, n) -> s + n) 0 a.faults
    in
    a.epochs > 0 && float_of_int burns /. float_of_int a.epochs > l
  | Cdf_below l -> a.cdf_last < l
  | Patch_above l -> float_of_int a.patched > l

type event = {
  rule : rule;
  epoch : int;
  firing : bool;
  since : int;
  window : Window.agg;
}

let event_to_json e : Obs_json.t =
  `Assoc
    [ ("schema", `String "csod.fleet.alert/1");
      ("alert", `String e.rule.name);
      ("spec", `String (to_spec e.rule));
      ("state", `String (if e.firing then "fire" else "clear"));
      ("epoch", `Int e.epoch); ("since", `Int e.since);
      ("window", Window.agg_to_json e.window) ]

type state = { rule : rule; mutable firing : bool; mutable since : int }
type t = { states : state list }

let engine rules =
  { states = List.map (fun r -> { rule = r; firing = false; since = -1 }) rules }

let rules t = List.map (fun s -> s.rule) t.states

let observe t set ~epoch =
  List.filter_map
    (fun s ->
      if Window.rows set < s.rule.window then None
      else
        match Window.get set s.rule.window with
        | None -> None
        | Some agg ->
          let now = holds s.rule agg in
          if now = s.firing then None
          else begin
            s.firing <- now;
            if now then s.since <- epoch;
            Some
              { rule = s.rule; epoch; firing = now; since = s.since;
                window = agg }
          end)
    t.states

let firing t =
  List.filter_map
    (fun s -> if s.firing then Some (s.rule, s.since) else None)
    t.states

let states_to_json t : Obs_json.t =
  `List
    (List.map
       (fun s ->
         (`Assoc
            [ ("spec", `String (to_spec s.rule));
              ("firing", `Bool s.firing); ("since", `Int s.since) ]
           : Obs_json.t))
       t.states)

let restore_states t json =
  match json with
  | `List entries ->
    let parse e =
      let str k =
        match Obs_json.member k e with Some (`String s) -> Some s | _ -> None
      in
      let bool k =
        match Obs_json.member k e with Some (`Bool b) -> Some b | _ -> None
      in
      let int k = Option.bind (Obs_json.member k e) Obs_json.to_int in
      match (str "spec", bool "firing", int "since") with
      | Some spec, Some firing, Some since -> Some (spec, firing, since)
      | _ -> None
    in
    let parsed = List.filter_map parse entries in
    if List.length parsed <> List.length entries then false
    else if
      List.for_all
        (fun (spec, _, _) ->
          List.exists (fun s -> to_spec s.rule = spec) t.states)
        parsed
    then begin
      List.iter
        (fun (spec, firing, since) ->
          List.iter
            (fun s ->
              if to_spec s.rule = spec then begin
                s.firing <- firing;
                s.since <- since
              end)
            t.states)
        parsed;
      true
    end
    else false
  | _ -> false
