type agg = {
  epochs : int;
  first_epoch : int;
  last_epoch : int;
  arrivals : int;
  detections : int;
  patched : int;
  degraded : int;
  worker_crashes : int;
  faults : (string * int) list;
  snapshots : int;
  cycles : int;
  skew_max : float;
  cdf_last : float;
  store_last : int;
  virtual_last : float;
}

let empty =
  { epochs = 0; first_epoch = -1; last_epoch = -1; arrivals = 0;
    detections = 0; patched = 0; degraded = 0; worker_crashes = 0; faults = [];
    snapshots = 0; cycles = 0; skew_max = 0.; cdf_last = 0.; store_last = 0;
    virtual_last = 0. }

let of_obs (o : Serve_obs.t) =
  { epochs = 1; first_epoch = o.epoch; last_epoch = o.epoch;
    arrivals = o.arrivals; detections = o.detections; patched = o.patched;
    degraded = o.degraded;
    worker_crashes = o.worker_crashes;
    faults = List.sort (fun (a, _) (b, _) -> compare a b) o.faults;
    snapshots = o.snapshots; cycles = o.cycles; skew_max = o.cycle_skew;
    cdf_last = o.cdf; store_last = o.store_contexts;
    virtual_last = o.virtual_seconds }

(* Sum two name-sorted counter lists, keeping the result sorted — the
   same merge a from-scratch fold would produce, so grouping doesn't
   matter. *)
let rec merge_faults a b =
  match (a, b) with
  | [], l | l, [] -> l
  | (ka, va) :: ta, (kb, vb) :: tb ->
    let c = compare ka kb in
    if c = 0 then (ka, va + vb) :: merge_faults ta tb
    else if c < 0 then (ka, va) :: merge_faults ta b
    else (kb, vb) :: merge_faults a tb

let merge a b =
  if a.epochs = 0 then b
  else if b.epochs = 0 then a
  else
    { epochs = a.epochs + b.epochs; first_epoch = a.first_epoch;
      last_epoch = b.last_epoch; arrivals = a.arrivals + b.arrivals;
      detections = a.detections + b.detections;
      patched = a.patched + b.patched;
      degraded = a.degraded + b.degraded;
      worker_crashes = a.worker_crashes + b.worker_crashes;
      faults = merge_faults a.faults b.faults;
      snapshots = a.snapshots + b.snapshots; cycles = a.cycles + b.cycles;
      skew_max = Float.max a.skew_max b.skew_max; cdf_last = b.cdf_last;
      store_last = b.store_last; virtual_last = b.virtual_last }

let agg_to_json a : Obs_json.t =
  `Assoc
    [ ("epochs", `Int a.epochs); ("first_epoch", `Int a.first_epoch);
      ("last_epoch", `Int a.last_epoch); ("arrivals", `Int a.arrivals);
      ("detections", `Int a.detections); ("patched", `Int a.patched);
      ("degraded", `Int a.degraded);
      ("worker_crashes", `Int a.worker_crashes);
      ("faults", `Assoc (List.map (fun (k, v) -> (k, `Int v)) a.faults));
      ("snapshots", `Int a.snapshots); ("cycles", `Int a.cycles);
      ("skew_max", `Float a.skew_max); ("cdf_last", `Float a.cdf_last);
      ("store_last", `Int a.store_last);
      ("virtual_last", `Float a.virtual_last) ]

let agg_of_json json =
  let ( let* ) = Option.bind in
  let int k = Option.bind (Obs_json.member k json) Obs_json.to_int in
  let flt k = Option.bind (Obs_json.member k json) Obs_json.to_float in
  let* epochs = int "epochs" in
  let* first_epoch = int "first_epoch" in
  let* last_epoch = int "last_epoch" in
  let* arrivals = int "arrivals" in
  let* detections = int "detections" in
  (* Absent in pre-respond checkpoints: read as 0. *)
  let patched = Option.value ~default:0 (int "patched") in
  let* degraded = int "degraded" in
  let* worker_crashes = int "worker_crashes" in
  let* snapshots = int "snapshots" in
  let* cycles = int "cycles" in
  let* skew_max = flt "skew_max" in
  let* cdf_last = flt "cdf_last" in
  let* store_last = int "store_last" in
  let* virtual_last = flt "virtual_last" in
  let* faults =
    match Obs_json.member "faults" json with
    | Some (`Assoc kvs) ->
      let parsed =
        List.filter_map
          (fun (k, v) -> Option.map (fun n -> (k, n)) (Obs_json.to_int v))
          kvs
      in
      if List.length parsed = List.length kvs then Some parsed else None
    | _ -> None
  in
  Some
    { epochs; first_epoch; last_epoch; arrivals; detections; patched;
      degraded; worker_crashes; faults; snapshots; cycles; skew_max; cdf_last;
      store_last; virtual_last }

type t = {
  win : int;
  ring : agg array;  (* slot = epoch index mod win *)
  mutable count : int;  (* lifetime pushes *)
}

let create ~size =
  if size < 1 then invalid_arg "Window.create: size must be >= 1";
  { win = size; ring = Array.make size empty; count = 0 }

let size t = t.win
let pushed t = t.count

let push t o =
  t.ring.(t.count mod t.win) <- of_obs o;
  t.count <- t.count + 1

(* The ring's occupied slots in epoch order: oldest first. *)
let ordered t =
  let n = min t.count t.win in
  let start = if t.count <= t.win then 0 else t.count mod t.win in
  Array.init n (fun i -> t.ring.((start + i) mod t.win))

let aggregate t =
  let slots = ordered t in
  let n = Array.length slots in
  if n = 0 then empty
  else begin
    (* Pairwise tree-fold over adjacent spans, the stride-doubling shape
       of Metrics_shard.reduce_into.  merge is associative over adjacent
       groupings, so this equals the linear fold — pinned in
       test_serve. *)
    let stride = ref 1 in
    while !stride < n do
      let i = ref 0 in
      while !i + !stride < n do
        slots.(!i) <- merge slots.(!i) slots.(!i + !stride);
        i := !i + (2 * !stride)
      done;
      stride := 2 * !stride
    done;
    slots.(0)
  end

type set = { windows : (int * t) list (* size-sorted *) }

let set sizes =
  let sizes = List.sort_uniq compare sizes in
  { windows = List.map (fun w -> (w, create ~size:w)) sizes }

let sizes s = List.map fst s.windows

let rows s =
  match s.windows with [] -> 0 | (_, t) :: _ -> t.count

let push_set s o = List.iter (fun (_, t) -> push t o) s.windows

let get s w =
  Option.map aggregate (List.assoc_opt w s.windows)

let set_to_json s : Obs_json.t =
  let win (w, t) : string * Obs_json.t =
    ( string_of_int w,
      `Assoc
        [ ("count", `Int t.count);
          ("slots", `List (Array.to_list (Array.map agg_to_json (ordered t))))
        ] )
  in
  `Assoc [ ("windows", `Assoc (List.map win s.windows)) ]

let set_of_json json =
  let ( let* ) = Option.bind in
  match Obs_json.member "windows" json with
  | Some (`Assoc kvs) ->
    let parse_one (k, v) =
      let* w = int_of_string_opt k in
      if w < 1 then None
      else
        let* count = Option.bind (Obs_json.member "count" v) Obs_json.to_int in
        let* slots =
          match Obs_json.member "slots" v with
          | Some (`List l) ->
            let parsed = List.filter_map agg_of_json l in
            if List.length parsed = List.length l && List.length l <= w then
              Some parsed
            else None
          | _ -> None
        in
        let t = create ~size:w in
        (* Refill the ring at the positions the live service had them:
           the oldest restored slot sits at index [count - n]. *)
        let n = List.length slots in
        List.iteri
          (fun i a -> t.ring.((count - n + i) mod w) <- a)
          slots;
        t.count <- count;
        Some (w, t)
    in
    let parsed = List.filter_map parse_one kvs in
    if List.length parsed <> List.length kvs then None
    else
      let counts = List.map (fun (_, t) -> t.count) parsed in
      (match counts with
       | [] -> Some { windows = [] }
       | c :: rest when List.for_all (( = ) c) rest ->
         Some { windows = List.sort (fun (a, _) (b, _) -> compare a b) parsed }
       | _ -> None)
  | _ -> None
