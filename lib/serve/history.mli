(** Durable, checksummed health history (schema [csod.serve.history/1]).

    The service appends one JSONL line per event to rotating segment
    files ([serve-000000.jsonl], [serve-000001.jsonl], ...) in a history
    directory.  Every line carries a monotonic [seq], a [kind]
    ([meta] — run configuration, written first in each session;
    [health] — one {!Serve_obs.t} per epoch barrier; [alert] — one
    {!Alert.event} per transition) and an FNV-1a 64 checksum of its
    rendered [body] (the same hash {!Persist} seals snapshots with), so
    truncated or bit-flipped lines are detected rather than silently
    trusted.

    Bodies are deterministic projections ({!Serve_obs}), so for a given
    seed and schedule the segment bytes are identical at any [--domains]
    count — pinned by [test_serve].  [csod_run replay] re-renders the
    dashboard and re-evaluates alert rules from these files alone. *)

val schema : string
(** ["csod.serve.history/1"]. *)

type kind = Meta | Health | Alert

val kind_to_string : kind -> string

type record = { seq : int; kind : kind; body : Obs_json.t }

val line : record -> string
(** The serialized JSONL line (no trailing newline). *)

val parse_line : string -> (record, string) result
(** Strict single-line parse: schema, field and checksum verification.
    [Error] describes what failed. *)

(** {2 Writing} *)

type writer

val writer :
  ?rotate:int -> ?seq:int -> ?segment:int -> ?lines:int -> string -> writer
(** A writer appending into the given directory (created if missing).
    [rotate] (default 4096) bounds lines per segment.  [seq], [segment]
    and [lines] (defaults 0) restart a checkpointed writer exactly where
    it stopped — same segment file, same next sequence number. *)

val append : writer -> kind -> Obs_json.t -> int
(** Append one record; returns the sequence number it got.  Lines are
    flushed as written, so a crashed service loses at most the line
    being written (and the checksum catches that torn line on read). *)

val seq : writer -> int
val segment : writer -> int
val lines_in_segment : writer -> int
(** Writer position, for checkpoints. *)

val close : writer -> unit

val truncate : string -> segment:int -> lines:int -> unit
(** Roll the directory back to a checkpointed writer position: segments
    past [segment] are deleted and the [segment] file is cut to its
    first [lines] lines.  Resume uses this so records appended after the
    last checkpoint (by a crashed session) cannot duplicate the ones the
    resumed session re-emits. *)

(** {2 Reading} *)

val segments : string -> string list
(** The directory's segment files, segment order (full paths). *)

val read : string -> record list * string list
(** Read every segment: the valid records in file order plus one message
    per rejected line (corruption, bad schema, checksum mismatch).
    Corrupt lines are skipped, not fatal — history survives a torn
    tail. *)
