let schema = "csod.serve.history/1"

type kind = Meta | Health | Alert

let kind_to_string = function
  | Meta -> "meta"
  | Health -> "health"
  | Alert -> "alert"

let kind_of_string = function
  | "meta" -> Some Meta
  | "health" -> Some Health
  | "alert" -> Some Alert
  | _ -> None

type record = { seq : int; kind : kind; body : Obs_json.t }

(* Same FNV-1a 64 as Persist's snapshot seal, over the rendered body. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let crc s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let line r =
  let body = Obs_json.to_string r.body in
  Printf.sprintf
    {|{"schema":"%s","seq":%d,"kind":"%s","crc":"%016Lx","body":%s}|} schema
    r.seq (kind_to_string r.kind) (crc body) body

let parse_line s =
  match Obs_json.of_string s with
  | Error e -> Error ("unparseable line: " ^ e)
  | Ok json -> (
    let str k =
      match Obs_json.member k json with Some (`String v) -> Some v | _ -> None
    in
    match
      ( str "schema",
        Option.bind (Obs_json.member "seq" json) Obs_json.to_int,
        Option.bind (str "kind") kind_of_string,
        str "crc", Obs_json.member "body" json )
    with
    | Some sc, _, _, _, _ when sc <> schema ->
      Error (Printf.sprintf "wrong schema %S" sc)
    | Some _, Some seq, Some kind, Some stored, Some body ->
      let rendered = Obs_json.to_string body in
      let actual = Printf.sprintf "%016Lx" (crc rendered) in
      if String.lowercase_ascii stored = actual then Ok { seq; kind; body }
      else
        Error
          (Printf.sprintf "seq %d: checksum mismatch (%s vs %s)" seq stored
             actual)
    | _ -> Error "missing field")

(* Writing *)

type writer = {
  dir : string;
  rotate : int;
  mutable next_seq : int;
  mutable seg : int;
  mutable seg_lines : int;
  mutable oc : out_channel option;
}

let segment_name i = Printf.sprintf "serve-%06d.jsonl" i

let writer ?(rotate = 4096) ?(seq = 0) ?(segment = 0) ?(lines = 0) dir =
  if rotate < 1 then invalid_arg "History.writer: rotate must be >= 1";
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  { dir; rotate; next_seq = seq; seg = segment; seg_lines = lines; oc = None }

let channel w =
  match w.oc with
  | Some oc -> oc
  | None ->
    let path = Filename.concat w.dir (segment_name w.seg) in
    let oc =
      open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
    in
    w.oc <- Some oc;
    oc

let close w =
  Option.iter close_out w.oc;
  w.oc <- None

let append w kind body =
  let seq = w.next_seq in
  let oc = channel w in
  output_string oc (line { seq; kind; body });
  output_char oc '\n';
  flush oc;
  w.next_seq <- seq + 1;
  w.seg_lines <- w.seg_lines + 1;
  if w.seg_lines >= w.rotate then begin
    close w;
    w.seg <- w.seg + 1;
    w.seg_lines <- 0
  end;
  seq

let seq w = w.next_seq
let segment w = w.seg
let lines_in_segment w = w.seg_lines

let truncate dir ~segment ~lines =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        match
          Scanf.sscanf_opt f "serve-%06d.jsonl%!" (fun i -> i)
        with
        | Some i when i > segment -> Sys.remove (Filename.concat dir f)
        | _ -> ())
      (Sys.readdir dir);
    let path = Filename.concat dir (segment_name segment) in
    if Sys.file_exists path then begin
      let ic = open_in path in
      let keep = Buffer.create 4096 in
      (try
         for _ = 1 to lines do
           Buffer.add_string keep (input_line ic);
           Buffer.add_char keep '\n'
         done
       with End_of_file -> ());
      close_in ic;
      let oc = open_out path in
      Buffer.output_buffer oc keep;
      close_out oc
    end
  end

(* Reading *)

let segments dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
         String.length f = String.length (segment_name 0)
         && String.sub f 0 6 = "serve-"
         && Filename.check_suffix f ".jsonl")
    |> List.sort compare
    |> List.map (Filename.concat dir)

let read dir =
  let records = ref [] and errors = ref [] in
  List.iter
    (fun path ->
      let ic = open_in path in
      let lineno = ref 0 in
      (try
         while true do
           let l = input_line ic in
           incr lineno;
           if String.trim l <> "" then
             match parse_line l with
             | Ok r -> records := r :: !records
             | Error e ->
               errors :=
                 Printf.sprintf "%s:%d: %s" (Filename.basename path) !lineno e
                 :: !errors
         done
       with End_of_file -> ());
      close_in ic)
    (segments dir);
  (List.rev !records, List.rev !errors)
