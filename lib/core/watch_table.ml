type wp = {
  obj_addr : int;
  watch_addr : int;
  entry : Context_table.entry;
  alloc_backtrace : int list;
  mutable fds : (Threads.tid * Hw_breakpoint.fd) list;
  installed_at : float;
  prob_at_install : float;
}

type t = {
  params : Params.t;
  machine : Machine.t;
  rng : Prng.t;
  ring : wp Ring.t; (* oldest-first; the near-FIFO circular buffer *)
  by_fd : (Hw_breakpoint.fd, wp) Hashtbl.t;
  by_obj : (int, wp) Hashtbl.t;
  c_installs : Metrics.counter;
  c_evictions : Metrics.counter;
  c_replacements : Metrics.counter;
  c_free_removals : Metrics.counter;
  mutable installs : int;
  mutable startup : bool;
}

let now t = Clock.seconds (Machine.clock t.machine)

(* Install one thread's perf event, absorbing injected failures.  [`EBUSY]
   is transient (a debugger briefly holds the registers), so back off in
   virtual time and retry a bounded number of times; [`EACCES] is a
   permissions failure that retrying cannot fix.  [`ENOSPC] is the
   architectural four-address limit — not a fault — and keeps its historical
   meaning: skip this thread, arm the rest. *)
let max_open_attempts = 3

let install_for_tid t ~combined ~watch_addr tid =
  let machine = t.machine in
  let record_fault point =
    Flight_recorder.fault ~at:(Clock.cycles (Machine.clock machine)) ~point
  in
  let rec go attempt =
    match Machine.install_watch ~combined machine ~addr:watch_addr ~tid with
    | Ok fd -> `Fd fd
    | Error `ENOSPC -> `Skip
    | Error `EACCES ->
      record_fault "eacces";
      `Fault
    | Error `EBUSY ->
      record_fault "ebusy";
      if attempt >= max_open_attempts then `Fault
      else begin
        Machine.stall machine Cost.ebusy_backoff;
        go (attempt + 1)
      end
  in
  go 1

let create ~params ~machine ~rng =
  let reg = Machine.registry machine in
  let t =
    { params;
      machine;
      rng;
      ring = Ring.create ~capacity:Hw_breakpoint.num_slots;
      by_fd = Hashtbl.create 64;
      by_obj = Hashtbl.create 64;
      c_installs = Metrics.counter reg "wmu.installs";
      c_evictions = Metrics.counter reg "wmu.evictions";
      c_replacements = Metrics.counter reg "wmu.replacements";
      c_free_removals = Metrics.counter reg "wmu.free_removals";
      installs = 0;
      startup = true }
  in
  let combined = params.Params.combined_syscall in
  let threads = Machine.threads machine in
  Threads.on_spawn threads (fun tid ->
      (* A new thread must observe every installed watchpoint: there is no
         way to know which thread will cause an overflow later. *)
      Ring.iter
        (fun wp ->
          match install_for_tid t ~combined ~watch_addr:wp.watch_addr tid with
          | `Fd fd ->
            wp.fds <- (tid, fd) :: wp.fds;
            Hashtbl.replace t.by_fd fd wp
          | `Skip | `Fault -> ())
        t.ring);
  Threads.on_exit threads (fun tid ->
      Ring.iter
        (fun wp ->
          let mine, rest = List.partition (fun (t', _) -> t' = tid) wp.fds in
          List.iter
            (fun (_, fd) ->
              Machine.remove_watch ~combined machine fd;
              Hashtbl.remove t.by_fd fd)
            mine;
          wp.fds <- rest)
        t.ring);
  t

let has_free_slot t = not (Ring.is_full t.ring)

let decayed_prob t wp =
  (* The paper reduces an installed watchpoint's probability once it "has
     been installed for a long period of time (e.g., 10 seconds)": a step
     per elapsed half-life, so a freshly installed watchpoint is not
     instantly outbid by an equal-probability newcomer. *)
  let age = now t -. wp.installed_at in
  let steps = int_of_float (age /. t.params.Params.installed_halflife_sec) in
  wp.prob_at_install *. (0.5 ** float_of_int steps)

let install t ~obj_addr ~watch_addr ~entry =
  if Ring.is_full t.ring then failwith "Watch_table.install: no free slot";
  Machine.in_phase t.machine Profiler.Wmu_install @@ fun () ->
  let combined = t.params.Params.combined_syscall in
  let faulted = ref false in
  let fds =
    List.filter_map
      (fun tid ->
        match install_for_tid t ~combined ~watch_addr tid with
        | `Fd fd -> Some (tid, fd)
        | `Skip -> None
        | `Fault ->
          faulted := true;
          None)
      (Threads.alive (Machine.threads t.machine))
  in
  if fds = [] && !faulted then
    (* Every open failed for environmental reasons (EBUSY past the retry
       budget, or EACCES): nothing is armed, so claiming a ring slot would
       just shadow a live candidate.  Report failure and let the caller
       degrade.  Without faults this branch is unreachable and installation
       keeps its historical always-succeeds behaviour. *)
    false
  else begin
    let wp =
      { obj_addr;
        watch_addr;
        entry;
        alloc_backtrace = entry.Context_table.full_ctx;
        fds;
        installed_at = now t;
        prob_at_install = entry.Context_table.prob }
    in
    Ring.push t.ring wp;
    List.iter (fun (_, fd) -> Hashtbl.replace t.by_fd fd wp) fds;
    Hashtbl.replace t.by_obj obj_addr wp;
    t.installs <- t.installs + 1;
    Metrics.incr t.c_installs;
    Flight_recorder.watch ~at:(Clock.cycles (Machine.clock t.machine))
      ~addr:obj_addr ~ctx:entry.Context_table.id;
    if t.installs >= Hw_breakpoint.num_slots then t.startup <- false;
    true
  end

let remove t wp =
  Machine.in_phase t.machine Profiler.Wmu_evict @@ fun () ->
  let combined = t.params.Params.combined_syscall in
  List.iter
    (fun (_, fd) ->
      Machine.remove_watch ~combined t.machine fd;
      Hashtbl.remove t.by_fd fd)
    wp.fds;
  wp.fds <- [];
  Hashtbl.remove t.by_obj wp.obj_addr;
  ignore (Ring.remove_where t.ring (fun w -> w == wp));
  Metrics.incr t.c_evictions

let replace_victim t victim ~obj_addr ~watch_addr ~entry =
  Trace.replaced ~victim:victim.obj_addr ~by:obj_addr;
  Metrics.incr t.c_replacements;
  Flight_recorder.replace ~at:(Clock.cycles (Machine.clock t.machine))
    ~victim:victim.obj_addr ~victim_ctx:victim.entry.Context_table.id
    ~by:obj_addr ~by_ctx:entry.Context_table.id;
  Machine.in_phase t.machine Profiler.Wmu_replace (fun () ->
      remove t victim;
      install t ~obj_addr ~watch_addr ~entry)

let try_replace t ~obj_addr ~watch_addr ~entry ~new_prob =
  match t.params.Params.policy with
  | Params.Naive -> false
  | Params.Random ->
    (* Pick a random victim; if it does not yield, scan onward from it,
       giving up after one full cycle. *)
    let slots = Ring.to_list t.ring in
    let n = List.length slots in
    if n = 0 then false
    else begin
      let start = Prng.int t.rng n in
      let rec scan k =
        if k >= n then false
        else
          let victim = List.nth slots ((start + k) mod n) in
          if decayed_prob t victim < new_prob then
            replace_victim t victim ~obj_addr ~watch_addr ~entry
          else scan (k + 1)
      in
      scan 0
    end
  | Params.Near_fifo ->
    (* Oldest-first: replace the first watchpoint that yields.  The ring
       pointer then naturally sits past the replaced position. *)
    let rec scan k n =
      if k >= n then false
      else
        match Ring.peek t.ring with
        | None -> false
        | Some victim ->
          if decayed_prob t victim < new_prob then
            replace_victim t victim ~obj_addr ~watch_addr ~entry
          else begin
            Ring.advance t.ring;
            scan (k + 1) n
          end
    in
    scan 0 (Ring.length t.ring)

let on_free t ~obj_addr =
  match Hashtbl.find_opt t.by_obj obj_addr with
  | None -> false
  | Some wp ->
    remove t wp;
    Metrics.incr t.c_free_removals;
    Flight_recorder.unwatch_free ~at:(Clock.cycles (Machine.clock t.machine))
      ~addr:obj_addr;
    true

let in_startup t = t.startup
let find_by_fd t fd = Hashtbl.find_opt t.by_fd fd
let installs t = t.installs
let live t = Ring.to_list t.ring
