type kind = Over_read | Over_write

type source = Watchpoint | Canary_free | Canary_exit

type t = {
  kind : kind;
  source : source;
  access_backtrace : int list;
  alloc_backtrace : int list;
  ctx_key : Alloc_ctx.key;
  object_addr : int;
  watch_addr : int;
  tid : Threads.tid;
  at_sec : float;
}

let kind_name = function Over_read -> "over-read" | Over_write -> "over-write"

let source_name = function
  | Watchpoint -> "watchpoint"
  | Canary_free -> "canary-at-free"
  | Canary_exit -> "canary-at-exit"

let format ~symbolize t =
  let buf = Buffer.create 256 in
  let frames addrs =
    List.iter (fun a -> Buffer.add_string buf ("  " ^ symbolize a ^ "\n")) addrs
  in
  (match t.source with
  | Watchpoint ->
    Buffer.add_string buf
      (Printf.sprintf "A buffer %s problem is detected at:\n" (kind_name t.kind));
    frames t.access_backtrace
  | Canary_free | Canary_exit ->
    Buffer.add_string buf
      (Printf.sprintf
         "A buffer over-write problem is evidenced by a corrupted canary (%s).\n"
         (source_name t.source)));
  Buffer.add_string buf "\nThis object is allocated at:\n";
  frames t.alloc_backtrace;
  Buffer.contents buf

let one_line ~symbolize t =
  let site = match t.alloc_backtrace with a :: _ -> symbolize a | [] -> "?" in
  Printf.sprintf "%s %s: object 0x%x (allocated at %s), tid %d, t=%.3fs"
    (kind_name t.kind) (source_name t.source) t.object_addr site t.tid t.at_sec

let pp ~symbolize ppf t = Format.pp_print_string ppf (format ~symbolize t)
