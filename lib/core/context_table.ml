type entry = {
  id : int;
  key : Alloc_ctx.key;
  mutable prob : float;
  mutable allocs : int;
  mutable watches : int;
  mutable window_start : float;
  mutable window_count : int;
  mutable burst_until : float;
  mutable floor_since : float;
  mutable pinned : bool;
  mutable full_ctx : int list;
}

type t = {
  params : Params.t;
  machine : Machine.t;
  rng : Prng.t;
  table : (Alloc_ctx.key, entry) Chained_table.t;
  by_id : (int, entry) Hashtbl.t;
  c_allocations : Metrics.counter;
  c_bursts : Metrics.counter;
  c_revivals : Metrics.counter;
  g_contexts : Metrics.gauge;
  mutable next_id : int;
  mutable allocations : int;
  mutable watches : int;
  (* One-entry memo of the last context looked up: allocation sites repeat
     in tight runs (loops allocating from one call site), so most lookups
     hit the same entry as their predecessor and skip both the key tuple
     allocation and the table probe.  Entries are never removed from the
     table, so the memo can never go stale. *)
  mutable memo : entry option;
  mutable memo_on : bool;
}

let create ~params ~machine ~rng =
  let reg = Machine.registry machine in
  { params;
    machine;
    rng;
    table =
      Chained_table.create ~buckets:2048 ~hash:Alloc_ctx.hash_key ~equal:Alloc_ctx.equal_key ();
    by_id = Hashtbl.create 256;
    c_allocations = Metrics.counter reg "smu.allocations";
    c_bursts = Metrics.counter reg "smu.burst_throttles";
    c_revivals = Metrics.counter reg "smu.revivals";
    g_contexts = Metrics.gauge reg "smu.contexts";
    next_id = 0;
    allocations = 0;
    watches = 0;
    memo = None;
    memo_on = true }

let set_memo t on =
  t.memo_on <- on;
  if not on then t.memo <- None

let now t = Clock.seconds (Machine.clock t.machine)
let cycles t = Clock.cycles (Machine.clock t.machine)

(* Flight-recorder hook for one probability transition; skipped entirely
   (and the no-change case suppressed) when no recorder is installed. *)
let note_prob t (e : entry) cause ~from_p =
  if from_p <> e.prob then
    Flight_recorder.prob ~at:(cycles t) ~ctx:e.id ~cause ~from_p ~to_p:e.prob

let at_floor t e = e.prob <= t.params.Params.min_prob +. 1e-12

let clamp_floor t e =
  if e.prob < t.params.Params.min_prob then begin
    e.prob <- t.params.Params.min_prob;
    if e.floor_since = 0.0 then e.floor_since <- now t
  end

let fresh_entry t (ctx : Alloc_ctx.t) =
  (* First sight of this context: the paper acquires the whole calling
     context once, with the expensive backtrace walk. *)
  let full = ctx.Alloc_ctx.backtrace () in
  let id = t.next_id in
  t.next_id <- id + 1;
  { id;
    key = Alloc_ctx.key ctx;
    prob = t.params.Params.initial_prob;
    allocs = 0;
    watches = 0;
    window_start = now t;
    window_count = 0;
    burst_until = 0.0;
    floor_since = 0.0;
    pinned = false;
    full_ctx = full }

let on_allocation t ctx =
  Machine.work_as t.machine Profiler.Smu_lookup Cost.context_lookup;
  let e =
    match t.memo with
    | Some e
      when (let kc, ko = e.key in
            kc = ctx.Alloc_ctx.callsite && ko = ctx.Alloc_ctx.stack_offset) ->
      e
    | _ ->
      let e =
        Chained_table.find_or_add t.table (Alloc_ctx.key ctx) ~default:(fun () ->
            let e = fresh_entry t ctx in
            Hashtbl.replace t.by_id e.id e;
            e)
      in
      if t.memo_on then t.memo <- Some e;
      e
  in
  if e.allocs = 0 then Metrics.set t.g_contexts (Chained_table.length t.table);
  t.allocations <- t.allocations + 1;
  Metrics.incr t.c_allocations;
  e.allocs <- e.allocs + 1;
  Machine.work_as t.machine Profiler.Smu_lookup Cost.prob_update;
  let tnow = now t in
  let recording = Flight_recorder.active () in
  (* Degradation on each allocation. *)
  let before_decay = e.prob in
  e.prob <- e.prob -. t.params.Params.degrade_per_alloc;
  clamp_floor t e;
  if recording then note_prob t e Flight_recorder.Decay ~from_p:before_decay;
  (* Burst bookkeeping: count allocations in the rolling window. *)
  if tnow -. e.window_start > t.params.Params.burst_window_sec then begin
    e.window_start <- tnow;
    e.window_count <- 0;
    (* An active throttle expires with its window: the probability is
       "again increased to the lower bound". *)
    if e.burst_until > 0.0 && tnow >= e.burst_until then e.burst_until <- 0.0
  end;
  e.window_count <- e.window_count + 1;
  if e.window_count > t.params.Params.burst_threshold then begin
    if e.burst_until = 0.0 then begin
      Metrics.incr t.c_bursts;
      if recording then
        Flight_recorder.prob ~at:(cycles t) ~ctx:e.id
          ~cause:Flight_recorder.Throttle ~from_p:e.prob
          ~to_p:t.params.Params.burst_prob
    end;
    e.burst_until <- e.window_start +. t.params.Params.burst_window_sec
  end;
  (* Reviving: a floor-bound context may be boosted after a while. *)
  if
    (not e.pinned) && at_floor t e
    && e.floor_since > 0.0
    && tnow -. e.floor_since > t.params.Params.revive_period_sec
    && Prng.below_percent t.rng 0.01
  then begin
    Metrics.incr t.c_revivals;
    let before = e.prob in
    e.prob <- t.params.Params.revive_prob;
    e.floor_since <- 0.0;
    if recording then note_prob t e Flight_recorder.Revive ~from_p:before
  end;
  e

let effective_prob t e =
  if e.pinned then 1.0
  else if e.burst_until > 0.0 && now t < e.burst_until then t.params.Params.burst_prob
  else e.prob

let note_watched t (e : entry) =
  t.watches <- t.watches + 1;
  e.watches <- e.watches + 1;
  if not e.pinned then begin
    let before = e.prob in
    e.prob <- e.prob *. t.params.Params.watch_decay_factor;
    clamp_floor t e;
    if Flight_recorder.active () then
      note_prob t e Flight_recorder.Halve_on_watch ~from_p:before
  end

let pin t e =
  let before = e.prob in
  e.pinned <- true;
  e.prob <- 1.0;
  if Flight_recorder.active () then
    note_prob t e Flight_recorder.Pin ~from_p:before

let find t key = Chained_table.find t.table key
let find_by_id t id = Hashtbl.find_opt t.by_id id
let num_contexts t = Chained_table.length t.table
let total_allocations t = t.allocations
let total_watches t = t.watches
let iter f t = Chained_table.iter (fun _ e -> f e) t.table

let memory_bytes t =
  Chained_table.memory_bytes t.table
  + Chained_table.fold (fun _ e acc -> acc + (10 * 8) + (8 * List.length e.full_ctx)) t.table 0
