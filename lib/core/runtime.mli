(** The CSOD runtime — the paper's drop-in library, assembled.

    Wraps a raw heap with the six units of Figure 1: Alloc/Dealloc
    Monitoring (the {!Tool.t} surface), Sampling Management
    ({!Context_table}), Watchpoint Management ({!Watch_table}), Signal
    Handling (the machine trap handler installed here), and — when
    evidence mode is on — Canary Management and Termination Handling
    ({!finish}).

    Allocation flow (Section III-A1): obtain the context entry, decide
    whether to watch (a free watchpoint is always used; otherwise a PRNG
    draw against the context's adaptive probability gates a policy-driven
    replacement), plant header/canary, install the watchpoint on every
    alive thread.  Deallocation removes the object's watchpoint and, in
    evidence mode, verifies the canary — a corrupted canary pins the
    context at 100% and records it for future executions. *)

type t

type stats = {
  contexts : int;         (** distinct allocation calling contexts seen *)
  allocations : int;      (** allocations intercepted *)
  watched_times : int;    (** watchpoint installations (Table IV's WT) *)
  traps : int;            (** watchpoint firings handled *)
  canary_checks : int;
  live_objects : int;
}

val create :
  ?params:Params.t ->
  ?store:Persist.t ->
  ?respond:Respond.t ->
  ?seed:int ->
  machine:Machine.t ->
  heap:Heap.t ->
  unit ->
  t
(** Build the runtime: splits per-runtime PRNGs off the machine generator
    (offset by [seed], default 0, so repeated executions differ), installs
    the SIGTRAP handler, subscribes to thread events, and pre-pins every
    context found in [store] (default: fresh empty store).

    [respond] selects the active-response policy (default none — identical
    behaviour to a build without the layer).  Oblivious mode arms the
    machine's squash/override hooks and redirects every detected
    out-of-bounds access into the response layer's shadow slab; the
    watchpoint then {e stays armed} (the object's later accesses need
    redirecting too), with reports still limited to one per object.  Patch
    mode consults the store's evidence counts on every allocation and
    gives convicted contexts' objects guard slack instead of a watchpoint.
    Neither policy draws from any PRNG. *)

val tool : t -> Tool.t
(** The interposition surface to run applications against. *)

val params : t -> Params.t
val store : t -> Persist.t

val respond : t -> Respond.t option
(** The active-response layer this runtime was built with, if any. *)

val patch_pad : int
(** Guard slack (bytes) a code-less patch adds past a convicted context's
    object: overflows up to this size land in owned memory, below the
    canary. *)

val degraded : t -> bool
(** True once the runtime has fallen back to canary-only mode: after
    {!Watch_table.install} failed three times in a row for environmental
    reasons (fault-injected [`EBUSY]/[`EACCES] — e.g. a debugger holding
    the debug registers), no further watchpoints are attempted for this
    execution.  Evidence-mode canaries keep detecting; the transition is
    recorded in the flight recorder as a [Degrade] probability change and
    counted in the ["runtime.degraded"] metric. *)

val detections : t -> Report.t list
(** Reports accumulated this execution, oldest first. *)

val detected : t -> bool
(** Has any overflow been detected (watchpoint or canary)? *)

val finish : t -> unit
(** The Termination Handling Unit: in evidence mode, check the canary of
    every live object, report corruptions, and record every overflowing
    context into the store.  Also uninstalls the trap handler.  Safe to
    call after an erroneous exit (the paper intercepts SIGSEGV/abort to do
    exactly this); idempotent. *)

val stats : t -> stats

val context_table : t -> Context_table.t
(** Exposed for the harness (Table III/IV characteristics). *)

val watch_table : t -> Watch_table.t

val extra_resident_bytes : t -> int
(** Side-table memory: the context table.  CSOD keeps {e no} per-object
    side structures — all object metadata lives in the 32-byte in-block
    header of Figure 5, and the Termination Handling Unit enumerates live
    objects by walking the heap. *)
