(* A store maps each convicted context key to its evidence hit count.  The
   key set is what pins contexts at 100% watch probability; the counts feed
   the code-less patching policy (a context is patched once its count
   reaches the conviction threshold).  The on-disk format is unchanged —
   counts are an in-memory, mergeable refinement. *)
type t = (Alloc_ctx.key, int) Hashtbl.t

let create () : t = Hashtbl.create 16
let mem t key = Hashtbl.mem t key

let add t key =
  match Hashtbl.find_opt t key with
  | Some n -> Hashtbl.replace t key (n + 1)
  | None -> Hashtbl.add t key 1

let hits t key = match Hashtbl.find_opt t key with Some n -> n | None -> 0
let count t = Hashtbl.length t
let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort compare

let merge dst src =
  Hashtbl.iter
    (fun k n ->
      match Hashtbl.find_opt dst k with
      | Some m -> Hashtbl.replace dst k (m + n)
      | None -> Hashtbl.add dst k n)
    src

let copy t =
  let c = create () in
  merge c t;
  c

(* Fold [src] into [dst] counting only the evidence [src] gained over
   [base].  The fleet snapshots the shared store into [base] at each epoch
   barrier and hands executions full copies (hit counts included, so patch
   conviction sees real evidence); merging back the {e delta} keeps the
   shared counts exact — evidence inherited from the snapshot is never
   counted twice, while every key set operation stays a plain merge. *)
let merge_delta dst ~base src =
  Hashtbl.iter
    (fun k n ->
      let b = hits base k in
      if n > b then begin
        match Hashtbl.find_opt dst k with
        | Some m -> Hashtbl.replace dst k (m + n - b)
        | None -> Hashtbl.add dst k (n - b)
      end)
    src

(* ---------- on-disk format ----------

   Data lines are the historical ["site stack_offset"] pairs, sorted.  Since
   format 2 the last line is a footer

     #csod.store/2 count=N sum=XXXXXXXXXXXXXXXX

   carrying the entry count and an FNV-1a checksum of the data lines, so a
   reader can tell a complete store from a torn one.  Footer-less files (the
   pre-footer format, or a tear that happened to land on a line boundary)
   are still accepted: they carry no integrity data to check. *)

let footer_magic = "#csod.store/2"

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let checksum_line acc line =
  let acc = ref acc in
  String.iter
    (fun c ->
      acc :=
        Int64.mul (Int64.logxor !acc (Int64.of_int (Char.code c))) fnv_prime)
    line;
  (* Terminator byte so ["ab";"c"] and ["a";"bc"] differ. *)
  Int64.mul (Int64.logxor !acc 0x0aL) fnv_prime

let checksum lines = List.fold_left checksum_line fnv_offset lines

let render_lines t = List.map (fun (a, b) -> Printf.sprintf "%d %d" a b) (keys t)

let render t =
  let lines = render_lines t in
  let footer =
    Printf.sprintf "%s count=%d sum=%016Lx" footer_magic (List.length lines)
      (checksum lines)
  in
  String.concat "" (List.map (fun l -> l ^ "\n") (lines @ [ footer ]))

let write_string path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let save ?faults t path =
  let content = render t in
  let fires point =
    match faults with
    | None -> false
    | Some inj -> Fault_injector.fire inj point
  in
  if fires Fault_plan.Persist_torn then begin
    (* A crash mid-write: some prefix of the content reaches the file and
       the footer never does.  Written in place (no rename) — the tear is
       precisely what atomic publication would have prevented, kept
       injectable so the recovery path stays honest. *)
    let u =
      match faults with Some inj -> Fault_injector.draw_float inj | None -> 0.5
    in
    let len = String.length content in
    let cut = max 0 (min (len - 1) (int_of_float ((0.25 +. (0.5 *. u)) *. float_of_int len))) in
    write_string path (String.sub content 0 cut)
  end
  else if fires Fault_plan.Persist_enospc then begin
    (* Device full: the temporary file cannot be completed, so it is
       discarded and the previously published store survives untouched —
       atomic publication is the degradation. *)
    let tmp = path ^ ".tmp" in
    write_string tmp (String.sub content 0 (String.length content / 2));
    Sys.remove tmp
  end
  else begin
    let tmp = path ^ ".tmp" in
    write_string tmp content;
    Sys.rename tmp path
  end

(* Whitespace-tolerant tokenizer: fleet reports come from many writers, so
   stray tabs, doubled spaces and trailing blanks must not poison a store. *)
let tokens line =
  String.split_on_char '\t' line
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter (fun s -> s <> "")

type load_outcome =
  | Missing
  | Clean of int
  | Recovered of { entries : int; corrupt_lines : int }

let parse_footer line =
  match tokens line with
  | [ magic; cnt; sum ] when magic = footer_magic -> (
    match
      ( String.length cnt > 6 && String.sub cnt 0 6 = "count=",
        String.length sum > 4 && String.sub sum 0 4 = "sum=" )
    with
    | true, true -> (
      let cnt = String.sub cnt 6 (String.length cnt - 6) in
      let sum = String.sub sum 4 (String.length sum - 4) in
      match (int_of_string_opt cnt, Int64.of_string_opt ("0x" ^ sum)) with
      | Some n, Some s -> Some (n, s)
      | _ -> None)
    | _ -> None)
  | _ -> None

(* Read the whole file and split on '\n' ourselves rather than looping over
   [input_line]: a tear can cut a data line mid-token ("12345 6" out of
   "12345 67\n"), and the truncated tail still parses as a well-formed —
   but fabricated — context key.  [input_line] hides the missing
   terminator, so the only reliable tear signal is the raw final byte. *)
let read_lines path =
  let ic = open_in_bin path in
  let raw =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let lines = String.split_on_char '\n' raw in
  (* A terminated file ends "...\n" and splits into lines @ [""]; drop the
     empty sentinel.  Anything else means the last line was torn. *)
  match List.rev lines with
  | "" :: rev -> (List.rev rev, None)
  | torn :: rev -> (List.rev rev, Some torn)
  | [] -> ([], None)

let load_result ?metrics path =
  if not (Sys.file_exists path) then (create (), Missing)
  else begin
    let t = create () in
    let corrupt = ref 0 in
    let footer = ref None in
    let data = ref [] in
    let lines, torn = read_lines path in
    List.iter
      (fun line ->
        if String.length line > 0 && line.[0] = '#' then
          match parse_footer line with
          | Some f -> footer := Some f
          | None -> incr corrupt
        else
          match tokens line with
          | [] -> ()
          | [ a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some a, Some b ->
              add t (a, b);
              (* Re-render for the checksum: the writer normalized
                 whitespace, so a clean round-trip matches. *)
              data := Printf.sprintf "%d %d" a b :: !data
            | _ -> incr corrupt)
          | _ -> incr corrupt)
      lines;
    (* An unterminated final line is a tear by definition (the writer always
       terminates every line, footer included).  Even when the fragment
       parses as two integers it must not enter the store — it would pin a
       context that never produced evidence. *)
    (match torn with
    | Some frag -> if String.length frag > 0 then incr corrupt
    | None -> ());
    let data = List.rev !data in
    let intact =
      !corrupt = 0
      && match !footer with
         | None -> true (* legacy format: nothing to verify *)
         | Some (n, sum) -> n = List.length data && sum = checksum data
    in
    if intact then (t, Clean (count t))
    else begin
      (match metrics with
      | None -> ()
      | Some reg ->
        Metrics.add (Metrics.counter reg "persist.corrupt_lines") !corrupt;
        Metrics.add (Metrics.counter reg "persist.recovered") (count t));
      (t, Recovered { entries = count t; corrupt_lines = !corrupt })
    end
  end

let load ?metrics path = fst (load_result ?metrics path)
