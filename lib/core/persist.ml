type t = (Alloc_ctx.key, unit) Hashtbl.t

let create () : t = Hashtbl.create 16
let mem t key = Hashtbl.mem t key
let add t key = if not (Hashtbl.mem t key) then Hashtbl.add t key ()
let count t = Hashtbl.length t
let keys t = Hashtbl.fold (fun k () acc -> k :: acc) t [] |> List.sort compare

let merge dst src = Hashtbl.iter (fun k () -> add dst k) src

let copy t =
  let c = create () in
  merge c t;
  c

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter (fun (a, b) -> Printf.fprintf oc "%d %d\n" a b) (keys t))

(* Whitespace-tolerant tokenizer: fleet reports come from many writers, so
   stray tabs, doubled spaces and trailing blanks must not poison a store. *)
let tokens line =
  String.split_on_char '\t' line
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter (fun s -> s <> "")

let load path =
  let t = create () in
  if Sys.file_exists path then begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            match tokens line with
            | [] -> ()
            | [ a; b ] -> (
              match (int_of_string_opt a, int_of_string_opt b) with
              | Some a, Some b -> add t (a, b)
              | _ -> failwith ("Persist.load: malformed line: " ^ line))
            | _ -> failwith ("Persist.load: malformed line: " ^ line)
          done
        with End_of_file -> ())
  end;
  t
