(** The Sampling Management Unit (paper, Section III-B).

    One global hash table maps each allocation calling context — keyed by
    the cheap (first-level call site, stack offset) pair — to its sampling
    state.  The probability of every context is adapted online:

    - start at 50%;
    - subtract 0.001% on every allocation from the context;
    - halve after each time an object of the context is watched;
    - never drop below the 0.001% floor;
    - throttle to 0.0001% while the context allocates in bursts
      (>5,000 allocations within 10 s), recovering to the floor when the
      window elapses;
    - occasionally revive floor-bound contexts to 0.01% (Section IV-A);
    - pin to 100% when the evidence mechanism proves the context overflows
      (Section IV-B). *)

type entry = {
  id : int;
      (** dense per-runtime identifier; stored in object headers as the
          CallingContextPtr of Figure 5 *)
  key : Alloc_ctx.key;
  mutable prob : float;
  mutable allocs : int;          (** allocations seen from this context *)
  mutable watches : int;         (** times an object of this context was watched *)
  mutable window_start : float;  (** burst window start, virtual seconds *)
  mutable window_count : int;    (** allocations inside the current window *)
  mutable burst_until : float;   (** end of an active throttle, or 0. *)
  mutable floor_since : float;   (** when the probability first hit the floor *)
  mutable pinned : bool;         (** evidence-pinned at 100% *)
  mutable full_ctx : int list;   (** full backtrace, captured on first sight *)
}

type t

val create : params:Params.t -> machine:Machine.t -> rng:Prng.t -> t
(** [rng] drives the reviving coin flips. *)

val set_memo : t -> bool -> unit
(** [set_memo t false] disables the one-entry lookup memo, reverting every
    allocation to the pre-optimization table probe.  Used by the throughput
    bench to measure the baseline in the same run; detection behaviour is
    identical either way. *)

val on_allocation : t -> Alloc_ctx.t -> entry
(** The per-allocation hot path: look up (or create, capturing the full
    backtrace once) the context entry, count the allocation, apply
    degradation, burst bookkeeping, and the reviving rule.  Charges
    {!Cost.context_lookup} and {!Cost.prob_update} (plus
    {!Cost.backtrace_full} on first sight) to the machine clock. *)

val effective_prob : t -> entry -> float
(** The probability a sampling decision should use {e now}: 1.0 when
    pinned, the burst throttle while bursting, otherwise the entry's
    adapted probability. *)

val note_watched : t -> entry -> unit
(** Apply the after-watch degradation (halving) and bump the watch count. *)

val pin : t -> entry -> unit
(** Evidence boost to 100% "such that all following overflows sharing the
    same allocation calling context can be detected from then on". *)

val find : t -> Alloc_ctx.key -> entry option

val find_by_id : t -> int -> entry option
(** Resolve a header's CallingContextPtr back to its entry. *)

val num_contexts : t -> int
val total_allocations : t -> int
val total_watches : t -> int
val iter : (entry -> unit) -> t -> unit

val memory_bytes : t -> int
(** Resident cost of the table, for Table V accounting. *)
