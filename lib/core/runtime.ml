type stats = {
  contexts : int;
  allocations : int;
  watched_times : int;
  traps : int;
  canary_checks : int;
  live_objects : int;
}

type t = {
  params : Params.t;
  machine : Machine.t;
  heap : Heap.t;
  store : Persist.t;
  contexts : Context_table.t;
  watches : Watch_table.t;
  rng : Prng.t; (* sampling decisions; per paper, per-thread generators *)
  canary : int64; (* this run's random canary value (evidence mode) *)
  c_decisions : Metrics.counter;
  c_watched : Metrics.counter;
  c_reports : Metrics.counter;
  c_corruptions : Metrics.counter;
  c_install_failures : Metrics.counter;
  c_degraded : Metrics.counter;
  respond : Respond.t option;
  (* Objects already reported, keyed (obj_addr, installed_at): under the
     oblivious policy a watchpoint stays armed after its first hit (every
     later out-of-bounds access must still be redirected), so the one-
     report-per-object rule needs its own memory. *)
  reported : (int * float, unit) Hashtbl.t;
  mutable reports : Report.t list; (* newest first *)
  mutable traps : int;
  mutable canary_checks : int;
  mutable consecutive_install_failures : int;
  mutable degraded : bool; (* canary-only: watchpoint machinery given up *)
  mutable finished : bool;
}

(* Consecutive fault-induced installation failures tolerated before the
   runtime stops fighting for the debug registers and falls back to
   canary-only detection.  Three failed installs is nine failed opens
   (each install retries EBUSY up to three times). *)
let degrade_threshold = 3

let now t = Clock.seconds (Machine.clock t.machine)
let cycles t = Clock.cycles (Machine.clock t.machine)

let record_overflow t (entry : Context_table.entry) report =
  t.reports <- report :: t.reports;
  Metrics.incr t.c_reports;
  Flight_recorder.detection ~at:(cycles t) ~addr:report.Report.object_addr
    ~ctx:entry.Context_table.id
    ~source:(Report.source_name report.Report.source);
  Context_table.pin t.contexts entry;
  Persist.add t.store entry.Context_table.key

(* Under the oblivious policy, compensate for the access that just trapped:
   the write is squashed into the shadow slab, the read is overridden with
   the slab value.  No PRNG draw, no extra clock charge — response must not
   perturb the sampling stream. *)
let redirect_trap t r (wp : Watch_table.wp) (info : Machine.trap_info) =
  Respond.redirect r t.machine ~source:Respond.Watchpoint
    ~kind:
      (match info.Machine.access_kind with
      | Hw_breakpoint.Read -> Tool.Read
      | Hw_breakpoint.Write -> Tool.Write)
    ~site:(fst wp.Watch_table.entry.Context_table.key)
    ~ctx:wp.Watch_table.entry.Context_table.key ~obj:wp.Watch_table.obj_addr
    ~addr:info.Machine.access_addr ~len:info.Machine.access_len ~at_sec:(now t)

let handle_trap t (info : Machine.trap_info) =
  t.traps <- t.traps + 1;
  match Watch_table.find_by_fd t.watches info.Machine.fd with
  | None -> () (* stale descriptor: the watchpoint raced with removal *)
  | Some wp ->
    let oblivious =
      match t.respond with Some r -> Respond.oblivious r | None -> false
    in
    let wp_id = (wp.Watch_table.obj_addr, wp.Watch_table.installed_at) in
    let first_hit = not (oblivious && Hashtbl.mem t.reported wp_id) in
    if first_hit then begin
      (* The paper reports the statement and full calling context of the
         access (via backtrace in the handler) plus the allocation calling
         context saved at install time. *)
      Machine.work t.machine Cost.backtrace_full;
      let access_bt = Machine.backtrace t.machine in
      let kind =
        match info.Machine.access_kind with
        | Hw_breakpoint.Read -> Report.Over_read
        | Hw_breakpoint.Write -> Report.Over_write
      in
      Trace.trap ~addr:info.Machine.access_addr ~kind:(Report.kind_name kind)
        ~tid:info.Machine.tid;
      let report =
        { Report.kind;
          source = Report.Watchpoint;
          access_backtrace = access_bt;
          alloc_backtrace = wp.Watch_table.alloc_backtrace;
          ctx_key = wp.Watch_table.entry.Context_table.key;
          object_addr = wp.Watch_table.obj_addr;
          watch_addr = wp.Watch_table.watch_addr;
          tid = info.Machine.tid;
          at_sec = now t }
      in
      record_overflow t wp.Watch_table.entry report
    end;
    match t.respond with
    | Some r when Respond.oblivious r ->
      (* Keep the watchpoint armed: the object's later out-of-bounds
         accesses must be redirected too, or the execution corrupts memory
         it already proved it overflows.  [reported] keeps the one-report-
         per-object discipline instead of slot release. *)
      if first_hit then Hashtbl.replace t.reported wp_id ();
      redirect_trap t r wp info
    | _ ->
      (* One report per object: release the slot so other objects can be
         watched for the remainder of the execution. *)
      Watch_table.remove t.watches wp

let create ?(params = Params.default) ?store ?respond ?(seed = 0) ~machine
    ~heap () =
  let root = Machine.rng machine in
  (* Offset the streams by [seed] so distinct executions sample differently. *)
  let mk () =
    let g = Prng.split root in
    for _ = 1 to seed land 0xff do
      ignore (Prng.bits64 g)
    done;
    g
  in
  let rng = mk () in
  let canary_rng = mk () in
  let reg = Machine.registry machine in
  let t =
    { params;
      machine;
      heap;
      store = (match store with Some s -> s | None -> Persist.create ());
      contexts = Context_table.create ~params ~machine ~rng:(mk ());
      watches = Watch_table.create ~params ~machine ~rng:(mk ());
      rng;
      canary = Prng.canary64 canary_rng;
      c_decisions = Metrics.counter reg "smu.decisions";
      c_watched = Metrics.counter reg "smu.watched";
      c_reports = Metrics.counter reg "report.count";
      c_corruptions = Metrics.counter reg "canary.corruptions";
      c_install_failures = Metrics.counter reg "runtime.install_failures";
      c_degraded = Metrics.counter reg "runtime.degraded";
      respond;
      reported = Hashtbl.create 16;
      reports = [];
      traps = 0;
      canary_checks = 0;
      consecutive_install_failures = 0;
      degraded = false;
      finished = false }
  in
  (match respond with
  | Some r when Respond.oblivious r -> Respond.attach r machine
  | _ -> ());
  Machine.set_trap_handler machine (handle_trap t);
  t

let evidence t = t.params.Params.evidence

(* Track the outcome of a direct installation attempt.  A bounded run of
   fault-induced failures (EBUSY past the retry budget, EACCES) flips the
   runtime into canary-only mode: watchpoints are abandoned for the rest of
   the execution but evidence-mode canaries keep detecting.  The flip is
   recorded as an explicit probability transition so post-mortems show
   {e why} sampling stopped. *)
let note_install t (entry : Context_table.entry) ok =
  if ok then t.consecutive_install_failures <- 0
  else begin
    Metrics.incr t.c_install_failures;
    t.consecutive_install_failures <- t.consecutive_install_failures + 1;
    if t.consecutive_install_failures >= degrade_threshold && not t.degraded
    then begin
      t.degraded <- true;
      Metrics.incr t.c_degraded;
      Trace.degraded ();
      Flight_recorder.prob ~at:(cycles t) ~ctx:entry.Context_table.id
        ~cause:Flight_recorder.Degrade
        ~from_p:(Context_table.effective_prob t.contexts entry)
        ~to_p:0.0
    end
  end;
  ok

(* Decide whether to watch the freshly allocated object, per Section III.
   Returns true when a watchpoint now guards it. *)
let consider_watch t (entry : Context_table.entry) ~app ~watch_addr =
  Metrics.incr t.c_decisions;
  if t.degraded then begin
    (* Canary-only mode: no draws, no installs.  The decision is still
       recorded so traces show the allocation was seen and skipped. *)
    if Flight_recorder.active () then
      Flight_recorder.decision ~at:(cycles t) ~addr:app
        ~ctx:entry.Context_table.id ~prob:0.0 ~coin:false ~watched:false
        ~startup:false;
    false
  end
  else if Watch_table.in_startup t.watches && Watch_table.has_free_slot t.watches
  then begin
    (* "Installation due to availability": the first few objects are
       watched regardless of probability (see {!Watch_table.in_startup}). *)
    let watched =
      note_install t entry
        (Watch_table.install t.watches ~obj_addr:app ~watch_addr ~entry)
    in
    if Flight_recorder.active () then
      Flight_recorder.decision ~at:(cycles t) ~addr:app
        ~ctx:entry.Context_table.id ~prob:1.0 ~coin:true ~watched
        ~startup:true;
    watched
  end
  else begin
    Machine.work_as t.machine Profiler.Smu_decision Cost.rng_draw;
    let p = Context_table.effective_prob t.contexts entry in
    let coin = Prng.below_percent t.rng p in
    let watched =
      if not coin then false
      else if Watch_table.has_free_slot t.watches then
        note_install t entry
          (Watch_table.install t.watches ~obj_addr:app ~watch_addr ~entry)
      else
        Watch_table.try_replace t.watches ~obj_addr:app ~watch_addr ~entry
          ~new_prob:p
    in
    if Flight_recorder.active () then
      Flight_recorder.decision ~at:(cycles t) ~addr:app
        ~ctx:entry.Context_table.id ~prob:p ~coin ~watched ~startup:false;
    watched
  end

(* Guard slack a code-less patch adds past the object.  Overflows of up to
   this many bytes land in memory the allocation owns — below the canary,
   past the reach of any neighbour — so the bug becomes harmless without a
   report, a watchpoint or a code change. *)
let patch_pad = 64

(* Code-less patching: is this context convicted?  Pure store arithmetic —
   no draws, no clock — so patch decisions are identical on every domain
   that sees the same store. *)
let patch_convicted t (entry : Context_table.entry) =
  match t.respond with
  | Some r -> (
    match Respond.patch_threshold r with
    | Some threshold ->
      Persist.hits t.store entry.Context_table.key >= threshold
    | None -> false)
  | None -> false

let csod_malloc t ~size ~ctx =
  let entry = Context_table.on_allocation t.contexts ctx in
  if patch_convicted t entry then begin
    (* Convicted context: over-allocate with guard slack and plant the
       canary past it.  The object is deliberately not watched and not
       pinned — the whole point of the patch is that this context's
       overflow no longer needs (or produces) evidence. *)
    let padded = size + patch_pad in
    let request = Canary.padded_request ~evidence:(evidence t) padded in
    let base = Heap.malloc t.heap request in
    let app =
      if evidence t then
        Canary.plant t.machine ~base ~size:padded
          ~ctx_id:entry.Context_table.id ~canary:t.canary
      else base
    in
    if Flight_recorder.active () then begin
      let site, off = entry.Context_table.key in
      Flight_recorder.alloc ~at:(cycles t) ~addr:app ~size:padded
        ~ctx:entry.Context_table.id ~site ~off
    end;
    (match t.respond with
    | Some r ->
      Respond.record_patch r ~site:(fst entry.Context_table.key)
        ~ctx:entry.Context_table.key ~addr:app ~at_sec:(now t)
    | None -> ());
    Trace.decision ~watched:false
      ~prob:(Context_table.effective_prob t.contexts entry)
      ~key:entry.Context_table.key ~addr:app;
    app
  end
  else begin
    (* Most runs carry no persisted evidence: skip the per-allocation store
       probe entirely when the store is empty or the entry already pinned. *)
    if
      (not entry.Context_table.pinned)
      && Persist.count t.store > 0
      && Persist.mem t.store entry.Context_table.key
    then Context_table.pin t.contexts entry;
    let request = Canary.padded_request ~evidence:(evidence t) size in
    let base = Heap.malloc t.heap request in
    let app =
      if evidence t then
        Canary.plant t.machine ~base ~size ~ctx_id:entry.Context_table.id
          ~canary:t.canary
      else base
    in
    let watch_addr = Canary.boundary_addr ~app ~size in
    if Flight_recorder.active () then begin
      let site, off = entry.Context_table.key in
      Flight_recorder.alloc ~at:(cycles t) ~addr:app ~size
        ~ctx:entry.Context_table.id ~site ~off
    end;
    let watched = consider_watch t entry ~app ~watch_addr in
    if watched then begin
      Metrics.incr t.c_watched;
      Context_table.note_watched t.contexts entry
    end;
    Trace.decision ~watched
      ~prob:(Context_table.effective_prob t.contexts entry)
      ~key:entry.Context_table.key ~addr:app;
    app
  end

(* Evidence mode: everything [free] needs is in the object header the
   allocation path planted (Figure 5) — no side table exists. *)
let check_canary t ~app ~size ~ctx_id ~source =
  t.canary_checks <- t.canary_checks + 1;
  if not (Canary.check t.machine ~app ~size ~expected:t.canary) then begin
    Metrics.incr t.c_corruptions;
    Trace.canary ~addr:app
      ~where:(if source = Report.Canary_free then "free" else "exit");
    match Context_table.find_by_id t.contexts ctx_id with
    | None -> () (* corrupted header: the canary itself already proves it *)
    | Some entry ->
      let report =
        { Report.kind = Report.Over_write;
          source;
          access_backtrace = [];
          alloc_backtrace = entry.Context_table.full_ctx;
          ctx_key = entry.Context_table.key;
          object_addr = app;
          watch_addr = Canary.boundary_addr ~app ~size;
          tid = Threads.current (Machine.threads t.machine);
          at_sec = now t }
      in
      record_overflow t entry report;
      (* A corrupted canary means the overflow already escaped into
         adjacent memory before any redirect could happen — e.g. the
         watchpoint was never installed, or its trap was dropped by a fault
         plan.  Under the oblivious policy this disqualifies the execution
         from claiming survival: a dropped trap must not fake one. *)
      match t.respond with
      | Some r when Respond.oblivious r ->
        Respond.record_escape r ~source:Respond.Canary
          ~site:(fst entry.Context_table.key) ~ctx:entry.Context_table.key
          ~addr:app ~at_sec:(now t)
      | _ -> ()
  end

let csod_free t ~ptr =
  if ptr = 0 then Heap.free t.heap 0
  else begin
    if Watch_table.on_free t.watches ~obj_addr:ptr then
      Trace.removed_on_free ~addr:ptr;
    (match t.respond with
    | Some r when Respond.oblivious r -> Respond.release r ~obj:ptr
    | _ -> ());
    (if evidence t then
       match Canary.read_header t.machine ~app:ptr with
       | Some (base, size, ctx_id) ->
         check_canary t ~app:ptr ~size ~ctx_id ~source:Report.Canary_free;
         Heap.free t.heap base
       | None ->
         (* No CSOD header: a foreign pointer; let the heap diagnose it. *)
         Heap.free t.heap ptr
     else Heap.free t.heap ptr);
    (* Recorded last so an object's story closes after its at-free canary
       check and any detection that check produced. *)
    Flight_recorder.free ~at:(cycles t) ~addr:ptr
  end

let finish t =
  if not t.finished then begin
    t.finished <- true;
    if evidence t then
      Heap.iter_live
        (fun ~addr ~size:_ ->
          (* [addr] is the raw block; the application pointer sits past the
             header.  Only blocks carrying the CSOD identifier are ours. *)
          let app = Canary.app_ptr ~evidence:true ~base:addr in
          match Canary.read_header t.machine ~app with
          | Some (base, size, ctx_id) when base = addr ->
            check_canary t ~app ~size ~ctx_id ~source:Report.Canary_exit
          | _ -> ())
        t.heap;
    Machine.clear_trap_handler t.machine
  end

let tool t =
  { Tool.name = "csod";
    malloc = (fun ~size ~ctx -> csod_malloc t ~size ~ctx);
    free = (fun ~ptr -> csod_free t ~ptr);
    on_access = (fun ~addr:_ ~len:_ ~kind:_ ~site:_ -> ());
    at_exit = (fun () -> finish t);
    extra_resident_bytes = (fun () -> Context_table.memory_bytes t.contexts) }

let params t = t.params
let store t = t.store
let respond t = t.respond
let degraded t = t.degraded
let detections t = List.rev t.reports
let detected t = t.reports <> []

let stats t =
  { contexts = Context_table.num_contexts t.contexts;
    allocations = Context_table.total_allocations t.contexts;
    watched_times = Watch_table.installs t.watches;
    traps = t.traps;
    canary_checks = t.canary_checks;
    live_objects = Heap.live_objects t.heap }

let context_table t = t.contexts
let watch_table t = t.watches

let extra_resident_bytes t = Context_table.memory_bytes t.contexts
