(** Diagnostic trace of the runtime's sampling decisions.

    Every decision the Sampling and Watchpoint Management Units take can
    be streamed through a {!Logs} source named ["csod"], at [Debug]
    level, and — when an {!Event_sink} is installed — as structured JSONL
    events (["smu.decision"], ["wmu.replace"], ["wmu.free_removal"],
    ["trap"], ["canary.corrupt"]).  Disabled (the default) each trace
    point costs one branch, checked {e before} any argument formatting;
    the CLI's [--trace] flag enables the log stream and [--events FILE]
    the JSONL stream — the fastest way to see {e why} a particular
    execution missed a bug — which coin flips failed, which watchpoint
    was evicted when. *)

val src : Logs.src

val on : unit -> bool
(** True when either delivery path (Logs at [Debug], or an installed
    event sink) would observe an event. *)

val decision :
  watched:bool -> prob:float -> key:Alloc_ctx.key -> addr:int -> unit
(** One allocation-time sampling outcome. *)

val replaced : victim:int -> by:int -> unit
(** A policy preemption: watchpoint on [victim] handed to [by]. *)

val removed_on_free : addr:int -> unit

val trap : addr:int -> kind:string -> tid:int -> unit

val canary : addr:int -> where:string -> unit
(** A corrupted canary observed at [where] (["free"] or ["exit"]). *)

val degraded : unit -> unit
(** The runtime gave up on watchpoints (repeated fault-induced
    installation failures) and fell back to canary-only detection. *)
