(** Overflow reports (paper, Section III-D2 and Figure 6).

    A report carries both halves the paper prints for Heartbleed: the full
    calling context of the {e overflowing access} and the full calling
    context of the {e allocation} of the overflowed object.  Formatting
    symbolizes each code address through a caller-supplied resolver (the
    [addr2line] analogue). *)

type kind = Over_read | Over_write

type source =
  | Watchpoint   (** a hardware watchpoint fired *)
  | Canary_free  (** evidence: corrupted canary found at deallocation *)
  | Canary_exit  (** evidence: corrupted canary found at program exit *)

type t = {
  kind : kind;
  source : source;
  access_backtrace : int list;
      (** innermost first; empty for canary evidence, which only proves the
          write happened, not where *)
  alloc_backtrace : int list;  (** innermost first *)
  ctx_key : Alloc_ctx.key;     (** allocation context of the victim object *)
  object_addr : int;
  watch_addr : int;
  tid : Threads.tid;
  at_sec : float;              (** virtual time of detection *)
}

val kind_name : kind -> string
(** ["over-read"] or ["over-write"]. *)

val source_name : source -> string

val format : symbolize:(int -> string) -> t -> string
(** Figure 6 style rendering:
    {v
    A buffer over-read problem is detected at:
      <access frames>
    This object is allocated at:
      <allocation frames>
    v} *)

val one_line : symbolize:(int -> string) -> t -> string
(** Compact single-line summary (kind, source, object, allocation site)
    for post-mortem listings. *)

val pp : symbolize:(int -> string) -> Format.formatter -> t -> unit
