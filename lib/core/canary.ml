let header_size = 32
let canary_size = 8
let identifier = 0x43534F44 (* "CSOD" *)

let rounded size = (size + 7) land lnot 7

let padded_request ~evidence size =
  rounded size + canary_size + if evidence then header_size else 0

let app_ptr ~evidence ~base = if evidence then base + header_size else base
let base_ptr ~evidence ~app = if evidence then app - header_size else app

let boundary_addr ~app ~size = app + rounded size

(* Per-domain single-entry cache of the plant/check counters: resolving a
   counter is a string-keyed registry probe, too expensive to repeat on
   every allocation.  Keyed by physical equality on the registry so
   machines from different executions never see each other's counters. *)
type hot_counters = {
  reg : Metrics.t;
  plants : Metrics.counter;
  checks : Metrics.counter;
}

let hot_key : hot_counters option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let hot m =
  let reg = Machine.registry m in
  let cache = Domain.DLS.get hot_key in
  match !cache with
  | Some h when h.reg == reg -> h
  | _ ->
    let h =
      { reg;
        plants = Metrics.counter reg "canary.plants";
        checks = Metrics.counter reg "canary.checks" }
    in
    cache := Some h;
    h

let plant m ~base ~size ~ctx_id ~canary =
  Metrics.incr (hot m).plants;
  Machine.work_as m Profiler.Canary_plant Cost.canary_plant;
  let app = base + header_size in
  let mem = Machine.mem m in
  Sparse_mem.write_int mem base base; (* RealObjectPtr *)
  Sparse_mem.write_int mem (base + 8) size; (* ObjectSize *)
  Sparse_mem.write_int mem (base + 16) ctx_id; (* CallingContextPtr *)
  Sparse_mem.write_int mem (base + 24) identifier;
  Sparse_mem.write_u64 mem (boundary_addr ~app ~size) canary;
  app

let check m ~app ~size ~expected =
  Metrics.incr (hot m).checks;
  Machine.work_as m Profiler.Canary_check Cost.canary_check;
  let ok = Sparse_mem.read_u64 (Machine.mem m) (boundary_addr ~app ~size) = expected in
  Flight_recorder.canary_check ~at:(Clock.cycles (Machine.clock m)) ~addr:app ~ok;
  ok

let read_header m ~app =
  let mem = Machine.mem m in
  let base = app - header_size in
  if base < 0 then None
  else if Sparse_mem.read_int mem (base + 24) <> identifier then None
  else
    Some
      ( Sparse_mem.read_int mem base,
        Sparse_mem.read_int mem (base + 8),
        Sparse_mem.read_int mem (base + 16) )
