(** The Watchpoint Management Unit (paper, Section III-C).

    Owns the four hardware watchpoints: installation on every alive thread
    (Figure 3), replacement under one of three policies, and removal on
    deallocation (Figure 4).  An installed watchpoint's claim to its slot
    weakens with age — its effective probability halves every
    [installed_halflife_sec] — so that objects that have sat unwatched-by-
    overflow for a long time yield to fresh candidates. *)

type wp = {
  obj_addr : int;                 (** application pointer of the watched object *)
  watch_addr : int;               (** boundary word the hardware watches *)
  entry : Context_table.entry;    (** allocation context of the object *)
  alloc_backtrace : int list;     (** full allocation context, for reports *)
  mutable fds : (Threads.tid * Hw_breakpoint.fd) list;
  installed_at : float;           (** virtual seconds *)
  prob_at_install : float;
}

type t

val create : params:Params.t -> machine:Machine.t -> rng:Prng.t -> t
(** Also subscribes to thread spawn/exit: new threads receive all installed
    watchpoints; exiting threads have their descriptors closed. *)

val has_free_slot : t -> bool

val in_startup : t -> bool
(** True until four installations have been performed.
    During startup, a free watchpoint is used {e regardless of
    probability} — the paper's "installation due to availability" rule,
    which it motivates by "the first few objects, which are more likely to
    be affected by input parameters".  After startup the probability gate
    applies even when a slot is free: were it bypassed forever, every
    deallocation of a watched object would hand the slot to the very next
    allocation, installs would track the allocation rate (contradicting
    Table IV's small watched-times counts), and the burst throttle of
    Section III-B2 could never reduce installation overhead. *)

val install : t -> obj_addr:int -> watch_addr:int -> entry:Context_table.entry -> bool
(** Install on a free slot for every alive thread (6 syscalls each).
    Raises [Failure] if no slot is free — callers must check or replace.
    Returns whether the watchpoint was actually armed: under fault
    injection [perf_event_open] can fail with [`EBUSY] (retried up to three
    times with a virtual-time backoff) or [`EACCES] (permanent), and when
    {e every} alive thread's open fails that way, no slot is claimed and
    the result is [false] — the caller's cue to degrade.  Without an
    injector the result is always [true]. *)

val try_replace :
  t -> obj_addr:int -> watch_addr:int -> entry:Context_table.entry ->
  new_prob:float -> bool
(** Attempt a policy-directed preemption: the victim must have a lower
    {e decayed} probability than [new_prob].  Returns whether the new
    object is now watched.  Under the naive policy this is always
    [false]. *)

val decayed_prob : t -> wp -> float
(** [prob_at_install] halved once per {e fully elapsed}
    [installed_halflife_sec] — a step function, so a young watchpoint keeps
    its full installation probability. *)

val on_free : t -> obj_addr:int -> bool
(** Remove the watchpoint guarding a freed object, if any; returns whether
    one was removed. *)

val find_by_fd : t -> Hw_breakpoint.fd -> wp option
(** Signal-handler lookup: which watchpoint fired?  Matches the paper's
    one-by-one comparison of saved descriptors. *)

val remove : t -> wp -> unit
(** Full removal (disable + close on every thread). *)

val installs : t -> int
(** Total installations performed — the "WT" (watched times) column of
    Table IV. *)

val live : t -> wp list
(** Currently installed watchpoints, oldest first. *)
