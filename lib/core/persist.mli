(** Persistent record of overflowing calling contexts (paper, Section IV-B).

    "At the end of the execution, all allocation calling contexts observed
    to have overflows are written to persistent storage ... in order to
    detect buffer overflow in future executions."  A store holds the
    context keys proven to overflow; a later execution passes the same
    store to its runtime, which pins those contexts at probability 100%.
    Context keys are stable across executions because code addresses are
    assigned deterministically by the loader.

    Stores live in memory (the fleet/crowdsourcing simulations share one
    per simulated user) and can be saved to and loaded from a real file
    (the CLI's behaviour, matching the paper's). *)

type t

val create : unit -> t
val mem : t -> Alloc_ctx.key -> bool
val add : t -> Alloc_ctx.key -> unit
(** Idempotent. *)

val count : t -> int
val keys : t -> Alloc_ctx.key list
(** Sorted, for deterministic output. *)

val merge : t -> t -> unit
(** [merge dst src] adds every context of [src] to [dst].  Commutative and
    idempotent in the resulting key {e set} — the fleet's epoch barriers
    rely on this to fold per-user stores into the shared one in any
    grouping.  [src] is untouched. *)

val copy : t -> t
(** Snapshot; the copy and the original evolve independently. *)

val save : t -> string -> unit
(** One ["callsite stack_offset"] line per context. *)

val load : string -> t
(** Missing file yields an empty store.  Blank lines and extra whitespace
    (doubled spaces, tabs, trailing blanks) are tolerated; lines that do
    not hold exactly two integers raise [Failure]. *)
