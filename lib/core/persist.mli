(** Persistent record of overflowing calling contexts (paper, Section IV-B).

    "At the end of the execution, all allocation calling contexts observed
    to have overflows are written to persistent storage ... in order to
    detect buffer overflow in future executions."  A store holds the
    context keys proven to overflow; a later execution passes the same
    store to its runtime, which pins those contexts at probability 100%.
    Context keys are stable across executions because code addresses are
    assigned deterministically by the loader.

    Each key additionally carries an evidence {e hit count} — how many
    detections have accused that context.  The key set drives pinning as
    before; the counts drive the code-less patching policy (a context is
    patched once its count reaches the conviction threshold).  The on-disk
    format is unchanged: counts are an in-memory, mergeable refinement, and
    a loaded file seeds every key at one hit.

    Stores live in memory (the fleet/crowdsourcing simulations share one
    per simulated user) and can be saved to and loaded from a real file
    (the CLI's behaviour, matching the paper's). *)

type t

val create : unit -> t
val mem : t -> Alloc_ctx.key -> bool

val add : t -> Alloc_ctx.key -> unit
(** Records one piece of evidence: inserts the key if absent, and
    increments its hit count either way. *)

val hits : t -> Alloc_ctx.key -> int
(** Evidence count for the key; 0 when absent. *)

val count : t -> int
val keys : t -> Alloc_ctx.key list
(** Sorted, for deterministic output. *)

val merge : t -> t -> unit
(** [merge dst src] adds every context of [src] to [dst], {e summing} hit
    counts.  Commutative and idempotent in the resulting key {e set} — the
    fleet's epoch barriers rely on this to fold per-user stores into the
    shared one in any grouping.  [src] is untouched. *)

val copy : t -> t
(** Snapshot; the copy and the original evolve independently.  Hit counts
    are preserved. *)

val merge_delta : t -> base:t -> t -> unit
(** [merge_delta dst ~base src] folds into [dst] only the evidence [src]
    gained over [base]: for every key, [max 0 (hits src - hits base)] is
    added.  The fleet hands each execution a {!copy} of the shared store
    (hit counts included, so patch conviction sees real evidence) and
    merges the {e delta} against the epoch-start baseline back — inherited
    evidence is never counted twice. *)

val save : ?faults:Fault_injector.t -> t -> string -> unit
(** One ["callsite stack_offset"] line per context, sorted, followed by a
    [#csod.store/2] footer carrying the entry count and an FNV-1a checksum
    of the data lines.  The write is atomic: content goes to [path ^
    ".tmp"] and is renamed into place, so a reader never observes a
    half-written store.  Under fault injection ({!Fault_plan}) a
    [persist-torn] fire writes a truncated, footer-less file in place (the
    crash-mid-write the atomic path would normally prevent), and a
    [persist-enospc] fire abandons the temporary file, leaving any
    previously published store untouched. *)

type load_outcome =
  | Missing  (** no file at that path — a first run, not an empty store *)
  | Clean of int  (** intact store with this many entries (possibly 0) *)
  | Recovered of { entries : int; corrupt_lines : int }
      (** integrity failure — unparsable lines, a torn (unterminated) final
          line, or a footer whose count or checksum disagrees; [entries]
          valid contexts were salvaged *)

val load_result : ?metrics:Metrics.t -> string -> t * load_outcome
(** Failure-oblivious load.  Missing file yields an empty store and
    [Missing].  Blank lines and extra whitespace are tolerated; lines that
    do not hold exactly two integers are {e skipped}, not fatal — every
    parsable context is salvaged so past evidence keeps pinning contexts
    even when the store was torn mid-write.  A final line not terminated by
    ['\n'] is rejected outright (and counted corrupt) even when its
    fragment parses: a tear can truncate ["12345 67"] to ["12345 6"], a
    well-formed but fabricated key.  A footer-less file (the pre-footer
    format) loads cleanly with no integrity check.  When [metrics] is
    given, recovery bumps the ["persist.corrupt_lines"] and
    ["persist.recovered"] counters. *)

val load : ?metrics:Metrics.t -> string -> t
(** [fst (load_result ?metrics path)]. *)
