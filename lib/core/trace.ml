let src = Logs.Src.create "csod" ~doc:"CSOD runtime decision trace"

module Log = (val Logs.src_log src : Logs.LOG)

(* Both delivery paths are checked before any argument formatting: with the
   Logs level off and no JSONL sink installed, every trace point below
   costs exactly this one test. *)
let log_on () =
  match Logs.Src.level src with
  | Some Logs.Debug -> true
  | Some _ | None -> false

let on () = log_on () || Event_sink.active ()

let emit name fields = if Event_sink.active () then Event_sink.emit name fields

let decision ~watched ~prob ~key:(site, off) ~addr =
  if on () then begin
    emit "smu.decision"
      [ ("addr", `Int addr); ("site", `Int site); ("stack_offset", `Int off);
        ("prob", `Float prob); ("watched", `Bool watched) ];
    Log.debug (fun m ->
        m "alloc 0x%x ctx=(0x%x,%d) p=%.5f -> %s" addr site off prob
          (if watched then "WATCH" else "skip"))
  end

let replaced ~victim ~by =
  if on () then begin
    emit "wmu.replace" [ ("victim", `Int victim); ("by", `Int by) ];
    Log.debug (fun m -> m "replace: evict watchpoint on 0x%x for 0x%x" victim by)
  end

let removed_on_free ~addr =
  if on () then begin
    emit "wmu.free_removal" [ ("addr", `Int addr) ];
    Log.debug (fun m -> m "free 0x%x: watchpoint removed" addr)
  end

let trap ~addr ~kind ~tid =
  if on () then begin
    emit "trap" [ ("addr", `Int addr); ("kind", `String kind); ("tid", `Int tid) ];
    Log.debug (fun m -> m "TRAP %s at 0x%x on thread %d" kind addr tid)
  end

let canary ~addr ~where =
  if on () then begin
    emit "canary.corrupt" [ ("addr", `Int addr); ("where", `String where) ];
    Log.debug (fun m -> m "CANARY corrupted on 0x%x (at %s)" addr where)
  end

let degraded () =
  if on () then begin
    emit "runtime.degraded" [];
    Log.debug (fun m ->
        m "DEGRADED: watchpoint installation keeps failing; canary-only mode")
  end
