type 'a t = {
  slots : 'a option array;
  mutable head : int; (* index of oldest element *)
  mutable len : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { slots = Array.make capacity None; head = 0; len = 0 }

let capacity t = Array.length t.slots
let length t = t.len
let is_empty t = t.len = 0
let is_full t = t.len = Array.length t.slots

let push t x =
  if is_full t then failwith "Ring.push: full";
  let tail = (t.head + t.len) mod capacity t in
  t.slots.(tail) <- Some x;
  t.len <- t.len + 1

let push_overwriting t x =
  if is_full t then begin
    let dropped = t.slots.(t.head) in
    t.slots.(t.head) <- Some x;
    t.head <- (t.head + 1) mod capacity t;
    dropped
  end
  else begin
    push t x;
    None
  end

let pop t =
  if t.len = 0 then None
  else begin
    let x = t.slots.(t.head) in
    t.slots.(t.head) <- None;
    t.head <- (t.head + 1) mod capacity t;
    t.len <- t.len - 1;
    x
  end

let peek t = if t.len = 0 then None else t.slots.(t.head)

let advance t =
  if t.len > 1 then begin
    match pop t with
    | Some x -> push t x
    | None -> ()
  end

let to_list t =
  let rec go i acc = if i < 0 then acc else
    match t.slots.((t.head + i) mod capacity t) with
    | Some x -> go (i - 1) (x :: acc)
    | None -> go (i - 1) acc
  in
  go (t.len - 1) []

let remove_where t p =
  let elems = to_list t in
  let rec split acc = function
    | [] -> None
    | x :: rest when p x -> Some (x, List.rev_append acc rest)
    | x :: rest -> split (x :: acc) rest
  in
  match split [] elems with
  | None -> None
  | Some (hit, remaining) ->
    Array.fill t.slots 0 (capacity t) None;
    t.head <- 0;
    t.len <- 0;
    List.iter (push t) remaining;
    Some hit

let iter f t = List.iter f (to_list t)
