(** Fixed-capacity circular buffer.

    The paper's near-FIFO watchpoint replacement policy (Section III-C2)
    tracks the four watchpoints in "a circular buffer ... and a pointer ...
    to the first-installed watchpoint", updating the pointer atomically
    rather than re-sorting under a lock.  This module is that structure,
    generalized to any capacity so that tests can model-check it. *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] makes an empty ring holding at most [capacity]
    elements.  Raises [Invalid_argument] if [capacity <= 0]. *)

val capacity : _ t -> int
val length : _ t -> int
val is_empty : _ t -> bool
val is_full : _ t -> bool

val push : 'a t -> 'a -> unit
(** [push t x] appends [x] at the tail.  Raises [Failure] if full. *)

val push_overwriting : 'a t -> 'a -> 'a option
(** [push_overwriting t x] appends [x] at the tail; when the ring is full
    the oldest element is overwritten (and returned) instead of failing.
    This is the flight-recorder discipline: the buffer is bounded and the
    most recent history always wins.  O(1), no allocation beyond [Some]. *)

val pop : 'a t -> 'a option
(** [pop t] removes and returns the head (oldest element). *)

val peek : 'a t -> 'a option
(** [peek t] returns the oldest element without removing it. *)

val advance : 'a t -> unit
(** [advance t] rotates the head pointer past the oldest element, re-inserting
    it at the tail.  This is the near-FIFO "update the pointer to the next
    position" operation used when the oldest watchpoint is {e not} replaced. *)

val remove_where : 'a t -> ('a -> bool) -> 'a option
(** [remove_where t p] removes the first (oldest-first) element satisfying
    [p], preserving the relative order of the others; used when a watched
    object is deallocated out of FIFO order. *)

val to_list : 'a t -> 'a list
(** Oldest-first snapshot. *)

val iter : ('a -> unit) -> 'a t -> unit
