(** Deterministic pseudo-random number generation.

    The paper ports OpenBSD's {e arc4random} into the allocator runtime but
    converts it to a {e per-thread} generator so that the hot allocation path
    never takes the global lock that both OpenBSD's generator and glibc's
    [rand] require (paper, Section III-A1).  This module is the OCaml
    equivalent: a small, fast, splittable generator ([xoshiro256**]) intended
    to be instantiated once per simulated thread. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed.  Two generators
    created from the same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t].  Used to give
    each simulated thread its own stream, mirroring the paper's per-thread
    generators. *)

val fork : t -> string -> t
(** [fork t label] derives a substream keyed on [label], advancing [t] by
    exactly one draw.  Forks with distinct labels from the same parent
    state are independent; the same (parent state, label) pair always
    yields the same stream — the named-substream idiom the simulation
    harness uses to keep its generation stream separate from the system
    under test's. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** [bits64 t] returns 64 uniformly distributed bits. *)

val int : t -> int -> int
(** [int t bound] returns a uniform integer in [\[0, bound)].  [bound] must be
    positive.  Uses rejection sampling, so the result is unbiased. *)

val float : t -> float
(** [float t] returns a uniform float in [\[0, 1)]. *)

val bool : t -> bool
(** [bool t] returns a uniform boolean. *)

val below_percent : t -> float -> bool
(** [below_percent t p] performs the paper's sampling test: true with
    probability [p] where [p] is expressed as a fraction in [\[0, 1\]].
    The paper phrases this as "a random number modulo 100 is less than 10"
    for a 10% probability; we use the full-precision equivalent. *)

val canary64 : t -> int64
(** [canary64 t] returns a random canary value, guaranteed non-zero so that
    freshly zeroed memory can never masquerade as an intact canary. *)
