type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64, used to expand the seed into the four xoshiro words. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  (* xoshiro must not start from the all-zero state. *)
  let s3 = if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then 1L else s3 in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tt = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tt;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) land max_int in
  create ~seed

let fork t label =
  (* FNV-1a over the label bytes, folded with one draw from [t]: forks with
     distinct labels get unrelated streams, and forking never reuses the
     parent's stream beyond that single draw. *)
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    label;
  let seed =
    Int64.to_int (Int64.logxor !h (bits64 t)) land max_int
  in
  create ~seed

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits to avoid modulo bias. *)
  let mask = Int64.shift_right_logical Int64.minus_one 2 in
  let rec go () =
    let r = Int64.to_int (Int64.logand (bits64 t) mask) in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then go () else v
  in
  go ()

let float t =
  (* 53 uniform bits scaled into [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let below_percent t p =
  if p <= 0.0 then false else if p >= 1.0 then true else float t < p

let rec canary64 t =
  let v = bits64 t in
  if v = 0L then canary64 t else v
