(** Domain pool: order-preserving parallel map over OCaml 5 domains.

    The fleet's unit of parallelism is one user execution — independent
    by construction (own machine, own heap, own PRNG, own store copy) —
    so the pool only needs to hand out indices and collect results.  Work
    is distributed dynamically (an atomic next-index counter), which
    load-balances the heavy-tailed execution times of heterogeneous apps;
    results land in their input slot, so the output is identical for any
    domain count and any interleaving. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] — the runtime's estimate of
    useful hardware parallelism. *)

val map :
  ?faults:Fault_injector.t ->
  ?index_base:int ->
  domains:int -> int -> f:(int -> 'a) -> 'a array
(** [map ~domains n ~f] is [Array.init n f] computed on [min domains n]
    domains ([domains = 1] runs inline, spawning nothing).  [f] must not
    touch shared mutable state; it may be called from any domain, in any
    order, but exactly once per index.  If any call raises, the first
    exception (by completion order) is re-raised in the caller after the
    remaining work has been cancelled and {e all} spawned domains joined —
    a failing spawn or worker never leaks a running domain.  Raises
    [Invalid_argument] if [domains < 1] or [n < 0].

    [faults] injects deterministic worker crashes ({!Fault_plan}'s
    [worker-crash] point): a crashed chunk is requeued once, and if the
    retry crashes too it is computed serially in the calling domain, so
    the result array is bit-identical to an unfaulted map for any domain
    count.  [index_base] (default 0) offsets chunk indices so successive
    maps over one stream (the fleet's epochs) draw distinct faults;
    [worker-crash\@N] one-shots name the global chunk index. *)

val timed : (unit -> 'a) -> 'a * float
(** Result plus wall-clock seconds — wall, not CPU, so parallel speedups
    are visible. *)
