(** Domain pool: order-preserving parallel map over OCaml 5 domains.

    The fleet's unit of parallelism is one user execution — independent
    by construction (own machine, own heap, own PRNG, own store copy) —
    so the pool only needs to hand out indices and collect results.  Work
    is distributed dynamically (an atomic next-index counter), which
    load-balances the heavy-tailed execution times of heterogeneous apps;
    results land in their input slot, so the output is identical for any
    domain count and any interleaving. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] — the runtime's estimate of
    useful hardware parallelism. *)

type worker = {
  slot : int;  (** 0 is the calling domain; 1.. are spawned *)
  mutable executed : int;  (** chunks this worker completed *)
  mutable busy_seconds : float;  (** wall time spent inside [f] *)
  mutable last_stop : float;
      (** absolute [Unix.gettimeofday] when this worker's last chunk
          finished; [0.0] if it ran none.  The gap to the barrier is the
          worker's idle wait. *)
  mutable spans : (int * float * float) list;
      (** with [record_spans]: [(index, start, stop)] per chunk, absolute
          wall seconds, most recent first *)
}
(** Per-worker load statistics for one map call.  Each record is written
    by exactly one domain during the parallel section and is safe to read
    once the call returns. *)

val map_local :
  ?faults:Fault_injector.t ->
  ?index_base:int ->
  ?record_spans:bool ->
  domains:int ->
  local:(slot:int -> 'b) ->
  int ->
  f:('b -> int -> 'a) ->
  'a array * ('b * worker) array
(** [map_local ~domains ~local n ~f] is {!map} with per-worker state:
    [local ~slot] runs once per worker in the {e calling} domain before
    the parallel section, and [f] receives the local of whichever worker
    runs the chunk.  Returns the results plus each worker's [(local,
    stats)] pair, in slot order — the width is [min domains (max n 1)].
    Locals let workers accumulate privately (e.g. a telemetry shard per
    domain) with no synchronization: the caller reduces the returned
    array after the implicit join.  Chunks degraded to the caller by a
    double crash, and all chunks of a serial ([width = 1]) map, are
    accounted to slot 0.  [record_spans] (default false) additionally
    captures a per-chunk [(index, start, stop)] span on each worker. *)

val map :
  ?faults:Fault_injector.t ->
  ?index_base:int ->
  domains:int -> int -> f:(int -> 'a) -> 'a array
(** [map ~domains n ~f] is [Array.init n f] computed on [min domains n]
    domains ([domains = 1] runs inline, spawning nothing).  [f] must not
    touch shared mutable state; it may be called from any domain, in any
    order, but exactly once per index.  If any call raises, the first
    exception (by completion order) is re-raised in the caller after the
    remaining work has been cancelled and {e all} spawned domains joined —
    a failing spawn or worker never leaks a running domain.  Raises
    [Invalid_argument] if [domains < 1] or [n < 0].

    [faults] injects deterministic worker crashes ({!Fault_plan}'s
    [worker-crash] point): a crashed chunk is requeued once, and if the
    retry crashes too it is computed serially in the calling domain, so
    the result array is bit-identical to an unfaulted map for any domain
    count.  [index_base] (default 0) offsets chunk indices so successive
    maps over one stream (the fleet's epochs) draw distinct faults;
    [worker-crash\@N] one-shots name the global chunk index. *)

val timed : (unit -> 'a) -> 'a * float
(** Result plus wall-clock seconds — wall, not CPU, so parallel speedups
    are visible. *)
