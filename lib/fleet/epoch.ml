type row = {
  epoch : int;
  arrivals : int;
  detections : int;
  cumulative : int;
  store_size : int;
}

let cdf ~total_users r =
  if total_users = 0 then 0.0
  else float_of_int r.cumulative /. float_of_int total_users

let table ~total_users rows =
  let t =
    Table_fmt.create ~title:"DETECTION CDF"
      ~columns:
        [ ("Epoch", Table_fmt.Right); ("Arrivals", Table_fmt.Right);
          ("Detections", Table_fmt.Right); ("Cumulative", Table_fmt.Right);
          ("CDF", Table_fmt.Right); ("Store", Table_fmt.Right) ]
  in
  List.iter
    (fun r ->
      Table_fmt.add_row t
        [ string_of_int r.epoch; string_of_int r.arrivals;
          string_of_int r.detections; string_of_int r.cumulative;
          Table_fmt.fmt_percent (cdf ~total_users r);
          string_of_int r.store_size ])
    rows;
  Table_fmt.render t

let to_json r : Obs_json.t =
  `Assoc
    [ ("epoch", `Int r.epoch); ("arrivals", `Int r.arrivals);
      ("detections", `Int r.detections); ("cumulative", `Int r.cumulative);
      ("store_size", `Int r.store_size) ]
