type burst = Steady | Frontload | Wave

let burst_name = function
  | Steady -> "steady"
  | Frontload -> "frontload"
  | Wave -> "wave"

let burst_of_string s =
  match String.lowercase_ascii s with
  | "steady" -> Some Steady
  | "frontload" | "front-load" -> Some Frontload
  | "wave" -> Some Wave
  | _ -> None

type t = {
  users : int;
  benign_frac : float;
  base_seed : int;
  burst : burst;
  wave_period : int;
}

let make ?(benign_frac = 0.0) ?(base_seed = 1) ?(burst = Steady)
    ?(wave_period = 2) ~users () =
  if users < 0 then invalid_arg "Workload.make: negative population";
  if benign_frac < 0.0 || benign_frac > 1.0 then
    invalid_arg "Workload.make: benign_frac outside [0, 1]";
  if wave_period < 1 then invalid_arg "Workload.make: wave_period < 1";
  { users; benign_frac; base_seed; burst; wave_period }

type user = { uid : int; seed : int; benign : bool }

let user t uid =
  if uid < 1 || uid > t.users then invalid_arg "Workload.user: uid out of range";
  (* A private generator keyed on (base_seed, uid): the draw is the same
     whether users are built in order, in parallel, or one at a time. *)
  let g = Prng.create ~seed:((t.base_seed * 1_000_003) + uid) in
  { uid;
    seed = t.base_seed + uid - 1;
    benign = t.benign_frac > 0.0 && Prng.below_percent g t.benign_frac }

(* Arrival rate for epoch [e], in users, as a multiple of the mean rate.
   Every shape keeps at least one arrival per epoch so a fleet always
   drains, and the wave's heavy half-period comes first: however long the
   diurnal period, the first cohort is admitted at epoch 0 rather than
   idling through a leading trough. *)
let rate t ~epoch_size e =
  if epoch_size < 1 then invalid_arg "Workload.rate: epoch_size < 1";
  if e < 0 then invalid_arg "Workload.rate: negative epoch";
  let s = epoch_size in
  let r =
    match t.burst with
    | Steady -> s
    | Frontload ->
      (* Launch spike: 2x, 1.5x, 1x, then settling at 0.5x. *)
      max (s / 2) ((2 * s) - (e * s / 2))
    | Wave ->
      (* Heavy while inside the first half of the period (the half-open
         rounding puts the odd epoch of an odd period on the heavy side),
         light for the rest. *)
      if (e mod t.wave_period) * 2 < t.wave_period then s + (s / 2) else s / 2
  in
  max 1 r

let arrivals t ~epoch_size =
  if epoch_size < 1 then invalid_arg "Workload.arrivals: epoch_size < 1";
  let out = ref [] in
  let left = ref t.users in
  let e = ref 0 in
  while !left > 0 do
    let n = min !left (rate t ~epoch_size !e) in
    out := n :: !out;
    left := !left - n;
    incr e
  done;
  Array.of_list (List.rev !out)
