(** Fleet workload model: who runs the program, with what input, when.

    The paper's deployment story assumes "a program will be executed
    repeatedly by a large number of users" (Section I) — a heterogeneous
    population, not a loop over seeds.  A workload describes that
    population deterministically: every user's execution seed and input
    choice (buggy or benign) is a pure function of the workload
    description and the user id, so a fleet simulation is reproducible
    regardless of how executions are scheduled over domains.

    Benign users matter: a crowd mostly exercises inputs that never
    overflow, and CSOD's adaptive probability decay / burst throttling
    only shows its worth under that mix.  Arrival bursts shape how many
    users show up per epoch (launch spikes vs. steady traffic), which
    stresses how quickly evidence aggregation pins a context. *)

type burst =
  | Steady     (** the same number of arrivals every epoch *)
  | Frontload  (** a launch spike: arrival rate starts doubled, then decays *)
  | Wave       (** heavy / light phases of [wave_period] epochs (diurnal traffic) *)

val burst_name : burst -> string
val burst_of_string : string -> burst option

type t = {
  users : int;          (** population size *)
  benign_frac : float;  (** fraction of users running the benign input *)
  base_seed : int;      (** user [i] executes with seed [base_seed + i - 1] *)
  burst : burst;
  wave_period : int;    (** full heavy+light cycle length, in epochs *)
}

val make :
  ?benign_frac:float ->
  ?base_seed:int ->
  ?burst:burst ->
  ?wave_period:int ->
  users:int ->
  unit ->
  t
(** Defaults: [benign_frac = 0.], [base_seed = 1], [burst = Steady],
    [wave_period = 2] (the classic alternating heavy/light epochs).
    Raises [Invalid_argument] on a negative population, a fraction
    outside [\[0, 1\]], or a period under 1. *)

type user = {
  uid : int;     (** 1-based *)
  seed : int;    (** execution seed — drives the machine RNG and input jitter *)
  benign : bool; (** true: runs the overflow-free input *)
}

val user : t -> int -> user
(** [user w uid] (with [1 <= uid <= w.users]) is deterministic and
    order-independent: the benign draw comes from a per-user PRNG keyed on
    [(base_seed, uid)], never from shared generator state. *)

val rate : t -> epoch_size:int -> int -> int
(** [rate w ~epoch_size e] is the number of users the burst schedule asks
    for at epoch [e], always at least 1, uncapped by [w.users] — the
    open-ended arrival process a long-running service drives epoch by
    epoch.  The wave's heavy half-period always comes {e first}: a wave
    whose period exceeds the run length still admits its launch cohort at
    epoch 0 instead of idling through a leading trough. *)

val arrivals : t -> epoch_size:int -> int array
(** Users arriving per epoch, following [w.burst]; entries sum to
    [w.users] and (except for a trailing partial epoch) respect the mean
    rate of [epoch_size] users per epoch.  Users are assigned to epochs in
    uid order: epoch 0 gets uids [1 .. a.(0)], and so on. *)
