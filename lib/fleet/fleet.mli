(** Parallel fleet simulator with epoch-based evidence aggregation.

    Simulates CSOD's crowdsourced deployment (paper, Sections I and IV-B)
    at scale: a population of users ({!Workload.t}) executes a program
    concurrently on a domain pool ({!Pool}), sharing the persistent store
    of overflowing contexts through {e epoch barriers} — every execution
    in an epoch starts from the same store snapshot, and the per-user
    stores are folded back in at the barrier ({!Persist.merge}), modeling
    periodic fleet report upload rather than instant sharing.  Contexts
    discovered in epoch [e] are therefore pinned (probability 1) for
    every user from epoch [e+1] on.

    The simulator is generic over {e what} an execution is: callers
    provide an {!type:executor} (the harness wires {!Execution.run} in, tests
    use synthetic ones), and the simulator provides scheduling, evidence
    flow and telemetry aggregation.

    {b Determinism}: the report — detections, sources, first-catch epoch,
    merged store and merged metrics — is bit-identical for any [domains]
    count.  Each execution is deterministic given [(user, store
    snapshot)]; snapshots only change at barriers; and all merges happen
    at barriers in uid (= seed) order.  Wall-clock time is the only field
    that varies.  The executor must keep its side effects confined to the
    structures it creates and the store it is handed (in particular it
    must not emit to the process-global {!Event_sink} from inside the
    parallel section). *)

type 'a execution = {
  payload : 'a;                    (** whatever the executor wants kept *)
  detected : bool;
  source : Report.source option;   (** first report's mechanism, if any *)
  cycles : int;                    (** virtual cycles of the execution *)
  telemetry : Telemetry.t option;  (** merged into the fleet aggregate *)
  degraded : bool;
      (** the execution fell back to canary-only protection; tallied into
          the health stream *)
}

type 'a executor = user:Workload.user -> store:Persist.t -> 'a execution
(** Runs one user.  Newly observed overflowing contexts must be added to
    [store] (the CSOD runtime already does); [store] starts as a snapshot
    of everything the fleet knew at the previous epoch barrier. *)

type 'a seat = { user : Workload.user; epoch : int; exec : 'a execution }

type 'a report = {
  seats : 'a seat array;         (** uid order, one per user *)
  epochs : Epoch.row list;
  first_catch : 'a seat option;  (** earliest by (epoch, uid) *)
  detections : int;
  metrics : Metrics.t;
      (** per-user registries, merged at barriers — bit-identical whether
          aggregation was sharded or per-user (see [config.sharded]) *)
  profile : Profiler.t;          (** per-user profiles, summed *)
  store : Persist.t;             (** final shared store *)
  domains : int;
  wall_seconds : float;
  faults : Fault_injector.t option;
      (** the pool's crash injector, for post-run fault accounting *)
  health : Health.sample list;
      (** one {!Health.sample} per epoch barrier, epoch order *)
  trace_spans : Trace_export.fleet_span list;
      (** with [config.trace]: wall-clock spans (domain chunks, barrier
          waits, merges) for {!Trace_export.fleet_spans_to_json} *)
}

type config = {
  workload : Workload.t;
  domains : int;     (** degree of parallelism; 1 = fully sequential *)
  epoch_size : int;  (** mean arrivals per epoch (see {!Workload.arrivals}) *)
  faults : Fault_plan.t option;
      (** worker-crash injection for the pool (chunk index = uid - 1);
          crashed chunks are requeued/serialized, so the report stays
          bit-identical to an unfaulted run *)
  sharded : bool;
      (** aggregate telemetry through per-worker {!Metrics_shard}s
          (lock-free local updates, tree-reduced at the barrier) instead
          of the legacy per-user fold.  The merged registry and profile
          are bit-identical either way — pinned by the equivalence tests —
          so this is purely a performance/scalability switch.  Default
          [true]. *)
  trace : bool;
      (** record wall-clock epoch spans into [report.trace_spans].
          Default [false]. *)
  on_health : (Health.sample -> unit) option;
      (** live health callback, invoked at each epoch barrier from the
          main domain (all workers joined) — safe to write to a channel
          or the installed {!Event_sink}.  Independently of the callback,
          the fleet emits each sample to the installed sink, if any. *)
  patch_threshold : int option;
      (** evidence hits at which the shared store convicts a context.
          Only feeds the [patched] tally of health samples — the actual
          mitigation lives in the executor's response mode, which consults
          the same store snapshots, so tally and behaviour agree.  Default
          [None] (tally stays 0). *)
}

val config :
  ?domains:int ->
  ?epoch_size:int ->
  ?faults:Fault_plan.t ->
  ?sharded:bool ->
  ?trace:bool ->
  ?on_health:(Health.sample -> unit) ->
  ?patch_threshold:int ->
  Workload.t ->
  config
(** Defaults: [domains = Pool.default_domains ()], [epoch_size = 32], no
    fault plan, [sharded = true], [trace = false], no health callback, no
    patch threshold. *)

val run : ?store:Persist.t -> config -> execute:'a executor -> 'a report
(** Simulate the whole fleet.  [store] seeds the shared store (default
    empty) and is not mutated; the report carries its own.  Implemented
    as {!start} + one {!step} per {!Workload.arrivals} epoch +
    {!finish}. *)

(** {2 Incremental stepping}

    A long-running service drives the fleet one epoch barrier at a time
    under an open-ended arrival process, instead of materialising the
    whole schedule upfront.  Create a state with {!start}, advance it
    with {!step} (each call runs one complete epoch: snapshot, parallel
    execution, evidence + telemetry barrier, health emission), and
    {!finish} it into a report when done.  Each [step] has exactly the
    semantics of the corresponding epoch of {!run}. *)

type 'a t
(** In-flight fleet state between epoch barriers. *)

type epoch_result = {
  sample : Health.sample;  (** the epoch's health record, as {!run} emits *)
  epoch_cycles : int;
      (** summed virtual cycles of the epoch's executions — the epoch's
          contribution to the fleet's virtual clock, deterministic for
          any domain count *)
  cycle_skew : float;
      (** slowest / median execution of the epoch in {e virtual} cycles
          ({!Health.straggler_skew} over per-execution cycles) — the
          deterministic straggler signal, unlike the sample's wall-clock
          [straggler_skew] *)
}

val start :
  ?store:Persist.t ->
  ?expected_users:int ->
  ?lean:bool ->
  ?epoch0:int ->
  ?uid0:int ->
  config ->
  execute:'a executor ->
  'a t
(** [expected_users] fixes the CDF denominator (and the sample's [users]
    field); without it both track the users arrived so far — the right
    reading for an open-ended run.  [lean] (default false) keeps memory
    flat for unbounded runs: seats, epoch rows, health samples and trace
    spans are not accumulated (the report from {!finish} carries only the
    first detecting seat, the merged registries and the store).
    [epoch0]/[uid0] (defaults 0/1) offset epoch numbering and uid
    assignment so a resumed service continues the same deterministic
    stream — pool fault draws are indexed by [uid - 1] and line up with
    an uninterrupted run. *)

val step : 'a t -> arrivals:int -> epoch_result
(** Run one epoch with [arrivals] fresh users (uids assigned
    sequentially).  Everything {!run} does per epoch happens here: the
    health callback and event-sink emission included. *)

val finish : 'a t -> 'a report
(** Commit the crash tally into the merged metrics and assemble the
    report.  [wall_seconds] covers {!start} to {!finish}. *)

val metrics : 'a t -> Metrics.t
(** The merged fleet registry so far (fault and degradation counters
    accumulate here at each barrier). *)

val store : 'a t -> Persist.t
(** The live shared store — read it to checkpoint; do not mutate
    mid-epoch. *)

val first_catch : 'a t -> 'a seat option
(** The earliest detecting seat so far — retained even in [lean] mode. *)

val detections : 'a t -> int
val arrived : 'a t -> int
val next_uid : 'a t -> int
val epoch : 'a t -> int
(** Running tallies: detections so far, users arrived so far, the next
    uid {!step} will assign, and the next epoch number. *)

val until_detected :
  ?store:Persist.t ->
  users:int ->
  execute:'a executor ->
  unit ->
  'a seat option
(** The subsystem's sequential path: run users [1, 2, ...] (seed = uid,
    buggy input) one at a time until the first detection.  With [store],
    every execution shares it directly — each user benefits from all
    earlier evidence, i.e. an epoch size of 1 ({!Evidence.fleet}'s
    semantics).  Without, each execution gets a fresh empty store —
    independent retries ({!Execution.run_until_detected}'s semantics). *)

val detection_uids : 'a report -> int list
(** Uids that detected, ascending — the fleet's detection set. *)

val summary : 'a report -> string
(** Human-readable report: headline, detection-CDF table, wall clock. *)

val to_json :
  ?payload:('a -> Obs_json.t) -> app:string -> config:string -> 'a report ->
  Obs_json.t
(** Machine-readable report (schema [csod.fleet.report/1]): workload
    echo, per-epoch rows, detection set, first catch, merged metrics. *)
