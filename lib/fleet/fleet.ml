type 'a execution = {
  payload : 'a;
  detected : bool;
  source : Report.source option;
  cycles : int;
  telemetry : Telemetry.t option;
}

type 'a executor = user:Workload.user -> store:Persist.t -> 'a execution

type 'a seat = { user : Workload.user; epoch : int; exec : 'a execution }

type 'a report = {
  seats : 'a seat array;
  epochs : Epoch.row list;
  first_catch : 'a seat option;
  detections : int;
  metrics : Metrics.t;
  profile : Profiler.t;
  store : Persist.t;
  domains : int;
  wall_seconds : float;
  faults : Fault_injector.t option;
}

type config = {
  workload : Workload.t;
  domains : int;
  epoch_size : int;
  faults : Fault_plan.t option;
}

let config ?domains ?(epoch_size = 32) ?faults workload =
  let domains =
    match domains with Some d -> d | None -> Pool.default_domains ()
  in
  if domains < 1 then invalid_arg "Fleet.config: domains < 1";
  if epoch_size < 1 then invalid_arg "Fleet.config: epoch_size < 1";
  { workload; domains; epoch_size; faults }

let run ?store cfg ~execute =
  let w = cfg.workload in
  let shared =
    match store with Some s -> Persist.copy s | None -> Persist.create ()
  in
  let metrics = Metrics.create () in
  let profile = Profiler.create () in
  (* The pool injector is fleet-wide (salt 0): crash decisions are indexed
     draws keyed by chunk index = uid - 1, so they are identical for any
     domain count.  Registered unconditionally so a zero plan and no plan
     produce byte-identical metrics. *)
  let c_crashes = Metrics.counter metrics "fleet.worker_crashes" in
  let pool_faults =
    Option.map (fun plan -> Fault_injector.create ~plan ~salt:0) cfg.faults
  in
  let arrivals = Workload.arrivals w ~epoch_size:cfg.epoch_size in
  let seats = ref [] in
  let epochs = ref [] in
  let detections = ref 0 in
  let (), wall_seconds =
    Pool.timed (fun () ->
        let next_uid = ref 1 in
        Array.iteri
          (fun e n ->
            let uid_base = !next_uid in
            let users =
              Array.init n (fun i -> Workload.user w (uid_base + i))
            in
            next_uid := !next_uid + n;
            (* Snapshots are taken in the main domain, before any worker
               starts: every execution of this epoch sees exactly the
               evidence uploaded by previous epochs, no more. *)
            let locals = Array.map (fun _ -> Persist.copy shared) users in
            let execs =
              Pool.map ?faults:pool_faults ~index_base:(uid_base - 1)
                ~domains:cfg.domains n
                ~f:(fun i -> execute ~user:users.(i) ~store:locals.(i))
            in
            (* Epoch barrier: fold the fleet's reports back in, in uid
               (= seed) order so gauge merges are deterministic. *)
            let epoch_detections = ref 0 in
            Array.iteri
              (fun i exec ->
                Persist.merge shared locals.(i);
                (match exec.telemetry with
                | Some tele ->
                  Metrics.merge_into ~dst:metrics ~src:(Telemetry.metrics tele);
                  Profiler.merge_into ~dst:profile
                    ~src:(Telemetry.profiler tele)
                | None -> ());
                if exec.detected then incr epoch_detections;
                seats := { user = users.(i); epoch = e; exec } :: !seats)
              execs;
            detections := !detections + !epoch_detections;
            epochs :=
              { Epoch.epoch = e; arrivals = n;
                detections = !epoch_detections; cumulative = !detections;
                store_size = Persist.count shared }
              :: !epochs)
          arrivals)
  in
  (match pool_faults with
  | Some inj ->
    Metrics.add c_crashes (Fault_injector.count inj Fault_plan.Worker_crash)
  | None -> ());
  let seats = Array.of_list (List.rev !seats) in
  let first_catch =
    Array.fold_left
      (fun acc s ->
        match acc with Some _ -> acc | None -> if s.exec.detected then Some s else None)
      None seats
  in
  { seats;
    epochs = List.rev !epochs;
    first_catch;
    detections = !detections;
    metrics;
    profile;
    store = shared;
    domains = cfg.domains;
    wall_seconds;
    faults = pool_faults }

let until_detected ?store ~users ~execute () =
  let rec go uid =
    if uid > users then None
    else begin
      let user = { Workload.uid; seed = uid; benign = false } in
      let local =
        match store with Some s -> s | None -> Persist.create ()
      in
      let exec = execute ~user ~store:local in
      if exec.detected then Some { user; epoch = uid - 1; exec }
      else go (uid + 1)
    end
  in
  go 1

let detection_uids r =
  Array.to_list r.seats
  |> List.filter_map (fun s ->
         if s.exec.detected then Some s.user.Workload.uid else None)

let summary r =
  let users = Array.length r.seats in
  let benign =
    Array.fold_left
      (fun n s -> if s.user.Workload.benign then n + 1 else n)
      0 r.seats
  in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "fleet: %d users (%d benign), %d domain%s, %d epochs\n"
       users benign r.domains
       (if r.domains = 1 then "" else "s")
       (List.length r.epochs));
  (match r.first_catch with
  | Some s ->
    Buffer.add_string b
      (Printf.sprintf "first catch: user #%d in epoch %d%s\n"
         s.user.Workload.uid s.epoch
         (match s.exec.source with
         | Some src -> " via " ^ Report.source_name src
         | None -> ""))
  | None -> Buffer.add_string b "first catch: none\n");
  Buffer.add_string b
    (Printf.sprintf "detections: %d/%d  store: %d context%s  wall: %.3f s\n"
       r.detections users (Persist.count r.store)
       (if Persist.count r.store = 1 then "" else "s")
       r.wall_seconds);
  Buffer.add_string b (Epoch.table ~total_users:users r.epochs);
  Buffer.contents b

let to_json ?payload ~app ~config:config_label r : Obs_json.t =
  let users = Array.length r.seats in
  let seat_json s =
    `Assoc
      (List.concat
         [ [ ("uid", `Int s.user.Workload.uid);
             ("seed", `Int s.user.Workload.seed);
             ("benign", `Bool s.user.Workload.benign);
             ("epoch", `Int s.epoch); ("detected", `Bool s.exec.detected);
             ("source",
              match s.exec.source with
              | Some src -> `String (Report.source_name src)
              | None -> `Null);
             ("cycles", `Int s.exec.cycles) ];
           (match payload with
           | Some f -> [ ("payload", f s.exec.payload) ]
           | None -> []) ])
  in
  `Assoc
    (List.concat
       [ [ ("schema", `String "csod.fleet.report/1"); ("app", `String app);
           ("config", `String config_label); ("users", `Int users);
           ("domains", `Int r.domains);
           ("detections", `Int r.detections);
           ("detection_uids", `List (List.map (fun u -> `Int u) (detection_uids r)));
           ("first_catch",
            match r.first_catch with
            | Some s ->
              `Assoc
                [ ("uid", `Int s.user.Workload.uid); ("epoch", `Int s.epoch);
                  ("source",
                   match s.exec.source with
                   | Some src -> `String (Report.source_name src)
                   | None -> `Null) ]
            | None -> `Null);
           ("store_contexts", `Int (Persist.count r.store));
           ("wall_seconds", `Float r.wall_seconds);
           ("epochs", `List (List.map Epoch.to_json r.epochs));
           ("metrics", Metrics.to_json r.metrics);
           ("profile", Profiler.to_json r.profile) ];
         (match payload with
         | Some _ ->
           [ ("seats", `List (Array.to_list (Array.map seat_json r.seats))) ]
         | None -> []) ])
