type 'a execution = {
  payload : 'a;
  detected : bool;
  source : Report.source option;
  cycles : int;
  telemetry : Telemetry.t option;
  degraded : bool;
}

type 'a executor = user:Workload.user -> store:Persist.t -> 'a execution

type 'a seat = { user : Workload.user; epoch : int; exec : 'a execution }

type 'a report = {
  seats : 'a seat array;
  epochs : Epoch.row list;
  first_catch : 'a seat option;
  detections : int;
  metrics : Metrics.t;
  profile : Profiler.t;
  store : Persist.t;
  domains : int;
  wall_seconds : float;
  faults : Fault_injector.t option;
  health : Health.sample list;
  trace_spans : Trace_export.fleet_span list;
}

type config = {
  workload : Workload.t;
  domains : int;
  epoch_size : int;
  faults : Fault_plan.t option;
  sharded : bool;
  trace : bool;
  on_health : (Health.sample -> unit) option;
  patch_threshold : int option;
      (* evidence hits at which the shared store convicts a context; drives
         the per-epoch [patched] tally in health records *)
}

let config ?domains ?(epoch_size = 32) ?faults ?(sharded = true)
    ?(trace = false) ?on_health ?patch_threshold workload =
  let domains =
    match domains with Some d -> d | None -> Pool.default_domains ()
  in
  if domains < 1 then invalid_arg "Fleet.config: domains < 1";
  if epoch_size < 1 then invalid_arg "Fleet.config: epoch_size < 1";
  (match patch_threshold with
  | Some n when n < 1 -> invalid_arg "Fleet.config: patch_threshold < 1"
  | _ -> ());
  { workload; domains; epoch_size; faults; sharded; trace; on_health;
    patch_threshold }

(* Fault/degradation counters surfaced per health record; only names the
   merged registry has actually seen appear in the stream. *)
let fault_counter_names =
  [ "runtime.degraded"; "runtime.install_failures"; "trap.dropped";
    "trap.delayed"; "persist.corrupt_lines" ]

(* ---- incremental stepping ----

   The run-to-completion driver below is a thin loop over this state: the
   fleet advances one epoch barrier at a time, so an open-ended service
   can drive it for days of virtual time without knowing the arrival
   schedule upfront.  [lean] keeps memory flat for such callers: per-seat
   and per-epoch accumulation is skipped (only the first detecting seat is
   retained), leaving the store, the merged registries and the running
   tallies — everything O(contexts + counters), nothing O(users). *)

type 'a t = {
  cfg : config;
  execute : 'a executor;
  shared : Persist.t;
  metrics : Metrics.t;
  profile : Profiler.t;
  c_crashes : Metrics.counter;
  pool_faults : Fault_injector.t option;
  expected_users : int option;
  lean : bool;
  t_run0 : float;
  mutable next_uid : int;
  mutable epoch : int;
  mutable seats_rev : 'a seat list;
  mutable epochs_rev : Epoch.row list;
  mutable detections : int;
  mutable degraded_total : int;
  mutable snapshots_total : int;
  mutable health_rev : Health.sample list;
  mutable spans_rev : Trace_export.fleet_span list;
  mutable observer_prev : float;
  mutable first : 'a seat option;
  mutable arrived : int;
}

type epoch_result = {
  sample : Health.sample;
  epoch_cycles : int;
  cycle_skew : float;
}

let start ?store ?expected_users ?(lean = false) ?(epoch0 = 0) ?(uid0 = 1)
    cfg ~execute =
  if epoch0 < 0 then invalid_arg "Fleet.start: epoch0 < 0";
  if uid0 < 1 then invalid_arg "Fleet.start: uid0 < 1";
  let shared =
    match store with Some s -> Persist.copy s | None -> Persist.create ()
  in
  let metrics = Metrics.create () in
  (* The pool injector is fleet-wide (salt 0): crash decisions are indexed
     draws keyed by chunk index = uid - 1, so they are identical for any
     domain count.  Registered unconditionally so a zero plan and no plan
     produce byte-identical metrics. *)
  let c_crashes = Metrics.counter metrics "fleet.worker_crashes" in
  { cfg;
    execute;
    shared;
    metrics;
    profile = Profiler.create ();
    c_crashes;
    pool_faults =
      Option.map (fun plan -> Fault_injector.create ~plan ~salt:0) cfg.faults;
    expected_users;
    lean;
    t_run0 = Unix.gettimeofday ();
    next_uid = uid0;
    epoch = epoch0;
    seats_rev = [];
    epochs_rev = [];
    detections = 0;
    degraded_total = 0;
    snapshots_total = 0;
    health_rev = [];
    spans_rev = [];
    observer_prev = 0.0;
    first = None;
    arrived = 0 }

let metrics t = t.metrics
let store t = t.shared
let first_catch t = t.first
let detections t = t.detections
let arrived t = t.arrived
let next_uid t = t.next_uid
let epoch t = t.epoch

let step t ~arrivals:n =
  if n < 0 then invalid_arg "Fleet.step: negative arrivals";
  let cfg = t.cfg in
  let w = cfg.workload in
  let telemetry_mode = if cfg.sharded then "sharded" else "merged" in
  let e = t.epoch in
  let t_epoch0 = Unix.gettimeofday () in
  let uid_base = t.next_uid in
  let users = Array.init n (fun i -> Workload.user w (uid_base + i)) in
  t.next_uid <- t.next_uid + n;
  t.arrived <- t.arrived + n;
  (* Snapshots are taken in the main domain, before any worker starts:
     every execution of this epoch sees exactly the evidence uploaded by
     previous epochs, no more.  [base] pins that evidence level so the
     barrier can merge back only what each execution added. *)
  let base = Persist.copy t.shared in
  let locals = Array.map (fun _ -> Persist.copy t.shared) users in
  let execs, workers =
    Pool.map_local ?faults:t.pool_faults ~index_base:(uid_base - 1)
      ~record_spans:cfg.trace ~domains:cfg.domains
      ~local:(fun ~slot:_ ->
        if cfg.sharded then Some (Metrics_shard.create ()) else None)
      n
      ~f:(fun shard i ->
        let exec = t.execute ~user:users.(i) ~store:locals.(i) in
        (match (shard, exec.telemetry) with
        | Some sh, Some tele ->
          (* Lock-free local update: the shard belongs to this worker
             until the join. *)
          Metrics_shard.absorb sh ~uid:users.(i).Workload.uid tele
        | _ -> ());
        exec)
  in
  let t_barrier0 = Unix.gettimeofday () in
  (* Epoch barrier, pass A: fold the fleet's evidence back in, in uid
     (= seed) order so store merges are deterministic. *)
  let epoch_detections = ref 0 in
  let epoch_cycles = ref 0 in
  Array.iteri
    (fun i exec ->
      Persist.merge_delta t.shared ~base locals.(i);
      (match exec.telemetry with
      | Some tele ->
        t.snapshots_total <- t.snapshots_total + Telemetry.snapshot_count tele
      | None -> ());
      if exec.degraded then t.degraded_total <- t.degraded_total + 1;
      if exec.detected then incr epoch_detections;
      epoch_cycles := !epoch_cycles + exec.cycles;
      if exec.detected && t.first = None then
        t.first <- Some { user = users.(i); epoch = e; exec };
      if not t.lean then
        t.seats_rev <- { user = users.(i); epoch = e; exec } :: t.seats_rev)
    execs;
  (* Pass B: the telemetry reduction, timed on its own so the health
     stream prices the merge and nothing else.  Sharded tree-reduces the
     per-worker shards; merged replays the legacy per-user fold (uid
     order). *)
  let (), merge_seconds =
    Pool.timed (fun () ->
        if cfg.sharded then begin
          let shards =
            Array.to_list workers
            |> List.filter_map (fun (shard, _) -> shard)
            |> Array.of_list
          in
          ignore
            (Metrics_shard.reduce_into shards ~metrics:t.metrics
               ~profile:t.profile)
        end
        else
          Array.iter
            (fun exec ->
              match exec.telemetry with
              | Some tele ->
                Metrics.merge_into ~dst:t.metrics
                  ~src:(Telemetry.metrics tele);
                Profiler.merge_into ~dst:t.profile
                  ~src:(Telemetry.profiler tele)
              | None -> ())
            execs)
  in
  let t_merge1 = Unix.gettimeofday () in
  t.detections <- t.detections + !epoch_detections;
  if not t.lean then
    t.epochs_rev <-
      { Epoch.epoch = e; arrivals = n; detections = !epoch_detections;
        cumulative = t.detections; store_size = Persist.count t.shared }
      :: t.epochs_rev;
  let epoch_seconds = t_merge1 -. t_epoch0 in
  let loads =
    Array.to_list workers
    |> List.map (fun (_, wk) ->
           { Health.slot = wk.Pool.slot; executed = wk.Pool.executed;
             busy_seconds = wk.Pool.busy_seconds })
  in
  let counters = Metrics.counters_list t.metrics in
  let users_total =
    match t.expected_users with Some u -> u | None -> t.arrived
  in
  let sample =
    { Health.epoch = e; arrivals = n; detections = !epoch_detections;
      cumulative = t.detections;
      users = users_total;
      cdf =
        (if users_total > 0 then
           float_of_int t.detections /. float_of_int users_total
         else 0.0);
      store_contexts = Persist.count t.shared;
      patched =
        (* Convicted (= patchable) contexts at this barrier, from the
           shared store only — every domain ordering sees the same store
           after the uid-ordered merge, so the tally is deterministic. *)
        (match cfg.patch_threshold with
        | Some threshold ->
          List.fold_left
            (fun acc k ->
              if Persist.hits t.shared k >= threshold then acc + 1 else acc)
            0 (Persist.keys t.shared)
        | None -> 0);
      degraded = t.degraded_total;
      worker_crashes =
        (match t.pool_faults with
        | Some inj -> Fault_injector.count inj Fault_plan.Worker_crash
        | None -> 0);
      faults =
        List.filter_map
          (fun name ->
            Option.map (fun v -> (name, v)) (List.assoc_opt name counters))
          fault_counter_names;
      snapshots = t.snapshots_total;
      epoch_seconds;
      merge_seconds;
      observer_seconds = t.observer_prev;
      execs_per_sec =
        (if epoch_seconds > 0.0 then float_of_int n /. epoch_seconds
         else 0.0);
      straggler_skew =
        Health.straggler_skew
          (List.map (fun l -> l.Health.busy_seconds) loads);
      telemetry = telemetry_mode;
      domains = loads }
  in
  (* The observer effect, self-measured: everything below is pure
     observability (health emission, trace spans) and its cost lands in
     the next record's [observer_seconds]. *)
  let (), obs_dt =
    Pool.timed (fun () ->
        if not t.lean then t.health_rev <- sample :: t.health_rev;
        if cfg.trace then begin
          Array.iter
            (fun (_, wk) ->
              List.iter
                (fun (i, c0, c1) ->
                  let uid = uid_base + i in
                  t.spans_rev <-
                    { Trace_export.track = wk.Pool.slot;
                      name = Printf.sprintf "user #%d" uid;
                      start_s = c0 -. t.t_run0;
                      stop_s = c1 -. t.t_run0;
                      args = [ ("epoch", `Int e); ("uid", `Int uid) ] }
                    :: t.spans_rev)
                wk.Pool.spans;
              if wk.Pool.executed > 0 && t_barrier0 > wk.Pool.last_stop then
                t.spans_rev <-
                  { Trace_export.track = wk.Pool.slot;
                    name = "barrier wait";
                    start_s = wk.Pool.last_stop -. t.t_run0;
                    stop_s = t_barrier0 -. t.t_run0;
                    args = [ ("epoch", `Int e) ] }
                  :: t.spans_rev)
            workers;
          t.spans_rev <-
            { Trace_export.track = cfg.domains;
              name = Printf.sprintf "epoch %d merge" e;
              start_s = t_barrier0 -. t.t_run0;
              stop_s = t_merge1 -. t.t_run0;
              args =
                [ ("epoch", `Int e); ("telemetry", `String telemetry_mode) ] }
            :: t.spans_rev
        end;
        (match cfg.on_health with Some cb -> cb sample | None -> ());
        (* Barriers run in the main domain with every worker joined, so
           emitting here cannot race the parallel section. *)
        if Event_sink.active () then
          Event_sink.emit "fleet.health" (Health.fields sample))
  in
  t.observer_prev <- obs_dt;
  t.epoch <- e + 1;
  { sample;
    epoch_cycles = !epoch_cycles;
    cycle_skew =
      Health.straggler_skew
        (Array.to_list (Array.map (fun x -> float_of_int x.cycles) execs)) }

let finish t =
  (match t.pool_faults with
  | Some inj ->
    Metrics.add t.c_crashes (Fault_injector.count inj Fault_plan.Worker_crash)
  | None -> ());
  { seats = Array.of_list (List.rev t.seats_rev);
    epochs = List.rev t.epochs_rev;
    first_catch = t.first;
    detections = t.detections;
    metrics = t.metrics;
    profile = t.profile;
    store = t.shared;
    domains = t.cfg.domains;
    wall_seconds = Unix.gettimeofday () -. t.t_run0;
    faults = t.pool_faults;
    health = List.rev t.health_rev;
    trace_spans = List.rev t.spans_rev }

let run ?store cfg ~execute =
  let arrivals = Workload.arrivals cfg.workload ~epoch_size:cfg.epoch_size in
  let total_users = Array.fold_left ( + ) 0 arrivals in
  let t = start ?store ~expected_users:total_users cfg ~execute in
  Array.iter (fun n -> ignore (step t ~arrivals:n)) arrivals;
  finish t

let until_detected ?store ~users ~execute () =
  let rec go uid =
    if uid > users then None
    else begin
      let user = { Workload.uid; seed = uid; benign = false } in
      let local =
        match store with Some s -> s | None -> Persist.create ()
      in
      let exec = execute ~user ~store:local in
      if exec.detected then Some { user; epoch = uid - 1; exec }
      else go (uid + 1)
    end
  in
  go 1

let detection_uids r =
  Array.to_list r.seats
  |> List.filter_map (fun s ->
         if s.exec.detected then Some s.user.Workload.uid else None)

let summary r =
  let users = Array.length r.seats in
  let benign =
    Array.fold_left
      (fun n s -> if s.user.Workload.benign then n + 1 else n)
      0 r.seats
  in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "fleet: %d users (%d benign), %d domain%s, %d epochs\n"
       users benign r.domains
       (if r.domains = 1 then "" else "s")
       (List.length r.epochs));
  (match r.first_catch with
  | Some s ->
    Buffer.add_string b
      (Printf.sprintf "first catch: user #%d in epoch %d%s\n"
         s.user.Workload.uid s.epoch
         (match s.exec.source with
         | Some src -> " via " ^ Report.source_name src
         | None -> ""))
  | None -> Buffer.add_string b "first catch: none\n");
  Buffer.add_string b
    (Printf.sprintf "detections: %d/%d  store: %d context%s  wall: %.3f s\n"
       r.detections users (Persist.count r.store)
       (if Persist.count r.store = 1 then "" else "s")
       r.wall_seconds);
  Buffer.add_string b (Epoch.table ~total_users:users r.epochs);
  Buffer.contents b

let to_json ?payload ~app ~config:config_label r : Obs_json.t =
  let users = Array.length r.seats in
  let seat_json s =
    `Assoc
      (List.concat
         [ [ ("uid", `Int s.user.Workload.uid);
             ("seed", `Int s.user.Workload.seed);
             ("benign", `Bool s.user.Workload.benign);
             ("epoch", `Int s.epoch); ("detected", `Bool s.exec.detected);
             ("source",
              match s.exec.source with
              | Some src -> `String (Report.source_name src)
              | None -> `Null);
             ("cycles", `Int s.exec.cycles) ];
           (match payload with
           | Some f -> [ ("payload", f s.exec.payload) ]
           | None -> []) ])
  in
  `Assoc
    (List.concat
       [ [ ("schema", `String "csod.fleet.report/1"); ("app", `String app);
           ("config", `String config_label); ("users", `Int users);
           ("domains", `Int r.domains);
           ("detections", `Int r.detections);
           ("detection_uids", `List (List.map (fun u -> `Int u) (detection_uids r)));
           ("first_catch",
            match r.first_catch with
            | Some s ->
              `Assoc
                [ ("uid", `Int s.user.Workload.uid); ("epoch", `Int s.epoch);
                  ("source",
                   match s.exec.source with
                   | Some src -> `String (Report.source_name src)
                   | None -> `Null) ]
            | None -> `Null);
           ("store_contexts", `Int (Persist.count r.store));
           ("wall_seconds", `Float r.wall_seconds);
           ("epochs", `List (List.map Epoch.to_json r.epochs));
           ("metrics", Metrics.to_json r.metrics);
           ("profile", Profiler.to_json r.profile) ];
         (match payload with
         | Some _ ->
           [ ("seats", `List (Array.to_list (Array.map seat_json r.seats))) ]
         | None -> []) ])
