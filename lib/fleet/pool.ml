let default_domains () = Domain.recommended_domain_count ()

(* Injected worker crashes use the injector's stateless [indexed] draws: a
   pure function of (plan seed, point, chunk index, attempt), so the set of
   crashed chunks is identical for any domain count and any scheduling.  A
   crash kills the attempt {e before} the chunk computes (the worker dies
   picking it up), the chunk is requeued once, and a chunk whose retry also
   crashes is left for a serial fallback pass in the calling domain — so
   [f] still runs exactly once per index and the results are bit-identical
   to an unfaulted map. *)
let crashes faults gi attempt =
  match faults with
  | None -> false
  | Some inj ->
    Fault_injector.indexed inj Fault_plan.Worker_crash ~index:gi ~attempt

(* Tally injected crashes from the calling domain only — the injector's
   counters are not synchronized. *)
let record_crashes ?faults ~index_base n =
  match faults with
  | None -> ()
  | Some inj ->
    for i = 0 to n - 1 do
      let gi = index_base + i in
      if crashes faults gi 1 then begin
        Fault_injector.record inj Fault_plan.Worker_crash;
        if crashes faults gi 2 then
          Fault_injector.record inj Fault_plan.Worker_crash
      end
    done

type worker = {
  slot : int;
  mutable executed : int;
  mutable busy_seconds : float;
  mutable last_stop : float;
  mutable spans : (int * float * float) list;
}

let map_local ?faults ?(index_base = 0) ?(record_spans = false) ~domains
    ~local n ~f =
  if domains < 1 then invalid_arg "Pool.map_local: domains < 1";
  if n < 0 then invalid_arg "Pool.map_local: negative size";
  record_crashes ?faults ~index_base n;
  let width = min domains (max n 1) in
  (* Locals and stat records are created in the calling domain, touched by
     exactly one worker during the parallel section, and read back only
     after every domain has joined — no synchronization needed. *)
  let locals = Array.init width (fun slot -> local ~slot) in
  let workers =
    Array.init width (fun slot ->
        { slot; executed = 0; busy_seconds = 0.0; last_stop = 0.0; spans = [] })
  in
  let run_chunk slot i =
    let w = workers.(slot) in
    let t0 = Unix.gettimeofday () in
    let v = f locals.(slot) i in
    let t1 = Unix.gettimeofday () in
    w.executed <- w.executed + 1;
    w.busy_seconds <- w.busy_seconds +. (t1 -. t0);
    w.last_stop <- t1;
    if record_spans then w.spans <- (i, t0, t1) :: w.spans;
    v
  in
  let results =
    if width <= 1 then
      (* Serial execution is already the degraded mode: crashes change the
         bookkeeping above but not the computation. *)
      Array.init n (run_chunk 0)
    else begin
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let failure = Atomic.make None in
      let rec worker slot =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let gi = index_base + i in
          (if crashes faults gi 1 then begin
             (* Worker crashed picking up this chunk; requeue it once. *)
             if not (crashes faults gi 2) then
               match run_chunk slot i with
               | v -> results.(i) <- Some v
               | exception e ->
                 ignore (Atomic.compare_and_set failure None (Some e));
                 Atomic.set next n
             (* else: double crash — left for the serial fallback *)
           end
           else
             match run_chunk slot i with
             | v -> results.(i) <- Some v
             | exception e ->
               (* First failure wins; parking [next] past [n] cancels the
                  remaining indices on every domain. *)
               ignore (Atomic.compare_and_set failure None (Some e));
               Atomic.set next n);
          worker slot
        end
      in
      let spawned = ref [] in
      Fun.protect
        ~finally:(fun () ->
          (* Always join every spawned domain — even when a spawn or the
             inline worker raised.  A leaked domain keeps running past the
             caller's recovery and aborts the process at exit. *)
          List.iter
            (fun d ->
              match Domain.join d with
              | () -> ()
              | exception e ->
                ignore (Atomic.compare_and_set failure None (Some e)))
            !spawned)
        (fun () ->
          for slot = 1 to width - 1 do
            spawned := Domain.spawn (fun () -> worker slot) :: !spawned
          done;
          worker 0);
      (match Atomic.get failure with Some e -> raise e | None -> ());
      Array.mapi
        (fun i -> function
          | Some v -> v
          | None ->
            (* Both attempts crashed: degrade this chunk to the caller's
               domain.  [f] has not run for it yet. *)
            run_chunk 0 i)
        results
    end
  in
  (results, Array.init width (fun i -> (locals.(i), workers.(i))))

let map ?faults ?(index_base = 0) ~domains n ~f =
  fst
    (map_local ?faults ~index_base ~domains
       ~local:(fun ~slot:_ -> ())
       n
       ~f:(fun () i -> f i))

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)
