let default_domains () = Domain.recommended_domain_count ()

let map ~domains n ~f =
  if domains < 1 then invalid_arg "Pool.map: domains < 1";
  if n < 0 then invalid_arg "Pool.map: negative size";
  let domains = min domains n in
  if domains <= 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match f i with
        | v -> results.(i) <- Some v
        | exception e ->
          (* First failure wins; parking [next] past [n] cancels the
             remaining indices on every domain. *)
          ignore (Atomic.compare_and_set failure None (Some e));
          Atomic.set next n);
        worker ()
      end
    in
    let spawned = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)
