(** Per-epoch accounting of a fleet run: the detection CDF.

    An epoch is the fleet's unit of evidence exchange — the paper's
    "written to persistent storage ... to detect buffer overflow in
    future executions" (Section IV-B), generalized from one user's next
    run to a whole population's periodic report upload.  Executions
    inside an epoch start from the same store snapshot; the barrier at
    the end merges what they found.  One {!row} per epoch records how far
    detection has progressed — the rows form the fleet's detection CDF
    (what fraction of the population has caught the bug by epoch [e]). *)

type row = {
  epoch : int;           (** 0-based *)
  arrivals : int;        (** users executed in this epoch *)
  detections : int;      (** executions in this epoch that detected *)
  cumulative : int;      (** detections up to and including this epoch *)
  store_size : int;      (** shared-store contexts after this barrier *)
}

val cdf : total_users:int -> row -> float
(** [cumulative / total_users]. *)

val table : total_users:int -> row list -> string
(** Rendered {!Table_fmt} detection-CDF table. *)

val to_json : row -> Obs_json.t
