(** Hardware debug registers and the perf-event installation API.

    x86 exposes six debug registers of which four (DR0–DR3) can watch linear
    addresses (paper, Section II-A).  The paper installs them from user space
    through [perf_event_open], one event per (address, thread), configured
    with [fcntl] to deliver an asynchronous SIGTRAP to the accessing thread,
    and enabled/disabled with [ioctl].

    This module reproduces both layers: the four-slot hardware constraint
    (at most four {e distinct} watched addresses machine-wide), and the
    file-descriptor-based perf API with its per-call syscall costs.  Each
    API entry point mirrors one syscall from the paper's Figures 3 and 4, so
    installing a watchpoint for a thread costs six syscalls and removing it
    costs two — the "eight system calls ... for each thread" the paper
    reports when explaining its overhead. *)

type fd = int

type access_kind = Read | Write

type t

val watch_len : int
(** Bytes covered by one watchpoint (8, an x86 DR length). *)

val num_slots : int
(** Number of usable debug registers (4). *)

val create : ?faults:Fault_injector.t -> unit -> t
(** [faults] makes [perf_event_open] subject to injected [`EBUSY] /
    [`EACCES] failures (see {!Fault_plan}); without it only the
    architectural [`ENOSPC] can occur. *)

(** {1 The perf-event syscall surface}

    Every call below advances the syscall counter; the machine layer maps
    that counter onto the virtual clock. *)

val perf_event_open :
  ?now:float -> t -> addr:int -> tid:Threads.tid ->
  (fd, [ `ENOSPC | `EBUSY | `EACCES ]) result
(** Create a breakpoint event watching [watch_len] bytes at [addr] for
    thread [tid].  Fails with [`ENOSPC] when the event would require a fifth
    distinct watched address — the hardware limit.  Under fault injection it
    can also fail with [`EBUSY] (another debugger holds the debug registers
    — transient, worth retrying) or [`EACCES] (permissions — persistent);
    [now] is the virtual time the injector's one-shots are judged against.
    The event starts disabled, as in the paper's Figure 3 flow. *)

val fcntl_setup : t -> fd -> unit
(** Stand-in for the three [fcntl] calls ([O_ASYNC], [F_SETSIG SIGTRAP],
    [F_SETOWN tid]) plus the initial [F_GETFL]; counted as four syscalls. *)

val ioctl_enable : t -> fd -> unit
(** [PERF_EVENT_IOC_ENABLE]. Raises [Invalid_argument] on a closed fd. *)

val ioctl_disable : t -> fd -> unit
(** [PERF_EVENT_IOC_DISABLE]. *)

val close : t -> fd -> unit
(** Release the event; the debug-register slot is freed once every event
    watching its address is closed. *)

(** {1 Hardware side} *)

val check_access :
  t -> addr:int -> len:int -> kind:access_kind -> tid:Threads.tid -> fd option
(** [check_access t ~addr ~len ~kind ~tid] is the debug-unit comparator: if
    the accessed range overlaps a watched address whose event for [tid] is
    enabled, return that event's fd (the trap to deliver).  The comparator
    scans only the armed events, lowest fd first (DR0-before-DR3 style
    priority), and is O(1) when nothing is armed — the per-access fast
    path. *)

val set_fast_scan : t -> bool -> unit
(** [set_fast_scan t false] reverts the comparator to the pre-optimization
    reference path (a fold over every event ever opened).  Used by the
    throughput bench to measure the baseline in the same run, and by the
    property tests to check the two comparators agree. *)

val armed_count : t -> int
(** Events currently enabled — the length of the comparator's scan list. *)

val watched_addrs : t -> int list
(** Currently armed distinct addresses (at most [num_slots]). *)

val syscall_count : t -> int
(** Total syscalls issued through this module. *)

val live_fd_count : t -> int
(** Open event descriptors, for leak tests. *)
