type trap_info = {
  fd : Hw_breakpoint.fd;
  trap_addr : int;
  access_addr : int;
  access_len : int;
  access_kind : Hw_breakpoint.access_kind;
  tid : Threads.tid;
  pc : int;
}

type t = {
  mem : Sparse_mem.t;
  clock : Clock.t;
  threads : Threads.t;
  hw : Hw_breakpoint.t;
  telemetry : Telemetry.t;
  (* Hot counters, resolved once at creation: the per-event paths bump a
     record field instead of probing the registry by name.  These are the
     single source of truth — the former Stats.Counter shadow copies are
     gone, and {!counters} derives its view from these. *)
  c_traps : Metrics.counter;
  c_traps_unhandled : Metrics.counter;
  c_traps_dropped : Metrics.counter;
  c_traps_delayed : Metrics.counter;
  c_syscalls : Metrics.counter;
  c_accesses : Metrics.counter;
  faults : Fault_injector.t option;
  mutable phase : Profiler.phase;
  mutable n_work_cycles : int;
  rng : Prng.t;
  mutable pc : int;
  mutable brk : int;
  mutable trap_handler : (trap_info -> unit) option;
  mutable in_trap : bool;
  mutable backtrace_provider : (unit -> int list) option;
  (* Active-response plumbing (failure-oblivious mode).  Armed explicitly by
     the response layer; every field below is dead — never read, never
     written — while [respond_armed] is false, so an un-armed machine stays
     bit-identical to one built before the fields existed. *)
  mutable respond_armed : bool;
  mutable squash_old : int;      (** pre-write value, captured only when armed *)
  mutable squash_pending : bool; (** response layer asked to undo the write *)
  mutable read_override : int option; (** response layer's substitute load value *)
  mutable on_squash : (addr:int -> len:int -> value:int -> unit) option;
}

let heap_base = 0x1000_0000

let create ?(seed = 42) ?faults () =
  let telemetry = Telemetry.create () in
  let reg = Telemetry.metrics telemetry in
  { mem = Sparse_mem.create ();
    clock = Clock.create ();
    threads = Threads.create ();
    hw = Hw_breakpoint.create ?faults ();
    telemetry;
    c_traps = Metrics.counter reg "trap.count";
    c_traps_unhandled = Metrics.counter reg "trap.unhandled";
    c_traps_dropped = Metrics.counter reg "trap.dropped";
    c_traps_delayed = Metrics.counter reg "trap.delayed";
    faults;
    c_syscalls = Metrics.counter reg "machine.syscalls";
    c_accesses = Metrics.counter reg "machine.accesses";
    phase = Profiler.App;
    n_work_cycles = 0;
    rng = Prng.create ~seed;
    pc = 0;
    brk = heap_base;
    trap_handler = None;
    in_trap = false;
    backtrace_provider = None;
    respond_armed = false;
    squash_old = 0;
    squash_pending = false;
    read_override = None;
    on_squash = None }

let mem t = t.mem
let clock t = t.clock
let threads t = t.threads
let hw t = t.hw
let rng t = t.rng
let set_pc t pc = t.pc <- pc
let pc t = t.pc

let telemetry t = t.telemetry
let registry t = Telemetry.metrics t.telemetry
let faults t = t.faults

(* Derived view over the metrics registry, for callers that still speak the
   Stats.Counter vocabulary.  Only the keys the former shadow counters
   carried appear, and only when nonzero — matching the lazy population of
   the old Stats.Counter. *)
let counters t =
  let c = Stats.Counter.create () in
  let put name metric =
    let n = Metrics.count metric in
    if n > 0 then Stats.Counter.add c name n
  in
  put "traps" t.c_traps;
  put "traps_unhandled" t.c_traps_unhandled;
  put "traps_dropped" t.c_traps_dropped;
  put "traps_delayed" t.c_traps_delayed;
  c

(* Every cycle the machine advances goes through [charge], which attributes
   it to the current phase — so the profiler's per-phase totals sum exactly
   to the clock, by construction. *)
let charge t n =
  Clock.advance t.clock n;
  Profiler.charge (Telemetry.profiler t.telemetry) t.phase n;
  Telemetry.tick t.telemetry ~now:(Clock.cycles t.clock)

(* Outermost phase wins: work nested inside an explicitly attributed phase
   (e.g. the WMU removing a watchpoint from inside the trap handler) stays
   charged to the enclosing phase, matching how the paper's Figure 7 buckets
   whole mechanisms rather than their inner helpers. *)
let in_phase t phase f =
  if t.phase <> Profiler.App then f ()
  else begin
    t.phase <- phase;
    let started = Clock.cycles t.clock in
    Fun.protect
      ~finally:(fun () ->
        t.phase <- Profiler.App;
        (* Flight-recorder span for the outermost interval.  Reading the
           clock never advances it, so recording cannot perturb the run. *)
        if Flight_recorder.active () then begin
          let stopped = Clock.cycles t.clock in
          if stopped > started then
            Flight_recorder.phase ~name:(Profiler.name phase) ~start:started
              ~stop:stopped
        end)
      f
  end

let set_backtrace_provider t f = t.backtrace_provider <- Some f

let backtrace t =
  match t.backtrace_provider with None -> [ t.pc ] | Some f -> f ()

let fault_fires t point =
  match t.faults with
  | None -> false
  | Some inj -> Fault_injector.fire ~now:(Clock.seconds t.clock) inj point

let deliver_trap t ~fd ~access_addr ~len ~kind =
  if fault_fires t Fault_plan.Trap_drop then begin
    (* The SIGTRAP was lost in delivery: the hardware fired but the handler
       never runs.  Counted, recorded, and otherwise costless — the kernel
       did no dispatch work for a signal it dropped. *)
    Metrics.incr t.c_traps_dropped;
    if Flight_recorder.active () then
      Flight_recorder.fault ~at:(Clock.cycles t.clock) ~point:"trap-drop"
  end
  else begin
  let delayed = fault_fires t Fault_plan.Trap_delay in
  if delayed then begin
    Metrics.incr t.c_traps_delayed;
    if Flight_recorder.active () then
      Flight_recorder.fault ~at:(Clock.cycles t.clock) ~point:"trap-delay"
  end;
  Metrics.incr t.c_traps;
  if Flight_recorder.active () then
    Flight_recorder.trap ~at:(Clock.cycles t.clock) ~addr:access_addr
      ~access:(match kind with Hw_breakpoint.Read -> "read" | Hw_breakpoint.Write -> "write")
      ~tid:(Threads.current t.threads);
  in_phase t Profiler.Trap_dispatch (fun () ->
      if delayed then charge t Cost.trap_delay_extra;
      charge t Cost.trap_delivery;
      match t.trap_handler with
      | None -> Metrics.incr t.c_traps_unhandled
      | Some handler ->
        (* The handler itself may touch memory; hardware would not re-trap on
           the kernel's own accesses, so nested checking is suppressed. *)
        if not t.in_trap then begin
          t.in_trap <- true;
          let info =
            { fd;
              trap_addr = access_addr;
              access_addr;
              access_len = len;
              access_kind = kind;
              tid = Threads.current t.threads;
              pc = t.pc }
          in
          Fun.protect ~finally:(fun () -> t.in_trap <- false) (fun () -> handler info)
        end)
  end

let checked_access t addr len kind =
  Metrics.incr t.c_accesses;
  charge t Cost.memory_access;
  if not t.in_trap then
    match
      Hw_breakpoint.check_access t.hw ~addr ~len ~kind
        ~tid:(Threads.current t.threads)
    with
    | None -> ()
    | Some fd -> deliver_trap t ~fd ~access_addr:addr ~len ~kind

(* Failure-oblivious hooks.  Like a real data breakpoint, the watchpoint
   trap fires {e after} the access completes — so redirection is
   compensation, not prevention: the response layer (from the trap handler
   running inside [checked_access], or from a tool's pre-access shadow
   check) requests a squash or an override, and the access path applies it
   on the way out.  A squashed store restores the pre-write value and
   reports the discarded value through [on_squash] (the response layer's
   shadow slab); an overridden load returns the substitute value (the slab
   lookup).  Every conditional below is on [respond_armed], a plain field
   read with no clock charge, keeping the un-armed machine observably
   identical. *)

let arm_respond t ~on_squash =
  t.respond_armed <- true;
  t.on_squash <- Some on_squash

let squash_write t = if t.respond_armed then t.squash_pending <- true
let override_read t v = if t.respond_armed then t.read_override <- Some v

let resolve_read t v =
  match t.read_override with
  | None -> v
  | Some v' ->
    t.read_override <- None;
    v'

(* The pending-squash flag is {e not} reset on store entry: a tool whose
   shadow check runs before the machine access (ASan) arms it ahead of the
   store it wants undone, and the flag is always consumed by that store. *)
let apply_squash t addr len read write =
  let value = read t.mem addr in
  write t.mem addr t.squash_old;
  t.squash_pending <- false;
  match t.on_squash with
  | Some f -> f ~addr ~len ~value
  | None -> ()

let load_word t addr =
  let v = Sparse_mem.read_int t.mem addr in
  checked_access t addr 8 Hw_breakpoint.Read;
  if t.respond_armed then resolve_read t v else v

let store_word t addr v =
  if t.respond_armed && not t.in_trap then begin
    (* The pre-write capture rides the write itself (one chunk lookup, not
       a read followed by a write), so arming costs the unfaulted path
       almost nothing. *)
    t.squash_old <- Sparse_mem.exchange_int t.mem addr v;
    checked_access t addr 8 Hw_breakpoint.Write;
    if t.squash_pending then
      apply_squash t addr 8 Sparse_mem.read_int Sparse_mem.write_int
  end
  else begin
    Sparse_mem.write_int t.mem addr v;
    checked_access t addr 8 Hw_breakpoint.Write
  end

let load_byte t addr =
  let v = Sparse_mem.read_u8 t.mem addr in
  checked_access t addr 1 Hw_breakpoint.Read;
  if t.respond_armed then resolve_read t v else v

let store_byte t addr v =
  if t.respond_armed && not t.in_trap then begin
    t.squash_old <- Sparse_mem.exchange_u8 t.mem addr v;
    checked_access t addr 1 Hw_breakpoint.Write;
    if t.squash_pending then
      apply_squash t addr 1 Sparse_mem.read_u8 Sparse_mem.write_u8
  end
  else begin
    Sparse_mem.write_u8 t.mem addr v;
    checked_access t addr 1 Hw_breakpoint.Write
  end

let load_word_unwatched t addr = Sparse_mem.read_int t.mem addr
let store_word_unwatched t addr v = Sparse_mem.write_int t.mem addr v

let work t cycles =
  t.n_work_cycles <- t.n_work_cycles + cycles;
  charge t cycles

let stall t cycles = charge t cycles

(* The allocator's per-malloc attribution.  Equivalent to
   [in_phase t phase (fun () -> work t cycles)] but closure-free: the hot
   path allocates nothing.  [charge] can only raise on a negative count,
   checked before the phase is switched, so no protection frame is
   needed. *)
let work_as t phase cycles =
  if cycles < 0 then invalid_arg "Clock.advance: negative cycles";
  t.n_work_cycles <- t.n_work_cycles + cycles;
  if t.phase <> Profiler.App then charge t cycles
  else begin
    t.phase <- phase;
    let started = Clock.cycles t.clock in
    charge t cycles;
    t.phase <- Profiler.App;
    if Flight_recorder.active () then begin
      let stopped = Clock.cycles t.clock in
      if stopped > started then
        Flight_recorder.phase ~name:(Profiler.name phase) ~start:started
          ~stop:stopped
    end
  end

let charge_syscalls t n =
  Metrics.add t.c_syscalls n;
  charge t (n * Cost.syscall)

let sbrk t n =
  if n < 0 then invalid_arg "Machine.sbrk: negative increment";
  let aligned = (n + 15) land lnot 15 in
  let old = t.brk in
  t.brk <- t.brk + aligned;
  old

let set_trap_handler t h = t.trap_handler <- Some h
let clear_trap_handler t = t.trap_handler <- None
let trap_count t = Metrics.count t.c_traps
let access_count t = Metrics.count t.c_accesses
let syscall_count t = Metrics.count t.c_syscalls
let work_cycles t = t.n_work_cycles

let install_watch ?(combined = false) t ~addr ~tid =
  match
    Hw_breakpoint.perf_event_open ~now:(Clock.seconds t.clock) t.hw ~addr ~tid
  with
  | Error _ as e ->
    charge_syscalls t 1;
    e
  | Ok fd ->
    Hw_breakpoint.fcntl_setup t.hw fd;
    Hw_breakpoint.ioctl_enable t.hw fd;
    charge_syscalls t (if combined then 1 else 6);
    Ok fd

let remove_watch ?(combined = false) t fd =
  Hw_breakpoint.ioctl_disable t.hw fd;
  Hw_breakpoint.close t.hw fd;
  charge_syscalls t (if combined then 1 else 2)
