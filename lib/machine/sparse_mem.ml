type addr = int

let chunk_size = 65536

(* Domain-local page pool: executions are short-lived but plentiful (the
   fleet simulator runs thousands per domain), so recycling chunk storage
   across machines removes the dominant per-execution GC load.  Pages are
   zeroed on reuse, making a pooled page indistinguishable from a fresh
   one.  The pool is per-domain, so fleet workers never contend. *)
let max_pooled_pages = 512

let pool_key : Bytes.t list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let fresh_page () =
  let pool = Domain.DLS.get pool_key in
  match !pool with
  | [] -> Bytes.make chunk_size '\000'
  | b :: rest ->
    pool := rest;
    Bytes.fill b 0 chunk_size '\000';
    b

type t = {
  chunks : (int, Bytes.t) Hashtbl.t;
  (* One-entry direct-mapped cache of the last chunk touched: interpreter
     traffic is overwhelmingly sequential or loop-local, so most accesses
     hit the same 64K chunk as their predecessor and skip the hashtable. *)
  mutable cache_idx : int;
  mutable cache_chunk : Bytes.t;
  mutable cache_on : bool;
  mutable released : bool;
}

let no_chunk = Bytes.create 0

let create () =
  { chunks = Hashtbl.create 256;
    cache_idx = -1;
    cache_chunk = no_chunk;
    cache_on = true;
    released = false }

let set_cache t on =
  t.cache_on <- on;
  if not on then begin
    t.cache_idx <- -1;
    t.cache_chunk <- no_chunk
  end

let release t =
  if not t.released then begin
    t.released <- true;
    t.cache_idx <- -1;
    t.cache_chunk <- no_chunk;
    let pool = Domain.DLS.get pool_key in
    Hashtbl.iter
      (fun _ b -> if List.length !pool < max_pooled_pages then pool := b :: !pool)
      t.chunks;
    Hashtbl.reset t.chunks
  end

let check addr = if addr < 0 then invalid_arg "Sparse_mem: negative address"

(* Chunk lookup for a write (materializes the chunk on a miss). *)
let chunk_for t addr =
  let idx = addr / chunk_size in
  if t.cache_on && idx = t.cache_idx then t.cache_chunk
  else begin
    let b =
      match Hashtbl.find_opt t.chunks idx with
      | Some b -> b
      | None ->
        let b = fresh_page () in
        Hashtbl.add t.chunks idx b;
        b
    in
    if t.cache_on then begin
      t.cache_idx <- idx;
      t.cache_chunk <- b
    end;
    b
  end

(* Chunk lookup for a read ([no_chunk] when untouched — reads as zero). *)
let chunk_at t addr =
  let idx = addr / chunk_size in
  if t.cache_on && idx = t.cache_idx then t.cache_chunk
  else
    match Hashtbl.find_opt t.chunks idx with
    | None -> no_chunk
    | Some b ->
      if t.cache_on then begin
        t.cache_idx <- idx;
        t.cache_chunk <- b
      end;
      b

let read_u8 t addr =
  check addr;
  let b = chunk_at t addr in
  if b == no_chunk then 0
  else Char.code (Bytes.unsafe_get b (addr mod chunk_size))

let write_u8 t addr v =
  check addr;
  let b = chunk_for t addr in
  Bytes.unsafe_set b (addr mod chunk_size) (Char.unsafe_chr (v land 0xff))

let read_u64 t addr =
  check addr;
  (* Fast path: the whole word lies inside one chunk. *)
  let off = addr mod chunk_size in
  if off <= chunk_size - 8 then begin
    let b = chunk_at t addr in
    if b == no_chunk then 0L else Bytes.get_int64_le b off
  end
  else begin
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (read_u8 t (addr + i)))
    done;
    !v
  end

let write_u64 t addr v =
  check addr;
  let off = addr mod chunk_size in
  if off <= chunk_size - 8 then Bytes.set_int64_le (chunk_for t addr) off v
  else
    for i = 0 to 7 do
      write_u8 t (addr + i) (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
    done

let read_int t addr = Int64.to_int (read_u64 t addr)
let write_int t addr v = write_u64 t addr (Int64.of_int v)

(* Store returning the displaced value: the armed response layer's
   pre-write capture folded into the write itself, so the squash path
   costs one chunk lookup instead of a separate read followed by a
   write. *)
let exchange_u8 t addr v =
  check addr;
  let b = chunk_for t addr in
  let off = addr mod chunk_size in
  let old = Char.code (Bytes.unsafe_get b off) in
  Bytes.unsafe_set b off (Char.unsafe_chr (v land 0xff));
  old

let exchange_int t addr v =
  check addr;
  let off = addr mod chunk_size in
  if off <= chunk_size - 8 then begin
    let b = chunk_for t addr in
    let old = Bytes.get_int64_le b off in
    Bytes.set_int64_le b off (Int64.of_int v);
    Int64.to_int old
  end
  else begin
    let old = read_int t addr in
    write_int t addr v;
    old
  end

let fill t addr len v =
  if len < 0 then invalid_arg "Sparse_mem.fill: negative length";
  if len > 0 then begin
    check addr;
    (* Chunk-wise [Bytes.fill] instead of a byte loop; chunks are still
       materialized for the whole range (even when zero-filling) so the
       resident-set proxy sees exactly what the byte loop touched. *)
    let c = Char.unsafe_chr (v land 0xff) in
    let pos = ref addr and left = ref len in
    while !left > 0 do
      let b = chunk_for t !pos in
      let off = !pos mod chunk_size in
      let n = min !left (chunk_size - off) in
      Bytes.fill b off n c;
      pos := !pos + n;
      left := !left - n
    done
  end

let touched_bytes t = Hashtbl.length t.chunks * chunk_size
