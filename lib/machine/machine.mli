(** The simulated machine: memory, threads, debug hardware, signals, clock.

    This is the process-level facade the allocator, the MiniC interpreter,
    and the detection tools all share.  Every load/store issued here is
    checked against the armed debug registers, and a hit synchronously runs
    the registered SIGTRAP handler {e on the accessing thread} — the
    delivery discipline Section III-C1 of the paper takes care to arrange
    via [F_SETOWN].  Like x86 data breakpoints, the trap fires {e after}
    the access completes. *)

type t

type trap_info = {
  fd : Hw_breakpoint.fd;        (** which perf event fired (paper: read from [siginfo_t]) *)
  trap_addr : int;              (** the watched address that was hit *)
  access_addr : int;            (** address of the offending access *)
  access_len : int;             (** width of the access in bytes (1 or 8) *)
  access_kind : Hw_breakpoint.access_kind;
  tid : Threads.tid;            (** thread that performed the access *)
  pc : int;                     (** code address of the faulting statement *)
}

val create : ?seed:int -> ?faults:Fault_injector.t -> unit -> t
(** Build a machine.  [seed] (default 42) seeds the machine-level PRNG from
    which per-thread generators are split.  [faults] arms deterministic
    fault injection: [perf_event_open] can fail with [`EBUSY]/[`EACCES] and
    SIGTRAP delivery can be dropped or delayed (see {!Fault_plan}).  The
    injector draws from its own stream, so a machine with no injector — or
    an all-zero plan — is bit-identical to one never offered faults. *)

(** {1 Component access} *)

val mem : t -> Sparse_mem.t
val clock : t -> Clock.t
val threads : t -> Threads.t
val hw : t -> Hw_breakpoint.t
val counters : t -> Stats.Counter.t
(** Legacy Stats view of the trap counters ([traps], [traps_unhandled],
    [traps_dropped], [traps_delayed]).  Derived on demand from the metrics
    registry — the single counting path — so it can never diverge from
    {!registry}; kept until the Stats.Counter vocabulary is retired. *)

val rng : t -> Prng.t
(** The machine's root generator; tools split per-thread generators off it. *)

val telemetry : t -> Telemetry.t
(** This machine's telemetry bundle.  The allocator and the detection tools
    register their counters/histograms here and the profiler receives every
    cycle the machine charges. *)

val registry : t -> Metrics.t
(** Shorthand for [Telemetry.metrics (telemetry t)]. *)

val faults : t -> Fault_injector.t option
(** The injector this machine was armed with, if any — shared with tools
    that inject their own faults (persistence, fleet) so one plan covers
    the whole run. *)

(** {1 Execution context} *)

val set_pc : t -> int -> unit
(** Record the code address of the statement about to execute; traps report
    it. *)

val pc : t -> int

val set_backtrace_provider : t -> (unit -> int list) -> unit
(** Install the process stack walker.  The executing program (the MiniC
    interpreter, or a synthetic driver) provides it; tools call
    {!backtrace} for full calling contexts — the analogue of glibc's
    [backtrace], and priced accordingly by callers via {!Cost.backtrace_full}. *)

val backtrace : t -> int list
(** Current full calling context, innermost code address first.  Returns
    [[pc]] if no provider is installed. *)

(** {1 Memory accesses}

    All accesses advance the clock by {!Cost.memory_access} and are checked
    against the debug registers for the current thread. *)

val load_word : t -> int -> int
val store_word : t -> int -> int -> unit
val load_byte : t -> int -> int
val store_byte : t -> int -> int -> unit

(** {2 Active response (failure-oblivious mode)}

    Like a real data breakpoint, the watchpoint trap fires {e after} the
    access completes, so the response layer compensates rather than
    prevents: during the access — from the trap handler, or from a tool's
    pre-access shadow check — it may ask the machine to squash the store
    (restore the pre-write value) or override the load (return a substitute
    value).  All response state is dead while unarmed: a machine never
    offered {!arm_respond} is bit-identical to one built before these hooks
    existed. *)

val arm_respond :
  t -> on_squash:(addr:int -> len:int -> value:int -> unit) -> unit
(** Enable the response hooks.  [on_squash] receives every squashed store —
    the discarded value and its address/width — so the response layer can
    preserve it in a shadow slab.  Arming captures the pre-write value on
    every subsequent store (an unwatched shadow read, no clock charge). *)

val squash_write : t -> unit
(** Request that the store currently in flight (the one whose trap is being
    handled, or the next store when called from a pre-access check) be
    undone after its access check completes.  No-op unless armed. *)

val override_read : t -> int -> unit
(** Request that the load currently in flight return this value instead of
    the one read from memory.  No-op unless armed. *)

val load_word_unwatched : t -> int -> int
(** Runtime-internal access: no debug-register check, no cost.  Used by the
    tools themselves (e.g. canary verification must not trip the very
    watchpoint guarding the canary). *)

val store_word_unwatched : t -> int -> int -> unit

(** {1 Work and syscall accounting} *)

val work : t -> int -> unit
(** [work t cycles] models application compute: advances the clock.  The
    cycles are attributed to the current profiler phase ({!Profiler.App}
    unless a tool set one via {!in_phase}/{!work_as}). *)

val stall : t -> int -> unit
(** Advance the clock by [n] cycles {e without} counting them as modeled
    application compute — runtime-internal waiting, such as the backoff
    between [perf_event_open] retries under fault injection.  Attributed to
    the current profiler phase like any other charge. *)

val work_as : t -> Profiler.phase -> int -> unit
(** [work t cycles], attributed to [phase] — unless an enclosing
    {!in_phase} already set one, which wins. *)

val in_phase : t -> Profiler.phase -> (unit -> 'a) -> 'a
(** Attribute every cycle charged inside the callback to [phase].  The
    outermost phase wins: nesting does not re-attribute (the trap handler's
    inner WMU work stays charged to trap dispatch). *)

val charge_syscalls : t -> int -> unit
(** Advance the clock by [n] syscall costs (perf-API wrappers call this). *)

(** {1 Address space} *)

val sbrk : t -> int -> int
(** [sbrk t n] extends the heap break by [n] bytes (16-byte aligned) and
    returns the previous break — the allocator's backing store. *)

(** {1 Signals} *)

val set_trap_handler : t -> (trap_info -> unit) -> unit
(** Install the SIGTRAP handler (paper: [sigaction] with [sa_sigaction]).
    Traps arriving with no handler are counted and dropped. *)

val clear_trap_handler : t -> unit

val trap_count : t -> int
(** Traps delivered so far. *)

val access_count : t -> int
(** Application loads/stores issued through the checked entry points. *)

val syscall_count : t -> int
(** Syscalls charged via {!charge_syscalls}. *)

val work_cycles : t -> int
(** Cycles of modeled application compute ({!work}). *)

(** {1 Perf-event wrappers}

    Same semantics as {!Hw_breakpoint}, but each call also charges its
    syscall cost to the clock.  [install_watch] performs the full Figure 3
    sequence for one thread (open + fcntl×4 + enable = 6 syscalls);
    [remove_watch] performs Figure 4's (disable + close = 2 syscalls). *)

val install_watch :
  ?combined:bool -> t -> addr:int -> tid:Threads.tid ->
  (Hw_breakpoint.fd, [ `ENOSPC | `EBUSY | `EACCES ]) result
(** [combined] models the custom single-syscall installation the paper
    proposes as an OS modification (Section V-B): the same hardware
    operations, charged as one kernel crossing instead of six.  [`EBUSY]
    and [`EACCES] only occur under fault injection ({!create}'s [faults]);
    the failed open still costs one syscall. *)

val remove_watch : ?combined:bool -> t -> Hw_breakpoint.fd -> unit
(** With [combined], one syscall instead of two. *)
