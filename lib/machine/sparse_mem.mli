(** Byte-addressable sparse memory.

    Backs the simulated process address space.  Storage is allocated lazily
    in fixed-size chunks, so a heap spanning gigabytes of virtual addresses
    costs only what is actually touched — the same property [mmap]-backed
    allocators rely on, and what lets Table V count resident (touched)
    memory separately from reserved address space. *)

type t

type addr = int
(** Virtual addresses are non-negative integers. *)

val create : unit -> t

val read_u8 : t -> addr -> int
(** [read_u8 t a] reads one byte; untouched memory reads as 0. *)

val write_u8 : t -> addr -> int -> unit
(** [write_u8 t a v] stores the low 8 bits of [v]. *)

val read_u64 : t -> addr -> int64
(** Little-endian 8-byte load. *)

val write_u64 : t -> addr -> int64 -> unit
(** Little-endian 8-byte store. *)

val read_int : t -> addr -> int
(** [read_int t a] loads a 64-bit word as an OCaml [int] (truncating the top
    bit); the MiniC interpreter's word type. *)

val write_int : t -> addr -> int -> unit

val exchange_u8 : t -> addr -> int -> int
(** [exchange_u8 t a v] stores the low 8 bits of [v] and returns the byte
    it displaced — a write and the pre-write capture in one chunk lookup,
    for the armed response layer's squash path. *)

val exchange_int : t -> addr -> int -> int
(** Word-sized {!exchange_u8}. *)

val fill : t -> addr -> int -> int -> unit
(** [fill t a len v] sets [len] bytes starting at [a] to byte [v]. *)

val touched_bytes : t -> int
(** Resident set proxy: bytes of chunk storage materialized so far. *)

val set_cache : t -> bool -> unit
(** [set_cache t false] disables the last-chunk cache, reverting every
    access to the pre-optimization hashtable probe.  Used by the throughput
    bench to measure the baseline in the same run, and by the property
    tests to check cached and uncached accesses agree. *)

val release : t -> unit
(** End-of-life: return this memory's chunk storage to the domain-local
    page pool so the next execution on this domain reuses it instead of
    allocating.  The memory reads as all-zeroes afterwards; callers must
    not touch it again.  Idempotent. *)

val chunk_size : int
(** Chunk granularity in bytes (a simulated page cluster). *)
