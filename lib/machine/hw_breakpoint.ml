type fd = int
type access_kind = Read | Write

let watch_len = 8
let num_slots = 4

type event = {
  ev_fd : fd;
  addr : int;
  tid : Threads.tid;
  mutable enabled : bool;
  mutable configured : bool;
}

type t = {
  events : (fd, event) Hashtbl.t;
  (* Enabled events in ascending fd (installation) order: the comparator's
     scan list.  Kept in sync by enable/disable/close, which are rare
     (installation-path) operations, so the per-access path touches only
     this list — never the hashtable. *)
  mutable armed : event list;
  mutable fast_scan : bool;
  mutable next_fd : fd;
  mutable syscalls : int;
  faults : Fault_injector.t option;
}

let create ?faults () =
  { events = Hashtbl.create 64;
    armed = [];
    fast_scan = true;
    next_fd = 100;
    syscalls = 0;
    faults }

let set_fast_scan t on = t.fast_scan <- on

let distinct_addrs t =
  Hashtbl.fold (fun _ ev acc -> if List.mem ev.addr acc then acc else ev.addr :: acc)
    t.events []

let arm t ev =
  if not (List.memq ev t.armed) then
    t.armed <-
      (* Insert in ascending fd order: DR0-before-DR3 style priority, and
         independent of hashtable layout. *)
      (let rec ins = function
         | [] -> [ ev ]
         | e :: _ as l when ev.ev_fd < e.ev_fd -> ev :: l
         | e :: rest -> e :: ins rest
       in
       ins t.armed)

let disarm t ev = t.armed <- List.filter (fun e -> e != ev) t.armed

let armed_count t = List.length t.armed

(* Environmental failures are consulted first: a debugger squatting on the
   registers (EBUSY) or a permission change (EACCES) hits the syscall before
   the architectural slot check ever would. *)
let injected_failure t ~now =
  match t.faults with
  | None -> None
  | Some inj ->
    if Fault_injector.fire ?now inj Fault_plan.Perf_ebusy then Some `EBUSY
    else if Fault_injector.fire ?now inj Fault_plan.Perf_eacces then Some `EACCES
    else None

let perf_event_open ?now t ~addr ~tid =
  t.syscalls <- t.syscalls + 1;
  match injected_failure t ~now with
  | Some e -> Error e
  | None ->
  let addrs = distinct_addrs t in
  if (not (List.mem addr addrs)) && List.length addrs >= num_slots then Error `ENOSPC
  else begin
    let fd = t.next_fd in
    t.next_fd <- fd + 1;
    Hashtbl.add t.events fd
      { ev_fd = fd; addr; tid; enabled = false; configured = false };
    Ok fd
  end

let event_exn t fd =
  match Hashtbl.find_opt t.events fd with
  | Some ev -> ev
  | None -> invalid_arg (Printf.sprintf "Hw_breakpoint: bad fd %d" fd)

let fcntl_setup t fd =
  t.syscalls <- t.syscalls + 4;
  (event_exn t fd).configured <- true

let ioctl_enable t fd =
  t.syscalls <- t.syscalls + 1;
  let ev = event_exn t fd in
  ev.enabled <- true;
  arm t ev

let ioctl_disable t fd =
  t.syscalls <- t.syscalls + 1;
  let ev = event_exn t fd in
  ev.enabled <- false;
  disarm t ev

let close t fd =
  t.syscalls <- t.syscalls + 1;
  let ev = event_exn t fd in
  disarm t ev;
  Hashtbl.remove t.events fd

let ranges_overlap a1 l1 a2 l2 = a1 < a2 + l2 && a2 < a1 + l1

(* Reference comparator, kept for the bench's pre-optimization baseline and
   the property tests' equivalence checks: fold over every event ever
   opened, as the seed implementation did. *)
let check_access_scan t ~addr ~len ~tid =
  Hashtbl.fold
    (fun fd ev best ->
      match best with
      | Some _ -> best
      | None ->
        if ev.enabled && ev.tid = tid && ranges_overlap addr len ev.addr watch_len
        then Some fd
        else None)
    t.events None

let check_access t ~addr ~len ~kind:_ ~tid =
  (* HW_BREAKPOINT_RW fires on both reads and writes, so [kind] does not
     filter; it is carried for the trap report. *)
  if not t.fast_scan then check_access_scan t ~addr ~len ~tid
  else
    match t.armed with
    | [] -> None
    | armed ->
      let rec scan = function
        | [] -> None
        | ev :: rest ->
          if ev.tid = tid && ranges_overlap addr len ev.addr watch_len then
            Some ev.ev_fd
          else scan rest
      in
      scan armed

let watched_addrs t = distinct_addrs t
let syscall_count t = t.syscalls
let live_fd_count t = Hashtbl.length t.events
