type fd = int
type access_kind = Read | Write

let watch_len = 8
let num_slots = 4

type event = {
  addr : int;
  tid : Threads.tid;
  mutable enabled : bool;
  mutable configured : bool;
}

type t = {
  events : (fd, event) Hashtbl.t;
  mutable next_fd : fd;
  mutable syscalls : int;
  faults : Fault_injector.t option;
}

let create ?faults () =
  { events = Hashtbl.create 64; next_fd = 100; syscalls = 0; faults }

let distinct_addrs t =
  Hashtbl.fold (fun _ ev acc -> if List.mem ev.addr acc then acc else ev.addr :: acc)
    t.events []

(* Environmental failures are consulted first: a debugger squatting on the
   registers (EBUSY) or a permission change (EACCES) hits the syscall before
   the architectural slot check ever would. *)
let injected_failure t ~now =
  match t.faults with
  | None -> None
  | Some inj ->
    if Fault_injector.fire ?now inj Fault_plan.Perf_ebusy then Some `EBUSY
    else if Fault_injector.fire ?now inj Fault_plan.Perf_eacces then Some `EACCES
    else None

let perf_event_open ?now t ~addr ~tid =
  t.syscalls <- t.syscalls + 1;
  match injected_failure t ~now with
  | Some e -> Error e
  | None ->
  let addrs = distinct_addrs t in
  if (not (List.mem addr addrs)) && List.length addrs >= num_slots then Error `ENOSPC
  else begin
    let fd = t.next_fd in
    t.next_fd <- fd + 1;
    Hashtbl.add t.events fd { addr; tid; enabled = false; configured = false };
    Ok fd
  end

let event_exn t fd =
  match Hashtbl.find_opt t.events fd with
  | Some ev -> ev
  | None -> invalid_arg (Printf.sprintf "Hw_breakpoint: bad fd %d" fd)

let fcntl_setup t fd =
  t.syscalls <- t.syscalls + 4;
  (event_exn t fd).configured <- true

let ioctl_enable t fd =
  t.syscalls <- t.syscalls + 1;
  (event_exn t fd).enabled <- true

let ioctl_disable t fd =
  t.syscalls <- t.syscalls + 1;
  (event_exn t fd).enabled <- false

let close t fd =
  t.syscalls <- t.syscalls + 1;
  ignore (event_exn t fd);
  Hashtbl.remove t.events fd

let ranges_overlap a1 l1 a2 l2 = a1 < a2 + l2 && a2 < a1 + l1

let check_access t ~addr ~len ~kind:_ ~tid =
  (* HW_BREAKPOINT_RW fires on both reads and writes, so [kind] does not
     filter; it is carried for the trap report. *)
  Hashtbl.fold
    (fun fd ev best ->
      match best with
      | Some _ -> best
      | None ->
        if ev.enabled && ev.tid = tid && ranges_overlap addr len ev.addr watch_len
        then Some fd
        else None)
    t.events None

let watched_addrs t = distinct_addrs t
let syscall_count t = t.syscalls
let live_fd_count t = Hashtbl.length t.events
