(** Cycle-cost constants for the simulated machine.

    The paper evaluates on a 2-socket Xeon E5-2640; we cannot time that
    hardware, so the reproduction's performance results (Figure 7) come from
    a virtual cycle clock advanced by these constants.  The constants encode
    well-known relative costs (a syscall is ~thousands of cycles, a shadow
    check is a few cycles, a hash lookup tens of cycles); the Figure 7
    harness documents how they combine.  Absolute wall-clock fidelity is out
    of scope — only the {e shape} of the overhead comparison matters. *)

val cycles_per_second : int
(** Virtual clock rate (2.5 GHz, matching the Xeon E5-2640's base clock). *)

val syscall : int
(** One kernel crossing ([perf_event_open], [fcntl], [ioctl], [close]).
    The paper counts eight such calls to install-plus-remove one watchpoint
    per thread (Figure 3 uses six to install, Figure 4 two to remove). *)

val memory_access : int
(** One application load or store, as seen by the cost model. *)

val shadow_check : int
(** One ASan-style shadow-byte check inserted before an instrumented
    access. *)

val malloc_base : int
(** Baseline allocator work for one [malloc]/[free] pair. *)

val context_lookup : int
(** CSOD per-allocation work: return-address read, stack-offset read, hash,
    and chain probe of the Sampling Management Unit's table. *)

val rng_draw : int
(** One per-thread PRNG draw plus the probability comparison. *)

val prob_update : int
(** Degradation arithmetic on the context record. *)

val backtrace_full : int
(** One full [backtrace] walk (paper: only on first sight of a context). *)

val canary_plant : int
(** Writing the 32-byte header plus the 8-byte canary. *)

val canary_check : int
(** Verifying one canary at deallocation or exit. *)

val redzone_poison : int
(** ASan poisoning/unpoisoning of redzones around one allocation. *)

val quarantine_op : int
(** ASan quarantine bookkeeping at one deallocation. *)

val trap_delivery : int
(** Kernel signal delivery plus handler prologue for one watchpoint trap. *)

val trap_delay_extra : int
(** Extra latency charged when fault injection delays a SIGTRAP (a run
    queue hiccup between the hardware firing and the handler running). *)

val ebusy_backoff : int
(** Virtual-time backoff between retries when [perf_event_open] returns
    [`EBUSY] — another debugger transiently holds the debug registers. *)

val csod_init : int
(** One-time CSOD runtime start-up (interposition setup, context-table
    arena, signal-handler registration).  The paper attributes Ferret's
    above-average overhead to exactly this: the program "runs for less than
    five seconds, which exaggerates the proportion of CSOD's initialization
    overhead". *)

val asan_init : int
(** One-time ASan start-up (shadow reservation, interceptors). *)
