(** The MiniC bytecode VM.

    Executes {!Compile.code} with the same observable behaviour as the
    reference interpreter: identical virtual-cycle accounting, tool
    callback sequence, allocation contexts, app-PRNG draws, output, step
    counts, and error messages (raised as {!Interp.Runtime_error}).  The
    compiled form is cached on the program via {!Compile.get}. *)

val buggy_cycles : bool ref
(** Planted bug for the differential-testing net: when true, every taken
    backward jump charges one extra virtual cycle.  Exposed on the CLI as
    [--engine vm-buggy-cycles]; the differential sweep must catch it and
    [test/test_minic.ml] pins a shrunk repro.  Default false. *)

val run :
  machine:Machine.t ->
  tool:Tool.t ->
  program:Program.t ->
  ?inputs:int array ->
  ?app_seed:int ->
  ?step_limit:int ->
  unit ->
  Interp.result
(** Same contract as {!Interp.run}, bit-identical observables. *)
