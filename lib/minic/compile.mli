(** MiniC AST -> flat bytecode.

    Compilation resolves every variable to a static frame slot (Sema has
    already proven the program well-scoped), turns structured control flow
    into precomputed jump targets, and stamps each effectful instruction
    with the code address and source location the interpreter would have
    used — so the VM can replay the interpreter's machine interaction
    bit-identically.  Compiled code is immutable once built and is cached
    on the {!Program} via {!get}. *)

type site = { addr : int; loc : Srcloc.t }

type print_part = Lit of string | Val

type func_info = {
  fi_name : string;
  fi_addr : int;          (** function entry code address *)
  fi_nargs : int;
  fi_nslots : int;        (** parameters + declaration sites *)
  fi_frame_bytes : int;   (** simulated stack bytes per activation *)
  mutable fi_entry : int; (** instruction index of the compiled body *)
  mutable fi_max_stack : int;
      (** bound on operand-stack growth while the function's own code runs;
          lets the VM check capacity once per call *)
}

type binop_tag =
  | TAdd | TSub | TMul
  | TLt | TLe | TGt | TGe | TEq | TNe
  | TBand | TBor | TBxor | TShl | TShr
(** Operator tag carried by the fused operand-mode instructions; Div/Mod
    are excluded (they carry a source location for the zero check). *)

type instr =
  | Stmt of int * Srcloc.t
  | Jmp of int
  | Jz of int
  | Jnz of int
  | Call of func_info * int
  | Spawn of func_info * int
  | Ret
  | Push of int
  | Pop
  | Load of int
  | Store of int
  | Neg
  | Not
  | Bool
  | Add | Sub | Mul
  | Div of Srcloc.t
  | Mod of Srcloc.t
  | Lt | Le | Gt | Ge | Eq | Ne
  | Band | Bor | Bxor | Shl | Shr
  | Bin_si of binop_tag * int * int
  | Bin_is of binop_tag * int * int
  | Bin_ss of binop_tag * int * int
  | Bin_ti of binop_tag * int
  | Bin_ts of binop_tag * int
  | Index of site
  | Store_idx of site
  | Malloc of site
  | Calloc of site
  | Free of site
  | Print of print_part array
  | Input of site
  | Input_len
  | Rand of site
  | Memset of site
  | Memcpy of site
  | Load8 of site
  | Store8 of site
  | Sleep_ms of site
  | Work of site
  | Str_err of Srcloc.t

type code = {
  instrs : instr array;
  funcs : (string, func_info) Hashtbl.t;
}

val compile : Program.t -> code
(** Compile afresh, ignoring the cache. *)

type Program.cached += Code of code

val get : Program.t -> code
(** Compile once and cache on the program.  Deterministic, so a cross-domain
    race merely repeats work; see {!Engine.precompile} for eager warmup. *)
