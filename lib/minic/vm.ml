(* Bytecode VM.  Executes Compile.code against the same Machine/Tool
   surface as the AST interpreter, replaying its observable behaviour
   bit-identically: the same set_pc sites, the same Machine.work charges,
   the same tool malloc/free/on_access sequence (with identical
   Alloc_ctx contents), the same app-PRNG draws, the same error messages
   at the same source locations, and the same step accounting.  The
   interpreter (lib/minic/interp.ml) is the reference; any observable
   divergence is a VM bug — the differential sweep in test/test_prop.ml
   exists to find exactly that.

   The dispatch loop is a tail-recursive match over the instruction
   array.  Operand-stack capacity is verified once per frame push
   against the callee's statically computed [fi_max_stack], so the
   per-instruction stack operations are unchecked array accesses. *)

let buggy_cycles = ref false
(* Planted bug for the differential-testing net: when set, every taken
   backward jump charges one extra virtual cycle, silently inflating the
   cycle total of any program with a loop.  The sweep must catch it and
   test/test_minic.ml pins a shrunk repro. *)

type vframe = {
  callsite : int;    (* code address of the call expression *)
  vsp : int;         (* simulated stack pointer of this activation *)
  ret_pc : int;      (* instruction index to resume; -1 = host boundary *)
  saved_base : int;  (* caller's locals window base *)
}

type st = {
  m : Machine.t;
  tool : Tool.t;
  code : Compile.code;
  inputs : int array;
  app_rng : Prng.t;
  buf : Buffer.t;
  buggy : bool;      (* buggy_cycles snapshot, taken once per run *)
  mutable frames : vframe list; (* innermost first *)
  mutable steps : int;
  step_limit : int;
  mutable stack : int array;    (* operand stack *)
  mutable sp : int;
  mutable locals : int array;   (* per-frame slot windows, bump-allocated *)
  mutable lbase : int;
  mutable ltop : int;
}

let error loc fmt =
  Printf.ksprintf (fun msg -> raise (Interp.Runtime_error (msg, loc))) fmt

let stack_base = Interp.stack_base
let statement_cost = Interp.statement_cost

let backtrace_of_frames frames pc =
  pc :: List.map (fun f -> f.callsite) frames

let make_ctx st callsite : Alloc_ctx.t =
  let frames = st.frames in
  let sp = (List.hd frames).vsp in
  { Alloc_ctx.callsite;
    stack_offset = stack_base - sp;
    backtrace =
      (fun () ->
        Machine.work st.m Cost.backtrace_full;
        backtrace_of_frames frames callsite) }

let of_bool b = if b then 1 else 0

(* semantics of the fused-operator tags; must agree with the unfused
   opcodes (and Compile.eval_tag's constant folding) bit-for-bit *)
let[@inline] binop tag a b =
  match (tag : Compile.binop_tag) with
  | Compile.TAdd -> a + b
  | Compile.TSub -> a - b
  | Compile.TMul -> a * b
  | Compile.TLt -> of_bool (a < b)
  | Compile.TLe -> of_bool (a <= b)
  | Compile.TGt -> of_bool (a > b)
  | Compile.TGe -> of_bool (a >= b)
  | Compile.TEq -> of_bool (a = b)
  | Compile.TNe -> of_bool (a <> b)
  | Compile.TBand -> a land b
  | Compile.TBor -> a lor b
  | Compile.TBxor -> a lxor b
  | Compile.TShl -> a lsl (b land 62)
  | Compile.TShr -> a lsr (b land 62)

let grow_stack st needed =
  let cap = ref (2 * Array.length st.stack) in
  while needed > !cap do cap := 2 * !cap done;
  let arr = Array.make !cap 0 in
  Array.blit st.stack 0 arr 0 st.sp;
  st.stack <- arr

let grow_locals st needed =
  let cap = ref (2 * Array.length st.locals) in
  while needed > !cap do cap := 2 * !cap done;
  let arr = Array.make !cap 0 in
  Array.blit st.locals 0 arr 0 st.ltop;
  st.locals <- arr

(* Push a frame for [f]: pop its arguments (pushed left-to-right) into
   slots 0..nargs-1 and guarantee operand-stack headroom for the whole of
   [f]'s own code — nested calls re-check at their own push. *)
let push_frame st (f : Compile.func_info) ~callsite ~ret_pc =
  let parent_sp =
    match st.frames with [] -> stack_base | fr :: _ -> fr.vsp
  in
  if st.sp + f.Compile.fi_max_stack > Array.length st.stack then
    grow_stack st (st.sp + f.Compile.fi_max_stack);
  let base = st.ltop in
  if base + f.Compile.fi_nslots > Array.length st.locals then
    grow_locals st (base + f.Compile.fi_nslots);
  let stack = st.stack and locals = st.locals in
  let sp = st.sp - f.Compile.fi_nargs in
  for j = 0 to f.Compile.fi_nargs - 1 do
    Array.unsafe_set locals (base + j) (Array.unsafe_get stack (sp + j))
  done;
  st.sp <- sp;
  st.frames <-
    { callsite;
      vsp = parent_sp - f.Compile.fi_frame_bytes;
      ret_pc;
      saved_base = st.lbase }
    :: st.frames;
  st.lbase <- base;
  st.ltop <- base + f.Compile.fi_nslots

let word_access st ~addr ~site ~loc =
  if addr < 0 then error loc "invalid address %d" addr;
  Machine.set_pc st.m site;
  st.tool.Tool.on_access ~addr ~len:8 ~kind:Tool.Read ~site;
  Machine.load_word st.m addr

let word_store st ~addr ~site ~loc v =
  if addr < 0 then error loc "invalid address %d" addr;
  Machine.set_pc st.m site;
  st.tool.Tool.on_access ~addr ~len:8 ~kind:Tool.Write ~site;
  Machine.store_word st.m addr v

let byte_read st ~addr ~site ~loc =
  if addr < 0 then error loc "invalid address %d" addr;
  Machine.set_pc st.m site;
  st.tool.Tool.on_access ~addr ~len:1 ~kind:Tool.Read ~site;
  Machine.load_byte st.m addr

let byte_write st ~addr ~site ~loc v =
  if addr < 0 then error loc "invalid address %d" addr;
  Machine.set_pc st.m site;
  st.tool.Tool.on_access ~addr ~len:1 ~kind:Tool.Write ~site;
  Machine.store_byte st.m addr v

(* Run [f] to completion (its arguments are already on the operand stack)
   and return its value.  Used for [main] and for [spawn] bodies; ordinary
   calls stay inside the dispatch loop. *)
let rec run_call st (f : Compile.func_info) ~callsite : int =
  push_frame st f ~callsite ~ret_pc:(-1);
  dispatch st st.code.Compile.instrs f.Compile.fi_entry

and dispatch st code i : int =
  match Array.unsafe_get code i with
  | Compile.Stmt (saddr, loc) ->
    let steps = st.steps + 1 in
    st.steps <- steps;
    if steps > st.step_limit then
      error loc "step limit exceeded (%d statements)" st.step_limit;
    Machine.set_pc st.m saddr;
    Machine.work st.m statement_cost;
    dispatch st code (i + 1)
  | Compile.Jmp t ->
    if st.buggy && t <= i then Machine.work st.m 1;
    dispatch st code t
  | Compile.Jz t ->
    let sp = st.sp - 1 in
    st.sp <- sp;
    dispatch st code (if Array.unsafe_get st.stack sp = 0 then t else i + 1)
  | Compile.Jnz t ->
    let sp = st.sp - 1 in
    st.sp <- sp;
    dispatch st code (if Array.unsafe_get st.stack sp <> 0 then t else i + 1)
  | Compile.Call (callee, callsite) ->
    push_frame st callee ~callsite ~ret_pc:(i + 1);
    dispatch st code callee.Compile.fi_entry
  | Compile.Spawn (callee, callsite) ->
    let threads = Machine.threads st.m in
    let parent = Threads.current threads in
    let tid = Threads.spawn threads ~name:callee.Compile.fi_name in
    Threads.set_current threads tid;
    let r =
      Fun.protect
        ~finally:(fun () ->
          Threads.exit_thread threads tid;
          Threads.set_current threads parent)
        (fun () -> run_call st callee ~callsite)
    in
    Array.unsafe_set st.stack st.sp r;
    st.sp <- st.sp + 1;
    dispatch st code (i + 1)
  | Compile.Ret -> (
    match st.frames with
    | fr :: rest ->
      st.frames <- rest;
      st.ltop <- st.lbase;
      st.lbase <- fr.saved_base;
      if fr.ret_pc < 0 then begin
        let sp = st.sp - 1 in
        st.sp <- sp;
        Array.unsafe_get st.stack sp
      end
      else dispatch st code fr.ret_pc
    | [] -> assert false)
  | Compile.Push n ->
    Array.unsafe_set st.stack st.sp n;
    st.sp <- st.sp + 1;
    dispatch st code (i + 1)
  | Compile.Pop ->
    st.sp <- st.sp - 1;
    dispatch st code (i + 1)
  | Compile.Load slot ->
    Array.unsafe_set st.stack st.sp
      (Array.unsafe_get st.locals (st.lbase + slot));
    st.sp <- st.sp + 1;
    dispatch st code (i + 1)
  | Compile.Store slot ->
    let sp = st.sp - 1 in
    st.sp <- sp;
    Array.unsafe_set st.locals (st.lbase + slot) (Array.unsafe_get st.stack sp);
    dispatch st code (i + 1)
  | Compile.Neg ->
    let stack = st.stack and top = st.sp - 1 in
    Array.unsafe_set stack top (-Array.unsafe_get stack top);
    dispatch st code (i + 1)
  | Compile.Not ->
    let stack = st.stack and top = st.sp - 1 in
    Array.unsafe_set stack top (of_bool (Array.unsafe_get stack top = 0));
    dispatch st code (i + 1)
  | Compile.Bool ->
    let stack = st.stack and top = st.sp - 1 in
    Array.unsafe_set stack top (of_bool (Array.unsafe_get stack top <> 0));
    dispatch st code (i + 1)
  | Compile.Add ->
    let stack = st.stack in
    let sp = st.sp - 1 in
    st.sp <- sp;
    Array.unsafe_set stack (sp - 1)
      (Array.unsafe_get stack (sp - 1) + Array.unsafe_get stack sp);
    dispatch st code (i + 1)
  | Compile.Sub ->
    let stack = st.stack in
    let sp = st.sp - 1 in
    st.sp <- sp;
    Array.unsafe_set stack (sp - 1)
      (Array.unsafe_get stack (sp - 1) - Array.unsafe_get stack sp);
    dispatch st code (i + 1)
  | Compile.Mul ->
    let stack = st.stack in
    let sp = st.sp - 1 in
    st.sp <- sp;
    Array.unsafe_set stack (sp - 1)
      (Array.unsafe_get stack (sp - 1) * Array.unsafe_get stack sp);
    dispatch st code (i + 1)
  | Compile.Div loc ->
    let stack = st.stack in
    let sp = st.sp - 1 in
    st.sp <- sp;
    let b = Array.unsafe_get stack sp in
    if b = 0 then error loc "division by zero";
    Array.unsafe_set stack (sp - 1) (Array.unsafe_get stack (sp - 1) / b);
    dispatch st code (i + 1)
  | Compile.Mod loc ->
    let stack = st.stack in
    let sp = st.sp - 1 in
    st.sp <- sp;
    let b = Array.unsafe_get stack sp in
    if b = 0 then error loc "modulo by zero";
    Array.unsafe_set stack (sp - 1) (Array.unsafe_get stack (sp - 1) mod b);
    dispatch st code (i + 1)
  | Compile.Lt ->
    let stack = st.stack in
    let sp = st.sp - 1 in
    st.sp <- sp;
    Array.unsafe_set stack (sp - 1)
      (of_bool (Array.unsafe_get stack (sp - 1) < Array.unsafe_get stack sp));
    dispatch st code (i + 1)
  | Compile.Le ->
    let stack = st.stack in
    let sp = st.sp - 1 in
    st.sp <- sp;
    Array.unsafe_set stack (sp - 1)
      (of_bool (Array.unsafe_get stack (sp - 1) <= Array.unsafe_get stack sp));
    dispatch st code (i + 1)
  | Compile.Gt ->
    let stack = st.stack in
    let sp = st.sp - 1 in
    st.sp <- sp;
    Array.unsafe_set stack (sp - 1)
      (of_bool (Array.unsafe_get stack (sp - 1) > Array.unsafe_get stack sp));
    dispatch st code (i + 1)
  | Compile.Ge ->
    let stack = st.stack in
    let sp = st.sp - 1 in
    st.sp <- sp;
    Array.unsafe_set stack (sp - 1)
      (of_bool (Array.unsafe_get stack (sp - 1) >= Array.unsafe_get stack sp));
    dispatch st code (i + 1)
  | Compile.Eq ->
    let stack = st.stack in
    let sp = st.sp - 1 in
    st.sp <- sp;
    Array.unsafe_set stack (sp - 1)
      (of_bool (Array.unsafe_get stack (sp - 1) = Array.unsafe_get stack sp));
    dispatch st code (i + 1)
  | Compile.Ne ->
    let stack = st.stack in
    let sp = st.sp - 1 in
    st.sp <- sp;
    Array.unsafe_set stack (sp - 1)
      (of_bool (Array.unsafe_get stack (sp - 1) <> Array.unsafe_get stack sp));
    dispatch st code (i + 1)
  | Compile.Band ->
    let stack = st.stack in
    let sp = st.sp - 1 in
    st.sp <- sp;
    Array.unsafe_set stack (sp - 1)
      (Array.unsafe_get stack (sp - 1) land Array.unsafe_get stack sp);
    dispatch st code (i + 1)
  | Compile.Bor ->
    let stack = st.stack in
    let sp = st.sp - 1 in
    st.sp <- sp;
    Array.unsafe_set stack (sp - 1)
      (Array.unsafe_get stack (sp - 1) lor Array.unsafe_get stack sp);
    dispatch st code (i + 1)
  | Compile.Bxor ->
    let stack = st.stack in
    let sp = st.sp - 1 in
    st.sp <- sp;
    Array.unsafe_set stack (sp - 1)
      (Array.unsafe_get stack (sp - 1) lxor Array.unsafe_get stack sp);
    dispatch st code (i + 1)
  | Compile.Shl ->
    let stack = st.stack in
    let sp = st.sp - 1 in
    st.sp <- sp;
    Array.unsafe_set stack (sp - 1)
      (Array.unsafe_get stack (sp - 1) lsl (Array.unsafe_get stack sp land 62));
    dispatch st code (i + 1)
  | Compile.Shr ->
    let stack = st.stack in
    let sp = st.sp - 1 in
    st.sp <- sp;
    Array.unsafe_set stack (sp - 1)
      (Array.unsafe_get stack (sp - 1) lsr (Array.unsafe_get stack sp land 62));
    dispatch st code (i + 1)
  | Compile.Bin_si (tag, s, n) ->
    Array.unsafe_set st.stack st.sp
      (binop tag (Array.unsafe_get st.locals (st.lbase + s)) n);
    st.sp <- st.sp + 1;
    dispatch st code (i + 1)
  | Compile.Bin_is (tag, n, s) ->
    Array.unsafe_set st.stack st.sp
      (binop tag n (Array.unsafe_get st.locals (st.lbase + s)));
    st.sp <- st.sp + 1;
    dispatch st code (i + 1)
  | Compile.Bin_ss (tag, s1, s2) ->
    let locals = st.locals and lbase = st.lbase in
    Array.unsafe_set st.stack st.sp
      (binop tag
         (Array.unsafe_get locals (lbase + s1))
         (Array.unsafe_get locals (lbase + s2)));
    st.sp <- st.sp + 1;
    dispatch st code (i + 1)
  | Compile.Bin_ti (tag, n) ->
    let stack = st.stack and top = st.sp - 1 in
    Array.unsafe_set stack top (binop tag (Array.unsafe_get stack top) n);
    dispatch st code (i + 1)
  | Compile.Bin_ts (tag, s) ->
    let stack = st.stack and top = st.sp - 1 in
    Array.unsafe_set stack top
      (binop tag (Array.unsafe_get stack top)
         (Array.unsafe_get st.locals (st.lbase + s)));
    dispatch st code (i + 1)
  | Compile.Index { addr = site; loc } ->
    let stack = st.stack in
    let sp = st.sp - 1 in
    st.sp <- sp;
    let idx = Array.unsafe_get stack sp in
    let base = Array.unsafe_get stack (sp - 1) in
    Array.unsafe_set stack (sp - 1)
      (word_access st ~addr:(base + (8 * idx)) ~site ~loc);
    dispatch st code (i + 1)
  | Compile.Store_idx { addr = site; loc } ->
    let stack = st.stack in
    let sp = st.sp - 3 in
    st.sp <- sp;
    let v = Array.unsafe_get stack (sp + 2) in
    let idx = Array.unsafe_get stack (sp + 1) in
    let base = Array.unsafe_get stack sp in
    word_store st ~addr:(base + (8 * idx)) ~site ~loc v;
    dispatch st code (i + 1)
  | Compile.Malloc { addr = site; loc } ->
    let top = st.sp - 1 in
    let size = st.stack.(top) in
    if size < 0 then error loc "malloc of negative size %d" size;
    Machine.set_pc st.m site;
    st.stack.(top) <- st.tool.Tool.malloc ~size ~ctx:(make_ctx st site);
    dispatch st code (i + 1)
  | Compile.Calloc { addr = site; loc } ->
    let sp = st.sp - 1 in
    st.sp <- sp;
    let size = st.stack.(sp) in
    let count = st.stack.(sp - 1) in
    if count < 0 || size < 0 then error loc "calloc with negative argument";
    let total = count * size in
    Machine.set_pc st.m site;
    let p = st.tool.Tool.malloc ~size:total ~ctx:(make_ctx st site) in
    (* zeroing is in-bounds by definition; modeled as one bulk operation *)
    Sparse_mem.fill (Machine.mem st.m) p total 0;
    Machine.work st.m total;
    st.stack.(sp - 1) <- p;
    dispatch st code (i + 1)
  | Compile.Free { addr = site; loc = _ } ->
    let top = st.sp - 1 in
    let ptr = st.stack.(top) in
    Machine.set_pc st.m site;
    st.tool.Tool.free ~ptr;
    st.stack.(top) <- 0;
    dispatch st code (i + 1)
  | Compile.Print parts ->
    let nvals =
      Array.fold_left
        (fun n p -> match p with Compile.Val -> n + 1 | Compile.Lit _ -> n)
        0 parts
    in
    let sp = st.sp - nvals in
    st.sp <- sp;
    let k = ref 0 in
    let rendered =
      Array.map
        (fun p ->
          match p with
          | Compile.Lit s -> s
          | Compile.Val ->
            let s = string_of_int st.stack.(sp + !k) in
            incr k;
            s)
        parts
    in
    Buffer.add_string st.buf (String.concat " " (Array.to_list rendered));
    Buffer.add_char st.buf '\n';
    st.stack.(sp) <- 0;
    st.sp <- sp + 1;
    dispatch st code (i + 1)
  | Compile.Input { addr = _; loc } ->
    let top = st.sp - 1 in
    let idx = st.stack.(top) in
    if idx < 0 || idx >= Array.length st.inputs then
      error loc "input index %d out of range (have %d)" idx
        (Array.length st.inputs);
    st.stack.(top) <- st.inputs.(idx);
    dispatch st code (i + 1)
  | Compile.Input_len ->
    Array.unsafe_set st.stack st.sp (Array.length st.inputs);
    st.sp <- st.sp + 1;
    dispatch st code (i + 1)
  | Compile.Rand { addr = _; loc } ->
    let top = st.sp - 1 in
    let n = st.stack.(top) in
    if n <= 0 then error loc "rand bound must be positive";
    st.stack.(top) <- Prng.int st.app_rng n;
    dispatch st code (i + 1)
  | Compile.Memset { addr = site; loc } ->
    let sp = st.sp - 2 in
    st.sp <- sp;
    let n = st.stack.(sp + 1) in
    let v = st.stack.(sp) in
    let p = st.stack.(sp - 1) in
    if n < 0 then error loc "memset with negative length";
    for j = 0 to n - 1 do
      byte_write st ~addr:(p + j) ~site ~loc (v land 0xff)
    done;
    st.stack.(sp - 1) <- 0;
    dispatch st code (i + 1)
  | Compile.Memcpy { addr = site; loc } ->
    let sp = st.sp - 2 in
    st.sp <- sp;
    let n = st.stack.(sp + 1) in
    let s = st.stack.(sp) in
    let d = st.stack.(sp - 1) in
    if n < 0 then error loc "memcpy with negative length";
    for j = 0 to n - 1 do
      let byte = byte_read st ~addr:(s + j) ~site ~loc in
      byte_write st ~addr:(d + j) ~site ~loc byte
    done;
    st.stack.(sp - 1) <- 0;
    dispatch st code (i + 1)
  | Compile.Load8 { addr = site; loc } ->
    let sp = st.sp - 1 in
    st.sp <- sp;
    let off = st.stack.(sp) in
    let p = st.stack.(sp - 1) in
    st.stack.(sp - 1) <- byte_read st ~addr:(p + off) ~site ~loc;
    dispatch st code (i + 1)
  | Compile.Store8 { addr = site; loc } ->
    let sp = st.sp - 2 in
    st.sp <- sp;
    let v = st.stack.(sp + 1) in
    let off = st.stack.(sp) in
    let p = st.stack.(sp - 1) in
    byte_write st ~addr:(p + off) ~site ~loc (v land 0xff);
    st.stack.(sp - 1) <- 0;
    dispatch st code (i + 1)
  | Compile.Sleep_ms { addr = _; loc } ->
    let top = st.sp - 1 in
    let ms = st.stack.(top) in
    if ms < 0 then error loc "sleep_ms with negative duration";
    Machine.work st.m (ms * (Cost.cycles_per_second / 1000));
    st.stack.(top) <- 0;
    dispatch st code (i + 1)
  | Compile.Work { addr = _; loc } ->
    let top = st.sp - 1 in
    let n = st.stack.(top) in
    if n < 0 then error loc "work with negative cycles";
    Machine.work st.m n;
    st.stack.(top) <- 0;
    dispatch st code (i + 1)
  | Compile.Str_err loc -> error loc "string literal used as a value"

let run ~machine ~tool ~program ?(inputs = [||]) ?(app_seed = 1)
    ?(step_limit = 50_000_000) () =
  let code = Compile.get program in
  let main =
    match Hashtbl.find_opt code.Compile.funcs "main" with
    | Some f -> f
    | None -> failwith "Vm.run: program has no main (did Sema run?)"
  in
  let st =
    { m = machine;
      tool;
      code;
      inputs;
      app_rng = Prng.create ~seed:app_seed;
      buf = Buffer.create 256;
      buggy = !buggy_cycles;
      frames = [];
      steps = 0;
      step_limit;
      stack = Array.make 1024 0;
      sp = 0;
      locals = Array.make 1024 0;
      lbase = 0;
      ltop = 0 }
  in
  Machine.set_backtrace_provider machine (fun () ->
      backtrace_of_frames st.frames (Machine.pc machine));
  let rv = run_call st main ~callsite:main.Compile.fi_addr in
  { Interp.output = Buffer.contents st.buf; return_value = rv; steps = st.steps }
