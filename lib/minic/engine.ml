type t = Interp | Vm

let to_string = function Interp -> "interp" | Vm -> "vm"

let of_string = function
  | "interp" -> Ok Interp
  | "vm" -> Ok Vm
  | s -> Error (Printf.sprintf "unknown engine %S (expected interp|vm)" s)

(* The process-wide default, set once by the CLI front-end before any
   executions run.  The compiled VM is the default; the interpreter stays
   available as the reference oracle. *)
let default = ref Vm

let set_default e = default := e
let current_default () = !default

let run ~engine ~machine ~tool ~program ?inputs ?app_seed ?step_limit () =
  match engine with
  | Interp -> Interp.run ~machine ~tool ~program ?inputs ?app_seed ?step_limit ()
  | Vm -> Vm.run ~machine ~tool ~program ?inputs ?app_seed ?step_limit ()

let precompile program = ignore (Compile.get program)
