(** The MiniC interpreter.

    Executes a checked program against a machine, a detection tool, and a
    driver-supplied input vector.  The interpreter is the simulation's
    "application process":

    - it maintains a simulated call stack (frame sizes from
      {!Program.frame_size}), which defines the stack offsets used in
      allocation context keys;
    - it publishes a backtrace provider on the machine, so tools can walk
      the live stack like glibc's [backtrace];
    - every word/byte access goes through {!Machine} (hence through the
      hardware watchpoints) and is also announced to the tool's
      [on_access] (the static-instrumentation channel ASan uses);
    - [malloc]/[free] route through the tool, exactly as LD_PRELOAD
      interposition would. *)

exception Runtime_error of string * Srcloc.t
(** Dynamic faults: division by zero, calling an integer as a pointer with a
    negative address, input index out of range, step-limit exhaustion, … *)

val stack_base : int
(** Simulated stack top: frame stack pointers grow down from here.  Shared
    with the bytecode VM so both engines derive identical stack offsets. *)

val statement_cost : int
(** Virtual cycles charged per executed statement, identical across
    engines. *)

type result = {
  output : string;     (** everything printed by the program *)
  return_value : int;  (** [main]'s return value (0 if none) *)
  steps : int;         (** statements executed *)
}

val run :
  machine:Machine.t ->
  tool:Tool.t ->
  program:Program.t ->
  ?inputs:int array ->
  ?app_seed:int ->
  ?step_limit:int ->
  unit ->
  result
(** Execute [main].  [inputs] feeds the [input(i)] builtin (default empty);
    [app_seed] seeds the program-visible [rand] builtin (default 1; distinct
    from the machine's tool-facing RNG); [step_limit] bounds execution
    (default 50 million statements). The tool's [at_exit] is NOT invoked —
    the harness owns end-of-execution handling so that it can also cover
    erroneous exits, as CSOD's Termination Handling Unit does. *)
