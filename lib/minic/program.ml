type unit_src = { file : string; module_name : string; source : string }

type error = { msg : string; loc : Srcloc.t }

type frame_info = { floc : Srcloc.t; in_func : string; in_module : string }

type cached = ..

type t = {
  funcs : (string, Ast.func) Hashtbl.t;
  order : Ast.func list;
  symtab : (int, frame_info) Hashtbl.t;
  frame_sizes : (string, int) Hashtbl.t;
  source_lines : int;
  mutable compiled : cached option;
}

let pp_error ppf e = Format.fprintf ppf "%a: %s" Srcloc.pp e.loc e.msg

let build_symtab funcs =
  let tab = Hashtbl.create 1024 in
  List.iter
    (fun (f : Ast.func) ->
      let record addr loc =
        Hashtbl.replace tab addr { floc = loc; in_func = f.fname; in_module = f.fmodule }
      in
      record f.faddr f.floc;
      Ast.iter_stmts (fun st -> record st.saddr st.sloc) f.body;
      Ast.iter_exprs (fun e -> record e.eaddr e.eloc) f.body)
    funcs;
  tab

let count_lines s = 1 + String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 0 s

let load units =
  try
    let counter = ref 0x400000 in
    let all_funcs =
      List.concat_map
        (fun u -> Parser.parse_unit ~counter ~file:u.file ~module_name:u.module_name u.source)
        units
    in
    match Sema.check all_funcs with
    | (_ :: _) as errs ->
      Error (List.map (fun (msg, loc) -> { msg; loc }) errs)
    | [] ->
      let funcs = Hashtbl.create 64 in
      List.iter (fun (f : Ast.func) -> Hashtbl.replace funcs f.fname f) all_funcs;
      let frame_sizes = Hashtbl.create 64 in
      List.iter
        (fun (f : Ast.func) ->
          let slots = List.length f.params + Ast.count_decls f.body in
          Hashtbl.replace frame_sizes f.fname (32 + (8 * slots)))
        all_funcs;
      Ok
        { funcs;
          order = all_funcs;
          symtab = build_symtab all_funcs;
          frame_sizes;
          source_lines =
            List.fold_left (fun acc u -> acc + count_lines u.source) 0 units;
          compiled = None }
  with
  | Lexer.Lex_error (msg, loc) -> Error [ { msg = "lexical error: " ^ msg; loc } ]
  | Parser.Parse_error (msg, loc) -> Error [ { msg = "parse error: " ^ msg; loc } ]

let load_exn units =
  match load units with
  | Ok t -> t
  | Error errs ->
    let msgs = List.map (fun e -> Format.asprintf "%a" pp_error e) errs in
    failwith ("Program.load: " ^ String.concat "; " msgs)

let func t name = Hashtbl.find_opt t.funcs name
let functions t = t.order

let frame_size t name =
  match Hashtbl.find_opt t.frame_sizes name with
  | Some n -> n
  | None -> invalid_arg ("Program.frame_size: unknown function " ^ name)

let frame_of_addr t addr = Hashtbl.find_opt t.symtab addr

let symbolize t addr =
  match frame_of_addr t addr with
  | Some fi -> Printf.sprintf "%s:%d (%s)" fi.floc.Srcloc.file fi.floc.Srcloc.line fi.in_func
  | None -> Printf.sprintf "0x%x" addr

let module_of_addr t addr =
  Option.map (fun fi -> fi.in_module) (frame_of_addr t addr)

let total_source_lines t = t.source_lines

let compiled t = t.compiled
let set_compiled t c = t.compiled <- Some c
