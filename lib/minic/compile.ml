(* AST -> flat bytecode.  Every variable reference is resolved to a frame
   slot at compile time (Sema has already rejected unbound names and
   duplicate declarations, so lexical resolution here is total), every
   jump target is a precomputed instruction index, and every instruction
   that can touch the machine carries the code address / source location
   the interpreter would have used — the VM replays the interpreter's
   set_pc / work / error sequence bit-identically. *)

type site = { addr : int; loc : Srcloc.t }

type print_part = Lit of string | Val

type func_info = {
  fi_name : string;
  fi_addr : int;          (* function entry code address (Ast.func.faddr) *)
  fi_nargs : int;
  fi_nslots : int;        (* params + declaration sites *)
  fi_frame_bytes : int;   (* Program.frame_size *)
  mutable fi_entry : int; (* instruction index of the body; patched *)
  mutable fi_max_stack : int;
      (* conservative bound on operand-stack growth while this function's
         own code runs (nested calls re-check at their own frame push), so
         the VM verifies capacity once per call and uses unchecked pushes
         everywhere else *)
}

(* operator tag for the fused operand-mode instructions; Div/Mod are
   excluded (they carry a location for the zero check) *)
type binop_tag =
  | TAdd | TSub | TMul
  | TLt | TLe | TGt | TGe | TEq | TNe
  | TBand | TBor | TBxor | TShl | TShr

type instr =
  (* control / frame *)
  | Stmt of int * Srcloc.t  (* statement prologue: saddr, loc for step limit *)
  | Jmp of int
  | Jz of int
  | Jnz of int
  | Call of func_info * int (* callee, callsite (call expression's eaddr) *)
  | Spawn of func_info * int
  | Ret
  (* operand stack *)
  | Push of int
  | Pop
  | Load of int             (* slot -> push *)
  | Store of int            (* pop -> slot *)
  (* pure operators *)
  | Neg
  | Not
  | Bool                    (* normalize top to 0/1 *)
  | Add | Sub | Mul
  | Div of Srcloc.t
  | Mod of Srcloc.t
  | Lt | Le | Gt | Ge | Eq | Ne
  | Band | Bor | Bxor | Shl | Shr
  (* fused operand modes (peephole): s = slot, i = immediate, t = stack top *)
  | Bin_si of binop_tag * int * int  (* locals[s] op imm -> push *)
  | Bin_is of binop_tag * int * int  (* imm op locals[s] -> push *)
  | Bin_ss of binop_tag * int * int  (* locals[s1] op locals[s2] -> push *)
  | Bin_ti of binop_tag * int        (* top op imm, in place *)
  | Bin_ts of binop_tag * int        (* top op locals[s], in place *)
  (* memory *)
  | Index of site           (* pop idx, base; push word at base + 8*idx *)
  | Store_idx of site       (* pop v, idx, base; store word *)
  (* builtins *)
  | Malloc of site
  | Calloc of site
  | Free of site
  | Print of print_part array
  | Input of site
  | Input_len
  | Rand of site
  | Memset of site
  | Memcpy of site
  | Load8 of site
  | Store8 of site
  | Sleep_ms of site
  | Work of site
  | Str_err of Srcloc.t     (* unreachable post-Sema; kept for safety *)

type code = {
  instrs : instr array;
  funcs : (string, func_info) Hashtbl.t;
}

(* growable emission buffer; tracks a linear (never-undercounting) bound
   on operand-stack depth for the function being compiled *)
type buf = {
  mutable arr : instr array;
  mutable len : int;
  mutable depth : int;
  mutable max_depth : int;
  mutable barrier : int;
      (* fusion fence: no peephole rewrite may consume instructions emitted
         before the most recently minted label, so every jump target stays
         the first instruction of the sequence it was minted for *)
}

(* net operand-stack effect of one instruction *)
let stack_effect = function
  | Push _ | Load _ | Input_len | Str_err _ -> 1
  | Pop | Store _ | Jz _ | Jnz _ -> -1
  | Add | Sub | Mul | Div _ | Mod _ | Lt | Le | Gt | Ge | Eq | Ne | Band
  | Bor | Bxor | Shl | Shr -> -1
  | Neg | Not | Bool -> 0
  | Bin_si _ | Bin_is _ | Bin_ss _ -> 1
  | Bin_ti _ | Bin_ts _ -> 0
  | Index _ -> -1
  | Store_idx _ -> -3
  | Malloc _ | Free _ | Input _ | Rand _ | Sleep_ms _ | Work _ -> 0
  | Calloc _ | Load8 _ -> -1
  | Memset _ | Memcpy _ | Store8 _ -> -2
  | Print parts ->
    1
    - Array.fold_left
        (fun n p -> match p with Val -> n + 1 | Lit _ -> n)
        0 parts
  | Call (f, _) | Spawn (f, _) -> 1 - f.fi_nargs
  | Stmt _ | Jmp _ | Ret -> 0

let emit b i =
  if b.len = Array.length b.arr then begin
    let arr = Array.make (2 * Array.length b.arr) Pop in
    Array.blit b.arr 0 arr 0 b.len;
    b.arr <- arr
  end;
  b.arr.(b.len) <- i;
  b.len <- b.len + 1;
  b.depth <- b.depth + stack_effect i;
  if b.depth > b.max_depth then b.max_depth <- b.depth

let here b =
  b.barrier <- b.len;
  b.len

(* emit a jump with an unknown target; returns the index to patch *)
let emit_hole b mk =
  emit b (mk (-1));
  b.len - 1

let patch b at target =
  b.arr.(at) <-
    (match b.arr.(at) with
    | Jmp _ -> Jmp target
    | Jz _ -> Jz target
    | Jnz _ -> Jnz target
    | _ -> assert false)

(* Constant evaluation for the fold below — must agree bit-for-bit with the
   VM's (and interpreter's) operator semantics. *)
let eval_tag tag a b =
  match tag with
  | TAdd -> a + b
  | TSub -> a - b
  | TMul -> a * b
  | TLt -> if a < b then 1 else 0
  | TLe -> if a <= b then 1 else 0
  | TGt -> if a > b then 1 else 0
  | TGe -> if a >= b then 1 else 0
  | TEq -> if a = b then 1 else 0
  | TNe -> if a <> b then 1 else 0
  | TBand -> a land b
  | TBor -> a lor b
  | TBxor -> a lxor b
  | TShl -> a lsl (b land 62)
  | TShr -> a lsr (b land 62)

(* Peephole: fuse a pure binary operator with the Push/Load instructions
   that produced its operands.  The operands are pure, so no machine
   interaction is skipped; virtual-cycle accounting is untouched.  Rewrites
   never cross [b.barrier], so every minted jump target still denotes the
   start of the sequence it was minted for. *)
let drop b n =
  let rec undo k =
    if k < n then begin
      b.len <- b.len - 1;
      b.depth <- b.depth - stack_effect b.arr.(b.len);
      undo (k + 1)
    end
  in
  undo 0

let emit_fused b tag =
  let len = b.len and bar = b.barrier in
  let fused =
    if len - 2 >= bar then
      match (b.arr.(len - 2), b.arr.(len - 1)) with
      | Push x, Push y -> Some (2, Push (eval_tag tag x y))
      | Load s, Push n -> Some (2, Bin_si (tag, s, n))
      | Push n, Load s -> Some (2, Bin_is (tag, n, s))
      | Load s1, Load s2 -> Some (2, Bin_ss (tag, s1, s2))
      | _, Push n -> Some (1, Bin_ti (tag, n))
      | _, Load s -> Some (1, Bin_ts (tag, s))
      | _ -> None
    else if len - 1 >= bar then
      match b.arr.(len - 1) with
      | Push n -> Some (1, Bin_ti (tag, n))
      | Load s -> Some (1, Bin_ts (tag, s))
      | _ -> None
    else None
  in
  match fused with
  | Some (n, i) ->
    drop b n;
    emit b i
  | None ->
    emit b
      (match tag with
      | TAdd -> Add
      | TSub -> Sub
      | TMul -> Mul
      | TLt -> Lt
      | TLe -> Le
      | TGt -> Gt
      | TGe -> Ge
      | TEq -> Eq
      | TNe -> Ne
      | TBand -> Band
      | TBor -> Bor
      | TBxor -> Bxor
      | TShl -> Shl
      | TShr -> Shr)

(* compile-time lexical environment: a stack of scopes, each mapping a
   name to its frame slot.  Mirrors the interpreter's scope chain. *)
type env = {
  mutable scopes : (string * int) list list;
  mutable next_slot : int;
}

let push_scope env = env.scopes <- [] :: env.scopes
let pop_scope env = env.scopes <- List.tl env.scopes

let declare env name =
  let slot = env.next_slot in
  env.next_slot <- slot + 1;
  (match env.scopes with
  | scope :: rest -> env.scopes <- ((name, slot) :: scope) :: rest
  | [] -> assert false);
  slot

let lookup env name =
  let rec go = function
    | [] -> invalid_arg ("Compile: unbound variable " ^ name) (* Sema-checked *)
    | scope :: rest -> (
      match List.assoc_opt name scope with Some s -> s | None -> go rest)
  in
  go env.scopes

(* break / continue jump holes of the innermost loop *)
type loop_ctx = { mutable breaks : int list; continue_to : int option; mutable continues : int list }

let site_of_expr (e : Ast.expr) = { addr = e.eaddr; loc = e.eloc }

let rec compile_expr b env funcs (e : Ast.expr) =
  match e.e with
  | Ast.Int n -> emit b (Push n)
  | Ast.Str _ -> emit b (Str_err e.eloc)
  | Ast.Var x -> emit b (Load (lookup env x))
  | Ast.Unop (Ast.Neg, a) ->
    compile_expr b env funcs a;
    emit b Neg
  | Ast.Unop (Ast.Not, a) ->
    compile_expr b env funcs a;
    emit b Not
  | Ast.Binop (Ast.LAnd, x, y) ->
    (* if truthy x then of_bool (truthy y) else 0 *)
    compile_expr b env funcs x;
    let to_false = emit_hole b (fun t -> Jz t) in
    compile_expr b env funcs y;
    emit b Bool;
    let to_end = emit_hole b (fun t -> Jmp t) in
    patch b to_false (here b);
    emit b (Push 0);
    patch b to_end (here b)
  | Ast.Binop (Ast.LOr, x, y) ->
    compile_expr b env funcs x;
    let to_true = emit_hole b (fun t -> Jnz t) in
    compile_expr b env funcs y;
    emit b Bool;
    let to_end = emit_hole b (fun t -> Jmp t) in
    patch b to_true (here b);
    emit b (Push 1);
    patch b to_end (here b)
  | Ast.Binop (op, x, y) -> (
    compile_expr b env funcs x;
    compile_expr b env funcs y;
    match op with
    | Ast.Div -> emit b (Div e.eloc)
    | Ast.Mod -> emit b (Mod e.eloc)
    | Ast.Add -> emit_fused b TAdd
    | Ast.Sub -> emit_fused b TSub
    | Ast.Mul -> emit_fused b TMul
    | Ast.Lt -> emit_fused b TLt
    | Ast.Le -> emit_fused b TLe
    | Ast.Gt -> emit_fused b TGt
    | Ast.Ge -> emit_fused b TGe
    | Ast.Eq -> emit_fused b TEq
    | Ast.Ne -> emit_fused b TNe
    | Ast.BAnd -> emit_fused b TBand
    | Ast.BOr -> emit_fused b TBor
    | Ast.BXor -> emit_fused b TBxor
    | Ast.Shl -> emit_fused b TShl
    | Ast.Shr -> emit_fused b TShr
    | Ast.LAnd | Ast.LOr -> assert false)
  | Ast.Index (p, i) ->
    compile_expr b env funcs p;
    compile_expr b env funcs i;
    emit b (Index (site_of_expr e))
  | Ast.Call (name, args) -> compile_call b env funcs e name args

and compile_call b env funcs (e : Ast.expr) name args =
  let s = site_of_expr e in
  let all () = List.iter (compile_expr b env funcs) args in
  match name with
  | "malloc" -> all (); emit b (Malloc s)
  | "calloc" -> all (); emit b (Calloc s)
  | "free" -> all (); emit b (Free s)
  | "print" ->
    let parts =
      List.map
        (fun (a : Ast.expr) ->
          match a.Ast.e with
          | Ast.Str str -> Lit str
          | _ ->
            compile_expr b env funcs a;
            Val)
        args
    in
    emit b (Print (Array.of_list parts))
  | "input" -> all (); emit b (Input s)
  | "input_len" -> emit b Input_len
  | "rand" -> all (); emit b (Rand s)
  | "memset" -> all (); emit b (Memset s)
  | "memcpy" -> all (); emit b (Memcpy s)
  | "load8" -> all (); emit b (Load8 s)
  | "store8" -> all (); emit b (Store8 s)
  | "sleep_ms" -> all (); emit b (Sleep_ms s)
  | "work" -> all (); emit b (Work s)
  | "spawn" -> (
    match args with
    | { Ast.e = Ast.Str target; _ } :: rest ->
      List.iter (compile_expr b env funcs) rest;
      emit b (Spawn (Hashtbl.find funcs target, e.eaddr))
    | _ -> invalid_arg "Compile: spawn without a function-name string" (* Sema-checked *))
  | _ ->
    all ();
    emit b (Call (Hashtbl.find funcs name, e.eaddr))

and compile_stmt b env funcs loop (stmt : Ast.stmt) =
  emit b (Stmt (stmt.saddr, stmt.sloc));
  match stmt.s with
  | Ast.Decl (x, e) ->
    compile_expr b env funcs e;
    emit b (Store (declare env x))
  | Ast.Assign (x, e) ->
    compile_expr b env funcs e;
    emit b (Store (lookup env x))
  | Ast.Store (p, i, e) ->
    compile_expr b env funcs p;
    compile_expr b env funcs i;
    compile_expr b env funcs e;
    emit b (Store_idx { addr = stmt.saddr; loc = stmt.sloc })
  | Ast.If (c, b1, b2) ->
    compile_expr b env funcs c;
    let to_else = emit_hole b (fun t -> Jz t) in
    compile_block b env funcs loop b1;
    let to_end = emit_hole b (fun t -> Jmp t) in
    patch b to_else (here b);
    compile_block b env funcs loop b2;
    patch b to_end (here b)
  | Ast.While (c, body) ->
    (* statement cost charged once on entry (above), not per iteration *)
    let l_cond = here b in
    compile_expr b env funcs c;
    let to_end = emit_hole b (fun t -> Jz t) in
    let ctx = { breaks = []; continue_to = Some l_cond; continues = [] } in
    compile_block b env funcs (Some ctx) body;
    emit b (Jmp l_cond);
    let l_end = here b in
    patch b to_end l_end;
    List.iter (fun at -> patch b at l_end) ctx.breaks
  | Ast.For (init, cond, step, body) ->
    push_scope env;
    compile_stmt b env funcs None init;
    let l_cond = here b in
    compile_expr b env funcs cond;
    let to_end = emit_hole b (fun t -> Jz t) in
    (* continue jumps to the step statement, not the condition *)
    let ctx = { breaks = []; continue_to = None; continues = [] } in
    compile_block b env funcs (Some ctx) body;
    let l_step = here b in
    List.iter (fun at -> patch b at l_step) ctx.continues;
    compile_stmt b env funcs None step;
    emit b (Jmp l_cond);
    let l_end = here b in
    patch b to_end l_end;
    List.iter (fun at -> patch b at l_end) ctx.breaks;
    pop_scope env
  | Ast.Return None ->
    emit b (Push 0);
    emit b Ret
  | Ast.Return (Some e) ->
    compile_expr b env funcs e;
    emit b Ret
  | Ast.Break -> (
    match loop with
    | Some ctx -> ctx.breaks <- emit_hole b (fun t -> Jmp t) :: ctx.breaks
    | None -> invalid_arg "Compile: break outside loop" (* Sema-checked *))
  | Ast.Continue -> (
    match loop with
    | Some ctx -> (
      match ctx.continue_to with
      | Some target -> emit b (Jmp target)
      | None -> ctx.continues <- emit_hole b (fun t -> Jmp t) :: ctx.continues)
    | None -> invalid_arg "Compile: continue outside loop")
  | Ast.Expr e ->
    compile_expr b env funcs e;
    emit b Pop

and compile_block b env funcs loop stmts =
  push_scope env;
  List.iter (compile_stmt b env funcs loop) stmts;
  pop_scope env

let compile (program : Program.t) : code =
  let order = Program.functions program in
  let funcs = Hashtbl.create 16 in
  List.iter
    (fun (f : Ast.func) ->
      let nargs = List.length f.params in
      Hashtbl.replace funcs f.fname
        { fi_name = f.fname;
          fi_addr = f.faddr;
          fi_nargs = nargs;
          fi_nslots = nargs + Ast.count_decls f.body;
          fi_frame_bytes = Program.frame_size program f.fname;
          fi_entry = -1;
          fi_max_stack = 0 })
    order;
  let b =
    { arr = Array.make 256 Pop; len = 0; depth = 0; max_depth = 0; barrier = 0 }
  in
  List.iter
    (fun (f : Ast.func) ->
      let fi = Hashtbl.find funcs f.fname in
      fi.fi_entry <- here b;
      b.depth <- 0;
      b.max_depth <- 0;
      let env = { scopes = []; next_slot = 0 } in
      push_scope env;
      List.iter (fun p -> ignore (declare env p)) f.params;
      compile_block b env funcs None f.body;
      (* falling off the end returns 0, as the interpreter's [Normal] does *)
      emit b (Push 0);
      emit b Ret;
      fi.fi_max_stack <- b.max_depth;
      assert (env.next_slot = fi.fi_nslots))
    order;
  { instrs = Array.sub b.arr 0 b.len; funcs }

type Program.cached += Code of code

(* Compile-once accessor.  Compilation is deterministic; a benign race
   between domains repeats the work but both results are equivalent, and
   each run threads a single consistent [code] value. *)
let get (program : Program.t) : code =
  match Program.compiled program with
  | Some (Code c) -> c
  | _ ->
    let c = compile program in
    Program.set_compiled program (Code c);
    c
