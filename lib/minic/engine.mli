(** Execution-engine selection.

    Two engines execute MiniC programs: the AST-walking interpreter
    ({!Interp}, the reference semantics) and the bytecode VM ({!Vm},
    compiled via {!Compile}, several times faster).  Both present the
    identical observable behaviour — virtual cycles, allocation/free
    stream, tool callbacks, PRNG draws, output, errors — so callers pick
    purely on speed versus pedigree.  The golden corpus and the
    differential sweep in the test suite enforce the equivalence. *)

type t = Interp | Vm

val to_string : t -> string
val of_string : string -> (t, string) result

val set_default : t -> unit
(** Set the process-wide default engine (used by [Execution.run] when no
    explicit engine is passed).  The CLI threads [--engine] through
    this. *)

val current_default : unit -> t
(** The current default; [Vm] unless overridden. *)

val run :
  engine:t ->
  machine:Machine.t ->
  tool:Tool.t ->
  program:Program.t ->
  ?inputs:int array ->
  ?app_seed:int ->
  ?step_limit:int ->
  unit ->
  Interp.result
(** Execute [main] on the chosen engine.  Same contract as {!Interp.run};
    both engines raise {!Interp.Runtime_error} for dynamic faults. *)

val precompile : Program.t -> unit
(** Force the program's bytecode into {!Program}'s compiled-code cache.
    Call before fanning executions out across domains so pool workers
    never race on the (unsynchronized) cache slot. *)
