(** Linked MiniC programs and their symbol tables.

    A program is built from one or more compilation units — typically an
    application unit plus "library" units carrying a different module tag
    (the paper's instrumented-versus-uninstrumented boundary).  Loading
    parses every unit with a single shared code-address counter, links the
    function namespace, runs the static checks, and builds the symbol table
    the reproduction's [addr2line] equivalent reads. *)

type t

type unit_src = {
  file : string;         (** source file name for diagnostics and reports *)
  module_name : string;  (** library tag, e.g. ["openssl"] or ["nginx"] *)
  source : string;
}

type error = { msg : string; loc : Srcloc.t }

val pp_error : Format.formatter -> error -> unit

val load : unit_src list -> (t, error list) result
(** Parse, link, and check.  Lexer/parser faults are reported as a
    single-element error list; semantic faults are accumulated. *)

val load_exn : unit_src list -> t
(** Like {!load} but raises [Failure] with the rendered errors. *)

val func : t -> string -> Ast.func option
val functions : t -> Ast.func list
(** In declaration order. *)

val frame_size : t -> string -> int
(** Bytes of simulated stack consumed by one activation of the function:
    a fixed 32-byte frame header plus 8 bytes per parameter and per [var]
    declaration.  Defines the stack offsets in context keys. *)

(** {1 Symbolization} *)

type frame_info = { floc : Srcloc.t; in_func : string; in_module : string }

val frame_of_addr : t -> int -> frame_info option
val symbolize : t -> int -> string
(** ["file:line (function)"], or ["0x<addr>"] when unknown — the paper's
    fallback when symbols are stripped. *)

val module_of_addr : t -> int -> string option

val total_source_lines : t -> int
(** Lines of MiniC across all units (the model's "LOC" for Table IV). *)

(** {1 Compiled-code cache}

    An execution engine may attach its compiled form of the program here so
    repeated executions (the fleet's bread and butter) skip recompilation.
    The slot is an extension point rather than a concrete type to keep
    [Program] free of a dependency on any particular engine. *)

type cached = ..

val compiled : t -> cached option

val set_compiled : t -> cached -> unit
(** Publish a compiled form.  Compilation is deterministic, so a benign
    race between domains at worst repeats the work; callers that fan out
    across domains should compile eagerly first (see
    [Execution.executor]). *)
