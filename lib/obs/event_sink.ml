type t = { write : string -> unit; mutable events : int }

let make write = { write; events = 0 }

let to_channel oc = make (fun line -> output_string oc line; output_char oc '\n')

let to_buffer buf = make (fun line -> Buffer.add_string buf line; Buffer.add_char buf '\n')

let events t = t.events

(* The installed sink is process-global: trace points are module-level
   functions with no handle to thread a sink through (mirroring how the
   paper's runtime logs from signal handlers).  [active] is the one-branch
   guard every instrumentation site checks before building fields. *)
let current : t option ref = ref None

let install t = current := Some t
let uninstall () = current := None
let active () = !current <> None

let emit name fields =
  match !current with
  | None -> ()
  | Some t ->
    t.events <- t.events + 1;
    t.write (Obs_json.to_string (`Assoc (("event", `String name) :: fields)))

let with_sink t f =
  let prev = !current in
  current := Some t;
  Fun.protect ~finally:(fun () -> current := prev) f
