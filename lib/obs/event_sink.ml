type t = { write : string -> unit; flush : unit -> unit; mutable events : int }

let make ?(flush = fun () -> ()) write = { write; flush; events = 0 }

let to_channel oc =
  make
    (fun line -> output_string oc line; output_char oc '\n')
    ~flush:(fun () -> flush oc)

let to_buffer buf =
  make (fun line -> Buffer.add_string buf line; Buffer.add_char buf '\n')

let events t = t.events
let flush t = t.flush ()

(* The installed sink is process-global: trace points are module-level
   functions with no handle to thread a sink through (mirroring how the
   paper's runtime logs from signal handlers).  [active] is the one-branch
   guard every instrumentation site checks before building fields. *)
let current : t option ref = ref None

let install t = current := Some t

(* Flushing on uninstall is the no-truncation guarantee: a JSONL file is
   complete up to its last newline the moment the sink is detached, even
   if the process later exits without closing the channel. *)
let uninstall () =
  (match !current with Some t -> t.flush () | None -> ());
  current := None

let active () = !current <> None

let flush_installed () = match !current with Some t -> t.flush () | None -> ()

(* A run killed by [exit] (a CLI error path, a test harness, a fleet driver
   hitting its deadline) must not leave the stream's final line buffered in
   a channel: whatever sink is installed at exit gets one last flush, so
   the on-disk JSONL is complete up to its last newline. *)
let () = at_exit flush_installed

let emit name fields =
  match !current with
  | None -> ()
  | Some t ->
    t.events <- t.events + 1;
    t.write (Obs_json.to_string (`Assoc (("event", `String name) :: fields)))

let with_sink t f =
  let prev = !current in
  current := Some t;
  Fun.protect
    ~finally:(fun () ->
      t.flush ();
      current := prev)
    f
