type domain_load = { slot : int; executed : int; busy_seconds : float }

type sample = {
  epoch : int;
  arrivals : int;
  detections : int;
  cumulative : int;
  users : int;
  cdf : float;
  store_contexts : int;
  patched : int;
      (* contexts whose accumulated evidence has crossed the code-less
         patching conviction threshold; 0 when no patch policy is active *)
  degraded : int;
  worker_crashes : int;
  faults : (string * int) list;
  snapshots : int;
  epoch_seconds : float;
  merge_seconds : float;
  observer_seconds : float;
  execs_per_sec : float;
  straggler_skew : float;
  telemetry : string;
  domains : domain_load list;
}

let schema = "csod.fleet.health/1"

let straggler_skew busy =
  let busy = List.filter (fun b -> b > 0.0) busy in
  match List.sort compare busy with
  | [] | [ _ ] -> 1.0
  | sorted ->
    let n = List.length sorted in
    let median = List.nth sorted (n / 2) in
    let slowest = List.nth sorted (n - 1) in
    if median <= 1e-9 then 1.0 else slowest /. median

(* ---- JSON ---- *)

let domain_json d : Obs_json.t =
  `Assoc
    [ ("domain", `Int d.slot); ("executed", `Int d.executed);
      ("busy_seconds", `Float d.busy_seconds) ]

let fields s =
  [ ("schema", `String schema); ("epoch", `Int s.epoch);
    ("arrivals", `Int s.arrivals); ("detections", `Int s.detections);
    ("cumulative", `Int s.cumulative); ("users", `Int s.users);
    ("cdf", `Float s.cdf); ("store_contexts", `Int s.store_contexts);
    ("patched", `Int s.patched);
    ("degraded", `Int s.degraded); ("worker_crashes", `Int s.worker_crashes);
    ("faults", `Assoc (List.map (fun (k, v) -> (k, `Int v)) s.faults));
    ("snapshots", `Int s.snapshots);
    ("epoch_seconds", `Float s.epoch_seconds);
    ("merge_seconds", `Float s.merge_seconds);
    ("observer_seconds", `Float s.observer_seconds);
    ("execs_per_sec", `Float s.execs_per_sec);
    ("straggler_skew", `Float s.straggler_skew);
    ("telemetry", `String s.telemetry);
    ("domains", `List (List.map domain_json s.domains)) ]

let to_json s : Obs_json.t =
  `Assoc (("event", `String "fleet.health") :: fields s)

let of_json json =
  let ( let* ) = Option.bind in
  let int k = Option.bind (Obs_json.member k json) Obs_json.to_int in
  let flt k = Option.bind (Obs_json.member k json) Obs_json.to_float in
  let* () =
    match Obs_json.member "schema" json with
    | Some (`String s) when s = schema -> Some ()
    | _ -> None
  in
  let* epoch = int "epoch" in
  let* arrivals = int "arrivals" in
  let* detections = int "detections" in
  let* cumulative = int "cumulative" in
  let* users = int "users" in
  let* cdf = flt "cdf" in
  let* store_contexts = int "store_contexts" in
  let* patched = int "patched" in
  let* degraded = int "degraded" in
  let* worker_crashes = int "worker_crashes" in
  let* snapshots = int "snapshots" in
  let* epoch_seconds = flt "epoch_seconds" in
  let* merge_seconds = flt "merge_seconds" in
  let* observer_seconds = flt "observer_seconds" in
  let* execs_per_sec = flt "execs_per_sec" in
  let* straggler_skew = flt "straggler_skew" in
  let* telemetry =
    match Obs_json.member "telemetry" json with
    | Some (`String s) -> Some s
    | _ -> None
  in
  let faults =
    match Obs_json.member "faults" json with
    | Some (`Assoc kvs) ->
      List.filter_map
        (fun (k, v) -> Option.map (fun n -> (k, n)) (Obs_json.to_int v))
        kvs
    | _ -> []
  in
  let* domains =
    match Obs_json.member "domains" json with
    | Some (`List items) ->
      let parse d =
        let i k = Option.bind (Obs_json.member k d) Obs_json.to_int in
        let* slot = i "domain" in
        let* executed = i "executed" in
        let* busy_seconds =
          Option.bind (Obs_json.member "busy_seconds" d) Obs_json.to_float
        in
        Some { slot; executed; busy_seconds }
      in
      let parsed = List.filter_map parse items in
      if List.length parsed = List.length items then Some parsed else None
    | _ -> None
  in
  Some
    { epoch; arrivals; detections; cumulative; users; cdf; store_contexts;
      patched; degraded; worker_crashes; faults; snapshots; epoch_seconds;
      merge_seconds; observer_seconds; execs_per_sec; straggler_skew;
      telemetry; domains }

(* ---- one-screen renderer ---- *)

let spark_levels = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                      "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                      "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline values =
  match values with
  | [] -> ""
  | _ ->
    let hi = List.fold_left max 1e-9 values in
    values
    |> List.map (fun v ->
           let i =
             int_of_float (v /. hi *. float_of_int (Array.length spark_levels))
           in
           spark_levels.(max 0 (min (Array.length spark_levels - 1) i)))
    |> String.concat ""

let bar ~width frac =
  let full = max 0 (min width (int_of_float (frac *. float_of_int width))) in
  String.concat ""
    (List.init width (fun i ->
         if i < full then "\xe2\x96\x88" else "\xe2\x96\x91"))

let fmt_seconds s =
  if s >= 1.0 then Printf.sprintf "%.2f s" s
  else Printf.sprintf "%.2f ms" (s *. 1e3)

let render ?(color = true) samples =
  let c code text = if color then code ^ text ^ "\x1b[0m" else text in
  let bold = c "\x1b[1m" and dim = c "\x1b[2m" in
  let good = c "\x1b[32m" and warn = c "\x1b[33m" in
  let b = Buffer.create 1024 in
  (match List.rev samples with
  | [] -> Buffer.add_string b "no health records yet\n"
  | last :: _ ->
    let det =
      Printf.sprintf "%d (CDF %4.1f%%)" last.cumulative (100.0 *. last.cdf)
    in
    let det = if last.cumulative > 0 then good det else dim det in
    Buffer.add_string b
      (Printf.sprintf "%s  epoch %d   users %d   detections %s   store %d%s\n"
         (bold "CSOD FLEET") last.epoch last.users det last.store_contexts
         (if last.patched > 0 then Printf.sprintf "   patched %d" last.patched
          else ""));
    let tail =
      let all = List.map (fun s -> s.cdf) samples in
      let n = List.length all in
      if n > 60 then List.filteri (fun i _ -> i >= n - 60) all else all
    in
    Buffer.add_string b
      (Printf.sprintf "cdf  %s\n" (sparkline tail));
    let skew_str = Printf.sprintf "%.2fx" last.straggler_skew in
    Buffer.add_string b
      (Printf.sprintf "rate %.0f execs/s   skew %s   telemetry %s   snapshots %d\n"
         last.execs_per_sec
         (if last.straggler_skew > 1.5 then warn skew_str else skew_str)
         last.telemetry last.snapshots);
    Buffer.add_string b
      (Printf.sprintf "cost epoch %s   merge %s   observer %s\n"
         (fmt_seconds last.epoch_seconds)
         (fmt_seconds last.merge_seconds)
         (fmt_seconds last.observer_seconds));
    let fault_str =
      String.concat "   "
        (Printf.sprintf "degraded %d" last.degraded
        :: Printf.sprintf "crashes %d" last.worker_crashes
        :: List.map (fun (k, v) -> Printf.sprintf "%s %d" k v) last.faults)
    in
    Buffer.add_string b (dim ("faults " ^ fault_str) ^ "\n");
    (match last.domains with
    | [] -> ()
    | doms ->
      let busiest =
        List.fold_left (fun m d -> max m d.busy_seconds) 1e-9 doms
      in
      Buffer.add_string b
        (dim "  dom   execs       busy   execs/s  load" ^ "\n");
      List.iter
        (fun d ->
          let rate =
            if d.busy_seconds <= 0.0 then 0.0
            else float_of_int d.executed /. d.busy_seconds
          in
          Buffer.add_string b
            (Printf.sprintf "  %3d   %5d   %8s   %6.0f/s  %s\n" d.slot
               d.executed
               (fmt_seconds d.busy_seconds)
               rate
               (bar ~width:24 (d.busy_seconds /. busiest))))
        doms));
  Buffer.contents b
