type prob_cause = Decay | Halve_on_watch | Throttle | Revive | Pin | Degrade

let prob_cause_name = function
  | Decay -> "decay"
  | Halve_on_watch -> "halve-on-watch"
  | Throttle -> "burst-throttle"
  | Revive -> "revive"
  | Pin -> "evidence-pin"
  | Degrade -> "degrade-canary-only"

let cause_code = function
  | Decay -> 0
  | Halve_on_watch -> 1
  | Throttle -> 2
  | Revive -> 3
  | Pin -> 4
  | Degrade -> 5

let cause_of_code = function
  | 0 -> Decay
  | 1 -> Halve_on_watch
  | 2 -> Throttle
  | 3 -> Revive
  | 4 -> Pin
  | _ -> Degrade

type kind =
  | Alloc of { index : int; addr : int; size : int; ctx : int; site : int; off : int }
  | Decision of {
      addr : int;
      ctx : int;
      prob : float;
      coin : bool;
      watched : bool;
      startup : bool;
    }
  | Watch of { addr : int; ctx : int }
  | Replace of { victim : int; victim_ctx : int; by : int; by_ctx : int }
  | Unwatch_free of { addr : int }
  | Free of { addr : int }
  | Trap of { addr : int; access : string; tid : int }
  | Canary_check of { addr : int; ok : bool }
  | Detection of { addr : int; ctx : int; source : string }
  | Prob of { ctx : int; cause : prob_cause; from_p : float; to_p : float }
  | Phase of { phase : string; start : int; stop : int }
  | Fault of { point : string }

type record = { seq : int; at : int; kind : kind }

(* Kind tags for the columnar ring. *)
let tag_alloc = 0
let tag_decision = 1
let tag_watch = 2
let tag_replace = 3
let tag_unwatch_free = 4
let tag_free = 5
let tag_trap = 6
let tag_canary_check = 7
let tag_detection = 8
let tag_prob = 9
let tag_phase = 10
let tag_fault = 11

(* Columnar ring: one flat column per field slot instead of a ring of
   [record] values.  A push is a seq bump plus a handful of unboxed array
   stores — no kind block, no record, no option box — so recording in the
   allocator hot path costs no allocation and no GC pressure.  [record]
   values are materialised only on the cold read path ([records]).

   Record [n] lives at slot [n mod cap]; once [seq] exceeds [cap] the
   oldest slots are overwritten in place, so
   [dropped = max 0 (seq - cap)].  Strings stored in [sa] are the
   caller's — in practice shared literals ("read", "watchpoint",
   phase names), so the store is a pointer write. *)
type t = {
  cap : int;
  tag : int array;
  at_ : int array;
  i0 : int array;
  i1 : int array;
  i2 : int array;
  i3 : int array;
  i4 : int array;
  i5 : int array;
  f0 : float array;
  f1 : float array;
  sa : string array;
  mutable seq : int; (* records ever emitted, = seq of the next record *)
  mutable allocs : int; (* Alloc records ever emitted: the 1-based index *)
  mutable detections : int;
}

let default_capacity = 65_536

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then
    invalid_arg "Flight_recorder.create: capacity must be positive";
  { cap = capacity;
    tag = Array.make capacity 0;
    at_ = Array.make capacity 0;
    i0 = Array.make capacity 0;
    i1 = Array.make capacity 0;
    i2 = Array.make capacity 0;
    i3 = Array.make capacity 0;
    i4 = Array.make capacity 0;
    i5 = Array.make capacity 0;
    f0 = Array.make capacity 0.;
    f1 = Array.make capacity 0.;
    sa = Array.make capacity "";
    seq = 0;
    allocs = 0;
    detections = 0 }

let capacity t = t.cap
let recorded t = t.seq
let dropped t = if t.seq > t.cap then t.seq - t.cap else 0
let alloc_count t = t.allocs
let detection_count t = t.detections

let kind_of_slot t s =
  let tag = t.tag.(s) in
  if tag = tag_alloc then
    Alloc
      { index = t.i0.(s); addr = t.i1.(s); size = t.i2.(s); ctx = t.i3.(s);
        site = t.i4.(s); off = t.i5.(s) }
  else if tag = tag_decision then
    Decision
      { addr = t.i0.(s); ctx = t.i1.(s); prob = t.f0.(s);
        coin = t.i2.(s) <> 0; watched = t.i3.(s) <> 0;
        startup = t.i4.(s) <> 0 }
  else if tag = tag_watch then Watch { addr = t.i0.(s); ctx = t.i1.(s) }
  else if tag = tag_replace then
    Replace
      { victim = t.i0.(s); victim_ctx = t.i1.(s); by = t.i2.(s);
        by_ctx = t.i3.(s) }
  else if tag = tag_unwatch_free then Unwatch_free { addr = t.i0.(s) }
  else if tag = tag_free then Free { addr = t.i0.(s) }
  else if tag = tag_trap then
    Trap { addr = t.i0.(s); access = t.sa.(s); tid = t.i1.(s) }
  else if tag = tag_canary_check then
    Canary_check { addr = t.i0.(s); ok = t.i1.(s) <> 0 }
  else if tag = tag_detection then
    Detection { addr = t.i0.(s); ctx = t.i1.(s); source = t.sa.(s) }
  else if tag = tag_prob then
    Prob
      { ctx = t.i0.(s); cause = cause_of_code t.i1.(s); from_p = t.f0.(s);
        to_p = t.f1.(s) }
  else if tag = tag_phase then
    Phase { phase = t.sa.(s); start = t.i0.(s); stop = t.i1.(s) }
  else Fault { point = t.sa.(s) }

let records t =
  let first = if t.seq > t.cap then t.seq - t.cap else 0 in
  let rec go n acc =
    if n < first then acc
    else
      let s = n mod t.cap in
      go (n - 1) ({ seq = n; at = t.at_.(s); kind = kind_of_slot t s } :: acc)
  in
  go (t.seq - 1) []

(* Process-global, like {!Event_sink}: the hooks live in module-level
   runtime code with no handle to thread a recorder through. *)
let current : t option ref = ref None

let install t = current := Some t
let uninstall () = current := None
let active () = !current <> None

let with_recorder t f =
  let prev = !current in
  current := Some t;
  Fun.protect ~finally:(fun () -> current := prev) f

(* Claim the next slot and write the two columns every record shares. *)
let slot t ~at tag =
  let s = t.seq mod t.cap in
  t.seq <- t.seq + 1;
  t.tag.(s) <- tag;
  t.at_.(s) <- at;
  s

(* ---- JSON export (used by the automatic dump-on-detection) ---- *)

let kind_fields = function
  | Alloc { index; addr; size; ctx; site; off } ->
    ( "alloc",
      [ ("index", `Int index); ("addr", `Int addr); ("size", `Int size);
        ("ctx", `Int ctx); ("site", `Int site); ("stack_offset", `Int off) ] )
  | Decision { addr; ctx; prob; coin; watched; startup } ->
    ( "decision",
      [ ("addr", `Int addr); ("ctx", `Int ctx); ("prob", `Float prob);
        ("coin", `Bool coin); ("watched", `Bool watched);
        ("startup", `Bool startup) ] )
  | Watch { addr; ctx } -> ("watch", [ ("addr", `Int addr); ("ctx", `Int ctx) ])
  | Replace { victim; victim_ctx; by; by_ctx } ->
    ( "replace",
      [ ("victim", `Int victim); ("victim_ctx", `Int victim_ctx);
        ("by", `Int by); ("by_ctx", `Int by_ctx) ] )
  | Unwatch_free { addr } -> ("unwatch_free", [ ("addr", `Int addr) ])
  | Free { addr } -> ("free", [ ("addr", `Int addr) ])
  | Trap { addr; access; tid } ->
    ("trap", [ ("addr", `Int addr); ("access", `String access); ("tid", `Int tid) ])
  | Canary_check { addr; ok } ->
    ("canary_check", [ ("addr", `Int addr); ("ok", `Bool ok) ])
  | Detection { addr; ctx; source } ->
    ( "detection",
      [ ("addr", `Int addr); ("ctx", `Int ctx); ("source", `String source) ] )
  | Prob { ctx; cause; from_p; to_p } ->
    ( "prob",
      [ ("ctx", `Int ctx); ("cause", `String (prob_cause_name cause));
        ("from", `Float from_p); ("to", `Float to_p) ] )
  | Phase { phase; start; stop } ->
    ("phase", [ ("phase", `String phase); ("start", `Int start); ("stop", `Int stop) ])
  | Fault { point } -> ("fault", [ ("point", `String point) ])

let record_to_json r : Obs_json.t =
  let name, fields = kind_fields r.kind in
  `Assoc (("kind", `String name) :: ("seq", `Int r.seq) :: ("at", `Int r.at) :: fields)

let dump_to_sink t =
  Event_sink.emit "flight.dump"
    [ ("recorded", `Int t.seq); ("dropped", `Int (dropped t));
      ("records", `List (List.map record_to_json (records t))) ]

(* ---- typed hooks ----

   Each is a single branch when no recorder is installed.  None of them
   reads the PRNG or advances the clock, so recording cannot perturb the
   simulated execution. *)

let alloc ~at ~addr ~size ~ctx ~site ~off =
  match !current with
  | None -> ()
  | Some t ->
    t.allocs <- t.allocs + 1;
    let s = slot t ~at tag_alloc in
    t.i0.(s) <- t.allocs;
    t.i1.(s) <- addr;
    t.i2.(s) <- size;
    t.i3.(s) <- ctx;
    t.i4.(s) <- site;
    t.i5.(s) <- off

let decision ~at ~addr ~ctx ~prob ~coin ~watched ~startup =
  match !current with
  | None -> ()
  | Some t ->
    let s = slot t ~at tag_decision in
    t.i0.(s) <- addr;
    t.i1.(s) <- ctx;
    t.f0.(s) <- prob;
    t.i2.(s) <- Bool.to_int coin;
    t.i3.(s) <- Bool.to_int watched;
    t.i4.(s) <- Bool.to_int startup

let watch ~at ~addr ~ctx =
  match !current with
  | None -> ()
  | Some t ->
    let s = slot t ~at tag_watch in
    t.i0.(s) <- addr;
    t.i1.(s) <- ctx

let replace ~at ~victim ~victim_ctx ~by ~by_ctx =
  match !current with
  | None -> ()
  | Some t ->
    let s = slot t ~at tag_replace in
    t.i0.(s) <- victim;
    t.i1.(s) <- victim_ctx;
    t.i2.(s) <- by;
    t.i3.(s) <- by_ctx

let unwatch_free ~at ~addr =
  match !current with
  | None -> ()
  | Some t -> (slot t ~at tag_unwatch_free |> fun s -> t.i0.(s) <- addr)

let free ~at ~addr =
  match !current with
  | None -> ()
  | Some t -> (slot t ~at tag_free |> fun s -> t.i0.(s) <- addr)

let trap ~at ~addr ~access ~tid =
  match !current with
  | None -> ()
  | Some t ->
    let s = slot t ~at tag_trap in
    t.i0.(s) <- addr;
    t.sa.(s) <- access;
    t.i1.(s) <- tid

let canary_check ~at ~addr ~ok =
  match !current with
  | None -> ()
  | Some t ->
    let s = slot t ~at tag_canary_check in
    t.i0.(s) <- addr;
    t.i1.(s) <- Bool.to_int ok

let detection ~at ~addr ~ctx ~source =
  match !current with
  | None -> ()
  | Some t ->
    t.detections <- t.detections + 1;
    let s = slot t ~at tag_detection in
    t.i0.(s) <- addr;
    t.i1.(s) <- ctx;
    t.sa.(s) <- source;
    (* The automatic dump: a detection is the moment the history matters,
       so the whole (bounded) ring goes to the event stream if one is on. *)
    if Event_sink.active () then dump_to_sink t

let prob ~at ~ctx ~cause ~from_p ~to_p =
  match !current with
  | None -> ()
  | Some t ->
    let s = slot t ~at tag_prob in
    t.i0.(s) <- ctx;
    t.i1.(s) <- cause_code cause;
    t.f0.(s) <- from_p;
    t.f1.(s) <- to_p

let phase ~name ~start ~stop =
  match !current with
  | None -> ()
  | Some t ->
    let s = slot t ~at:stop tag_phase in
    t.sa.(s) <- name;
    t.i0.(s) <- start;
    t.i1.(s) <- stop

let fault ~at ~point =
  match !current with
  | None -> ()
  | Some t -> (slot t ~at tag_fault |> fun s -> t.sa.(s) <- point)
