type prob_cause = Decay | Halve_on_watch | Throttle | Revive | Pin | Degrade

let prob_cause_name = function
  | Decay -> "decay"
  | Halve_on_watch -> "halve-on-watch"
  | Throttle -> "burst-throttle"
  | Revive -> "revive"
  | Pin -> "evidence-pin"
  | Degrade -> "degrade-canary-only"

type kind =
  | Alloc of { index : int; addr : int; size : int; ctx : int; site : int; off : int }
  | Decision of {
      addr : int;
      ctx : int;
      prob : float;
      coin : bool;
      watched : bool;
      startup : bool;
    }
  | Watch of { addr : int; ctx : int }
  | Replace of { victim : int; victim_ctx : int; by : int; by_ctx : int }
  | Unwatch_free of { addr : int }
  | Free of { addr : int }
  | Trap of { addr : int; access : string; tid : int }
  | Canary_check of { addr : int; ok : bool }
  | Detection of { addr : int; ctx : int; source : string }
  | Prob of { ctx : int; cause : prob_cause; from_p : float; to_p : float }
  | Phase of { phase : string; start : int; stop : int }
  | Fault of { point : string }

type record = { seq : int; at : int; kind : kind }

type t = {
  ring : record Ring.t;
  mutable seq : int; (* records ever emitted, = seq of the next record *)
  mutable allocs : int; (* Alloc records ever emitted: the 1-based index *)
  mutable dropped : int;
  mutable detections : int;
}

let default_capacity = 65_536

let create ?(capacity = default_capacity) () =
  { ring = Ring.create ~capacity; seq = 0; allocs = 0; dropped = 0; detections = 0 }

let capacity t = Ring.capacity t.ring
let records t = Ring.to_list t.ring
let recorded t = t.seq
let dropped t = t.dropped
let alloc_count t = t.allocs
let detection_count t = t.detections

(* Process-global, like {!Event_sink}: the hooks live in module-level
   runtime code with no handle to thread a recorder through. *)
let current : t option ref = ref None

let install t = current := Some t
let uninstall () = current := None
let active () = !current <> None

let with_recorder t f =
  let prev = !current in
  current := Some t;
  Fun.protect ~finally:(fun () -> current := prev) f

let push t ~at kind =
  let r = { seq = t.seq; at; kind } in
  t.seq <- t.seq + 1;
  if Ring.push_overwriting t.ring r <> None then t.dropped <- t.dropped + 1

let emit ~at kind = match !current with None -> () | Some t -> push t ~at kind

(* ---- JSON export (used by the automatic dump-on-detection) ---- *)

let kind_fields = function
  | Alloc { index; addr; size; ctx; site; off } ->
    ( "alloc",
      [ ("index", `Int index); ("addr", `Int addr); ("size", `Int size);
        ("ctx", `Int ctx); ("site", `Int site); ("stack_offset", `Int off) ] )
  | Decision { addr; ctx; prob; coin; watched; startup } ->
    ( "decision",
      [ ("addr", `Int addr); ("ctx", `Int ctx); ("prob", `Float prob);
        ("coin", `Bool coin); ("watched", `Bool watched);
        ("startup", `Bool startup) ] )
  | Watch { addr; ctx } -> ("watch", [ ("addr", `Int addr); ("ctx", `Int ctx) ])
  | Replace { victim; victim_ctx; by; by_ctx } ->
    ( "replace",
      [ ("victim", `Int victim); ("victim_ctx", `Int victim_ctx);
        ("by", `Int by); ("by_ctx", `Int by_ctx) ] )
  | Unwatch_free { addr } -> ("unwatch_free", [ ("addr", `Int addr) ])
  | Free { addr } -> ("free", [ ("addr", `Int addr) ])
  | Trap { addr; access; tid } ->
    ("trap", [ ("addr", `Int addr); ("access", `String access); ("tid", `Int tid) ])
  | Canary_check { addr; ok } ->
    ("canary_check", [ ("addr", `Int addr); ("ok", `Bool ok) ])
  | Detection { addr; ctx; source } ->
    ( "detection",
      [ ("addr", `Int addr); ("ctx", `Int ctx); ("source", `String source) ] )
  | Prob { ctx; cause; from_p; to_p } ->
    ( "prob",
      [ ("ctx", `Int ctx); ("cause", `String (prob_cause_name cause));
        ("from", `Float from_p); ("to", `Float to_p) ] )
  | Phase { phase; start; stop } ->
    ("phase", [ ("phase", `String phase); ("start", `Int start); ("stop", `Int stop) ])
  | Fault { point } -> ("fault", [ ("point", `String point) ])

let record_to_json r : Obs_json.t =
  let name, fields = kind_fields r.kind in
  `Assoc (("kind", `String name) :: ("seq", `Int r.seq) :: ("at", `Int r.at) :: fields)

let dump_to_sink t =
  Event_sink.emit "flight.dump"
    [ ("recorded", `Int t.seq); ("dropped", `Int t.dropped);
      ("records", `List (List.map record_to_json (records t))) ]

(* ---- typed hooks ----

   Each is a single branch when no recorder is installed.  None of them
   reads the PRNG or advances the clock, so recording cannot perturb the
   simulated execution. *)

let alloc ~at ~addr ~size ~ctx ~site ~off =
  match !current with
  | None -> ()
  | Some t ->
    t.allocs <- t.allocs + 1;
    push t ~at (Alloc { index = t.allocs; addr; size; ctx; site; off })

let decision ~at ~addr ~ctx ~prob ~coin ~watched ~startup =
  emit ~at (Decision { addr; ctx; prob; coin; watched; startup })

let watch ~at ~addr ~ctx = emit ~at (Watch { addr; ctx })

let replace ~at ~victim ~victim_ctx ~by ~by_ctx =
  emit ~at (Replace { victim; victim_ctx; by; by_ctx })

let unwatch_free ~at ~addr = emit ~at (Unwatch_free { addr })
let free ~at ~addr = emit ~at (Free { addr })
let trap ~at ~addr ~access ~tid = emit ~at (Trap { addr; access; tid })
let canary_check ~at ~addr ~ok = emit ~at (Canary_check { addr; ok })

let detection ~at ~addr ~ctx ~source =
  match !current with
  | None -> ()
  | Some t ->
    t.detections <- t.detections + 1;
    push t ~at (Detection { addr; ctx; source });
    (* The automatic dump: a detection is the moment the history matters,
       so the whole (bounded) ring goes to the event stream if one is on. *)
    if Event_sink.active () then dump_to_sink t

let prob ~at ~ctx ~cause ~from_p ~to_p =
  emit ~at (Prob { ctx; cause; from_p; to_p })

let phase ~name ~start ~stop = emit ~at:stop (Phase { phase = name; start; stop })
let fault ~at ~point = emit ~at (Fault { point })
