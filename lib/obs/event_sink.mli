(** Structured JSONL event sink.

    One JSON object per line, first field ["event"] naming the kind.  The
    runtime's trace points ({!Trace} in [csod_core]) and the telemetry
    snapshotter both emit here when a sink is installed; with none
    installed every emission site costs exactly one branch ({!active}).

    Events carry no wall-clock timestamps — callers include virtual-clock
    fields ([at_sec], [cycles]) instead, so two runs with the same seed
    produce byte-identical streams. *)

type t

val make : ?flush:(unit -> unit) -> (string -> unit) -> t
(** [make write] builds a sink from a line writer; [flush] (default a
    no-op) is called by {!uninstall}, {!with_sink} and {!flush}. *)

val to_channel : out_channel -> t
(** Lines are written to [oc] under the channel's own buffering; the
    sink's flush flushes [oc].  The caller owns and closes the channel. *)

val to_buffer : Buffer.t -> t

val events : t -> int
(** Number of events written through this sink. *)

val flush : t -> unit

(** {1 The process-global sink} *)

val install : t -> unit

val uninstall : unit -> unit
(** Detaches (and first flushes) the installed sink, so a JSONL file is
    never left truncated mid-line even if the process exits without
    closing the underlying channel. *)

val active : unit -> bool

val flush_installed : unit -> unit
(** Flush the installed sink, if any.  Registered with [at_exit] at module
    initialisation, so a process that exits mid-stream (killed run, CLI
    error path) never leaves a truncated final JSONL line in a buffered
    channel. *)

val emit : string -> (string * Obs_json.t) list -> unit
(** [emit name fields] writes [{"event": name, ...fields}] to the installed
    sink; a no-op when none is installed.  Callers on hot paths should
    check {!active} first so field lists are never built needlessly. *)

val with_sink : t -> (unit -> 'a) -> 'a
(** Install [t] for the duration of the callback, flushing it and
    restoring the previous sink afterwards (used by tests). *)
