(** Metrics registry: named monotonic counters, gauges and fixed-bucket
    histograms.

    Instrumented subsystems look their instruments up {e once} (at
    construction time) and then increment through the returned handle — a
    single mutable-field update, no hashing on the hot path.  The registry
    never touches the PRNG or the virtual clock, so enabling or exporting
    telemetry cannot perturb a simulated execution. *)

type t
(** A registry.  Each {!Machine.t} owns one (via its telemetry bundle), so
    concurrent simulations in one process never share instruments. *)

val create : unit -> t

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** Find-or-create by name. *)

val incr : counter -> unit
val add : counter -> int -> unit
(** Raises [Invalid_argument] on negative increments: counters are
    monotonic. *)

val count : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : t -> string -> gauge
val set : gauge -> int -> unit
val level : gauge -> int
val high_watermark : gauge -> int
(** Largest value ever set. *)

(** {1 Histograms} *)

type histogram

val default_bounds : int array
(** Powers-of-two-ish byte sizes, 16 .. 65536. *)

val histogram : t -> ?bounds:int array -> string -> histogram
(** Fixed upper-bound buckets plus a final overflow bucket.  [bounds] must
    be strictly increasing; it is only consulted on first creation. *)

val observe : histogram -> int -> unit
(** A value [v] lands in the first bucket with bound [>= v]. *)

val percentile : histogram -> float -> int
(** [percentile h q] (with [q] in [\[0, 1\]]) returns the upper bound of
    the bucket containing the [q]-th observation — the resolution a
    fixed-bucket histogram affords.  Values landing in the final
    (unbounded) bucket saturate to the largest finite bound; an empty
    histogram reports [0].  Raises [Invalid_argument] outside [\[0, 1\]]. *)

val observations : histogram -> int
val hist_sum : histogram -> int
val bucket_counts : histogram -> int array
(** Length [Array.length bounds + 1]. *)

val bucket_bounds : histogram -> int array

(** {1 Merging}

    Fleet-level aggregation: fold many per-execution registries into one.
    Counters sum; histogram bins, observation counts and sums add (so
    post-merge percentiles are recomputed over the union); a gauge's level
    is taken from the registry merged {e last} (the caller merges in seed
    order to keep this deterministic) and its high watermark is the max.
    Instruments missing from the destination are created. *)

val merge_into : dst:t -> src:t -> unit
(** [src] is untouched.  Raises [Invalid_argument] if the two registries
    define the same histogram with different bucket bounds. *)

(** {1 Export} *)

val counters_list : t -> (string * int) list
(** Sorted by name. *)

val gauges_list : t -> (string * int * int) list
(** [(name, value, high-watermark)], sorted by name. *)

val histograms_list : t -> histogram list

val to_json : t -> Obs_json.t
