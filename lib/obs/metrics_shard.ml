type t = {
  metrics : Metrics.t;
  profile : Profiler.t;
  (* gauge name -> (uid, level) of the highest-uid absorbed execution that
     defines the gauge.  Executions that never create a gauge leave no
     entry, matching the legacy merge (which only overwrites a level when
     the source registry defines the gauge). *)
  gauge_src : (string, int * int) Hashtbl.t;
  mutable absorbed : int;
  mutable snapshots : int;
}

let create () =
  { metrics = Metrics.create ();
    profile = Profiler.create ();
    gauge_src = Hashtbl.create 8;
    absorbed = 0;
    snapshots = 0 }

let note_gauge t name ~uid ~level =
  match Hashtbl.find_opt t.gauge_src name with
  | Some (u, _) when u > uid -> ()
  | _ -> Hashtbl.replace t.gauge_src name (uid, level)

let absorb t ~uid tele =
  let reg = Telemetry.metrics tele in
  List.iter
    (fun (name, level, _high) -> note_gauge t name ~uid ~level)
    (Metrics.gauges_list reg);
  Metrics.merge_into ~dst:t.metrics ~src:reg;
  Profiler.merge_into ~dst:t.profile ~src:(Telemetry.profiler tele);
  t.absorbed <- t.absorbed + 1;
  t.snapshots <- t.snapshots + Telemetry.snapshot_count tele

let absorbed t = t.absorbed
let snapshots t = t.snapshots

let merge_into ~dst ~src =
  Metrics.merge_into ~dst:dst.metrics ~src:src.metrics;
  Profiler.merge_into ~dst:dst.profile ~src:src.profile;
  Hashtbl.iter
    (fun name (uid, level) -> note_gauge dst name ~uid ~level)
    src.gauge_src;
  dst.absorbed <- dst.absorbed + src.absorbed;
  dst.snapshots <- dst.snapshots + src.snapshots

let reduce_into shards ~metrics ~profile =
  let n = Array.length shards in
  if n = 0 then 0
  else begin
    (* Pairwise tree: (0<-1) (2<-3) ..., then (0<-2) ..., log2 n rounds.
       Every step is a commutative sum plus a max-uid gauge resolution, so
       the reduction order cannot change the committed result. *)
    let stride = ref 1 in
    while !stride < n do
      let i = ref 0 in
      while !i + !stride < n do
        merge_into ~dst:shards.(!i) ~src:shards.(!i + !stride);
        i := !i + (2 * !stride)
      done;
      stride := !stride * 2
    done;
    let root = shards.(0) in
    Metrics.merge_into ~dst:metrics ~src:root.metrics;
    Profiler.merge_into ~dst:profile ~src:root.profile;
    (* Gauge fixup: the sum-merge above wrote each gauge's level from
       whatever execution the root shard happened to absorb last; restore
       the deterministic highest-uid winner.  [Metrics.set] cannot disturb
       the high watermark — the winner's level is bounded by its own high,
       already folded in.  Per-gauge entries are independent, but iterate
       in sorted name order anyway so the fixup itself is reproducible. *)
    Hashtbl.fold (fun name v acc -> (name, v) :: acc) root.gauge_src []
    |> List.sort compare
    |> List.iter (fun (name, (_uid, level)) ->
           Metrics.set (Metrics.gauge metrics name) level);
    root.absorbed
  end
