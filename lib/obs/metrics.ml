type counter = { c_name : string; mutable count : int }

type gauge = { g_name : string; mutable level : int; mutable high : int }

type histogram = {
  h_name : string;
  bounds : int array; (* strictly increasing upper bounds *)
  buckets : int array; (* length bounds + 1; last is the overflow bucket *)
  mutable observations : int;
  mutable sum : int;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16 }

(* ---- counters ---- *)

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; count = 0 } in
    Hashtbl.replace t.counters name c;
    c

let incr c = c.count <- c.count + 1

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters are monotonic";
  c.count <- c.count + n

let count c = c.count
let counter_name c = c.c_name

(* ---- gauges ---- *)

let gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; level = 0; high = 0 } in
    Hashtbl.replace t.gauges name g;
    g

let set g v =
  g.level <- v;
  if v > g.high then g.high <- v

let level g = g.level
let high_watermark g = g.high
let gauge_name g = g.g_name

(* ---- histograms ---- *)

let default_bounds = [| 16; 32; 64; 128; 256; 512; 1024; 4096; 16384; 65536 |]

let histogram t ?(bounds = default_bounds) name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
    Array.iteri
      (fun i b ->
        if i > 0 && b <= bounds.(i - 1) then
          invalid_arg "Metrics.histogram: bounds must be strictly increasing")
      bounds;
    let h =
      { h_name = name;
        bounds = Array.copy bounds;
        buckets = Array.make (Array.length bounds + 1) 0;
        observations = 0;
        sum = 0 }
    in
    Hashtbl.replace t.histograms name h;
    h

(* A value lands in the first bucket whose upper bound is >= the value;
   values above every bound land in the final overflow bucket. *)
let bucket_index h v =
  let n = Array.length h.bounds in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if v <= h.bounds.(mid) then go lo mid else go (mid + 1) hi
  in
  go 0 n

let observe h v =
  h.observations <- h.observations + 1;
  h.sum <- h.sum + v;
  let i = bucket_index h v in
  h.buckets.(i) <- h.buckets.(i) + 1

(* Bucketed percentile: the upper bound of the bucket holding the q-th
   observation.  Values in the final (unbounded) bucket saturate to the
   largest finite bound — the histogram retains no finer information. *)
let percentile h q =
  if q < 0.0 || q > 1.0 then invalid_arg "Metrics.percentile: q outside [0, 1]";
  let n_bounds = Array.length h.bounds in
  if h.observations = 0 || n_bounds = 0 then 0
  else begin
    let target = max 1 (int_of_float (ceil (q *. float_of_int h.observations))) in
    let rec go i cum =
      if i >= Array.length h.buckets then h.bounds.(n_bounds - 1)
      else
        let cum = cum + h.buckets.(i) in
        if cum >= target then h.bounds.(min i (n_bounds - 1)) else go (i + 1) cum
    in
    go 0 0
  end

let observations h = h.observations
let hist_sum h = h.sum
let bucket_counts h = Array.copy h.buckets
let bucket_bounds h = Array.copy h.bounds
let histogram_name h = h.h_name

(* ---- merge ---- *)

(* Fold [src] into [dst], instrument by instrument.  Counters and histogram
   bins are plain sums, so merging is associative and commutative; gauges
   are not (a gauge is "the level right now"), so the caller fixes the
   order — the fleet merges per-user registries in seed order, making
   "last writer wins" deterministic. *)
let merge_into ~dst ~src =
  Hashtbl.iter
    (fun name (c : counter) -> add (counter dst name) c.count)
    src.counters;
  Hashtbl.iter
    (fun name (g : gauge) ->
      let d = gauge dst name in
      d.level <- g.level;
      if g.high > d.high then d.high <- g.high)
    src.gauges;
  Hashtbl.iter
    (fun name (h : histogram) ->
      let d = histogram dst ~bounds:h.bounds name in
      if d.bounds <> h.bounds then
        invalid_arg
          (Printf.sprintf "Metrics.merge_into: histogram %S bounds differ" name);
      Array.iteri (fun i n -> d.buckets.(i) <- d.buckets.(i) + n) h.buckets;
      d.observations <- d.observations + h.observations;
      d.sum <- d.sum + h.sum)
    src.histograms

(* ---- export ---- *)

let sorted_by_name name tbl =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.sort (fun a b -> String.compare (name a) (name b))

let counters_list t =
  List.map (fun c -> (c.c_name, c.count)) (sorted_by_name counter_name t.counters)

let gauges_list t =
  List.map (fun g -> (g.g_name, g.level, g.high)) (sorted_by_name gauge_name t.gauges)

let histograms_list t = sorted_by_name histogram_name t.histograms

let to_json t : Obs_json.t =
  let hist_json h =
    let cells = ref [] in
    Array.iteri
      (fun i n ->
        let label =
          if i < Array.length h.bounds then Printf.sprintf "le_%d" h.bounds.(i)
          else "inf"
        in
        cells := (label, `Int n) :: !cells)
      h.buckets;
    `Assoc
      [ ("observations", `Int h.observations); ("sum", `Int h.sum);
        ("p50", `Int (percentile h 0.50)); ("p90", `Int (percentile h 0.90));
        ("p99", `Int (percentile h 0.99));
        ("buckets", `Assoc (List.rev !cells)) ]
  in
  `Assoc
    [ ("counters", `Assoc (List.map (fun (k, v) -> (k, `Int v)) (counters_list t)));
      ("gauges",
       `Assoc
         (List.map
            (fun (k, level, high) ->
              (k, `Assoc [ ("value", `Int level); ("high", `Int high) ]))
            (gauges_list t)));
      ("histograms",
       `Assoc (List.map (fun h -> (h.h_name, hist_json h)) (histograms_list t))) ]
