(** Per-domain telemetry shard for fleet aggregation.

    The fleet's legacy aggregation path merges every execution's registry
    into one aggregate at the epoch barrier — a serial, O(users) pass in
    the main domain.  A shard moves that work into the workers: each
    domain owns a private shard and {!absorb}s each execution's telemetry
    as it completes (lock-free — the shard is domain-local by
    construction), so the barrier only has to reduce [domains] shards.

    The subtlety is gauges.  Counters, histogram bins and profiler cells
    are commutative sums, but a gauge's merged level is
    last-writer-wins, and the legacy path defines "last" as {e highest
    uid} (the barrier merges in uid order).  Workers absorb in completion
    order — scheduling-dependent — so each shard also remembers, per
    gauge, the level written by the highest-uid execution it absorbed.
    {!reduce_into} resolves the winners across shards and re-applies
    their levels after the sum-merge, making the committed aggregate
    bit-identical to the legacy path for any domain count and any
    scheduling (pinned by the shard-vs-global equivalence tests in
    [test_fleet]). *)

type t

val create : unit -> t

val absorb : t -> uid:int -> Telemetry.t -> unit
(** Fold one execution's bundle into the shard (worker-domain local, no
    synchronisation): metrics and profiler merge in, snapshot counts add,
    and every gauge's [(uid, level)] is recorded if [uid] beats the
    shard's current winner for that gauge. *)

val absorbed : t -> int
(** Executions absorbed (after {!reduce_into}: across all reduced shards). *)

val snapshots : t -> int
(** Total telemetry snapshots emitted by absorbed executions. *)

val merge_into : dst:t -> src:t -> unit
(** Shard-level reduction step: sum-merge [src]'s registries into [dst]
    and keep the higher-uid gauge winner per name.  [src] is untouched. *)

val reduce_into : t array -> metrics:Metrics.t -> profile:Profiler.t -> int
(** Pairwise tree-reduce the shards (mutating them), commit the result
    into the fleet aggregate, then overwrite each gauge's level with its
    highest-uid winner — the step that restores the legacy uid-ordered
    merge semantics.  Returns the total number of executions absorbed.
    An empty array commits nothing and returns 0. *)
