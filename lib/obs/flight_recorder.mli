(** Flight recorder: a bounded, always-on ring of compact lifecycle records.

    Where {!Event_sink} streams events out of the process as they happen,
    the flight recorder keeps the {e recent} history in memory — a
    fixed-capacity {!Ring} whose oldest records are overwritten, charged
    O(1) per hook — so that when a detection fires (or a bug is missed)
    the object's whole life (alloc → watch → evict → trap → canary → free)
    and its context's probability timeline (decays, halvings, burst
    throttles, revivals, evidence pins) can be reconstructed post-mortem.

    The recorder never draws randomness and never advances the virtual
    clock: installing one cannot change what a simulated execution does,
    only what it can tell you afterwards.  Timestamps ([at]) are virtual
    cycles read by the hook's caller.

    The ring is dumped automatically to the installed {!Event_sink} (as a
    single ["flight.dump"] event) whenever a detection is recorded, and on
    demand via {!dump_to_sink} or {!records}. *)

(** {1 Records} *)

type prob_cause = Decay | Halve_on_watch | Throttle | Revive | Pin | Degrade

val prob_cause_name : prob_cause -> string

type kind =
  | Alloc of { index : int; addr : int; size : int; ctx : int; site : int; off : int }
      (** [index] is the 1-based global allocation index — the same
          numbering the {!Oracle} uses, so ground truth and recording can
          be correlated even though tool padding shifts addresses. *)
  | Decision of {
      addr : int;
      ctx : int;
      prob : float;
      coin : bool;
      watched : bool;
      startup : bool;
    }
      (** One sampling outcome.  [coin] is the raw flip ([startup] =
          installed due to availability, no coin was flipped); [coin]
          true with [watched] false means the object won the flip but no
          watchpoint slot yielded to it. *)
  | Watch of { addr : int; ctx : int }  (** watchpoint installed *)
  | Replace of { victim : int; victim_ctx : int; by : int; by_ctx : int }
      (** policy preemption: [victim] lost its watchpoint to [by] *)
  | Unwatch_free of { addr : int }  (** watchpoint removed because freed *)
  | Free of { addr : int }
  | Trap of { addr : int; access : string; tid : int }  (** ["read"]/["write"] *)
  | Canary_check of { addr : int; ok : bool }
  | Detection of { addr : int; ctx : int; source : string }
  | Prob of { ctx : int; cause : prob_cause; from_p : float; to_p : float }
      (** a context's sampling probability changed *)
  | Phase of { phase : string; start : int; stop : int }
      (** one outermost profiler-phase interval, in cycles *)
  | Fault of { point : string }
      (** an injected fault fired at this point (see {!Fault_plan}) *)

type record = { seq : int; at : int; kind : kind }
(** [seq] is the global emission number (monotonic even across ring
    overwrites); [at] the virtual-clock cycle count when recorded. *)

(** {1 The recorder} *)

type t

val default_capacity : int

val create : ?capacity:int -> unit -> t
(** A fresh recorder holding at most [capacity] (default
    {!default_capacity}) records. *)

val capacity : t -> int
val records : t -> record list
(** Oldest-first contents of the ring. *)

val recorded : t -> int
(** Records ever emitted, including overwritten ones. *)

val dropped : t -> int
(** Records lost to ring overwrites ([recorded - dropped] <= capacity). *)

val alloc_count : t -> int
val detection_count : t -> int

val record_to_json : record -> Obs_json.t
val dump_to_sink : t -> unit
(** Emit the ring's contents as one ["flight.dump"] event to the installed
    {!Event_sink}; a no-op when no sink is installed. *)

(** {1 The process-global recorder} *)

val install : t -> unit
val uninstall : unit -> unit
val active : unit -> bool
val with_recorder : t -> (unit -> 'a) -> 'a
(** Install [t] for the duration of the callback, restoring the previous
    recorder afterwards. *)

(** {1 Hooks}

    Each is a no-op costing one branch when no recorder is installed.
    Hot-path callers should check {!active} before computing arguments. *)

val alloc : at:int -> addr:int -> size:int -> ctx:int -> site:int -> off:int -> unit
val decision :
  at:int -> addr:int -> ctx:int -> prob:float -> coin:bool -> watched:bool ->
  startup:bool -> unit
val watch : at:int -> addr:int -> ctx:int -> unit
val replace : at:int -> victim:int -> victim_ctx:int -> by:int -> by_ctx:int -> unit
val unwatch_free : at:int -> addr:int -> unit
val free : at:int -> addr:int -> unit
val trap : at:int -> addr:int -> access:string -> tid:int -> unit
val canary_check : at:int -> addr:int -> ok:bool -> unit
val detection : at:int -> addr:int -> ctx:int -> source:string -> unit
(** Also triggers the automatic {!dump_to_sink} when an event sink is
    active. *)

val prob : at:int -> ctx:int -> cause:prob_cause -> from_p:float -> to_p:float -> unit
val phase : name:string -> start:int -> stop:int -> unit
val fault : at:int -> point:string -> unit
