(* Chrome trace-event JSON from flight-recorder records.

   The output is the "JSON object format": {"traceEvents": [...]} with
   phase intervals as complete ("X") slices, object lifecycles as async
   ("b"/"n"/"e") spans keyed by object address, context probabilities as
   counter ("C") tracks, and detections as global instants ("i").  Both
   chrome://tracing and ui.perfetto.dev open it directly. *)

open Flight_recorder

let runtime_pid = 0
let objects_pid = 1

let us_of ~cycles_per_second cycles =
  float_of_int cycles /. float_of_int cycles_per_second *. 1e6

let event ?(args = []) ~name ~ph ~ts ~pid fields : Obs_json.t =
  `Assoc
    (( [ ("name", `String name); ("ph", `String ph); ("ts", `Float ts);
         ("pid", `Int pid) ]
     @ fields
     @ match args with [] -> [] | _ -> [ ("args", `Assoc args) ] ))

let metadata ~name ~pid ~value : Obs_json.t =
  `Assoc
    [ ("name", `String name); ("ph", `String "M"); ("pid", `Int pid);
      ("ts", `Float 0.0); ("args", `Assoc [ ("name", `String value) ]) ]

let obj_name addr = Printf.sprintf "obj 0x%x" addr
let obj_id addr = `String (Printf.sprintf "0x%x" addr)

(* Objects worth an async track: anything beyond a plain alloc/free pair,
   otherwise large runs flood the trace with thousands of silent spans. *)
let interesting_addrs recs =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun r ->
      match r.kind with
      | Watch { addr; _ } | Replace { victim = addr; _ }
      | Trap { addr; _ } | Detection { addr; _ } ->
        Hashtbl.replace tbl addr ()
      | Canary_check { addr; ok = false } -> Hashtbl.replace tbl addr ()
      | _ -> ())
    recs;
  tbl

let async ~interest ~us addr r ~name ~ph ?(args = []) () =
  if Hashtbl.mem interest addr then
    Some
      (event ~name ~ph ~ts:(us r.at) ~pid:objects_pid
         [ ("cat", `String "object"); ("id", obj_id addr); ("tid", `Int 0) ]
         ~args)
  else None

let to_json ~cycles_per_second recs =
  let us = us_of ~cycles_per_second in
  let interest = interesting_addrs recs in
  let last_at = List.fold_left (fun acc r -> max acc r.at) 0 recs in
  let open_spans = Hashtbl.create 16 in
  let events =
    List.filter_map
      (fun r ->
        match r.kind with
        | Phase { phase; start; stop } ->
          Some
            (event ~name:phase ~ph:"X" ~ts:(us start) ~pid:runtime_pid
               [ ("cat", `String "phase"); ("tid", `Int 0);
                 ("dur", `Float (us (stop - start))) ])
        | Alloc { addr; index; size; ctx; _ } ->
          if Hashtbl.mem interest addr then Hashtbl.replace open_spans addr ();
          async ~interest ~us addr r ~name:(obj_name addr) ~ph:"b"
            ~args:[ ("index", `Int index); ("size", `Int size); ("ctx", `Int ctx) ]
            ()
        | Free { addr } ->
          Hashtbl.remove open_spans addr;
          async ~interest ~us addr r ~name:(obj_name addr) ~ph:"e" ()
        | Decision { addr; prob; watched; _ } ->
          async ~interest ~us addr r
            ~name:
              (Printf.sprintf "decision p=%.3f%% -> %s" (prob *. 100.)
                 (if watched then "watch" else "skip"))
            ~ph:"n" ()
        | Watch { addr; _ } ->
          async ~interest ~us addr r ~name:"watchpoint installed" ~ph:"n" ()
        | Replace { victim; by; _ } ->
          async ~interest ~us victim r
            ~name:(Printf.sprintf "evicted by 0x%x" by)
            ~ph:"n" ()
        | Unwatch_free { addr } ->
          async ~interest ~us addr r ~name:"watchpoint removed (free)" ~ph:"n" ()
        | Trap { addr; access; tid } ->
          async ~interest ~us addr r
            ~name:(Printf.sprintf "TRAP %s (tid %d)" access tid)
            ~ph:"n" ()
        | Canary_check { addr; ok } ->
          async ~interest ~us addr r
            ~name:(if ok then "canary ok" else "canary CORRUPT")
            ~ph:"n" ()
        | Detection { addr; source; _ } ->
          Some
            (event
               ~name:(Printf.sprintf "DETECTION via %s: obj 0x%x" source addr)
               ~ph:"i" ~ts:(us r.at) ~pid:runtime_pid
               [ ("cat", `String "detection"); ("tid", `Int 0); ("s", `String "g") ])
        | Prob { ctx; to_p; _ } ->
          Some
            (event
               ~name:(Printf.sprintf "ctx#%d prob" ctx)
               ~ph:"C" ~ts:(us r.at) ~pid:runtime_pid
               [ ("tid", `Int 0) ]
               ~args:[ ("percent", `Float (to_p *. 100.)) ])
        | Fault { point } ->
          Some
            (event
               ~name:(Printf.sprintf "FAULT injected: %s" point)
               ~ph:"i" ~ts:(us r.at) ~pid:runtime_pid
               [ ("cat", `String "fault"); ("tid", `Int 0); ("s", `String "g") ]))
      recs
  in
  (* Close spans still open at the end of the recording so viewers never
     see a dangling async begin. *)
  let closers =
    Hashtbl.fold
      (fun addr () acc ->
        event ~name:(obj_name addr) ~ph:"e" ~ts:(us last_at) ~pid:objects_pid
          [ ("cat", `String "object"); ("id", obj_id addr); ("tid", `Int 0) ]
        :: acc)
      open_spans []
  in
  `Assoc
    [ ( "traceEvents",
        `List
          (metadata ~name:"process_name" ~pid:runtime_pid ~value:"csod runtime"
           :: metadata ~name:"process_name" ~pid:objects_pid ~value:"heap objects"
           :: (events @ closers)) );
      ("displayTimeUnit", `String "ms") ]

let to_string ~cycles_per_second recs =
  Obs_json.to_string (to_json ~cycles_per_second recs)

(* ---- fleet epoch spans ----

   Where the single-execution export above runs on the virtual clock, the
   fleet spans are wall time: the point is to see real stragglers and
   merge stalls.  Duration ("B"/"E") pairs on one process, one thread per
   pool worker plus a barrier track, as the issue tracker for a parallel
   run. *)

let fleet_pid = 2

type fleet_span = {
  track : int; (* thread id: worker slot, or [domains] for the barrier *)
  name : string;
  start_s : float; (* wall seconds relative to the run start *)
  stop_s : float;
  args : (string * Obs_json.t) list;
}

let thread_name ~pid ~tid ~value : Obs_json.t =
  `Assoc
    [ ("name", `String "thread_name"); ("ph", `String "M"); ("pid", `Int pid);
      ("tid", `Int tid); ("ts", `Float 0.0);
      ("args", `Assoc [ ("name", `String value) ]) ]

let fleet_spans_to_json ~domains spans =
  let ev ~name ~ph ~ts ~tid args =
    ( ts,
      event ~name ~ph ~ts ~pid:fleet_pid [ ("tid", `Int tid) ] ~args )
  in
  let events =
    List.concat_map
      (fun s ->
        let ts0 = s.start_s *. 1e6 and ts1 = s.stop_s *. 1e6 in
        [ ev ~name:s.name ~ph:"B" ~ts:ts0 ~tid:s.track s.args;
          ev ~name:s.name ~ph:"E" ~ts:ts1 ~tid:s.track [] ])
      spans
    (* Same-track spans never overlap (a worker runs one chunk at a time),
       so sorting by timestamp yields properly nested B/E pairs. *)
    |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
  in
  let threads =
    List.init domains (fun tid ->
        thread_name ~pid:fleet_pid ~tid ~value:(Printf.sprintf "domain %d" tid))
    @ [ thread_name ~pid:fleet_pid ~tid:domains ~value:"epoch barrier" ]
  in
  `Assoc
    [ ( "traceEvents",
        `List
          (metadata ~name:"process_name" ~pid:fleet_pid ~value:"csod fleet"
          :: (threads @ events)) );
      ("displayTimeUnit", `String "ms") ]

let fleet_spans_to_string ~domains spans =
  Obs_json.to_string (fleet_spans_to_json ~domains spans)
