(** Chrome trace-event JSON exporter.

    Renders a {!Flight_recorder} recording on the virtual clock in the
    trace-event "JSON object format" understood by [chrome://tracing] and
    {{:https://ui.perfetto.dev}Perfetto}:

    - profiler phase intervals as complete (["X"]) slices on the
      ["csod runtime"] process;
    - object lifecycles (alloc → watch → evict → trap → canary → free) as
      async (["b"]/["n"]/["e"]) spans keyed by object address on the
      ["heap objects"] process — only objects that were ever watched,
      evicted, trapped or canary-corrupted get a track, so big runs stay
      readable;
    - context sampling probabilities as counter (["C"]) tracks;
    - detections as global instant (["i"]) events.

    Timestamps convert virtual cycles to microseconds via
    [cycles_per_second] (pass {!Cost.cycles_per_second}). *)

val to_json :
  cycles_per_second:int -> Flight_recorder.record list -> Obs_json.t

val to_string :
  cycles_per_second:int -> Flight_recorder.record list -> string
(** One JSON document (not JSONL): write it to a [.json] file and open it
    in a trace viewer. *)

(** {1 Fleet epoch spans}

    The fleet run's wall-clock timeline: duration (["B"]/["E"]) pairs on
    a ["csod fleet"] process with one thread per pool worker plus an
    ["epoch barrier"] track — domain chunks, barrier waits and merges, so
    stragglers and merge stalls are visible in Perfetto. *)

type fleet_span = {
  track : int;
      (** thread id: the worker slot, or the domain count for the barrier
          track *)
  name : string;
  start_s : float;  (** wall seconds relative to the run start *)
  stop_s : float;
  args : (string * Obs_json.t) list;
}

val fleet_spans_to_json : domains:int -> fleet_span list -> Obs_json.t
(** Spans on the same track must not overlap (the fleet's never do: a
    worker runs one chunk at a time); they are sorted by timestamp into
    properly nested begin/end pairs. *)

val fleet_spans_to_string : domains:int -> fleet_span list -> string
