(** Chrome trace-event JSON exporter.

    Renders a {!Flight_recorder} recording on the virtual clock in the
    trace-event "JSON object format" understood by [chrome://tracing] and
    {{:https://ui.perfetto.dev}Perfetto}:

    - profiler phase intervals as complete (["X"]) slices on the
      ["csod runtime"] process;
    - object lifecycles (alloc → watch → evict → trap → canary → free) as
      async (["b"]/["n"]/["e"]) spans keyed by object address on the
      ["heap objects"] process — only objects that were ever watched,
      evicted, trapped or canary-corrupted get a track, so big runs stay
      readable;
    - context sampling probabilities as counter (["C"]) tracks;
    - detections as global instant (["i"]) events.

    Timestamps convert virtual cycles to microseconds via
    [cycles_per_second] (pass {!Cost.cycles_per_second}). *)

val to_json :
  cycles_per_second:int -> Flight_recorder.record list -> Obs_json.t

val to_string :
  cycles_per_second:int -> Flight_recorder.record list -> string
(** One JSON document (not JSONL): write it to a [.json] file and open it
    in a trace viewer. *)
