(** Minimal JSON document type and printer for the telemetry exporters.

    Yojson-compatible constructors, but zero dependencies: the metrics
    registry, the JSONL event sink and the bench harness all need to emit
    machine-readable output without pulling a JSON library into the build. *)

type t =
  [ `Null
  | `Bool of bool
  | `Int of int
  | `Float of float
  | `String of string
  | `List of t list
  | `Assoc of (string * t) list ]

val to_string : t -> string
(** Compact (single-line) rendering.  Non-finite floats print as [null] so
    the output is always valid JSON. *)
