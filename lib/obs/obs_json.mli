(** Minimal JSON document type, printer and parser for the telemetry
    exporters.

    Yojson-compatible constructors, but zero dependencies: the metrics
    registry, the JSONL event sink and the bench harness all need to emit
    machine-readable output without pulling a JSON library into the build.
    The parser exists for the consumers of those streams ([csod_run top]
    reads the fleet health JSONL back). *)

type t =
  [ `Null
  | `Bool of bool
  | `Int of int
  | `Float of float
  | `String of string
  | `List of t list
  | `Assoc of (string * t) list ]

val to_string : t -> string
(** Compact (single-line) rendering.  Non-finite floats print as [null] so
    the output is always valid JSON. *)

val of_string : string -> (t, string) result
(** Parse one JSON document.  Numbers without a fraction or exponent come
    back as [`Int], everything else as [`Float], so a value printed by
    {!to_string} round-trips to an equal document.  The error string
    carries the byte offset of the first problem. *)

val member : string -> t -> t option
(** [member key json] is the field [key] of an [`Assoc], if both exist. *)

val to_int : t -> int option
(** [`Int n] as [n]; [`Float f] as [int_of_float f] when integral. *)

val to_float : t -> float option
(** [`Float f] as [f]; [`Int n] as [float_of_int n]. *)
