type t =
  [ `Null
  | `Bool of bool
  | `Int of int
  | `Float of float
  | `String of string
  | `List of t list
  | `Assoc of (string * t) list ]

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf (v : t) =
  match v with
  | `Null -> Buffer.add_string buf "null"
  | `Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | `Int n -> Buffer.add_string buf (string_of_int n)
  | `Float f ->
    if Float.is_finite f then
      (* %.12g round-trips every value the harness produces and never
         prints a bare "1." (invalid JSON): "1" and "1e-05" are valid. *)
      Buffer.add_string buf (Printf.sprintf "%.12g" f)
    else Buffer.add_string buf "null"
  | `String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | `List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | `Assoc fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        write buf item)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ---- parsing ----

   Recursive descent over the grammar {!to_string} emits (which is all of
   JSON).  Numbers keep their printed shape: an integral token with no
   fraction or exponent parses as [`Int], so emitted documents round-trip
   to equal values. *)

exception Parse_error of string * int

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let lit word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' ->
          incr pos;
          Buffer.contents buf
        | '\\' ->
          incr pos;
          if !pos >= n then fail "truncated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'; incr pos
          | '\\' -> Buffer.add_char buf '\\'; incr pos
          | '/' -> Buffer.add_char buf '/'; incr pos
          | 'b' -> Buffer.add_char buf '\b'; incr pos
          | 'f' -> Buffer.add_char buf '\012'; incr pos
          | 'n' -> Buffer.add_char buf '\n'; incr pos
          | 'r' -> Buffer.add_char buf '\r'; incr pos
          | 't' -> Buffer.add_char buf '\t'; incr pos
          | 'u' ->
            if !pos + 4 >= n then fail "truncated \\u escape";
            (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
            | Some code ->
              add_utf8 buf code;
              pos := !pos + 5
            | None -> fail "bad \\u escape")
          | _ -> fail "unknown escape");
          go ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ()
  in
  let parse_number () : t =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while
      !pos < n
      && (match s.[!pos] with
         | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
         | _ -> false)
    do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    let floaty =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok
    in
    (* JSON has no non-finite literals, and an overflowing exponent
       ("1e999") must not smuggle one in via float_of_string. *)
    let finite f =
      if Float.is_finite f then `Float f else fail "non-finite number"
    in
    if floaty then
      match float_of_string_opt tok with
      | Some f -> finite f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> `Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> finite f
        | None -> fail "bad number")
  in
  let rec parse_value () : t =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        `Assoc []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ()
          | Some '}' -> incr pos
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        `Assoc (List.rev !fields)
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        `List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elements ()
          | Some ']' -> incr pos
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        `List (List.rev !items)
      end
    | Some '"' -> `String (parse_string ())
    | Some 't' -> lit "true" (`Bool true)
    | Some 'f' -> lit "false" (`Bool false)
    | Some 'n' -> lit "null" `Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters";
    v
  with
  | v -> Ok v
  | exception Parse_error (msg, p) ->
    Error (Printf.sprintf "%s at offset %d" msg p)

(* ---- accessors for stream consumers ---- *)

let member key = function
  | `Assoc fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | `Int i -> Some i
  | `Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | `Float f -> Some f
  | `Int i -> Some (float_of_int i)
  | _ -> None
