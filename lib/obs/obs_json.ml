type t =
  [ `Null
  | `Bool of bool
  | `Int of int
  | `Float of float
  | `String of string
  | `List of t list
  | `Assoc of (string * t) list ]

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf (v : t) =
  match v with
  | `Null -> Buffer.add_string buf "null"
  | `Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | `Int n -> Buffer.add_string buf (string_of_int n)
  | `Float f ->
    if Float.is_finite f then
      (* %.12g round-trips every value the harness produces and never
         prints a bare "1." (invalid JSON): "1" and "1e-05" are valid. *)
      Buffer.add_string buf (Printf.sprintf "%.12g" f)
    else Buffer.add_string buf "null"
  | `String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | `List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | `Assoc fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\":";
        write buf item)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf
