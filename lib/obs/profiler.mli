(** Cycle-attribution profiler.

    Charges virtual-clock cycles to a small fixed set of named phases so
    the Figure 7 overhead decomposition (which mechanism costs what) is
    directly inspectable per execution, not just in aggregate.  The
    accumulators are a flat int array indexed by phase — an O(1) add per
    charge, no allocation, no hashing — and every cycle the machine
    advances is attributed to exactly one phase, so
    [total t = Clock.cycles] holds by construction. *)

type phase =
  | App            (** modeled application compute (the default phase) *)
  | Init           (** one-time tool start-up cost *)
  | Alloc_fast     (** allocator fast path (malloc/free bookkeeping) *)
  | Smu_lookup     (** context-table lookup + probability update *)
  | Smu_decision   (** sampling coin flip *)
  | Wmu_install    (** watchpoint installation syscalls *)
  | Wmu_evict      (** watchpoint removal syscalls *)
  | Wmu_replace    (** policy preemption (evict + reinstall) *)
  | Trap_dispatch  (** SIGTRAP delivery and the handler's work *)
  | Canary_plant
  | Canary_check
  | Asan_shadow    (** per-access shadow-memory check *)
  | Asan_poison    (** redzone poisoning and quarantine bookkeeping *)

val all : phase list
val name : phase -> string
(** Stable dotted identifier, e.g. ["wmu.install"] — the key used in JSON
    exports. *)

type t

val create : unit -> t

val charge : t -> phase -> int -> unit
(** Attribute [n] cycles to [phase].  Negative charges are rejected. *)

val cycles : t -> phase -> int
val total : t -> int
val tool_total : t -> int
(** [total] minus the [App] phase: the runtime's own overhead. *)

val to_list : t -> (phase * int) list
(** In declaration order, zero phases included. *)

val nonzero : t -> (phase * int) list

val reset : t -> unit

val merge_into : dst:t -> src:t -> unit
(** Cell-wise sum: aggregating many executions keeps the invariant that
    the merged total equals the sum of the merged clocks.  [src] is
    untouched. *)

val to_json : t -> Obs_json.t
