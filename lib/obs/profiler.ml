type phase =
  | App
  | Init
  | Alloc_fast
  | Smu_lookup
  | Smu_decision
  | Wmu_install
  | Wmu_evict
  | Wmu_replace
  | Trap_dispatch
  | Canary_plant
  | Canary_check
  | Asan_shadow
  | Asan_poison

let all =
  [ App; Init; Alloc_fast; Smu_lookup; Smu_decision; Wmu_install; Wmu_evict;
    Wmu_replace; Trap_dispatch; Canary_plant; Canary_check; Asan_shadow;
    Asan_poison ]

let index = function
  | App -> 0
  | Init -> 1
  | Alloc_fast -> 2
  | Smu_lookup -> 3
  | Smu_decision -> 4
  | Wmu_install -> 5
  | Wmu_evict -> 6
  | Wmu_replace -> 7
  | Trap_dispatch -> 8
  | Canary_plant -> 9
  | Canary_check -> 10
  | Asan_shadow -> 11
  | Asan_poison -> 12

let num_phases = List.length all

let name = function
  | App -> "app"
  | Init -> "tool.init"
  | Alloc_fast -> "alloc.fast_path"
  | Smu_lookup -> "smu.lookup"
  | Smu_decision -> "smu.decision"
  | Wmu_install -> "wmu.install"
  | Wmu_evict -> "wmu.evict"
  | Wmu_replace -> "wmu.replace"
  | Trap_dispatch -> "trap.dispatch"
  | Canary_plant -> "canary.plant"
  | Canary_check -> "canary.check"
  | Asan_shadow -> "asan.shadow_check"
  | Asan_poison -> "asan.poison"

type t = { cells : int array }

let create () = { cells = Array.make num_phases 0 }

let charge t phase n =
  if n < 0 then invalid_arg "Profiler.charge: negative cycles";
  let i = index phase in
  t.cells.(i) <- t.cells.(i) + n

let cycles t phase = t.cells.(index phase)

let total t = Array.fold_left ( + ) 0 t.cells

let tool_total t = total t - cycles t App
(** Everything except modeled application compute: the per-run overhead the
    Figure 7 decomposition attributes to the tools. *)

let to_list t = List.map (fun p -> (p, cycles t p)) all

let nonzero t = List.filter (fun (_, c) -> c > 0) (to_list t)

let reset t = Array.fill t.cells 0 num_phases 0

let merge_into ~dst ~src =
  Array.iteri (fun i n -> dst.cells.(i) <- dst.cells.(i) + n) src.cells

let to_json t : Obs_json.t =
  `Assoc
    (("total", `Int (total t))
    :: ("tool_total", `Int (tool_total t))
    :: List.map (fun (p, c) -> (name p, `Int c)) (to_list t))
