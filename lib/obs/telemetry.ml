type t = {
  metrics : Metrics.t;
  profiler : Profiler.t;
  mutable snapshot_every : int; (* cycles; 0 disables periodic snapshots *)
  mutable next_snapshot : int;
  mutable snapshots : int;
}

let create () =
  { metrics = Metrics.create ();
    profiler = Profiler.create ();
    snapshot_every = 0;
    next_snapshot = max_int;
    snapshots = 0 }

let metrics t = t.metrics
let profiler t = t.profiler

let set_snapshot_interval t ~cycles =
  if cycles < 0 then invalid_arg "Telemetry.set_snapshot_interval: negative interval";
  t.snapshot_every <- cycles;
  t.next_snapshot <- (if cycles = 0 then max_int else cycles)

let snapshot_count t = t.snapshots

let emit_snapshot t ~now =
  t.snapshots <- t.snapshots + 1;
  Event_sink.emit "snapshot"
    [ ("seq", `Int t.snapshots); ("cycles", `Int now);
      ("metrics", Metrics.to_json t.metrics);
      ("profile", Profiler.to_json t.profiler) ]

let tick t ~now =
  if now >= t.next_snapshot then begin
    (* Emit one snapshot per elapsed interval boundary; a single long
       [work] charge crossing several boundaries yields several, keeping
       snapshot sequence numbers in lockstep with virtual time. *)
    while now >= t.next_snapshot do
      if Event_sink.active () then emit_snapshot t ~now:t.next_snapshot;
      t.next_snapshot <- t.next_snapshot + t.snapshot_every
    done
  end

let merge_into ~dst ~src =
  Metrics.merge_into ~dst:dst.metrics ~src:src.metrics;
  Profiler.merge_into ~dst:dst.profiler ~src:src.profiler;
  dst.snapshots <- dst.snapshots + src.snapshots

(* ---- export ---- *)

let to_json t ~total_cycles : Obs_json.t =
  `Assoc
    [ ("total_cycles", `Int total_cycles);
      ("snapshots", `Int t.snapshots);
      ("metrics", Metrics.to_json t.metrics);
      ("profile", Profiler.to_json t.profiler) ]

let json_string t ~total_cycles = Obs_json.to_string (to_json t ~total_cycles)

let profile_table t ~total_cycles =
  let tbl =
    Table_fmt.create ~title:"CYCLE ATTRIBUTION"
      ~columns:
        [ ("Phase", Table_fmt.Left); ("Cycles", Table_fmt.Right);
          ("Share", Table_fmt.Right) ]
  in
  let charged = Profiler.total t.profiler in
  List.iter
    (fun (p, c) ->
      Table_fmt.add_row tbl
        [ Profiler.name p; Table_fmt.fmt_int c;
          Table_fmt.fmt_percent (Stats.ratio c (max 1 charged)) ])
    (Profiler.nonzero t.profiler);
  Table_fmt.add_separator tbl;
  Table_fmt.add_row tbl
    [ "total charged"; Table_fmt.fmt_int charged;
      Table_fmt.fmt_percent (Stats.ratio charged (max 1 total_cycles)) ];
  Table_fmt.add_row tbl [ "clock total"; Table_fmt.fmt_int total_cycles; "100.0%" ];
  Table_fmt.render tbl

let metrics_table t =
  let tbl =
    Table_fmt.create ~title:"METRICS"
      ~columns:[ ("Name", Table_fmt.Left); ("Value", Table_fmt.Right);
                 ("High", Table_fmt.Right) ]
  in
  List.iter
    (fun (name, v) -> Table_fmt.add_row tbl [ name; Table_fmt.fmt_int v; "" ])
    (Metrics.counters_list t.metrics);
  (match Metrics.gauges_list t.metrics with
  | [] -> ()
  | gauges ->
    Table_fmt.add_separator tbl;
    List.iter
      (fun (name, v, high) ->
        Table_fmt.add_row tbl
          [ name; Table_fmt.fmt_int v; Table_fmt.fmt_int high ])
      gauges);
  List.iter
    (fun h ->
      Table_fmt.add_separator tbl;
      let bounds = Metrics.bucket_bounds h in
      Array.iteri
        (fun i n ->
          let label =
            if i < Array.length bounds then
              Printf.sprintf "  <= %s" (Table_fmt.fmt_int bounds.(i))
            else "  > max"
          in
          if n > 0 then Table_fmt.add_row tbl [ label; Table_fmt.fmt_int n; "" ])
        (Metrics.bucket_counts h))
    (Metrics.histograms_list t.metrics);
  Table_fmt.render tbl

let summary t ~total_cycles =
  metrics_table t ^ "\n" ^ profile_table t ~total_cycles
