(** Per-machine telemetry bundle: a metrics registry, a cycle-attribution
    profiler, and periodic snapshot scheduling over the virtual clock.

    Every {!Machine.t} owns one bundle; the allocator, the CSOD runtime
    units and the ASan baseline all reach it through the machine they
    already hold.  Telemetry never draws randomness and never advances the
    clock, so its presence cannot change a simulated execution. *)

type t

val create : unit -> t
val metrics : t -> Metrics.t
val profiler : t -> Profiler.t

(** {1 Periodic snapshots} *)

val set_snapshot_interval : t -> cycles:int -> unit
(** Emit a ["snapshot"] event to the installed {!Event_sink} every
    [cycles] of virtual time; [0] (the default) disables snapshots.  With
    snapshots disabled each clock advance costs one comparison. *)

val tick : t -> now:int -> unit
(** Called by the machine after every clock advance with the new cycle
    count; emits any snapshot whose interval boundary has been crossed. *)

val snapshot_count : t -> int

(** {1 Merging} *)

val merge_into : dst:t -> src:t -> unit
(** Fold one execution's bundle into an aggregate: {!Metrics.merge_into}
    on the registries, {!Profiler.merge_into} on the profiles, snapshot
    counts added.

    Snapshot {e scheduling} state ([set_snapshot_interval]'s interval and
    the next boundary) is deliberately not merged: the interval is a
    property of [dst]'s own virtual clock, while [src] ran on a different
    machine whose cycle counts are incomparable — importing its boundary
    would make [dst] emit at a nonsense point in its own time.  [dst]
    keeps its cadence; only the {e count} of snapshots already emitted is
    summed, so the next snapshot [dst] emits carries a [seq] that
    continues after the union (merging a bundle that emitted [k] snapshots
    advances [dst]'s next [seq] by [k]).  Pinned by the snapshot-sequencing
    unit test in [test_obs]. *)

(** {1 Export} *)

val to_json : t -> total_cycles:int -> Obs_json.t
(** Full dump: counters, gauges, histograms and the per-phase cycle
    decomposition, plus [total_cycles] for cross-checking coverage. *)

val json_string : t -> total_cycles:int -> string

val profile_table : t -> total_cycles:int -> string
(** Rendered {!Table_fmt} table of nonzero phases with their share of the
    charged cycles. *)

val metrics_table : t -> string
val summary : t -> total_cycles:int -> string
(** [metrics_table] followed by [profile_table]. *)
