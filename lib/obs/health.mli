(** Live fleet health: one record per epoch barrier.

    The fleet simulator builds a {!sample} at every epoch barrier — in the
    main domain, after all workers have joined, so emission can never race
    the parallel section — and hands it to the run's health callback
    and/or the installed {!Event_sink}.  Serialised as one
    [csod.fleet.health/1] JSONL line per epoch, the stream is the live
    view of the run: rolling detection CDF, per-domain throughput,
    degradation and fault tallies, straggler skew, and the cost of the
    telemetry plane itself.

    The stream deliberately self-measures: [merge_seconds] is the wall
    time of the barrier's telemetry reduction (sharded tree-reduce or
    legacy per-user merge — [telemetry] names which), and
    [observer_seconds] is what the {e previous} barrier spent building and
    emitting health and trace data (the current record cannot contain its
    own emission cost).  Every perf claim read off the stream carries its
    own error bar. *)

type domain_load = {
  slot : int;  (** pool worker slot; 0 is the calling domain *)
  executed : int;  (** executions this worker ran this epoch *)
  busy_seconds : float;  (** wall time inside executions this epoch *)
}

type sample = {
  epoch : int;
  arrivals : int;
  detections : int;  (** detections in this epoch *)
  cumulative : int;  (** detections so far *)
  users : int;  (** total fleet size *)
  cdf : float;  (** [cumulative / users]; 0 for an empty fleet *)
  store_contexts : int;  (** shared store size after the barrier *)
  patched : int;
      (** contexts whose accumulated evidence has crossed the code-less
          patching conviction threshold; 0 when no patch policy is active *)
  degraded : int;  (** executions so far that fell back to canary-only *)
  worker_crashes : int;  (** injected pool crashes so far *)
  faults : (string * int) list;
      (** cumulative fault/degradation counters from the merged registry *)
  snapshots : int;  (** telemetry snapshots emitted by executions so far *)
  epoch_seconds : float;  (** wall time of the whole epoch *)
  merge_seconds : float;  (** wall time of the barrier's telemetry merge *)
  observer_seconds : float;
      (** previous barrier's health/trace emission cost; 0.0 at epoch 0 *)
  execs_per_sec : float;  (** fleet-wide: [arrivals / epoch_seconds] *)
  straggler_skew : float;
      (** slowest / median per-domain busy time; 1.0 when under 2 workers
          ran *)
  telemetry : string;  (** aggregation mode: ["sharded"] or ["merged"] *)
  domains : domain_load list;  (** one per pool worker, slot order *)
}

val schema : string
(** ["csod.fleet.health/1"]. *)

val straggler_skew : float list -> float
(** [straggler_skew busy] is max/median over the positive entries; [1.0]
    when fewer than two workers did work or the median underflows. *)

val fields : sample -> (string * Obs_json.t) list
(** The record's JSON fields, schema tag first — ready for
    {!Event_sink.emit}[ "fleet.health"]. *)

val to_json : sample -> Obs_json.t
(** The full JSONL object: [{"event": "fleet.health", ...fields}]. *)

val of_json : Obs_json.t -> sample option
(** Parse a line of the stream back (used by [csod_run top]).  [None] if
    the document is not a [csod.fleet.health/1] record. *)

val render : ?color:bool -> sample list -> string
(** One-screen ANSI dashboard over the stream so far (oldest first):
    headline, CDF sparkline, cost line, per-domain load bars.  [color]
    (default true) gates the escape codes. *)
