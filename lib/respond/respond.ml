(* Active response: what happens after CSOD detects an overflow.

   Two policies, both built on the evidence pipeline the detector already
   maintains:

   - Failure-oblivious mode (Rigger et al.): a detected out-of-bounds
     access is redirected into a per-allocation shadow slab — reads return
     manufactured values (the slab entry, or zero), writes land in the slab
     instead of adjacent memory — and the execution continues.  The report
     is still produced; the response only changes what happens next.

   - Code-less patching (Zeng et al.): once fleet evidence convicts a
     context (hit count in the Persist store reaches a threshold), every
     future allocation from that context is quietly over-allocated with a
     guard slack, so the overflow lands in memory the allocation owns.  No
     redirect, no report, no cost for unconvicted contexts.

   This module holds the policy state: the mode, the shadow slab, the event
   log and the tallies.  The runtime and the ASan tool decide *when* to
   redirect; the machine applies the squash/override mechanics. *)

type mode = Off | Oblivious | Patch of int

let default_patch_threshold = 3

let mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "off" -> Ok Off
  | "oblivious" -> Ok Oblivious
  | "patch" -> Ok (Patch default_patch_threshold)
  | s when String.length s > 6 && String.sub s 0 6 = "patch=" -> (
    let arg = String.sub s 6 (String.length s - 6) in
    match int_of_string_opt arg with
    | Some n when n >= 1 -> Ok (Patch n)
    | _ -> Error (Printf.sprintf "bad patch threshold %S (want an int >= 1)" arg))
  | _ ->
    Error
      (Printf.sprintf "unknown response mode %S (expected off, oblivious or patch[=N])" s)

let mode_to_string = function
  | Off -> "off"
  | Oblivious -> "oblivious"
  | Patch n -> Printf.sprintf "patch=%d" n

type source = Watchpoint | Asan_shadow | Canary

let source_name = function
  | Watchpoint -> "watchpoint"
  | Asan_shadow -> "asan"
  | Canary -> "canary"

type event = {
  kind : string;  (* redirect-read | redirect-write | patch | escape *)
  source : string;
  site : int;
  ctx : int * int;
  addr : int;
  offset : int;
  len : int;
  at_sec : float;
}

let schema = "csod.respond.event/1"

let event_to_json (e : event) : Obs_json.t =
  let a, b = e.ctx in
  `Assoc
    [ ("schema", `String schema);
      ("kind", `String e.kind);
      ("source", `String e.source);
      ("site", `Int e.site);
      ("ctx", `List [ `Int a; `Int b ]);
      ("addr", `Int e.addr);
      ("offset", `Int e.offset);
      ("len", `Int e.len);
      ("at_sec", `Float e.at_sec) ]

type t = {
  mode : mode;
  (* (allocation base, byte offset past the object) -> squashed value.
     Offsets key the slab rather than absolute addresses so a freed-then-
     reused address range cannot leak one object's redirected bytes into
     another's. *)
  slab : (int * int, int) Hashtbl.t;
  mutable target_obj : int;  (* allocation base of the redirect in flight *)
  mutable redirected_reads : int;
  mutable redirected_writes : int;
  mutable escapes : int;
  mutable patched_allocs : int;
  mutable events : event list;  (* newest first *)
}

let create mode =
  { mode;
    slab = Hashtbl.create 64;
    target_obj = 0;
    redirected_reads = 0;
    redirected_writes = 0;
    escapes = 0;
    patched_allocs = 0;
    events = [] }

let mode t = t.mode
let oblivious t = t.mode = Oblivious

let patch_threshold t =
  match t.mode with Patch n -> Some n | Off | Oblivious -> None

let slab_get t ~obj ~off =
  match Hashtbl.find_opt t.slab (obj, off) with Some v -> v | None -> 0

let slab_put t ~obj ~off ~value = Hashtbl.replace t.slab (obj, off) value

(* Drop a freed object's slab bytes.  The heap reuses address ranges, and a
   recycled range can start at the very same base — without this, a new
   allocation there would inherit the dead object's redirected bytes and a
   manufactured read would leak them instead of returning zero. *)
let release t ~obj =
  let stale =
    Hashtbl.fold
      (fun ((o, _) as k) _ acc -> if o = obj then k :: acc else acc)
      t.slab []
  in
  List.iter (Hashtbl.remove t.slab) stale

(* Arm the machine's squash/override hooks.  The [on_squash] callback fires
   only for stores the runtime asked to squash, so [target_obj] — set just
   before each squash request — is always the allocation the store
   overflowed. *)
let attach t machine =
  Machine.arm_respond machine ~on_squash:(fun ~addr ~len:_ ~value ->
      slab_put t ~obj:t.target_obj ~off:(addr - t.target_obj) ~value)

let record t ~kind ~source ~site ~ctx ~addr ~offset ~len ~at_sec =
  let e =
    { kind; source = source_name source; site; ctx; addr; offset; len; at_sec }
  in
  t.events <- e :: t.events;
  if Event_sink.active () then
    Event_sink.emit "respond"
      (match event_to_json e with `Assoc fields -> fields | _ -> [])

(* Redirect the access whose detection is being handled right now.  For a
   write, the machine squashes the store and hands the discarded value to
   the slab; for a read, the slab (or zero) substitutes for the bytes the
   program had no right to see.  No PRNG draw, no clock charge beyond what
   the detection itself already cost: response must not perturb sampling. *)
let redirect t machine ~source ~kind ~site ~ctx ~obj ~addr ~len ~at_sec =
  let offset = addr - obj in
  (match (kind : Tool.access_kind) with
  | Tool.Read ->
    t.redirected_reads <- t.redirected_reads + 1;
    Machine.override_read machine (slab_get t ~obj ~off:offset);
    record t ~kind:"redirect-read" ~source ~site ~ctx ~addr ~offset ~len ~at_sec
  | Tool.Write ->
    t.redirected_writes <- t.redirected_writes + 1;
    t.target_obj <- obj;
    Machine.squash_write machine;
    record t ~kind:"redirect-write" ~source ~site ~ctx ~addr ~offset ~len
      ~at_sec)

(* A canary found corrupted means the overflow already escaped into
   adjacent memory before any redirect could happen (e.g. the watchpoint
   was never armed, or its trap was dropped).  That execution did not
   survive obliviously — recording it keeps fault plans honest: a dropped
   trap can never fake a survival. *)
let record_escape t ~source ~site ~ctx ~addr ~at_sec =
  t.escapes <- t.escapes + 1;
  record t ~kind:"escape" ~source ~site ~ctx ~addr ~offset:0 ~len:0 ~at_sec

let record_patch t ~site ~ctx ~addr ~at_sec =
  t.patched_allocs <- t.patched_allocs + 1;
  record t ~kind:"patch" ~source:Watchpoint ~site ~ctx ~addr ~offset:0 ~len:0
    ~at_sec

type summary = {
  smode : mode;
  redirected_reads : int;
  redirected_writes : int;
  escapes : int;
  patched_allocs : int;
  events : int;
}

let summary t =
  { smode = t.mode;
    redirected_reads = t.redirected_reads;
    redirected_writes = t.redirected_writes;
    escapes = t.escapes;
    patched_allocs = t.patched_allocs;
    events = List.length t.events }

let events (t : t) = List.rev_map event_to_json t.events

(* Oblivious survival: every detected out-of-bounds access was redirected
   and nothing escaped into adjacent memory. *)
let survived t = t.mode = Oblivious && t.escapes = 0

let pp_summary ppf s =
  Fmt.pf ppf "respond %s: %d read / %d write redirects, %d escapes, %d patched allocs"
    (mode_to_string s.smode) s.redirected_reads s.redirected_writes s.escapes
    s.patched_allocs
