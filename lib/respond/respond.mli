(** Active response: turning detection into survival.

    CSOD's pipeline normally ends at a report.  This layer adds two
    policies on top of the existing evidence machinery:

    - {b Failure-oblivious mode} (Rigger et al., "context-aware failure-
      oblivious computing"): a detected out-of-bounds access is redirected
      into a per-allocation shadow slab — out-of-bounds reads return
      manufactured values, out-of-bounds writes are captured in the slab
      instead of corrupting adjacent memory — and the execution continues
      to completion.  Detection reports are unchanged; only the
      consequences differ.

    - {b Code-less patching} (Zeng et al.): once fleet evidence convicts an
      allocation context (its {!Persist} hit count reaches a threshold),
      future allocations from that context are over-allocated with guard
      slack so the overflow becomes harmless — no crash, no report, and
      unconvicted contexts pay nothing.

    The module is pure policy state (mode, slab, event log, tallies); the
    runtime and the ASan tool decide when to invoke it, and the machine
    ({!Machine.squash_write} / {!Machine.override_read}) applies the
    mechanics.  None of its operations draw from any PRNG or charge the
    virtual clock, so enabling a response mode never perturbs sampling
    decisions — and with the mode [Off] the layer is never even
    constructed. *)

type mode = Off | Oblivious | Patch of int
    (** [Patch n]: convict at [n] evidence hits. *)

val default_patch_threshold : int
(** Conviction threshold when [--respond patch] gives none (3). *)

val mode_of_string : string -> (mode, string) result
(** Accepts ["off"], ["oblivious"], ["patch"], ["patch=N"] (N ≥ 1). *)

val mode_to_string : mode -> string

type source = Watchpoint | Asan_shadow | Canary
    (** Which detector accused the access being responded to. *)

type t

val create : mode -> t

val mode : t -> mode
val oblivious : t -> bool
val patch_threshold : t -> int option
(** [Some n] iff the mode is [Patch n]. *)

val attach : t -> Machine.t -> unit
(** Arm the machine's response hooks, routing squashed store values into
    this layer's shadow slab.  Call once at tool construction when the
    mode is not [Off]. *)

val redirect :
  t ->
  Machine.t ->
  source:source ->
  kind:Tool.access_kind ->
  site:int ->
  ctx:int * int ->
  obj:int ->
  addr:int ->
  len:int ->
  at_sec:float ->
  unit
(** Redirect the access whose detection is currently being handled: squash
    the write into the slab at [(obj, addr - obj)], or override the read
    with the slab value (zero when never written).  Records a
    [csod.respond.event/1] and bumps the redirect tallies. *)

val record_escape :
  t -> source:source -> site:int -> ctx:int * int -> addr:int -> at_sec:float -> unit
(** A corruption that was detected {e after the fact} (corrupted canary):
    adjacent memory was already overwritten, so the execution cannot claim
    oblivious survival.  This is how a dropped trap under fault injection
    is prevented from faking a survival. *)

val record_patch :
  t -> site:int -> ctx:int * int -> addr:int -> at_sec:float -> unit
(** A convicted context's allocation was given guard slack. *)

val slab_get : t -> obj:int -> off:int -> int
(** Slab lookup; 0 when that offset was never redirected to. *)

val release : t -> obj:int -> unit
(** Forget a freed object's slab bytes.  The heap recycles address ranges
    — one can even restart at the same base — and a later allocation there
    must see fresh zeros, not the dead object's redirected bytes. *)

type summary = {
  smode : mode;
  redirected_reads : int;
  redirected_writes : int;
  escapes : int;
  patched_allocs : int;
  events : int;
}

val summary : t -> summary

val events : t -> Obs_json.t list
(** All response events in order, as [csod.respond.event/1] documents. *)

val survived : t -> bool
(** Oblivious mode with zero escapes: every detected out-of-bounds access
    was redirected before adjacent memory saw it. *)

val schema : string
(** ["csod.respond.event/1"]. *)

val pp_summary : Format.formatter -> summary -> unit
