(** Simulation alphabet over the incremental fleet:
    {!Fleet.start}/{!Fleet.step}/{!Fleet.finish} with a synthetic executor
    whose behaviour is a pure function of (uid, fault state), raced against
    an exact model of detections, arrivals, uid assignment and the shared
    evidence store.

    Ops: epoch barriers with a chosen arrival count, a trap-drop fault that
    suppresses the watchpoint detections of the {e next} barrier (the
    interleaving GWP-ASan-style samplers must survive), store checkpoints
    ([persist-save]), service crash + deterministic resume from the last
    checkpoint ([crash]), and an offline [persist-load] audit.

    [~plant:true] plants a known bug behind a flag: under a trap-drop the
    executor still records its evidence key into the shared store even
    though the detection was lost — evidence without detection, the exact
    corruption an epoch-barrier merge then propagates fleet-wide.  Only
    the ["fleet-evidence-bug"] alphabet is wired that way. *)

val alphabet : ?plant:bool -> unit -> Sim.packed
(** Registered as ["fleet"], or ["fleet-evidence-bug"] with the planted
    bug. *)
