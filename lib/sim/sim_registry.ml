let default =
  [ Sim_heap.alphabet ();
    Sim_runtime.alphabet ();
    Sim_fleet.alphabet ();
    Sim_store.alphabet ();
    Sim_respond.alphabet () ]

let all =
  default
  @ [ Sim_store.alphabet ~buggy_merge:true ();
      Sim_fleet.alphabet ~plant:true ();
      Sim_respond.alphabet ~plant:true () ]

let find name = Sim.find all name
let names = List.map Sim.name_of all
