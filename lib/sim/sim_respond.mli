(** Simulation alphabet over the active-response layer ({!Respond}): a
    failure-oblivious runtime and a code-less-patching runtime evolve side
    by side, the latter sharing a real {!Persist} evidence store with a
    hit-count model.

    Operations: [respond-oblivious-read] / [respond-oblivious-write]
    allocate, access one past the end, and free on the oblivious runtime —
    every such overflow must be redirected into the shadow slab (reads
    return the manufactured zero, writes are captured verbatim) and must
    never escape into an adjacent canary.  [convict-context] adds one
    evidence hit for a context to both the real store and the model;
    [apply-patch] allocates from a context on the patch runtime and
    overflows it, asserting the patching contract: once the model convicts
    a context (hits reach the threshold, 2 here), its allocations are
    padded and the overflow produces {e no new evidence} — no watchpoint
    trap, no canary report.

    [~plant:true] plants a known bug behind a flag — the store write that
    crosses the conviction threshold is silently lost, so the model
    convicts a context the real store never did, and the next
    [apply-patch] on it detects — as the seeded target for the shrinking
    regression test (minimal repro: two convictions and a patch).  Only
    the ["respond-lost-conviction"] alphabet is wired that way; the
    default ["respond"] alphabet exercises the real, correct flow. *)

val alphabet : ?plant:bool -> unit -> Sim.packed
(** Registered as ["respond"], or ["respond-lost-conviction"] with the
    planted bug. *)
