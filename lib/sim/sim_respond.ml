(* Alphabet over the active-response layer.  Two runtimes run side by
   side: an oblivious one whose out-of-bounds accesses must all be
   redirected into the shadow slab (each op allocates, misbehaves one past
   the end, and frees — so a hardware watchpoint is always free and every
   overflow is caught in flight), and a patch-mode one sharing a real
   evidence store with a hit-count model.  The headline invariant is the
   code-less patching contract: once a context's evidence reaches the
   conviction threshold, its allocations are padded and an overflow there
   never produces new evidence.  The planted variant loses exactly the
   conviction-crossing store write, so the model convicts a context the
   real store never did — the seeded target the shrinking regression test
   must find and minimize. *)

type side = {
  machine : Machine.t;
  heap : Heap.t;
  rt : Runtime.t;
  tool : Tool.t;
  resp : Respond.t;
}

type state = {
  obl : side;  (* failure-oblivious runtime *)
  pat : side;  (* code-less patching runtime, reads [store] *)
  store : Persist.t;
  threshold : int;
  hits : (int * int, int) Hashtbl.t;  (* model evidence counts *)
  buggy : bool;
}

(* Convictable contexts live in a deliberately tiny space so random
   sequences pile evidence onto the same key quickly. *)
let convict_key c = (0xA00 + (c mod 3), 0)

(* The oblivious side's allocation contexts.  Seeding these into that
   runtime's own store pins them at 100% watch probability, so every op's
   object is watched (a slot is always free: each op frees its object) and
   the redirect obligation is deterministic, not a sampling coin. *)
let oblivious_read_site pc = 0x700 + (pc mod 8)
let oblivious_write_site pc = 0x780 + (pc mod 8)

let oblivious_store () =
  let s = Persist.create () in
  for i = 0 to 7 do
    Persist.add s (0x700 + i, 0);
    Persist.add s (0x780 + i, 0)
  done;
  s

let model_hits st key =
  match Hashtbl.find_opt st.hits key with Some n -> n | None -> 0

let summary side = Respond.summary side.resp

let ops : state Sim.op list =
  [ { Sim.op_name = "respond-oblivious-read";
      weight = 3;
      pre = (fun (_ : state) -> true);
      gen = (fun _ g -> [ 8 + Prng.int g 64; Prng.int g 64 ]);
      apply =
        (fun st args ->
          let size, pc =
            match args with s :: p :: _ -> (max 1 s, p) | _ -> (8, 0)
          in
          let ctx = Alloc_ctx.synthetic ~callsite:(oblivious_read_site pc) () in
          let s0 = summary st.obl in
          let p = st.obl.tool.Tool.malloc ~size ~ctx in
          Machine.set_pc st.obl.machine (0x400 + (pc mod 64));
          (* The word past the object (sizes round to the watched word, so
             aim at the boundary, not [p + size]): the watchpoint traps and
             the response layer overrides the load.  A fresh object has an
             empty slab, so the manufactured value is zero. *)
          let v =
            Machine.load_byte st.obl.machine (Canary.boundary_addr ~app:p ~size)
          in
          let s1 = summary st.obl in
          st.obl.tool.Tool.free ~ptr:p;
          let s2 = summary st.obl in
          if s1.Respond.redirected_reads <> s0.Respond.redirected_reads + 1
          then Error "out-of-bounds read was not redirected"
          else if v <> 0 then
            Printf.ksprintf Result.error
              "manufactured read returned %d, expected zero" v
          else if s2.Respond.escapes <> s0.Respond.escapes then
            Error "an oblivious read escaped"
          else Ok ()) };
    { Sim.op_name = "respond-oblivious-write";
      weight = 3;
      pre = (fun _ -> true);
      gen =
        (fun _ g -> [ 8 + Prng.int g 64; Prng.int g 64; 1 + Prng.int g 255 ]);
      apply =
        (fun st args ->
          let size, pc, value =
            match args with
            | s :: p :: v :: _ -> (max 1 s, p, (v mod 255) + 1)
            | _ -> (8, 0, 1)
          in
          let ctx = Alloc_ctx.synthetic ~callsite:(oblivious_write_site pc) () in
          let s0 = summary st.obl in
          let p = st.obl.tool.Tool.malloc ~size ~ctx in
          let oob = Canary.boundary_addr ~app:p ~size in
          Machine.set_pc st.obl.machine (0x440 + (pc mod 64));
          Machine.store_byte st.obl.machine oob value;
          let s1 = summary st.obl in
          let slab = Respond.slab_get st.obl.resp ~obj:p ~off:(oob - p) in
          st.obl.tool.Tool.free ~ptr:p;
          let s2 = summary st.obl in
          if s1.Respond.redirected_writes <> s0.Respond.redirected_writes + 1
          then Error "out-of-bounds write was not squashed"
          else if slab <> value then
            Printf.ksprintf Result.error
              "slab holds %d, squashed value was %d" slab value
          else if s2.Respond.escapes <> s0.Respond.escapes then
            Error "a squashed write corrupted the canary"
          else Ok ()) };
    { Sim.op_name = "convict-context";
      weight = 4;
      pre = (fun _ -> true);
      gen = (fun _ g -> [ Prng.int g 3 ]);
      apply =
        (fun st args ->
          let c = match args with c :: _ -> c | [] -> 0 in
          let key = convict_key c in
          let n = model_hits st key + 1 in
          Hashtbl.replace st.hits key n;
          (* Planted bug: the store write that crosses the conviction
             threshold is lost, so the model convicts a context the real
             store holds one hit short of conviction. *)
          if st.buggy && n = st.threshold then ()
          else Persist.add st.store key;
          Ok ()) };
    { Sim.op_name = "apply-patch";
      weight = 3;
      pre = (fun _ -> true);
      gen = (fun _ g -> [ Prng.int g 3; 8 + Prng.int g 64 ]);
      apply =
        (fun st args ->
          let c, size =
            match args with c :: s :: _ -> (c, max 1 s) | _ -> (0, 8)
          in
          let key = convict_key c in
          let convicted = model_hits st key >= st.threshold in
          let d0 = List.length (Runtime.detections st.pat.rt) in
          let s0 = summary st.pat in
          let ctx = Alloc_ctx.synthetic ~callsite:(fst key) () in
          let p = st.pat.tool.Tool.malloc ~size ~ctx in
          Machine.set_pc st.pat.machine (0x800 + (c mod 3));
          (* The word past the object.  A convicted context's object
             carries guard slack instead of a watchpoint, so this lands in
             owned pad; an unconvicted one is watched (or canary-checked)
             and detects as usual — that is ordinary CSOD, not a
             violation. *)
          Machine.store_byte st.pat.machine (Canary.boundary_addr ~app:p ~size)
            0x42;
          st.pat.tool.Tool.free ~ptr:p;
          let d1 = List.length (Runtime.detections st.pat.rt) in
          let s1 = summary st.pat in
          if convicted && d1 > d0 then
            Error "patched context produced new evidence"
          else if
            convicted && s1.Respond.patched_allocs <= s0.Respond.patched_allocs
          then Error "convicted context allocation was not patched"
          else Ok ()) } ]

let check st =
  let so = summary st.obl in
  if so.Respond.escapes <> 0 then
    Printf.ksprintf Option.some "%d escapes on the oblivious runtime"
      so.Respond.escapes
  else if not (Respond.survived st.obl.resp) then
    Some "oblivious runtime lost its survival claim"
  else None

let digest st =
  let h = ref 0x9E3779B97F4A7C15L in
  let mix v = h := Int64.mul (Int64.logxor !h (Int64.of_int v)) 0x100000001B3L in
  let so = summary st.obl and sp = summary st.pat in
  mix so.Respond.redirected_reads;
  mix so.Respond.redirected_writes;
  mix so.Respond.escapes;
  mix so.Respond.events;
  mix sp.Respond.patched_allocs;
  mix (List.length (Runtime.detections st.pat.rt));
  mix (Persist.count st.store);
  let acc = ref 0L in
  List.iter
    (fun ((site, off) as k) ->
      acc :=
        Int64.add !acc
          (Int64.of_int ((((site * 131) + off) * 17) + Persist.hits st.store k)))
    (Persist.keys st.store);
  Int64.logxor !h !acc

let make_side ~seed ~offset ~store resp =
  let machine = Machine.create ~seed:(seed + offset) () in
  let heap = Heap.create machine in
  let rt = Runtime.create ~seed:offset ~store ~respond:resp ~machine ~heap () in
  { machine; heap; rt; tool = Runtime.tool rt; resp }

let threshold = 2

let alphabet ?(plant = false) () =
  Sim.Packed
    { Sim.name = (if plant then "respond-lost-conviction" else "respond");
      ops;
      init =
        (fun ~seed ->
          let store = Persist.create () in
          { obl =
              make_side ~seed ~offset:0 ~store:(oblivious_store ())
                (Respond.create Respond.Oblivious);
            pat =
              make_side ~seed ~offset:1 ~store
                (Respond.create (Respond.Patch threshold));
            store;
            threshold;
            hits = Hashtbl.create 8;
            buggy = plant });
      check;
      digest;
      teardown =
        (fun st ->
          Runtime.finish st.obl.rt;
          Runtime.finish st.pat.rt;
          Sparse_mem.release (Machine.mem st.obl.machine);
          Sparse_mem.release (Machine.mem st.pat.machine)) }
