(* Alphabet over the assembled CSOD runtime.  The machine carries a
   zero-rate injector purely as a vehicle for [Fault_injector.force]: a
   fault op schedules a single-shot at an exact step, so interleavings like
   "drop the trap of the very next overflow" are explored systematically
   instead of by rate.  A zero plan with no pending shot draws nothing, so
   an op sequence without fault ops is bit-identical to an unfaulted run. *)

type obj = { ptr : int; size : int }

type state = {
  machine : Machine.t;
  heap : Heap.t;
  rt : Runtime.t;
  tool : Tool.t;
  inj : Fault_injector.t;
  mutable live : obj list; (* allocation order, oldest first *)
  mutable last_detections : int;
}

let nth_obj st idx = List.nth st.live (idx mod List.length st.live)

let force point =
  (fun st (_ : int list) ->
    Fault_injector.force st.inj point;
    Ok ())

let fault_op name point =
  { Sim.op_name = name;
    weight = 1;
    pre = (fun (_ : state) -> true);
    gen = (fun _ _ -> []);
    apply = force point }

let ops : state Sim.op list =
  [ { Sim.op_name = "alloc";
      weight = 6;
      pre = (fun _ -> true);
      gen =
        (fun _ g -> [ 8 + Prng.int g 128; Prng.int g 16; Prng.int g 4 ]);
      apply =
        (fun st args ->
          let size, callsite, soff =
            match args with
            | s :: c :: o :: _ -> (max 1 s, c mod 16, o mod 4)
            | _ -> (8, 0, 0)
          in
          let ctx = Alloc_ctx.synthetic ~callsite ~stack_offset:soff () in
          let p = st.tool.Tool.malloc ~size ~ctx in
          st.live <- st.live @ [ { ptr = p; size } ];
          Ok ()) };
    { Sim.op_name = "free";
      weight = 4;
      pre = (fun st -> st.live <> []);
      gen = (fun st g -> [ Prng.int g (max 1 (List.length st.live)) ]);
      apply =
        (fun st args ->
          let idx = match args with i :: _ -> i | [] -> 0 in
          let o = nth_obj st idx in
          st.live <- List.filter (fun o' -> o'.ptr <> o.ptr) st.live;
          st.tool.Tool.free ~ptr:o.ptr;
          Ok ()) };
    { Sim.op_name = "write";
      weight = 3;
      pre = (fun st -> st.live <> []);
      gen =
        (fun st g ->
          [ Prng.int g (max 1 (List.length st.live)); Prng.int g 128;
            Prng.int g 64 ]);
      apply =
        (fun st args ->
          (* In-bounds store through the checked machine path: never a
             detection, but it exercises the armed debug registers. *)
          let idx, off, pc =
            match args with
            | i :: o :: p :: _ -> (i, o, p)
            | _ -> (0, 0, 0)
          in
          let o = nth_obj st idx in
          Machine.set_pc st.machine (0x400 + (pc mod 64));
          Machine.store_byte st.machine (o.ptr + (off mod o.size)) 0x41;
          Ok ()) };
    { Sim.op_name = "read";
      weight = 2;
      pre = (fun st -> st.live <> []);
      gen =
        (fun st g ->
          [ Prng.int g (max 1 (List.length st.live)); Prng.int g 128;
            Prng.int g 64 ]);
      apply =
        (fun st args ->
          let idx, off, pc =
            match args with
            | i :: o :: p :: _ -> (i, o, p)
            | _ -> (0, 0, 0)
          in
          let o = nth_obj st idx in
          Machine.set_pc st.machine (0x400 + (pc mod 64));
          ignore (Machine.load_byte st.machine (o.ptr + (off mod o.size)));
          Ok ()) };
    { Sim.op_name = "overflow";
      weight = 2;
      pre = (fun st -> st.live <> []);
      gen =
        (fun st g ->
          [ Prng.int g (max 1 (List.length st.live)); Prng.int g 64 ]);
      apply =
        (fun st args ->
          (* One past the end: trips the boundary watchpoint if this object
             is watched (a trap-drop single-shot suppresses exactly that),
             or corrupts the canary for the free-time check.  Detections
             may only ever grow — checked as an invariant. *)
          let idx, pc =
            match args with i :: p :: _ -> (i, p) | _ -> (0, 0)
          in
          let o = nth_obj st idx in
          Machine.set_pc st.machine (0x800 + (pc mod 64));
          Machine.store_byte st.machine (o.ptr + o.size) 0x42;
          Ok ()) };
    { Sim.op_name = "disarm";
      weight = 1;
      pre =
        (fun st -> Watch_table.live (Runtime.watch_table st.rt) <> []);
      gen =
        (fun st g ->
          [ Prng.int g
              (max 1
                 (List.length (Watch_table.live (Runtime.watch_table st.rt))))
          ]);
      apply =
        (fun st args ->
          (* Policy-external removal — a debugger stealing the slot.  The
             table and the hardware must stay in agreement. *)
          let idx = match args with i :: _ -> i | [] -> 0 in
          let wt = Runtime.watch_table st.rt in
          let wps = Watch_table.live wt in
          let wp = List.nth wps (idx mod List.length wps) in
          Watch_table.remove wt wp;
          Ok ()) };
    fault_op "fault-ebusy" Fault_plan.Perf_ebusy;
    fault_op "fault-eacces" Fault_plan.Perf_eacces;
    fault_op "fault-trap-drop" Fault_plan.Trap_drop;
    fault_op "fault-trap-delay" Fault_plan.Trap_delay ]

let check st =
  let armed = Hw_breakpoint.armed_count (Machine.hw st.machine) in
  let entries = List.length (Watch_table.live (Runtime.watch_table st.rt)) in
  let detections = List.length (Runtime.detections st.rt) in
  if armed > 4 then Some (Printf.sprintf "%d armed watchpoints" armed)
  else if entries <> armed then
    Some
      (Printf.sprintf "watch table holds %d, hardware arms %d" entries armed)
  else if Heap.live_objects st.heap <> List.length st.live then
    Some
      (Printf.sprintf "heap live count %d, model %d"
         (Heap.live_objects st.heap) (List.length st.live))
  else if detections < st.last_detections then
    Some
      (Printf.sprintf "detections went backwards: %d after %d" detections
         st.last_detections)
  else begin
    st.last_detections <- detections;
    None
  end

let digest st =
  let h = ref 0x9E3779B97F4A7C15L in
  let mix v = h := Int64.mul (Int64.logxor !h (Int64.of_int v)) 0x100000001B3L in
  let s = Runtime.stats st.rt in
  mix s.Runtime.contexts;
  mix s.Runtime.allocations;
  mix s.Runtime.watched_times;
  mix s.Runtime.traps;
  mix s.Runtime.canary_checks;
  mix s.Runtime.live_objects;
  mix (Hw_breakpoint.armed_count (Machine.hw st.machine));
  mix (List.length (Runtime.detections st.rt));
  mix (if Runtime.degraded st.rt then 1 else 0);
  !h

let alphabet () =
  Sim.Packed
    { Sim.name = "runtime";
      ops;
      init =
        (fun ~seed ->
          let inj = Fault_injector.create ~plan:Fault_plan.zero ~salt:seed in
          let machine = Machine.create ~seed ~faults:inj () in
          let heap = Heap.create machine in
          let rt = Runtime.create ~seed ~machine ~heap () in
          { machine;
            heap;
            rt;
            tool = Runtime.tool rt;
            inj;
            live = [];
            last_detections = 0 });
      check;
      digest;
      teardown =
        (fun st ->
          Runtime.finish st.rt;
          Sparse_mem.release (Machine.mem st.machine)) }
