(** Simulation alphabet over the persistent evidence store: {!Persist}
    save/load/merge against a key-set model, with the persistence fault
    points (torn write, ENOSPC) as first-class forced operations.

    Invariants after every step: each store's key set equals its model,
    [Persist.merge] is commutative and a key-set union (probed with fresh
    copies), and a load observes exactly what the last successful save
    published (after a torn save: the salvaged keys, which are the
    published ones plus at most one key fabricated by the tear's final
    partial line still parsing as a pair).

    [~buggy_merge:true] plants a known bug behind a flag — the merge
    operation silently drops the largest key of the source store whenever
    the source holds at least two keys, breaking union and commutativity —
    as the seeded target for the shrinking regression test.  Only the
    ["store-buggy-merge"] alphabet is wired that way; the default
    ["store"] alphabet exercises the real, correct merge. *)

val alphabet : ?buggy_merge:bool -> unit -> Sim.packed
(** Registered as ["store"], or ["store-buggy-merge"] with the planted
    bug. *)
