(** Registry of every simulation alphabet the harness ships.

    {!default} is the sweep set (the five real-system alphabets);
    {!all} additionally exposes the planted-bug variants
    (["store-buggy-merge"], ["fleet-evidence-bug"],
    ["respond-lost-conviction"]) so the shrinking regression tests and the
    CLI can reach them by explicit name, while the CI sweep never trips
    over a bug that was planted on purpose. *)

val default : Sim.packed list
(** ["heap"; "runtime"; "fleet"; "store"; "respond"] — every alphabet
    expected to hold its invariants. *)

val all : Sim.packed list
(** {!default} plus the planted-bug alphabets. *)

val find : string -> Sim.packed option
(** Look up any alphabet (planted ones included) by registered name. *)

val names : string list
(** Registered names of {!all}, in registry order. *)
