(* Alphabet over the incremental fleet.  The executor is synthetic and
   pure: user uid detects iff uid is a multiple of 3 and no trap-drop was
   forced for its epoch, and a detecting execution adds one evidence key to
   the store it was handed — so the model can predict detections, arrivals
   and the exact shared key set after every barrier.  Crash + resume goes
   through a real Persist save/load and Fleet's epoch0/uid0 offsets, so the
   resumed stream must line up with the uninterrupted one. *)

module KeySet = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let users_cap = 1_000_000

type state = {
  cfg : Fleet.config;
  execute : unit Fleet.executor;
  trap_drop : bool ref; (* read by the executor during the next barrier *)
  mutable fleet : unit Fleet.t;
  mutable model_keys : KeySet.t;
  mutable model_detections : int; (* of the current fleet instance *)
  mutable model_arrived : int;    (* of the current fleet instance *)
  path : string;
  mutable saved : KeySet.t option;
}

let evidence_key uid = (uid mod 5, uid mod 2)
let would_detect uid = uid mod 3 = 0

let make_executor ~plant ~trap_drop : unit Fleet.executor =
 fun ~user ~store ->
  let uid = user.Workload.uid in
  let dropped = !trap_drop in
  let detected = would_detect uid && not dropped in
  if detected then Persist.add store (evidence_key uid);
  if plant && would_detect uid && dropped then
    (* Planted bug: the lost trap suppressed the detection, but the
       evidence write slipped through anyway — the store now convicts a
       context no execution reported. *)
    Persist.add store (evidence_key uid);
  { Fleet.payload = ();
    detected;
    source = None;
    cycles = 10 + (uid mod 7);
    telemetry = None;
    degraded = false }

let start_fleet st ~store ~epoch0 ~uid0 =
  Fleet.start ?store ~epoch0 ~uid0 st.cfg ~execute:st.execute

let ops : state Sim.op list =
  [ { Sim.op_name = "barrier";
      weight = 6;
      pre = (fun _ -> true);
      gen = (fun _ g -> [ 1 + Prng.int g 6 ]);
      apply =
        (fun st args ->
          let arrivals =
            match args with n :: _ -> 1 + (n mod 6) | [] -> 1
          in
          let uid0 = Fleet.next_uid st.fleet in
          ignore (Fleet.step st.fleet ~arrivals);
          let dropped = !(st.trap_drop) in
          for uid = uid0 to uid0 + arrivals - 1 do
            if would_detect uid && not dropped then begin
              st.model_detections <- st.model_detections + 1;
              st.model_keys <- KeySet.add (evidence_key uid) st.model_keys
            end
          done;
          st.model_arrived <- st.model_arrived + arrivals;
          st.trap_drop := false;
          Ok ()) };
    { Sim.op_name = "fault-trap-drop";
      weight = 2;
      pre = (fun st -> not !(st.trap_drop));
      gen = (fun _ _ -> []);
      apply =
        (fun st _ ->
          st.trap_drop := true;
          Ok ()) };
    { Sim.op_name = "persist-save";
      weight = 2;
      pre = (fun _ -> true);
      gen = (fun _ _ -> []);
      apply =
        (fun st _ ->
          Persist.save (Fleet.store st.fleet) st.path;
          st.saved <- Some st.model_keys;
          Ok ()) };
    { Sim.op_name = "persist-load";
      weight = 1;
      pre = (fun st -> st.saved <> None);
      gen = (fun _ _ -> []);
      apply =
        (fun st _ ->
          let got = KeySet.of_list (Persist.keys (Persist.load st.path)) in
          match st.saved with
          | Some ks when KeySet.equal got ks -> Ok ()
          | Some ks ->
            Error
              (Printf.sprintf "checkpoint load found %d keys, saved %d"
                 (KeySet.cardinal got) (KeySet.cardinal ks))
          | None -> Ok ()) };
    { Sim.op_name = "crash";
      weight = 1;
      pre = (fun st -> st.saved <> None);
      gen = (fun _ _ -> []);
      apply =
        (fun st _ ->
          (* Service crash: the in-flight instance is lost; resume from the
             last checkpoint with epoch/uid offsets so the arrival stream
             continues deterministically.  Evidence since the checkpoint is
             gone — exactly what a real upload gap loses. *)
          let epoch0 = Fleet.epoch st.fleet in
          let uid0 = Fleet.next_uid st.fleet in
          ignore (Fleet.finish st.fleet);
          let store = Persist.load st.path in
          st.fleet <- start_fleet st ~store:(Some store) ~epoch0 ~uid0;
          st.model_keys <-
            (match st.saved with Some ks -> ks | None -> KeySet.empty);
          st.model_detections <- 0;
          st.model_arrived <- 0;
          st.trap_drop := false;
          Ok ()) } ]

let check st =
  let got_keys = KeySet.of_list (Persist.keys (Fleet.store st.fleet)) in
  if Fleet.detections st.fleet <> st.model_detections then
    Some
      (Printf.sprintf "fleet reports %d detections, model %d"
         (Fleet.detections st.fleet) st.model_detections)
  else if Fleet.arrived st.fleet <> st.model_arrived then
    Some
      (Printf.sprintf "fleet admitted %d users, model %d"
         (Fleet.arrived st.fleet) st.model_arrived)
  else if not (KeySet.equal got_keys st.model_keys) then
    Some
      (Printf.sprintf "shared store holds %d contexts, model %d"
         (KeySet.cardinal got_keys) (KeySet.cardinal st.model_keys))
  else None

let digest st =
  let h = ref 0x9E3779B97F4A7C15L in
  let mix v = h := Int64.mul (Int64.logxor !h (Int64.of_int v)) 0x100000001B3L in
  mix (Fleet.detections st.fleet);
  mix (Fleet.arrived st.fleet);
  mix (Fleet.next_uid st.fleet);
  mix (Fleet.epoch st.fleet);
  let acc = ref 0L in
  List.iter
    (fun (c, o) -> acc := Int64.add !acc (Int64.of_int (((c * 131) + o) + 1)))
    (Persist.keys (Fleet.store st.fleet));
  Int64.logxor !h !acc

let alphabet ?(plant = false) () =
  Sim.Packed
    { Sim.name = (if plant then "fleet-evidence-bug" else "fleet");
      ops;
      init =
        (fun ~seed ->
          let workload =
            Workload.make ~base_seed:seed ~users:users_cap ()
          in
          (* domains = 1: the pool runs inline (no spawning), and the fleet
             report is domain-count-independent by construction — pinned
             separately by the fleet tests. *)
          let cfg = Fleet.config ~domains:1 ~epoch_size:4 workload in
          let trap_drop = ref false in
          let execute = make_executor ~plant ~trap_drop in
          let fleet = Fleet.start ~epoch0:0 ~uid0:1 cfg ~execute in
          { cfg;
            execute;
            trap_drop;
            fleet;
            model_keys = KeySet.empty;
            model_detections = 0;
            model_arrived = 0;
            path = Filename.temp_file "csod_sim_fleet" ".store";
            saved = None });
      check;
      digest;
      teardown =
        (fun st ->
          (try ignore (Fleet.finish st.fleet) with _ -> ());
          try Sys.remove st.path with Sys_error _ -> ()) }
