(* Alphabet over Heap + Sparse_mem.  The sparse memory under test is a
   standalone instance (not the machine's) so the byte model covers every
   write; the heap draws from its own machine as in production.

   Addresses cluster near chunk boundaries — the same distribution the
   original hand-rolled property used — so word accesses regularly straddle
   two chunks; [gen] resolves the clustering into a concrete address, which
   keeps recorded sequences self-contained and lets shrinking minimize the
   address directly. *)

type state = {
  machine : Machine.t;
  heap : Heap.t;
  live : (int, int) Hashtbl.t; (* app pointer -> requested size *)
  mutable freed : int list;    (* most recent first *)
  mutable mem : Sparse_mem.t;
  bytes : (int, int) Hashtbl.t; (* model of [mem] *)
}

let live_ptrs st =
  List.sort compare (Hashtbl.fold (fun p _ acc -> p :: acc) st.live [])

let byte st a = Option.value ~default:0 (Hashtbl.find_opt st.bytes a)

let gen_addr g =
  let base = Prng.int g 4 * Sparse_mem.chunk_size in
  let off =
    match Prng.int g 3 with
    | 0 -> Prng.int g Sparse_mem.chunk_size
    | 1 -> Sparse_mem.chunk_size - 8 + Prng.int g 16
    | _ -> Prng.int g 256
  in
  base + off

let nth_live st idx =
  let ptrs = live_ptrs st in
  List.nth ptrs (idx mod List.length ptrs)

let ops : state Sim.op list =
  [ { Sim.op_name = "alloc";
      weight = 5;
      pre = (fun _ -> true);
      gen = (fun _ g -> [ 1 + Prng.int g 512 ]);
      apply =
        (fun st args ->
          let size = max 1 (match args with s :: _ -> s | [] -> 1) in
          let p = Heap.malloc st.heap size in
          if Hashtbl.mem st.live p then
            Error (Printf.sprintf "malloc returned live pointer %#x" p)
          else begin
            Hashtbl.replace st.live p size;
            Ok ()
          end) };
    { Sim.op_name = "free";
      weight = 3;
      pre = (fun st -> Hashtbl.length st.live > 0);
      gen = (fun st g -> [ Prng.int g (max 1 (Hashtbl.length st.live)) ]);
      apply =
        (fun st args ->
          let idx = match args with i :: _ -> i | [] -> 0 in
          let p = nth_live st idx in
          Heap.free st.heap p;
          Hashtbl.remove st.live p;
          st.freed <- p :: st.freed;
          Ok ()) };
    { Sim.op_name = "double-free";
      weight = 1;
      pre = (fun st -> st.freed <> []);
      gen = (fun _ _ -> []);
      apply =
        (fun st _ ->
          match st.freed with
          | [] -> Ok ()
          | p :: _ when Heap.is_live st.heap p -> Ok () (* block recycled *)
          | p :: _ -> (
            match Heap.free st.heap p with
            | () -> Error (Printf.sprintf "double free of %#x accepted" p)
            | exception Heap.Error _ -> Ok ())) };
    { Sim.op_name = "write-u8";
      weight = 4;
      pre = (fun _ -> true);
      gen = (fun _ g -> [ gen_addr g; Prng.int g 256 ]);
      apply =
        (fun st args ->
          let a, v =
            match args with a :: v :: _ -> (a, v land 0xff) | _ -> (0, 0)
          in
          Sparse_mem.write_u8 st.mem a v;
          Hashtbl.replace st.bytes a v;
          Ok ()) };
    { Sim.op_name = "write-u64";
      weight = 2;
      pre = (fun _ -> true);
      gen = (fun _ g -> [ gen_addr g; Prng.int g 0x40000000 ]);
      apply =
        (fun st args ->
          let a, v = match args with a :: v :: _ -> (a, v) | _ -> (0, 0) in
          (* Spread the 30 generated bits over all 8 bytes so straddling
             writes exercise both chunks with nonzero data. *)
          let v64 = Int64.mul (Int64.of_int v) 0x01000193L in
          Sparse_mem.write_u64 st.mem a v64;
          for i = 0 to 7 do
            Hashtbl.replace st.bytes (a + i)
              (Int64.to_int (Int64.shift_right_logical v64 (8 * i)) land 0xff)
          done;
          Ok ()) };
    { Sim.op_name = "read-u8";
      weight = 3;
      pre = (fun _ -> true);
      gen = (fun _ g -> [ gen_addr g ]);
      apply =
        (fun st args ->
          let a = match args with a :: _ -> a | [] -> 0 in
          let got = Sparse_mem.read_u8 st.mem a in
          if got <> byte st a then
            Error
              (Printf.sprintf "read_u8 %#x = %d, model %d" a got (byte st a))
          else Ok ()) };
    { Sim.op_name = "read-u64";
      weight = 2;
      pre = (fun _ -> true);
      gen = (fun _ g -> [ gen_addr g ]);
      apply =
        (fun st args ->
          let a = match args with a :: _ -> a | [] -> 0 in
          let got = Sparse_mem.read_u64 st.mem a in
          let expect = ref 0L in
          for i = 7 downto 0 do
            expect :=
              Int64.logor (Int64.shift_left !expect 8)
                (Int64.of_int (byte st (a + i)))
          done;
          if got <> !expect then
            Error
              (Printf.sprintf "read_u64 %#x = %Ld, model %Ld" a got !expect)
          else Ok ()) };
    { Sim.op_name = "fill";
      weight = 1;
      pre = (fun _ -> true);
      gen = (fun _ g -> [ gen_addr g; Prng.int g 300; Prng.int g 256 ]);
      apply =
        (fun st args ->
          let a, len, v =
            match args with
            | a :: l :: v :: _ -> (a, l, v land 0xff)
            | _ -> (0, 0, 0)
          in
          Sparse_mem.fill st.mem a len v;
          for i = 0 to len - 1 do
            Hashtbl.replace st.bytes (a + i) v
          done;
          Ok ()) };
    { Sim.op_name = "cache";
      weight = 1;
      pre = (fun _ -> true);
      gen = (fun _ g -> [ (if Prng.bool g then 1 else 0) ]);
      apply =
        (fun st args ->
          Sparse_mem.set_cache st.mem (match args with b :: _ -> b land 1 = 1 | [] -> true);
          Ok ()) };
    { Sim.op_name = "recycle";
      weight = 1;
      pre = (fun _ -> true);
      gen = (fun _ g -> [ gen_addr g; Prng.int g Sparse_mem.chunk_size ]);
      apply =
        (fun st args ->
          (* Pool hygiene: release the (dirty) chunks, then force a fresh
             memory to materialize chunks — which reuses pooled pages — and
             check an untouched byte still reads as zero. *)
          let a, probe_off =
            match args with a :: o :: _ -> (a, o) | _ -> (0, 1)
          in
          Sparse_mem.release st.mem;
          st.mem <- Sparse_mem.create ();
          Hashtbl.reset st.bytes;
          Sparse_mem.write_u8 st.mem a 0x5A;
          Hashtbl.replace st.bytes a 0x5A;
          let b = (a / Sparse_mem.chunk_size * Sparse_mem.chunk_size) + probe_off in
          if b <> a && Sparse_mem.read_u8 st.mem b <> 0 then
            Error (Printf.sprintf "pooled page not zeroed at %#x" b)
          else Ok ()) } ]

let check st =
  if Heap.live_objects st.heap <> Hashtbl.length st.live then
    Some
      (Printf.sprintf "heap live count %d, model %d"
         (Heap.live_objects st.heap) (Hashtbl.length st.live))
  else
    Hashtbl.fold
      (fun p _ acc ->
        match acc with
        | Some _ -> acc
        | None ->
          if Heap.is_live st.heap p then None
          else Some (Printf.sprintf "live pointer %#x lost" p))
      st.live None

let digest st =
  let h = ref 0x9E3779B97F4A7C15L in
  let mix v = h := Int64.mul (Int64.logxor !h (Int64.of_int v)) 0x100000001B3L in
  mix (Heap.live_objects st.heap);
  mix (Heap.live_bytes st.heap);
  mix (Heap.total_allocs st.heap);
  mix (Heap.total_frees st.heap);
  (* Order-independent fold over the byte model. *)
  let acc = ref 0L in
  Hashtbl.iter
    (fun a v -> acc := Int64.add !acc (Int64.of_int (((a * 31) + v) lxor (a lsr 7))))
    st.bytes;
  Int64.logxor !h !acc

let alphabet () =
  Sim.Packed
    { Sim.name = "heap";
      ops;
      init =
        (fun ~seed ->
          let machine = Machine.create ~seed () in
          { machine;
            heap = Heap.create machine;
            live = Hashtbl.create 64;
            freed = [];
            mem = Sparse_mem.create ();
            bytes = Hashtbl.create 256 });
      check;
      digest;
      teardown =
        (fun st ->
          Sparse_mem.release st.mem;
          Sparse_mem.release (Machine.mem st.machine)) }
