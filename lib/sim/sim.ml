(* The simulation-test engine: seed-controlled generation over a declarative
   operation alphabet, stepwise invariant checking, greedy shrinking, and
   JSONL repros that re-execute bit-identically.

   All generation randomness comes from one stream forked off the run seed
   by label ("sim:<alphabet>"), so the system under test's own PRNGs — the
   machine generator, the fault stream — never interleave with sequence
   generation, and a recorded sequence replays without the generation
   stream at all. *)

type step = { op : string; args : int list }

type 's op = {
  op_name : string;
  weight : int;
  pre : 's -> bool;
  gen : 's -> Prng.t -> int list;
  apply : 's -> int list -> (unit, string) result;
}

type 's alphabet = {
  name : string;
  ops : 's op list;
  init : seed:int -> 's;
  check : 's -> string option;
  digest : 's -> int64;
  teardown : 's -> unit;
}

type packed = Packed : 's alphabet -> packed

let name_of (Packed a) = a.name
let find packs name = List.find_opt (fun p -> name_of p = name) packs

type failure = {
  alphabet : string;
  seed : int;
  steps : step list;
  failed_at : int;
  message : string;
  replay_hash : int64;
  shrunk_from : int;
}

type exec_result = {
  failed : (int * string) option;
  hash : int64;
  applied : int;
}

(* ---- replay hash: FNV-1a folded over the executed trace ---------------- *)

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let mix_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let mix_int64 h v =
  let h = ref h in
  for i = 0 to 7 do
    h := mix_byte !h (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done;
  !h

let mix_int h v = mix_int64 h (Int64.of_int v)

let mix_string h s =
  let h = ref h in
  String.iter (fun c -> h := mix_byte !h (Char.code c)) s;
  !h

(* ---- execution --------------------------------------------------------- *)

let with_state a ~seed f =
  let s = a.init ~seed in
  Fun.protect ~finally:(fun () -> a.teardown s) (fun () -> f s)

let op_by_name a name = List.find_opt (fun o -> o.op_name = name) a.ops

let exec a ~seed steps =
  with_state a ~seed (fun s ->
      let hash = ref fnv_offset in
      let applied = ref 0 in
      let failed = ref None in
      (try
         List.iteri
           (fun i st ->
             match op_by_name a st.op with
             | None ->
               failed := Some (i, Printf.sprintf "unknown op %S" st.op);
               raise Exit
             | Some o when not (o.pre s) -> () (* skipped: precondition gone *)
             | Some o ->
               incr applied;
               hash := mix_string !hash st.op;
               List.iter (fun v -> hash := mix_int !hash v) st.args;
               let outcome =
                 match o.apply s st.args with
                 | Error msg -> Some msg
                 | Ok () -> a.check s
               in
               hash := mix_int64 !hash (a.digest s);
               (match outcome with
               | Some msg ->
                 hash := mix_string !hash msg;
                 failed := Some (i, msg);
                 raise Exit
               | None -> ()))
           steps
       with Exit -> ());
      { failed = !failed; hash = !hash; applied = !applied })

(* ---- generation -------------------------------------------------------- *)

let pick_op a s g =
  let candidates = List.filter (fun o -> o.pre s) a.ops in
  match candidates with
  | [] -> None
  | _ ->
    let total = List.fold_left (fun acc o -> acc + max 1 o.weight) 0 candidates in
    let r = Prng.int g total in
    let rec go r = function
      | [] -> assert false
      | [ o ] -> o
      | o :: rest ->
        let w = max 1 o.weight in
        if r < w then o else go (r - w) rest
    in
    Some (go r candidates)

let generate a ~seed ~ops =
  (* One state drives generation (preconditions consult it); the recorded
     sequence is then re-executed from scratch by [exec] so that the
     reported failure and hash are exactly what a replay reproduces. *)
  let g = Prng.fork (Prng.create ~seed) ("sim:" ^ a.name) in
  with_state a ~seed (fun s ->
      let steps = ref [] in
      (try
         for _ = 1 to ops do
           match pick_op a s g with
           | None -> raise Exit
           | Some o ->
             let args = o.gen s g in
             steps := { op = o.op_name; args } :: !steps;
             (match o.apply s args with
             | Error _ -> raise Exit
             | Ok () -> if a.check s <> None then raise Exit)
         done
       with Exit -> ());
      List.rev !steps)

let failure_of_exec a ~seed ~shrunk_from steps r =
  match r.failed with
  | None -> None
  | Some (i, msg) ->
    Some
      { alphabet = a.name;
        seed;
        steps;
        failed_at = i;
        message = msg;
        replay_hash = r.hash;
        shrunk_from }

let run_one a ~seed ~ops =
  let steps = generate a ~seed ~ops in
  failure_of_exec a ~seed ~shrunk_from:(List.length steps) steps
    (exec a ~seed steps)

(* ---- shrinking --------------------------------------------------------- *)

let shrink ?(budget = 4000) a f =
  let budget = ref budget in
  let attempt steps =
    if !budget <= 0 then None
    else begin
      decr budget;
      let r = exec a ~seed:f.seed steps in
      match r.failed with None -> None | Some _ -> Some r
    end
  in
  let current = ref (Array.of_list f.steps) in
  let best = ref (exec a ~seed:f.seed f.steps) in
  let accept steps r =
    current := Array.of_list steps;
    best := r
  in
  (* Phase 1: chunk removal, halving chunk sizes down to single ops; rescan
     from the largest chunk size after any successful removal so freshly
     exposed redundancy is retried cheaply. *)
  let removed_something = ref true in
  while !removed_something && !budget > 0 do
    removed_something := false;
    let chunk = ref (max 1 (Array.length !current / 2)) in
    while !chunk >= 1 && !budget > 0 do
      let pos = ref 0 in
      while !pos < Array.length !current && !budget > 0 do
        let arr = !current in
        let n = Array.length arr in
        let len = min !chunk (n - !pos) in
        if len >= 1 && n - len >= 1 then begin
          let candidate =
            Array.to_list (Array.sub arr 0 !pos)
            @ Array.to_list (Array.sub arr (!pos + len) (n - !pos - len))
          in
          match attempt candidate with
          | Some r ->
            accept candidate r;
            removed_something := true
            (* same [pos]: the next chunk slid into place *)
          | None -> pos := !pos + len
        end
        else pos := !pos + max 1 len
      done;
      chunk := if !chunk = 1 then 0 else max 1 (!chunk / 2)
    done
  done;
  (* Phase 2: per-argument minimization — try 0, then halving, then
     decrement, greedily per argument.  The sequence length is fixed here,
     only argument values change. *)
  let improved = ref true in
  while !improved && !budget > 0 do
    improved := false;
    for i = 0 to Array.length !current - 1 do
      let nargs = List.length (!current).(i).args in
      for j = 0 to nargs - 1 do
        let try_value v' =
          let st = (!current).(i) in
          let args' = List.mapi (fun k x -> if k = j then v' else x) st.args in
          let cand = Array.copy !current in
          cand.(i) <- { st with args = args' };
          let cand = Array.to_list cand in
          match attempt cand with
          | Some r ->
            accept cand r;
            improved := true;
            true
          | None -> false
        in
        let v = List.nth (!current).(i).args j in
        if v > 0 && not (try_value 0) then begin
          let v = List.nth (!current).(i).args j in
          if v / 2 > 0 && v / 2 < v then ignore (try_value (v / 2));
          let v = List.nth (!current).(i).args j in
          if v > 0 then ignore (try_value (v - 1))
        end
      done
    done
  done;
  let steps = Array.to_list !current in
  match failure_of_exec a ~seed:f.seed ~shrunk_from:f.shrunk_from steps !best with
  | Some f' -> f'
  | None -> f (* unreachable: !best always holds a failing execution *)

(* ---- sweeps ------------------------------------------------------------ *)

let run ?(shrink_failures = true) ?(max_failures = 1) a ~seed ~runs ~ops =
  let failures = ref [] in
  (try
     for i = 0 to runs - 1 do
       match run_one a ~seed:(seed + i) ~ops with
       | None -> ()
       | Some f ->
         let f = if shrink_failures then shrink a f else f in
         failures := f :: !failures;
         if List.length !failures >= max_failures then raise Exit
     done
   with Exit -> ());
  List.rev !failures

let run_packed ?shrink_failures ?max_failures (Packed a) ~seed ~runs ~ops =
  run ?shrink_failures ?max_failures a ~seed ~runs ~ops

(* ---- repros ------------------------------------------------------------ *)

let schema = "csod.sim.repro/1"

let hash_hex h = Printf.sprintf "%016Lx" h

let to_json f : Obs_json.t =
  `Assoc
    [ ("schema", `String schema);
      ("alphabet", `String f.alphabet);
      ("seed", `Int f.seed);
      ("ops",
       `List
         (List.map
            (fun st ->
              `Assoc
                [ ("op", `String st.op);
                  ("args", `List (List.map (fun v -> `Int v) st.args)) ])
            f.steps));
      ("failed_at", `Int f.failed_at);
      ("failure", `String f.message);
      ("replay_hash", `String (hash_hex f.replay_hash));
      ("shrunk_from", `Int f.shrunk_from) ]

let of_json json =
  let open Obs_json in
  let str k = match member k json with Some (`String s) -> Some s | _ -> None in
  let int k = Option.bind (member k json) to_int in
  match (str "schema", str "alphabet", int "seed", member "ops" json) with
  | Some s, _, _, _ when s <> schema ->
    Error (Printf.sprintf "schema %S, expected %S" s schema)
  | _, Some alphabet, Some seed, Some (`List ops) -> (
    let parse_step = function
      | `Assoc _ as o -> (
        match (member "op" o, member "args" o) with
        | Some (`String name), Some (`List args) ->
          let args = List.filter_map to_int args in
          Some { op = name; args }
        | _ -> None)
      | _ -> None
    in
    let steps = List.filter_map parse_step ops in
    if List.length steps <> List.length ops then Error "malformed op entry"
    else
      match (int "failed_at", str "failure", str "replay_hash") with
      | Some failed_at, Some message, Some hex -> (
        match Int64.of_string_opt ("0x" ^ hex) with
        | None -> Error (Printf.sprintf "bad replay_hash %S" hex)
        | Some replay_hash ->
          Ok
            { alphabet;
              seed;
              steps;
              failed_at;
              message;
              replay_hash;
              shrunk_from =
                Option.value (int "shrunk_from") ~default:(List.length steps) })
      | _ -> Error "missing failed_at/failure/replay_hash")
  | _ -> Error "missing alphabet/seed/ops"

let repro_line f = Obs_json.to_string (to_json f)

let replay_hint ~file = Printf.sprintf "csod_run sim --replay %s" file

let summary f =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s: invariant violated after %d op(s) (shrunk from %d):\n"
       f.alphabet (List.length f.steps) f.shrunk_from);
  List.iteri
    (fun i st ->
      Buffer.add_string buf
        (Printf.sprintf "  %s%2d. %s%s\n"
           (if i = f.failed_at then "!" else " ")
           (i + 1) st.op
           (match st.args with
           | [] -> ""
           | args ->
             "(" ^ String.concat ", " (List.map string_of_int args) ^ ")")))
    f.steps;
  Buffer.add_string buf (Printf.sprintf "  failure: %s\n" f.message);
  Buffer.add_string buf
    (Printf.sprintf "  seed %d, replay hash %s\n" f.seed (hash_hex f.replay_hash));
  Buffer.contents buf

let replay packs f =
  match find packs f.alphabet with
  | None -> Error (Printf.sprintf "unknown alphabet %S" f.alphabet)
  | Some (Packed a) -> (
    let r = exec a ~seed:f.seed f.steps in
    match r.failed with
    | None -> Error "replay did not fail: the recorded violation is gone"
    | Some (i, msg) ->
      if i <> f.failed_at then
        Error
          (Printf.sprintf "replay failed at step %d, recorded %d" (i + 1)
             (f.failed_at + 1))
      else if msg <> f.message then
        Error (Printf.sprintf "replay failure %S, recorded %S" msg f.message)
      else if r.hash <> f.replay_hash then
        Error
          (Printf.sprintf "replay hash %s, recorded %s" (hash_hex r.hash)
             (hash_hex f.replay_hash))
      else
        Ok
          (Printf.sprintf
             "%s: %d op(s) re-executed bit-identically (hash %s, failure at \
              step %d)"
             f.alphabet (List.length f.steps) (hash_hex r.hash)
             (f.failed_at + 1)))
