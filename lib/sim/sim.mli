(** Deterministic simulation-test harness with automatic shrinking.

    A CoreSim-style layer over any stack layer of the CSOD simulation: an
    {e alphabet} declares the operations a system under test understands —
    weight, precondition, parameter generator, effect — plus a stepwise
    invariant; the engine draws operation sequences from a dedicated PRNG
    stream ({!Prng.fork}ed off the run seed, never the system's own),
    checks the invariant after every step, and on failure {e shrinks} the
    sequence to a minimal reproducing operation list by greedy chunk
    removal and parameter minimization.

    Every execution is deterministic: the recorded sequence carries the
    concrete parameters of each operation, so a counterexample replays
    without the generation stream, and a replay hash — folded over the op
    names, arguments and per-step state digests — certifies that a replay
    re-executed bit-identically.  Counterexamples pretty-print as one
    [csod.sim.repro/1] JSONL record and as a [csod_run sim --replay FILE]
    invocation. *)

(** {1 Sequences} *)

type step = {
  op : string;        (** operation name, from the alphabet *)
  args : int list;    (** concrete parameters, as generated *)
}

(** {1 Alphabets} *)

type 's op = {
  op_name : string;
  weight : int;  (** relative selection weight (>= 1) *)
  pre : 's -> bool;
      (** applicability given the current state; inapplicable ops are never
          generated and are {e skipped} during replay (shrinking can remove
          the op that established a precondition) *)
  gen : 's -> Prng.t -> int list;
      (** draw concrete parameters from the {e generation} stream; must not
          touch the system under test *)
  apply : 's -> int list -> (unit, string) result;
      (** perform the operation; [Error] is an operation-level invariant
          violation (e.g. an accepted double free).  Must consume no
          randomness other than the system's own internal streams, and must
          interpret out-of-range arguments totally (clamp or reduce), so
          that shrinking arguments never produces an ill-formed call. *)
}

type 's alphabet = {
  name : string;
  ops : 's op list;
  init : seed:int -> 's;
      (** fresh system-under-test + model, fully determined by [seed] *)
  check : 's -> string option;
      (** stepwise invariant, run after every applied op; [Some msg] is a
          violation *)
  digest : 's -> int64;
      (** cheap order-independent state fingerprint, folded into the replay
          hash after every step — what makes "replays bit-identically"
          checkable *)
  teardown : 's -> unit;  (** release pooled resources, temp files *)
}

type packed = Packed : 's alphabet -> packed

val name_of : packed -> string
val find : packed list -> string -> packed option

(** {1 Counterexamples} *)

type failure = {
  alphabet : string;
  seed : int;            (** run seed: [init ~seed] + the generation stream *)
  steps : step list;     (** the reproducing sequence *)
  failed_at : int;       (** index into [steps] of the violating op *)
  message : string;      (** invariant violation *)
  replay_hash : int64;   (** trace fold: ops, args, digests, message *)
  shrunk_from : int;     (** length of the originally generated sequence *)
}

type exec_result = {
  failed : (int * string) option;  (** (step index, message) *)
  hash : int64;
  applied : int;  (** steps whose precondition held *)
}

val exec : 's alphabet -> seed:int -> step list -> exec_result
(** Re-execute a recorded sequence: init, apply each step (skipping those
    whose precondition does not hold), check after every step, stop at the
    first violation.  Pure in [seed] and [steps]. *)

val run_one : 's alphabet -> seed:int -> ops:int -> failure option
(** Generate and execute one sequence of at most [ops] operations. *)

val shrink : ?budget:int -> 's alphabet -> failure -> failure
(** Minimize a counterexample: ddmin-style chunk removal to a 1-removal
    fixpoint, then per-argument minimization (0, halving, decrement), each
    candidate re-executed deterministically; a candidate is kept if {e any}
    invariant still fails.  [budget] (default 4000) bounds the number of
    re-executions. *)

val run :
  ?shrink_failures:bool ->
  ?max_failures:int ->
  's alphabet ->
  seed:int ->
  runs:int ->
  ops:int ->
  failure list
(** A sweep: [runs] sequences on seeds [seed, seed+1, ...], each failure
    shrunk (default true).  Stops early after [max_failures] (default 1). *)

val run_packed :
  ?shrink_failures:bool ->
  ?max_failures:int ->
  packed ->
  seed:int ->
  runs:int ->
  ops:int ->
  failure list

(** {1 Repros} *)

val schema : string
(** ["csod.sim.repro/1"]. *)

val to_json : failure -> Obs_json.t
val of_json : Obs_json.t -> (failure, string) result

val repro_line : failure -> string
(** The counterexample as one [csod.sim.repro/1] JSONL line. *)

val replay_hint : file:string -> string
(** The CLI invocation that re-executes a repro file bit-identically. *)

val summary : failure -> string
(** Human-readable rendering: the op list, the violation, the replay
    command. *)

val replay : packed list -> failure -> (string, string) result
(** Re-execute a parsed repro against its alphabet.  [Ok] iff the sequence
    fails at the recorded step with the recorded message {e and} the replay
    hash matches — same failure, same trace, no drift.  The string reports
    what matched or how the replay diverged. *)
