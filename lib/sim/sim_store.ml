(* Alphabet over the persistent evidence store.  Two stores evolve against
   key-set models; save/load go through a real temp file with the
   persistence fault points forceable at exact steps.  The buggy-merge
   variant plants a deliberate invariant bug (drop the source's largest key
   when it holds >= 2) behind the flag — the seeded target the shrinking
   regression test must find and minimize. *)

module KeySet = Set.Make (struct
  type t = int * int

  let compare = compare
end)

type published = Nothing | Exact of KeySet.t | Subset of KeySet.t

type state = {
  s1 : Persist.t;
  s2 : Persist.t;
  mutable k1 : KeySet.t;
  mutable k2 : KeySet.t;
  path : string;
  inj : Fault_injector.t;
  mutable saved : published;
  mutable fault_pending : Fault_plan.point option;
  buggy : bool;
}

let key_of args =
  match args with
  | c :: o :: _ -> (c mod 1000, o mod 64)
  | c :: _ -> (c mod 1000, 0)
  | [] -> (0, 0)

let add_op name pick =
  { Sim.op_name = name;
    weight = 4;
    pre = (fun (_ : state) -> true);
    gen = (fun _ g -> [ Prng.int g 1000; Prng.int g 64 ]);
    apply =
      (fun st args ->
        let k = key_of args in
        let s, set = pick st in
        Persist.add s k;
        (match set with
        | `K1 -> st.k1 <- KeySet.add k st.k1
        | `K2 -> st.k2 <- KeySet.add k st.k2);
        Ok ()) }

let merge_into st ~dst ~src =
  if st.buggy && Persist.count src >= 2 then begin
    (* Planted bug: silently drop the source's largest key. *)
    let keys = Persist.keys src in
    let dropped = List.nth keys (List.length keys - 1) in
    List.iter (fun k -> if k <> dropped then Persist.add dst k) keys
  end
  else Persist.merge dst src

let ops : state Sim.op list =
  [ add_op "add1" (fun st -> (st.s1, `K1));
    add_op "add2" (fun st -> (st.s2, `K2));
    { Sim.op_name = "merge";
      weight = 3;
      pre = (fun _ -> true);
      gen = (fun _ g -> [ Prng.int g 2 ]);
      apply =
        (fun st args ->
          let union = KeySet.union st.k1 st.k2 in
          (if (match args with d :: _ -> d land 1 = 0 | [] -> true) then begin
             merge_into st ~dst:st.s1 ~src:st.s2;
             st.k1 <- union
           end
           else begin
             merge_into st ~dst:st.s2 ~src:st.s1;
             st.k2 <- union
           end);
          Ok ()) };
    { Sim.op_name = "persist-save";
      weight = 2;
      pre = (fun _ -> true);
      gen = (fun _ _ -> []);
      apply =
        (fun st _ ->
          Persist.save ~faults:st.inj st.s1 st.path;
          (match st.fault_pending with
          | Some Fault_plan.Persist_torn ->
            (* The torn write published a truncated, footer-less file: a
               loader salvages a prefix, never more than was saved. *)
            st.saved <- Subset st.k1
          | Some Fault_plan.Persist_enospc ->
            (* The full disk abandoned the temp file; whatever was
               published before is still intact. *)
            ()
          | _ -> st.saved <- Exact st.k1);
          st.fault_pending <- None;
          Ok ()) };
    { Sim.op_name = "persist-load";
      weight = 2;
      pre = (fun st -> st.saved <> Nothing);
      gen = (fun _ _ -> []);
      apply =
        (fun st _ ->
          let loaded = Persist.load st.path in
          let got = KeySet.of_list (Persist.keys loaded) in
          match st.saved with
          | Nothing -> Ok ()
          | Exact ks ->
            if KeySet.equal got ks then Ok ()
            else
              Error
                (Printf.sprintf "load found %d keys, save published %d"
                   (KeySet.cardinal got) (KeySet.cardinal ks))
          | Subset ks ->
            (* A tear cuts at a byte offset; the loader rejects the final
               unterminated line outright, so salvage can never fabricate
               a key that was not published. *)
            if KeySet.is_empty (KeySet.diff got ks) then Ok ()
            else Error "torn save loaded keys that were never published") };
    { Sim.op_name = "fault-persist-torn";
      weight = 1;
      pre = (fun st -> st.fault_pending = None);
      gen = (fun _ _ -> []);
      apply =
        (fun st _ ->
          Fault_injector.force st.inj Fault_plan.Persist_torn;
          st.fault_pending <- Some Fault_plan.Persist_torn;
          Ok ()) };
    { Sim.op_name = "fault-persist-enospc";
      weight = 1;
      pre = (fun st -> st.fault_pending = None);
      gen = (fun _ _ -> []);
      apply =
        (fun st _ ->
          Fault_injector.force st.inj Fault_plan.Persist_enospc;
          st.fault_pending <- Some Fault_plan.Persist_enospc;
          Ok ()) } ]

let check st =
  let keys s = KeySet.of_list (Persist.keys s) in
  if not (KeySet.equal (keys st.s1) st.k1) then
    Some
      (Printf.sprintf "store 1 holds %d keys, model %d"
         (KeySet.cardinal (keys st.s1)) (KeySet.cardinal st.k1))
  else if not (KeySet.equal (keys st.s2) st.k2) then
    Some
      (Printf.sprintf "store 2 holds %d keys, model %d"
         (KeySet.cardinal (keys st.s2)) (KeySet.cardinal st.k2))
  else begin
    (* Merge algebra probe on fresh copies: commutative, and a key-set
       union — the direct port of the hand-rolled persist property.  This
       always exercises the real [Persist.merge]. *)
    let a = Persist.copy st.s1 and b = Persist.copy st.s2 in
    Persist.merge a st.s2;
    Persist.merge b st.s1;
    let union = KeySet.union st.k1 st.k2 in
    if Persist.keys a <> Persist.keys b then Some "merge is not commutative"
    else if not (KeySet.equal (KeySet.of_list (Persist.keys a)) union) then
      Some "merge is not the key-set union"
    else None
  end

let digest st =
  let h = ref 0x9E3779B97F4A7C15L in
  let mix v = h := Int64.mul (Int64.logxor !h (Int64.of_int v)) 0x100000001B3L in
  mix (Persist.count st.s1);
  mix (Persist.count st.s2);
  mix (match st.saved with Nothing -> 0 | Exact _ -> 1 | Subset _ -> 2);
  let acc = ref 0L in
  let fold s =
    List.iter
      (fun (c, o) -> acc := Int64.add !acc (Int64.of_int (((c * 131) + o) + 1)))
      (Persist.keys s)
  in
  fold st.s1;
  fold st.s2;
  Int64.logxor !h !acc

let alphabet ?(buggy_merge = false) () =
  Sim.Packed
    { Sim.name = (if buggy_merge then "store-buggy-merge" else "store");
      ops;
      init =
        (fun ~seed ->
          let path = Filename.temp_file "csod_sim_store" ".store" in
          { s1 = Persist.create ();
            s2 = Persist.create ();
            k1 = KeySet.empty;
            k2 = KeySet.empty;
            path;
            inj = Fault_injector.create ~plan:Fault_plan.zero ~salt:seed;
            saved = Nothing;
            fault_pending = None;
            buggy = buggy_merge });
      check;
      digest;
      teardown =
        (fun st -> try Sys.remove st.path with Sys_error _ -> ()) }
