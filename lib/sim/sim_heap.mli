(** Simulation alphabet over the allocator substrate: {!Heap} plus a
    standalone {!Sparse_mem} with a byte-level model.

    Ports the hand-rolled heap and sparse-memory properties: frees are
    honoured exactly once (double frees rejected), reads round-trip writes
    with the chunk cache in any state, released chunk storage comes back
    zeroed from the page pool, and the heap's live accounting agrees with
    the model after every operation. *)

val alphabet : unit -> Sim.packed
(** Registered as ["heap"]. *)
