(** Simulation alphabet over the full CSOD detection stack: {!Runtime} on a
    {!Machine} armed with a zero-rate {!Fault_injector} so every fault
    point is a first-class, deterministically forced operation.

    Ops: allocate/free through the interposition surface, in-bounds and
    one-past-the-end accesses (the latter may trap or corrupt a canary),
    policy-external disarm of a live watchpoint, and forced faults
    (EBUSY/EACCES on watchpoint installation, SIGTRAP drop/delay).
    Invariants after every step: never more than four armed hardware
    watchpoints, the watch table and the debug registers agree exactly,
    and the heap's live accounting matches the model. *)

val alphabet : unit -> Sim.packed
(** Registered as ["runtime"]. *)
