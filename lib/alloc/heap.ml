

exception Error of string

type obj = {
  req_size : int;        (* size the caller asked for *)
  block : int;           (* bytes reserved *)
  base : int;            (* base of the underlying block (differs from the
                            object address for memalign interior pointers) *)
  cls : Size_class.t;
}

type t = {
  m : Machine.t;
  small_free : int list array;           (* per-class free lists *)
  large_free : (int, int list) Hashtbl.t; (* block size -> free addrs *)
  objects : (int, obj) Hashtbl.t;        (* live objects by address *)
  c_mallocs : Metrics.counter;
  c_frees : Metrics.counter;
  g_live_bytes : Metrics.gauge;
  h_alloc_bytes : Metrics.histogram;
  mutable carved : int;                  (* bytes ever taken from sbrk *)
  mutable live_bytes : int;
  mutable peak_live : int;
  mutable live_block_bytes : int;        (* block bytes currently backing live objects *)
  mutable peak_block_bytes : int;
  mutable allocs : int;
  mutable frees : int;
}

let create m =
  let reg = Machine.registry m in
  { m;
    small_free = Array.make Size_class.num_small_classes [];
    large_free = Hashtbl.create 32;
    objects = Hashtbl.create 4096;
    c_mallocs = Metrics.counter reg "heap.mallocs";
    c_frees = Metrics.counter reg "heap.frees";
    g_live_bytes = Metrics.gauge reg "heap.live_bytes";
    h_alloc_bytes = Metrics.histogram reg "heap.alloc_bytes";
    carved = 0;
    live_bytes = 0;
    peak_live = 0;
    live_block_bytes = 0;
    peak_block_bytes = 0;
    allocs = 0;
    frees = 0 }

let machine t = t.m

(* Small classes are refilled a chunk at a time so that consecutive objects
   of one class are adjacent, as in a real segregated heap. *)
let chunk_bytes = 16384

let refill_small t idx block =
  let n = max 1 (chunk_bytes / block) in
  let start = Machine.sbrk t.m (n * block) in
  t.carved <- t.carved + (n * block);
  let rec push i acc = if i < 0 then acc else push (i - 1) (start + (i * block) :: acc) in
  t.small_free.(idx) <- push (n - 1) [] @ t.small_free.(idx)

let take_block t cls =
  match Size_class.class_index cls with
  | Some idx ->
    (match t.small_free.(idx) with
     | addr :: rest ->
       t.small_free.(idx) <- rest;
       addr
     | [] ->
       refill_small t idx (Size_class.block_size cls);
       (match t.small_free.(idx) with
        | addr :: rest ->
          t.small_free.(idx) <- rest;
          addr
        | [] -> assert false))
  | None ->
    let block = Size_class.block_size cls in
    (match Hashtbl.find_opt t.large_free block with
     | Some (addr :: rest) ->
       Hashtbl.replace t.large_free block rest;
       addr
     | Some [] | None ->
       t.carved <- t.carved + block;
       Machine.sbrk t.m block)

let return_block t cls base =
  match Size_class.class_index cls with
  | Some idx -> t.small_free.(idx) <- base :: t.small_free.(idx)
  | None ->
    let block = Size_class.block_size cls in
    let prev = Option.value ~default:[] (Hashtbl.find_opt t.large_free block) in
    Hashtbl.replace t.large_free block (base :: prev)

let register t ~addr ~base ~req_size ~cls =
  let block = Size_class.block_size cls in
  Hashtbl.replace t.objects addr { req_size; block; base; cls };
  t.allocs <- t.allocs + 1;
  Metrics.incr t.c_mallocs;
  Metrics.observe t.h_alloc_bytes req_size;
  t.live_bytes <- t.live_bytes + req_size;
  if t.live_bytes > t.peak_live then t.peak_live <- t.live_bytes;
  Metrics.set t.g_live_bytes t.live_bytes;
  t.live_block_bytes <- t.live_block_bytes + block;
  if t.live_block_bytes > t.peak_block_bytes then
    t.peak_block_bytes <- t.live_block_bytes

let malloc t size =
  if size < 0 then raise (Error "malloc: negative size");
  Machine.work_as t.m Profiler.Alloc_fast Cost.malloc_base;
  let cls = Size_class.classify size in
  let addr = take_block t cls in
  register t ~addr ~base:addr ~req_size:size ~cls;
  addr

let free t addr =
  Machine.work_as t.m Profiler.Alloc_fast Cost.malloc_base;
  match Hashtbl.find_opt t.objects addr with
  | None ->
    if addr = 0 then () (* free(NULL) is a no-op *)
    else raise (Error (Printf.sprintf "free: invalid or already-freed pointer 0x%x" addr))
  | Some obj ->
    Hashtbl.remove t.objects addr;
    t.frees <- t.frees + 1;
    Metrics.incr t.c_frees;
    t.live_bytes <- t.live_bytes - obj.req_size;
    Metrics.set t.g_live_bytes t.live_bytes;
    t.live_block_bytes <- t.live_block_bytes - obj.block;
    return_block t obj.cls obj.base

let calloc t ~count ~size =
  if count < 0 || size < 0 then raise (Error "calloc: negative argument");
  let total = count * size in
  let addr = malloc t total in
  Sparse_mem.fill (Machine.mem t.m) addr total 0;
  addr

let realloc t ptr size =
  if ptr = 0 then malloc t size
  else if size = 0 then begin
    free t ptr;
    0
  end
  else
    match Hashtbl.find_opt t.objects ptr with
    | None -> raise (Error (Printf.sprintf "realloc: invalid pointer 0x%x" ptr))
    | Some obj ->
      if size <= obj.block - (ptr - obj.base) then begin
        (* Shrink or grow within the existing block: update bookkeeping. *)
        t.live_bytes <- t.live_bytes - obj.req_size + size;
        if t.live_bytes > t.peak_live then t.peak_live <- t.live_bytes;
        Metrics.set t.g_live_bytes t.live_bytes;
        Hashtbl.replace t.objects ptr { obj with req_size = size };
        ptr
      end
      else begin
        let fresh = malloc t size in
        let mem = Machine.mem t.m in
        let copy = min obj.req_size size in
        for i = 0 to copy - 1 do
          Sparse_mem.write_u8 mem (fresh + i) (Sparse_mem.read_u8 mem (ptr + i))
        done;
        free t ptr;
        fresh
      end

let memalign t ~alignment ~size =
  if alignment <= 0 || alignment land (alignment - 1) <> 0 then
    raise (Error "memalign: alignment must be a positive power of two");
  if alignment > 4096 then raise (Error "memalign: alignment too large");
  if alignment <= Size_class.align then malloc t size
  else begin
    Machine.work_as t.m Profiler.Alloc_fast Cost.malloc_base;
    let cls = Size_class.classify (size + alignment) in
    let base = take_block t cls in
    let addr = (base + alignment - 1) / alignment * alignment in
    register t ~addr ~base ~req_size:size ~cls;
    addr
  end

let size_of t addr =
  Option.map (fun o -> o.req_size) (Hashtbl.find_opt t.objects addr)

let is_live t addr = Hashtbl.mem t.objects addr

let usable_size t addr =
  Option.map (fun o -> o.block - (addr - o.base)) (Hashtbl.find_opt t.objects addr)

let iter_live f t = Hashtbl.iter (fun addr o -> f ~addr ~size:o.req_size) t.objects

let live_objects t = Hashtbl.length t.objects
let live_bytes t = t.live_bytes
let peak_live_bytes t = t.peak_live
let total_allocs t = t.allocs
let total_frees t = t.frees

let resident_bytes t =
  (* Peak block bytes backing live objects, plus object-table metadata
     (4 words per entry).  Free-list slack is reusable address space, not
     resident pages: untouched sparse memory costs nothing, mirroring how
     VmHWM sees an mmap-backed allocator. *)
  t.peak_block_bytes + (Hashtbl.length t.objects * 4 * 8)
