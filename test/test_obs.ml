(* Tests for the telemetry subsystem: metrics registry, cycle-attribution
   profiler, JSONL event sink, snapshot scheduling — and the guarantee
   that none of it changes a simulated execution. *)

(* ---------- Counters ---------- *)

let test_counter_basics () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "x" in
  Alcotest.(check int) "starts at 0" 0 (Metrics.count c);
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "incr + add" 42 (Metrics.count c);
  let c' = Metrics.counter reg "x" in
  Metrics.incr c';
  Alcotest.(check int) "find-or-create shares the cell" 43 (Metrics.count c);
  Metrics.add c 0;
  Alcotest.(check int) "add 0 is a no-op" 43 (Metrics.count c)

let test_counter_monotonic () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "x" in
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Metrics.add: counters are monotonic") (fun () ->
      Metrics.add c (-1));
  Alcotest.(check int) "unchanged after rejection" 0 (Metrics.count c)

let test_gauge () =
  let reg = Metrics.create () in
  let g = Metrics.gauge reg "g" in
  Metrics.set g 7;
  Metrics.set g 3;
  Alcotest.(check int) "level follows last set" 3 (Metrics.level g);
  Alcotest.(check int) "high watermark sticks" 7 (Metrics.high_watermark g)

(* ---------- Histogram bucket boundaries ---------- *)

let test_histogram_boundaries () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~bounds:[| 10; 20; 30 |] "h" in
  (* A value lands in the first bucket with bound >= v: exact bounds stay
     in their own bucket, bound+1 spills into the next. *)
  List.iter (Metrics.observe h) [ 0; 10; 11; 20; 21; 30; 31; 1000 ];
  Alcotest.(check (array int)) "bucket boundaries" [| 2; 2; 2; 2 |]
    (Metrics.bucket_counts h);
  Alcotest.(check int) "observations" 8 (Metrics.observations h);
  Alcotest.(check int) "sum" (0 + 10 + 11 + 20 + 21 + 30 + 31 + 1000)
    (Metrics.hist_sum h);
  Alcotest.(check int) "bucket counts sum to observations"
    (Metrics.observations h)
    (Array.fold_left ( + ) 0 (Metrics.bucket_counts h))

let test_histogram_default_bounds () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "sizes" in
  Alcotest.(check (array int)) "default bounds" Metrics.default_bounds
    (Metrics.bucket_bounds h);
  Alcotest.(check int) "overflow bucket exists"
    (Array.length Metrics.default_bounds + 1)
    (Array.length (Metrics.bucket_counts h))

(* ---------- Registry merging (fleet aggregation) ---------- *)

let test_metrics_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.add (Metrics.counter a "c") 3;
  Metrics.add (Metrics.counter b "c") 4;
  Metrics.add (Metrics.counter b "only_b") 7;
  Metrics.set (Metrics.gauge a "g") 10;
  Metrics.set (Metrics.gauge b "g") 2;
  Metrics.merge_into ~dst:a ~src:b;
  Alcotest.(check int) "counters sum" 7 (Metrics.count (Metrics.counter a "c"));
  Alcotest.(check int) "missing counter created" 7
    (Metrics.count (Metrics.counter a "only_b"));
  Alcotest.(check int) "gauge takes last merged level" 2
    (Metrics.level (Metrics.gauge a "g"));
  Alcotest.(check int) "gauge high watermark is max" 10
    (Metrics.high_watermark (Metrics.gauge a "g"));
  Alcotest.(check int) "src counter untouched" 4
    (Metrics.count (Metrics.counter b "c"))

let test_metrics_merge_histograms () =
  let a = Metrics.create () and b = Metrics.create () in
  let bounds = [| 10; 20 |] in
  let ha = Metrics.histogram a ~bounds "h" in
  let hb = Metrics.histogram b ~bounds "h" in
  List.iter (Metrics.observe ha) [ 5; 15 ];
  List.iter (Metrics.observe hb) [ 15; 25; 25 ];
  Metrics.merge_into ~dst:a ~src:b;
  Alcotest.(check (array int)) "bins add" [| 1; 2; 2 |] (Metrics.bucket_counts ha);
  Alcotest.(check int) "observations add" 5 (Metrics.observations ha);
  Alcotest.(check int) "sums add" (5 + 15 + 15 + 25 + 25) (Metrics.hist_sum ha);
  (* Percentiles are recomputed over the union: p50 of {5,15,15,25,25}
     sits in the 11..20 bucket, p99 in the overflow bucket (saturating to
     the largest finite bound). *)
  Alcotest.(check int) "post-merge p50" 20 (Metrics.percentile ha 0.50);
  Alcotest.(check int) "post-merge p99" 20 (Metrics.percentile ha 0.99);
  (* Same name, different bounds: refuse rather than mis-bin. *)
  let c = Metrics.create () in
  ignore (Metrics.histogram c ~bounds:[| 1; 2 |] "h");
  Alcotest.(check bool) "bounds mismatch rejected" true
    (try
       Metrics.merge_into ~dst:a ~src:c;
       false
     with Invalid_argument _ -> true);
  (* A histogram missing from dst is created whole. *)
  let d = Metrics.create () in
  Metrics.merge_into ~dst:d ~src:b;
  Alcotest.(check (array int)) "missing histogram created" [| 0; 1; 2 |]
    (Metrics.bucket_counts (Metrics.histogram d ~bounds "h"))

let test_profiler_merge () =
  let a = Profiler.create () and b = Profiler.create () in
  Profiler.charge a Profiler.App 100;
  Profiler.charge a Profiler.Smu_lookup 7;
  Profiler.charge b Profiler.App 40;
  Profiler.charge b Profiler.Trap_dispatch 3;
  Profiler.merge_into ~dst:a ~src:b;
  Alcotest.(check int) "phases sum" 140 (Profiler.cycles a Profiler.App);
  Alcotest.(check int) "disjoint phase kept" 7 (Profiler.cycles a Profiler.Smu_lookup);
  Alcotest.(check int) "src phase added" 3 (Profiler.cycles a Profiler.Trap_dispatch);
  Alcotest.(check int) "merged total is sum of totals" 150 (Profiler.total a);
  Alcotest.(check int) "src untouched" 43 (Profiler.total b)

(* ---------- Profiler ---------- *)

let test_profiler () =
  let p = Profiler.create () in
  Profiler.charge p Profiler.App 100;
  Profiler.charge p Profiler.Wmu_install 40;
  Profiler.charge p Profiler.Wmu_install 2;
  Alcotest.(check int) "per-phase" 42 (Profiler.cycles p Profiler.Wmu_install);
  Alcotest.(check int) "total" 142 (Profiler.total p);
  Alcotest.(check int) "tool total excludes app" 42 (Profiler.tool_total p);
  Alcotest.check_raises "negative charge rejected"
    (Invalid_argument "Profiler.charge: negative cycles") (fun () ->
      Profiler.charge p Profiler.App (-1));
  Alcotest.(check (list string)) "phase names are unique and dotted"
    (List.sort_uniq compare (List.map Profiler.name Profiler.all))
    (List.sort compare (List.map Profiler.name Profiler.all));
  Profiler.reset p;
  Alcotest.(check int) "reset" 0 (Profiler.total p)

(* Registry totals equal the sum of per-phase profiler charges for a
   random operation stream (the ISSUE's cross-check property): every op
   both charges the profiler and bumps a per-phase counter. *)
let prop_profiler_registry_agree =
  let phases = Array.of_list Profiler.all in
  QCheck.Test.make ~name:"profiler charges == registry totals" ~count:200
    QCheck.(list (pair (int_range 0 (Array.length phases - 1)) (int_range 0 5000)))
    (fun ops ->
      let reg = Metrics.create () in
      let p = Profiler.create () in
      List.iter
        (fun (i, n) ->
          Profiler.charge p phases.(i) n;
          Metrics.add (Metrics.counter reg (Profiler.name phases.(i))) n)
        ops;
      let counter_total =
        List.fold_left (fun acc (_, n) -> acc + n) 0 (Metrics.counters_list reg)
      in
      Profiler.total p = counter_total
      && Profiler.total p = List.fold_left (fun acc (_, n) -> acc + n) 0 ops
      && List.for_all
           (fun ph ->
             Profiler.cycles p ph
             = Metrics.count (Metrics.counter reg (Profiler.name ph)))
           Profiler.all)

(* Machine-level attribution: everything the clock advances is charged to
   exactly one phase, so the per-phase sum equals the clock reading. *)
let prop_machine_attribution =
  let phases = Array.of_list Profiler.all in
  QCheck.Test.make ~name:"machine: phase totals == clock cycles" ~count:100
    QCheck.(list (pair (int_range 0 (Array.length phases - 1)) (int_range 0 1000)))
    (fun ops ->
      let m = Machine.create ~seed:11 () in
      List.iter (fun (i, n) -> Machine.work_as m phases.(i) n) ops;
      let p = Telemetry.profiler (Machine.telemetry m) in
      Profiler.total p = Clock.cycles (Machine.clock m))

let test_in_phase_outermost_wins () =
  let m = Machine.create ~seed:1 () in
  Machine.in_phase m Profiler.Trap_dispatch (fun () ->
      Machine.work_as m Profiler.Wmu_evict 50);
  let p = Telemetry.profiler (Machine.telemetry m) in
  Alcotest.(check int) "inner work charged to outer phase" 50
    (Profiler.cycles p Profiler.Trap_dispatch);
  Alcotest.(check int) "nothing leaked to the inner phase" 0
    (Profiler.cycles p Profiler.Wmu_evict)

(* ---------- Event sink ---------- *)

let test_event_sink () =
  Alcotest.(check bool) "inactive by default" false (Event_sink.active ());
  let b = Buffer.create 64 in
  let sink = Event_sink.to_buffer b in
  Event_sink.emit "dropped" [];
  Event_sink.with_sink sink (fun () ->
      Alcotest.(check bool) "active inside" true (Event_sink.active ());
      Event_sink.emit "hello" [ ("n", `Int 1) ]);
  Alcotest.(check bool) "restored" false (Event_sink.active ());
  Alcotest.(check int) "one event counted" 1 (Event_sink.events sink);
  Alcotest.(check string) "JSONL line, event field first"
    "{\"event\":\"hello\",\"n\":1}\n" (Buffer.contents b)

(* ---------- Snapshots under the virtual clock ---------- *)

let snapshot_stream seed =
  let b = Buffer.create 256 in
  let m = Machine.create ~seed () in
  Telemetry.set_snapshot_interval (Machine.telemetry m) ~cycles:1_000;
  Event_sink.with_sink (Event_sink.to_buffer b) (fun () ->
      List.iter (Machine.work m) [ 400; 400; 400; 2_600; 100 ]);
  (Telemetry.snapshot_count (Machine.telemetry m), Buffer.contents b)

let test_snapshot_determinism () =
  let n1, s1 = snapshot_stream 3 in
  let n2, s2 = snapshot_stream 3 in
  (* 3,900 cycles at a 1,000-cycle interval: boundaries 1000, 2000, 3000. *)
  Alcotest.(check int) "snapshot per crossed boundary" 3 n1;
  Alcotest.(check int) "deterministic count" n1 n2;
  Alcotest.(check string) "byte-identical streams" s1 s2;
  String.split_on_char '\n' s1
  |> List.filter (fun l -> l <> "")
  |> List.iter (fun l ->
         Alcotest.(check bool) "every line is a snapshot event" true
           (String.length l > 20
           && String.sub l 0 20 = "{\"event\":\"snapshot\","))

(* ---------- Integration: Heartbleed under CSOD with metrics ---------- *)

let heartbleed_outcome = lazy (
  let app = Option.get (Buggy_app.by_name "Heartbleed") in
  match
    Execution.run_until_detected ~app ~config:Config.csod_default ~max_runs:64
  with
  | None -> Alcotest.fail "Heartbleed not detected within 64 executions"
  | Some (_, o) -> o)

let test_heartbleed_metrics () =
  let o = Lazy.force heartbleed_outcome in
  let reg = Telemetry.metrics o.Execution.telemetry in
  let count name = Metrics.count (Metrics.counter reg name) in
  Alcotest.(check bool) "smu.decisions nonzero" true (count "smu.decisions" > 0);
  Alcotest.(check bool) "installs bounded by allocations" true
    (count "wmu.installs" <= count "smu.allocations");
  Alcotest.(check bool) "at least one trap on the detecting seed" true
    (count "trap.count" >= 1);
  Alcotest.(check bool) "a report was recorded" true (count "report.count" >= 1);
  (* The registry agrees with the runtime's own stats. *)
  match o.Execution.stats with
  | None -> Alcotest.fail "csod run must have stats"
  | Some s ->
    Alcotest.(check int) "registry allocations == runtime stats"
      s.Runtime.allocations (count "smu.allocations");
    Alcotest.(check int) "registry contexts == runtime stats"
      s.Runtime.contexts
      (let _, v, _ =
         List.find (fun (n, _, _) -> n = "smu.contexts") (Metrics.gauges_list reg)
       in
       v)

let test_heartbleed_profile_coverage () =
  let o = Lazy.force heartbleed_outcome in
  let p = Telemetry.profiler o.Execution.telemetry in
  (* Acceptance bound: per-phase totals within 1% of the clock total.  The
     attribution is exact by construction, so check equality. *)
  Alcotest.(check int) "phase sum covers every charged cycle"
    o.Execution.cycles (Profiler.total p);
  Alcotest.(check bool) "tool overhead is a strict subset" true
    (Profiler.tool_total p > 0 && Profiler.tool_total p < Profiler.total p)

(* Enabling telemetry export must not change the execution: same seed with
   an event sink + snapshots vs. bare produces identical results. *)
let test_metrics_do_not_perturb () =
  let app = Option.get (Buggy_app.by_name "Heartbleed") in
  let bare seed = Execution.run ~app ~config:Config.csod_default ~seed () in
  let observed seed =
    let b = Buffer.create 4096 in
    Event_sink.with_sink (Event_sink.to_buffer b) (fun () ->
        Execution.run ~app ~config:Config.csod_default ~seed
          ~snapshot_cycles:50_000_000 ())
  in
  List.iter
    (fun seed ->
      let a = bare seed and b = observed seed in
      Alcotest.(check bool) "same detection" a.Execution.detected
        b.Execution.detected;
      Alcotest.(check int) "same cycles" a.Execution.cycles b.Execution.cycles;
      Alcotest.(check int) "same report count"
        (List.length a.Execution.reports) (List.length b.Execution.reports);
      Alcotest.(check string) "same program output" a.Execution.output
        b.Execution.output)
    [ 1; 2; 3 ]

(* The trace points route through the sink: a detecting run emits the
   structured decision/trap events. *)
let test_trace_events_routed () =
  let app = Option.get (Buggy_app.by_name "Heartbleed") in
  let b = Buffer.create 4096 in
  let detecting_seed =
    match
      Execution.run_until_detected ~app ~config:Config.csod_default ~max_runs:64
    with
    | Some (seed, _) -> seed
    | None -> Alcotest.fail "no detecting seed"
  in
  ignore
    (Event_sink.with_sink (Event_sink.to_buffer b) (fun () ->
         Execution.run ~app ~config:Config.csod_default ~seed:detecting_seed ()));
  let has kind =
    let needle = Printf.sprintf "{\"event\":\"%s\"" kind in
    let s = Buffer.contents b in
    let nl = String.length needle in
    let rec go i =
      i + nl <= String.length s && (String.sub s i nl = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "smu.decision events" true (has "smu.decision");
  Alcotest.(check bool) "trap event" true (has "trap")

(* ---------- JSON export ---------- *)

let test_obs_json () =
  Alcotest.(check string) "escaping and nesting"
    "{\"s\":\"a\\\"b\\n\",\"l\":[1,true,null],\"f\":0.5}"
    (Obs_json.to_string
       (`Assoc
         [ ("s", `String "a\"b\n"); ("l", `List [ `Int 1; `Bool true; `Null ]);
           ("f", `Float 0.5) ]));
  Alcotest.(check string) "non-finite floats become null" "[null,null]"
    (Obs_json.to_string (`List [ `Float nan; `Float infinity ]))

let test_telemetry_json () =
  let m = Machine.create ~seed:1 () in
  Machine.work_as m Profiler.Wmu_install 120;
  Metrics.incr (Metrics.counter (Machine.registry m) "wmu.installs");
  let s =
    Telemetry.json_string (Machine.telemetry m)
      ~total_cycles:(Clock.cycles (Machine.clock m))
  in
  List.iter
    (fun needle ->
      let nl = String.length needle in
      let rec go i =
        i + nl <= String.length s && (String.sub s i nl = needle || go (i + 1))
      in
      Alcotest.(check bool) (Printf.sprintf "contains %s" needle) true (go 0))
    [ "\"total_cycles\":120"; "\"wmu.installs\":1"; "\"wmu.install\":120" ]

(* ---------- Sinks flush on uninstall (truncated-JSONL regression) ---------- *)

let test_sink_flush_on_uninstall () =
  let file = Filename.temp_file "csod_sink" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      Event_sink.install (Event_sink.to_channel oc);
      Event_sink.emit "e1" [ ("n", `Int 1) ];
      (* The channel stays open: only uninstall's flush can make the line
         visible.  Before the fix this read back empty (or a torn line). *)
      Event_sink.uninstall ();
      let written = In_channel.with_open_text file In_channel.input_all in
      close_out oc;
      Alcotest.(check string) "uninstall flushed the buffered line"
        "{\"event\":\"e1\",\"n\":1}\n" written)

let test_with_sink_flushes () =
  let file = Filename.temp_file "csod_sink" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      Event_sink.with_sink (Event_sink.to_channel oc) (fun () ->
          Event_sink.emit "a" [];
          Event_sink.emit "b" [ ("x", `Bool true) ]);
      let written = In_channel.with_open_text file In_channel.input_all in
      close_out oc;
      Alcotest.(check string) "both lines complete"
        "{\"event\":\"a\"}\n{\"event\":\"b\",\"x\":true}\n" written)

(* ---------- Histogram percentiles ---------- *)

let test_histogram_percentiles () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~bounds:[| 10; 20; 30 |] "h" in
  Alcotest.(check int) "empty histogram" 0 (Metrics.percentile h 0.5);
  List.iter (Metrics.observe h) [ 1; 2; 3; 4; 5; 6; 7; 8; 25 ];
  (* 9 observations: the 5th sits in the <=10 bucket, the 9th in <=30. *)
  Alcotest.(check int) "p50" 10 (Metrics.percentile h 0.5);
  Alcotest.(check int) "p90" 30 (Metrics.percentile h 0.9);
  Alcotest.(check int) "p0 is the first occupied bucket" 10
    (Metrics.percentile h 0.0);
  Metrics.observe h 1_000_000;
  (* The unbounded overflow bucket saturates to the largest finite bound. *)
  Alcotest.(check int) "overflow saturates" 30 (Metrics.percentile h 0.99);
  Alcotest.check_raises "q outside [0, 1]"
    (Invalid_argument "Metrics.percentile: q outside [0, 1]") (fun () ->
      ignore (Metrics.percentile h 1.5))

let test_histogram_json_has_percentiles () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~bounds:[| 10; 20 |] "sizes" in
  List.iter (Metrics.observe h) [ 5; 15; 15 ];
  let s = Obs_json.to_string (Metrics.to_json reg) in
  let contains needle =
    let nl = String.length needle in
    let rec go i =
      i + nl <= String.length s && (String.sub s i nl = needle || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "contains %s" needle) true
        (contains needle))
    [ "\"p50\":20"; "\"p90\":20"; "\"p99\":20" ]

(* ---------- Trace event kinds round-trip with their schema ---------- *)

(* Expected field names and JSON types for every structured trace event. *)
let trace_schema =
  [ ( "smu.decision",
      [ ("addr", `I); ("site", `I); ("stack_offset", `I); ("prob", `F);
        ("watched", `B) ] );
    ("wmu.replace", [ ("victim", `I); ("by", `I) ]);
    ("wmu.free_removal", [ ("addr", `I) ]);
    ("trap", [ ("addr", `I); ("kind", `S); ("tid", `I) ]);
    ("canary.corrupt", [ ("addr", `I); ("where", `S) ]) ]

(* Pull the raw value text of ["name":<value>] out of a JSONL line.  The
   values in these events are atomic (no nesting), so scanning to the next
   [,]/[}] — or the closing quote for strings — is enough. *)
let json_field line name =
  let needle = Printf.sprintf "\"%s\":" name in
  let nl = String.length needle and ll = String.length line in
  let rec find i =
    if i + nl > ll then None
    else if String.sub line i nl = needle then Some (i + nl)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    if line.[start] = '"' then begin
      let rec close j = if line.[j] = '"' then j else close (j + 1) in
      Some (String.sub line start (close (start + 1) + 1 - start))
    end
    else begin
      let rec stop j =
        if j >= ll || line.[j] = ',' || line.[j] = '}' then j else stop (j + 1)
      in
      Some (String.sub line start (stop start - start))
    end

let value_matches ty v =
  match ty with
  | `I ->
    v <> "" && String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') v
  | `F -> String.contains v '.' || String.contains v 'e'
  | `B -> v = "true" || v = "false"
  | `S -> String.length v >= 2 && v.[0] = '"' && v.[String.length v - 1] = '"'

let test_trace_event_schema () =
  let b = Buffer.create 512 in
  Event_sink.with_sink (Event_sink.to_buffer b) (fun () ->
      (* prob 0.125 keeps a '.' in the encoding, so `F is checkable *)
      Trace.decision ~watched:true ~prob:0.125 ~key:(0x40, 2) ~addr:0x1000;
      Trace.replaced ~victim:0x1000 ~by:0x2000;
      Trace.removed_on_free ~addr:0x1000;
      Trace.trap ~addr:0x1008 ~kind:"over-read" ~tid:3;
      Trace.canary ~addr:0x1000 ~where:"free");
  let lines =
    String.split_on_char '\n' (Buffer.contents b)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one line per event kind" (List.length trace_schema)
    (List.length lines);
  List.iter2
    (fun (name, fields) line ->
      let prefix = Printf.sprintf "{\"event\":\"%s\"" name in
      Alcotest.(check bool) (name ^ ": event field first") true
        (String.length line >= String.length prefix
        && String.sub line 0 (String.length prefix) = prefix);
      List.iter
        (fun (fname, ty) ->
          match json_field line fname with
          | None ->
            Alcotest.failf "%s: field %S missing in %s" name fname line
          | Some v ->
            Alcotest.(check bool)
              (Printf.sprintf "%s.%s has the schema type" name fname)
              true (value_matches ty v))
        fields)
    trace_schema lines

(* ---------- Flight recorder ---------- *)

let test_flight_recorder_ring () =
  Alcotest.(check bool) "inactive by default" false (Flight_recorder.active ());
  let r = Flight_recorder.create ~capacity:3 () in
  (* no recorder installed: hooks are no-ops *)
  Flight_recorder.alloc ~at:0 ~addr:0xdead ~size:8 ~ctx:9 ~site:9 ~off:0;
  Flight_recorder.with_recorder r (fun () ->
      Alcotest.(check bool) "active inside" true (Flight_recorder.active ());
      Flight_recorder.alloc ~at:1 ~addr:0x10 ~size:8 ~ctx:1 ~site:7 ~off:0;
      Flight_recorder.alloc ~at:2 ~addr:0x20 ~size:8 ~ctx:1 ~site:7 ~off:0;
      Flight_recorder.watch ~at:3 ~addr:0x20 ~ctx:1;
      Flight_recorder.free ~at:4 ~addr:0x10);
  Alcotest.(check bool) "restored" false (Flight_recorder.active ());
  Alcotest.(check int) "4 records emitted" 4 (Flight_recorder.recorded r);
  Alcotest.(check int) "1 overwritten" 1 (Flight_recorder.dropped r);
  Alcotest.(check int) "2 allocations numbered" 2 (Flight_recorder.alloc_count r);
  match Flight_recorder.records r with
  | [ a; b; c ] ->
    Alcotest.(check (list int)) "seq monotonic, oldest overwritten" [ 1; 2; 3 ]
      [ a.Flight_recorder.seq; b.Flight_recorder.seq; c.Flight_recorder.seq ];
    (match a.Flight_recorder.kind with
    | Flight_recorder.Alloc al ->
      Alcotest.(check int) "alloc index survives overwrites" 2 al.index
    | _ -> Alcotest.fail "expected the second Alloc record first")
  | recs -> Alcotest.failf "expected 3 records, got %d" (List.length recs)

let test_flight_record_json () =
  let r = Flight_recorder.create ~capacity:4 () in
  Flight_recorder.with_recorder r (fun () ->
      Flight_recorder.decision ~at:5 ~addr:0x30 ~ctx:2 ~prob:0.5 ~coin:true
        ~watched:false ~startup:false);
  match Flight_recorder.records r with
  | [ rec_ ] ->
    Alcotest.(check string) "record JSON shape"
      "{\"kind\":\"decision\",\"seq\":0,\"at\":5,\"addr\":48,\"ctx\":2,\
       \"prob\":0.5,\"coin\":true,\"watched\":false,\"startup\":false}"
      (Obs_json.to_string (Flight_recorder.record_to_json rec_))
  | _ -> Alcotest.fail "expected one record"

let test_flight_dump_on_detection () =
  let b = Buffer.create 512 in
  let r = Flight_recorder.create ~capacity:8 () in
  Event_sink.with_sink (Event_sink.to_buffer b) (fun () ->
      Flight_recorder.with_recorder r (fun () ->
          Flight_recorder.alloc ~at:1 ~addr:0x40 ~size:16 ~ctx:1 ~site:3 ~off:0;
          Flight_recorder.detection ~at:2 ~addr:0x40 ~ctx:1 ~source:"watchpoint"));
  let s = Buffer.contents b in
  let contains needle =
    let nl = String.length needle in
    let rec go i =
      i + nl <= String.length s && (String.sub s i nl = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check int) "detection counted" 1 (Flight_recorder.detection_count r);
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "dump contains %s" needle) true
        (contains needle))
    [ "{\"event\":\"flight.dump\",\"recorded\":2,\"dropped\":0,\"records\":[";
      "\"kind\":\"alloc\""; "\"kind\":\"detection\"" ]

(* Recording must not perturb the execution: outcome-level check over a
   few seeds... *)
let test_recorder_does_not_perturb () =
  let app = Option.get (Buggy_app.by_name "Heartbleed") in
  let bare seed = Execution.run ~app ~config:Config.csod_default ~seed () in
  let recorded seed =
    Flight_recorder.with_recorder (Flight_recorder.create ()) (fun () ->
        Execution.run ~app ~config:Config.csod_default ~seed ())
  in
  List.iter
    (fun seed ->
      let a = bare seed and b = recorded seed in
      Alcotest.(check bool) "same detection" a.Execution.detected
        b.Execution.detected;
      Alcotest.(check int) "same cycles" a.Execution.cycles b.Execution.cycles;
      Alcotest.(check int) "same report count"
        (List.length a.Execution.reports)
        (List.length b.Execution.reports);
      Alcotest.(check string) "same program output" a.Execution.output
        b.Execution.output)
    [ 1; 2; 3 ]

(* ...and PRNG-stream-level: after identical operation sequences the next
   draw from the machine's root generator is identical, proving the
   recorder drew no randomness and advanced no clock. *)
let drive_runtime recorder =
  let machine = Machine.create ~seed:5 () in
  let heap = Heap.create machine in
  let rt = Runtime.create ~machine ~heap () in
  let tool = Runtime.tool rt in
  let body () =
    let ptrs =
      List.init 40 (fun i ->
          tool.Tool.malloc
            ~size:(16 + (i mod 5 * 8))
            ~ctx:
              (Alloc_ctx.synthetic ~callsite:(1 + (i mod 7))
                 ~stack_offset:(i mod 3) ()))
    in
    List.iteri (fun i p -> if i mod 2 = 0 then tool.Tool.free ~ptr:p) ptrs;
    Runtime.finish rt
  in
  (match recorder with
  | Some r -> Flight_recorder.with_recorder r body
  | None -> body ());
  (Prng.bits64 (Machine.rng machine), Clock.cycles (Machine.clock machine))

let test_recorder_prng_stream () =
  let bare_draw, bare_cycles = drive_runtime None in
  let rec_draw, rec_cycles =
    drive_runtime (Some (Flight_recorder.create ~capacity:1024 ()))
  in
  Alcotest.(check int64) "identical next PRNG draw" bare_draw rec_draw;
  Alcotest.(check int) "identical clock" bare_cycles rec_cycles

(* ---------- Chrome trace export ---------- *)

let test_trace_export_structure () =
  let r = Flight_recorder.create ~capacity:64 () in
  Flight_recorder.with_recorder r (fun () ->
      Flight_recorder.phase ~name:"app" ~start:0 ~stop:100;
      Flight_recorder.alloc ~at:10 ~addr:0x40 ~size:16 ~ctx:1 ~site:3 ~off:0;
      Flight_recorder.decision ~at:11 ~addr:0x40 ~ctx:1 ~prob:0.5 ~coin:true
        ~watched:true ~startup:false;
      Flight_recorder.watch ~at:12 ~addr:0x40 ~ctx:1;
      Flight_recorder.trap ~at:20 ~addr:0x40 ~access:"read" ~tid:0;
      Flight_recorder.prob ~at:21 ~ctx:1 ~cause:Flight_recorder.Decay
        ~from_p:0.5 ~to_p:0.4;
      Flight_recorder.detection ~at:22 ~addr:0x40 ~ctx:1 ~source:"watchpoint";
      Flight_recorder.free ~at:30 ~addr:0x40);
  match
    Trace_export.to_json ~cycles_per_second:1_000_000
      (Flight_recorder.records r)
  with
  | `Assoc top ->
    Alcotest.(check bool) "displayTimeUnit is ms" true
      (List.assoc_opt "displayTimeUnit" top = Some (`String "ms"));
    (match List.assoc_opt "traceEvents" top with
    | Some (`List evs) ->
      let phs =
        List.filter_map
          (function
            | `Assoc f -> (
              Alcotest.(check bool) "every event has a name" true
                (List.mem_assoc "name" f);
              Alcotest.(check bool) "every event has a pid" true
                (List.mem_assoc "pid" f);
              match List.assoc_opt "ph" f with
              | Some (`String p) -> Some p
              | _ -> Alcotest.fail "event without ph")
            | _ -> Alcotest.fail "trace event is not an object")
          evs
      in
      (* One watched+trapped+detected object and one phase slice exercise
         every event phase the exporter can produce. *)
      List.iter
        (fun want ->
          Alcotest.(check bool) (Printf.sprintf "has a %S event" want) true
            (List.mem want phs))
        [ "M"; "X"; "C"; "b"; "n"; "e"; "i" ]
    | _ -> Alcotest.fail "traceEvents missing or not a list")
  | _ -> Alcotest.fail "top level is not an object"

(* ---------- JSON parser ---------- *)

let test_obs_json_parse () =
  let doc : Obs_json.t =
    `Assoc
      [ ("s", `String "a \"quoted\" line\nwith\ttabs and \\ unicode \xc3\xa9");
        ("i", `Int (-42)); ("f", `Float 0.25); ("t", `Bool true);
        ("n", `Null);
        ("l", `List [ `Int 1; `Float 1.5; `String ""; `Assoc [] ]);
        ("nested", `Assoc [ ("k", `List [ `Null; `Bool false ]) ]) ]
  in
  (match Obs_json.of_string (Obs_json.to_string doc) with
  | Ok parsed -> Alcotest.(check bool) "round-trips" true (parsed = doc)
  | Error msg -> Alcotest.fail ("round-trip failed: " ^ msg));
  (* Escapes, including \u, decode to the bytes the encoder would emit. *)
  (match Obs_json.of_string {|{"u": "Aé", "sci": 1e3}|} with
  | Ok j ->
    Alcotest.(check bool) "unicode escape" true
      (Obs_json.member "u" j = Some (`String "A\xc3\xa9"));
    Alcotest.(check bool) "exponent is a float" true
      (Obs_json.member "sci" j = Some (`Float 1000.0))
  | Error msg -> Alcotest.fail msg);
  (* Integral tokens stay ints; accessors coerce where lossless. *)
  (match Obs_json.of_string "[7, 7.0]" with
  | Ok (`List [ a; b ]) ->
    Alcotest.(check bool) "7 parses as Int" true (a = `Int 7);
    Alcotest.(check (option int)) "to_int accepts integral float" (Some 7)
      (Obs_json.to_int b);
    Alcotest.(check (option (float 0.0))) "to_float accepts int" (Some 7.0)
      (Obs_json.to_float a)
  | _ -> Alcotest.fail "list parse failed");
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" bad)
        true
        (match Obs_json.of_string bad with Ok _ -> false | Error _ -> true))
    [ "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; ""; "nan" ]

(* ---------- Event_sink at-exit flush ---------- *)

(* The regression this pins: a run killed mid-stream used to leave the
   channel's last buffered bytes unwritten — a truncated final JSONL line.
   [flush_installed] (registered [at_exit]) must complete the stream. *)
let test_flush_installed_completes_stream () =
  let file = Filename.temp_file "csod_sink" ".jsonl" in
  let oc = open_out file in
  Event_sink.install (Event_sink.to_channel oc);
  Event_sink.emit "first" [ ("k", `Int 1) ];
  (* Larger than the channel buffer, so part of this line is on disk and
     the tail is still buffered — exactly a kill-mid-write. *)
  Event_sink.emit "big" [ ("blob", `String (String.make 100_000 'x')) ];
  let partial = In_channel.with_open_text file In_channel.input_all in
  Alcotest.(check bool) "stream is torn before the flush" true
    (partial = "" || partial.[String.length partial - 1] <> '\n');
  Event_sink.flush_installed ();
  let full = In_channel.with_open_text file In_channel.input_all in
  Alcotest.(check bool) "flushed stream ends in a newline" true
    (full <> "" && full.[String.length full - 1] = '\n');
  let lines =
    String.split_on_char '\n' full |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "both events present" 2 (List.length lines);
  List.iter
    (fun line ->
      match Obs_json.of_string line with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail ("line does not parse: " ^ msg))
    lines;
  Event_sink.uninstall ();
  close_out oc;
  Sys.remove file

(* ---------- Snapshot sequencing across a merge ---------- *)

let test_snapshot_seq_across_merge () =
  let buf = Buffer.create 512 in
  let dst = Telemetry.create () in
  Telemetry.set_snapshot_interval dst ~cycles:100;
  let src = Telemetry.create () in
  Telemetry.set_snapshot_interval src ~cycles:10;
  Event_sink.with_sink (Event_sink.to_buffer buf) (fun () ->
      Telemetry.tick dst ~now:250;
      (* boundaries 100, 200 -> seq 1, 2 *)
      Telemetry.tick src ~now:30;
      (* src's own stream: seq 1..3 *)
      Telemetry.merge_into ~dst ~src;
      (* dst keeps its own cadence (interval 100, next boundary 300 — not
         src's interval 10), but the union's snapshot count advances the
         sequence: the next snapshot is seq 6, not 3. *)
      Telemetry.tick dst ~now:350);
  Alcotest.(check int) "merged snapshot count" 6 (Telemetry.snapshot_count dst);
  let snaps =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
    |> List.filter_map (fun line ->
           match Obs_json.of_string line with
           | Ok j when Obs_json.member "event" j = Some (`String "snapshot") ->
             Some
               ( Option.get (Option.bind (Obs_json.member "seq" j) Obs_json.to_int),
                 Option.get
                   (Option.bind (Obs_json.member "cycles" j) Obs_json.to_int) )
           | _ -> None)
  in
  Alcotest.(check (list (pair int int)))
    "seq continues after the union, cadence unmerged"
    [ (1, 100); (2, 200); (1, 10); (2, 20); (3, 30); (6, 300) ]
    snaps

(* ---------- Health records ---------- *)

let health_sample : Health.sample =
  { Health.epoch = 3; arrivals = 32; detections = 4; cumulative = 19;
    users = 1000; cdf = 0.019; store_contexts = 2; patched = 1; degraded = 1;
    worker_crashes = 2;
    faults = [ ("runtime.degraded", 1); ("trap.dropped", 5) ];
    snapshots = 12; epoch_seconds = 0.125; merge_seconds = 0.003;
    observer_seconds = 0.0005; execs_per_sec = 256.0;
    straggler_skew = 1.75; telemetry = "sharded";
    domains =
      [ { Health.slot = 0; executed = 17; busy_seconds = 0.061 };
        { Health.slot = 1; executed = 15; busy_seconds = 0.059 } ] }

let test_health_roundtrip () =
  let line = Obs_json.to_string (Health.to_json health_sample) in
  (match Obs_json.of_string line with
  | Ok j -> (
    Alcotest.(check bool) "schema tagged" true
      (Obs_json.member "schema" j = Some (`String Health.schema));
    match Health.of_json j with
    | Some s -> Alcotest.(check bool) "round-trips" true (s = health_sample)
    | None -> Alcotest.fail "of_json rejected its own encoding")
  | Error msg -> Alcotest.fail ("health line does not parse: " ^ msg));
  (* Foreign records are rejected, not mis-parsed. *)
  Alcotest.(check bool) "wrong schema rejected" true
    (Health.of_json (`Assoc [ ("schema", `String "csod.bench/1") ]) = None);
  Alcotest.(check bool) "missing field rejected" true
    (Health.of_json
       (`Assoc [ ("schema", `String Health.schema); ("epoch", `Int 1) ])
    = None)

let test_health_skew_and_render () =
  Alcotest.(check (float 1e-9)) "skew of empty" 1.0 (Health.straggler_skew []);
  Alcotest.(check (float 1e-9)) "skew of one worker" 1.0
    (Health.straggler_skew [ 4.0 ]);
  Alcotest.(check (float 1e-9)) "idle workers don't vote" 3.0
    (Health.straggler_skew [ 0.0; 1.0; 1.0; 3.0 ]);
  let plain = Health.render ~color:false [ health_sample ] in
  Alcotest.(check bool) "renders a headline" true
    (String.length plain > 0
    && String.starts_with ~prefix:"CSOD FLEET" plain);
  Alcotest.(check bool) "no escape codes without color" true
    (not (String.contains plain '\x1b'));
  Alcotest.(check bool) "colored output has escape codes" true
    (String.contains (Health.render ~color:true [ health_sample ]) '\x1b');
  Alcotest.(check bool) "empty stream renders a placeholder" true
    (String.length (Health.render ~color:false []) > 0)

(* The serve history format stores every rate and skew as a JSON float, so
   the parser's float edges are load-bearing: non-finite tokens must be
   rejected (JSON has no nan/inf), and exponent forms must survive a
   to_string/of_string cycle at the encoder's %.12g precision. *)
let test_obs_json_float_edges () =
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" bad)
        true
        (match Obs_json.of_string bad with Ok _ -> false | Error _ -> true))
    [ "nan"; "inf"; "-inf"; "NaN"; "Infinity"; "-Infinity";
      "{\"x\": nan}"; "[inf]"; "1e"; "1e+"; "0x10"; "1e999e";
      (* overflowing exponents must not smuggle in an infinity *)
      "1e999"; "-1e999"; "[2e308]" ];
  (* Exponent forms round-trip through the encoder: re-encoding the parse
     of an encoded float reproduces the same document bytes. *)
  List.iter
    (fun x ->
      let doc = Obs_json.to_string (`List [ `Float x ]) in
      match Obs_json.of_string doc with
      | Ok j ->
        Alcotest.(check string)
          (Printf.sprintf "%.17g round-trip stable" x)
          doc
          (Obs_json.to_string j)
      | Error msg ->
        Alcotest.fail (Printf.sprintf "%.17g failed to parse: %s" x msg))
    [ 2.5e-7; 1e3; 1.0; 0.1; -0.25; 6.02214076e23; 1e300; 1e-300;
      4.9406564584124654e-324; 1.7976931348623157e308; 3.14159265358979 ];
  (* Literal exponent spellings parse to the same value however written. *)
  match Obs_json.of_string "[1e3, 1E3, 10e2, 1000.0, 0.1e4]" with
  | Ok (`List vals) ->
    List.iter
      (fun v ->
        Alcotest.(check (option (float 0.0))) "exponent spelling" (Some 1000.0)
          (Obs_json.to_float v))
      vals
  | _ -> Alcotest.fail "exponent list failed to parse"

(* An epoch where nobody ran: the drained-fleet steady state that serve
   produces once the population is exhausted.  Every derived statistic
   must stay finite and the record must survive its own encoding. *)
let test_health_zero_executed () =
  Alcotest.(check (float 1e-9)) "skew of all-idle workers" 1.0
    (Health.straggler_skew [ 0.0; 0.0; 0.0 ]);
  let idle =
    { Health.epoch = 9; arrivals = 0; detections = 0; cumulative = 19;
      users = 1000; cdf = 0.019; store_contexts = 2; patched = 1; degraded = 1;
      worker_crashes = 2; faults = []; snapshots = 12;
      epoch_seconds = 0.0001; merge_seconds = 0.0; observer_seconds = 0.0;
      execs_per_sec = 0.0; straggler_skew = 1.0; telemetry = "sharded";
      domains =
        [ { Health.slot = 0; executed = 0; busy_seconds = 0.0 };
          { Health.slot = 1; executed = 0; busy_seconds = 0.0 } ] }
  in
  (match Obs_json.of_string (Obs_json.to_string (Health.to_json idle)) with
  | Ok j -> (
    match Health.of_json j with
    | Some s -> Alcotest.(check bool) "idle epoch round-trips" true (s = idle)
    | None -> Alcotest.fail "of_json rejected an idle epoch")
  | Error msg -> Alcotest.fail ("idle epoch does not parse: " ^ msg));
  let plain = Health.render ~color:false [ idle ] in
  Alcotest.(check bool) "idle epoch renders" true
    (String.starts_with ~prefix:"CSOD FLEET" plain);
  (* An empty fleet (users = 0) must not divide by zero anywhere. *)
  let empty = { idle with Health.users = 0; cumulative = 0; cdf = 0.0 } in
  Alcotest.(check bool) "empty fleet renders" true
    (String.length (Health.render ~color:false [ empty ]) > 0)

(* ---------- Fleet span export ---------- *)

let test_fleet_span_export () =
  let spans =
    [ { Trace_export.track = 0; name = "user #1"; start_s = 0.0;
        stop_s = 0.010; args = [ ("epoch", `Int 0) ] };
      { Trace_export.track = 1; name = "user #2"; start_s = 0.002;
        stop_s = 0.012; args = [] };
      { Trace_export.track = 2; name = "epoch 0 merge"; start_s = 0.012;
        stop_s = 0.013; args = [] } ]
  in
  match Trace_export.fleet_spans_to_json ~domains:2 spans with
  | `Assoc top -> (
    match List.assoc_opt "traceEvents" top with
    | Some (`List evs) ->
      let by_ph p =
        List.filter
          (function
            | `Assoc f -> List.assoc_opt "ph" f = Some (`String p)
            | _ -> false)
          evs
      in
      Alcotest.(check int) "one B per span" 3 (List.length (by_ph "B"));
      Alcotest.(check int) "one E per span" 3 (List.length (by_ph "E"));
      (* process_name + thread_name for domains 0, 1 and the barrier *)
      Alcotest.(check int) "metadata names the tracks" 4
        (List.length (by_ph "M"));
      List.iter
        (function
          | `Assoc f ->
            Alcotest.(check bool) "all events on the fleet pid" true
              (List.assoc_opt "pid" f = Some (`Int 2))
          | _ -> ())
        evs;
      let ts =
        List.filter_map
          (function
            | `Assoc f
              when List.assoc_opt "ph" f = Some (`String "B")
                   || List.assoc_opt "ph" f = Some (`String "E") -> (
              match List.assoc_opt "ts" f with
              | Some (`Float t) -> Some t
              | _ -> None)
            | _ -> None)
          evs
      in
      Alcotest.(check bool) "timestamps sorted for nesting" true
        (ts = List.sort compare ts)
    | _ -> Alcotest.fail "traceEvents missing")
  | _ -> Alcotest.fail "top level is not an object"

let suite =
  [ Alcotest.test_case "counter basics" `Quick test_counter_basics;
    Alcotest.test_case "counter monotonicity" `Quick test_counter_monotonic;
    Alcotest.test_case "gauge high watermark" `Quick test_gauge;
    Alcotest.test_case "histogram bucket boundaries" `Quick test_histogram_boundaries;
    Alcotest.test_case "histogram default bounds" `Quick test_histogram_default_bounds;
    Alcotest.test_case "metrics merge" `Quick test_metrics_merge;
    Alcotest.test_case "metrics merge histograms" `Quick test_metrics_merge_histograms;
    Alcotest.test_case "profiler merge" `Quick test_profiler_merge;
    Alcotest.test_case "profiler charges" `Quick test_profiler;
    QCheck_alcotest.to_alcotest prop_profiler_registry_agree;
    QCheck_alcotest.to_alcotest prop_machine_attribution;
    Alcotest.test_case "in_phase: outermost wins" `Quick test_in_phase_outermost_wins;
    Alcotest.test_case "event sink install/restore" `Quick test_event_sink;
    Alcotest.test_case "snapshot determinism" `Quick test_snapshot_determinism;
    Alcotest.test_case "heartbleed metrics" `Quick test_heartbleed_metrics;
    Alcotest.test_case "heartbleed profile coverage" `Quick
      test_heartbleed_profile_coverage;
    Alcotest.test_case "telemetry does not perturb" `Quick test_metrics_do_not_perturb;
    Alcotest.test_case "trace events routed to sink" `Quick test_trace_events_routed;
    Alcotest.test_case "json encoder" `Quick test_obs_json;
    Alcotest.test_case "telemetry json export" `Quick test_telemetry_json;
    Alcotest.test_case "sink flushes on uninstall" `Quick
      test_sink_flush_on_uninstall;
    Alcotest.test_case "with_sink flushes" `Quick test_with_sink_flushes;
    Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
    Alcotest.test_case "histogram json percentiles" `Quick
      test_histogram_json_has_percentiles;
    Alcotest.test_case "trace event schema round-trip" `Quick
      test_trace_event_schema;
    Alcotest.test_case "flight recorder ring" `Quick test_flight_recorder_ring;
    Alcotest.test_case "flight record json" `Quick test_flight_record_json;
    Alcotest.test_case "flight dump on detection" `Quick
      test_flight_dump_on_detection;
    Alcotest.test_case "flight recorder does not perturb" `Quick
      test_recorder_does_not_perturb;
    Alcotest.test_case "flight recorder preserves prng stream" `Quick
      test_recorder_prng_stream;
    Alcotest.test_case "chrome trace export structure" `Quick
      test_trace_export_structure;
    Alcotest.test_case "json parser" `Quick test_obs_json_parse;
    Alcotest.test_case "at-exit flush completes the stream" `Quick
      test_flush_installed_completes_stream;
    Alcotest.test_case "snapshot sequencing across a merge" `Quick
      test_snapshot_seq_across_merge;
    Alcotest.test_case "health record round-trip" `Quick test_health_roundtrip;
    Alcotest.test_case "health skew and renderer" `Quick
      test_health_skew_and_render;
    Alcotest.test_case "json float edges" `Quick test_obs_json_float_edges;
    Alcotest.test_case "health with zero executed users" `Quick
      test_health_zero_executed;
    Alcotest.test_case "fleet span export structure" `Quick
      test_fleet_span_export ]
