(* Tests for the CSOD core: sampling unit, watchpoint unit, canary layout,
   persistence, and reports. *)

let sec s = s * Cost.cycles_per_second

let mk_ct ?(params = Params.default) () =
  let machine = Machine.create ~seed:9 () in
  let rng = Prng.create ~seed:1 in
  (Context_table.create ~params ~machine ~rng, machine)

let ctx ?(off = 0) callsite = Alloc_ctx.synthetic ~callsite ~stack_offset:off ()

let feq = Alcotest.float 1e-9

(* ---------- Context_table ---------- *)

let test_ct_initial_prob () =
  let ct, _ = mk_ct () in
  let e = Context_table.on_allocation ct (ctx 1) in
  Alcotest.check feq "0.5 minus one degradation"
    (0.5 -. Params.default.Params.degrade_per_alloc) e.Context_table.prob;
  Alcotest.(check int) "alloc counted" 1 e.Context_table.allocs;
  Alcotest.(check int) "one context" 1 (Context_table.num_contexts ct)

let test_ct_key_identity () =
  let ct, _ = mk_ct () in
  let e1 = Context_table.on_allocation ct (ctx ~off:0 1) in
  let e2 = Context_table.on_allocation ct (ctx ~off:0 1) in
  let e3 = Context_table.on_allocation ct (ctx ~off:8 1) in
  let e4 = Context_table.on_allocation ct (ctx ~off:0 2) in
  Alcotest.(check bool) "same site+offset: same entry" true (e1 == e2);
  Alcotest.(check bool) "different offset: new entry" true (e1 != e3);
  Alcotest.(check bool) "different site: new entry" true (e1 != e4);
  Alcotest.(check int) "three contexts" 3 (Context_table.num_contexts ct);
  Alcotest.(check int) "four allocations" 4 (Context_table.total_allocations ct)

let test_ct_ids_dense () =
  let ct, _ = mk_ct () in
  let e1 = Context_table.on_allocation ct (ctx 1) in
  let e2 = Context_table.on_allocation ct (ctx 2) in
  Alcotest.(check int) "first id" 0 e1.Context_table.id;
  Alcotest.(check int) "second id" 1 e2.Context_table.id;
  Alcotest.(check bool) "find_by_id" true
    (Context_table.find_by_id ct 0 = Some e1 && Context_table.find_by_id ct 1 = Some e2);
  Alcotest.(check (option bool)) "find by key" (Some true)
    (Option.map (fun e -> e == e1) (Context_table.find ct (Alloc_ctx.key (ctx 1))))

let test_ct_degradation_accumulates () =
  let ct, _ = mk_ct () in
  for _ = 1 to 1000 do
    ignore (Context_table.on_allocation ct (ctx 5))
  done;
  let e = Option.get (Context_table.find ct (Alloc_ctx.key (ctx 5))) in
  Alcotest.check (Alcotest.float 1e-6) "1000 degradations"
    (0.5 -. (1000.0 *. 1e-5)) e.Context_table.prob

let test_ct_watch_halving_and_floor () =
  let ct, _ = mk_ct () in
  let e = Context_table.on_allocation ct (ctx 7) in
  let p0 = e.Context_table.prob in
  Context_table.note_watched ct e;
  Alcotest.check feq "halved" (p0 /. 2.0) e.Context_table.prob;
  for _ = 1 to 40 do
    Context_table.note_watched ct e
  done;
  Alcotest.check feq "clamped at the floor" Params.default.Params.min_prob
    e.Context_table.prob;
  Alcotest.(check int) "watch count" 41 e.Context_table.watches

let test_ct_burst_throttle () =
  let ct, machine = mk_ct () in
  let e = ref (Context_table.on_allocation ct (ctx 3)) in
  for _ = 1 to Params.default.Params.burst_threshold + 10 do
    e := Context_table.on_allocation ct (ctx 3)
  done;
  Alcotest.check feq "throttled to burst probability"
    Params.default.Params.burst_prob
    (Context_table.effective_prob ct !e);
  (* Once the window elapses, the throttle expires. *)
  Machine.work machine (sec 11);
  let e = Context_table.on_allocation ct (ctx 3) in
  Alcotest.(check bool) "recovers after the window" true
    (Context_table.effective_prob ct e > Params.default.Params.burst_prob)

let test_ct_no_burst_when_slow () =
  let ct, machine = mk_ct () in
  (* Allocations spread beyond the window never trip the threshold rate
     test because the window counter resets. *)
  for _ = 1 to 10 do
    ignore (Context_table.on_allocation ct (ctx 4));
    Machine.work machine (sec 2)
  done;
  let e = Option.get (Context_table.find ct (Alloc_ctx.key (ctx 4))) in
  Alcotest.(check bool) "no throttle" true
    (Context_table.effective_prob ct e > Params.default.Params.burst_prob)

let test_ct_pin () =
  let ct, _ = mk_ct () in
  let e = Context_table.on_allocation ct (ctx 8) in
  Context_table.pin ct e;
  Alcotest.check feq "pinned at 1" 1.0 (Context_table.effective_prob ct e);
  Context_table.note_watched ct e;
  Alcotest.check feq "watching does not unpin" 1.0 (Context_table.effective_prob ct e)

let test_ct_revive () =
  let params = { Params.default with Params.revive_period_sec = 1.0 } in
  let ct, machine = mk_ct ~params () in
  let e = Context_table.on_allocation ct (ctx 6) in
  for _ = 1 to 60 do
    Context_table.note_watched ct e
  done;
  Alcotest.check feq "at floor" params.Params.min_prob e.Context_table.prob;
  Machine.work machine (sec 5);
  (* Reviving is a low-probability coin per allocation; hammer it. *)
  let revived = ref false in
  let n = ref 0 in
  while (not !revived) && !n < 2_000_000 do
    incr n;
    let e = Context_table.on_allocation ct (ctx 6) in
    if e.Context_table.prob >= params.Params.revive_prob -. 1e-9 then revived := true
  done;
  Alcotest.(check bool) "eventually revived to 0.01%" true !revived

let prop_ct_prob_bounds =
  QCheck.Test.make ~name:"probability stays within [min_prob, initial]" ~count:60
    QCheck.(list (pair (int_range 0 5) bool))
    (fun ops ->
      let ct, _ = mk_ct () in
      List.for_all
        (fun (site, watch) ->
          let e = Context_table.on_allocation ct (ctx site) in
          if watch then Context_table.note_watched ct e;
          e.Context_table.prob >= Params.default.Params.min_prob -. 1e-12
          && e.Context_table.prob <= Params.default.Params.initial_prob +. 1e-12)
        ops)

(* ---------- Watch_table ---------- *)

let mk_wt ?(policy = Params.Near_fifo) () =
  let params = { Params.default with Params.policy } in
  let machine = Machine.create ~seed:4 () in
  let rng = Prng.create ~seed:2 in
  let wt = Watch_table.create ~params ~machine ~rng in
  let ct = Context_table.create ~params ~machine ~rng:(Prng.create ~seed:3) in
  (wt, ct, machine)

let entry_for ct site = Context_table.on_allocation ct (ctx site)

let test_wt_install_and_free () =
  let wt, ct, machine = mk_wt () in
  Alcotest.(check bool) "starts in startup" true (Watch_table.in_startup wt);
  let e = entry_for ct 1 in
  ignore (Watch_table.install wt ~obj_addr:0x100 ~watch_addr:0x140 ~entry:e);
  Alcotest.(check int) "one install" 1 (Watch_table.installs wt);
  Alcotest.(check int) "one live wp" 1 (List.length (Watch_table.live wt));
  Alcotest.(check bool) "slots remain" true (Watch_table.has_free_slot wt);
  Alcotest.(check bool) "still startup until full" true (Watch_table.in_startup wt);
  (* the hardware actually watches the address *)
  let fired = ref 0 in
  Machine.set_trap_handler machine (fun _ -> incr fired);
  ignore (Machine.load_word machine 0x140);
  Alcotest.(check int) "hardware armed" 1 !fired;
  Alcotest.(check bool) "removed on free" true (Watch_table.on_free wt ~obj_addr:0x100);
  Alcotest.(check bool) "second free is a no-op" false
    (Watch_table.on_free wt ~obj_addr:0x100);
  ignore (Machine.load_word machine 0x140);
  Alcotest.(check int) "hardware disarmed" 1 !fired;
  Alcotest.(check int) "no fd leak" 0 (Hw_breakpoint.live_fd_count (Machine.hw machine))

let fill_four wt ct =
  List.iter
    (fun i ->
      ignore
        (Watch_table.install wt ~obj_addr:(0x1000 * i)
           ~watch_addr:((0x1000 * i) + 0x40) ~entry:(entry_for ct i)))
    [ 1; 2; 3; 4 ]

let test_wt_startup_ends_when_full () =
  let wt, ct, _ = mk_wt () in
  fill_four wt ct;
  Alcotest.(check bool) "full" true (not (Watch_table.has_free_slot wt));
  Alcotest.(check bool) "startup over" false (Watch_table.in_startup wt);
  ignore (Watch_table.on_free wt ~obj_addr:0x1000);
  Alcotest.(check bool) "startup stays over after frees" false (Watch_table.in_startup wt)

let test_wt_install_full_fails () =
  let wt, ct, _ = mk_wt () in
  fill_four wt ct;
  Alcotest.check_raises "install on full table"
    (Failure "Watch_table.install: no free slot") (fun () ->
      ignore
        (Watch_table.install wt ~obj_addr:0x9000 ~watch_addr:0x9040
           ~entry:(entry_for ct 9)))

let test_wt_naive_never_replaces () =
  let wt, ct, machine = mk_wt ~policy:Params.Naive () in
  fill_four wt ct;
  Machine.work machine (sec 100); (* victims fully decayed *)
  Alcotest.(check bool) "naive refuses" false
    (Watch_table.try_replace wt ~obj_addr:0x9000 ~watch_addr:0x9040
       ~entry:(entry_for ct 9) ~new_prob:1.0)

let test_wt_near_fifo_replaces_oldest_yielding () =
  let wt, ct, machine = mk_wt ~policy:Params.Near_fifo () in
  fill_four wt ct;
  Machine.work machine (sec 15); (* one half-life: decayed to ~0.25 *)
  let ok =
    Watch_table.try_replace wt ~obj_addr:0x9000 ~watch_addr:0x9040
      ~entry:(entry_for ct 9) ~new_prob:0.4
  in
  Alcotest.(check bool) "replacement happened" true ok;
  let objs = List.map (fun w -> w.Watch_table.obj_addr) (Watch_table.live wt) in
  Alcotest.(check bool) "oldest (obj 1) evicted" false (List.mem 0x1000 objs);
  Alcotest.(check bool) "newcomer present" true (List.mem 0x9000 objs)

let test_wt_young_victims_protected () =
  let wt, ct, _ = mk_wt ~policy:Params.Near_fifo () in
  fill_four wt ct;
  (* no time has passed: all victims hold their full installation
     probability (~0.5), so an equal-probability newcomer is refused *)
  Alcotest.(check bool) "no victim yields" false
    (Watch_table.try_replace wt ~obj_addr:0x9000 ~watch_addr:0x9040
       ~entry:(entry_for ct 9) ~new_prob:0.499)

let test_wt_random_replaces_some_yielding () =
  let wt, ct, machine = mk_wt ~policy:Params.Random () in
  fill_four wt ct;
  Machine.work machine (sec 15);
  let ok =
    Watch_table.try_replace wt ~obj_addr:0x9000 ~watch_addr:0x9040
      ~entry:(entry_for ct 9) ~new_prob:0.4
  in
  Alcotest.(check bool) "random policy replaced one" true ok;
  Alcotest.(check int) "still four watchpoints" 4 (List.length (Watch_table.live wt))

let test_wt_decay_steps () =
  let wt, ct, machine = mk_wt () in
  let e = entry_for ct 1 in
  ignore (Watch_table.install wt ~obj_addr:0x100 ~watch_addr:0x140 ~entry:e);
  let wp = List.hd (Watch_table.live wt) in
  let p0 = Watch_table.decayed_prob wt wp in
  Machine.work machine (sec 9);
  Alcotest.check feq "no decay before a full half-life" p0
    (Watch_table.decayed_prob wt wp);
  Machine.work machine (sec 2);
  Alcotest.check feq "one step after 10s" (p0 /. 2.0) (Watch_table.decayed_prob wt wp);
  Machine.work machine (sec 10);
  Alcotest.check feq "two steps after 20s" (p0 /. 4.0) (Watch_table.decayed_prob wt wp)

let test_wt_thread_propagation () =
  let wt, ct, machine = mk_wt () in
  let e = entry_for ct 1 in
  ignore (Watch_table.install wt ~obj_addr:0x100 ~watch_addr:0x140 ~entry:e);
  let threads = Machine.threads machine in
  let worker = Threads.spawn threads ~name:"w" in
  (* new thread inherits the installed watchpoint *)
  let fired = ref [] in
  Machine.set_trap_handler machine (fun i -> fired := i.Machine.tid :: !fired);
  Threads.set_current threads worker;
  ignore (Machine.load_word machine 0x140);
  Alcotest.(check (list int)) "trap on the new thread" [ worker ] !fired;
  Threads.set_current threads 0;
  Threads.exit_thread threads worker;
  ignore (Machine.load_word machine 0x140);
  Alcotest.(check int) "main still watched" 2 (List.length !fired);
  ignore (Watch_table.on_free wt ~obj_addr:0x100);
  Alcotest.(check int) "all descriptors closed" 0
    (Hw_breakpoint.live_fd_count (Machine.hw machine))

let test_wt_find_by_fd () =
  let wt, ct, machine = mk_wt () in
  ignore (Watch_table.install wt ~obj_addr:0x100 ~watch_addr:0x140 ~entry:(entry_for ct 1));
  let hit = ref None in
  Machine.set_trap_handler machine (fun i -> hit := Some i.Machine.fd);
  ignore (Machine.load_word machine 0x141);
  match !hit with
  | None -> Alcotest.fail "no trap"
  | Some fd -> (
    match Watch_table.find_by_fd wt fd with
    | Some wp -> Alcotest.(check int) "fd maps to watchpoint" 0x100 wp.Watch_table.obj_addr
    | None -> Alcotest.fail "find_by_fd missed")

(* ---------- Canary ---------- *)

let test_canary_layout () =
  Alcotest.(check int) "rounding" 40 (Canary.rounded 33);
  Alcotest.(check int) "rounding exact" 32 (Canary.rounded 32);
  Alcotest.(check int) "padded with evidence" (32 + 40 + 8)
    (Canary.padded_request ~evidence:true 33);
  Alcotest.(check int) "padded without evidence" (40 + 8)
    (Canary.padded_request ~evidence:false 33);
  Alcotest.(check int) "app ptr offset" 132 (Canary.app_ptr ~evidence:true ~base:100);
  Alcotest.(check int) "app ptr without header" 100
    (Canary.app_ptr ~evidence:false ~base:100);
  Alcotest.(check int) "base ptr inverse" 100 (Canary.base_ptr ~evidence:true ~app:132);
  Alcotest.(check int) "boundary" (132 + 40) (Canary.boundary_addr ~app:132 ~size:33)

let test_canary_plant_check () =
  let m = Machine.create () in
  let base = Machine.sbrk m 128 in
  let app = Canary.plant m ~base ~size:24 ~ctx_id:77 ~canary:0xDEADBEEFL in
  Alcotest.(check int) "app past header" (base + Canary.header_size) app;
  Alcotest.(check bool) "intact" true (Canary.check m ~app ~size:24 ~expected:0xDEADBEEFL);
  Alcotest.(check (option (triple int int int))) "header readable"
    (Some (base, 24, 77))
    (Canary.read_header m ~app);
  (* corrupt one canary byte *)
  Sparse_mem.write_u8 (Machine.mem m) (Canary.boundary_addr ~app ~size:24) 0x00;
  Alcotest.(check bool) "corruption detected" false
    (Canary.check m ~app ~size:24 ~expected:0xDEADBEEFL)

let test_canary_foreign_header () =
  let m = Machine.create () in
  let base = Machine.sbrk m 128 in
  Alcotest.(check (option (triple int int int))) "no identifier: not ours" None
    (Canary.read_header m ~app:(base + 32));
  Alcotest.(check (option (triple int int int))) "negative base" None
    (Canary.read_header m ~app:8)

(* ---------- Persist ---------- *)

let test_persist_roundtrip () =
  let s = Persist.create () in
  Persist.add s (1, 2);
  Persist.add s (3, 4);
  Persist.add s (1, 2);
  Alcotest.(check int) "idempotent add" 2 (Persist.count s);
  Alcotest.(check bool) "mem" true (Persist.mem s (1, 2));
  Alcotest.(check bool) "not mem" false (Persist.mem s (9, 9));
  let file = Filename.temp_file "csod_store" ".txt" in
  Persist.save s file;
  let s2 = Persist.load file in
  Alcotest.(check int) "loaded count" 2 (Persist.count s2);
  Alcotest.(check bool) "loaded keys" true
    (Persist.keys s2 = [ (1, 2); (3, 4) ]);
  Sys.remove file;
  let s3 = Persist.load file in
  Alcotest.(check int) "missing file: empty store" 0 (Persist.count s3)

let test_persist_merge () =
  let a = Persist.create () and b = Persist.create () in
  Persist.add a (1, 2);
  Persist.add a (3, 4);
  Persist.add b (3, 4);
  Persist.add b (5, 6);
  let ab = Persist.copy a and ba = Persist.copy b in
  Persist.merge ab b;
  Persist.merge ba a;
  Alcotest.(check bool) "commutative key set" true
    (Persist.keys ab = Persist.keys ba);
  Alcotest.(check bool) "union" true
    (Persist.keys ab = [ (1, 2); (3, 4); (5, 6) ]);
  Alcotest.(check int) "src untouched" 2 (Persist.count b);
  Alcotest.(check int) "copy is independent" 2 (Persist.count a);
  (* save / load / merge round-trip: merging a loaded store equals merging
     the original. *)
  let file = Filename.temp_file "csod_store" ".txt" in
  Persist.save b file;
  let fresh = Persist.copy a in
  Persist.merge fresh (Persist.load file);
  Alcotest.(check bool) "save/load/merge round-trip" true
    (Persist.keys fresh = Persist.keys ab);
  Sys.remove file

let test_persist_load_tolerant () =
  let file = Filename.temp_file "csod_store" ".txt" in
  let oc = open_out file in
  output_string oc "1 2  \n\n  3\t4\n5  6\n   \n";
  close_out oc;
  (* Footer-less (pre-upgrade) stores load cleanly. *)
  (match Persist.load_result file with
  | s, Persist.Clean 3 ->
    Alcotest.(check bool) "whitespace tolerated" true
      (Persist.keys s = [ (1, 2); (3, 4); (5, 6) ])
  | _, _ -> Alcotest.fail "footer-less store should load clean");
  (* Malformed lines are skipped, not fatal: the parsable contexts are
     salvaged and the load reports recovery. *)
  let oc = open_out file in
  output_string oc "1 2\n1 2 3\n";
  close_out oc;
  (match Persist.load_result file with
  | s, Persist.Recovered { entries = 1; corrupt_lines = 1 } ->
    Alcotest.(check bool) "good line salvaged" true (Persist.mem s (1, 2))
  | _, _ -> Alcotest.fail "three-field line should be recovered around");
  let oc = open_out file in
  output_string oc "1 x\n";
  close_out oc;
  (match Persist.load_result file with
  | _, Persist.Recovered { entries = 0; corrupt_lines = 1 } -> ()
  | _, _ -> Alcotest.fail "non-integer line should count as corrupt");
  Sys.remove file;
  match Persist.load_result file with
  | _, Persist.Missing -> ()
  | _, _ -> Alcotest.fail "missing file must be distinguished from empty"

let test_persist_torn_tail () =
  let file = Filename.temp_file "csod_store" ".txt" in
  (* A torn write: the process died mid-line, so the tail has no
     terminating newline.  "30 4" parses as a well-formed entry, but the
     writer was emitting "30 45" — salvaging the fragment would fabricate
     evidence for key (30, 4), a context that never overflowed. *)
  let oc = open_out_bin file in
  output_string oc "10 2\n30 4";
  close_out oc;
  let reg = Metrics.create () in
  (match Persist.load_result ~metrics:reg file with
  | s, Persist.Recovered { entries = 1; corrupt_lines = 1 } ->
    Alcotest.(check bool) "intact line salvaged" true (Persist.mem s (10, 2));
    Alcotest.(check bool) "fabricated key rejected" true
      (not (Persist.mem s (30, 4)))
  | _, _ -> Alcotest.fail "unterminated tail must count as corrupt");
  Alcotest.(check bool) "tear counted under persist.corrupt_lines" true
    (List.assoc_opt "persist.corrupt_lines" (Metrics.counters_list reg)
     = Some 1);
  (* The same bytes with the terminator are a clean two-entry store. *)
  let oc = open_out_bin file in
  output_string oc "10 2\n30 4\n";
  close_out oc;
  (match Persist.load_result file with
  | s, Persist.Clean 2 ->
    Alcotest.(check bool) "terminated line loads" true (Persist.mem s (30, 4))
  | _, _ -> Alcotest.fail "terminated store should load clean");
  (* A torn footer is recovery, not corruption of the data lines. *)
  let s = Persist.create () in
  Persist.add s (7, 8);
  Persist.save s file;
  let full = In_channel.with_open_bin file In_channel.input_all in
  let oc = open_out_bin file in
  output_string oc (String.sub full 0 (String.length full - 3));
  close_out oc;
  (match Persist.load_result file with
  | s2, Persist.Recovered { entries = 1; corrupt_lines = 1 } ->
    Alcotest.(check bool) "entries survive a torn footer" true
      (Persist.mem s2 (7, 8))
  | _, _ -> Alcotest.fail "torn footer should recover the data lines");
  Sys.remove file

let test_persist_hits () =
  let a = Persist.create () in
  Persist.add a (1, 2);
  Persist.add a (1, 2);
  Persist.add a (1, 2);
  Persist.add a (3, 4);
  Alcotest.(check int) "hits accumulate" 3 (Persist.hits a (1, 2));
  Alcotest.(check int) "single hit" 1 (Persist.hits a (3, 4));
  Alcotest.(check int) "absent key" 0 (Persist.hits a (9, 9));
  Alcotest.(check int) "count is distinct keys" 2 (Persist.count a);
  let b = Persist.create () in
  Persist.add b (1, 2);
  Persist.add b (5, 6);
  let m = Persist.copy a in
  Persist.merge m b;
  Alcotest.(check int) "merge sums hits" 4 (Persist.hits m (1, 2));
  Alcotest.(check int) "merge keeps src hits" 1 (Persist.hits m (5, 6));
  (* merge_delta folds in only what [src] learned since [base]: the
     fleet's epoch barrier must not re-count the snapshot the execution
     started from. *)
  let shared = Persist.create () in
  Persist.add shared (1, 2);
  Persist.add shared (1, 2);
  let base = Persist.copy shared in
  let local = Persist.copy shared in
  Persist.add local (1, 2);
  Persist.add local (7, 8);
  Persist.merge_delta shared ~base local;
  Alcotest.(check int) "delta adds only new evidence" 3
    (Persist.hits shared (1, 2));
  Alcotest.(check int) "delta carries new keys" 1 (Persist.hits shared (7, 8));
  (* A second identical barrier from an unchanged local adds nothing. *)
  let base2 = Persist.copy shared in
  Persist.merge_delta shared ~base:base2 (Persist.copy shared);
  Alcotest.(check int) "idempotent on unchanged local" 3
    (Persist.hits shared (1, 2))

(* ---------- Report ---------- *)

let test_report_format () =
  let r =
    { Report.kind = Report.Over_read;
      source = Report.Watchpoint;
      access_backtrace = [ 10; 20 ];
      alloc_backtrace = [ 30 ];
      ctx_key = (30, 0);
      object_addr = 0x100;
      watch_addr = 0x140;
      tid = 0;
      at_sec = 1.0 }
  in
  let symbolize = function
    | 10 -> "lib.c:5 (read_chunk)"
    | 20 -> "main.c:2 (main)"
    | 30 -> "lib.c:1 (alloc_chunk)"
    | _ -> "?"
  in
  let s = Report.format ~symbolize r in
  let contains needle =
    let nl = String.length needle and hl = String.length s in
    let rec go i = i + nl <= hl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions over-read" true
    (contains "A buffer over-read problem is detected at:");
  Alcotest.(check bool) "access frames" true (contains "  lib.c:5 (read_chunk)");
  Alcotest.(check bool) "allocation section" true
    (contains "This object is allocated at:");
  Alcotest.(check bool) "alloc frames" true (contains "  lib.c:1 (alloc_chunk)");
  Alcotest.(check string) "kind name" "over-read" (Report.kind_name r.Report.kind);
  let canary_report = { r with Report.source = Report.Canary_exit; access_backtrace = [] } in
  let s2 = Report.format ~symbolize canary_report in
  Alcotest.(check bool) "canary wording" true
    (String.length s2 > 0
    && String.sub s2 0 46 = "A buffer over-write problem is evidenced by a ")

let suite =
  [ Alcotest.test_case "ct: initial probability" `Quick test_ct_initial_prob;
    Alcotest.test_case "ct: key identity" `Quick test_ct_key_identity;
    Alcotest.test_case "ct: dense ids" `Quick test_ct_ids_dense;
    Alcotest.test_case "ct: degradation" `Quick test_ct_degradation_accumulates;
    Alcotest.test_case "ct: watch halving + floor" `Quick test_ct_watch_halving_and_floor;
    Alcotest.test_case "ct: burst throttle" `Quick test_ct_burst_throttle;
    Alcotest.test_case "ct: no burst when slow" `Quick test_ct_no_burst_when_slow;
    Alcotest.test_case "ct: pin" `Quick test_ct_pin;
    Alcotest.test_case "ct: reviving" `Slow test_ct_revive;
    QCheck_alcotest.to_alcotest prop_ct_prob_bounds;
    Alcotest.test_case "wt: install and free" `Quick test_wt_install_and_free;
    Alcotest.test_case "wt: startup ends when full" `Quick test_wt_startup_ends_when_full;
    Alcotest.test_case "wt: install on full fails" `Quick test_wt_install_full_fails;
    Alcotest.test_case "wt: naive never replaces" `Quick test_wt_naive_never_replaces;
    Alcotest.test_case "wt: near-FIFO oldest victim" `Quick
      test_wt_near_fifo_replaces_oldest_yielding;
    Alcotest.test_case "wt: young victims protected" `Quick test_wt_young_victims_protected;
    Alcotest.test_case "wt: random policy" `Quick test_wt_random_replaces_some_yielding;
    Alcotest.test_case "wt: step decay" `Quick test_wt_decay_steps;
    Alcotest.test_case "wt: thread propagation" `Quick test_wt_thread_propagation;
    Alcotest.test_case "wt: find by fd" `Quick test_wt_find_by_fd;
    Alcotest.test_case "canary: layout" `Quick test_canary_layout;
    Alcotest.test_case "canary: plant/check" `Quick test_canary_plant_check;
    Alcotest.test_case "canary: foreign header" `Quick test_canary_foreign_header;
    Alcotest.test_case "persist: roundtrip" `Quick test_persist_roundtrip;
    Alcotest.test_case "persist: merge" `Quick test_persist_merge;
    Alcotest.test_case "persist: tolerant load" `Quick test_persist_load_tolerant;
    Alcotest.test_case "persist: torn tail rejected" `Quick
      test_persist_torn_tail;
    Alcotest.test_case "persist: hit counts and merge_delta" `Quick
      test_persist_hits;
    Alcotest.test_case "report: formatting" `Quick test_report_format ]

(* Combined-syscall extension (paper, Section V-B): same hardware
   behaviour, 2 kernel crossings per install+remove instead of 8. *)
let test_combined_syscall_cost () =
  let count combined_syscall =
    let params = { Params.default with Params.combined_syscall } in
    let machine = Machine.create ~seed:4 () in
    let rng = Prng.create ~seed:2 in
    let wt = Watch_table.create ~params ~machine ~rng in
    let ct = Context_table.create ~params ~machine ~rng:(Prng.create ~seed:3) in
    let e = Context_table.on_allocation ct (ctx 1) in
    ignore (Watch_table.install wt ~obj_addr:0x100 ~watch_addr:0x140 ~entry:e);
    ignore (Watch_table.on_free wt ~obj_addr:0x100);
    Machine.syscall_count machine
  in
  Alcotest.(check int) "standard path: 8 syscalls" 8 (count false);
  Alcotest.(check int) "combined path: 2 syscalls" 2 (count true)

let test_combined_syscall_same_detection () =
  let params = { Params.default with Params.combined_syscall = true } in
  let machine = Machine.create ~seed:4 () in
  let heap = Heap.create machine in
  let rt = Runtime.create ~params ~machine ~heap () in
  let tool = Runtime.tool rt in
  let p = tool.Tool.malloc ~size:16 ~ctx:(ctx 1) in
  ignore (Machine.load_word machine (p + 16));
  Alcotest.(check bool) "detection unchanged" true (Runtime.detected rt)

let suite =
  suite
  @ [ Alcotest.test_case "combined syscall: cost" `Quick test_combined_syscall_cost;
      Alcotest.test_case "combined syscall: detection" `Quick
        test_combined_syscall_same_detection ]

(* Property: under arbitrary install/free/replace sequences the watchpoint
   table never exceeds the four hardware slots and never leaks an event
   descriptor. *)
let prop_wt_invariants =
  QCheck.Test.make ~name:"watch table: <=4 slots, no fd leaks" ~count:100
    QCheck.(list (pair (int_range 0 2) (int_range 1 12)))
    (fun ops ->
      let wt, ct, machine = mk_wt () in
      List.iter
        (fun (op, k) ->
          match op with
          | 0 ->
            if Watch_table.has_free_slot wt then
              ignore
                (Watch_table.install wt ~obj_addr:(k * 0x100)
                   ~watch_addr:((k * 0x100) + 0x40) ~entry:(entry_for ct k))
          | 1 -> ignore (Watch_table.on_free wt ~obj_addr:(k * 0x100))
          | _ ->
            Machine.work machine (sec 11);
            ignore
              (Watch_table.try_replace wt ~obj_addr:(k * 0x100 + 8)
                 ~watch_addr:((k * 0x100) + 0x48) ~entry:(entry_for ct (k + 20))
                 ~new_prob:0.49))
        ops;
      let live = Watch_table.live wt in
      List.length live <= 4
      && Hw_breakpoint.live_fd_count (Machine.hw machine)
         = List.fold_left (fun acc wp -> acc + List.length wp.Watch_table.fds) 0 live
      && List.length (Hw_breakpoint.watched_addrs (Machine.hw machine))
         <= Hw_breakpoint.num_slots)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_wt_invariants ]
