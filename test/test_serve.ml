(* Tests for the service layer: rolling windows with exact merge
   semantics, the alert rule engine, durable checksummed history, and the
   serve loop's headline guarantees — history/alerts/status bit-identical
   across domain counts, offline replay equivalence, and checkpoint
   resume continuing the same deterministic stream. *)

(* A deterministic pseudo-observation stream: every field is a pure
   function of the index, with enough variety to exercise every merge
   rule (max, last, per-name counter sums). *)
let obs i : Serve_obs.t =
  let fault_names = [ "trap.dropped"; "runtime.degraded"; "persist.corrupt_lines" ] in
  { Serve_obs.epoch = i;
    arrivals = 10 + (i mod 7);
    arrived = (i + 1) * 12;
    detections = i mod 3;
    cumulative = i * 2;
    cdf = float_of_int (i mod 50) /. 50.0;
    store_contexts = i / 4;
    patched = (if i mod 11 = 0 then 1 else 0);
    degraded = i mod 2;
    worker_crashes = (if i mod 5 = 0 then 1 else 0);
    faults =
      List.filteri (fun j _ -> (i + j) mod 3 = 0) fault_names
      |> List.map (fun n -> (n, 1 + (i mod 4)));
    snapshots = i mod 6;
    cycles = 1000 + (i * 17);
    virtual_seconds = float_of_int i *. 0.5;
    cycle_skew = 1.0 +. (float_of_int (i mod 9) /. 3.0) }

(* The specification: a linear left fold over the covered epochs. *)
let linear_fold os =
  List.fold_left
    (fun acc o -> Window.merge acc (Window.of_obs o))
    Window.empty os

let agg = Alcotest.testable (fun ppf a ->
    Fmt.string ppf (Obs_json.to_string (Window.agg_to_json a)))
    ( = )

(* Aggregates compared across a serialization boundary: floats print at
   %.12g, so "equal" means "serialize to the same document" — exactly the
   bit-identical-files contract the service makes. *)
let agg_doc =
  Alcotest.testable
    (fun ppf a -> Fmt.string ppf (Obs_json.to_string (Window.agg_to_json a)))
    (fun a b ->
      Obs_json.to_string (Window.agg_to_json a)
      = Obs_json.to_string (Window.agg_to_json b))

let last_n n l =
  let len = List.length l in
  List.filteri (fun i _ -> i >= len - n) l

(* ---------- Window ---------- *)

let test_window_tree_equals_fold () =
  List.iter
    (fun size ->
      let w = Window.create ~size in
      let seen = ref [] in
      for i = 0 to 137 do
        let o = obs i in
        seen := o :: !seen;
        Window.push w o;
        let covered = last_n size (List.rev !seen) in
        Alcotest.check agg
          (Printf.sprintf "size %d at push %d" size i)
          (linear_fold covered) (Window.aggregate w)
      done)
    [ 1; 2; 3; 7; 10; 64; 100 ]

let test_window_merge_properties () =
  let a = linear_fold (List.init 5 obs) in
  Alcotest.check agg "empty is left identity" a (Window.merge Window.empty a);
  Alcotest.check agg "empty is right identity" a (Window.merge a Window.empty);
  (* Associativity over adjacent groupings: fold the same 12 epochs with
     every split point and compare. *)
  let os = List.init 12 (fun i -> Window.of_obs (obs i)) in
  let whole = List.fold_left Window.merge Window.empty os in
  for split = 0 to 12 do
    let left = List.filteri (fun i _ -> i < split) os in
    let right = List.filteri (fun i _ -> i >= split) os in
    Alcotest.check agg
      (Printf.sprintf "split at %d" split)
      whole
      (Window.merge
         (List.fold_left Window.merge Window.empty left)
         (List.fold_left Window.merge Window.empty right))
  done

let test_window_agg_json_roundtrip () =
  let a = linear_fold (List.init 23 obs) in
  (match Window.agg_of_json (Window.agg_to_json a) with
  | Some b -> Alcotest.check agg "agg round-trips" a b
  | None -> Alcotest.fail "agg_of_json failed");
  Alcotest.(check (option reject)) "garbage rejected" None
    (Option.map ignore (Window.agg_of_json (`Assoc [ ("epochs", `String "x") ])))

let test_window_set_roundtrip () =
  let s = Window.set [ 1; 10; 100; 10 ] in
  Alcotest.(check (list int)) "sizes deduped and sorted" [ 1; 10; 100 ]
    (Window.sizes s);
  for i = 0 to 57 do
    Window.push_set s (obs i)
  done;
  let json = Window.set_to_json s in
  match Window.set_of_json json with
  | None -> Alcotest.fail "set_of_json failed"
  | Some s' ->
    Alcotest.(check int) "rows restored" (Window.rows s) (Window.rows s');
    List.iter
      (fun w ->
        Alcotest.(check (option agg_doc))
          (Printf.sprintf "window %d aggregate restored" w)
          (Window.get s w) (Window.get s' w))
      (Window.sizes s);
    (* The restored set keeps aggregating identically as the stream
       continues — the checkpoint/resume property at the window level. *)
    for i = 58 to 80 do
      Window.push_set s (obs i);
      Window.push_set s' (obs i)
    done;
    List.iter
      (fun w ->
        Alcotest.(check (option agg_doc))
          (Printf.sprintf "window %d tracks after restore" w)
          (Window.get s w) (Window.get s' w))
      (Window.sizes s)

(* ---------- Alert ---------- *)

let specs_of rules = List.map Alert.to_spec rules

let test_alert_parse () =
  (match Alert.parse "stall@50,degraded>0.1@10" with
  | Ok rules ->
    Alcotest.(check (list string)) "parses and echoes"
      [ "stall@50"; "degraded>0.1@10" ] (specs_of rules)
  | Error m -> Alcotest.fail m);
  (match Alert.parse "stall, skew>3\n# a comment\ncdf<0.5@30\nfaults@5" with
  | Ok rules ->
    Alcotest.(check (list string)) "newlines, comments, defaults"
      [ "stall@50"; "skew>3@10"; "cdf<0.5@30"; "faults>1@5" ] (specs_of rules)
  | Error m -> Alcotest.fail m);
  Alcotest.(check (list string)) "defaults"
    [ "stall@50"; "degraded>0.1@10"; "skew>3@10" ] (specs_of Alert.defaults);
  List.iter
    (fun bad ->
      match Alert.parse bad with
      | Ok _ -> Alcotest.failf "%S should not parse" bad
      | Error _ -> ())
    [ "bogus"; "stall>3"; "cdf>0.5"; "degraded<0.1"; "skew>wat"; "stall@0";
      "skew>-1"; "degraded>0.1@x" ];
  (* Every canonical spec re-parses to itself. *)
  List.iter
    (fun spec ->
      match Alert.parse spec with
      | Ok [ r ] -> Alcotest.(check string) "round-trip" spec (Alert.to_spec r)
      | _ -> Alcotest.failf "%S did not parse to one rule" spec)
    [ "stall@50"; "degraded>0.25@10"; "skew>3@7"; "faults>0.5@20";
      "cdf<0.9@30" ]

(* Feed an engine a hand-built observation stream and collect the
   transitions. *)
let drive rules stream =
  let wins =
    Window.set (List.map (fun (r : Alert.rule) -> r.Alert.window) rules)
  in
  let eng = Alert.engine rules in
  List.concat_map
    (fun (o : Serve_obs.t) ->
      Window.push_set wins o;
      Alert.observe eng wins ~epoch:o.Serve_obs.epoch)
    stream

let flat i detections : Serve_obs.t =
  { Serve_obs.epoch = i; arrivals = 10; arrived = (i + 1) * 10; detections;
    cumulative = 0; cdf = 0.0; store_contexts = 0; patched = 0; degraded = 0;
    worker_crashes = 0; faults = []; snapshots = 0; cycles = 100;
    virtual_seconds = 0.0; cycle_skew = 1.0 }

let test_alert_fire_clear () =
  let rules = Result.get_ok (Alert.parse "stall@3") in
  (* detections: 1 1 0 0 0 0 1 0 0 0 — stall = 3 consecutive zero-detection
     epochs; not before the window is full. *)
  let stream =
    List.mapi (fun i d -> flat i d) [ 1; 1; 0; 0; 0; 0; 1; 0; 0; 0 ]
  in
  let events = drive rules stream in
  Alcotest.(check (list (pair bool int)))
    "fires at 4 (first all-zero window), clears at 6, refires at 9"
    [ (true, 4); (false, 6); (true, 9) ]
    (List.map (fun (e : Alert.event) -> (e.Alert.firing, e.Alert.epoch)) events);
  (match events with
  | first :: _ ->
    Alcotest.(check int) "event window covers 3 epochs" 3
      first.Alert.window.Window.epochs;
    Alcotest.(check int) "since = fire epoch" 4 first.Alert.since
  | [] -> Alcotest.fail "no events");
  (* A rule never fires while its window is filling, even on a stream that
     would satisfy it from epoch 0. *)
  let quiet = List.init 2 (fun i -> flat i 0) in
  Alcotest.(check int) "cold start: no eligibility before the window fills" 0
    (List.length (drive rules quiet))

let test_alert_states_roundtrip () =
  let rules = Result.get_ok (Alert.parse "stall@3,degraded>0.1@2") in
  let stream = List.init 8 (fun i -> flat i 0) in
  let wins =
    Window.set (List.map (fun (r : Alert.rule) -> r.Alert.window) rules)
  in
  let eng = Alert.engine rules in
  List.iter
    (fun (o : Serve_obs.t) ->
      Window.push_set wins o;
      ignore (Alert.observe eng wins ~epoch:o.Serve_obs.epoch))
    stream;
  let eng' = Alert.engine rules in
  Alcotest.(check bool) "restore accepts matching rules" true
    (Alert.restore_states eng' (Alert.states_to_json eng));
  Alcotest.(check (list (pair string int)))
    "firing state restored"
    (List.map (fun ((r : Alert.rule), s) -> (Alert.to_spec r, s))
       (Alert.firing eng))
    (List.map (fun ((r : Alert.rule), s) -> (Alert.to_spec r, s))
       (Alert.firing eng'));
  let other = Alert.engine (Result.get_ok (Alert.parse "skew>3@4")) in
  Alcotest.(check bool) "restore rejects a different rule set" false
    (Alert.restore_states other (Alert.states_to_json eng))

(* ---------- History ---------- *)

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let replace_once s ~sub ~by =
  match find_sub s sub with
  | None -> Alcotest.failf "substring %S not found" sub
  | Some i ->
    String.sub s 0 i ^ by
    ^ String.sub s (i + String.length sub)
        (String.length s - i - String.length sub)

let test_history_roundtrip_and_corruption () =
  let dir = temp_dir "csod_hist" in
  let w = History.writer ~rotate:3 dir in
  let bodies = List.init 8 (fun i -> Serve_obs.to_json (obs i)) in
  List.iteri
    (fun i b ->
      let kind = if i = 0 then History.Meta else History.Health in
      Alcotest.(check int) "monotonic seq" i (History.append w kind b))
    bodies;
  History.close w;
  Alcotest.(check int) "rotation: 8 lines / 3 per segment = 3 files" 3
    (List.length (History.segments dir));
  let records, errors = History.read dir in
  Alcotest.(check int) "all records back" 8 (List.length records);
  Alcotest.(check (list string)) "no errors" [] errors;
  List.iteri
    (fun i (r : History.record) ->
      Alcotest.(check int) "seq order" i r.History.seq;
      Alcotest.(check string) "body round-trips"
        (Obs_json.to_string (List.nth bodies i))
        (Obs_json.to_string r.History.body))
    records;
  (* Flip one byte inside a body: the checksum must catch it, the reader
     must skip the line and keep everything else. *)
  let seg = List.nth (History.segments dir) 1 in
  let content = In_channel.with_open_text seg In_channel.input_all in
  let corrupted =
    replace_once content ~sub:"\"arrivals\":1" ~by:"\"arrivals\":9"
  in
  Out_channel.with_open_text seg (fun oc -> output_string oc corrupted);
  let records', errors' = History.read dir in
  Alcotest.(check int) "corrupt line skipped" 7 (List.length records');
  Alcotest.(check int) "one error reported" 1 (List.length errors');
  Alcotest.(check bool) "error names the checksum" true
    (find_sub (List.hd errors') "checksum" <> None)

let test_history_resume_position () =
  let dir = temp_dir "csod_hist" in
  let w = History.writer ~rotate:4 dir in
  for i = 0 to 5 do
    ignore (History.append w History.Health (Serve_obs.to_json (obs i)))
  done;
  let seq = History.seq w
  and segment = History.segment w
  and lines = History.lines_in_segment w in
  (* A crashed session appends two more lines after the checkpoint... *)
  ignore (History.append w History.Health (Serve_obs.to_json (obs 6)));
  ignore (History.append w History.Health (Serve_obs.to_json (obs 7)));
  History.close w;
  (* ...and the resume truncates back and rewrites them identically. *)
  History.truncate dir ~segment ~lines;
  let w' = History.writer ~rotate:4 ~seq ~segment ~lines dir in
  for i = 6 to 7 do
    ignore (History.append w' History.Health (Serve_obs.to_json (obs i)))
  done;
  History.close w';
  let records, errors = History.read dir in
  Alcotest.(check (list string)) "no errors after resume" [] errors;
  Alcotest.(check (list int)) "contiguous seqs" [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (List.map (fun (r : History.record) -> r.History.seq) records)

(* ---------- Serve ---------- *)

(* Synthetic executor with evidence flow (detections ramp as the store
   fills), virtual-cycle variety (skew), and periodic degradation. *)
let serve_exec ~user ~store =
  let uid = user.Workload.uid in
  let key = (uid mod 5, 7) in
  let detected = uid mod 23 = 3 || Persist.mem store key in
  if uid mod 23 = 3 then Persist.add store key;
  { Fleet.payload = ();
    detected;
    source = None;
    cycles = (100 + (uid mod 7 * 40) + if uid mod 13 = 0 then 4000 else 0);
    telemetry = None;
    degraded = uid mod 11 = 0 }

let serve_workload users =
  Workload.make ~base_seed:5 ~burst:Workload.Wave ~wave_period:8 ~users ()

let serve_cfg ?(domains = 2) ?checkpoint_path ?(checkpoint_every = 0) ~dir ()
    =
  Serve.config ~domains ~epoch_size:16
    ~rules:
      (Result.get_ok (Alert.parse "stall@5,degraded>0.05@4,cdf<0.6@6,skew>3@4"))
    ~windows:[ 1; 4; 16 ] ~history_dir:dir ~rotate:7
    ~status_path:(Filename.concat dir "status.json")
    ?checkpoint_path ~checkpoint_every (serve_workload 300)

let run_serve cfg ~epochs =
  match Serve.start cfg ~execute:serve_exec with
  | Error m -> Alcotest.fail m
  | Ok t ->
    let events = ref [] in
    while Serve.epoch t < epochs do
      let o = Serve.step t in
      events := List.rev_append o.Serve.events !events
    done;
    let report = Serve.finish t in
    (t, List.rev !events, report)

let read_file f = In_channel.with_open_text f In_channel.input_all

let dir_contents dir =
  History.segments dir
  |> List.map (fun p -> (Filename.basename p, read_file p))

let strip_wall json =
  match json with
  | `Assoc kvs -> (`Assoc (List.remove_assoc "wall" kvs) : Obs_json.t)
  | j -> j

let test_serve_deterministic_across_domains () =
  let runs =
    List.map
      (fun domains ->
        let dir = temp_dir "csod_serve" in
        let t, events, _ = run_serve (serve_cfg ~domains ~dir ()) ~epochs:40 in
        let status = strip_wall (Serve.status_json t) in
        (domains, dir_contents dir, events, status))
      [ 1; 2; 4 ]
  in
  match runs with
  | (_, hist1, events1, status1) :: rest ->
    Alcotest.(check bool) "the run produced history" true (hist1 <> []);
    Alcotest.(check bool) "alerts actually fired" true (events1 <> []);
    List.iter
      (fun (domains, hist, events, status) ->
        Alcotest.(check (list (pair string string)))
          (Printf.sprintf "history bytes identical at %d domains" domains)
          hist1 hist;
        Alcotest.(check (list string))
          (Printf.sprintf "alert stream identical at %d domains" domains)
          (List.map (fun e -> Obs_json.to_string (Alert.event_to_json e)) events1)
          (List.map (fun e -> Obs_json.to_string (Alert.event_to_json e)) events);
        Alcotest.(check string)
          (Printf.sprintf "status minus wall identical at %d domains" domains)
          (Obs_json.to_string status1)
          (Obs_json.to_string status))
      rest
  | [] -> assert false

let test_serve_windows_match_history_fold () =
  let dir = temp_dir "csod_serve" in
  let t, _, _ = run_serve (serve_cfg ~dir ()) ~epochs:40 in
  let records, errors = History.read dir in
  Alcotest.(check (list string)) "clean history" [] errors;
  let os =
    List.filter_map
      (fun (r : History.record) ->
        if r.History.kind = History.Health then Serve_obs.of_json r.History.body
        else None)
      records
  in
  Alcotest.(check int) "one health record per epoch" 40 (List.length os);
  (* The live rolling windows equal a from-scratch fold over the durable
     history — the dashboard's numbers are exactly reconstructible. *)
  List.iter
    (fun w ->
      Alcotest.(check (option agg_doc))
        (Printf.sprintf "window %d = fold of last %d history records" w w)
        (Some (linear_fold (last_n w os)))
        (Window.get (Serve.windows t) w))
    [ 1; 4; 16 ]

let test_serve_replay_equivalence () =
  let dir = temp_dir "csod_serve" in
  let t, events, _ = run_serve (serve_cfg ~dir ()) ~epochs:40 in
  match Serve.replay dir with
  | Error m -> Alcotest.fail m
  | Ok r ->
    Alcotest.(check (list string)) "no corrupt lines" [] r.Serve.read_errors;
    Alcotest.(check (list string)) "no mismatches" [] r.Serve.mismatches;
    Alcotest.(check int) "all health records replayed" 40
      (List.length r.Serve.observations);
    Alcotest.(check (list string))
      "recomputed alerts equal the live transitions"
      (List.map (fun e -> Obs_json.to_string (Alert.event_to_json e)) events)
      (List.map Obs_json.to_string r.Serve.recomputed);
    (* The offline status equals the live one on every deterministic
       field (the live one additionally carries "wall"). *)
    Alcotest.(check string) "replayed status = live status minus wall"
      (Obs_json.to_string (strip_wall (Serve.status_json t)))
      (Obs_json.to_string r.Serve.status)

let test_serve_checkpoint_resume () =
  (* Reference: one uninterrupted 40-epoch service. *)
  let ref_dir = temp_dir "csod_serve" in
  let ref_t, ref_events, _ = run_serve (serve_cfg ~dir:ref_dir ()) ~epochs:40 in
  (* Interrupted: 22 epochs, checkpoint on exit, then a second service
     resumes from the file and serves the rest. *)
  let dir = temp_dir "csod_serve" in
  let ckpt = Filename.concat dir "ckpt.json" in
  let cfg = serve_cfg ~dir ~checkpoint_path:ckpt () in
  let _, events_a, _ = run_serve cfg ~epochs:22 in
  Alcotest.(check bool) "checkpoint published" true (Sys.file_exists ckpt);
  let t, events_b, _ = run_serve cfg ~epochs:40 in
  Alcotest.(check int) "resumed service continued at epoch 22+" 40
    (Serve.epoch t);
  Alcotest.(check (list (pair string string)))
    "history bytes identical to the uninterrupted run"
    (dir_contents ref_dir) (dir_contents dir);
  Alcotest.(check (list string)) "alert transitions identical"
    (List.map (fun e -> Obs_json.to_string (Alert.event_to_json e)) ref_events)
    (List.map
       (fun e -> Obs_json.to_string (Alert.event_to_json e))
       (events_a @ events_b));
  Alcotest.(check string) "final status identical minus wall"
    (Obs_json.to_string (strip_wall (Serve.status_json ref_t)))
    (Obs_json.to_string (strip_wall (Serve.status_json t)))

let test_serve_population_drain () =
  (* A tiny population drains quickly; the service keeps stepping an idle
     fleet (0 arrivals) without dividing by zero or firing spurious
     degradation alerts, and the stall rule eventually fires. *)
  let dir = temp_dir "csod_serve" in
  let cfg =
    Serve.config ~domains:2 ~epoch_size:16
      ~rules:(Result.get_ok (Alert.parse "stall@4"))
      ~windows:[ 1; 4 ] ~history_dir:dir (serve_workload 30)
  in
  let t, events, _ = run_serve cfg ~epochs:12 in
  Alcotest.(check int) "population fully admitted" 30 (Serve.arrived t);
  (match Serve.last t with
  | Some o ->
    Alcotest.(check int) "idle epochs admit nobody" 0 o.Serve_obs.arrivals;
    Alcotest.(check bool) "virtual clock still advances monotonically" true
      (o.Serve_obs.virtual_seconds >= 0.0)
  | None -> Alcotest.fail "no observation");
  Alcotest.(check bool) "stall fired once the fleet went quiet" true
    (List.exists (fun (e : Alert.event) -> e.Alert.firing) events)

let suite =
  [ Alcotest.test_case "window: tree-reduce = from-scratch fold" `Quick
      test_window_tree_equals_fold;
    Alcotest.test_case "window: merge identity and associativity" `Quick
      test_window_merge_properties;
    Alcotest.test_case "window: agg JSON round-trip" `Quick
      test_window_agg_json_roundtrip;
    Alcotest.test_case "window: set checkpoint round-trip" `Quick
      test_window_set_roundtrip;
    Alcotest.test_case "alert: spec grammar" `Quick test_alert_parse;
    Alcotest.test_case "alert: fire/clear transitions" `Quick
      test_alert_fire_clear;
    Alcotest.test_case "alert: state checkpoint round-trip" `Quick
      test_alert_states_roundtrip;
    Alcotest.test_case "history: round-trip, rotation, corruption" `Quick
      test_history_roundtrip_and_corruption;
    Alcotest.test_case "history: resume position and truncation" `Quick
      test_history_resume_position;
    Alcotest.test_case "serve: bit-identical across domains" `Slow
      test_serve_deterministic_across_domains;
    Alcotest.test_case "serve: windows = fold of durable history" `Quick
      test_serve_windows_match_history_fold;
    Alcotest.test_case "serve: offline replay equivalence" `Quick
      test_serve_replay_equivalence;
    Alcotest.test_case "serve: checkpoint resume, same stream" `Slow
      test_serve_checkpoint_resume;
    Alcotest.test_case "serve: population drain and idle epochs" `Quick
      test_serve_population_drain ]
