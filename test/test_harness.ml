(* Tests for the experiment harness: configs, executions, the oracle,
   evidence/fleet flows, perf driver, and ablation variants. *)

let gzip () = Option.get (Buggy_app.by_name "Gzip")
let memcached () = Option.get (Buggy_app.by_name "Memcached")

(* ---------- Config ---------- *)

let test_config_labels () =
  Alcotest.(check string) "baseline" "baseline" (Config.label Config.Baseline);
  Alcotest.(check string) "csod" "CSOD (near-FIFO)" (Config.label Config.csod_default);
  Alcotest.(check string) "csod w/o evidence" "CSOD w/o evidence (near-FIFO)"
    (Config.label Config.csod_no_evidence);
  Alcotest.(check string) "asan min" "ASan w/ minimal redzones"
    (Config.label Config.asan_min_redzone);
  Alcotest.(check string) "asan" "ASan" (Config.label Config.asan_default)

let test_config_instantiate () =
  let machine = Machine.create () in
  let heap = Heap.create machine in
  let b = Config.instantiate Config.Baseline ~machine ~heap () in
  Alcotest.(check bool) "baseline has no csod" true (b.Config.csod = None);
  Alcotest.(check int) "baseline free of startup cost" 0 b.Config.startup_cycles;
  let machine2 = Machine.create () in
  let heap2 = Heap.create machine2 in
  let c = Config.instantiate Config.csod_default ~machine:machine2 ~heap:heap2 () in
  Alcotest.(check bool) "csod instance" true (Option.is_some c.Config.csod);
  Alcotest.(check bool) "csod startup cost" true (c.Config.startup_cycles > 0)

(* ---------- Execution ---------- *)

let test_execution_detects () =
  let o = Execution.run ~app:(gzip ()) ~config:Config.csod_default ~seed:1 () in
  Alcotest.(check bool) "gzip detected" true o.Execution.detected;
  Alcotest.(check bool) "watchpoint report present" true
    (o.Execution.watchpoint_reports <> []);
  Alcotest.(check bool) "cycles advanced" true (o.Execution.cycles > 0);
  Alcotest.(check (option string)) "no crash" None o.Execution.crashed;
  match o.Execution.stats with
  | Some s -> Alcotest.(check int) "one context" 1 s.Runtime.contexts
  | None -> Alcotest.fail "csod stats expected"

let test_execution_baseline_silent () =
  let o = Execution.run ~app:(gzip ()) ~config:Config.Baseline ~seed:1 () in
  Alcotest.(check bool) "baseline sees nothing" false o.Execution.detected;
  Alcotest.(check bool) "no stats" true (o.Execution.stats = None)

let test_run_until_detected () =
  match
    Execution.run_until_detected ~app:(memcached ()) ~config:Config.csod_default
      ~max_runs:100
  with
  | Some (n, o) ->
    Alcotest.(check bool) "positive run index" true (n >= 1 && n <= 100);
    Alcotest.(check bool) "detected" true o.Execution.detected
  | None -> Alcotest.fail "memcached not detected within 100 runs"

(* ---------- Oracle ---------- *)

let test_oracle_tripwires () =
  let machine = Machine.create () in
  let heap = Heap.create machine in
  let o = Oracle.create machine heap in
  let tool = Oracle.tool o in
  let ctx = Alloc_ctx.synthetic ~callsite:9 () in
  let p = tool.Tool.malloc ~size:24 ~ctx in
  tool.Tool.on_access ~addr:p ~len:8 ~kind:Tool.Read ~site:1;
  Alcotest.(check bool) "in-bounds silent" true (Oracle.first_overflow o = None);
  tool.Tool.on_access ~addr:(p + 24) ~len:8 ~kind:Tool.Write ~site:77;
  (match Oracle.first_overflow o with
  | Some ov ->
    Alcotest.(check int) "object" p ov.Oracle.object_addr;
    Alcotest.(check int) "site" 77 ov.Oracle.access_site;
    Alcotest.(check int) "alloc index" 1 ov.Oracle.alloc_index;
    Alcotest.(check bool) "write kind" true (ov.Oracle.kind = Tool.Write)
  | None -> Alcotest.fail "tripwire missed");
  (* only the first overflow is recorded *)
  tool.Tool.on_access ~addr:(p + 25) ~len:8 ~kind:Tool.Read ~site:78;
  Alcotest.(check int) "first hit kept" 77
    (Option.get (Oracle.first_overflow o)).Oracle.access_site

let test_oracle_neighbour_no_false_positive () =
  let machine = Machine.create () in
  let heap = Heap.create machine in
  let o = Oracle.create machine heap in
  let tool = Oracle.tool o in
  let ctx = Alloc_ctx.synthetic ~callsite:9 () in
  (* two adjacent objects in the same size class *)
  let a = tool.Tool.malloc ~size:32 ~ctx in
  let b = tool.Tool.malloc ~size:32 ~ctx in
  (* touching object b's own bytes must not trip a's zone *)
  tool.Tool.on_access ~addr:b ~len:8 ~kind:Tool.Write ~site:1;
  tool.Tool.on_access ~addr:(b + 24) ~len:8 ~kind:Tool.Read ~site:1;
  Alcotest.(check bool) "no false positive on neighbour" true
    (Oracle.first_overflow o = None);
  ignore a

(* ---------- Evidence + fleet ---------- *)

let test_evidence_second_execution () =
  let rows = Evidence.second_execution () in
  Alcotest.(check int) "six over-write apps" 6 (List.length rows);
  List.iter
    (fun (r : Evidence.row) ->
      Alcotest.(check bool)
        (r.Evidence.app ^ ": canary evidence on run 1") true
        (r.Evidence.first_run_evidence || r.Evidence.first_run_watchpoint);
      Alcotest.(check bool)
        (r.Evidence.app ^ ": watchpoint detection by run 2") true
        r.Evidence.second_run_watchpoint)
    rows

let test_fleet_gzip_first_user () =
  match Evidence.fleet ~app:(gzip ()) ~users:5 () with
  | Some (1, _) -> ()
  | Some (n, _) -> Alcotest.fail (Printf.sprintf "gzip should be caught by user 1, got %d" n)
  | None -> Alcotest.fail "gzip undetected"

(* ---------- Effectiveness (tiny run counts) ---------- *)

let test_effectiveness_gzip_full_rate () =
  let n = Effectiveness.run_app ~app:(gzip ()) ~policy:Params.Near_fifo ~runs:10 () in
  Alcotest.(check int) "gzip 10/10" 10 n

let test_effectiveness_average () =
  let rows =
    [ { Effectiveness.app_name = "A"; naive = 10; random = 5; near_fifo = 0; runs = 10 };
      { Effectiveness.app_name = "B"; naive = 0; random = 5; near_fifo = 10; runs = 10 } ]
  in
  let n, r, f = Effectiveness.average_rate rows in
  Alcotest.check (Alcotest.float 1e-9) "naive avg" 0.5 n;
  Alcotest.check (Alcotest.float 1e-9) "random avg" 0.5 r;
  Alcotest.check (Alcotest.float 1e-9) "near-FIFO avg" 0.5 f

(* ---------- Characteristics ---------- *)

let test_table1_static () =
  let rows = Characteristics.table1 () in
  Alcotest.(check int) "nine rows" 9 (List.length rows);
  let hb =
    List.find (fun (r : Characteristics.table1_row) -> r.Characteristics.app = "Heartbleed") rows
  in
  Alcotest.(check string) "class" "Over-read" hb.Characteristics.vulnerability;
  Alcotest.(check string) "reference" "CVE-2014-0160" hb.Characteristics.reference

(* ---------- Perf driver ---------- *)

let small_profile =
  { Perf_profile.name = "TestApp"; loc = 100; contexts = 12; allocations = 5_000;
    threads = 2; runtime_sec = 2.0; access_rate = 1e8; avg_obj_bytes = 64;
    baseline_kb = 50; hot_contexts = 3; description = "synthetic test profile" }

let test_perf_driver_baseline_vs_tools () =
  let base = Perf_driver.run ~profile:small_profile ~config:Config.Baseline () in
  let csod = Perf_driver.run ~profile:small_profile ~config:Config.csod_default () in
  let asan = Perf_driver.run ~profile:small_profile ~config:Config.asan_min_redzone () in
  Alcotest.(check int) "no subsampling needed" 1 base.Perf_driver.scale;
  Alcotest.(check int) "all allocations simulated" 5_000 base.Perf_driver.sim_allocations;
  Alcotest.(check bool) "csod costs more than baseline" true
    (Perf_driver.overhead ~baseline:base csod > 1.0);
  Alcotest.(check bool) "asan costs more than csod here" true
    (asan.Perf_driver.cycles > csod.Perf_driver.cycles);
  Alcotest.(check bool) "workloads are bug-free" true
    ((not base.Perf_driver.detected) && (not csod.Perf_driver.detected)
    && not asan.Perf_driver.detected);
  Alcotest.(check bool) "csod observed the context census" true
    (csod.Perf_driver.contexts_seen >= small_profile.Perf_profile.contexts - 1);
  Alcotest.(check bool) "csod watched a bounded number of times" true
    (csod.Perf_driver.watched_times < 500);
  Alcotest.(check bool) "memory: csod above baseline" true
    (csod.Perf_driver.resident_kb >= base.Perf_driver.resident_kb)

let test_perf_driver_subsampling () =
  let big = { small_profile with Perf_profile.allocations = 5_000_000 } in
  let r = Perf_driver.run ~profile:big ~config:Config.Baseline () in
  Alcotest.(check int) "scale 1/3" 3 r.Perf_driver.scale;
  Alcotest.(check bool) "simulated under the cap" true
    (r.Perf_driver.sim_allocations <= Perf_driver.max_sim_allocations)

(* ---------- Ablation ---------- *)

let test_ablation_variants_sane () =
  let vs = Ablation.variants () in
  Alcotest.(check bool) "at least 8 variants" true (List.length vs >= 8);
  Alcotest.(check string) "paper config first" "paper" (List.hd vs).Ablation.name;
  List.iter
    (fun (v : Ablation.variant) ->
      Alcotest.(check bool) (v.Ablation.name ^ " evidence off") false
        v.Ablation.params.Params.evidence)
    vs

let test_ablation_tiny_run () =
  let rows = Ablation.run ~runs:2 () in
  Alcotest.(check int) "rows per variant" (List.length (Ablation.variants ()))
    (List.length rows);
  List.iter
    (fun (r : Ablation.row) ->
      let gz = List.assoc "Gzip" r.Ablation.detections in
      (* availability at startup watches gzip's only object regardless of
         variant parameters *)
      Alcotest.(check int) (r.Ablation.variant ^ ": gzip always caught") 2 gz)
    rows

let suite =
  [ Alcotest.test_case "config labels" `Quick test_config_labels;
    Alcotest.test_case "config instantiation" `Quick test_config_instantiate;
    Alcotest.test_case "execution detects" `Quick test_execution_detects;
    Alcotest.test_case "baseline silent" `Quick test_execution_baseline_silent;
    Alcotest.test_case "run_until_detected" `Quick test_run_until_detected;
    Alcotest.test_case "oracle tripwires" `Quick test_oracle_tripwires;
    Alcotest.test_case "oracle neighbour safety" `Quick
      test_oracle_neighbour_no_false_positive;
    Alcotest.test_case "evidence: second execution" `Slow test_evidence_second_execution;
    Alcotest.test_case "fleet: gzip user 1" `Quick test_fleet_gzip_first_user;
    Alcotest.test_case "effectiveness: gzip rate" `Quick test_effectiveness_gzip_full_rate;
    Alcotest.test_case "effectiveness: averaging" `Quick test_effectiveness_average;
    Alcotest.test_case "table1 static data" `Quick test_table1_static;
    Alcotest.test_case "perf driver: tools vs baseline" `Quick
      test_perf_driver_baseline_vs_tools;
    Alcotest.test_case "perf driver: subsampling" `Slow test_perf_driver_subsampling;
    Alcotest.test_case "ablation variants" `Quick test_ablation_variants_sane;
    Alcotest.test_case "ablation tiny run" `Slow test_ablation_tiny_run ]

(* Erroneous exits: CSOD registers handlers to run its termination checks
   even when the program crashes (paper, Section IV-B).  Model: a program
   that corrupts a canary and then double-frees. *)
let test_crash_still_checked () =
  let app =
    { App_def.name = "CrashDemo";
      vuln = Report.Over_write;
      reference = "synthetic";
      units =
        [ { Program.file = "crash.c"; module_name = "crash";
            source =
              "fn main() {\n\
               var a = malloc(16);\n\
               var b = malloc(16);\n\
               var c = malloc(16);\n\
               var d = malloc(16);\n\
               var p = malloc(24);\n\
               store8(p, 24, 65);      // corrupt the canary, unwatched object\n\
               free(a);\n\
               free(a);                // double free: the crash\n\
               free(p);\n\
               return 0;\n\
               }" } ];
      buggy_inputs = [||];
      benign_inputs = [||];
      instrumented_modules = [ "crash" ];
      bug_in_library = false;
      expected_naive_detectable = true }
  in
  (* seed chosen so the fifth object is not watched; the watchpoint write
     at offset 24 would otherwise catch it before the crash *)
  let o = Execution.run ~app ~config:Config.csod_default ~seed:2 () in
  Alcotest.(check bool) "the crash is reported" true (o.Execution.crashed <> None);
  Alcotest.(check bool) "termination handling still found the corruption" true
    (List.exists
       (fun r ->
         r.Report.source = Report.Canary_exit || r.Report.source = Report.Canary_free
         || r.Report.source = Report.Watchpoint)
       o.Execution.reports)

(* ---------- Post-mortem diagnosis ---------- *)

let contains s needle =
  let nl = String.length needle in
  let rec go i =
    i + nl <= String.length s && (String.sub s i nl = needle || go (i + 1))
  in
  go 0

(* Acceptance check: explaining Heartbleed names the overflowing
   allocation context and walks its probability timeline, whether this
   seed detected the bug or missed it. *)
let test_postmortem_heartbleed () =
  let app = Option.get (Buggy_app.by_name "Heartbleed") in
  let a =
    Postmortem.analyze ~app ~config:Config.csod_default ~seed:3 ()
  in
  (match a.Postmortem.oracle with
  | None -> Alcotest.fail "oracle must observe the Heartbleed overflow"
  | Some ov ->
    Alcotest.(check bool) "oracle indexed the allocation" true
      (ov.Oracle.alloc_index > 0));
  Alcotest.(check bool) "target correlated by alloc index" true
    (a.Postmortem.target_addr <> None);
  let rendered =
    Postmortem.render ~symbolize:(Execution.symbolizer app) a
  in
  (* The paper's Heartbleed victim is allocated in crypto_malloc. *)
  Alcotest.(check bool) "names the overflowing allocation context" true
    (contains rendered "crypto_malloc");
  Alcotest.(check bool) "shows the probability timeline" true
    (contains rendered "probability timeline");
  Alcotest.(check bool) "shows a decay transition" true
    (contains rendered "decay");
  match a.Postmortem.verdict with
  | Postmortem.Detected _ ->
    Alcotest.(check bool) "a detection report exists" true
      (a.Postmortem.outcome.Execution.reports <> [])
  | v ->
    (* A miss must still be diagnosed with a concrete mechanism. *)
    Alcotest.(check bool) "miss has a mechanical verdict" true
      (List.mem (Postmortem.verdict_label v)
         [ "coin-failed"; "outbid"; "watch-evicted"; "removed-on-free";
           "watched-no-trap" ])

(* The verdict agrees with the outcome, across several seeds: Detected
   exactly when the execution produced reports. *)
let test_postmortem_verdict_consistent () =
  let app = Option.get (Buggy_app.by_name "Heartbleed") in
  List.iter
    (fun seed ->
      let a =
        Postmortem.analyze ~app ~config:Config.csod_no_evidence ~seed ()
      in
      let detected =
        match a.Postmortem.verdict with Postmortem.Detected _ -> true | _ -> false
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d verdict matches outcome" seed)
        a.Postmortem.outcome.Execution.detected detected)
    [ 1; 5; 7 ]

let test_miss_attribution_tally () =
  let app = Option.get (Buggy_app.by_name "Heartbleed") in
  let tally =
    Effectiveness.miss_attribution ~app ~config:Config.csod_no_evidence
      ~runs:6 ()
  in
  Alcotest.(check int) "tally covers every run" 6
    (List.fold_left (fun acc (_, n) -> acc + n) 0 tally);
  List.iter
    (fun (label, n) ->
      Alcotest.(check bool) (label ^ " positive") true (n > 0))
    tally

let suite =
  suite
  @ [ Alcotest.test_case "crashing program still checked at exit" `Quick
        test_crash_still_checked;
      Alcotest.test_case "postmortem: heartbleed explained" `Quick
        test_postmortem_heartbleed;
      Alcotest.test_case "postmortem: verdict matches outcome" `Quick
        test_postmortem_verdict_consistent;
      Alcotest.test_case "miss attribution tally" `Quick
        test_miss_attribution_tally ]
