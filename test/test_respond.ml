(* Tests for the active-response layer: failure-oblivious execution and
   code-less patching.

   The headline guarantees under test:
   - observational purity when off: --respond off is bit-identical to a
     run with no response layer at all (outcome, cycles, reports, machine
     counters, PRNG stream position);
   - deterministic survival: the same seed redirects the same accesses
     and reaches the same verdict, and the fleet report stays
     bit-identical at any domain count, with or without fault injection;
   - honest accounting: a corruption the watchpoint missed (dropped trap)
     is caught by the canary and recorded as an escape, so it can never
     be claimed as a survival;
   - code-less patching: once fleet evidence convicts a context, its
     allocations carry guard slack and the overflow stops producing
     reports entirely. *)

let digest s = Digest.to_hex (Digest.string s)

let app_of name = Option.get (Buggy_app.by_name name)

(* ---- mode parsing ---- *)

let test_mode_parsing () =
  let ok s m =
    match Respond.mode_of_string s with
    | Ok m' -> Alcotest.(check bool) (s ^ " parses") true (m = m')
    | Error e -> Alcotest.fail (s ^ ": " ^ e)
  in
  ok "off" Respond.Off;
  ok "oblivious" Respond.Oblivious;
  ok "patch" (Respond.Patch Respond.default_patch_threshold);
  ok "patch=1" (Respond.Patch 1);
  ok "patch=7" (Respond.Patch 7);
  List.iter
    (fun s ->
      match Respond.mode_of_string s with
      | Ok _ -> Alcotest.fail (s ^ " should be rejected")
      | Error _ -> ())
    [ "patch=0"; "patch=-1"; "patch="; "patch=x"; "obliv"; "" ];
  (* Round-trip through the canonical rendering. *)
  List.iter
    (fun m ->
      match Respond.mode_of_string (Respond.mode_to_string m) with
      | Ok m' -> Alcotest.(check bool) "round-trip" true (m = m')
      | Error e -> Alcotest.fail e)
    [ Respond.Off; Respond.Oblivious; Respond.Patch 5 ]

(* ---- off-mode purity ---- *)

(* Run one app manually so the machine stays accessible, with the
   response layer either absent (the pre-respond configuration) or
   explicitly [Off], and collect every observable including where the
   root PRNG stream ended up. *)
let run_manual ~respond (app : Buggy_app.t) ~seed =
  let program = Buggy_app.program app in
  let machine = Machine.create ~seed () in
  let heap = Heap.create machine in
  let inst =
    match respond with
    | None -> Config.instantiate Config.csod_default ~machine ~heap ~seed ()
    | Some mode ->
      Config.instantiate Config.csod_default ~machine ~heap ~respond:mode
        ~seed ()
  in
  let r =
    Interp.run ~machine ~tool:inst.Config.tool ~program
      ~inputs:app.Buggy_app.buggy_inputs ~app_seed:seed ()
  in
  inst.Config.finish ();
  let reports =
    match inst.Config.csod with
    | Some rt -> Runtime.detections rt
    | None -> []
  in
  ( inst.Config.detected (),
    Clock.cycles (Machine.clock machine),
    List.map (Report.format ~symbolize:(Execution.symbolizer app)) reports,
    Machine.access_count machine,
    Machine.trap_count machine,
    r.Interp.output,
    Prng.bits64 (Machine.rng machine) )

let test_off_mode_pure () =
  List.iter
    (fun name ->
      let app = app_of name in
      List.iter
        (fun seed ->
          let plain = run_manual ~respond:None app ~seed in
          let off = run_manual ~respond:(Some Respond.Off) app ~seed in
          let d1, c1, r1, a1, t1, o1, p1 = plain in
          let d2, c2, r2, a2, t2, o2, p2 = off in
          let tag fmt = Printf.sprintf "%s seed=%d: %s" name seed fmt in
          Alcotest.(check bool) (tag "detected") d1 d2;
          Alcotest.(check int) (tag "cycles") c1 c2;
          Alcotest.(check (list string)) (tag "reports") r1 r2;
          Alcotest.(check int) (tag "accesses") a1 a2;
          Alcotest.(check int) (tag "traps") t1 t2;
          Alcotest.(check string) (tag "output") o1 o2;
          Alcotest.(check int64) (tag "prng position") p1 p2)
        [ 1; 2 ])
    [ "Heartbleed"; "LibHX"; "Zziplib" ]

(* The outcome record agrees: --respond off never claims a survival and
   carries no summary. *)
let test_off_mode_no_claim () =
  let app = app_of "Heartbleed" in
  let o = Execution.run ~app ~config:Config.csod_default ~seed:1 () in
  Alcotest.(check bool) "no respond summary" true (o.Execution.respond = None);
  Alcotest.(check bool) "no survival claim" false o.Execution.survived

(* ---- oblivious mode ---- *)

let oblivious_run ?faults ~seed name =
  Execution.run ~app:(app_of name) ~config:Config.csod_default ~seed
    ~respond:Respond.Oblivious ?faults ()

let summary_of (o : Execution.outcome) = Option.get o.Execution.respond

let test_oblivious_redirects_and_survives () =
  (* Heartbleed's over-read traps repeatedly; every trapped access must be
     redirected and the run must complete without a crash. *)
  let o = oblivious_run ~seed:1 "Heartbleed" in
  let s = summary_of o in
  Alcotest.(check bool) "still detected" true o.Execution.detected;
  Alcotest.(check bool) "ran to completion" true (o.Execution.crashed = None);
  Alcotest.(check bool) "reads were redirected" true
    (s.Respond.redirected_reads > 0);
  Alcotest.(check int) "no escapes" 0 s.Respond.escapes;
  Alcotest.(check bool) "survived" true o.Execution.survived;
  (* Detection reporting is once per object: redirect counts exceed
     report counts when the same access loops. *)
  Alcotest.(check bool) "one report despite many redirects" true
    (List.length o.Execution.reports <= s.Respond.redirected_reads)

let test_oblivious_deterministic () =
  List.iter
    (fun name ->
      List.iter
        (fun seed ->
          let a = oblivious_run ~seed name and b = oblivious_run ~seed name in
          let tag fmt = Printf.sprintf "%s seed=%d: %s" name seed fmt in
          Alcotest.(check bool) (tag "detected") a.Execution.detected
            b.Execution.detected;
          Alcotest.(check int) (tag "cycles") a.Execution.cycles
            b.Execution.cycles;
          Alcotest.(check bool) (tag "survived") a.Execution.survived
            b.Execution.survived;
          Alcotest.(check string) (tag "output") a.Execution.output
            b.Execution.output;
          let sa = summary_of a and sb = summary_of b in
          Alcotest.(check int) (tag "reads") sa.Respond.redirected_reads
            sb.Respond.redirected_reads;
          Alcotest.(check int) (tag "writes") sa.Respond.redirected_writes
            sb.Respond.redirected_writes;
          Alcotest.(check int) (tag "escapes") sa.Respond.escapes
            sb.Respond.escapes)
        [ 1; 2; 3 ])
    [ "Heartbleed"; "LibHX"; "Gzip" ]

let test_oblivious_write_squash_protects_neighbors () =
  (* A write-overflow app that survives: the squash restored the
     neighbor's bytes, so the program output is the same as an untouched
     run except for the detection side effects — at minimum, no crash and
     no escape. *)
  let o = oblivious_run ~seed:1 "Polymorph" in
  let s = summary_of o in
  Alcotest.(check bool) "completed" true (o.Execution.crashed = None);
  Alcotest.(check bool) "writes redirected" true
    (s.Respond.redirected_writes > 0);
  Alcotest.(check int) "no escape past the canary" 0 s.Respond.escapes;
  Alcotest.(check bool) "survived" true o.Execution.survived

let test_canary_escape_blocks_survival () =
  (* LibHX at seed 3: the watchpoint misses the overflowing access and
     the canary catches the corruption at free — adjacent memory was
     already overwritten, so the run must NOT count as survived. *)
  let o = oblivious_run ~seed:3 "LibHX" in
  let s = summary_of o in
  Alcotest.(check bool) "detected (canary)" true o.Execution.detected;
  Alcotest.(check bool) "escape recorded" true (s.Respond.escapes > 0);
  Alcotest.(check bool) "not survived" false o.Execution.survived

let test_dropped_trap_cannot_fake_survival () =
  (* Fault injection drops every trap: the redirect never happens, the
     write corrupts the neighbor, and the canary converts that into an
     escape.  Survival claims must stay honest under faults. *)
  let plan =
    match Fault_plan.of_string "seed=5,trap-drop=1.0" with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  List.iter
    (fun seed ->
      let o = oblivious_run ~faults:plan ~seed "Gzip" in
      let s = summary_of o in
      Alcotest.(check int) "nothing redirected" 0
        (s.Respond.redirected_reads + s.Respond.redirected_writes);
      Alcotest.(check bool) "canary caught the corruption" true
        (s.Respond.escapes > 0);
      Alcotest.(check bool) "not survived" false o.Execution.survived)
    [ 1; 2 ]

(* ---- fleet determinism ---- *)

(* The deterministic projection of a fleet report: everything except
   wall-clock facts and the domain count itself. *)
let fleet_projection (r : Execution.outcome Fleet.report) =
  let seat (s : Execution.outcome Fleet.seat) =
    let o = s.Fleet.exec.Fleet.payload in
    let resp =
      match o.Execution.respond with
      | None -> "-"
      | Some s ->
        Printf.sprintf "%d/%d/%d/%d" s.Respond.redirected_reads
          s.Respond.redirected_writes s.Respond.escapes
          s.Respond.patched_allocs
    in
    Printf.sprintf "%d:%d:%b:%d:%b:%s" s.Fleet.user.Workload.uid s.Fleet.epoch
      o.Execution.detected o.Execution.cycles o.Execution.survived resp
  in
  let health (h : Health.sample) =
    Printf.sprintf "%d:%d:%d:%d:%d:%d" h.Health.epoch h.Health.arrivals
      h.Health.detections h.Health.cumulative h.Health.store_contexts
      h.Health.patched
  in
  String.concat "\n"
    (List.map seat (Array.to_list r.Fleet.seats)
    @ List.map health r.Fleet.health
    @ [ String.concat ";"
          (List.map
             (fun k ->
               Printf.sprintf "%d,%d=%d" (fst k) (snd k)
                 (Persist.hits r.Fleet.store k))
             (Persist.keys r.Fleet.store));
        string_of_int r.Fleet.detections ])

let fleet_run ~domains ~respond ?faults ?patch_threshold name =
  let workload = Workload.make ~users:96 ~base_seed:1 () in
  let cfg =
    Fleet.config ~domains ~epoch_size:32 ?faults ?patch_threshold workload
  in
  Fleet.run cfg
    ~execute:
      (Execution.executor ~app:(app_of name) ~config:Config.csod_default
         ~respond ?faults ())

let test_fleet_domains_invariance () =
  List.iter
    (fun (respond, patch_threshold) ->
      let base =
        fleet_projection
          (fleet_run ~domains:1 ~respond ?patch_threshold "Zziplib")
      in
      List.iter
        (fun domains ->
          let p =
            fleet_projection
              (fleet_run ~domains ~respond ?patch_threshold "Zziplib")
          in
          Alcotest.(check string)
            (Printf.sprintf "%s at %d domains"
               (Respond.mode_to_string respond)
               domains)
            (digest base) (digest p))
        [ 2; 4 ])
    [ (Respond.Oblivious, None); (Respond.Patch 3, Some 3) ]

let test_fleet_faulted_domains_invariance () =
  let plan =
    match Fault_plan.of_string "seed=9,trap-drop=0.2,ebusy=0.1" with
    | Ok p -> p
    | Error m -> Alcotest.fail m
  in
  let base =
    fleet_projection (fleet_run ~domains:1 ~respond:Respond.Oblivious
                        ~faults:plan "Gzip")
  in
  List.iter
    (fun domains ->
      let p =
        fleet_projection (fleet_run ~domains ~respond:Respond.Oblivious
                            ~faults:plan "Gzip")
      in
      Alcotest.(check string)
        (Printf.sprintf "faulted oblivious at %d domains" domains)
        (digest base) (digest p))
    [ 2; 4 ]

(* ---- code-less patching ---- *)

(* Fleet evidence convicts Zziplib's context; from then on a primed store
   makes the single-execution runtime over-allocate that context's
   allocations, and the overflow lands in owned slack: zero reports. *)
let test_patch_convicts_and_silences () =
  let report = fleet_run ~domains:2 ~respond:Respond.Off "Zziplib" in
  let key =
    match Persist.keys report.Fleet.store with
    | [ k ] -> k
    | ks ->
      Alcotest.failf "expected exactly one convicted context, got %d"
        (List.length ks)
  in
  Alcotest.(check bool) "fleet accumulated evidence" true
    (Persist.hits report.Fleet.store key >= 3);
  (* A primed store pins the context at probability 1, so without the
     patch policy every execution detects. *)
  let primed () =
    let s = Persist.create () in
    for _ = 1 to 3 do Persist.add s key done;
    s
  in
  let unpatched =
    Execution.run ~app:(app_of "Zziplib") ~config:Config.csod_default ~seed:1
      ~store:(primed ()) ()
  in
  Alcotest.(check bool) "pinned context detects without patching" true
    unpatched.Execution.detected;
  (* With the patch policy at the same threshold the allocation gets
     guard slack instead of a watchpoint: no report, no crash. *)
  let patched =
    Execution.run ~app:(app_of "Zziplib") ~config:Config.csod_default ~seed:1
      ~store:(primed ()) ~respond:(Respond.Patch 3) ()
  in
  let s = summary_of patched in
  Alcotest.(check bool) "patched run reports nothing" false
    patched.Execution.detected;
  Alcotest.(check bool) "patched run completes" true
    (patched.Execution.crashed = None);
  Alcotest.(check bool) "allocations were padded" true
    (s.Respond.patched_allocs > 0)

let test_patch_below_threshold_unchanged () =
  (* Two hits under a threshold of three: conviction has not happened, so
     the runtime behaves exactly as with the policy off (the context is
     still pinned by evidence and detects). *)
  let report = fleet_run ~domains:2 ~respond:Respond.Off "Zziplib" in
  let key = List.hd (Persist.keys report.Fleet.store) in
  let prime n =
    let s = Persist.create () in
    for _ = 1 to n do Persist.add s key done;
    s
  in
  let o =
    Execution.run ~app:(app_of "Zziplib") ~config:Config.csod_default ~seed:1
      ~store:(prime 2) ~respond:(Respond.Patch 3) ()
  in
  Alcotest.(check bool) "unconvicted context still detects" true
    o.Execution.detected;
  Alcotest.(check int) "no padding below threshold" 0
    (summary_of o).Respond.patched_allocs

let suite =
  [ Alcotest.test_case "mode parsing" `Quick test_mode_parsing;
    Alcotest.test_case "off mode: bit-identical to no layer" `Quick
      test_off_mode_pure;
    Alcotest.test_case "off mode: no summary, no claim" `Quick
      test_off_mode_no_claim;
    Alcotest.test_case "oblivious: redirects and survives" `Quick
      test_oblivious_redirects_and_survives;
    Alcotest.test_case "oblivious: deterministic per seed" `Quick
      test_oblivious_deterministic;
    Alcotest.test_case "oblivious: write squash protects neighbors" `Quick
      test_oblivious_write_squash_protects_neighbors;
    Alcotest.test_case "canary escape blocks survival" `Quick
      test_canary_escape_blocks_survival;
    Alcotest.test_case "dropped trap cannot fake survival" `Quick
      test_dropped_trap_cannot_fake_survival;
    Alcotest.test_case "fleet bit-identical at 1/2/4 domains" `Quick
      test_fleet_domains_invariance;
    Alcotest.test_case "faulted fleet bit-identical at 1/2/4 domains" `Quick
      test_fleet_faulted_domains_invariance;
    Alcotest.test_case "patch: conviction silences the overflow" `Quick
      test_patch_convicts_and_silences;
    Alcotest.test_case "patch: below threshold unchanged" `Quick
      test_patch_below_threshold_unchanged ]
