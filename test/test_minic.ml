(* Tests for the MiniC language: lexer, parser, static checks, program
   loading/symbolization, and the interpreter. *)

let toks src = List.map (fun t -> t.Token.tok) (Lexer.tokenize ~file:"t.mc" src)

(* ---------- Lexer ---------- *)

let test_lex_numbers () =
  Alcotest.(check bool) "decimal" true (toks "42" = [ Token.INT 42; Token.EOF ]);
  Alcotest.(check bool) "hex" true (toks "0x1F" = [ Token.INT 31; Token.EOF ]);
  Alcotest.(check bool) "zero" true (toks "0" = [ Token.INT 0; Token.EOF ])

let test_lex_idents_keywords () =
  Alcotest.(check bool) "keyword vs ident" true
    (toks "fn fnord var varx"
    = [ Token.KW_FN; Token.IDENT "fnord"; Token.KW_VAR; Token.IDENT "varx"; Token.EOF ]);
  Alcotest.(check bool) "underscore ident" true
    (toks "_x9" = [ Token.IDENT "_x9"; Token.EOF ])

let test_lex_operators () =
  Alcotest.(check bool) "compound ops" true
    (toks "<= >= == != && || << >>"
    = [ Token.LE; Token.GE; Token.EQ; Token.NE; Token.AND; Token.OR; Token.SHL;
        Token.SHR; Token.EOF ]);
  Alcotest.(check bool) "single-char after lookahead" true
    (toks "< = ! & |"
    = [ Token.LT; Token.ASSIGN; Token.NOT; Token.AMP; Token.PIPE; Token.EOF ])

let test_lex_strings () =
  Alcotest.(check bool) "escapes" true
    (toks {|"a\nb\"c\\"|} = [ Token.STRING "a\nb\"c\\"; Token.EOF ])

let test_lex_comments () =
  Alcotest.(check bool) "line and block comments" true
    (toks "1 // comment\n/* multi\nline */ 2" = [ Token.INT 1; Token.INT 2; Token.EOF ])

let test_lex_locations () =
  let spanned = Lexer.tokenize ~file:"t.mc" "1\n  2" in
  (match spanned with
  | [ a; b; _eof ] ->
    Alcotest.(check int) "line 1" 1 a.Token.loc.Srcloc.line;
    Alcotest.(check int) "line 2" 2 b.Token.loc.Srcloc.line;
    Alcotest.(check int) "col 3" 3 b.Token.loc.Srcloc.col
  | _ -> Alcotest.fail "expected three tokens")

let lex_fails src =
  try
    ignore (toks src);
    false
  with Lexer.Lex_error _ -> true

let test_lex_errors () =
  Alcotest.(check bool) "bad char" true (lex_fails "@");
  Alcotest.(check bool) "unterminated string" true (lex_fails "\"abc");
  Alcotest.(check bool) "unterminated comment" true (lex_fails "/* abc");
  Alcotest.(check bool) "bad escape" true (lex_fails {|"\q"|});
  Alcotest.(check bool) "bare hex prefix" true (lex_fails "0x")

(* ---------- Parser ---------- *)

let parse_main body =
  let counter = ref 0x1000 in
  Parser.parse_unit ~counter ~file:"t.mc" ~module_name:"t"
    (Printf.sprintf "fn main() { %s }" body)

let main_body src =
  match parse_main src with
  | [ f ] -> f.Ast.body
  | _ -> Alcotest.fail "expected one function"

let rec expr_str (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Int n -> string_of_int n
  | Ast.Str s -> Printf.sprintf "%S" s
  | Ast.Var x -> x
  | Ast.Unop (Ast.Neg, a) -> Printf.sprintf "(- %s)" (expr_str a)
  | Ast.Unop (Ast.Not, a) -> Printf.sprintf "(! %s)" (expr_str a)
  | Ast.Binop (op, a, b) ->
    let o =
      match op with
      | Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/"
      | Ast.Mod -> "%" | Ast.Lt -> "<" | Ast.Le -> "<=" | Ast.Gt -> ">"
      | Ast.Ge -> ">=" | Ast.Eq -> "==" | Ast.Ne -> "!=" | Ast.LAnd -> "&&"
      | Ast.LOr -> "||" | Ast.BAnd -> "&" | Ast.BOr -> "|" | Ast.BXor -> "^"
      | Ast.Shl -> "<<" | Ast.Shr -> ">>"
    in
    Printf.sprintf "(%s %s %s)" o (expr_str a) (expr_str b)
  | Ast.Call (f, args) ->
    Printf.sprintf "(%s %s)" f (String.concat " " (List.map expr_str args))
  | Ast.Index (p, i) -> Printf.sprintf "(idx %s %s)" (expr_str p) (expr_str i)

let first_expr body =
  match body with
  | { Ast.s = Ast.Decl (_, e); _ } :: _ -> e
  | { Ast.s = Ast.Expr e; _ } :: _ -> e
  | _ -> Alcotest.fail "expected decl/expr statement"

let check_parse expected src =
  let e = first_expr (main_body ("var x = " ^ src ^ ";")) in
  Alcotest.(check string) src expected (expr_str e)

let test_parse_precedence () =
  check_parse "(+ 1 (* 2 3))" "1 + 2 * 3";
  check_parse "(* (+ 1 2) 3)" "(1 + 2) * 3";
  check_parse "(- (- 1 2) 3)" "1 - 2 - 3";
  check_parse "(|| (&& a b) c)" "a && b || c";
  check_parse "(== (+ a 1) (<< b 2))" "a + 1 == b << 2";
  check_parse "(| a (& b c))" "a | b & c";
  check_parse "(- (! x))" "-!x";
  check_parse "(idx (idx p 1) 2)" "p[1][2]";
  check_parse "(f a (+ b 1))" "f(a, b + 1)"

let test_parse_statements () =
  let body =
    main_body
      "var i = 0; if (i) { i = 1; } else { i = 2; } while (i < 3) { i = i + 1; } \
       for (var j = 0; j < 4; j = j + 1) { continue; } return i;"
  in
  let kinds =
    List.map
      (fun (s : Ast.stmt) ->
        match s.Ast.s with
        | Ast.Decl _ -> "decl" | Ast.If _ -> "if" | Ast.While _ -> "while"
        | Ast.For _ -> "for" | Ast.Return _ -> "return" | _ -> "other")
      body
  in
  Alcotest.(check (list string)) "statement kinds"
    [ "decl"; "if"; "while"; "for"; "return" ] kinds

let test_parse_else_if () =
  let body = main_body "var i = 0; if (i) { } else if (i - 1) { } else { i = 9; }" in
  match body with
  | [ _; { Ast.s = Ast.If (_, _, [ { Ast.s = Ast.If (_, _, else2); _ } ]); _ } ] ->
    Alcotest.(check int) "else-if chain" 1 (List.length else2)
  | _ -> Alcotest.fail "expected nested if in else"

let test_parse_store () =
  let body = main_body "var p = 0; p[2] = 7;" in
  match body with
  | [ _; { Ast.s = Ast.Store (_, idx, v); _ } ] ->
    Alcotest.(check string) "index" "2" (expr_str idx);
    Alcotest.(check string) "value" "7" (expr_str v)
  | _ -> Alcotest.fail "expected store statement"

let parse_fails src =
  try
    ignore (parse_main src);
    false
  with Parser.Parse_error _ -> true

let test_parse_errors () =
  Alcotest.(check bool) "missing semicolon" true (parse_fails "var x = 1");
  Alcotest.(check bool) "bad assignment target" true (parse_fails "1 + 2 = 3;");
  Alcotest.(check bool) "unclosed paren" true (parse_fails "var x = (1;");
  Alcotest.(check bool) "missing brace" true
    (try
       ignore
         (Parser.parse_unit ~counter:(ref 0) ~file:"t" ~module_name:"t" "fn f( {}");
       false
     with Parser.Parse_error _ -> true)

let test_parse_unique_addrs () =
  let fs = parse_main "var a = 1 + 2; var b = a * 3;" in
  let addrs = ref [] in
  List.iter
    (fun (f : Ast.func) ->
      addrs := f.Ast.faddr :: !addrs;
      Ast.iter_stmts (fun s -> addrs := s.Ast.saddr :: !addrs) f.Ast.body;
      Ast.iter_exprs (fun e -> addrs := e.Ast.eaddr :: !addrs) f.Ast.body)
    fs;
  let sorted = List.sort_uniq compare !addrs in
  Alcotest.(check int) "all code addresses distinct" (List.length !addrs)
    (List.length sorted)

(* ---------- Sema ---------- *)

let sema_errors src =
  let counter = ref 0 in
  let funcs = Parser.parse_unit ~counter ~file:"t.mc" ~module_name:"t" src in
  Sema.check funcs

let has_error fragment errs =
  List.exists
    (fun (msg, _) ->
      let nl = String.length fragment and hl = String.length msg in
      let rec go i = i + nl <= hl && (String.sub msg i nl = fragment || go (i + 1)) in
      go 0)
    errs

let test_sema_ok () =
  Alcotest.(check int) "clean program" 0
    (List.length
       (sema_errors
          "fn add(a, b) { return a + b; }\n\
           fn main() { var x = add(1, 2); print(\"x\", x); return x; }"))

let test_sema_errors () =
  Alcotest.(check bool) "missing main" true
    (has_error "no 'main'" (sema_errors "fn f() { return 0; }"));
  Alcotest.(check bool) "main with params" true
    (has_error "must take no parameters" (sema_errors "fn main(x) { return x; }"));
  Alcotest.(check bool) "duplicate function" true
    (has_error "duplicate function"
       (sema_errors "fn main() { return 0; }\nfn main() { return 1; }"));
  Alcotest.(check bool) "undefined call" true
    (has_error "undefined function 'nope'" (sema_errors "fn main() { nope(); return 0; }"));
  Alcotest.(check bool) "arity" true
    (has_error "expects 1 argument"
       (sema_errors "fn f(a) { return a; }\nfn main() { return f(1, 2); }"));
  Alcotest.(check bool) "builtin arity" true
    (has_error "builtin 'malloc'" (sema_errors "fn main() { var p = malloc(); return 0; }"));
  Alcotest.(check bool) "undeclared use" true
    (has_error "undeclared variable 'y'" (sema_errors "fn main() { return y; }"));
  Alcotest.(check bool) "undeclared assign" true
    (has_error "assignment to undeclared" (sema_errors "fn main() { z = 1; return 0; }"));
  Alcotest.(check bool) "duplicate decl same scope" true
    (has_error "duplicate declaration"
       (sema_errors "fn main() { var a = 1; var a = 2; return a; }"));
  Alcotest.(check bool) "break outside loop" true
    (has_error "'break' outside" (sema_errors "fn main() { break; return 0; }"));
  Alcotest.(check bool) "continue outside loop" true
    (has_error "'continue' outside" (sema_errors "fn main() { continue; return 0; }"));
  Alcotest.(check bool) "stray string" true
    (has_error "string literal" (sema_errors "fn main() { var s = \"oops\"; return 0; }"));
  Alcotest.(check bool) "spawn of unknown" true
    (has_error "spawn of undefined"
       (sema_errors "fn main() { spawn(\"ghost\"); return 0; }"));
  Alcotest.(check bool) "spawn arg mismatch" true
    (has_error "spawn target"
       (sema_errors "fn w(a) { return a; }\nfn main() { spawn(\"w\"); return 0; }"));
  Alcotest.(check bool) "spawn needs string" true
    (has_error "first argument of spawn"
       (sema_errors "fn main() { var f = 1; spawn(f); return 0; }"))

let test_sema_scoping () =
  (* shadowing in a nested scope is legal; for-init vars visible in body *)
  Alcotest.(check int) "shadowing ok" 0
    (List.length
       (sema_errors
          "fn main() { var a = 1; if (a) { var a = 2; a = a + 1; } \
           for (var i = 0; i < 3; i = i + 1) { var t = i; t = t; } return a; }"));
  (* ...but a for-init variable is out of scope afterwards *)
  Alcotest.(check bool) "for var escapes" true
    (has_error "undeclared"
       (sema_errors
          "fn main() { for (var i = 0; i < 3; i = i + 1) { } return i; }"))

(* ---------- Program loading and symbolization ---------- *)

let test_program_load_and_symbolize () =
  let p =
    Program.load_exn
      [ { Program.file = "app.c"; module_name = "app";
          source = "fn main() { var r = helper(4); return r; }" };
        { Program.file = "lib.c"; module_name = "libx";
          source = "fn helper(n) { return n * 2; }" } ]
  in
  let main = Option.get (Program.func p "main") in
  let helper = Option.get (Program.func p "helper") in
  Alcotest.(check bool) "symbolize main entry" true
    (Program.symbolize p main.Ast.faddr = "app.c:1 (main)");
  Alcotest.(check bool) "symbolize helper" true
    (Program.symbolize p helper.Ast.faddr = "lib.c:1 (helper)");
  Alcotest.(check (option string)) "module lookup" (Some "libx")
    (Program.module_of_addr p helper.Ast.faddr);
  Alcotest.(check string) "unknown address falls back to hex" "0xdead"
    (Program.symbolize p 0xDEAD);
  Alcotest.(check int) "frame size: 1 param, 0 decls" (32 + 8)
    (Program.frame_size p "helper");
  Alcotest.(check int) "frame size: 0 params, 1 decl" (32 + 8)
    (Program.frame_size p "main");
  Alcotest.(check bool) "source lines counted" true (Program.total_source_lines p >= 2)

let test_program_load_errors () =
  (match Program.load [ { Program.file = "x.c"; module_name = "x"; source = "fn main() {" } ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "parse error must be reported");
  match Program.load [ { Program.file = "x.c"; module_name = "x"; source = "fn f() { return zz; }" } ] with
  | Error errs -> Alcotest.(check bool) "multiple sema errors" true (List.length errs >= 2)
  | Ok _ -> Alcotest.fail "sema errors must be reported"

(* ---------- Interpreter ---------- *)

let run_src ?(inputs = [||]) ?tool src =
  let machine = Machine.create ~seed:1 () in
  let heap = Heap.create machine in
  let tool = match tool with Some t -> t machine heap | None -> Tool.baseline heap in
  let program =
    Program.load_exn [ { Program.file = "t.mc"; module_name = "t"; source = src } ]
  in
  Interp.run ~machine ~tool ~program ~inputs ()

let test_interp_arith () =
  let r = run_src "fn main() { return (2 + 3) * 4 - 20 / 2 + (17 % 5); }" in
  Alcotest.(check int) "arith" 12 r.Interp.return_value;
  let r = run_src "fn main() { return (1 << 4) + (256 >> 2) + (6 & 3) + (4 | 1) + (5 ^ 1); }" in
  Alcotest.(check int) "bitwise" (16 + 64 + 2 + 5 + 4) r.Interp.return_value

let test_interp_logic () =
  let r =
    run_src
      "fn boom() { return 1 / 0; }\n\
       fn main() { if (0 && boom()) { return 1; } if (1 || boom()) { return 2; } return 3; }"
  in
  Alcotest.(check int) "short-circuit avoids division by zero" 2 r.Interp.return_value

let test_interp_control () =
  let r =
    run_src
      "fn main() { var s = 0; for (var i = 0; i < 10; i = i + 1) { \
       if (i == 3) { continue; } if (i == 7) { break; } s = s + i; } return s; }"
  in
  Alcotest.(check int) "loop with break/continue" (0 + 1 + 2 + 4 + 5 + 6)
    r.Interp.return_value

let test_interp_recursion () =
  let r = run_src "fn fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }\nfn main() { return fib(15); }" in
  Alcotest.(check int) "fib 15" 610 r.Interp.return_value

let test_interp_memory () =
  let r =
    run_src
      "fn main() { var p = malloc(64); p[0] = 11; p[7] = 22; store8(p, 9, 255); \
       var v = p[0] + p[7] + load8(p, 9); free(p); return v; }"
  in
  Alcotest.(check int) "word and byte accesses" (11 + 22 + 255) r.Interp.return_value

let test_interp_memcpy_memset () =
  let r =
    run_src
      "fn main() { var a = malloc(32); var b = malloc(32); memset(a, 7, 32); \
       memcpy(b, a, 32); var v = load8(b, 0) + load8(b, 31); free(a); free(b); return v; }"
  in
  Alcotest.(check int) "memset+memcpy" 14 r.Interp.return_value

let test_interp_print_and_inputs () =
  let r =
    run_src ~inputs:[| 41; 1 |]
      "fn main() { print(\"sum:\", input(0) + input(1), \"of\", input_len()); return 0; }"
  in
  Alcotest.(check string) "print output" "sum: 42 of 2\n" r.Interp.output

let test_interp_rand_deterministic () =
  let src = "fn main() { return rand(1000) + rand(1000); }" in
  let a = run_src src and b = run_src src in
  Alcotest.(check int) "same app seed, same stream" a.Interp.return_value
    b.Interp.return_value

let test_interp_spawn () =
  let machine = Machine.create ~seed:1 () in
  let heap = Heap.create machine in
  let program =
    Program.load_exn
      [ { Program.file = "t.mc"; module_name = "t";
          source =
            "fn worker(n) { return n * 2; }\n\
             fn main() { var a = spawn(\"worker\", 21); return a; }" } ]
  in
  let r = Interp.run ~machine ~tool:(Tool.baseline heap) ~program () in
  Alcotest.(check int) "spawn returns worker result" 42 r.Interp.return_value;
  (* the spawned thread exited again *)
  Alcotest.(check int) "only main alive" 1 (Threads.alive_count (Machine.threads machine))

let expect_runtime_error src =
  try
    ignore (run_src src);
    Alcotest.fail "expected a runtime error"
  with Interp.Runtime_error _ -> ()

let test_interp_runtime_errors () =
  expect_runtime_error "fn main() { return 1 / 0; }";
  expect_runtime_error "fn main() { return 1 % 0; }";
  expect_runtime_error "fn main() { return input(0); }";
  expect_runtime_error "fn main() { var p = malloc(0 - 8); return 0; }";
  expect_runtime_error "fn main() { return rand(0); }";
  expect_runtime_error "fn main() { sleep_ms(0 - 1); return 0; }";
  expect_runtime_error "fn main() { var p = 0 - 5; return p[0]; }"

let test_interp_step_limit () =
  let machine = Machine.create ~seed:1 () in
  let heap = Heap.create machine in
  let program =
    Program.load_exn
      [ { Program.file = "t.mc"; module_name = "t";
          source = "fn main() { var i = 0; while (1) { i = i + 1; } return i; }" } ]
  in
  try
    ignore
      (Interp.run ~machine ~tool:(Tool.baseline heap) ~program ~step_limit:1000 ());
    Alcotest.fail "expected step-limit error"
  with Interp.Runtime_error (msg, _) ->
    Alcotest.(check bool) "mentions step limit" true
      (String.length msg >= 10 && String.sub msg 0 10 = "step limit")

let test_interp_on_access_channel () =
  (* every word/byte access is announced to the tool with a code site *)
  let count = ref 0 in
  let mk machine heap =
    ignore machine;
    let base = Tool.baseline heap in
    { base with Tool.on_access = (fun ~addr:_ ~len:_ ~kind:_ ~site:_ -> incr count) }
  in
  let _ =
    run_src ~tool:mk
      "fn main() { var p = malloc(16); p[0] = 1; var v = p[0]; store8(p, 1, 2); \
       var w = load8(p, 1); free(p); return v + w; }"
  in
  Alcotest.(check int) "four announced accesses" 4 !count

let suite =
  [ Alcotest.test_case "lex numbers" `Quick test_lex_numbers;
    Alcotest.test_case "lex idents/keywords" `Quick test_lex_idents_keywords;
    Alcotest.test_case "lex operators" `Quick test_lex_operators;
    Alcotest.test_case "lex strings" `Quick test_lex_strings;
    Alcotest.test_case "lex comments" `Quick test_lex_comments;
    Alcotest.test_case "lex locations" `Quick test_lex_locations;
    Alcotest.test_case "lex errors" `Quick test_lex_errors;
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse statements" `Quick test_parse_statements;
    Alcotest.test_case "parse else-if" `Quick test_parse_else_if;
    Alcotest.test_case "parse store" `Quick test_parse_store;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "unique code addresses" `Quick test_parse_unique_addrs;
    Alcotest.test_case "sema accepts clean program" `Quick test_sema_ok;
    Alcotest.test_case "sema error catalogue" `Quick test_sema_errors;
    Alcotest.test_case "sema scoping" `Quick test_sema_scoping;
    Alcotest.test_case "program load + symbolize" `Quick test_program_load_and_symbolize;
    Alcotest.test_case "program load errors" `Quick test_program_load_errors;
    Alcotest.test_case "interp arithmetic" `Quick test_interp_arith;
    Alcotest.test_case "interp short-circuit" `Quick test_interp_logic;
    Alcotest.test_case "interp control flow" `Quick test_interp_control;
    Alcotest.test_case "interp recursion" `Quick test_interp_recursion;
    Alcotest.test_case "interp memory" `Quick test_interp_memory;
    Alcotest.test_case "interp memcpy/memset" `Quick test_interp_memcpy_memset;
    Alcotest.test_case "interp print/input" `Quick test_interp_print_and_inputs;
    Alcotest.test_case "interp rand determinism" `Quick test_interp_rand_deterministic;
    Alcotest.test_case "interp spawn" `Quick test_interp_spawn;
    Alcotest.test_case "interp runtime errors" `Quick test_interp_runtime_errors;
    Alcotest.test_case "interp step limit" `Quick test_interp_step_limit;
    Alcotest.test_case "interp access channel" `Quick test_interp_on_access_channel ]

(* calloc builtin: zeroed memory even when the allocator recycles a dirty
   block *)
let test_interp_calloc () =
  let r =
    run_src
      "fn main() { var a = malloc(32); memset(a, 255, 32); free(a); \
       var b = calloc(4, 8); var v = load8(b, 0) + load8(b, 31) + b[2]; \
       free(b); return v; }"
  in
  Alcotest.(check int) "calloc zeroes recycled memory" 0 r.Interp.return_value

let suite = suite @ [ Alcotest.test_case "interp calloc" `Quick test_interp_calloc ]

(* extra semantic corners *)
let test_interp_corners () =
  let r = run_src "fn main() { while (1) { if (1) { return 7; } } return 0; }" in
  Alcotest.(check int) "return escapes nested blocks" 7 r.Interp.return_value;
  let r = run_src "fn main() { return (0 - 7) % 3; }" in
  Alcotest.(check int) "modulo keeps OCaml/C sign" (-1) r.Interp.return_value;
  let r = run_src "fn main() { return (0 - 7) / 2; }" in
  Alcotest.(check int) "division truncates toward zero" (-3) r.Interp.return_value;
  let r = run_src "fn f(a) { a = a + 1; return a; }\nfn main() { var x = 5; var y = f(x); return x * 100 + y; }" in
  Alcotest.(check int) "parameters are by value" 506 r.Interp.return_value;
  let r = run_src "fn main() { var n = 0; for (var i = 0; i < 3; i = i + 1) { for (var j = 0; j < 3; j = j + 1) { if (j == 1) { break; } n = n + 1; } } return n; }" in
  Alcotest.(check int) "break binds to inner loop" 3 r.Interp.return_value;
  let r = run_src "fn main() { var x = 1; if (x == 1) { var x = 2; x = x + 1; } return x; }" in
  Alcotest.(check int) "shadowing does not leak" 1 r.Interp.return_value

let test_interp_deep_recursion () =
  let r =
    run_src
      "fn down(n) { if (n == 0) { return 0; } return down(n - 1) + 1; }\n\
       fn main() { return down(5000); }"
  in
  Alcotest.(check int) "5000-deep recursion" 5000 r.Interp.return_value

let suite =
  suite
  @ [ Alcotest.test_case "interp corners" `Quick test_interp_corners;
      Alcotest.test_case "interp deep recursion" `Quick test_interp_deep_recursion ]

(* ---------- Bytecode VM ---------- *)

let run_engine ?(inputs = [||]) engine src =
  let machine = Machine.create ~seed:1 () in
  let heap = Heap.create machine in
  let program =
    Program.load_exn [ { Program.file = "t.mc"; module_name = "t"; source = src } ]
  in
  let r = Engine.run ~engine ~machine ~tool:(Tool.baseline heap) ~program ~inputs () in
  (r, Clock.cycles (Machine.clock machine))

(* Every semantics program above, replayed on the VM: return value, output,
   step count and virtual-cycle total must match the interpreter exactly. *)
let test_vm_matches_interp () =
  let programs =
    [ "fn main() { return (2 + 3) * 4 - 20 / 2 + (17 % 5); }";
      "fn main() { return (1 << 4) + (256 >> 2) + (6 & 3) + (4 | 1) + (5 ^ 1); }";
      "fn boom() { return 1 / 0; }\n\
       fn main() { if (0 && boom()) { return 1; } if (1 || boom()) { return 2; } return 3; }";
      "fn main() { var s = 0; for (var i = 0; i < 10; i = i + 1) { \
       if (i == 3) { continue; } if (i == 7) { break; } s = s + i; } return s; }";
      "fn fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }\n\
       fn main() { return fib(15); }";
      "fn main() { var p = malloc(64); p[0] = 11; p[7] = 22; store8(p, 9, 255); \
       var v = p[0] + p[7] + load8(p, 9); free(p); return v; }";
      "fn main() { var a = malloc(32); var b = malloc(32); memset(a, 7, 32); \
       memcpy(b, a, 32); var v = load8(b, 0) + load8(b, 31); free(a); free(b); return v; }";
      "fn main() { return rand(1000) + rand(1000); }";
      "fn worker(n) { return n * 2; }\n\
       fn main() { var a = spawn(\"worker\", 21); return a; }";
      "fn main() { var a = malloc(32); memset(a, 255, 32); free(a); \
       var b = calloc(4, 8); var v = load8(b, 0) + load8(b, 31) + b[2]; \
       free(b); return v; }";
      "fn main() { while (1) { if (1) { return 7; } } return 0; }";
      "fn main() { return (0 - 7) % 3; }";
      "fn main() { return (0 - 7) / 2; }";
      "fn f(a) { a = a + 1; return a; }\n\
       fn main() { var x = 5; var y = f(x); return x * 100 + y; }";
      "fn main() { var n = 0; for (var i = 0; i < 3; i = i + 1) { \
       for (var j = 0; j < 3; j = j + 1) { if (j == 1) { break; } n = n + 1; } } return n; }";
      "fn main() { var x = 1; if (x == 1) { var x = 2; x = x + 1; } return x; }";
      "fn down(n) { if (n == 0) { return 0; } return down(n - 1) + 1; }\n\
       fn main() { return down(5000); }" ]
  in
  List.iteri
    (fun i src ->
      let tag fmt = Printf.sprintf ("program %d " ^^ fmt) i in
      let ri, ci = run_engine Engine.Interp src in
      let rv, cv = run_engine Engine.Vm src in
      Alcotest.(check int) (tag "return value") ri.Interp.return_value rv.Interp.return_value;
      Alcotest.(check string) (tag "output") ri.Interp.output rv.Interp.output;
      Alcotest.(check int) (tag "steps") ri.Interp.steps rv.Interp.steps;
      Alcotest.(check int) (tag "cycles") ci cv)
    programs

(* the VM raises the interpreter's error type with the same message *)
let test_vm_runtime_errors () =
  List.iter
    (fun src ->
      let msg engine =
        try
          ignore (run_engine engine src);
          Alcotest.fail "expected a runtime error"
        with Interp.Runtime_error (m, loc) -> Srcloc.to_string loc ^ ": " ^ m
      in
      Alcotest.(check string) src (msg Engine.Interp) (msg Engine.Vm))
    [ "fn main() { return 1 / 0; }";
      "fn main() { return 1 % 0; }";
      "fn main() { return input(0); }";
      "fn main() { var p = malloc(0 - 8); return 0; }";
      "fn main() { return rand(0); }";
      "fn main() { var p = 0 - 5; return p[0]; }" ]

(* Pinned repro for the planted vm-buggy-cycles bug, shrunk from the
   differential sweep's catch in test_prop.ml: one extra virtual cycle is
   charged per taken backward jump, so a 3-iteration while loop runs 3
   cycles hot on the buggy VM while agreeing everywhere else. *)
let test_vm_buggy_cycles_repro () =
  let src = "fn main() { var i = 0; while (i < 3) { i = i + 1; } return i; }" in
  let ri, ci = run_engine Engine.Interp src in
  let rv, cv = run_engine Engine.Vm src in
  Alcotest.(check int) "clean vm agrees on cycles" ci cv;
  Alcotest.(check int) "clean vm agrees on return" ri.Interp.return_value
    rv.Interp.return_value;
  Fun.protect
    ~finally:(fun () -> Vm.buggy_cycles := false)
    (fun () ->
      Vm.buggy_cycles := true;
      let rb, cb = run_engine Engine.Vm src in
      Alcotest.(check int) "buggy vm still computes the right answer"
        ri.Interp.return_value rb.Interp.return_value;
      Alcotest.(check int) "one extra cycle per taken backward jump" (ci + 3) cb)

let suite =
  suite
  @ [ Alcotest.test_case "vm matches interp on semantics corpus" `Quick
        test_vm_matches_interp;
      Alcotest.test_case "vm runtime errors match interp" `Quick
        test_vm_runtime_errors;
      Alcotest.test_case "vm-buggy-cycles pinned repro" `Quick
        test_vm_buggy_cycles_repro ]
