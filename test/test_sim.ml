(* The simulation harness itself: deterministic generation, stepwise
   invariant checking, automatic shrinking, repro records and bit-identical
   replay.

   A tiny counter alphabet exercises the engine directly (exec semantics,
   precondition skipping, hash determinism); the planted-bug alphabets
   (store-buggy-merge, fleet-evidence-bug) pin that shrinking converges to
   a minimal counterexample of at most 6 operations — the seeded shrink
   regression. *)

(* ---------- a minimal, fully transparent alphabet ---------- *)

type counter = { mutable total : int; mutable primed : bool }

let counter_alphabet : counter Sim.alphabet =
  { Sim.name = "counter";
    ops =
      [ { Sim.op_name = "inc";
          weight = 3;
          pre = (fun _ -> true);
          gen = (fun _ g -> [ Prng.int g 16 ]);
          apply =
            (fun c args ->
              c.total <- c.total + (match args with n :: _ -> n mod 16 | [] -> 0);
              Ok ()) };
        { Sim.op_name = "prime";
          weight = 1;
          pre = (fun c -> not c.primed);
          gen = (fun _ _ -> []);
          apply =
            (fun c _ ->
              c.primed <- true;
              Ok ()) };
        { Sim.op_name = "fire";
          weight = 1;
          pre = (fun c -> c.primed);
          gen = (fun _ _ -> []);
          apply =
            (fun c _ ->
              c.primed <- false;
              c.total <- c.total + 1;
              Ok ()) } ];
    init = (fun ~seed:_ -> { total = 0; primed = false });
    check =
      (fun c -> if c.total >= 30 then Some "counter reached 30" else None);
    digest = (fun c -> Int64.of_int ((c.total * 2) + Bool.to_int c.primed));
    teardown = (fun _ -> ()) }

let step op args = { Sim.op = op; args }

let test_exec_deterministic () =
  let steps = [ step "inc" [ 7 ]; step "prime" []; step "fire" [] ] in
  let a = Sim.exec counter_alphabet ~seed:1 steps in
  let b = Sim.exec counter_alphabet ~seed:1 steps in
  Alcotest.(check bool) "no failure" true (a.Sim.failed = None);
  Alcotest.(check int64) "same hash" a.Sim.hash b.Sim.hash;
  Alcotest.(check int) "all steps applied" 3 a.Sim.applied;
  (* Different recorded args change the trace hash: arguments are part of
     what "bit-identical" certifies. *)
  let c = Sim.exec counter_alphabet ~seed:1 [ step "inc" [ 8 ] ] in
  Alcotest.(check bool) "different args, different hash" true
    (c.Sim.hash <> Sim.(exec counter_alphabet ~seed:1 [ step "inc" [ 7 ] ]).hash)

let test_exec_skips_unsatisfied_pre () =
  (* [fire] without a prior [prime] is skipped, not an error — shrinking
     may remove the op that established a precondition. *)
  let r = Sim.exec counter_alphabet ~seed:1 [ step "fire" []; step "inc" [ 3 ] ] in
  Alcotest.(check bool) "no failure" true (r.Sim.failed = None);
  Alcotest.(check int) "only inc applied" 1 r.Sim.applied

let test_exec_detects_violation () =
  let steps = List.init 5 (fun _ -> step "inc" [ 15 ]) in
  let r = Sim.exec counter_alphabet ~seed:1 steps in
  (match r.Sim.failed with
  | Some (i, msg) ->
    Alcotest.(check int) "fails at the second inc" 1 i;
    Alcotest.(check string) "message" "counter reached 30" msg
  | None -> Alcotest.fail "violation not detected")

let test_run_finds_and_shrinks () =
  match Sim.run counter_alphabet ~seed:1 ~runs:50 ~ops:40 with
  | [] -> Alcotest.fail "counter bug never found"
  | f :: _ ->
    Alcotest.(check string) "alphabet recorded" "counter" f.Sim.alphabet;
    Alcotest.(check bool)
      (Printf.sprintf "shrunk to %d ops (from %d)" (List.length f.Sim.steps)
         f.Sim.shrunk_from)
      true
      (List.length f.Sim.steps <= 3);
    (* Every kept step contributes: the shrunk sequence still only holds
       inc ops whose sum crosses the bound. *)
    let sum =
      List.fold_left
        (fun acc (s : Sim.step) ->
          acc + (match s.Sim.args with n :: _ -> n mod 16 | [] -> 1))
        0 f.Sim.steps
    in
    Alcotest.(check bool) "minimal: sum barely crosses 30" true (sum >= 30 && sum - 30 < 16)

(* ---------- determinism of a whole sweep ---------- *)

let test_sweep_deterministic () =
  let once () =
    match
      Sim.run_packed
        (Sim_store.alphabet ~buggy_merge:true ())
        ~seed:1 ~runs:20 ~ops:60
    with
    | [] -> Alcotest.fail "planted merge bug never found"
    | f :: _ -> f
  in
  let a = once () and b = once () in
  Alcotest.(check bool) "same seed, same counterexample" true (a = b)

(* ---------- seeded shrink regression: planted bugs stay minimal ---------- *)

let shrunk_failure pack =
  match Sim.run_packed pack ~seed:1 ~runs:20 ~ops:60 with
  | [] -> Alcotest.fail "planted bug never found"
  | f :: _ -> f

let test_planted_merge_bug_shrinks () =
  let f = shrunk_failure (Sim_store.alphabet ~buggy_merge:true ()) in
  Alcotest.(check bool)
    (Printf.sprintf "minimal repro has %d ops (<= 6), shrunk from %d"
       (List.length f.Sim.steps) f.Sim.shrunk_from)
    true
    (List.length f.Sim.steps <= 6);
  (* The repro must actually exercise the bug: a merge is present. *)
  Alcotest.(check bool) "repro contains a merge" true
    (List.exists (fun (s : Sim.step) -> s.Sim.op = "merge") f.Sim.steps)

let test_planted_respond_bug_shrinks () =
  let f = shrunk_failure (Sim_respond.alphabet ~plant:true ()) in
  Alcotest.(check bool)
    (Printf.sprintf "minimal repro has %d ops (<= 6), shrunk from %d"
       (List.length f.Sim.steps) f.Sim.shrunk_from)
    true
    (List.length f.Sim.steps <= 6);
  (* The repro must walk the whole conviction pipeline: evidence hits
     crossing the threshold, then a patch-mode allocation exposing the
     lost store write. *)
  Alcotest.(check bool) "repro convicts a context" true
    (List.exists (fun (s : Sim.step) -> s.Sim.op = "convict-context")
       f.Sim.steps);
  Alcotest.(check bool) "repro applies a patch" true
    (List.exists (fun (s : Sim.step) -> s.Sim.op = "apply-patch") f.Sim.steps)

let test_respond_alphabet_holds () =
  (* The unplanted respond alphabet must hold its invariants across a
     sweep — every oblivious overflow redirected, every conviction
     honoured. *)
  match Sim.run_packed (Sim_respond.alphabet ()) ~seed:1 ~runs:10 ~ops:40 with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "respond alphabet violated: %s (%d steps)" f.Sim.message
      (List.length f.Sim.steps)

let test_planted_fleet_bug_shrinks () =
  let f = shrunk_failure (Sim_fleet.alphabet ~plant:true ()) in
  Alcotest.(check bool)
    (Printf.sprintf "minimal repro has %d ops (<= 6), shrunk from %d"
       (List.length f.Sim.steps) f.Sim.shrunk_from)
    true
    (List.length f.Sim.steps <= 6);
  Alcotest.(check bool) "repro drops a trap before a barrier" true
    (List.exists (fun (s : Sim.step) -> s.Sim.op = "fault-trap-drop") f.Sim.steps)

(* ---------- repro records ---------- *)

let test_repro_json_roundtrip () =
  let f = shrunk_failure (Sim_store.alphabet ~buggy_merge:true ()) in
  match Sim.of_json (Sim.to_json f) with
  | Error m -> Alcotest.failf "round-trip failed: %s" m
  | Ok f' -> Alcotest.(check bool) "identical record" true (f = f')

let test_repro_line_parses () =
  let f = shrunk_failure (Sim_fleet.alphabet ~plant:true ()) in
  match Obs_json.of_string (Sim.repro_line f) with
  | Error m -> Alcotest.failf "repro line is not JSON: %s" m
  | Ok json -> (
    match Obs_json.member "schema" json with
    | Some (`String s) -> Alcotest.(check string) "schema" Sim.schema s
    | _ -> Alcotest.fail "schema member missing")

let test_replay_bit_identical () =
  let f = shrunk_failure (Sim_store.alphabet ~buggy_merge:true ()) in
  (match Sim.replay Sim_registry.all f with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "replay diverged: %s" m);
  (* Tampering with any certified field must be caught. *)
  let divergent f' =
    match Sim.replay Sim_registry.all f' with
    | Ok _ -> Alcotest.fail "tampered repro replayed"
    | Error _ -> ()
  in
  divergent { f with Sim.replay_hash = Int64.lognot f.Sim.replay_hash };
  divergent { f with Sim.message = "something else" };
  divergent { f with Sim.steps = [] };
  divergent { f with Sim.alphabet = "no-such-alphabet" }

(* ---------- registry ---------- *)

let test_registry () =
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true
        (Sim_registry.find n <> None))
    [ "heap"; "runtime"; "fleet"; "store"; "respond"; "store-buggy-merge";
      "fleet-evidence-bug"; "respond-lost-conviction" ];
  Alcotest.(check bool) "unknown name rejected" true
    (Sim_registry.find "no-such-alphabet" = None);
  (* The default sweep set holds only the real-system alphabets: planted
     bugs never trip CI. *)
  Alcotest.(check (list string)) "default sweep set"
    [ "heap"; "runtime"; "fleet"; "store"; "respond" ]
    (List.map Sim.name_of Sim_registry.default)

let suite =
  [ Alcotest.test_case "exec: deterministic trace hash" `Quick
      test_exec_deterministic;
    Alcotest.test_case "exec: unsatisfied preconditions skipped" `Quick
      test_exec_skips_unsatisfied_pre;
    Alcotest.test_case "exec: stops at first violation" `Quick
      test_exec_detects_violation;
    Alcotest.test_case "run: finds and shrinks the counter bug" `Quick
      test_run_finds_and_shrinks;
    Alcotest.test_case "sweep: same seed, same counterexample" `Quick
      test_sweep_deterministic;
    Alcotest.test_case "shrink: planted merge bug <= 6 ops" `Quick
      test_planted_merge_bug_shrinks;
    Alcotest.test_case "shrink: planted fleet bug <= 6 ops" `Quick
      test_planted_fleet_bug_shrinks;
    Alcotest.test_case "shrink: planted respond bug <= 6 ops" `Quick
      test_planted_respond_bug_shrinks;
    Alcotest.test_case "sweep: respond alphabet holds" `Quick
      test_respond_alphabet_holds;
    Alcotest.test_case "repro: JSON round-trip" `Quick test_repro_json_roundtrip;
    Alcotest.test_case "repro: JSONL line carries the schema" `Quick
      test_repro_line_parses;
    Alcotest.test_case "replay: bit-identical, tamper-evident" `Quick
      test_replay_bit_identical;
    Alcotest.test_case "registry: names and default sweep" `Quick
      test_registry ]
