(* Aggregated test entry point: `dune runtest`.

   Suites mirror the library structure: utilities, machine substrate,
   allocator, MiniC language, CSOD core, ASan baseline, application
   models, and the experiment harness. *)

let () =
  Alcotest.run "csod"
    [ ("prng", Test_prng.suite);
      ("util", Test_util.suite);
      ("machine", Test_machine.suite);
      ("heap", Test_heap.suite);
      ("minic", Test_minic.suite);
      ("pretty", Test_pretty.suite);
      ("obs", Test_obs.suite);
      ("core", Test_core.suite);
      ("runtime", Test_runtime.suite);
      ("sim", Test_sim.suite);
      ("prop", Test_prop.suite);
      ("asan", Test_asan.suite);
      ("apps", Test_apps.suite);
      ("fleet", Test_fleet.suite);
      ("serve", Test_serve.suite);
      ("faults", Test_faults.suite);
      ("harness", Test_harness.suite);
      ("respond", Test_respond.suite);
      ("misc", Test_misc.suite);
      ("limitations", Test_limitations.suite) ]
