(* Tests for Chained_table, Ring, Stats and Table_fmt. *)

(* ---------- Chained_table: model-based against Hashtbl ---------- *)

let mk_table ?(buckets = 64) () =
  Chained_table.create ~buckets ~hash:Hashtbl.hash ~equal:Int.equal ()

let test_table_basic () =
  let t = mk_table () in
  Alcotest.(check int) "empty" 0 (Chained_table.length t);
  Chained_table.replace t 1 "a";
  Chained_table.replace t 2 "b";
  Alcotest.(check (option string)) "find 1" (Some "a") (Chained_table.find t 1);
  Alcotest.(check (option string)) "find 2" (Some "b") (Chained_table.find t 2);
  Alcotest.(check (option string)) "miss" None (Chained_table.find t 3);
  Chained_table.replace t 1 "a2";
  Alcotest.(check (option string)) "overwrite" (Some "a2") (Chained_table.find t 1);
  Alcotest.(check int) "length" 2 (Chained_table.length t);
  Chained_table.remove t 1;
  Alcotest.(check (option string)) "removed" None (Chained_table.find t 1);
  Alcotest.(check int) "length after remove" 1 (Chained_table.length t);
  Chained_table.remove t 99 (* removing a missing key is a no-op *);
  Alcotest.(check int) "length unchanged" 1 (Chained_table.length t)

let test_table_find_or_add () =
  let t = mk_table () in
  let calls = ref 0 in
  let v1 = Chained_table.find_or_add t 5 ~default:(fun () -> incr calls; "x") in
  let v2 = Chained_table.find_or_add t 5 ~default:(fun () -> incr calls; "y") in
  Alcotest.(check string) "first insert" "x" v1;
  Alcotest.(check string) "second returns existing" "x" v2;
  Alcotest.(check int) "default called once" 1 !calls

let test_table_collisions () =
  (* One bucket: everything chains. *)
  let t = Chained_table.create ~buckets:1 ~hash:(fun _ -> 0) ~equal:Int.equal () in
  for i = 1 to 50 do
    Chained_table.replace t i (i * 10)
  done;
  Alcotest.(check int) "all present despite collisions" 50 (Chained_table.length t);
  Alcotest.(check int) "max chain" 50 (Chained_table.max_chain_length t);
  for i = 1 to 50 do
    Alcotest.(check (option int)) "chained find" (Some (i * 10)) (Chained_table.find t i)
  done;
  (* Remove from the middle of the chain. *)
  Chained_table.remove t 25;
  Alcotest.(check (option int)) "removed mid-chain" None (Chained_table.find t 25);
  Alcotest.(check (option int)) "neighbours intact" (Some 240) (Chained_table.find t 24)

let test_table_iter_fold () =
  let t = mk_table () in
  List.iter (fun i -> Chained_table.replace t i i) [ 1; 2; 3; 4 ];
  let sum = Chained_table.fold (fun _ v acc -> acc + v) t 0 in
  Alcotest.(check int) "fold sums" 10 sum;
  let n = ref 0 in
  Chained_table.iter (fun _ _ -> incr n) t;
  Alcotest.(check int) "iter visits all" 4 !n

let test_table_lock_accounting () =
  let t = mk_table () in
  let before = Chained_table.lock_acquisitions t in
  ignore (Chained_table.find t 1);
  Chained_table.replace t 1 "v";
  Chained_table.remove t 1;
  Alcotest.(check int) "three lock acquisitions" (before + 3)
    (Chained_table.lock_acquisitions t)

let prop_table_model =
  (* Random op sequences agree with Hashtbl. *)
  let open QCheck in
  Test.make ~name:"Chained_table matches Hashtbl model" ~count:200
    (list (pair (int_range 0 2) (int_range 0 20)))
    (fun ops ->
      let t = mk_table ~buckets:4 () in
      let h = Hashtbl.create 16 in
      List.iter
        (fun (op, k) ->
          match op with
          | 0 ->
            Chained_table.replace t k k;
            Hashtbl.replace h k k
          | 1 ->
            Chained_table.remove t k;
            Hashtbl.remove h k
          | _ -> ())
        ops;
      Hashtbl.fold (fun k v acc -> acc && Chained_table.find t k = Some v) h true
      && Chained_table.length t = Hashtbl.length h)

(* ---------- Ring ---------- *)

let test_ring_fifo () =
  let r = Ring.create ~capacity:3 in
  Alcotest.(check bool) "empty" true (Ring.is_empty r);
  Ring.push r 1;
  Ring.push r 2;
  Ring.push r 3;
  Alcotest.(check bool) "full" true (Ring.is_full r);
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (Ring.to_list r);
  Alcotest.(check (option int)) "peek oldest" (Some 1) (Ring.peek r);
  Alcotest.(check (option int)) "pop oldest" (Some 1) (Ring.pop r);
  Ring.push r 4;
  Alcotest.(check (list int)) "wraps" [ 2; 3; 4 ] (Ring.to_list r)

let test_ring_push_full () =
  let r = Ring.create ~capacity:1 in
  Ring.push r 1;
  Alcotest.check_raises "push on full" (Failure "Ring.push: full") (fun () ->
      Ring.push r 2)

let test_ring_push_overwriting () =
  let r = Ring.create ~capacity:3 in
  Alcotest.(check (option int)) "room" None (Ring.push_overwriting r 1);
  Alcotest.(check (option int)) "room" None (Ring.push_overwriting r 2);
  Alcotest.(check (option int)) "room" None (Ring.push_overwriting r 3);
  Alcotest.(check (option int)) "evicts oldest" (Some 1) (Ring.push_overwriting r 4);
  Alcotest.(check (option int)) "evicts next" (Some 2) (Ring.push_overwriting r 5);
  Alcotest.(check (list int)) "keeps newest" [ 3; 4; 5 ] (Ring.to_list r);
  Alcotest.(check bool) "still full" true (Ring.is_full r)

let test_ring_advance () =
  let r = Ring.create ~capacity:4 in
  List.iter (Ring.push r) [ 1; 2; 3 ];
  Ring.advance r;
  Alcotest.(check (list int)) "rotated" [ 2; 3; 1 ] (Ring.to_list r);
  let single = Ring.create ~capacity:4 in
  Ring.push single 9;
  Ring.advance single;
  Alcotest.(check (list int)) "single element unchanged" [ 9 ] (Ring.to_list single)

let test_ring_remove_where () =
  let r = Ring.create ~capacity:4 in
  List.iter (Ring.push r) [ 10; 20; 30; 40 ];
  let removed = Ring.remove_where r (fun x -> x = 30) in
  Alcotest.(check (option int)) "removed element" (Some 30) removed;
  Alcotest.(check (list int)) "order preserved" [ 10; 20; 40 ] (Ring.to_list r);
  Alcotest.(check (option int)) "miss" None (Ring.remove_where r (fun x -> x = 99));
  Ring.push r 50;
  Alcotest.(check (list int)) "reusable after removal" [ 10; 20; 40; 50 ] (Ring.to_list r)

let prop_ring_model =
  let open QCheck in
  Test.make ~name:"Ring matches Queue model" ~count:200
    (list (int_range 0 2))
    (fun ops ->
      let r = Ring.create ~capacity:8 in
      let q = Queue.create () in
      let counter = ref 0 in
      List.iter
        (fun op ->
          match op with
          | 0 ->
            if not (Ring.is_full r) then begin
              incr counter;
              Ring.push r !counter;
              Queue.push !counter q
            end
          | 1 ->
            let a = Ring.pop r in
            let b = if Queue.is_empty q then None else Some (Queue.pop q) in
            assert (a = b)
          | _ ->
            Ring.advance r;
            if Queue.length q > 1 then Queue.push (Queue.pop q) q)
        ops;
      Ring.to_list r = List.of_seq (Queue.to_seq q))

(* ---------- Stats ---------- *)

let feq = Alcotest.float 1e-9

let test_stats_mean () =
  Alcotest.check feq "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.check feq "empty mean" 0.0 (Stats.mean [])

let test_stats_geomean () =
  Alcotest.check feq "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.check feq "with nonpositive" 0.0 (Stats.geomean [ 1.0; 0.0 ])

let test_stats_percentile () =
  let xs = [ 5.0; 1.0; 3.0; 2.0; 4.0 ] in
  Alcotest.check feq "median" 3.0 (Stats.percentile 50.0 xs);
  Alcotest.check feq "max" 5.0 (Stats.percentile 100.0 xs);
  Alcotest.check feq "min-ish" 1.0 (Stats.percentile 1.0 xs);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty list")
    (fun () -> ignore (Stats.percentile 50.0 []))

let test_stats_stddev () =
  Alcotest.check feq "constant" 0.0 (Stats.stddev [ 2.0; 2.0; 2.0 ]);
  Alcotest.check feq "single" 0.0 (Stats.stddev [ 42.0 ]);
  Alcotest.check (Alcotest.float 1e-6) "known" 2.0 (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_stats_clamp_ratio () =
  Alcotest.check feq "clamp low" 0.0 (Stats.clamp ~lo:0.0 ~hi:1.0 (-5.0));
  Alcotest.check feq "clamp high" 1.0 (Stats.clamp ~lo:0.0 ~hi:1.0 5.0);
  Alcotest.check feq "clamp pass" 0.5 (Stats.clamp ~lo:0.0 ~hi:1.0 0.5);
  Alcotest.check feq "ratio" 0.5 (Stats.ratio 1 2);
  Alcotest.check feq "ratio by zero" 0.0 (Stats.ratio 1 0)

let test_counter () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c "a";
  Stats.Counter.add c "a" 4;
  Stats.Counter.incr c "b";
  Alcotest.(check int) "a" 5 (Stats.Counter.get c "a");
  Alcotest.(check int) "b" 1 (Stats.Counter.get c "b");
  Alcotest.(check int) "missing" 0 (Stats.Counter.get c "zz");
  Alcotest.(check (list (pair string int))) "sorted listing"
    [ ("a", 5); ("b", 1) ] (Stats.Counter.to_list c)

(* ---------- Table_fmt ---------- *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_table_fmt_render () =
  let t =
    Table_fmt.create ~title:"T"
      ~columns:[ ("name", Table_fmt.Left); ("n", Table_fmt.Right) ]
  in
  Table_fmt.add_row t [ "alpha"; "1" ];
  Table_fmt.add_separator t;
  Table_fmt.add_row t [ "b"; "100" ];
  let s = Table_fmt.render t in
  Alcotest.(check bool) "contains title" true (String.length s > 0 && String.sub s 0 1 = "T");
  Alcotest.(check bool) "right-aligns numbers" true (contains ~needle:"|   1 |" s)

let test_table_fmt_arity () =
  let t = Table_fmt.create ~title:"T" ~columns:[ ("a", Table_fmt.Left) ] in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Table_fmt.add_row: arity mismatch") (fun () ->
      Table_fmt.add_row t [ "x"; "y" ])

let test_table_fmt_numbers () =
  Alcotest.(check string) "thousands" "57,464" (Table_fmt.fmt_int 57464);
  Alcotest.(check string) "small" "9" (Table_fmt.fmt_int 9);
  Alcotest.(check string) "negative" "-1,234" (Table_fmt.fmt_int (-1234));
  Alcotest.(check string) "percent" "6.7%" (Table_fmt.fmt_percent 0.067);
  Alcotest.(check string) "float" "1.07" (Table_fmt.fmt_float 1.067)

let suite =
  [ Alcotest.test_case "chained table basics" `Quick test_table_basic;
    Alcotest.test_case "find_or_add" `Quick test_table_find_or_add;
    Alcotest.test_case "collision chains" `Quick test_table_collisions;
    Alcotest.test_case "iter and fold" `Quick test_table_iter_fold;
    Alcotest.test_case "lock accounting" `Quick test_table_lock_accounting;
    QCheck_alcotest.to_alcotest prop_table_model;
    Alcotest.test_case "ring FIFO order" `Quick test_ring_fifo;
    Alcotest.test_case "ring push on full" `Quick test_ring_push_full;
    Alcotest.test_case "ring push_overwriting" `Quick test_ring_push_overwriting;
    Alcotest.test_case "ring advance" `Quick test_ring_advance;
    Alcotest.test_case "ring remove_where" `Quick test_ring_remove_where;
    QCheck_alcotest.to_alcotest prop_ring_model;
    Alcotest.test_case "stats mean" `Quick test_stats_mean;
    Alcotest.test_case "stats geomean" `Quick test_stats_geomean;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats stddev" `Quick test_stats_stddev;
    Alcotest.test_case "stats clamp/ratio" `Quick test_stats_clamp_ratio;
    Alcotest.test_case "counters" `Quick test_counter;
    Alcotest.test_case "table render" `Quick test_table_fmt_render;
    Alcotest.test_case "table arity" `Quick test_table_fmt_arity;
    Alcotest.test_case "number formatting" `Quick test_table_fmt_numbers ]
