(* Property-based tests, driven by the csod_sim simulation harness.

   Each former hand-rolled generator loop is now an alphabet sweep: the
   operations, their weights and their model live in lib/sim (Sim_heap,
   Sim_runtime, Sim_fleet, Sim_store), the engine draws the sequences from
   a dedicated PRNG stream, checks the model invariant after every step,
   and a failing sweep prints the automatically shrunk minimal repro as a
   runnable csod.sim.repro/1 line — paste it into a file and re-execute it
   with `csod_run sim --replay FILE`.

   The invariants covered are the same ones the old loops guarded: the
   heap honours a free exactly once and rejects double frees, sparse
   memory round-trips reads through writes with the chunk cache in any
   state (and the page pool hands back zeroed pages — the heap alphabet's
   recycle op), the watch table never holds more armed watchpoints than
   the four debug registers, the persistent store's save/load/merge behave
   as a set, and the fleet's barriers/checkpoint/crash-resume agree with
   an exact model. *)

let sweep pack ~seed ~runs ~ops =
  match Sim.run_packed pack ~seed ~runs ~ops with
  | [] -> ()
  | f :: _ -> Alcotest.failf "%s" (Sim.summary f)

let prop_heap () = sweep (Sim_heap.alphabet ()) ~seed:1000 ~runs:40 ~ops:150
let prop_runtime () = sweep (Sim_runtime.alphabet ()) ~seed:3000 ~runs:25 ~ops:120
let prop_fleet () = sweep (Sim_fleet.alphabet ()) ~seed:5000 ~runs:15 ~ops:60
let prop_store () = sweep (Sim_store.alphabet ()) ~seed:4000 ~runs:25 ~ops:100

(* ------------------------------------------------------------------ *)
(* Legacy regression pin: one hand-rolled seed-printing loop survives, so
   the pre-sim test style (derive everything from one integer, print the
   failing seed) keeps a guard — and so does the exact op mix it used. *)

let legacy_heap_no_double_free () =
  for case = 0 to 9 do
    let seed = 1000 + case in
    let g = Prng.create ~seed in
    let machine = Machine.create ~seed () in
    let heap = Heap.create machine in
    let live = Hashtbl.create 16 in
    let freed = ref [] in
    for step = 1 to 200 do
      let r = Prng.int g 100 in
      if r < 50 || Hashtbl.length live = 0 then begin
        let size = 1 + Prng.int g 512 in
        let p = Heap.malloc heap size in
        if Hashtbl.mem live p then
          Alcotest.failf "step %d: malloc returned live pointer %#x (repro seed=%d)"
            step p seed;
        Hashtbl.replace live p size
      end
      else if r < 85 then begin
        let ptrs = List.sort compare (Hashtbl.fold (fun p _ acc -> p :: acc) live []) in
        let p = List.nth ptrs (Prng.int g (List.length ptrs)) in
        Heap.free heap p;
        Hashtbl.remove live p;
        freed := p :: !freed
      end
      else begin
        match !freed with
        | [] -> ()
        | p :: _ when Heap.is_live heap p -> () (* block recycled since *)
        | p :: _ -> (
          match Heap.free heap p with
          | () ->
            Alcotest.failf "step %d: double free of %#x accepted (repro seed=%d)"
              step p seed
          | exception Heap.Error _ -> ())
      end
    done;
    if Heap.live_objects heap <> Hashtbl.length live then
      Alcotest.failf "live count %d, model %d (repro seed=%d)"
        (Heap.live_objects heap) (Hashtbl.length live) seed
  done

(* ------------------------------------------------------------------ *)
(* Differential-testing net: random well-typed MiniC programs executed
   under both engines (AST interpreter vs bytecode VM), asserting every
   observable is bit-identical — stdout, cycle total, allocation/free
   stream (sizes, callsites, stack offsets, returned pointers), detection
   reports, machine-PRNG position, access/trap counts, step count, return
   value, and any crash message.  A failure prints the repro seed and the
   full generated program. *)

(* Seeded generator.  Programs are built scope-correctly (declarations
   tracked per block, calls only to earlier-defined functions, loops
   bounded by a fresh counter), then Sema filters the rest: a generated
   program that fails to load is skipped, and the sweep asserts the yield
   stays high enough to mean something. *)
let gen_program ~seed =
  let g = Prng.create ~seed in
  let buf = Buffer.create 1024 in
  let fresh = ref 0 in
  let name p =
    incr fresh;
    Printf.sprintf "%s%d" p !fresh
  in
  let pick xs = List.nth xs (Prng.int g (List.length xs)) in
  let binops =
    [| "+"; "-"; "*"; "<"; "<="; ">"; ">="; "=="; "!="; "&"; "|"; "^";
       "<<"; ">>"; "&&"; "||" |]
  in
  let rec expr vars ptrs funcs depth =
    let leaf () =
      match Prng.int g 10 with
      | 0 | 1 | 2 | 3 -> string_of_int (Prng.int g 64)
      | 4 | 5 | 6 -> (match vars with [] -> string_of_int (Prng.int g 8) | _ -> pick vars)
      | 7 -> Printf.sprintf "input(%d)" (Prng.int g 4)
      | 8 -> "input_len()"
      | _ -> Printf.sprintf "rand(%d)" (1 + Prng.int g 9)
    in
    if depth = 0 then leaf ()
    else
      match Prng.int g 16 with
      | 0 | 1 | 2 | 3 | 4 | 5 ->
        Printf.sprintf "(%s %s %s)"
          (expr vars ptrs funcs (depth - 1))
          binops.(Prng.int g (Array.length binops))
          (expr vars ptrs funcs (depth - 1))
      | 6 ->
        (* division / modulo: mostly-safe denominators, occasionally an
           arbitrary expression — a zero crashes both engines at the same
           location with the same message, which the sweep checks too *)
        let den =
          if Prng.int g 5 = 0 then expr vars ptrs funcs (depth - 1)
          else string_of_int (1 + Prng.int g 9)
        in
        Printf.sprintf "(%s %s %s)"
          (expr vars ptrs funcs (depth - 1))
          (if Prng.int g 2 = 0 then "/" else "%")
          den
      | 7 -> Printf.sprintf "(-%s)" (expr vars ptrs funcs (depth - 1))
      | 8 -> Printf.sprintf "(!%s)" (expr vars ptrs funcs (depth - 1))
      | 9 when ptrs <> [] -> Printf.sprintf "%s[%d]" (pick ptrs) (Prng.int g 5)
      | 10 when ptrs <> [] ->
        Printf.sprintf "load8(%s, %d)" (pick ptrs) (Prng.int g 16)
      | 11 when funcs <> [] ->
        let f, arity = pick funcs in
        Printf.sprintf "%s(%s)" f
          (String.concat ", "
             (List.init arity (fun _ -> expr vars ptrs funcs (depth - 1))))
      | _ -> leaf ()
  in
  (* One block: vars/ptrs snapshots from the enclosing scope, own
     declarations kept local so nothing leaks into a sibling block. *)
  let rec gen_block vars0 ptrs0 funcs ~in_loop ~depth =
    let vars = ref vars0 and ptrs = ref ptrs0 in
    let e d = expr !vars !ptrs funcs d in
    for _ = 1 to 1 + Prng.int g 4 do
      match Prng.int g 21 with
      | 0 | 1 | 2 ->
        let v = name "v" in
        Buffer.add_string buf (Printf.sprintf "var %s = %s;\n" v (e 2));
        vars := v :: !vars
      | 3 | 4 when !vars <> [] ->
        Buffer.add_string buf (Printf.sprintf "%s = %s;\n" (pick !vars) (e 2))
      | 5 ->
        let p = name "p" in
        Buffer.add_string buf
          (if Prng.int g 3 = 0 then
             Printf.sprintf "var %s = calloc(%d, 8);\n" p (4 + Prng.int g 5)
           else Printf.sprintf "var %s = malloc(%d);\n" p (32 + (8 * Prng.int g 8)));
        ptrs := p :: !ptrs;
        vars := p :: !vars
      | 6 when !ptrs <> [] ->
        (* index 0..5 on a >=32-byte object: mostly in bounds, sometimes
           past the end — the detection paths must agree too *)
        Buffer.add_string buf
          (Printf.sprintf "%s[%d] = %s;\n" (pick !ptrs) (Prng.int g 6) (e 2))
      | 7 when !ptrs <> [] ->
        Buffer.add_string buf
          (Printf.sprintf "store8(%s, %d, %s);\n" (pick !ptrs) (Prng.int g 16) (e 1))
      | 8 when !ptrs <> [] ->
        Buffer.add_string buf
          (Printf.sprintf "memset(%s, %s, %d);\n" (pick !ptrs) (e 1) (Prng.int g 16))
      | 9 when List.length !ptrs >= 2 ->
        Buffer.add_string buf
          (Printf.sprintf "memcpy(%s, %s, %d);\n" (pick !ptrs) (pick !ptrs)
             (Prng.int g 16))
      | 10 when !ptrs <> [] ->
        let p = pick !ptrs in
        Buffer.add_string buf (Printf.sprintf "free(%s);\n" p);
        ptrs := List.filter (( <> ) p) !ptrs
      | 11 ->
        Buffer.add_string buf
          (Printf.sprintf "print(\"t%d\", %s);\n" (Prng.int g 10) (e 1))
      | 12 ->
        Buffer.add_string buf (Printf.sprintf "sleep_ms(%d);\n" (Prng.int g 3))
      | 13 ->
        Buffer.add_string buf (Printf.sprintf "work(%d);\n" (Prng.int g 64))
      | 14 when depth > 0 ->
        Buffer.add_string buf (Printf.sprintf "if (%s) {\n" (e 2));
        gen_block !vars !ptrs funcs ~in_loop ~depth:(depth - 1);
        if Prng.int g 2 = 0 then begin
          Buffer.add_string buf "} else {\n";
          gen_block !vars !ptrs funcs ~in_loop ~depth:(depth - 1)
        end;
        Buffer.add_string buf "}\n"
      | 15 when depth > 0 ->
        (* bounded while: the counter increments first thing, so a
           continue in the body cannot stall the loop *)
        let w = name "w" in
        Buffer.add_string buf
          (Printf.sprintf "var %s = 0;\nwhile (%s < %d) {\n%s = %s + 1;\n" w w
             (1 + Prng.int g 5) w w);
        gen_block (w :: !vars) !ptrs funcs ~in_loop:true ~depth:(depth - 1);
        Buffer.add_string buf "}\n"
      | 16 when depth > 0 ->
        let i = name "i" in
        Buffer.add_string buf
          (Printf.sprintf "for (var %s = 0; %s < %d; %s = %s + 1) {\n" i i
             (1 + Prng.int g 5) i i);
        gen_block (i :: !vars) !ptrs funcs ~in_loop:true ~depth:(depth - 1);
        Buffer.add_string buf "}\n"
      | 17 when in_loop ->
        Buffer.add_string buf
          (if Prng.int g 2 = 0 then "break;\n" else "continue;\n")
      | 18 when funcs <> [] ->
        let f, arity = pick funcs in
        let args =
          String.concat ", " (List.init arity (fun _ -> e 1))
        in
        Buffer.add_string buf
          (if Prng.int g 3 = 0 then
             Printf.sprintf "spawn(\"%s\"%s);\n" f
               (if arity = 0 then "" else ", " ^ args)
           else Printf.sprintf "%s(%s);\n" f args)
      | 19 when vars0 <> [] && Prng.int g 2 = 0 && depth > 0 ->
        (* shadow an enclosing-scope variable in a nested block: the VM's
           static slot resolution must agree with the interpreter's scope
           chain *)
        let v = pick vars0 in
        Buffer.add_string buf
          (Printf.sprintf "if (1) {\nvar %s = %s;\nprint(\"s\", %s);\n}\n" v
             (e 1) v)
      | _ -> Buffer.add_string buf (Printf.sprintf "%s;\n" (e 2))
    done
  in
  let funcs = ref [] in
  for i = 1 to Prng.int g 3 do
    let fname = Printf.sprintf "f%d" i in
    let arity = Prng.int g 3 in
    let params = List.init arity (fun j -> Printf.sprintf "a%d_%d" i j) in
    Buffer.add_string buf
      (Printf.sprintf "fn %s(%s) {\n" fname (String.concat ", " params));
    gen_block params [] !funcs ~in_loop:false ~depth:1;
    Buffer.add_string buf
      (Printf.sprintf "return %s;\n}\n" (expr params [] !funcs 1));
    funcs := (fname, arity) :: !funcs
  done;
  Buffer.add_string buf "fn main() {\n";
  gen_block [] [] !funcs ~in_loop:false ~depth:2;
  Buffer.add_string buf
    (Printf.sprintf "return %s;\n}\n" (expr [] [] !funcs 1));
  Buffer.contents buf

(* Everything both engines are contractually required to agree on. *)
type dobs = {
  d_cycles : int;
  d_output : string;
  d_crashed : string option;
  d_steps : int;
  d_rv : int;
  d_allocs : (int * int * int * int) list;
      (* size, callsite, stack offset, returned pointer *)
  d_frees : int list;
  d_reports : string list;
  d_prng : int64; (* machine-PRNG position: same draws in the same order *)
  d_accesses : int;
  d_traps : int;
}

let d_observe engine program ~inputs ~seed ~step_limit =
  let machine = Machine.create ~seed () in
  let heap = Heap.create machine in
  let inst = Config.instantiate Config.csod_default ~machine ~heap ~seed () in
  let allocs = ref [] and frees = ref [] in
  let tool = inst.Config.tool in
  let rec_tool =
    { tool with
      Tool.malloc =
        (fun ~size ~ctx ->
          let p = tool.Tool.malloc ~size ~ctx in
          allocs :=
            (size, ctx.Alloc_ctx.callsite, ctx.Alloc_ctx.stack_offset, p)
            :: !allocs;
          p);
      free =
        (fun ~ptr ->
          frees := ptr :: !frees;
          tool.Tool.free ~ptr) }
  in
  let buf = Buffer.create 64 in
  let rv = ref 0 and steps = ref 0 in
  let crashed =
    try
      let r =
        Engine.run ~engine ~machine ~tool:rec_tool ~program ~inputs
          ~app_seed:seed ~step_limit ()
      in
      Buffer.add_string buf r.Interp.output;
      rv := r.Interp.return_value;
      steps := r.Interp.steps;
      None
    with
    | Interp.Runtime_error (msg, loc) ->
      Some (Printf.sprintf "%s: %s" (Srcloc.to_string loc) msg)
    | Heap.Error msg -> Some msg
  in
  inst.Config.finish ();
  let reports =
    match inst.Config.csod with
    | Some rt ->
      List.map
        (fun r ->
          Format.asprintf "%a"
            (Report.pp ~symbolize:(Program.symbolize program))
            r)
        (Runtime.detections rt)
    | None -> []
  in
  let o =
    { d_cycles = Clock.cycles (Machine.clock machine);
      d_output = Buffer.contents buf;
      d_crashed = crashed;
      d_steps = !steps;
      d_rv = !rv;
      d_allocs = List.rev !allocs;
      d_frees = List.rev !frees;
      d_reports = reports;
      d_prng = Prng.bits64 (Machine.rng machine);
      d_accesses = Machine.access_count machine;
      d_traps = Machine.trap_count machine }
  in
  Sparse_mem.release (Machine.mem machine);
  o

let describe_diff a b =
  let out = Buffer.create 128 in
  let p fmt = Printf.ksprintf (Buffer.add_string out) fmt in
  if a.d_cycles <> b.d_cycles then p "\n  cycles %d vs %d" a.d_cycles b.d_cycles;
  if a.d_output <> b.d_output then p "\n  output %S vs %S" a.d_output b.d_output;
  if a.d_crashed <> b.d_crashed then
    p "\n  crash %s vs %s"
      (Option.value ~default:"-" a.d_crashed)
      (Option.value ~default:"-" b.d_crashed);
  if a.d_steps <> b.d_steps then p "\n  steps %d vs %d" a.d_steps b.d_steps;
  if a.d_rv <> b.d_rv then p "\n  return %d vs %d" a.d_rv b.d_rv;
  if a.d_allocs <> b.d_allocs then
    p "\n  alloc streams differ (%d vs %d allocations)"
      (List.length a.d_allocs) (List.length b.d_allocs);
  if a.d_frees <> b.d_frees then p "\n  free streams differ";
  if a.d_reports <> b.d_reports then
    p "\n  reports differ (%d vs %d)" (List.length a.d_reports)
      (List.length b.d_reports);
  if a.d_prng <> b.d_prng then
    p "\n  machine PRNG position %Ld vs %Ld" a.d_prng b.d_prng;
  if a.d_accesses <> b.d_accesses then
    p "\n  access counts %d vs %d" a.d_accesses b.d_accesses;
  if a.d_traps <> b.d_traps then p "\n  trap counts %d vs %d" a.d_traps b.d_traps;
  Buffer.contents out

let load_gen source =
  Program.load [ { Program.file = "gen.mc"; module_name = "gen"; source } ]

let gen_inputs ~seed =
  let gi = Prng.create ~seed:(seed lxor 0x5eed) in
  Array.init 4 (fun _ -> Prng.int gi 256)

let diff_sweep_engines () =
  let compared = ref 0 and rejected = ref 0 in
  for seed = 9000 to 9079 do
    let source = gen_program ~seed in
    match load_gen source with
    | Error _ -> incr rejected
    | Ok program ->
      incr compared;
      let inputs = gen_inputs ~seed in
      let a = d_observe Engine.Interp program ~inputs ~seed ~step_limit:50_000 in
      let b = d_observe Engine.Vm program ~inputs ~seed ~step_limit:50_000 in
      if a <> b then
        Alcotest.failf
          "engines diverge (repro seed=%d):%s\n--- program ---\n%s" seed
          (describe_diff a b) source
  done;
  (* The generator is scope-correct by construction; if Sema starts
     rejecting most of its output, the sweep is no longer testing much. *)
  if !compared < 60 then
    Alcotest.failf "generator yield too low: %d/80 programs passed Sema (%d rejected)"
      !compared !rejected

(* The same sweep must catch the planted vm-buggy-cycles bug (one extra
   cycle per taken backward jump): proof the net is tight enough to see a
   single-cycle divergence.  test_minic.ml pins the shrunk repro. *)
let diff_sweep_catches_planted_bug () =
  Vm.buggy_cycles := true;
  Fun.protect ~finally:(fun () -> Vm.buggy_cycles := false) @@ fun () ->
  let caught = ref false in
  (try
     for seed = 9000 to 9029 do
       let source = gen_program ~seed in
       match load_gen source with
       | Error _ -> ()
       | Ok program ->
         let inputs = gen_inputs ~seed in
         let a =
           d_observe Engine.Interp program ~inputs ~seed ~step_limit:50_000
         in
         let b = d_observe Engine.Vm program ~inputs ~seed ~step_limit:50_000 in
         if a <> b then begin
           caught := true;
           raise Exit
         end
     done
   with Exit -> ());
  if not !caught then
    Alcotest.fail
      "differential sweep failed to catch the planted vm-buggy-cycles bug"

let suite =
  [ Alcotest.test_case "sim sweep: heap + sparse memory" `Quick prop_heap;
    Alcotest.test_case "sim sweep: runtime watchpoints" `Quick prop_runtime;
    Alcotest.test_case "sim sweep: fleet barriers + crash-resume" `Quick
      prop_fleet;
    Alcotest.test_case "sim sweep: persist save/load/merge" `Quick prop_store;
    Alcotest.test_case "legacy pin: heap free honoured exactly once" `Quick
      legacy_heap_no_double_free;
    Alcotest.test_case "differential sweep: interp vs vm bit-identical" `Quick
      diff_sweep_engines;
    Alcotest.test_case "differential sweep catches vm-buggy-cycles" `Quick
      diff_sweep_catches_planted_bug ]
