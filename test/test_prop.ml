(* Property-based tests driven by the repo's own deterministic PRNG — no
   external generator framework.  Each property runs a batch of randomized
   cases; every case derives its whole sequence from one integer seed, and
   a failing check names that seed, so the exact case replays by
   constructing [Prng.create ~seed] with the printed value.

   The properties guard the invariants the hot-path optimizations lean on:
   the heap rejects double frees, sparse memory round-trips reads through
   writes with the chunk cache in any state (and the page pool hands back
   zeroed pages), the watch table never holds more armed watchpoints than
   the four debug registers, and the persistent evidence store's
   save/load/merge behave as a set. *)

(* ------------------------------------------------------------------ *)
(* Heap: a free is honoured exactly once                               *)

let prop_heap_no_double_free () =
  for case = 0 to 39 do
    let seed = 1000 + case in
    let g = Prng.create ~seed in
    let machine = Machine.create ~seed () in
    let heap = Heap.create machine in
    let live = Hashtbl.create 16 in
    let freed = ref [] in
    for step = 1 to 200 do
      let r = Prng.int g 100 in
      if r < 50 || Hashtbl.length live = 0 then begin
        let size = 1 + Prng.int g 512 in
        let p = Heap.malloc heap size in
        if Hashtbl.mem live p then
          Alcotest.failf "step %d: malloc returned live pointer %#x (repro seed=%d)"
            step p seed;
        Hashtbl.replace live p size
      end
      else if r < 85 then begin
        let ptrs = List.sort compare (Hashtbl.fold (fun p _ acc -> p :: acc) live []) in
        let p = List.nth ptrs (Prng.int g (List.length ptrs)) in
        Heap.free heap p;
        Hashtbl.remove live p;
        freed := p :: !freed
      end
      else begin
        match !freed with
        | [] -> ()
        | p :: _ when Heap.is_live heap p -> () (* block recycled since *)
        | p :: _ -> (
          match Heap.free heap p with
          | () ->
            Alcotest.failf "step %d: double free of %#x accepted (repro seed=%d)"
              step p seed
          | exception Heap.Error _ -> ())
      end
    done;
    Hashtbl.iter
      (fun p _ ->
        if not (Heap.is_live heap p) then
          Alcotest.failf "live pointer %#x lost (repro seed=%d)" p seed)
      live;
    if Heap.live_objects heap <> Hashtbl.length live then
      Alcotest.failf "live count %d, model %d (repro seed=%d)"
        (Heap.live_objects heap) (Hashtbl.length live) seed
  done

(* ------------------------------------------------------------------ *)
(* Sparse memory: reads round-trip writes, cache on, off, or toggling  *)

let prop_sparse_roundtrip () =
  for case = 0 to 29 do
    let seed = 2000 + case in
    let g = Prng.create ~seed in
    let mem = Sparse_mem.create () in
    let model = Hashtbl.create 256 in
    let byte a = try Hashtbl.find model a with Not_found -> 0 in
    (* Cluster addresses near chunk boundaries so word reads and writes
       regularly straddle two chunks. *)
    let rand_addr () =
      let base = Prng.int g 4 * 65536 in
      let off =
        match Prng.int g 3 with
        | 0 -> Prng.int g 65536
        | 1 -> 65528 + Prng.int g 16
        | _ -> Prng.int g 256
      in
      base + off
    in
    for step = 1 to 600 do
      (* The cache must be semantically invisible: flip it at random. *)
      if Prng.int g 100 < 5 then Sparse_mem.set_cache mem (Prng.bool g);
      match Prng.int g 5 with
      | 0 ->
        let a = rand_addr () and v = Prng.int g 256 in
        Sparse_mem.write_u8 mem a v;
        Hashtbl.replace model a v
      | 1 ->
        let a = rand_addr () and v = Prng.bits64 g in
        Sparse_mem.write_u64 mem a v;
        for i = 0 to 7 do
          Hashtbl.replace model (a + i)
            (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
        done
      | 2 ->
        let a = rand_addr () in
        let got = Sparse_mem.read_u8 mem a in
        if got <> byte a then
          Alcotest.failf "step %d: read_u8 %#x = %d, model %d (repro seed=%d)"
            step a got (byte a) seed
      | 3 ->
        let a = rand_addr () in
        let got = Sparse_mem.read_u64 mem a in
        let expect = ref 0L in
        for i = 7 downto 0 do
          expect := Int64.logor (Int64.shift_left !expect 8) (Int64.of_int (byte (a + i)))
        done;
        if got <> !expect then
          Alcotest.failf "step %d: read_u64 %#x = %Ld, model %Ld (repro seed=%d)"
            step a got !expect seed
      | _ ->
        let a = rand_addr () and len = Prng.int g 300 and v = Prng.int g 256 in
        Sparse_mem.fill mem a len v;
        for i = 0 to len - 1 do
          Hashtbl.replace model (a + i) v
        done
    done;
    (* Pool hygiene: release this memory's (dirty) chunks, then force a
       fresh memory to materialize chunks — which reuses pooled pages —
       and check untouched bytes still read as zero. *)
    Sparse_mem.release mem;
    let m2 = Sparse_mem.create () in
    for _ = 1 to 8 do
      let a = rand_addr () in
      Sparse_mem.write_u8 m2 a 0x5A;
      for _ = 1 to 16 do
        let b = (a / 65536 * 65536) + Prng.int g 65536 in
        if b <> a && Sparse_mem.read_u8 m2 b <> 0 then
          Alcotest.failf "pooled page not zeroed at %#x (repro seed=%d)" b seed
      done
    done;
    Sparse_mem.release m2
  done

(* ------------------------------------------------------------------ *)
(* Watch table: never more armed watchpoints than debug registers      *)

let prop_watch_slots_bounded () =
  for case = 0 to 19 do
    let seed = 3000 + case in
    let g = Prng.create ~seed in
    let machine = Machine.create ~seed () in
    let heap = Heap.create machine in
    let rt = Runtime.create ~seed ~machine ~heap () in
    let tool = Runtime.tool rt in
    let live = ref [] in
    for step = 1 to 300 do
      (if Prng.int g 100 < 60 || !live = [] then begin
         let ctx =
           Alloc_ctx.synthetic ~callsite:(Prng.int g 16)
             ~stack_offset:(Prng.int g 4) ()
         in
         let p = tool.Tool.malloc ~size:(8 + Prng.int g 128) ~ctx in
         live := p :: !live
       end
       else begin
         let n = Prng.int g (List.length !live) in
         let p = List.nth !live n in
         live := List.filteri (fun i _ -> i <> n) !live;
         tool.Tool.free ~ptr:p
       end);
      let armed = Hw_breakpoint.armed_count (Machine.hw machine) in
      if armed > 4 then
        Alcotest.failf "step %d: %d armed watchpoints (repro seed=%d)" step
          armed seed;
      let entries = List.length (Watch_table.live (Runtime.watch_table rt)) in
      if entries <> armed then
        Alcotest.failf
          "step %d: watch table holds %d, hardware arms %d (repro seed=%d)"
          step entries armed seed
    done
  done

(* ------------------------------------------------------------------ *)
(* Persist: save/load round-trips; merge behaves as key-set union      *)

let prop_persist_roundtrip () =
  let tmp = Filename.temp_file "csod_prop" ".store" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      for case = 0 to 19 do
        let seed = 4000 + case in
        let g = Prng.create ~seed in
        let fill s n =
          for _ = 1 to n do
            Persist.add s (Prng.int g 1000, Prng.int g 64)
          done
        in
        let s1 = Persist.create () and s2 = Persist.create () in
        fill s1 (Prng.int g 40);
        fill s2 (Prng.int g 40);
        Persist.save s1 tmp;
        let loaded = Persist.load tmp in
        if Persist.keys loaded <> Persist.keys s1 then
          Alcotest.failf "save/load changed the key set (repro seed=%d)" seed;
        let a = Persist.copy s1 and b = Persist.copy s2 in
        Persist.merge a s2;
        Persist.merge b s1;
        if Persist.keys a <> Persist.keys b then
          Alcotest.failf "merge is not commutative (repro seed=%d)" seed;
        let union = List.sort_uniq compare (Persist.keys s1 @ Persist.keys s2) in
        if Persist.keys a <> union then
          Alcotest.failf "merge is not the key-set union (repro seed=%d)" seed;
        Persist.merge a s2;
        if Persist.keys a <> union then
          Alcotest.failf "merge is not idempotent (repro seed=%d)" seed;
        List.iter
          (fun k ->
            if not (Persist.mem a k) then
              Alcotest.failf "merged store misses a key (repro seed=%d)" seed)
          union
      done)

let suite =
  [ Alcotest.test_case "heap: free honoured exactly once" `Quick
      prop_heap_no_double_free;
    Alcotest.test_case "sparse memory: reads round-trip writes" `Quick
      prop_sparse_roundtrip;
    Alcotest.test_case "watch table: at most 4 armed" `Quick
      prop_watch_slots_bounded;
    Alcotest.test_case "persist: save/load/merge as a set" `Quick
      prop_persist_roundtrip ]
