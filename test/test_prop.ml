(* Property-based tests, driven by the csod_sim simulation harness.

   Each former hand-rolled generator loop is now an alphabet sweep: the
   operations, their weights and their model live in lib/sim (Sim_heap,
   Sim_runtime, Sim_fleet, Sim_store), the engine draws the sequences from
   a dedicated PRNG stream, checks the model invariant after every step,
   and a failing sweep prints the automatically shrunk minimal repro as a
   runnable csod.sim.repro/1 line — paste it into a file and re-execute it
   with `csod_run sim --replay FILE`.

   The invariants covered are the same ones the old loops guarded: the
   heap honours a free exactly once and rejects double frees, sparse
   memory round-trips reads through writes with the chunk cache in any
   state (and the page pool hands back zeroed pages — the heap alphabet's
   recycle op), the watch table never holds more armed watchpoints than
   the four debug registers, the persistent store's save/load/merge behave
   as a set, and the fleet's barriers/checkpoint/crash-resume agree with
   an exact model. *)

let sweep pack ~seed ~runs ~ops =
  match Sim.run_packed pack ~seed ~runs ~ops with
  | [] -> ()
  | f :: _ -> Alcotest.failf "%s" (Sim.summary f)

let prop_heap () = sweep (Sim_heap.alphabet ()) ~seed:1000 ~runs:40 ~ops:150
let prop_runtime () = sweep (Sim_runtime.alphabet ()) ~seed:3000 ~runs:25 ~ops:120
let prop_fleet () = sweep (Sim_fleet.alphabet ()) ~seed:5000 ~runs:15 ~ops:60
let prop_store () = sweep (Sim_store.alphabet ()) ~seed:4000 ~runs:25 ~ops:100

(* ------------------------------------------------------------------ *)
(* Legacy regression pin: one hand-rolled seed-printing loop survives, so
   the pre-sim test style (derive everything from one integer, print the
   failing seed) keeps a guard — and so does the exact op mix it used. *)

let legacy_heap_no_double_free () =
  for case = 0 to 9 do
    let seed = 1000 + case in
    let g = Prng.create ~seed in
    let machine = Machine.create ~seed () in
    let heap = Heap.create machine in
    let live = Hashtbl.create 16 in
    let freed = ref [] in
    for step = 1 to 200 do
      let r = Prng.int g 100 in
      if r < 50 || Hashtbl.length live = 0 then begin
        let size = 1 + Prng.int g 512 in
        let p = Heap.malloc heap size in
        if Hashtbl.mem live p then
          Alcotest.failf "step %d: malloc returned live pointer %#x (repro seed=%d)"
            step p seed;
        Hashtbl.replace live p size
      end
      else if r < 85 then begin
        let ptrs = List.sort compare (Hashtbl.fold (fun p _ acc -> p :: acc) live []) in
        let p = List.nth ptrs (Prng.int g (List.length ptrs)) in
        Heap.free heap p;
        Hashtbl.remove live p;
        freed := p :: !freed
      end
      else begin
        match !freed with
        | [] -> ()
        | p :: _ when Heap.is_live heap p -> () (* block recycled since *)
        | p :: _ -> (
          match Heap.free heap p with
          | () ->
            Alcotest.failf "step %d: double free of %#x accepted (repro seed=%d)"
              step p seed
          | exception Heap.Error _ -> ())
      end
    done;
    if Heap.live_objects heap <> Hashtbl.length live then
      Alcotest.failf "live count %d, model %d (repro seed=%d)"
        (Heap.live_objects heap) (Hashtbl.length live) seed
  done

let suite =
  [ Alcotest.test_case "sim sweep: heap + sparse memory" `Quick prop_heap;
    Alcotest.test_case "sim sweep: runtime watchpoints" `Quick prop_runtime;
    Alcotest.test_case "sim sweep: fleet barriers + crash-resume" `Quick
      prop_fleet;
    Alcotest.test_case "sim sweep: persist save/load/merge" `Quick prop_store;
    Alcotest.test_case "legacy pin: heap free honoured exactly once" `Quick
      legacy_heap_no_double_free ]
