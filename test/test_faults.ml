(* Tests for the fault-injection subsystem: plan parsing, injector
   determinism, the no-perturbation pin (an all-zero plan is bit-identical
   to no plan), graceful degradation at every faulted layer, and the hard
   requirement that faulted fleets stay deterministic across domain
   counts. *)

let zziplib () = Option.get (Buggy_app.by_name "Zziplib")
let libhx () = Option.get (Buggy_app.by_name "LibHX")

let plan spec =
  match Fault_plan.of_string spec with
  | Ok p -> p
  | Error m -> Alcotest.failf "plan %S rejected: %s" spec m

(* ---------- Plan parser ---------- *)

let test_plan_parser () =
  let p = plan "seed=7,ebusy=0.25,trap-drop=0.1,persist-torn@0" in
  Alcotest.(check int) "seed" 7 p.Fault_plan.seed;
  Alcotest.(check (float 1e-9)) "ebusy rate" 0.25
    (Fault_plan.rate p Fault_plan.Perf_ebusy);
  Alcotest.(check (float 1e-9)) "unlisted rate is 0" 0.0
    (Fault_plan.rate p Fault_plan.Worker_crash);
  Alcotest.(check (list (float 1e-9))) "one-shot recorded" [ 0.0 ]
    (Fault_plan.oneshots_for p Fault_plan.Persist_torn);
  (* Round trip. *)
  Alcotest.(check bool) "to_string round-trips" true
    (plan (Fault_plan.to_string p) = p);
  Alcotest.(check string) "zero prints as none" "none"
    (Fault_plan.to_string Fault_plan.zero);
  Alcotest.(check bool) "zero-rate entries drop to zero" true
    (Fault_plan.is_zero (plan "ebusy=0.0"));
  (* Rejections. *)
  let rejected s =
    match Fault_plan.of_string s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "rate above 1 rejected" true (rejected "ebusy=1.5");
  Alcotest.(check bool) "negative rate rejected" true (rejected "ebusy=-0.1");
  Alcotest.(check bool) "unknown point rejected" true (rejected "sigsegv=0.5");
  Alcotest.(check bool) "negative one-shot rejected" true
    (rejected "trap-drop@-1");
  Alcotest.(check bool) "bare word rejected" true (rejected "ebusy")

(* ---------- Injector determinism ---------- *)

let test_injector_determinism () =
  let fires salt =
    let inj = Fault_injector.create ~plan:(plan "seed=3,ebusy=0.5") ~salt in
    List.init 100 (fun _ -> Fault_injector.fire inj Fault_plan.Perf_ebusy)
  in
  Alcotest.(check bool) "same (plan, salt): same stream" true
    (fires 1 = fires 1);
  Alcotest.(check bool) "different salt: different stream" true
    (fires 1 <> fires 2);
  (* A zero plan never fires and never draws. *)
  let z = Fault_injector.create ~plan:Fault_plan.zero ~salt:1 in
  Alcotest.(check bool) "zero plan never fires" true
    (List.init 50 (fun _ -> Fault_injector.fire z Fault_plan.Perf_ebusy)
    |> List.for_all not);
  Alcotest.(check int) "nothing tallied" 0 (Fault_injector.total z);
  (* Indexed draws are pure: order and repetition do not matter. *)
  let inj = Fault_injector.create ~plan:(plan "worker-crash=0.5") ~salt:0 in
  let d i a = Fault_injector.indexed inj Fault_plan.Worker_crash ~index:i ~attempt:a in
  let forward = List.init 30 (fun i -> d i 1) in
  let backward = List.rev (List.init 30 (fun i -> d (29 - i) 1)) in
  Alcotest.(check bool) "indexed is order-independent" true (forward = backward);
  Alcotest.(check bool) "indexed is repeatable" true (d 7 1 = d 7 1);
  Alcotest.(check bool) "attempts draw independently" true
    (List.exists (fun i -> d i 1 <> d i 2) (List.init 30 Fun.id))

(* ---------- Forced single-shots (the simulation harness's hook) ---------- *)

let test_force_draws_nothing () =
  (* A forced fire must consume no draw from the plan's PRNG stream: an
     injector that served a forced shot stays bit-identical to a twin that
     never saw one, for every later rate decision. *)
  let p = plan "seed=3,ebusy=0.5" in
  let forced = Fault_injector.create ~plan:p ~salt:1 in
  let twin = Fault_injector.create ~plan:p ~salt:1 in
  Fault_injector.force forced Fault_plan.Perf_ebusy;
  Alcotest.(check bool) "forced shot fires" true
    (Fault_injector.fire forced Fault_plan.Perf_ebusy);
  let later inj =
    List.init 100 (fun _ -> Fault_injector.fire inj Fault_plan.Perf_ebusy)
  in
  Alcotest.(check bool) "later rate decisions unperturbed" true
    (later forced = later twin)

let test_force_is_per_point_and_queued () =
  let inj = Fault_injector.create ~plan:Fault_plan.zero ~salt:1 in
  Fault_injector.force inj Fault_plan.Trap_drop;
  Fault_injector.force inj Fault_plan.Trap_drop;
  (* A different point does not consume the queued shots. *)
  Alcotest.(check bool) "other point unaffected" false
    (Fault_injector.fire inj Fault_plan.Perf_eacces);
  Alcotest.(check bool) "first queued shot fires" true
    (Fault_injector.fire inj Fault_plan.Trap_drop);
  Alcotest.(check bool) "second queued shot fires" true
    (Fault_injector.fire inj Fault_plan.Trap_drop);
  Alcotest.(check bool) "queue exhausted" false
    (Fault_injector.fire inj Fault_plan.Trap_drop);
  Alcotest.(check int) "both shots tallied" 2
    (Fault_injector.count inj Fault_plan.Trap_drop)

(* ---------- No-perturbation pin (mirrors test_obs) ---------- *)

(* Same operation stream against a machine with no injector and a machine
   with an all-zero plan: the next root-PRNG draw and the clock must be
   identical — the fault stream consumed nothing. *)
let drive_runtime faults =
  let machine = Machine.create ~seed:5 ?faults () in
  let heap = Heap.create machine in
  let rt = Runtime.create ~machine ~heap () in
  let tool = Runtime.tool rt in
  let ptrs =
    List.init 40 (fun i ->
        tool.Tool.malloc
          ~size:(16 + (i mod 5 * 8))
          ~ctx:
            (Alloc_ctx.synthetic ~callsite:(1 + (i mod 7))
               ~stack_offset:(i mod 3) ()))
  in
  List.iteri (fun i p -> if i mod 2 = 0 then tool.Tool.free ~ptr:p) ptrs;
  Runtime.finish rt;
  (Prng.bits64 (Machine.rng machine), Clock.cycles (Machine.clock machine))

let test_zero_plan_preserves_prng_stream () =
  let bare_draw, bare_cycles = drive_runtime None in
  let zero_draw, zero_cycles =
    drive_runtime (Some (Fault_injector.create ~plan:Fault_plan.zero ~salt:5))
  in
  Alcotest.(check int64) "identical next PRNG draw" bare_draw zero_draw;
  Alcotest.(check int) "identical clock" bare_cycles zero_cycles

(* Outcome-level: a full execution under the zero plan matches a faultless
   one byte for byte — output, cycles, reports, and the whole metrics
   registry (the fault counters exist in both, at zero). *)
let test_zero_plan_outcome_identical () =
  let app = zziplib () in
  List.iter
    (fun seed ->
      let bare = Execution.run ~app ~config:Config.csod_default ~seed () in
      let zero =
        Execution.run ~app ~config:Config.csod_default ~seed
          ~faults:Fault_plan.zero ()
      in
      Alcotest.(check bool) "same detection" bare.Execution.detected
        zero.Execution.detected;
      Alcotest.(check int) "same cycles" bare.Execution.cycles
        zero.Execution.cycles;
      Alcotest.(check string) "same output" bare.Execution.output
        zero.Execution.output;
      Alcotest.(check int) "same report count"
        (List.length bare.Execution.reports)
        (List.length zero.Execution.reports);
      let counters o =
        Metrics.counters_list (Telemetry.metrics o.Execution.telemetry)
      in
      Alcotest.(check bool) "identical metrics registry" true
        (counters bare = counters zero))
    [ 1; 2; 3 ]

(* ---------- Degradation: EBUSY to canary-only ---------- *)

(* Every perf_event_open fails: the runtime must give up on watchpoints
   (after its retry budget), flip to canary-only mode, and the evidence
   canaries must still detect the over-write — detection survives losing
   the debug registers entirely. *)
let test_ebusy_degrades_to_canary_only () =
  let o =
    Execution.run ~app:(libhx ()) ~config:Config.csod_default ~seed:1
      ~faults:(plan "seed=5,ebusy=1.0") ()
  in
  Alcotest.(check bool) "runtime degraded" true o.Execution.degraded;
  Alcotest.(check bool) "still detected" true o.Execution.detected;
  Alcotest.(check int) "no watchpoint report" 0
    (List.length o.Execution.watchpoint_reports);
  Alcotest.(check bool) "detected by a canary" true
    (List.exists
       (fun r ->
         r.Report.source = Report.Canary_free
         || r.Report.source = Report.Canary_exit)
       o.Execution.reports);
  (match o.Execution.faults with
  | None -> Alcotest.fail "injector missing from the outcome"
  | Some inj ->
    Alcotest.(check bool) "ebusy faults tallied" true
      (Fault_injector.count inj Fault_plan.Perf_ebusy > 0));
  (* The probability transition is recorded in the flight recorder. *)
  let r = Flight_recorder.create ~capacity:4096 () in
  let o2 =
    Flight_recorder.with_recorder r (fun () ->
        Execution.run ~app:(libhx ()) ~config:Config.csod_default ~seed:1
          ~faults:(plan "seed=5,ebusy=1.0") ())
  in
  Alcotest.(check bool) "degraded again" true o2.Execution.degraded;
  Alcotest.(check bool) "degrade transition recorded" true
    (List.exists
       (fun rec_ ->
         match rec_.Flight_recorder.kind with
         | Flight_recorder.Prob { cause = Flight_recorder.Degrade; to_p; _ } ->
           to_p = 0.0
         | _ -> false)
       (Flight_recorder.records r))

(* Contended-but-retryable registers: the store's evidence pins the
   zziplib context, and the bounded EBUSY retry gets a watchpoint onto it
   despite the contention — the over-read is still caught the
   watchpoint way, because evidence made the install non-optional. *)
let test_evidence_pinning_survives_ebusy_contention () =
  let app = zziplib () in
  let store = Persist.create () in
  (match
     Fleet.until_detected ~store ~users:64
       ~execute:(Execution.executor ~app ~config:Config.csod_default ()) ()
   with
  | None -> Alcotest.fail "zziplib not detected within 64 users"
  | Some _ -> ());
  Alcotest.(check bool) "evidence uploaded" true (Persist.count store > 0);
  let o =
    Execution.run ~app ~config:Config.csod_default ~seed:1 ~store
      ~faults:(plan "seed=2,ebusy=0.3") ()
  in
  (match o.Execution.faults with
  | None -> Alcotest.fail "injector missing from the outcome"
  | Some inj ->
    Alcotest.(check bool) "contention actually injected" true
      (Fault_injector.count inj Fault_plan.Perf_ebusy > 0));
  Alcotest.(check bool) "not degraded: retries won" false o.Execution.degraded;
  Alcotest.(check bool) "detected through the contention" true
    o.Execution.detected;
  Alcotest.(check bool) "via a watchpoint" true
    (o.Execution.watchpoint_reports <> [])

(* ---------- Persistence under faults ---------- *)

let with_temp f =
  let path = Filename.temp_file "csod_store" ".txt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let mk_store keys =
  let s = Persist.create () in
  List.iter (Persist.add s) keys;
  s

let test_persist_checksummed_roundtrip () =
  with_temp (fun path ->
      let keys = [ (64, 0); (65, 2); (1031, 1) ] in
      Persist.save (mk_store keys) path;
      let content = In_channel.with_open_text path In_channel.input_all in
      Alcotest.(check bool) "footer present" true
        (let lines =
           String.split_on_char '\n' content
           |> List.filter (fun l -> l <> "")
         in
         match List.rev lines with
         | last :: _ ->
           String.length last > 13 && String.sub last 0 13 = "#csod.store/2"
         | [] -> false);
      let loaded, outcome = Persist.load_result path in
      Alcotest.(check bool) "clean load" true (outcome = Persist.Clean 3);
      Alcotest.(check bool) "keys round-trip" true
        (Persist.keys loaded = List.sort compare keys);
      Alcotest.(check bool) "no tmp file left behind" false
        (Sys.file_exists (path ^ ".tmp")))

let test_persist_footerless_legacy_load () =
  with_temp (fun path ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc "64 0\n1031 1\n");
      let metrics = Metrics.create () in
      let loaded, outcome = Persist.load_result ~metrics path in
      Alcotest.(check bool) "legacy file loads clean" true
        (outcome = Persist.Clean 2);
      Alcotest.(check bool) "keys parsed" true
        (Persist.keys loaded = [ (64, 0); (1031, 1) ]);
      Alcotest.(check int) "no recovery counted" 0
        (Metrics.count (Metrics.counter metrics "persist.recovered")))

let test_persist_missing_vs_empty () =
  with_temp (fun path ->
      Sys.remove path;
      let _, missing = Persist.load_result path in
      Alcotest.(check bool) "missing file" true (missing = Persist.Missing);
      Persist.save (Persist.create ()) path;
      let _, empty = Persist.load_result path in
      Alcotest.(check bool) "empty store is Clean 0, not Missing" true
        (empty = Persist.Clean 0))

let test_persist_truncated_recovers () =
  with_temp (fun path ->
      Persist.save (mk_store [ (64, 0); (65, 2); (1031, 1) ]) path;
      (* Tear the file mid-line: keep the first data line plus a fragment
         of the second, dropping the rest and the footer. *)
      let content = In_channel.with_open_text path In_channel.input_all in
      let cut = String.index content '\n' + 2 in
      Out_channel.with_open_text path (fun oc ->
          output_string oc (String.sub content 0 cut));
      let metrics = Metrics.create () in
      let loaded, outcome = Persist.load_result ~metrics path in
      (match outcome with
      | Persist.Recovered { entries; corrupt_lines } ->
        Alcotest.(check int) "one context salvaged" 1 entries;
        Alcotest.(check bool) "torn line counted" true (corrupt_lines >= 1)
      | _ -> Alcotest.fail "expected Recovered");
      Alcotest.(check bool) "salvaged key still pins" true
        (Persist.mem loaded (64, 0));
      Alcotest.(check bool) "persist.recovered nonzero" true
        (Metrics.count (Metrics.counter metrics "persist.recovered") > 0);
      Alcotest.(check bool) "persist.corrupt_lines nonzero" true
        (Metrics.count (Metrics.counter metrics "persist.corrupt_lines") > 0))

let test_persist_torn_write_recoverable () =
  with_temp (fun path ->
      let keys = List.init 8 (fun i -> (100 + i, i mod 3)) in
      let inj =
        Fault_injector.create ~plan:(plan "seed=11,persist-torn@0") ~salt:0
      in
      Persist.save ~faults:inj (mk_store keys) path;
      Alcotest.(check int) "torn write tallied" 1
        (Fault_injector.count inj Fault_plan.Persist_torn);
      let metrics = Metrics.create () in
      let loaded, outcome = Persist.load_result ~metrics path in
      Alcotest.(check bool) "load survives the torn file" true
        (match outcome with
        | Persist.Recovered _ | Persist.Clean _ -> true
        | Persist.Missing -> false);
      Alcotest.(check bool) "salvaged keys are a subset" true
        (List.for_all (fun k -> List.mem k keys) (Persist.keys loaded));
      Alcotest.(check bool) "something was salvaged" true
        (Persist.count loaded > 0))

let test_persist_enospc_preserves_published_store () =
  with_temp (fun path ->
      Persist.save (mk_store [ (64, 0) ]) path;
      let inj =
        Fault_injector.create ~plan:(plan "seed=4,persist-enospc@0") ~salt:0
      in
      Persist.save ~faults:inj (mk_store [ (64, 0); (65, 1); (66, 2) ]) path;
      Alcotest.(check int) "enospc tallied" 1
        (Fault_injector.count inj Fault_plan.Persist_enospc);
      let loaded, outcome = Persist.load_result path in
      Alcotest.(check bool) "old store intact (atomicity)" true
        (outcome = Persist.Clean 1 && Persist.keys loaded = [ (64, 0) ]);
      Alcotest.(check bool) "abandoned tmp cleaned up" false
        (Sys.file_exists (path ^ ".tmp")))

(* ---------- Pool: join-all and crash requeue ---------- *)

(* Regression for the join-all fix: when one chunk raises, every in-flight
   [f] call must have completed before the exception reaches the caller —
   no sibling domain may still be running user code. *)
let test_pool_joins_all_before_reraise () =
  let active = Atomic.make 0 in
  let spin () =
    (* A busy wait long enough that siblings are mid-flight when index 5
       raises. *)
    let x = ref 0 in
    for i = 1 to 2_000_000 do
      x := !x + i
    done;
    Sys.opaque_identity !x
  in
  let raised =
    try
      ignore
        (Pool.map ~domains:4 16 ~f:(fun i ->
             Atomic.incr active;
             let r = if i = 5 then failwith "boom" else spin () in
             Atomic.decr active;
             r));
      false
    with Failure msg -> msg = "boom"
  in
  Alcotest.(check bool) "worker exception re-raised" true raised;
  Alcotest.(check int) "no f call still in flight after the re-raise"
    1 (* only the raiser never decremented *)
    (Atomic.get active)

let test_pool_crash_requeue_determinism () =
  let f i = (i * 31) + 7 in
  let want = Array.init 40 f in
  List.iter
    (fun spec ->
      List.iter
        (fun domains ->
          let inj = Fault_injector.create ~plan:(plan spec) ~salt:0 in
          Alcotest.(check (array int))
            (Printf.sprintf "%s at %d domains" spec domains)
            want
            (Pool.map ~faults:inj ~domains 40 ~f))
        [ 1; 2; 4 ])
    [ "seed=3,worker-crash=0.5"; "seed=3,worker-crash=1.0" ];
  (* Crash counts are also domain-count independent. *)
  let crashes domains =
    let inj = Fault_injector.create ~plan:(plan "seed=3,worker-crash=0.5") ~salt:0 in
    ignore (Pool.map ~faults:inj ~domains 40 ~f);
    Fault_injector.count inj Fault_plan.Worker_crash
  in
  let c1 = crashes 1 in
  Alcotest.(check bool) "some crashes injected" true (c1 > 0);
  Alcotest.(check int) "crash tally at 2 domains" c1 (crashes 2);
  Alcotest.(check int) "crash tally at 4 domains" c1 (crashes 4);
  (* index_base shifts the draw stream: successive epochs fault
     differently. *)
  let seq base =
    let inj = Fault_injector.create ~plan:(plan "seed=3,worker-crash=0.5") ~salt:0 in
    List.init 40 (fun i ->
        Fault_injector.indexed inj Fault_plan.Worker_crash ~index:(base + i)
          ~attempt:1)
  in
  Alcotest.(check bool) "offset epochs draw distinct faults" true
    (seq 0 <> seq 40)

(* ---------- Fleet under faults ---------- *)

let fleet_fingerprint r =
  ( Fleet.detection_uids r,
    Array.map (fun s -> s.Fleet.exec.Fleet.source) r.Fleet.seats,
    Array.map (fun s -> s.Fleet.exec.Fleet.cycles) r.Fleet.seats,
    Option.map
      (fun s -> (s.Fleet.user.Workload.uid, s.Fleet.epoch))
      r.Fleet.first_catch,
    r.Fleet.epochs,
    Persist.keys r.Fleet.store,
    Metrics.counters_list r.Fleet.metrics,
    Profiler.to_list r.Fleet.profile )

(* The acceptance pin: a crashed worker's chunk is requeued (or computed
   serially), so a fleet with worker crashes produces exactly the report
   of the unfaulted fleet — only the crash counter differs. *)
let test_fleet_worker_crash_same_report () =
  let app = zziplib () in
  let config = Config.csod_default in
  let w = Workload.make ~benign_frac:0.25 ~users:120 () in
  let run faults =
    Fleet.run
      (Fleet.config ~domains:2 ~epoch_size:32 ?faults w)
      ~execute:(Execution.executor ~app ~config ())
  in
  let bare = run None in
  let faulted = run (Some (plan "seed=3,worker-crash=0.4")) in
  let crashes r =
    Metrics.count (Metrics.counter r.Fleet.metrics "fleet.worker_crashes")
  in
  Alcotest.(check int) "unfaulted fleet counts zero crashes" 0 (crashes bare);
  Alcotest.(check bool) "crashes actually injected" true (crashes faulted > 0);
  let minus_crashes r =
    List.filter
      (fun (name, _) -> name <> "fleet.worker_crashes")
      (Metrics.counters_list r.Fleet.metrics)
  in
  Alcotest.(check bool) "same detections" true
    (Fleet.detection_uids bare = Fleet.detection_uids faulted);
  Alcotest.(check bool) "same seat cycles" true
    (Array.map (fun s -> s.Fleet.exec.Fleet.cycles) bare.Fleet.seats
    = Array.map (fun s -> s.Fleet.exec.Fleet.cycles) faulted.Fleet.seats);
  Alcotest.(check bool) "same merged store" true
    (Persist.keys bare.Fleet.store = Persist.keys faulted.Fleet.store);
  Alcotest.(check bool) "same epochs" true
    (bare.Fleet.epochs = faulted.Fleet.epochs);
  Alcotest.(check bool) "metrics agree modulo the crash counter" true
    (minus_crashes bare = minus_crashes faulted)

(* Same --faults spec, any --domains: bit-identical reports.  The machine-
   level faults are salted per execution seed and the pool crashes use
   stateless indexed draws, so nothing depends on scheduling. *)
let test_fleet_faults_deterministic_across_domains () =
  let app = zziplib () in
  let config = Config.csod_default in
  let p = plan "seed=11,ebusy=0.4,trap-drop=0.3,worker-crash=0.3" in
  let w = Workload.make ~benign_frac:0.25 ~users:200 () in
  let simulate domains =
    Fleet.run
      (Fleet.config ~domains ~epoch_size:32 ~faults:p w)
      ~execute:(Execution.executor ~app ~config ~faults:p ())
  in
  let r1 = simulate 1 and r2 = simulate 2 and r4 = simulate 4 in
  Alcotest.(check bool) "domains 1 = 2" true
    (fleet_fingerprint r1 = fleet_fingerprint r2);
  Alcotest.(check bool) "domains 1 = 4" true
    (fleet_fingerprint r1 = fleet_fingerprint r4);
  (* The faults really bit: the injected-fault counters are nonzero. *)
  Alcotest.(check bool) "trap drops visible in merged metrics" true
    (Metrics.count (Metrics.counter r1.Fleet.metrics "trap.dropped") > 0)

let suite =
  [ Alcotest.test_case "plan: parse and round-trip" `Quick test_plan_parser;
    Alcotest.test_case "injector: determinism" `Quick test_injector_determinism;
    Alcotest.test_case "force: draws nothing from the plan stream" `Quick
      test_force_draws_nothing;
    Alcotest.test_case "force: per-point, queued, tallied" `Quick
      test_force_is_per_point_and_queued;
    Alcotest.test_case "zero plan: prng stream untouched" `Quick
      test_zero_plan_preserves_prng_stream;
    Alcotest.test_case "zero plan: outcome identical" `Quick
      test_zero_plan_outcome_identical;
    Alcotest.test_case "ebusy: degrades to canary-only, still detects" `Quick
      test_ebusy_degrades_to_canary_only;
    Alcotest.test_case "ebusy: evidence pinning survives contention" `Quick
      test_evidence_pinning_survives_ebusy_contention;
    Alcotest.test_case "persist: checksummed round-trip" `Quick
      test_persist_checksummed_roundtrip;
    Alcotest.test_case "persist: footer-less legacy load" `Quick
      test_persist_footerless_legacy_load;
    Alcotest.test_case "persist: missing vs empty" `Quick
      test_persist_missing_vs_empty;
    Alcotest.test_case "persist: truncated store recovers" `Quick
      test_persist_truncated_recovers;
    Alcotest.test_case "persist: torn write is recoverable" `Quick
      test_persist_torn_write_recoverable;
    Alcotest.test_case "persist: enospc keeps the old store" `Quick
      test_persist_enospc_preserves_published_store;
    Alcotest.test_case "pool: joins all before re-raising" `Quick
      test_pool_joins_all_before_reraise;
    Alcotest.test_case "pool: crash requeue determinism" `Quick
      test_pool_crash_requeue_determinism;
    Alcotest.test_case "fleet: crashed worker, same report" `Quick
      test_fleet_worker_crash_same_report;
    Alcotest.test_case "fleet: faulted determinism across domains" `Slow
      test_fleet_faults_deterministic_across_domains ]
