(* Integration tests for the nine buggy application models: census fidelity
   against Table III, vulnerability classes against Table I, detection
   sanity per policy, the ASan instrumentation-boundary behaviour, and
   benign-input cleanliness. *)

let oracle_of app =
  match Oracle.observe ~app ~input:Execution.Buggy () with
  | Ok t -> t
  | Error e -> Alcotest.fail (Printf.sprintf "%s crashed: %s" app.Buggy_app.name e)

let test_registry () =
  Alcotest.(check int) "nine applications" 9 (List.length (Buggy_app.all ()));
  Alcotest.(check (list string)) "Table I order"
    [ "Gzip"; "Heartbleed"; "Libdwarf"; "LibHX"; "Libtiff"; "Memcached"; "MySQL";
      "Polymorph"; "Zziplib" ]
    (Buggy_app.names ());
  Alcotest.(check bool) "case-insensitive lookup" true
    (Option.is_some (Buggy_app.by_name "heartBLEED"));
  Alcotest.(check bool) "unknown app" true (Buggy_app.by_name "nginx" = None)

let test_programs_load () =
  List.iter
    (fun app -> ignore (Buggy_app.program app))
    (Buggy_app.all ())

(* Census fidelity: exact Table III totals for every application. *)
let census_cases =
  [ ("Gzip", 1, 1); ("Heartbleed", 307, 5403); ("Libdwarf", 26, 152);
    ("LibHX", 4, 5); ("Libtiff", 1, 1); ("Memcached", 74, 442);
    ("MySQL", 488, 57464); ("Polymorph", 1, 1); ("Zziplib", 13, 17) ]

let test_census name ctxs allocs () =
  let app = Option.get (Buggy_app.by_name name) in
  let t = oracle_of app in
  Alcotest.(check int) "contexts" ctxs (Oracle.total_contexts t);
  Alcotest.(check int) "allocations" allocs (Oracle.total_allocations t)

let test_vuln_classes () =
  List.iter
    (fun app ->
      let t = oracle_of app in
      match Oracle.first_overflow t with
      | None -> Alcotest.fail (app.Buggy_app.name ^ ": no overflow observed")
      | Some o ->
        let expected =
          match app.Buggy_app.vuln with
          | Report.Over_read -> Tool.Read
          | Report.Over_write -> Tool.Write
        in
        Alcotest.(check bool)
          (app.Buggy_app.name ^ " class matches Table I")
          true
          (o.Oracle.kind = expected))
    (Buggy_app.all ())

let test_benign_runs_clean () =
  List.iter
    (fun app ->
      match Oracle.observe ~app ~input:Execution.Benign () with
      | Error e -> Alcotest.fail (app.Buggy_app.name ^ " benign crashed: " ^ e)
      | Ok t ->
        Alcotest.(check bool)
          (app.Buggy_app.name ^ " benign input has no overflow")
          true
          (Oracle.first_overflow t = None))
    (Buggy_app.all ())

let test_benign_no_csod_false_positive () =
  (* CSOD must never report anything on a benign run: the no-false-alarms
     property of watchpoints plus intact canaries. *)
  List.iter
    (fun app ->
      let o =
        Execution.run ~app ~config:Config.csod_default ~input:Execution.Benign
          ~seed:3 ()
      in
      Alcotest.(check bool) (app.Buggy_app.name ^ " benign: silent") false
        o.Execution.detected;
      Alcotest.(check (option string)) (app.Buggy_app.name ^ " benign: no crash") None
        o.Execution.crashed)
    (Buggy_app.all ())

let test_naive_policy_split () =
  (* Table II's naive column: always-detected vs never-detected apps. *)
  List.iter
    (fun app ->
      let detected = ref 0 in
      for seed = 1 to 5 do
        let o =
          Execution.run ~app ~config:(Config.csod_with_policy Params.Naive ~evidence:false)
            ~seed ()
        in
        if o.Execution.watchpoint_reports <> [] then incr detected
      done;
      if app.Buggy_app.expected_naive_detectable then
        Alcotest.(check int) (app.Buggy_app.name ^ ": naive always detects") 5 !detected
      else
        Alcotest.(check int) (app.Buggy_app.name ^ ": naive never detects") 0 !detected)
    (Buggy_app.all ())

let test_simple_apps_always_detected () =
  List.iter
    (fun name ->
      let app = Option.get (Buggy_app.by_name name) in
      for seed = 1 to 5 do
        let o =
          Execution.run ~app
            ~config:(Config.csod_with_policy Params.Near_fifo ~evidence:false)
            ~seed ()
        in
        Alcotest.(check bool) (name ^ " near-FIFO always detects") true
          (o.Execution.watchpoint_reports <> [])
      done)
    [ "Gzip"; "Libtiff"; "Polymorph" ]

let test_asan_boundary_misses () =
  (* The paper: ASan misses Libtiff, LibHX and Zziplib when the buggy
     library is not instrumented, and detects the others. *)
  List.iter
    (fun app ->
      let o = Execution.run ~app ~config:Config.asan_min_redzone ~seed:1 () in
      if app.Buggy_app.bug_in_library then
        Alcotest.(check bool) (app.Buggy_app.name ^ ": ASan misses library bug") true
          (o.Execution.asan_detections = [])
      else
        Alcotest.(check bool) (app.Buggy_app.name ^ ": ASan detects") true
          (o.Execution.asan_detections <> []))
    (Buggy_app.all ())

let test_csod_catches_asan_misses () =
  (* The three ASan-missed bugs are detectable by CSOD within a few runs. *)
  List.iter
    (fun name ->
      let app = Option.get (Buggy_app.by_name name) in
      match Execution.run_until_detected ~app ~config:Config.csod_default ~max_runs:60 with
      | Some _ -> ()
      | None -> Alcotest.fail (name ^ ": CSOD did not detect within 60 runs"))
    [ "Libtiff"; "LibHX"; "Zziplib" ]

let test_report_symbolization () =
  (* The Heartbleed report must read like Figure 6: t1_lib.c access frames,
     crypto/mem.c allocation frame. *)
  let app = Option.get (Buggy_app.by_name "Heartbleed") in
  match Execution.run_until_detected ~app ~config:Config.csod_default ~max_runs:60 with
  | None -> Alcotest.fail "Heartbleed undetected in 60 runs"
  | Some (_, o) ->
    let r = List.hd o.Execution.watchpoint_reports in
    Alcotest.(check bool) "over-read" true (r.Report.kind = Report.Over_read);
    let text = Report.format ~symbolize:(Execution.symbolizer app) r in
    let contains needle =
      let nl = String.length needle and hl = String.length text in
      let rec go i = i + nl <= hl && (String.sub text i nl = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "access in t1_lib.c" true (contains "openssl/ssl/t1_lib.c");
    Alcotest.(check bool) "allocation via crypto/mem.c" true
      (contains "openssl/crypto/mem.c");
    Alcotest.(check bool) "nginx frames present" true (contains "nginx/nginx.c")

let test_overflow_positions () =
  (* the overflowed object's census position, per Table III's "before"
     columns (inclusive of the object itself) *)
  let check name ctx_before allocs_before =
    let app = Option.get (Buggy_app.by_name name) in
    let t = oracle_of app in
    let o = Option.get (Oracle.first_overflow t) in
    Alcotest.(check int) (name ^ " ctx before") ctx_before o.Oracle.contexts_before;
    Alcotest.(check int) (name ^ " allocs before") allocs_before o.Oracle.allocs_before
  in
  check "LibHX" 1 1;
  check "Zziplib" 13 17;
  check "Memcached" 74 442

let suite =
  [ Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "all programs load" `Quick test_programs_load ]
  @ List.map
      (fun (name, c, a) ->
        Alcotest.test_case (Printf.sprintf "census: %s = %d/%d" name c a)
          (if a > 10000 then `Slow else `Quick)
          (test_census name c a))
      census_cases
  @ [ Alcotest.test_case "vulnerability classes" `Slow test_vuln_classes;
      Alcotest.test_case "benign runs clean (oracle)" `Slow test_benign_runs_clean;
      Alcotest.test_case "benign runs clean (CSOD)" `Slow
        test_benign_no_csod_false_positive;
      Alcotest.test_case "naive policy split" `Slow test_naive_policy_split;
      Alcotest.test_case "simple apps always detected" `Quick
        test_simple_apps_always_detected;
      Alcotest.test_case "ASan instrumentation boundary" `Slow test_asan_boundary_misses;
      Alcotest.test_case "CSOD catches ASan's misses" `Slow test_csod_catches_asan_misses;
      Alcotest.test_case "Figure 6 symbolization" `Quick test_report_symbolization;
      Alcotest.test_case "overflow positions" `Slow test_overflow_positions ]
