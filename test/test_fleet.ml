(* Tests for the fleet subsystem: workload model, domain pool, epoch
   barrier semantics, and the hard determinism requirement — the same
   fleet produces bit-identical reports for any domain count. *)

let zziplib () = Option.get (Buggy_app.by_name "Zziplib")

(* ---------- Workload ---------- *)

let test_workload_determinism () =
  let w = Workload.make ~benign_frac:0.5 ~base_seed:7 ~users:100 () in
  let u1 = Workload.user w 42 and u2 = Workload.user w 42 in
  Alcotest.(check bool) "same user twice" true (u1 = u2);
  Alcotest.(check int) "seed offset" (7 + 42 - 1) (Workload.user w 42).Workload.seed;
  let benign =
    List.init 100 (fun i -> Workload.user w (i + 1))
    |> List.filter (fun u -> u.Workload.benign)
    |> List.length
  in
  Alcotest.(check bool) "benign mix near the fraction" true
    (benign > 25 && benign < 75);
  let all_buggy = Workload.make ~users:50 () in
  Alcotest.(check bool) "benign_frac 0: all buggy" true
    (List.init 50 (fun i -> Workload.user all_buggy (i + 1))
    |> List.for_all (fun u -> not u.Workload.benign));
  let all_benign = Workload.make ~benign_frac:1.0 ~users:50 () in
  Alcotest.(check bool) "benign_frac 1: all benign" true
    (List.init 50 (fun i -> Workload.user all_benign (i + 1))
    |> List.for_all (fun u -> u.Workload.benign))

let test_workload_arrivals () =
  List.iter
    (fun burst ->
      let w = Workload.make ~burst ~users:997 () in
      let a = Workload.arrivals w ~epoch_size:32 in
      Alcotest.(check int)
        (Workload.burst_name burst ^ ": arrivals sum to users")
        997
        (Array.fold_left ( + ) 0 a);
      Alcotest.(check bool)
        (Workload.burst_name burst ^ ": every epoch nonempty")
        true
        (Array.for_all (fun n -> n > 0) a))
    [ Workload.Steady; Workload.Frontload; Workload.Wave ];
  let steady = Workload.make ~users:96 () in
  Alcotest.(check (array int)) "steady epochs" [| 32; 32; 32 |]
    (Workload.arrivals steady ~epoch_size:32);
  let front = Workload.arrivals (Workload.make ~burst:Workload.Frontload ~users:200 ()) ~epoch_size:32 in
  Alcotest.(check bool) "frontload spikes early" true (front.(0) > 32)

(* ---------- Pool ---------- *)

let test_pool_map () =
  let f i = (i * i) + 1 in
  let want = Array.init 37 f in
  List.iter
    (fun domains ->
      Alcotest.(check (array int))
        (Printf.sprintf "map with %d domains" domains)
        want
        (Pool.map ~domains 37 ~f))
    [ 1; 2; 4; 16 ];
  Alcotest.(check (array int)) "empty input" [||] (Pool.map ~domains:4 0 ~f)

let test_pool_exception () =
  Alcotest.(check bool) "worker exception reaches the caller" true
    (try
       ignore
         (Pool.map ~domains:2 16 ~f:(fun i ->
              if i = 5 then failwith "boom" else i));
       false
     with Failure msg -> msg = "boom")

(* ---------- Epoch barrier semantics (synthetic executor) ---------- *)

(* An executor that "finds the bug" only as user 3, and afterwards only
   where user 3's evidence has been uploaded.  Inside user 3's own epoch
   nobody else may see the discovery (reports travel at epoch barriers,
   not instantly); from the next epoch on everybody must. *)
let synthetic ~user ~store =
  let key = (42, 0) in
  let detected = user.Workload.uid = 3 || Persist.mem store key in
  if user.Workload.uid = 3 then Persist.add store key;
  { Fleet.payload = ();
    detected;
    source = None;
    cycles = 1;
    telemetry = None;
    degraded = false }

let test_epoch_barrier () =
  let w = Workload.make ~users:10 () in
  let r = Fleet.run (Fleet.config ~domains:2 ~epoch_size:5 w) ~execute:synthetic in
  Alcotest.(check (list int)) "pinned only after the barrier"
    [ 3; 6; 7; 8; 9; 10 ] (Fleet.detection_uids r);
  (match r.Fleet.first_catch with
  | Some s ->
    Alcotest.(check int) "first catch uid" 3 s.Fleet.user.Workload.uid;
    Alcotest.(check int) "first catch epoch" 0 s.Fleet.epoch
  | None -> Alcotest.fail "first catch expected");
  let rows = r.Fleet.epochs in
  Alcotest.(check (list int)) "per-epoch detections" [ 1; 5 ]
    (List.map (fun e -> e.Epoch.detections) rows);
  Alcotest.(check (list int)) "store grows at the first barrier" [ 1; 1 ]
    (List.map (fun e -> e.Epoch.store_size) rows);
  (* Epoch size 1 is the sequential path: evidence is visible to the very
     next user. *)
  let r1 = Fleet.run (Fleet.config ~domains:1 ~epoch_size:1 w) ~execute:synthetic in
  Alcotest.(check (list int)) "epoch 1: next user already pinned"
    [ 3; 4; 5; 6; 7; 8; 9; 10 ] (Fleet.detection_uids r1)

let test_report_invariants () =
  let w = Workload.make ~benign_frac:0.3 ~burst:Workload.Wave ~users:213 () in
  let r = Fleet.run (Fleet.config ~domains:2 ~epoch_size:20 w) ~execute:synthetic in
  Alcotest.(check int) "one seat per user" 213 (Array.length r.Fleet.seats);
  Alcotest.(check int) "epoch arrivals cover the population" 213
    (List.fold_left (fun n e -> n + e.Epoch.arrivals) 0 r.Fleet.epochs);
  Alcotest.(check int) "detections equal the last cumulative"
    r.Fleet.detections
    (List.fold_left (fun _ e -> e.Epoch.cumulative) 0 r.Fleet.epochs);
  Alcotest.(check bool) "cumulative is monotone" true
    (let rec mono = function
       | a :: (b :: _ as rest) -> a.Epoch.cumulative <= b.Epoch.cumulative && mono rest
       | _ -> true
     in
     mono r.Fleet.epochs);
  Array.iteri
    (fun i s -> Alcotest.(check int) "seats in uid order" (i + 1) s.Fleet.user.Workload.uid)
    r.Fleet.seats

(* ---------- Determinism across domain counts (real executions) ---------- *)

(* The acceptance bar: a 1000-user fleet of real CSOD executions yields
   identical detection sets, first-catch epochs, merged counters and
   merged stores for --domains 1, 2 and 4.  Only wall time may differ. *)
let test_determinism_across_domains () =
  let app = zziplib () in
  let config = Config.csod_default in
  let w = Workload.make ~benign_frac:0.25 ~users:1000 () in
  let simulate domains =
    Fleet.run
      (Fleet.config ~domains ~epoch_size:32 w)
      ~execute:(Execution.executor ~app ~config ())
  in
  let r1 = simulate 1 and r2 = simulate 2 and r4 = simulate 4 in
  let fingerprint r =
    ( Fleet.detection_uids r,
      Array.map (fun s -> s.Fleet.exec.Fleet.source) r.Fleet.seats,
      Array.map (fun s -> s.Fleet.exec.Fleet.cycles) r.Fleet.seats,
      Option.map (fun s -> (s.Fleet.user.Workload.uid, s.Fleet.epoch)) r.Fleet.first_catch,
      r.Fleet.epochs,
      Persist.keys r.Fleet.store,
      Metrics.counters_list r.Fleet.metrics,
      Metrics.gauges_list r.Fleet.metrics,
      Profiler.to_list r.Fleet.profile )
  in
  Alcotest.(check bool) "domains 1 = 2" true (fingerprint r1 = fingerprint r2);
  Alcotest.(check bool) "domains 1 = 4" true (fingerprint r1 = fingerprint r4);
  Alcotest.(check bool) "the fleet detects" true (r1.Fleet.detections > 0);
  Alcotest.(check bool) "later epochs pin the context" true
    (Persist.count r1.Fleet.store > 0)

(* ---------- Sequential path ---------- *)

let test_until_detected_shared_store () =
  let app = zziplib () in
  let config = Config.csod_default in
  (* Same semantics as Evidence.fleet: shared store, seeds 1, 2, ... *)
  let store = Persist.create () in
  match
    Fleet.until_detected ~store ~users:64
      ~execute:(Execution.executor ~app ~config ()) ()
  with
  | None -> Alcotest.fail "zziplib not detected within 64 users"
  | Some s ->
    Alcotest.(check bool) "agrees with Evidence.fleet" true
      (match Evidence.fleet ~app ~users:64 () with
      | Some (uid, _) -> uid = s.Fleet.user.Workload.uid
      | None -> false);
    Alcotest.(check bool) "evidence uploaded" true (Persist.count store > 0)

let test_json_report () =
  let w = Workload.make ~users:10 () in
  let r = Fleet.run (Fleet.config ~domains:1 ~epoch_size:5 w) ~execute:synthetic in
  match Fleet.to_json ~app:"synthetic" ~config:"test" r with
  | `Assoc fields ->
    Alcotest.(check bool) "schema tagged" true
      (List.assoc_opt "schema" fields = Some (`String "csod.fleet.report/1"));
    Alcotest.(check bool) "epoch rows present" true
      (match List.assoc_opt "epochs" fields with
      | Some (`List (_ :: _)) -> true
      | _ -> false)
  | _ -> Alcotest.fail "expected a JSON object"

(* ---------- Edge cases: empty fleet, one user, burst boundaries ---------- *)

let test_empty_fleet () =
  let w = Workload.make ~users:0 () in
  Alcotest.(check (array int)) "no arrivals" [||]
    (Workload.arrivals w ~epoch_size:32);
  let r = Fleet.run (Fleet.config ~domains:2 ~epoch_size:32 w) ~execute:synthetic in
  Alcotest.(check int) "no seats" 0 (Array.length r.Fleet.seats);
  Alcotest.(check int) "no detections" 0 r.Fleet.detections;
  Alcotest.(check bool) "no first catch" true (r.Fleet.first_catch = None);
  Alcotest.(check bool) "no epoch rows" true (r.Fleet.epochs = []);
  Alcotest.(check int) "empty store" 0 (Persist.count r.Fleet.store);
  (* The divide in the CDF is guarded: an empty population reads as 0. *)
  let row =
    { Epoch.epoch = 0; arrivals = 0; detections = 0; cumulative = 0;
      store_size = 0 }
  in
  Alcotest.(check (float 0.0)) "cdf of empty population" 0.0
    (Epoch.cdf ~total_users:0 row)

let test_single_user_fleet () =
  let app = zziplib () in
  let w = Workload.make ~users:1 ~base_seed:2 () in
  Alcotest.(check (array int)) "one partial epoch" [| 1 |]
    (Workload.arrivals w ~epoch_size:32);
  let run domains =
    Fleet.run
      (Fleet.config ~domains ~epoch_size:32 w)
      ~execute:(Execution.executor ~app ~config:Config.csod_default ())
  in
  let r1 = run 1 and r2 = run 2 in
  Alcotest.(check int) "one seat" 1 (Array.length r1.Fleet.seats);
  (match r1.Fleet.epochs with
  | [ row ] ->
    Alcotest.(check int) "arrivals" 1 row.Epoch.arrivals;
    Alcotest.(check int) "cumulative = detections" r1.Fleet.detections
      row.Epoch.cumulative
  | _ -> Alcotest.fail "expected exactly one epoch row");
  (* A pool wider than the population must change nothing. *)
  Alcotest.(check bool) "domain count irrelevant" true
    (Fleet.detection_uids r1 = Fleet.detection_uids r2
    && Metrics.counters_list r1.Fleet.metrics
       = Metrics.counters_list r2.Fleet.metrics)

let test_burst_boundaries () =
  (* Wave: the heavy phase starts at epoch 0 — rate 1.5x, so the very
     first epoch takes s + s/2 users, then s/2, alternating. *)
  let wave = Workload.make ~burst:Workload.Wave ~users:200 () in
  let a = Workload.arrivals wave ~epoch_size:32 in
  Alcotest.(check int) "wave heavy at epoch 0" 48 a.(0);
  Alcotest.(check int) "wave light at epoch 1" 16 a.(1);
  Alcotest.(check int) "wave heavy again at epoch 2" 48 a.(2);
  (* Frontload: 2x at launch, decaying, floored at s/2 — never below one
     arrival even for tiny epochs. *)
  let front = Workload.make ~burst:Workload.Frontload ~users:300 () in
  let f = Workload.arrivals front ~epoch_size:32 in
  Alcotest.(check int) "frontload 2x at epoch 0" 64 f.(0);
  Alcotest.(check int) "frontload 1.5x at epoch 1" 48 f.(1);
  Alcotest.(check int) "frontload settles at s/2" 16 f.(4);
  let tiny = Workload.arrivals (Workload.make ~burst:Workload.Wave ~users:7 ()) ~epoch_size:1 in
  Alcotest.(check bool) "epoch_size 1: every epoch still drains" true
    (Array.for_all (fun n -> n >= 1) tiny);
  Alcotest.(check int) "epoch_size 1: sums to users" 7
    (Array.fold_left ( + ) 0 tiny)

(* Regression: a wave whose period exceeds the run length must still
   admit its launch cohort at epoch 0.  Before the heavy-half-first fix a
   long-period wave opened with its trough, so a service driving
   Workload.rate spent the first half-period at the floor rate. *)
let test_wave_period_longer_than_run () =
  let w =
    Workload.make ~burst:Workload.Wave ~wave_period:1000 ~users:100 ()
  in
  Alcotest.(check int) "rate at epoch 0 is the heavy phase" 48
    (Workload.rate w ~epoch_size:32 0);
  let a = Workload.arrivals w ~epoch_size:32 in
  Alcotest.(check int) "epoch 0 admits the launch cohort" 48 a.(0);
  (* The whole run fits inside the heavy half-period: 48 + 48 + 4. *)
  Alcotest.(check int) "drains in 3 epochs" 3 (Array.length a);
  (* General period: heavy half first, then light, repeating. *)
  let p6 = Workload.make ~burst:Workload.Wave ~wave_period:6 ~users:1000 () in
  Alcotest.(check (list int)) "period 6: 3 heavy then 3 light"
    [ 48; 48; 48; 16; 16; 16; 48 ]
    (List.init 7 (Workload.rate p6 ~epoch_size:32));
  (* Odd period: the odd epoch lands on the heavy side. *)
  let p3 = Workload.make ~burst:Workload.Wave ~wave_period:3 ~users:1000 () in
  Alcotest.(check (list int)) "period 3: 2 heavy then 1 light"
    [ 48; 48; 16; 48 ]
    (List.init 4 (Workload.rate p3 ~epoch_size:32));
  (* wave_period 2 is the legacy alternating shape — unchanged. *)
  let legacy = Workload.make ~burst:Workload.Wave ~users:200 () in
  Alcotest.(check int) "default period is 2" 2 legacy.Workload.wave_period

(* The stepping API is the run loop, exposed: driving start/step/finish
   by hand must reproduce Fleet.run exactly, and lean mode must drop only
   the O(users) accumulation. *)
let test_stepping_equals_run () =
  let w = Workload.make ~benign_frac:0.2 ~burst:Workload.Wave ~users:137 () in
  let cfg = Fleet.config ~domains:2 ~epoch_size:20 w in
  let r = Fleet.run cfg ~execute:synthetic in
  let arrivals = Workload.arrivals w ~epoch_size:20 in
  let total = Array.fold_left ( + ) 0 arrivals in
  let t = Fleet.start ~expected_users:total cfg ~execute:synthetic in
  let cycles = ref 0 in
  Array.iter
    (fun n ->
      let er = Fleet.step t ~arrivals:n in
      cycles := !cycles + er.Fleet.epoch_cycles)
    arrivals;
  let r' = Fleet.finish t in
  Alcotest.(check (list int)) "same detection set" (Fleet.detection_uids r)
    (Fleet.detection_uids r');
  Alcotest.(check int) "same seat count" (Array.length r.Fleet.seats)
    (Array.length r'.Fleet.seats);
  Alcotest.(check string) "same merged metrics"
    (Obs_json.to_string (Metrics.to_json r.Fleet.metrics))
    (Obs_json.to_string (Metrics.to_json r'.Fleet.metrics));
  Alcotest.(check (list int)) "same health stream (epoch detections)"
    (List.map (fun (h : Health.sample) -> h.Health.detections) r.Fleet.health)
    (List.map (fun (h : Health.sample) -> h.Health.detections) r'.Fleet.health);
  (* epoch_cycles sums to the executor's total virtual cycles: the
     synthetic executor charges 1 cycle per user. *)
  Alcotest.(check int) "epoch_cycles sum to the fleet's virtual work" 137
    !cycles;
  (* Lean mode: same tallies and first catch, no per-user accumulation. *)
  let tl = Fleet.start ~lean:true ~expected_users:total cfg ~execute:synthetic in
  Array.iter (fun n -> ignore (Fleet.step tl ~arrivals:n)) arrivals;
  let rl = Fleet.finish tl in
  Alcotest.(check int) "lean: same detections" r.Fleet.detections
    rl.Fleet.detections;
  Alcotest.(check int) "lean: no seats kept" 0 (Array.length rl.Fleet.seats);
  Alcotest.(check bool) "lean: health not accumulated" true
    (rl.Fleet.health = []);
  (match (r.Fleet.first_catch, rl.Fleet.first_catch) with
  | Some a, Some b ->
    Alcotest.(check int) "lean: same first catch"
      a.Fleet.user.Workload.uid b.Fleet.user.Workload.uid
  | _ -> Alcotest.fail "first catch expected in both");
  (* epoch0/uid0 offsets: serving epochs [k..] with uids [m..] is the
     tail of the same stream. *)
  let t2 = Fleet.start ~expected_users:total cfg ~execute:synthetic in
  let split = 2 in
  Array.iteri
    (fun e n -> if e < split then ignore (Fleet.step t2 ~arrivals:n))
    arrivals;
  let resumed =
    Fleet.start ~store:(Fleet.store t2) ~expected_users:total
      ~epoch0:(Fleet.epoch t2) ~uid0:(Fleet.next_uid t2) cfg
      ~execute:synthetic
  in
  Array.iteri
    (fun e n -> if e >= split then ignore (Fleet.step resumed ~arrivals:n))
    arrivals;
  Alcotest.(check int) "offset resume: same total detections"
    r.Fleet.detections
    (Fleet.detections t2 + Fleet.detections resumed)

(* ---------- Per-worker locals and load stats ---------- *)

let test_map_local_stats () =
  let results, workers =
    Pool.map_local ~domains:4 ~record_spans:true
      ~local:(fun ~slot -> (slot, ref 0))
      40
      ~f:(fun (_, seen) i ->
        incr seen;
        i * i)
  in
  Alcotest.(check (array int)) "results in order"
    (Array.init 40 (fun i -> i * i))
    results;
  Alcotest.(check int) "one worker per slot" 4 (Array.length workers);
  Array.iteri
    (fun i ((slot, seen), w) ->
      Alcotest.(check int) "locals in slot order" i slot;
      Alcotest.(check int) "stats slot matches" i w.Pool.slot;
      Alcotest.(check int) "local saw every chunk of its worker" !seen
        w.Pool.executed;
      Alcotest.(check int) "one span per chunk" w.Pool.executed
        (List.length w.Pool.spans);
      Alcotest.(check bool) "busy time non-negative" true
        (w.Pool.busy_seconds >= 0.0))
    workers;
  Alcotest.(check int) "executed partitions the input" 40
    (Array.fold_left (fun n (_, w) -> n + w.Pool.executed) 0 workers);
  (* Width never exceeds the work: 2 chunks on 8 domains is 2 workers, and
     an empty map still returns a (idle) slot-0 worker. *)
  let _, narrow =
    Pool.map_local ~domains:8 ~local:(fun ~slot -> slot) 2 ~f:(fun _ i -> i)
  in
  Alcotest.(check int) "width clamped to n" 2 (Array.length narrow);
  let empty, solo =
    Pool.map_local ~domains:4 ~local:(fun ~slot -> slot) 0 ~f:(fun _ i -> i)
  in
  Alcotest.(check int) "empty map: no results" 0 (Array.length empty);
  Alcotest.(check int) "empty map: one idle worker" 1 (Array.length solo);
  Alcotest.(check int) "empty map: nothing executed" 0
    (snd solo.(0)).Pool.executed

(* ---------- Sharded vs per-user telemetry aggregation ---------- *)

(* An executor with telemetry crafted to stress every merge rule: a
   commutative counter and histogram from every user, a gauge every user
   sets (last definer must win), and a gauge only every third user defines
   (users without it must not vote).  The merged registry must come out
   bit-identical whether it was aggregated through per-domain shards or
   the legacy per-user fold, for any domain count. *)
let telemetric ~user ~store:_ =
  let uid = user.Workload.uid in
  let tele = Telemetry.create () in
  let reg = Telemetry.metrics tele in
  Metrics.incr (Metrics.counter reg "exec.count");
  Metrics.observe (Metrics.histogram reg "exec.size") (uid mod 97);
  Metrics.set (Metrics.gauge reg "g.all") uid;
  if uid mod 3 = 0 then Metrics.set (Metrics.gauge reg "g.third") (uid * 10);
  Profiler.charge (Telemetry.profiler tele) Profiler.Canary_check uid;
  { Fleet.payload = ();
    detected = false;
    source = None;
    cycles = 1;
    telemetry = Some tele;
    degraded = false }

let test_sharded_equivalence_synthetic () =
  let w = Workload.make ~users:100 () in
  let aggregate ~sharded domains =
    let r =
      Fleet.run
        (Fleet.config ~domains ~epoch_size:16 ~sharded w)
        ~execute:telemetric
    in
    ( Metrics.counters_list r.Fleet.metrics,
      Metrics.gauges_list r.Fleet.metrics,
      Profiler.to_list r.Fleet.profile )
  in
  let reference = aggregate ~sharded:false 1 in
  let _, gauges, _ = reference in
  (* The legacy fold's own invariant first: the last definer (highest uid)
     wins each gauge, users that never define one don't vote. *)
  Alcotest.(check bool) "g.all: uid 100 wins" true
    (List.exists (fun (n, level, high) -> n = "g.all" && level = 100 && high = 100) gauges);
  Alcotest.(check bool) "g.third: uid 99 wins" true
    (List.exists (fun (n, level, high) -> n = "g.third" && level = 990 && high = 990) gauges);
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Printf.sprintf "legacy, %d domains" domains)
        true
        (aggregate ~sharded:false domains = reference);
      Alcotest.(check bool)
        (Printf.sprintf "sharded, %d domains" domains)
        true
        (aggregate ~sharded:true domains = reference))
    [ 1; 2; 4 ]

(* Same equivalence over real CSOD executions: the full fingerprint of a
   sharded fleet matches the legacy aggregation, domains 1/2/4. *)
let test_sharded_equivalence_real () =
  let app = zziplib () in
  let config = Config.csod_default in
  let w = Workload.make ~benign_frac:0.25 ~users:300 () in
  let fingerprint ~sharded domains =
    let r =
      Fleet.run
        (Fleet.config ~domains ~epoch_size:32 ~sharded w)
        ~execute:(Execution.executor ~app ~config ())
    in
    ( Fleet.detection_uids r,
      r.Fleet.epochs,
      Persist.keys r.Fleet.store,
      Metrics.counters_list r.Fleet.metrics,
      Metrics.gauges_list r.Fleet.metrics,
      Profiler.to_list r.Fleet.profile )
  in
  let reference = fingerprint ~sharded:false 1 in
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Printf.sprintf "sharded = legacy at %d domains" domains)
        true
        (fingerprint ~sharded:true domains = reference))
    [ 1; 2; 4 ]

(* ---------- Health stream ---------- *)

let test_health_per_epoch () =
  let w = Workload.make ~users:100 () in
  let streamed = ref [] in
  let r =
    Fleet.run
      (Fleet.config ~domains:2 ~epoch_size:16
         ~on_health:(fun s -> streamed := s :: !streamed)
         w)
      ~execute:telemetric
  in
  let epochs = List.length r.Fleet.epochs in
  Alcotest.(check int) "one sample per epoch" epochs
    (List.length r.Fleet.health);
  Alcotest.(check bool) "callback saw the same stream" true
    (List.rev !streamed = r.Fleet.health);
  List.iteri
    (fun i (s : Health.sample) ->
      Alcotest.(check int) "epoch numbering" i s.Health.epoch;
      Alcotest.(check int) "population echoed" 100 s.Health.users;
      Alcotest.(check bool) "cdf consistent" true
        (s.Health.cdf = float_of_int s.Health.cumulative /. 100.0);
      Alcotest.(check bool) "executed covers arrivals" true
        (List.fold_left (fun n d -> n + d.Health.executed) 0 s.Health.domains
        = s.Health.arrivals);
      Alcotest.(check string) "mode tagged" "sharded" s.Health.telemetry)
    r.Fleet.health;
  (* Health rows agree with the epoch rows the report already pins. *)
  Alcotest.(check (list int)) "arrivals agree with epoch rows"
    (List.map (fun e -> e.Epoch.arrivals) r.Fleet.epochs)
    (List.map (fun s -> s.Health.arrivals) r.Fleet.health);
  Alcotest.(check (list int)) "cumulative agrees with epoch rows"
    (List.map (fun e -> e.Epoch.cumulative) r.Fleet.epochs)
    (List.map (fun s -> s.Health.cumulative) r.Fleet.health);
  (* Degraded-mode accounting comes from the executions themselves. *)
  let degraded_fleet ~user ~store =
    let e = telemetric ~user ~store in
    { e with Fleet.degraded = user.Workload.uid mod 2 = 0 }
  in
  let r2 =
    Fleet.run (Fleet.config ~domains:2 ~epoch_size:16 w)
      ~execute:degraded_fleet
  in
  (match List.rev r2.Fleet.health with
  | last :: _ ->
    Alcotest.(check int) "degraded tally is cumulative" 50 last.Health.degraded
  | [] -> Alcotest.fail "expected health samples");
  (* No trace by default; spans appear only when asked for. *)
  Alcotest.(check bool) "no spans unless traced" true (r.Fleet.trace_spans = []);
  let r3 =
    Fleet.run (Fleet.config ~domains:2 ~epoch_size:16 ~trace:true w)
      ~execute:telemetric
  in
  Alcotest.(check bool) "tracing records a span per user" true
    (List.length
       (List.filter
          (fun (sp : Trace_export.fleet_span) ->
            sp.Trace_export.track < 2 && sp.Trace_export.name <> "barrier wait")
          r3.Fleet.trace_spans)
    = 100)

let suite =
  [ Alcotest.test_case "workload: determinism and mix" `Quick test_workload_determinism;
    Alcotest.test_case "workload: arrival shapes" `Quick test_workload_arrivals;
    Alcotest.test_case "pool: order-preserving map" `Quick test_pool_map;
    Alcotest.test_case "pool: exception propagation" `Quick test_pool_exception;
    Alcotest.test_case "epoch: barrier semantics" `Quick test_epoch_barrier;
    Alcotest.test_case "epoch: report invariants" `Quick test_report_invariants;
    Alcotest.test_case "determinism across domains" `Slow test_determinism_across_domains;
    Alcotest.test_case "sequential path: shared store" `Quick test_until_detected_shared_store;
    Alcotest.test_case "json report" `Quick test_json_report;
    Alcotest.test_case "edge: empty fleet" `Quick test_empty_fleet;
    Alcotest.test_case "edge: single-user fleet" `Quick test_single_user_fleet;
    Alcotest.test_case "edge: burst boundaries" `Quick test_burst_boundaries;
    Alcotest.test_case "wave period longer than the run" `Quick
      test_wave_period_longer_than_run;
    Alcotest.test_case "stepping API equals run" `Quick
      test_stepping_equals_run;
    Alcotest.test_case "pool: map_local worker stats" `Quick test_map_local_stats;
    Alcotest.test_case "sharded telemetry: synthetic equivalence" `Quick
      test_sharded_equivalence_synthetic;
    Alcotest.test_case "sharded telemetry: real-execution equivalence" `Slow
      test_sharded_equivalence_real;
    Alcotest.test_case "health stream: one sample per epoch" `Quick
      test_health_per_epoch ]
