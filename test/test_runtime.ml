(* Integration tests for the assembled CSOD runtime. *)

let mk ?(params = Params.default) ?store ?(seed = 0) () =
  let machine = Machine.create ~seed:(seed + 100) () in
  let heap = Heap.create machine in
  let rt = Runtime.create ~params ?store ~seed ~machine ~heap () in
  (rt, Runtime.tool rt, machine, heap)

let ctx ?(off = 0) callsite = Alloc_ctx.synthetic ~callsite ~stack_offset:off ()

let test_watchpoint_detection_read_write () =
  let rt, tool, machine, _ = mk () in
  let p = tool.Tool.malloc ~size:32 ~ctx:(ctx 1) in
  (* first allocation is startup-watched; overflow read one word past *)
  ignore (Machine.load_word machine (p + 32));
  (match Runtime.detections rt with
  | [ r ] ->
    Alcotest.(check bool) "over-read" true (r.Report.kind = Report.Over_read);
    Alcotest.(check bool) "watchpoint source" true (r.Report.source = Report.Watchpoint);
    Alcotest.(check int) "object identified" p r.Report.object_addr
  | _ -> Alcotest.fail "expected one report");
  (* a second object, over-written *)
  let q = tool.Tool.malloc ~size:16 ~ctx:(ctx 2) in
  Machine.store_word machine (q + 16) 99;
  (match Runtime.detections rt with
  | [ _; r2 ] ->
    Alcotest.(check bool) "over-write" true (r2.Report.kind = Report.Over_write)
  | _ -> Alcotest.fail "expected two reports");
  Alcotest.(check bool) "detected" true (Runtime.detected rt)

let test_no_false_positives_in_bounds () =
  let rt, tool, machine, _ = mk () in
  let p = tool.Tool.malloc ~size:32 ~ctx:(ctx 1) in
  for i = 0 to 3 do
    Machine.store_word machine (p + (8 * i)) i;
    ignore (Machine.load_word machine (p + (8 * i)))
  done;
  tool.Tool.free ~ptr:p;
  Runtime.finish rt;
  Alcotest.(check bool) "no reports for in-bounds traffic" false (Runtime.detected rt)

let test_watch_removed_on_free () =
  let rt, tool, machine, _ = mk () in
  let p = tool.Tool.malloc ~size:32 ~ctx:(ctx 1) in
  tool.Tool.free ~ptr:p;
  (* the same memory may be reused; accessing the old boundary is silent *)
  ignore (Machine.load_word machine (p + 32));
  Alcotest.(check bool) "no stale watchpoint" false (Runtime.detected rt)

let test_canary_at_free () =
  let rt, tool, machine, _ = mk () in
  (* occupy all four slots so object five is (almost surely) unwatched *)
  for i = 1 to 4 do
    ignore (tool.Tool.malloc ~size:16 ~ctx:(ctx i))
  done;
  let p = tool.Tool.malloc ~size:24 ~ctx:(ctx 5) in
  (* smash the canary with an unwatched write (no trap possible) *)
  Machine.store_word_unwatched machine (p + 24) 0x41414141;
  tool.Tool.free ~ptr:p;
  let evidence =
    List.filter (fun r -> r.Report.source = Report.Canary_free) (Runtime.detections rt)
  in
  (match evidence with
  | [ r ] ->
    Alcotest.(check bool) "over-write evidence" true (r.Report.kind = Report.Over_write);
    Alcotest.(check int) "object" p r.Report.object_addr
  | _ -> Alcotest.fail "expected canary-at-free evidence");
  (* the context is now pinned and persisted *)
  Alcotest.(check bool) "persisted" true
    (Persist.mem (Runtime.store rt) (Alloc_ctx.key (ctx 5)))

let test_canary_at_exit () =
  let rt, tool, machine, _ = mk () in
  for i = 1 to 4 do
    ignore (tool.Tool.malloc ~size:16 ~ctx:(ctx i))
  done;
  let p = tool.Tool.malloc ~size:24 ~ctx:(ctx 5) in
  Machine.store_word_unwatched machine (p + 24) 0x42424242;
  (* never freed: the termination sweep must find it *)
  Runtime.finish rt;
  Alcotest.(check bool) "canary-at-exit evidence" true
    (List.exists
       (fun r -> r.Report.source = Report.Canary_exit)
       (Runtime.detections rt));
  (* finish is idempotent *)
  let n = List.length (Runtime.detections rt) in
  Runtime.finish rt;
  Alcotest.(check int) "idempotent finish" n (List.length (Runtime.detections rt))

let test_no_evidence_mode () =
  let params = { Params.default with Params.evidence = false } in
  let rt, tool, machine, heap = mk ~params () in
  let p = tool.Tool.malloc ~size:24 ~ctx:(ctx 1) in
  (* no header before the object *)
  Alcotest.(check bool) "no header" true (Canary.read_header machine ~app:p = None);
  Machine.store_word_unwatched machine (p + 24) 0x43434343;
  tool.Tool.free ~ptr:p;
  Runtime.finish rt;
  Alcotest.(check bool) "watchpoint-only reports" true
    (List.for_all
       (fun r -> r.Report.source = Report.Watchpoint)
       (Runtime.detections rt));
  Alcotest.(check int) "heap clean" 0 (Heap.live_objects heap)

let test_persist_pins_context () =
  let store = Persist.create () in
  Persist.add store (Alloc_ctx.key (ctx 42));
  let rt, tool, machine, _ = mk ~store () in
  (* fill the slots with other contexts first, ending startup *)
  for i = 1 to 4 do
    ignore (tool.Tool.malloc ~size:16 ~ctx:(ctx i))
  done;
  (* known-guilty context: pinned at probability 1, must preempt *)
  let p = tool.Tool.malloc ~size:32 ~ctx:(ctx 42) in
  ignore (Machine.load_word machine (p + 32));
  Alcotest.(check bool) "known context watched deterministically" true
    (Runtime.detected rt)

let test_trap_after_detection_slot_reused () =
  let rt, tool, machine, _ = mk () in
  let p = tool.Tool.malloc ~size:16 ~ctx:(ctx 1) in
  ignore (Machine.load_word machine (p + 16));
  Alcotest.(check int) "one detection" 1 (List.length (Runtime.detections rt));
  (* the slot was released: the same access no longer traps *)
  ignore (Machine.load_word machine (p + 16));
  Alcotest.(check int) "watch removed after report" 1
    (List.length (Runtime.detections rt))

let test_stats_and_memory () =
  let rt, tool, _, _ = mk () in
  let p1 = tool.Tool.malloc ~size:16 ~ctx:(ctx 1) in
  let _p2 = tool.Tool.malloc ~size:16 ~ctx:(ctx 1) in
  let _p3 = tool.Tool.malloc ~size:16 ~ctx:(ctx 2) in
  tool.Tool.free ~ptr:p1;
  let s = Runtime.stats rt in
  Alcotest.(check int) "contexts" 2 s.Runtime.contexts;
  Alcotest.(check int) "allocations" 3 s.Runtime.allocations;
  Alcotest.(check int) "live objects" 2 s.Runtime.live_objects;
  Alcotest.(check bool) "watched at least the startup ones" true
    (s.Runtime.watched_times >= 3);
  Alcotest.(check bool) "context table accounted" true
    (Runtime.extra_resident_bytes rt > 0)

let test_free_null_and_foreign () =
  let _, tool, _, _ = mk () in
  tool.Tool.free ~ptr:0;
  (* foreign pointer: the heap rejects it *)
  try
    tool.Tool.free ~ptr:0xDEAD00;
    Alcotest.fail "foreign free must raise"
  with Heap.Error _ -> ()

let test_seed_changes_sampling () =
  (* Same allocation stream, different seeds: the post-startup sampling
     decisions eventually differ. *)
  let decisions seed =
    let rt, tool, _, _ = mk ~seed () in
    for i = 1 to 200 do
      let p = tool.Tool.malloc ~size:16 ~ctx:(ctx (i mod 10)) in
      tool.Tool.free ~ptr:p
    done;
    (Runtime.stats rt).Runtime.watched_times
  in
  let counts = List.map decisions [ 1; 2; 3; 4; 5; 6 ] in
  Alcotest.(check bool) "seeds diversify watch counts" true
    (List.sort_uniq compare counts <> [ List.hd counts ] || List.length counts = 1
     |> fun _ -> List.length (List.sort_uniq compare counts) > 1)

(* ------------------------------------------------------------------ *)
(* Equivalence pins: the hot-path optimizations (sparse-memory chunk
   cache and page pool, armed-event fast scan, context-lookup memo,
   derived Stats view) must be observably pure.  Two layers of defense:

   - a golden pin of the full app corpus — detection outcome, total
     virtual cycles, and digests of the formatted reports and program
     output, captured before the optimizations landed;
   - a same-process A/B run with the optimizations toggled back to their
     reference implementations, comparing outcome, cycles, reports, and
     the PRNG stream position. *)

let digest s = Digest.to_hex (Digest.string s)

(* Captured with `Execution.run ~config:Config.csod_default` on the
   pre-optimization tree.  Any cycle or digest drift means an
   "optimization" changed simulated behaviour, not just real time. *)
let golden =
  [ ("Zziplib", 1, false, 76425299347, 0, "d41d8cd98f00b204e9800998ecf8427e",
     "6c286be8351651ae0c5b39e08538364e");
    ("Zziplib", 2, false, 78650284947, 0, "d41d8cd98f00b204e9800998ecf8427e",
     "4849970a9b15a893799ccbc6bfb36510");
    ("Zziplib", 3, false, 69135299347, 0, "d41d8cd98f00b204e9800998ecf8427e",
     "ac6a95ba25af8fc0ae81c0caa590e424");
    ("Heartbleed", 1, true, 35566426229, 1, "9e044b28a64ae487f36d83460895f07a",
     "6176a62ff58568c1dc391b7a00989dd5");
    ("Heartbleed", 2, true, 34713929829, 1, "9e044b28a64ae487f36d83460895f07a",
     "6176a62ff58568c1dc391b7a00989dd5");
    ("Heartbleed", 3, true, 34608901029, 1, "9e044b28a64ae487f36d83460895f07a",
     "6176a62ff58568c1dc391b7a00989dd5");
    ("LibHX", 1, true, 23585120063, 2, "54bada3ab6338ecedb80f3ddbb19b547",
     "c41cc8eea4229607cc60254b6291e67d");
    ("LibHX", 2, true, 18857620063, 2, "54bada3ab6338ecedb80f3ddbb19b547",
     "c41cc8eea4229607cc60254b6291e67d");
    ("LibHX", 3, true, 21502620063, 2, "54bada3ab6338ecedb80f3ddbb19b547",
     "c41cc8eea4229607cc60254b6291e67d") ]

let formatted_reports app (o : Execution.outcome) =
  String.concat "\n---\n"
    (List.map
       (Report.format ~symbolize:(Execution.symbolizer app))
       o.Execution.reports)

(* The pins were captured on the AST interpreter before the VM existed;
   requiring both engines to hit them makes the golden corpus itself an
   engine-equivalence gate. *)
let test_golden_corpus () =
  List.iter
    (fun engine ->
      List.iter
        (fun (name, seed, detected, cycles, nreports, reports_md5, output_md5) ->
          let app = Option.get (Buggy_app.by_name name) in
          let o = Execution.run ~app ~config:Config.csod_default ~engine ~seed () in
          let tag fmt =
            Printf.sprintf "%s seed=%d engine=%s: %s" name seed
              (Engine.to_string engine) fmt
          in
          Alcotest.(check bool) (tag "detected") detected o.Execution.detected;
          Alcotest.(check int) (tag "cycles") cycles o.Execution.cycles;
          Alcotest.(check int) (tag "reports") nreports
            (List.length o.Execution.reports);
          Alcotest.(check string) (tag "reports digest") reports_md5
            (digest (formatted_reports app o));
          Alcotest.(check string) (tag "output digest") output_md5
            (digest o.Execution.output))
        golden)
    [ Engine.Interp; Engine.Vm ]

(* The full nine-app corpus, one execution per engine, comparing the two
   engines' outcomes field by field (no pinned constants: this guards the
   pairs the golden list doesn't pin). *)
let test_engine_ab_all_apps () =
  List.iter
    (fun (app : Buggy_app.t) ->
      let obs engine =
        let o =
          Execution.run ~app ~config:Config.csod_default ~engine ~seed:1 ()
        in
        ( o.Execution.detected,
          o.Execution.cycles,
          formatted_reports app o,
          o.Execution.output,
          o.Execution.crashed,
          o.Execution.degraded )
      in
      let d1, c1, r1, o1, cr1, g1 = obs Engine.Interp in
      let d2, c2, r2, o2, cr2, g2 = obs Engine.Vm in
      let tag fmt = Printf.sprintf "%s: %s" app.Buggy_app.name fmt in
      Alcotest.(check bool) (tag "detected") d1 d2;
      Alcotest.(check int) (tag "cycles") c1 c2;
      Alcotest.(check string) (tag "reports") r1 r2;
      Alcotest.(check string) (tag "output") o1 o2;
      Alcotest.(check (option string)) (tag "crash") cr1 cr2;
      Alcotest.(check bool) (tag "degraded") g1 g2)
    (Buggy_app.all ())

(* Interp-vs-vm A/B over the zziplib fleet: the whole crowdsourcing layer
   (epoch barriers, store merges, detection seats) must not notice which
   engine ran the users — and, per the fleet's own determinism contract,
   neither may the domain count. *)
let test_engine_ab_fleet () =
  let app = Option.get (Buggy_app.by_name "Zziplib") in
  let fleet_obs ~engine ~domains =
    let workload = Workload.make ~users:200 ~base_seed:1 () in
    let cfg = Fleet.config ~domains ~epoch_size:32 workload in
    let report =
      Fleet.run cfg
        ~execute:(Execution.executor ~app ~config:Config.csod_default ~engine ())
    in
    let detected_uids =
      Array.to_list report.Fleet.seats
      |> List.filter (fun s -> s.Fleet.exec.Fleet.detected)
      |> List.map (fun s -> s.Fleet.user.Workload.uid)
    in
    let cycle_sum =
      Array.fold_left
        (fun acc s -> acc + s.Fleet.exec.Fleet.cycles)
        0 report.Fleet.seats
    in
    ( report.Fleet.detections,
      detected_uids,
      (match report.Fleet.first_catch with
      | Some s -> Some (s.Fleet.epoch, s.Fleet.user.Workload.uid)
      | None -> None),
      cycle_sum,
      Persist.count report.Fleet.store,
      List.sort compare (Persist.keys report.Fleet.store) )
  in
  let reference = fleet_obs ~engine:Engine.Interp ~domains:1 in
  List.iter
    (fun domains ->
      List.iter
        (fun engine ->
          let d, uids, catch, cycles, stored, keys =
            fleet_obs ~engine ~domains
          in
          let rd, ruids, rcatch, rcycles, rstored, rkeys = reference in
          let tag fmt =
            Printf.sprintf "engine=%s domains=%d: %s" (Engine.to_string engine)
              domains fmt
          in
          Alcotest.(check int) (tag "detections") rd d;
          Alcotest.(check (list int)) (tag "detected uids") ruids uids;
          Alcotest.(check bool) (tag "first catch") true (catch = rcatch);
          Alcotest.(check int) (tag "total cycles") rcycles cycles;
          Alcotest.(check int) (tag "store size") rstored stored;
          Alcotest.(check bool) (tag "store keys") true (keys = rkeys))
        [ Engine.Interp; Engine.Vm ])
    [ 1; 2; 4 ]

(* Run one app manually (so the machine stays accessible) with the
   optimizations either as shipped or toggled to the reference
   implementations, and return every observable: outcome, cycles, the
   formatted reports, the machine's counters, and where the root PRNG
   stream ended up. *)
let run_manual ~reference (app : Buggy_app.t) ~seed =
  let program = Buggy_app.program app in
  let machine = Machine.create ~seed () in
  if reference then begin
    Sparse_mem.set_cache (Machine.mem machine) false;
    Hw_breakpoint.set_fast_scan (Machine.hw machine) false
  end;
  let heap = Heap.create machine in
  let inst =
    Config.instantiate Config.csod_default ~machine ~heap ~seed ()
  in
  (match inst.Config.csod with
  | Some rt ->
    if reference then
      Context_table.set_memo (Runtime.context_table rt) false
  | None -> ());
  let r =
    Interp.run ~machine ~tool:inst.Config.tool ~program
      ~inputs:app.Buggy_app.buggy_inputs ~app_seed:seed ()
  in
  inst.Config.finish ();
  let reports =
    match inst.Config.csod with
    | Some rt -> Runtime.detections rt
    | None -> []
  in
  ( inst.Config.detected (),
    Clock.cycles (Machine.clock machine),
    List.map (Report.format ~symbolize:(Execution.symbolizer app)) reports,
    Machine.access_count machine,
    Machine.trap_count machine,
    Machine.syscall_count machine,
    r.Interp.output,
    (* Where the machine's root generator ended up: equal next draws mean
       the two runs consumed the stream identically. *)
    Prng.bits64 (Machine.rng machine) )

let test_reference_equivalence () =
  List.iter
    (fun name ->
      let app = Option.get (Buggy_app.by_name name) in
      List.iter
        (fun seed ->
          let opt = run_manual ~reference:false app ~seed in
          let refr = run_manual ~reference:true app ~seed in
          let d1, c1, r1, a1, t1, s1, o1, p1 = opt in
          let d2, c2, r2, a2, t2, s2, o2, p2 = refr in
          let tag fmt = Printf.sprintf "%s seed=%d: %s" name seed fmt in
          Alcotest.(check bool) (tag "detected") d2 d1;
          Alcotest.(check int) (tag "cycles") c2 c1;
          Alcotest.(check (list string)) (tag "reports") r2 r1;
          Alcotest.(check int) (tag "accesses") a2 a1;
          Alcotest.(check int) (tag "traps") t2 t1;
          Alcotest.(check int) (tag "syscalls") s2 s1;
          Alcotest.(check string) (tag "output") o2 o1;
          Alcotest.(check int64) (tag "prng position") p2 p1)
        [ 1; 2 ])
    [ "Heartbleed"; "LibHX"; "Zziplib" ]

let suite =
  [ Alcotest.test_case "watchpoint detection (read+write)" `Quick
      test_watchpoint_detection_read_write;
    Alcotest.test_case "no false positives" `Quick test_no_false_positives_in_bounds;
    Alcotest.test_case "watch removed on free" `Quick test_watch_removed_on_free;
    Alcotest.test_case "canary at free" `Quick test_canary_at_free;
    Alcotest.test_case "canary at exit" `Quick test_canary_at_exit;
    Alcotest.test_case "no-evidence mode" `Quick test_no_evidence_mode;
    Alcotest.test_case "persisted context pinned" `Quick test_persist_pins_context;
    Alcotest.test_case "slot reused after detection" `Quick
      test_trap_after_detection_slot_reused;
    Alcotest.test_case "stats and memory" `Quick test_stats_and_memory;
    Alcotest.test_case "free NULL / foreign" `Quick test_free_null_and_foreign;
    Alcotest.test_case "seed changes sampling" `Quick test_seed_changes_sampling;
    Alcotest.test_case "golden corpus pin (cycles, reports, output)" `Quick
      test_golden_corpus;
    Alcotest.test_case "engine A/B: nine apps bit-identical" `Quick
      test_engine_ab_all_apps;
    Alcotest.test_case "engine A/B: zziplib fleet at 1/2/4 domains" `Quick
      test_engine_ab_fleet;
    Alcotest.test_case "optimizations vs reference: bit-identical" `Quick
      test_reference_equivalence ]
