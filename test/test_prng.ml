(* Unit and property tests for the per-thread PRNG. *)

let test_determinism () =
  let a = Prng.create ~seed:7 in
  let b = Prng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:7 in
  let b = Prng.create ~seed:8 in
  Alcotest.(check bool) "different seeds differ" true (Prng.bits64 a <> Prng.bits64 b)

let test_copy_preserves () =
  let a = Prng.create ~seed:3 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a) (Prng.bits64 b)

let test_split_diverges () =
  let a = Prng.create ~seed:3 in
  let b = Prng.split a in
  let xs = List.init 20 (fun _ -> Prng.bits64 a) in
  let ys = List.init 20 (fun _ -> Prng.bits64 b) in
  Alcotest.(check bool) "split stream differs" true (xs <> ys)

let test_fork_deterministic () =
  let stream label =
    let parent = Prng.create ~seed:11 in
    let g = Prng.fork parent label in
    List.init 20 (fun _ -> Prng.bits64 g)
  in
  Alcotest.(check bool) "same (parent, label): same substream" true
    (stream "sim:heap" = stream "sim:heap");
  Alcotest.(check bool) "different labels: different substreams" true
    (stream "sim:heap" <> stream "sim:store")

let test_fork_advances_parent_once () =
  let a = Prng.create ~seed:11 and b = Prng.create ~seed:11 in
  ignore (Prng.fork a "anything");
  ignore (Prng.bits64 b);
  Alcotest.(check int64) "parent advanced exactly one draw" (Prng.bits64 a)
    (Prng.bits64 b)

let test_fork_independent_of_parent_continuation () =
  (* The substream must not share state with the parent: draws on one do
     not perturb the other. *)
  let parent = Prng.create ~seed:3 in
  let g = Prng.fork parent "child" in
  let head = Prng.bits64 g in
  let parent' = Prng.create ~seed:3 in
  let g' = Prng.fork parent' "child" in
  for _ = 1 to 50 do
    ignore (Prng.bits64 parent')
  done;
  Alcotest.(check int64) "substream unaffected by parent draws" head
    (Prng.bits64 g');
  (* And statistically disjoint from the parent's own continuation. *)
  let xs = List.init 20 (fun _ -> Prng.bits64 parent) in
  let ys = List.init 20 (fun _ -> Prng.bits64 g) in
  Alcotest.(check bool) "fork stream differs from parent stream" true (xs <> ys)

let test_int_bound_edge () =
  let g = Prng.create ~seed:1 in
  for _ = 1 to 100 do
    Alcotest.(check int) "bound 1 is always 0" 0 (Prng.int g 1)
  done

let test_int_rejects_nonpositive () =
  let g = Prng.create ~seed:1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_below_percent_extremes () =
  let g = Prng.create ~seed:1 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=0 never passes" false (Prng.below_percent g 0.0);
    Alcotest.(check bool) "p=1 always passes" true (Prng.below_percent g 1.0);
    Alcotest.(check bool) "negative never passes" false (Prng.below_percent g (-0.5))
  done

let test_below_percent_rate () =
  let g = Prng.create ~seed:42 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.below_percent g 0.25 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.3f within 0.02 of 0.25" rate)
    true
    (abs_float (rate -. 0.25) < 0.02)

let test_float_range () =
  let g = Prng.create ~seed:5 in
  for _ = 1 to 1000 do
    let f = Prng.float g in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_bool_balance () =
  let g = Prng.create ~seed:17 in
  let t = ref 0 in
  for _ = 1 to 10_000 do
    if Prng.bool g then incr t
  done;
  Alcotest.(check bool) "roughly balanced" true (!t > 4_500 && !t < 5_500)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Prng.int stays in [0, bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let g = Prng.create ~seed in
      let v = Prng.int g bound in
      v >= 0 && v < bound)

let prop_canary_nonzero =
  QCheck.Test.make ~name:"canary64 never zero" ~count:300 QCheck.small_int
    (fun seed ->
      let g = Prng.create ~seed in
      List.for_all (fun _ -> Prng.canary64 g <> 0L) (List.init 10 Fun.id))

let suite =
  [ Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy preserves state" `Quick test_copy_preserves;
    Alcotest.test_case "split diverges" `Quick test_split_diverges;
    Alcotest.test_case "fork: label-salted determinism" `Quick
      test_fork_deterministic;
    Alcotest.test_case "fork: parent advances one draw" `Quick
      test_fork_advances_parent_once;
    Alcotest.test_case "fork: substream independence" `Quick
      test_fork_independent_of_parent_continuation;
    Alcotest.test_case "int bound 1" `Quick test_int_bound_edge;
    Alcotest.test_case "int rejects bound 0" `Quick test_int_rejects_nonpositive;
    Alcotest.test_case "below_percent extremes" `Quick test_below_percent_extremes;
    Alcotest.test_case "below_percent rate" `Quick test_below_percent_rate;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "bool balance" `Quick test_bool_balance;
    QCheck_alcotest.to_alcotest prop_int_in_bounds;
    QCheck_alcotest.to_alcotest prop_canary_nonzero ]
