(* Tests for the machine substrate: sparse memory, clock, threads, debug
   registers, perf-event surface, and trap delivery. *)

(* ---------- Sparse memory ---------- *)

let test_mem_bytes () =
  let m = Sparse_mem.create () in
  Alcotest.(check int) "untouched reads zero" 0 (Sparse_mem.read_u8 m 123456);
  Sparse_mem.write_u8 m 42 0x1FF;
  Alcotest.(check int) "low 8 bits stored" 0xFF (Sparse_mem.read_u8 m 42)

let test_mem_words () =
  let m = Sparse_mem.create () in
  Sparse_mem.write_u64 m 0x1000 0x1122334455667788L;
  Alcotest.(check int64) "roundtrip" 0x1122334455667788L (Sparse_mem.read_u64 m 0x1000);
  Alcotest.(check int) "little-endian byte" 0x88 (Sparse_mem.read_u8 m 0x1000);
  Alcotest.(check int) "high byte" 0x11 (Sparse_mem.read_u8 m 0x1007)

let test_mem_cross_chunk () =
  let m = Sparse_mem.create () in
  let addr = Sparse_mem.chunk_size - 3 in
  Sparse_mem.write_u64 m addr 0x0123456789ABCDEFL;
  Alcotest.(check int64) "straddling chunk boundary" 0x0123456789ABCDEFL
    (Sparse_mem.read_u64 m addr)

let test_mem_fill_and_int () =
  let m = Sparse_mem.create () in
  Sparse_mem.fill m 100 16 0xAB;
  Alcotest.(check int) "filled" 0xAB (Sparse_mem.read_u8 m 115);
  Alcotest.(check int) "outside fill" 0 (Sparse_mem.read_u8 m 116);
  Sparse_mem.write_int m 200 (-12345);
  Alcotest.(check int) "negative int roundtrip" (-12345) (Sparse_mem.read_int m 200)

let test_mem_negative_addr () =
  let m = Sparse_mem.create () in
  Alcotest.check_raises "negative address"
    (Invalid_argument "Sparse_mem: negative address") (fun () ->
      ignore (Sparse_mem.read_u8 m (-1)))

let prop_mem_roundtrip =
  QCheck.Test.make ~name:"sparse memory word roundtrip" ~count:300
    QCheck.(pair (int_range 0 1_000_000) int64)
    (fun (addr, v) ->
      let m = Sparse_mem.create () in
      Sparse_mem.write_u64 m addr v;
      Sparse_mem.read_u64 m addr = v)

(* ---------- Clock ---------- *)

let test_clock () =
  let c = Clock.create () in
  Alcotest.(check int) "starts at 0" 0 (Clock.cycles c);
  Clock.advance c 2_500_000_000;
  Alcotest.check (Alcotest.float 1e-9) "one second" 1.0 (Clock.seconds c);
  Alcotest.check_raises "negative advance"
    (Invalid_argument "Clock.advance: negative cycles") (fun () -> Clock.advance c (-1));
  let region = Clock.Region.start c in
  Clock.advance c 100;
  Alcotest.(check int) "region measures" 100 (Clock.Region.stop region);
  Clock.reset c;
  Alcotest.(check int) "reset" 0 (Clock.cycles c)

(* ---------- Threads ---------- *)

let test_threads () =
  let t = Threads.create () in
  Alcotest.(check (list int)) "main alive" [ 0 ] (Threads.alive t);
  Alcotest.(check string) "main name" "main" (Threads.name t 0);
  let spawned = ref [] in
  Threads.on_spawn t (fun tid -> spawned := tid :: !spawned);
  let a = Threads.spawn t ~name:"worker-a" in
  let b = Threads.spawn t ~name:"worker-b" in
  Alcotest.(check (list int)) "spawn order" [ 0; a; b ] (Threads.alive t);
  Alcotest.(check (list int)) "spawn hooks fired" [ b; a ] !spawned;
  Threads.set_current t a;
  Alcotest.(check int) "current" a (Threads.current t);
  Threads.exit_thread t a;
  Alcotest.(check int) "current falls back to main" 0 (Threads.current t);
  Alcotest.(check (list int)) "a gone" [ 0; b ] (Threads.alive t);
  Alcotest.check_raises "double exit"
    (Invalid_argument (Printf.sprintf "Threads.exit_thread: tid %d already dead" a))
    (fun () -> Threads.exit_thread t a);
  Alcotest.check_raises "main cannot exit"
    (Invalid_argument "Threads.exit_thread: main thread cannot exit") (fun () ->
      Threads.exit_thread t 0)

(* ---------- Hw_breakpoint ---------- *)

let test_hw_slots () =
  let hw = Hw_breakpoint.create () in
  let fds =
    List.map
      (fun i ->
        match Hw_breakpoint.perf_event_open hw ~addr:(0x1000 * i) ~tid:0 with
        | Ok fd -> fd
        | Error _ -> Alcotest.fail "unexpected open failure")
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check int) "four armed addrs" 4 (List.length (Hw_breakpoint.watched_addrs hw));
  (match Hw_breakpoint.perf_event_open hw ~addr:0x9000 ~tid:0 with
  | Error `ENOSPC -> ()
  | Error _ -> Alcotest.fail "fifth address must fail with ENOSPC"
  | Ok _ -> Alcotest.fail "fifth distinct address must fail");
  (* Same address for another thread does NOT consume a new slot. *)
  (match Hw_breakpoint.perf_event_open hw ~addr:0x1000 ~tid:1 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "same-address event should fit");
  List.iter (Hw_breakpoint.close hw) fds;
  Alcotest.(check int) "one addr left (tid 1's)" 1
    (List.length (Hw_breakpoint.watched_addrs hw))

let test_hw_trigger_semantics () =
  let hw = Hw_breakpoint.create () in
  let fd =
    match Hw_breakpoint.perf_event_open hw ~addr:0x2000 ~tid:7 with
    | Ok fd -> fd
    | Error _ -> Alcotest.fail "open failed"
  in
  let check ?(tid = 7) addr len =
    Hw_breakpoint.check_access hw ~addr ~len ~kind:Hw_breakpoint.Read ~tid
  in
  Alcotest.(check (option int)) "disabled: no fire" None (check 0x2000 8);
  Hw_breakpoint.fcntl_setup hw fd;
  Hw_breakpoint.ioctl_enable hw fd;
  Alcotest.(check (option int)) "exact hit" (Some fd) (check 0x2000 8);
  Alcotest.(check (option int)) "partial overlap low" (Some fd) (check 0x1FFF 2);
  Alcotest.(check (option int)) "inside watch range" (Some fd) (check 0x2007 1);
  Alcotest.(check (option int)) "past range" None (check 0x2008 8);
  Alcotest.(check (option int)) "before range" None (check 0x1FF0 8);
  Alcotest.(check (option int)) "other thread: no fire" None (check ~tid:8 0x2000 8);
  Hw_breakpoint.ioctl_disable hw fd;
  Alcotest.(check (option int)) "disabled again" None (check 0x2000 8);
  Alcotest.(check int) "fd still open" 1 (Hw_breakpoint.live_fd_count hw);
  Hw_breakpoint.close hw fd;
  Alcotest.(check int) "fd closed" 0 (Hw_breakpoint.live_fd_count hw)

let test_hw_syscall_count () =
  let hw = Hw_breakpoint.create () in
  let before = Hw_breakpoint.syscall_count hw in
  (match Hw_breakpoint.perf_event_open hw ~addr:0x100 ~tid:0 with
  | Ok fd ->
    Hw_breakpoint.fcntl_setup hw fd;
    Hw_breakpoint.ioctl_enable hw fd;
    Hw_breakpoint.ioctl_disable hw fd;
    Hw_breakpoint.close hw fd
  | Error _ -> Alcotest.fail "open failed");
  (* open(1) + fcntl(4) + enable(1) + disable(1) + close(1) = 8: the paper's
     per-thread install+remove syscall budget. *)
  Alcotest.(check int) "eight syscalls per install+remove" (before + 8)
    (Hw_breakpoint.syscall_count hw)

(* ---------- Machine: trap delivery ---------- *)

let test_machine_trap_delivery () =
  let m = Machine.create () in
  let traps = ref [] in
  Machine.set_trap_handler m (fun info -> traps := info :: !traps);
  let fd =
    match Machine.install_watch m ~addr:0x8000 ~tid:0 with
    | Ok fd -> fd
    | Error _ -> Alcotest.fail "install failed"
  in
  Machine.set_pc m 0xCAFE;
  ignore (Machine.load_word m 0x8000);
  (match !traps with
  | [ info ] ->
    Alcotest.(check int) "fd" fd info.Machine.fd;
    Alcotest.(check int) "pc recorded" 0xCAFE info.Machine.pc;
    Alcotest.(check int) "tid" 0 info.Machine.tid;
    Alcotest.(check bool) "read kind" true (info.Machine.access_kind = Hw_breakpoint.Read)
  | _ -> Alcotest.fail "expected exactly one trap");
  (* Writes fire too (HW_BREAKPOINT_RW). *)
  Machine.store_word m 0x8000 5;
  Alcotest.(check int) "write also traps" 2 (List.length !traps);
  (* Unwatched accesses never trap. *)
  ignore (Machine.load_word_unwatched m 0x8000);
  Machine.store_word_unwatched m 0x8000 6;
  Alcotest.(check int) "unwatched accesses silent" 2 (List.length !traps);
  Machine.remove_watch m fd;
  ignore (Machine.load_word m 0x8000);
  Alcotest.(check int) "removed watch silent" 2 (List.length !traps)

let test_machine_trap_to_accessing_thread () =
  let m = Machine.create () in
  let tids = ref [] in
  Machine.set_trap_handler m (fun info -> tids := info.Machine.tid :: !tids);
  let worker = Threads.spawn (Machine.threads m) ~name:"w" in
  (match Machine.install_watch m ~addr:0x9000 ~tid:worker with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "install failed");
  (* Main thread touches the address: no event is armed for tid 0. *)
  ignore (Machine.load_word m 0x9000);
  Alcotest.(check (list int)) "main does not trip worker's event" [] !tids;
  Threads.set_current (Machine.threads m) worker;
  ignore (Machine.load_word m 0x9000);
  Alcotest.(check (list int)) "delivered to accessing thread" [ worker ] !tids

let test_machine_unhandled_trap_counted () =
  let m = Machine.create () in
  (match Machine.install_watch m ~addr:0x7000 ~tid:0 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "install failed");
  ignore (Machine.load_word m 0x7000);
  Alcotest.(check int) "trap counted even without handler" 1 (Machine.trap_count m)

let test_machine_sbrk_and_costs () =
  let m = Machine.create () in
  let a = Machine.sbrk m 100 in
  let b = Machine.sbrk m 16 in
  Alcotest.(check int) "aligned growth" (a + 112) b;
  Alcotest.(check bool) "16-aligned" true (b mod 16 = 0);
  let before = Clock.cycles (Machine.clock m) in
  Machine.work m 500;
  Machine.charge_syscalls m 2;
  Alcotest.(check int) "work + syscalls advance the clock"
    (before + 500 + (2 * Cost.syscall))
    (Clock.cycles (Machine.clock m));
  Alcotest.(check int) "work accounted" 500 (Machine.work_cycles m);
  Alcotest.(check int) "syscalls accounted" 2 (Machine.syscall_count m)

let test_machine_backtrace_provider () =
  let m = Machine.create () in
  Machine.set_pc m 0x42;
  Alcotest.(check (list int)) "default: just pc" [ 0x42 ] (Machine.backtrace m);
  Machine.set_backtrace_provider m (fun () -> [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "provider wins" [ 1; 2; 3 ] (Machine.backtrace m)

(* The machine once kept two counting paths — a Stats.Counter shadow and
   the metrics registry — which could drift.  [Machine.counters] is now a
   view derived from the registry; this pins that every legacy accessor
   agrees with the registry after a mixed workload of handled traps,
   unhandled traps, accesses and syscalls. *)
let test_machine_counter_paths_agree () =
  let m = Machine.create () in
  let tid = Threads.current (Machine.threads m) in
  let fd =
    match Machine.install_watch m ~addr:0x500 ~tid with
    | Ok fd -> fd
    | Error _ -> Alcotest.fail "install failed"
  in
  (* Unhandled traps first (no handler installed), then handled ones. *)
  Machine.store_word m 0x500 1;
  ignore (Machine.load_word m 0x500);
  let handled = ref 0 in
  Machine.set_trap_handler m (fun _ -> incr handled);
  for i = 1 to 3 do
    Machine.store_word m 0x500 i
  done;
  Machine.remove_watch m fd;
  ignore (Machine.load_word m 0x500);
  let reg = List.to_seq (Metrics.counters_list (Machine.registry m)) in
  let metric name = Option.value ~default:0 (Seq.find_map (fun (k, v) -> if k = name then Some v else None) reg) in
  let legacy = Machine.counters m in
  Alcotest.(check int) "handled traps ran" 3 !handled;
  Alcotest.(check int) "stats traps = registry" (metric "trap.count")
    (Stats.Counter.get legacy "traps");
  Alcotest.(check int) "stats unhandled = registry" (metric "trap.unhandled")
    (Stats.Counter.get legacy "traps_unhandled");
  Alcotest.(check int) "trap_count = registry" (metric "trap.count")
    (Machine.trap_count m);
  Alcotest.(check int) "access_count = registry" (metric "machine.accesses")
    (Machine.access_count m);
  Alcotest.(check int) "syscall_count = registry" (metric "machine.syscalls")
    (Machine.syscall_count m);
  Alcotest.(check int) "traps: 2 unhandled + 3 handled" 5
    (Machine.trap_count m);
  Alcotest.(check int) "unhandled counted" 2
    (Stats.Counter.get legacy "traps_unhandled");
  Alcotest.(check int) "accesses counted" 6 (Machine.access_count m)

let suite =
  [ Alcotest.test_case "sparse mem bytes" `Quick test_mem_bytes;
    Alcotest.test_case "sparse mem words" `Quick test_mem_words;
    Alcotest.test_case "sparse mem cross-chunk" `Quick test_mem_cross_chunk;
    Alcotest.test_case "sparse mem fill/int" `Quick test_mem_fill_and_int;
    Alcotest.test_case "sparse mem negative addr" `Quick test_mem_negative_addr;
    QCheck_alcotest.to_alcotest prop_mem_roundtrip;
    Alcotest.test_case "clock" `Quick test_clock;
    Alcotest.test_case "threads" `Quick test_threads;
    Alcotest.test_case "hw: four slots" `Quick test_hw_slots;
    Alcotest.test_case "hw: trigger semantics" `Quick test_hw_trigger_semantics;
    Alcotest.test_case "hw: syscall budget" `Quick test_hw_syscall_count;
    Alcotest.test_case "machine: trap delivery" `Quick test_machine_trap_delivery;
    Alcotest.test_case "machine: trap to accessing thread" `Quick
      test_machine_trap_to_accessing_thread;
    Alcotest.test_case "machine: unhandled trap" `Quick test_machine_unhandled_trap_counted;
    Alcotest.test_case "machine: sbrk and costs" `Quick test_machine_sbrk_and_costs;
    Alcotest.test_case "machine: backtrace provider" `Quick test_machine_backtrace_provider;
    Alcotest.test_case "machine: counter paths never diverge" `Quick
      test_machine_counter_paths_agree ]
