(* Heartbleed under three tools.

   Runs the bundled Nginx+OpenSSL Heartbleed model (CVE-2014-0160) under
   the baseline allocator, the ASan model, and CSOD, and shows what each
   one sees.  CSOD's detection is probabilistic (one watchpoint must be
   guarding the record buffer when the malicious heartbeat lands), so the
   demo keeps executing until it fires, reporting the attempt count —
   exactly the paper's production story: a bug missed in one execution is
   caught in a later one.

     dune exec examples/heartbleed_demo.exe *)

let () =
  let app = Option.get (Buggy_app.by_name "Heartbleed") in

  Printf.printf "== baseline (no tool): the over-read goes unnoticed ==\n";
  let o = Execution.run ~app ~config:Config.Baseline () in
  Printf.printf "%s-> no detection mechanism, program %s\n\n" o.Execution.output
    (match o.Execution.crashed with Some m -> "crashed: " ^ m | None -> "exits normally");

  Printf.printf "== ASan (instrumented build): detects at the first execution ==\n";
  let o = Execution.run ~app ~config:Config.asan_min_redzone () in
  (match o.Execution.asan_detections with
  | d :: _ ->
    Printf.printf "heap-buffer-overflow %s at 0x%x\n  access compiled at %s\n\n"
      (match d.Asan.kind with Tool.Read -> "READ" | Tool.Write -> "WRITE")
      d.Asan.addr
      (Execution.symbolizer app d.Asan.site)
  | [] -> Printf.printf "(unexpected: ASan saw nothing)\n\n");

  Printf.printf "== CSOD (no recompilation, 4 hardware watchpoints) ==\n";
  (match Execution.run_until_detected ~app ~config:Config.csod_default ~max_runs:50 with
  | Some (n, o) ->
    Printf.printf "detected on execution %d:\n\n" n;
    List.iter
      (fun r ->
        print_endline (Report.format ~symbolize:(Execution.symbolizer app) r))
      o.Execution.watchpoint_reports
  | None -> Printf.printf "not detected within 50 executions (very unlucky seeds)\n");

  Printf.printf
    "The paper measures a 36--40%% per-execution detection rate for this bug\n\
     (Table II), at 6.7%% average overhead instead of ASan's ~39%%.\n"
