examples/quickstart.mli:
