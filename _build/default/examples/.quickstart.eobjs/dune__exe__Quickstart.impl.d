examples/quickstart.ml: Heap Interp List Machine Printf Program Report Runtime
