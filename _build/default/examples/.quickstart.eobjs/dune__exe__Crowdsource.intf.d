examples/crowdsource.mli:
