examples/crowdsource.ml: Buggy_app Config Execution List Persist Printf Report
