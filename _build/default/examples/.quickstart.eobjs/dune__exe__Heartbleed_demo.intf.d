examples/heartbleed_demo.mli:
