examples/heartbleed_demo.ml: Asan Buggy_app Config Execution List Option Printf Report Tool
