examples/custom_policy.ml: Buggy_app Config Execution List Option Params Printf
