(* Quickstart: the whole public API in one file.

   We build a simulated machine, put the CSOD runtime in front of its heap
   (the LD_PRELOAD step of the real tool), run a buggy MiniC program
   against it, and print the resulting overflow report.

     dune exec examples/quickstart.exe *)

let buggy_program =
  {|
// ring.c -- a tiny program with an off-by-one heap over-write
fn make_ring(n) {
  return malloc(n * 8);
}

fn fill(ring, n) {
  var i = 0;
  while (i <= n) {        // BUG: should be i < n
    ring[i] = i * i;
    i = i + 1;
  }
  return ring[0];
}

fn main() {
  var ring = make_ring(6);
  fill(ring, 6);
  print("ring[1] =", ring[1]);
  free(ring);
  return 0;
}
|}

let () =
  (* 1. A machine: memory, threads, debug registers, virtual clock. *)
  let machine = Machine.create ~seed:2024 () in

  (* 2. A heap on that machine — the substrate CSOD interposes on. *)
  let heap = Heap.create machine in

  (* 3. The CSOD runtime with the paper's default parameters (near-FIFO
        replacement, evidence canaries on). *)
  let runtime = Runtime.create ~machine ~heap () in

  (* 4. Load (lex, parse, check) the program and run it against CSOD's
        interposition surface. *)
  let program =
    Program.load_exn
      [ { Program.file = "ring.c"; module_name = "ring"; source = buggy_program } ]
  in
  let result = Interp.run ~machine ~tool:(Runtime.tool runtime) ~program () in
  print_string result.Interp.output;

  (* 5. End-of-execution handling (canary sweep), then the reports. *)
  Runtime.finish runtime;
  print_newline ();
  List.iter
    (fun report ->
      Printf.printf "[detected via %s]\n%s\n"
        (Report.source_name report.Report.source)
        (Report.format ~symbolize:(Program.symbolize program) report))
    (Runtime.detections runtime);

  let s = Runtime.stats runtime in
  Printf.printf
    "runtime stats: %d context(s), %d allocation(s), %d watched, %d trap(s)\n"
    s.Runtime.contexts s.Runtime.allocations s.Runtime.watched_times s.Runtime.traps
