(* The crowdsourcing deployment story (paper, Sections I and IV-B).

   CSOD is "particularly suitable for the crowdsourcing or cloud
   environments, where a program will be executed repeatedly by a large
   number of users".  This example simulates such a fleet for every
   bundled buggy application: each user executes the program once with a
   different seed; the runtime's persistent store of overflowing contexts
   is shared (the crowd aggregates evidence).  Once any user's canary or
   watchpoint catches the bug, every later execution pins the guilty
   context at probability 1.0 and catches it deterministically.

     dune exec examples/crowdsource.exe *)

let () =
  Printf.printf "%-12s %-10s %16s %14s  %s\n" "app" "class" "first detection"
    "mechanism" "then";
  List.iter
    (fun (app : Buggy_app.t) ->
      let store = Persist.create () in
      let config = Config.csod_default in
      (* Run users until first detection. *)
      let rec first_user u =
        if u > 200 then None
        else
          let o = Execution.run ~app ~config ~seed:u ~store () in
          match o.Execution.reports with
          | r :: _ -> Some (u, r.Report.source)
          | [] -> first_user (u + 1)
      in
      match first_user 1 with
      | None -> Printf.printf "%-12s not detected in 200 user executions\n" app.Buggy_app.name
      | Some (u, src) ->
        (* After the store knows the context, the next user must catch it
           with a watchpoint (probability pinned to 1). *)
        let o = Execution.run ~app ~config ~seed:(u + 1000) ~store () in
        let confirmed =
          List.exists
            (fun r -> r.Report.source = Report.Watchpoint)
            o.Execution.reports
        in
        Printf.printf "%-12s %-10s %16s %14s  %s\n" app.Buggy_app.name
          (Report.kind_name app.Buggy_app.vuln)
          (Printf.sprintf "user #%d" u)
          (Report.source_name src)
          (if confirmed then "every later user catches it (context pinned)"
           else "later user missed it (unexpected)"))
    (Buggy_app.all ())
