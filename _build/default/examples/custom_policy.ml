(* Tuning CSOD: parameters and policies through the public API.

   CSOD's sampling constants are compile-time macros in the paper
   ("which could be further adjusted based on the behavior of programs",
   Section III-B2); this reproduction exposes them as a record.  The
   example compares the three replacement policies and two parameter
   variants on the Memcached model, over a few dozen executions each —
   a miniature of the Table II experiment plus the ablation.

     dune exec examples/custom_policy.exe *)

let detection_rate ~app ~params ~runs =
  let config = Config.Csod params in
  let hits = ref 0 in
  for seed = 1 to runs do
    let o = Execution.run ~app ~config ~seed () in
    if o.Execution.watchpoint_reports <> [] then incr hits
  done;
  float_of_int !hits /. float_of_int runs

let () =
  let app = Option.get (Buggy_app.by_name "Memcached") in
  let runs = 40 in
  let base = { Params.default with Params.evidence = false } in
  let variants =
    [ ("naive policy", { base with Params.policy = Params.Naive });
      ("random policy", { base with Params.policy = Params.Random });
      ("near-FIFO policy (paper)", base);
      ( "pessimistic start (initial probability 1%)",
        { base with Params.initial_prob = 0.01 } );
      ( "aggressive degradation (halve to 1/8 per watch)",
        { base with Params.watch_decay_factor = 0.125 } );
      ( "slow watchpoint aging (60 s half-life)",
        { base with Params.installed_halflife_sec = 60.0 } ) ]
  in
  Printf.printf "Memcached (CVE-2016-8706), %d executions per variant:\n\n" runs;
  List.iter
    (fun (name, params) ->
      let rate = detection_rate ~app ~params ~runs in
      Printf.printf "  %-48s %4.0f%%\n" name (rate *. 100.0))
    variants;
  Printf.printf
    "\nThe paper's near-FIFO configuration detects this bug in ~18%% of\n\
     executions (Table II); the naive policy never does, because the four\n\
     watchpoints are pinned on long-lived start-up objects.\n"
