exception Runtime_error of string * Srcloc.t

type result = { output : string; return_value : int; steps : int }

(* One activation record.  [callsite] is the code address of the call
   expression that created the frame (for [main], the function entry),
   which is exactly what a return-address walk would surface. *)
type scope = (string * int ref) list ref

type frame = {
  func : Ast.func;
  callsite : int;
  sp : int; (* stack pointer after this frame was pushed *)
  mutable scopes : scope list;
}

type outcome = Normal | Returned of int | Broke | Continued

let stack_base = 0x7FFF_0000
let statement_cost = 2

type st = {
  m : Machine.t;
  tool : Tool.t;
  program : Program.t;
  inputs : int array;
  app_rng : Prng.t;
  buf : Buffer.t;
  mutable frames : frame list; (* innermost first *)
  mutable steps : int;
  step_limit : int;
}

let error loc fmt = Printf.ksprintf (fun msg -> raise (Runtime_error (msg, loc))) fmt

let frame st = List.hd st.frames

let lookup st loc name =
  let rec go = function
    | [] -> error loc "variable '%s' not found at runtime" name
    | scope :: rest -> (
      match List.assoc_opt name !scope with Some r -> r | None -> go rest)
  in
  go (frame st).scopes

(* Duplicate declarations are rejected statically by Sema, so declaration
   is a plain cons. *)
let declare st _loc name v =
  let scope = List.hd (frame st).scopes in
  scope := (name, ref v) :: !scope

let push_scope st = (frame st).scopes <- ref [] :: (frame st).scopes
let pop_scope st = (frame st).scopes <- List.tl (frame st).scopes

(* The full calling context, innermost first: current pc, then the call
   site of every live frame from innermost to outermost. *)
let backtrace_of_frames frames pc =
  pc :: List.map (fun f -> f.callsite) frames

let make_ctx st (call_expr : Ast.expr) : Alloc_ctx.t =
  let frames = st.frames in
  let sp = (frame st).sp in
  { Alloc_ctx.callsite = call_expr.eaddr;
    stack_offset = stack_base - sp;
    backtrace =
      (fun () ->
        Machine.work st.m Cost.backtrace_full;
        backtrace_of_frames frames call_expr.eaddr) }

let truthy v = v <> 0
let of_bool b = if b then 1 else 0

let access_kind_read = Tool.Read
let access_kind_write = Tool.Write

let word_access st (e : Ast.expr) addr kind =
  if addr < 0 then error e.eloc "invalid address %d" addr;
  Machine.set_pc st.m e.eaddr;
  st.tool.Tool.on_access ~addr ~len:8 ~kind ~site:e.eaddr;
  match kind with
  | Tool.Read -> Machine.load_word st.m addr
  | Tool.Write -> assert false

let word_store st (stmt : Ast.stmt) addr v =
  if addr < 0 then error stmt.sloc "invalid address %d" addr;
  Machine.set_pc st.m stmt.saddr;
  st.tool.Tool.on_access ~addr ~len:8 ~kind:access_kind_write ~site:stmt.saddr;
  Machine.store_word st.m addr v

let byte_access st loc site addr kind v =
  if addr < 0 then error loc "invalid address %d" addr;
  Machine.set_pc st.m site;
  st.tool.Tool.on_access ~addr ~len:1 ~kind ~site;
  match kind with
  | Tool.Read -> Machine.load_byte st.m addr
  | Tool.Write ->
    Machine.store_byte st.m addr v;
    0

let render_print_arg (e : Ast.expr) eval =
  match e.Ast.e with Ast.Str s -> s | _ -> string_of_int (eval e)

let rec eval st (e : Ast.expr) : int =
  match e.e with
  | Int n -> n
  | Str _ -> error e.eloc "string literal used as a value"
  | Var x -> !(lookup st e.eloc x)
  | Unop (Neg, a) -> -eval st a
  | Unop (Not, a) -> of_bool (not (truthy (eval st a)))
  | Binop (LAnd, a, b) -> if truthy (eval st a) then of_bool (truthy (eval st b)) else 0
  | Binop (LOr, a, b) -> if truthy (eval st a) then 1 else of_bool (truthy (eval st b))
  | Binop (op, a, b) -> (
    let va = eval st a in
    let vb = eval st b in
    match op with
    | Add -> va + vb
    | Sub -> va - vb
    | Mul -> va * vb
    | Div -> if vb = 0 then error e.eloc "division by zero" else va / vb
    | Mod -> if vb = 0 then error e.eloc "modulo by zero" else va mod vb
    | Lt -> of_bool (va < vb)
    | Le -> of_bool (va <= vb)
    | Gt -> of_bool (va > vb)
    | Ge -> of_bool (va >= vb)
    | Eq -> of_bool (va = vb)
    | Ne -> of_bool (va <> vb)
    | BAnd -> va land vb
    | BOr -> va lor vb
    | BXor -> va lxor vb
    | Shl -> va lsl (vb land 62)
    | Shr -> va lsr (vb land 62)
    | LAnd | LOr -> assert false)
  | Index (p, i) ->
    let base = eval st p in
    let idx = eval st i in
    word_access st e (base + (8 * idx)) access_kind_read
  | Call (name, args) -> call st e name args

and call st (e : Ast.expr) name args =
  match name with
  | "malloc" ->
    let size = eval st (List.nth args 0) in
    if size < 0 then error e.eloc "malloc of negative size %d" size;
    Machine.set_pc st.m e.eaddr;
    st.tool.Tool.malloc ~size ~ctx:(make_ctx st e)
  | "calloc" ->
    let count = eval st (List.nth args 0) in
    let size = eval st (List.nth args 1) in
    if count < 0 || size < 0 then error e.eloc "calloc with negative argument";
    let total = count * size in
    Machine.set_pc st.m e.eaddr;
    let p = st.tool.Tool.malloc ~size:total ~ctx:(make_ctx st e) in
    (* zeroing is in-bounds by definition; modeled as one bulk operation *)
    Sparse_mem.fill (Machine.mem st.m) p total 0;
    Machine.work st.m total;
    p
  | "free" ->
    let ptr = eval st (List.nth args 0) in
    Machine.set_pc st.m e.eaddr;
    st.tool.Tool.free ~ptr;
    0
  | "print" ->
    let parts = List.map (fun a -> render_print_arg a (eval st)) args in
    Buffer.add_string st.buf (String.concat " " parts);
    Buffer.add_char st.buf '\n';
    0
  | "input" ->
    let i = eval st (List.nth args 0) in
    if i < 0 || i >= Array.length st.inputs then
      error e.eloc "input index %d out of range (have %d)" i (Array.length st.inputs);
    st.inputs.(i)
  | "input_len" -> Array.length st.inputs
  | "rand" ->
    let n = eval st (List.nth args 0) in
    if n <= 0 then error e.eloc "rand bound must be positive" else Prng.int st.app_rng n
  | "memset" ->
    let p = eval st (List.nth args 0) in
    let v = eval st (List.nth args 1) in
    let n = eval st (List.nth args 2) in
    if n < 0 then error e.eloc "memset with negative length";
    for i = 0 to n - 1 do
      ignore (byte_access st e.eloc e.eaddr (p + i) access_kind_write (v land 0xff))
    done;
    0
  | "memcpy" ->
    let d = eval st (List.nth args 0) in
    let s = eval st (List.nth args 1) in
    let n = eval st (List.nth args 2) in
    if n < 0 then error e.eloc "memcpy with negative length";
    for i = 0 to n - 1 do
      let b = byte_access st e.eloc e.eaddr (s + i) access_kind_read 0 in
      ignore (byte_access st e.eloc e.eaddr (d + i) access_kind_write b)
    done;
    0
  | "load8" ->
    let p = eval st (List.nth args 0) in
    let off = eval st (List.nth args 1) in
    byte_access st e.eloc e.eaddr (p + off) access_kind_read 0
  | "store8" ->
    let p = eval st (List.nth args 0) in
    let off = eval st (List.nth args 1) in
    let v = eval st (List.nth args 2) in
    ignore (byte_access st e.eloc e.eaddr (p + off) access_kind_write (v land 0xff));
    0
  | "sleep_ms" ->
    let ms = eval st (List.nth args 0) in
    if ms < 0 then error e.eloc "sleep_ms with negative duration";
    Machine.work st.m (ms * (Cost.cycles_per_second / 1000));
    0
  | "work" ->
    let n = eval st (List.nth args 0) in
    if n < 0 then error e.eloc "work with negative cycles";
    Machine.work st.m n;
    0
  | "spawn" -> (
    match args with
    | { Ast.e = Ast.Str target; _ } :: rest ->
      let vals = List.map (eval st) rest in
      let threads = Machine.threads st.m in
      let parent = Threads.current threads in
      let tid = Threads.spawn threads ~name:target in
      Threads.set_current threads tid;
      let r =
        Fun.protect
          ~finally:(fun () ->
            Threads.exit_thread threads tid;
            Threads.set_current threads parent)
          (fun () -> call_function st e.eaddr target vals)
      in
      r
    | _ -> error e.eloc "spawn requires a function-name string")
  | _ ->
    let vals = List.map (eval st) args in
    call_function st e.eaddr name vals

and call_function st callsite name vals =
  let f =
    match Program.func st.program name with
    | Some f -> f
    | None -> error Srcloc.dummy "undefined function '%s'" name
  in
  let parent_sp = match st.frames with [] -> stack_base | fr :: _ -> fr.sp in
  let scope = ref (List.rev_map2 (fun p v -> (p, ref v)) f.params vals) in
  let fr =
    { func = f;
      callsite;
      sp = parent_sp - Program.frame_size st.program name;
      scopes = [ scope ] }
  in
  st.frames <- fr :: st.frames;
  let result =
    match exec_block st f.body with
    | Returned v -> v
    | Normal -> 0
    | Broke | Continued -> assert false
  in
  st.frames <- List.tl st.frames;
  result

and exec_block st stmts =
  push_scope st;
  let rec go = function
    | [] -> Normal
    | s :: rest -> (
      match exec_stmt st s with Normal -> go rest | other -> other)
  in
  let out = go stmts in
  pop_scope st;
  out

and exec_stmt st (stmt : Ast.stmt) : outcome =
  st.steps <- st.steps + 1;
  if st.steps > st.step_limit then
    error stmt.sloc "step limit exceeded (%d statements)" st.step_limit;
  Machine.set_pc st.m stmt.saddr;
  Machine.work st.m statement_cost;
  match stmt.s with
  | Decl (x, e) ->
    let v = eval st e in
    declare st stmt.sloc x v;
    Normal
  | Assign (x, e) ->
    let v = eval st e in
    lookup st stmt.sloc x := v;
    Normal
  | Store (p, i, e) ->
    let base = eval st p in
    let idx = eval st i in
    let v = eval st e in
    word_store st stmt (base + (8 * idx)) v;
    Normal
  | If (c, b1, b2) -> if truthy (eval st c) then exec_block st b1 else exec_block st b2
  | While (c, body) ->
    let rec loop () =
      if truthy (eval st c) then
        match exec_block st body with
        | Normal | Continued -> loop ()
        | Broke -> Normal
        | Returned _ as r -> r
      else Normal
    in
    loop ()
  | For (init, cond, step, body) ->
    push_scope st;
    let out =
      match exec_stmt st init with
      | Returned _ as r -> r
      | Broke | Continued -> assert false
      | Normal ->
        let rec loop () =
          if truthy (eval st cond) then
            let body_out = exec_block st body in
            match body_out with
            | Normal | Continued -> (
              match exec_stmt st step with
              | Normal -> loop ()
              | Returned _ as r -> r
              | Broke | Continued -> assert false)
            | Broke -> Normal
            | Returned _ as r -> r
          else Normal
        in
        loop ()
    in
    pop_scope st;
    out
  | Return None -> Returned 0
  | Return (Some e) -> Returned (eval st e)
  | Break -> Broke
  | Continue -> Continued
  | Expr e ->
    ignore (eval st e);
    Normal

let run ~machine ~tool ~program ?(inputs = [||]) ?(app_seed = 1) ?(step_limit = 50_000_000)
    () =
  let main =
    match Program.func program "main" with
    | Some f -> f
    | None -> failwith "Interp.run: program has no main (did Sema run?)"
  in
  let st =
    { m = machine;
      tool;
      program;
      inputs;
      app_rng = Prng.create ~seed:app_seed;
      buf = Buffer.create 256;
      frames = [];
      steps = 0;
      step_limit }
  in
  Machine.set_backtrace_provider machine (fun () ->
      backtrace_of_frames st.frames (Machine.pc machine));
  let rv = call_function st main.faddr "main" [] in
  { output = Buffer.contents st.buf; return_value = rv; steps = st.steps }
