type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | LAnd | LOr
  | BAnd | BOr | BXor | Shl | Shr

type expr = { e : expr_kind; eloc : Srcloc.t; eaddr : int }

and expr_kind =
  | Int of int
  | Str of string
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list
  | Index of expr * expr

type stmt = { s : stmt_kind; sloc : Srcloc.t; saddr : int }

and stmt_kind =
  | Decl of string * expr
  | Assign of string * expr
  | Store of expr * expr * expr
  | If of expr * block * block
  | While of expr * block
  | For of stmt * expr * stmt * block
  | Return of expr option
  | Break
  | Continue
  | Expr of expr

and block = stmt list

type func = {
  fname : string;
  params : string list;
  body : block;
  floc : Srcloc.t;
  fmodule : string;
  faddr : int;
}

let rec iter_stmts f block = List.iter (iter_stmt f) block

and iter_stmt f st =
  f st;
  match st.s with
  | Decl _ | Assign _ | Store _ | Return _ | Break | Continue | Expr _ -> ()
  | If (_, b1, b2) ->
    iter_stmts f b1;
    iter_stmts f b2
  | While (_, b) -> iter_stmts f b
  | For (init, _, step, b) ->
    iter_stmt f init;
    iter_stmt f step;
    iter_stmts f b

let rec iter_expr f e =
  (match e.e with
  | Int _ | Str _ | Var _ -> ()
  | Unop (_, a) -> iter_expr f a
  | Binop (_, a, b) ->
    iter_expr f a;
    iter_expr f b
  | Call (_, args) -> List.iter (iter_expr f) args
  | Index (a, b) ->
    iter_expr f a;
    iter_expr f b);
  f e

let iter_exprs f block =
  iter_stmts
    (fun st ->
      match st.s with
      | Decl (_, e) | Assign (_, e) -> iter_expr f e
      | Store (a, b, c) ->
        iter_expr f a;
        iter_expr f b;
        iter_expr f c
      | If (c, _, _) | While (c, _) -> iter_expr f c
      | For (_, c, _, _) -> iter_expr f c
      | Return (Some e) -> iter_expr f e
      | Return None | Break | Continue -> ()
      | Expr e -> iter_expr f e)
    block

let count_decls block =
  let n = ref 0 in
  iter_stmts (fun st -> match st.s with Decl _ -> incr n | _ -> ()) block;
  !n
