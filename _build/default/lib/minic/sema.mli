(** Static semantic checks for MiniC programs.

    Runs after parsing and before interpretation.  Rejects:
    - duplicate function definitions;
    - a missing or parameterized [main];
    - calls to unknown functions, and arity mismatches (both user functions
      and builtins);
    - use or assignment of undeclared variables; duplicate declarations in
      the same scope;
    - [break]/[continue] outside a loop;
    - string literals anywhere but as [print] arguments or a [spawn]
      target;
    - [spawn] of an unknown function or with an argument-count mismatch. *)

val check : Ast.func list -> (string * Srcloc.t) list
(** All violations found, in source order; empty means well-formed. *)
