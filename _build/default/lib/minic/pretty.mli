(** Pretty-printer for MiniC.

    Renders an AST back to concrete syntax that the parser accepts and
    that parses to a structurally identical tree (code addresses and
    source locations aside) — the round-trip law the test suite checks by
    property.  Used by tooling that wants to display or re-emit checked
    programs (e.g. the CLI's [--dump] flag). *)

val expr : Format.formatter -> Ast.expr -> unit
(** Minimal parentheses: emitted only where precedence or associativity
    requires them. *)

val stmt : Format.formatter -> Ast.stmt -> unit
val func : Format.formatter -> Ast.func -> unit

val program_to_string : Ast.func list -> string
(** Whole compilation unit, functions separated by blank lines. *)

val expr_to_string : Ast.expr -> string
