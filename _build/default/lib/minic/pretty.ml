(* Precedence levels mirror Parser.binop_of_tok: higher binds tighter. *)
let prec = function
  | Ast.LOr -> 1
  | Ast.LAnd -> 2
  | Ast.BOr -> 3
  | Ast.BXor -> 4
  | Ast.BAnd -> 5
  | Ast.Eq | Ast.Ne -> 6
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 7
  | Ast.Shl | Ast.Shr -> 8
  | Ast.Add | Ast.Sub -> 9
  | Ast.Mul | Ast.Div | Ast.Mod -> 10

let op_str = function
  | Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/"
  | Ast.Mod -> "%" | Ast.Lt -> "<" | Ast.Le -> "<=" | Ast.Gt -> ">"
  | Ast.Ge -> ">=" | Ast.Eq -> "==" | Ast.Ne -> "!=" | Ast.LAnd -> "&&"
  | Ast.LOr -> "||" | Ast.BAnd -> "&" | Ast.BOr -> "|" | Ast.BXor -> "^"
  | Ast.Shl -> "<<" | Ast.Shr -> ">>"

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* [ctx] is the minimal precedence this position accepts without parens;
   binary operators are left-associative, so the right operand of a
   same-precedence operator needs one level more. *)
let rec pp_expr ctx ppf (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Int n ->
    if n < 0 then Format.fprintf ppf "(0 - %d)" (-n) else Format.pp_print_int ppf n
  | Ast.Str s -> Format.fprintf ppf "\"%s\"" (escape s)
  | Ast.Var x -> Format.pp_print_string ppf x
  | Ast.Unop (op, a) ->
    let s = match op with Ast.Neg -> "-" | Ast.Not -> "!" in
    let body ppf () = Format.fprintf ppf "%s%a" s (pp_expr 11) a in
    if ctx > 11 then Format.fprintf ppf "(%a)" body () else body ppf ()
  | Ast.Binop (op, a, b) ->
    let p = prec op in
    let body ppf () =
      Format.fprintf ppf "%a %s %a" (pp_expr p) a (op_str op) (pp_expr (p + 1)) b
    in
    if p < ctx then Format.fprintf ppf "(%a)" body () else body ppf ()
  | Ast.Call (f, args) ->
    Format.fprintf ppf "%s(%a)" f
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (pp_expr 1))
      args
  | Ast.Index (p, i) ->
    Format.fprintf ppf "%a[%a]" (pp_expr 12) p (pp_expr 1) i

let expr ppf e = pp_expr 1 ppf e

let rec pp_stmt indent ppf (s : Ast.stmt) =
  let pad = String.make indent ' ' in
  match s.Ast.s with
  | Ast.Decl (x, e) -> Format.fprintf ppf "%svar %s = %a;" pad x expr e
  | Ast.Assign (x, e) -> Format.fprintf ppf "%s%s = %a;" pad x expr e
  | Ast.Store (p, i, v) ->
    Format.fprintf ppf "%s%a[%a] = %a;" pad (pp_expr 12) p expr i expr v
  | Ast.If (c, b1, b2) ->
    Format.fprintf ppf "%sif (%a) {%a\n%s}" pad expr c (pp_block (indent + 2)) b1 pad;
    if b2 <> [] then
      Format.fprintf ppf " else {%a\n%s}" (pp_block (indent + 2)) b2 pad
  | Ast.While (c, b) ->
    Format.fprintf ppf "%swhile (%a) {%a\n%s}" pad expr c (pp_block (indent + 2)) b pad
  | Ast.For (init, c, step, b) ->
    Format.fprintf ppf "%sfor (%a %a; %a) {%a\n%s}" pad (pp_simple) init expr c
      (pp_simple_no_semi) step (pp_block (indent + 2)) b pad
  | Ast.Return None -> Format.fprintf ppf "%sreturn;" pad
  | Ast.Return (Some e) -> Format.fprintf ppf "%sreturn %a;" pad expr e
  | Ast.Break -> Format.fprintf ppf "%sbreak;" pad
  | Ast.Continue -> Format.fprintf ppf "%scontinue;" pad
  | Ast.Expr e -> Format.fprintf ppf "%s%a;" pad expr e

(* for-headers reuse the statement forms without indentation *)
and pp_simple ppf (s : Ast.stmt) =
  match s.Ast.s with
  | Ast.Decl (x, e) -> Format.fprintf ppf "var %s = %a;" x expr e
  | Ast.Assign (x, e) -> Format.fprintf ppf "%s = %a;" x expr e
  | Ast.Store (p, i, v) -> Format.fprintf ppf "%a[%a] = %a;" (pp_expr 12) p expr i expr v
  | Ast.Expr e -> Format.fprintf ppf "%a;" expr e
  | _ -> invalid_arg "Pretty: not a simple statement"

and pp_simple_no_semi ppf (s : Ast.stmt) =
  match s.Ast.s with
  | Ast.Decl (x, e) -> Format.fprintf ppf "var %s = %a" x expr e
  | Ast.Assign (x, e) -> Format.fprintf ppf "%s = %a" x expr e
  | Ast.Store (p, i, v) -> Format.fprintf ppf "%a[%a] = %a" (pp_expr 12) p expr i expr v
  | Ast.Expr e -> expr ppf e
  | _ -> invalid_arg "Pretty: not a simple statement"

and pp_block indent ppf stmts =
  List.iter (fun s -> Format.fprintf ppf "\n%a" (pp_stmt indent) s) stmts

let stmt ppf s = pp_stmt 0 ppf s

let func ppf (f : Ast.func) =
  Format.fprintf ppf "fn %s(%s) {%a\n}" f.Ast.fname
    (String.concat ", " f.Ast.params)
    (pp_block 2) f.Ast.body

let program_to_string funcs =
  String.concat "\n\n" (List.map (Format.asprintf "%a" func) funcs)

let expr_to_string e = Format.asprintf "%a" expr e
