exception Parse_error of string * Srcloc.t

type st = {
  toks : Token.spanned array;
  mutable pos : int;
  counter : int ref;
  file : string;
  module_name : string;
}

let code_addr_stride = 4

let fresh st =
  let a = !(st.counter) in
  st.counter := a + code_addr_stride;
  a

let cur st = st.toks.(st.pos)
let cur_tok st = (cur st).Token.tok
let cur_loc st = (cur st).Token.loc

let error st msg = raise (Parse_error (msg, cur_loc st))

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let expect st tok =
  if cur_tok st = tok then advance st
  else
    error st
      (Printf.sprintf "expected '%s', found '%s'" (Token.to_string tok)
         (Token.to_string (cur_tok st)))

let expect_ident st =
  match cur_tok st with
  | Token.IDENT id ->
    advance st;
    id
  | t -> error st (Printf.sprintf "expected identifier, found '%s'" (Token.to_string t))

(* Binary operator precedence, higher binds tighter. *)
let binop_of_tok = function
  | Token.OR -> Some (Ast.LOr, 1)
  | Token.AND -> Some (Ast.LAnd, 2)
  | Token.PIPE -> Some (Ast.BOr, 3)
  | Token.CARET -> Some (Ast.BXor, 4)
  | Token.AMP -> Some (Ast.BAnd, 5)
  | Token.EQ -> Some (Ast.Eq, 6)
  | Token.NE -> Some (Ast.Ne, 6)
  | Token.LT -> Some (Ast.Lt, 7)
  | Token.LE -> Some (Ast.Le, 7)
  | Token.GT -> Some (Ast.Gt, 7)
  | Token.GE -> Some (Ast.Ge, 7)
  | Token.SHL -> Some (Ast.Shl, 8)
  | Token.SHR -> Some (Ast.Shr, 8)
  | Token.PLUS -> Some (Ast.Add, 9)
  | Token.MINUS -> Some (Ast.Sub, 9)
  | Token.STAR -> Some (Ast.Mul, 10)
  | Token.SLASH -> Some (Ast.Div, 10)
  | Token.PERCENT -> Some (Ast.Mod, 10)
  | _ -> None

let mk_expr st loc e : Ast.expr = { e; eloc = loc; eaddr = fresh st }

let rec parse_expr st = parse_binary st 1

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_tok (cur_tok st) with
    | Some (op, prec) when prec >= min_prec ->
      let loc = cur_loc st in
      advance st;
      let rhs = parse_binary st (prec + 1) in
      lhs := mk_expr st loc (Ast.Binop (op, !lhs, rhs))
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  let loc = cur_loc st in
  match cur_tok st with
  | Token.MINUS ->
    advance st;
    mk_expr st loc (Ast.Unop (Ast.Neg, parse_unary st))
  | Token.NOT ->
    advance st;
    mk_expr st loc (Ast.Unop (Ast.Not, parse_unary st))
  | _ -> parse_postfix st

and parse_postfix st =
  let base = parse_primary st in
  let rec go e =
    match cur_tok st with
    | Token.LBRACKET ->
      let loc = cur_loc st in
      advance st;
      let idx = parse_expr st in
      expect st Token.RBRACKET;
      go (mk_expr st loc (Ast.Index (e, idx)))
    | _ -> e
  in
  go base

and parse_primary st =
  let loc = cur_loc st in
  match cur_tok st with
  | Token.INT n ->
    advance st;
    mk_expr st loc (Ast.Int n)
  | Token.STRING s ->
    advance st;
    mk_expr st loc (Ast.Str s)
  | Token.IDENT id ->
    advance st;
    if cur_tok st = Token.LPAREN then begin
      advance st;
      let args = parse_args st in
      expect st Token.RPAREN;
      mk_expr st loc (Ast.Call (id, args))
    end
    else mk_expr st loc (Ast.Var id)
  | Token.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Token.RPAREN;
    e
  | t -> error st (Printf.sprintf "expected expression, found '%s'" (Token.to_string t))

and parse_args st =
  if cur_tok st = Token.RPAREN then []
  else
    let rec go acc =
      let e = parse_expr st in
      if cur_tok st = Token.COMMA then begin
        advance st;
        go (e :: acc)
      end
      else List.rev (e :: acc)
    in
    go []

let mk_stmt st loc s : Ast.stmt = { s; sloc = loc; saddr = fresh st }

(* A "simple" statement: declaration, assignment, store, or expression. *)
let parse_simple st =
  let loc = cur_loc st in
  match cur_tok st with
  | Token.KW_VAR ->
    advance st;
    let name = expect_ident st in
    expect st Token.ASSIGN;
    let e = parse_expr st in
    mk_stmt st loc (Ast.Decl (name, e))
  | _ ->
    let e = parse_expr st in
    if cur_tok st = Token.ASSIGN then begin
      advance st;
      let rhs = parse_expr st in
      match e.Ast.e with
      | Ast.Var x -> mk_stmt st loc (Ast.Assign (x, rhs))
      | Ast.Index (p, i) -> mk_stmt st loc (Ast.Store (p, i, rhs))
      | _ -> error st "invalid assignment target"
    end
    else mk_stmt st loc (Ast.Expr e)

let rec parse_stmt st =
  let loc = cur_loc st in
  match cur_tok st with
  | Token.KW_IF ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expr st in
    expect st Token.RPAREN;
    let then_b = parse_block st in
    let else_b =
      if cur_tok st = Token.KW_ELSE then begin
        advance st;
        if cur_tok st = Token.KW_IF then [ parse_stmt st ] else parse_block st
      end
      else []
    in
    mk_stmt st loc (Ast.If (cond, then_b, else_b))
  | Token.KW_WHILE ->
    advance st;
    expect st Token.LPAREN;
    let cond = parse_expr st in
    expect st Token.RPAREN;
    let body = parse_block st in
    mk_stmt st loc (Ast.While (cond, body))
  | Token.KW_FOR ->
    advance st;
    expect st Token.LPAREN;
    let init = parse_simple st in
    expect st Token.SEMI;
    let cond = parse_expr st in
    expect st Token.SEMI;
    let step = parse_simple st in
    expect st Token.RPAREN;
    let body = parse_block st in
    mk_stmt st loc (Ast.For (init, cond, step, body))
  | Token.KW_RETURN ->
    advance st;
    if cur_tok st = Token.SEMI then begin
      advance st;
      mk_stmt st loc (Ast.Return None)
    end
    else begin
      let e = parse_expr st in
      expect st Token.SEMI;
      mk_stmt st loc (Ast.Return (Some e))
    end
  | Token.KW_BREAK ->
    advance st;
    expect st Token.SEMI;
    mk_stmt st loc Ast.Break
  | Token.KW_CONTINUE ->
    advance st;
    expect st Token.SEMI;
    mk_stmt st loc Ast.Continue
  | _ ->
    let s = parse_simple st in
    expect st Token.SEMI;
    s

and parse_block st =
  expect st Token.LBRACE;
  let rec go acc =
    if cur_tok st = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else go (parse_stmt st :: acc)
  in
  go []

let parse_fndef st : Ast.func =
  let loc = cur_loc st in
  expect st Token.KW_FN;
  let faddr = fresh st in
  let fname = expect_ident st in
  expect st Token.LPAREN;
  let params =
    if cur_tok st = Token.RPAREN then []
    else
      let rec go acc =
        let p = expect_ident st in
        if cur_tok st = Token.COMMA then begin
          advance st;
          go (p :: acc)
        end
        else List.rev (p :: acc)
      in
      go []
  in
  expect st Token.RPAREN;
  let body = parse_block st in
  { fname; params; body; floc = loc; fmodule = st.module_name; faddr }

let parse_unit ~counter ~file ~module_name src =
  let toks = Array.of_list (Lexer.tokenize ~file src) in
  let st = { toks; pos = 0; counter; file; module_name } in
  let rec go acc =
    if cur_tok st = Token.EOF then List.rev acc else go (parse_fndef st :: acc)
  in
  go []
