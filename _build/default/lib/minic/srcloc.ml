type t = { file : string; line : int; col : int }

let v ~file ~line ~col = { file; line; col }
let dummy = { file = "<none>"; line = 0; col = 0 }
let pp ppf t = Format.fprintf ppf "%s:%d" t.file t.line
let to_string t = Format.asprintf "%a" pp t
