type arity = Exact of int | Between of int * int | At_least of int

let all =
  [ ("malloc", Exact 1);      (* malloc(bytes) -> ptr *)
    ("calloc", Exact 2);      (* calloc(count, size) -> zeroed ptr *)
    ("free", Exact 1);        (* free(ptr) *)
    ("print", At_least 1);    (* print(args...) *)
    ("input", Exact 1);       (* input(i) -> i-th driver-supplied int *)
    ("input_len", Exact 0);
    ("rand", Exact 1);        (* rand(n) -> uniform in [0, n) *)
    ("memset", Exact 3);      (* memset(ptr, byte, len) *)
    ("memcpy", Exact 3);      (* memcpy(dst, src, len) *)
    ("load8", Exact 2);       (* load8(ptr, off) -> byte *)
    ("store8", Exact 3);      (* store8(ptr, off, byte) *)
    ("spawn", Between (1, 2)); (* spawn("fname" [, arg]) on a new thread *)
    ("sleep_ms", Exact 1);    (* advance virtual time; models I/O or compute *)
    ("work", Exact 1) ]       (* burn n virtual cycles of computation *)

let arity name = List.assoc_opt name all
let is_builtin name = arity name <> None
