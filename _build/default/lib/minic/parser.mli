(** Recursive-descent parser for MiniC.

    Grammar (lowest-precedence first for expressions):
    {v
      unit   ::= fndef*
      fndef  ::= "fn" IDENT "(" [IDENT {"," IDENT}] ")" block
      block  ::= "{" stmt* "}"
      stmt   ::= "var" IDENT "=" expr ";"
               | "if" "(" expr ")" block ["else" (block | if-stmt)]
               | "while" "(" expr ")" block
               | "for" "(" simple ";" expr ";" simple ")" block
               | "return" [expr] ";" | "break" ";" | "continue" ";"
               | simple ";"
      simple ::= lvalue "=" expr | expr        (lvalue: IDENT or e "[" e "]")
      expr   ::= "||" < "&&" < "|" < "^" < "&" < ("=="|"!=")
               < ("<"|"<="|">"|">=") < ("<<"|">>") < ("+"|"-")
               < ("*"|"/"|"%") < unary < postfix (call / index) < primary
    v}

    Every node is stamped with a code address drawn from the caller's
    counter, so addresses are unique across all compilation units of one
    program. *)

exception Parse_error of string * Srcloc.t

val parse_unit :
  counter:int ref -> file:string -> module_name:string -> string -> Ast.func list
(** [parse_unit ~counter ~file ~module_name src] parses one source file into
    its function definitions.  [counter] supplies code addresses and is
    advanced; pass the same reference for every unit of a program. *)
