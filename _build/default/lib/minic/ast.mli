(** Abstract syntax of MiniC.

    Every node carries a source location and a unique {e code address}
    assigned by the parser from a program-wide counter.  Code addresses are
    the simulation's stand-in for instruction addresses: the pair
    (allocation call-site address, stack offset) keys the paper's context
    table, and the symbolizer maps addresses back to [file:line (function)]
    frames for Figure 6 style reports. *)

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | LAnd | LOr
  | BAnd | BOr | BXor | Shl | Shr

type expr = { e : expr_kind; eloc : Srcloc.t; eaddr : int }

and expr_kind =
  | Int of int
  | Str of string
      (** String literal; only legal as a [print] argument (checked by
          {!Sema}). *)
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list
      (** Function or builtin call; the node's address is the call site. *)
  | Index of expr * expr
      (** [p\[i\]]: word load from address [p + 8*i]. *)

type stmt = { s : stmt_kind; sloc : Srcloc.t; saddr : int }

and stmt_kind =
  | Decl of string * expr          (** [var x = e;] *)
  | Assign of string * expr        (** [x = e;] *)
  | Store of expr * expr * expr    (** [p\[i\] = e;]: word store *)
  | If of expr * block * block
  | While of expr * block
  | For of stmt * expr * stmt * block
      (** [for (init; cond; step) body]; [init]/[step] are [Decl]/[Assign]
          statements. *)
  | Return of expr option
  | Break
  | Continue
  | Expr of expr                   (** expression statement (a call) *)

and block = stmt list

type func = {
  fname : string;
  params : string list;
  body : block;
  floc : Srcloc.t;
  fmodule : string;
      (** Module (library) tag: decides whether ASan-style static
          instrumentation covers this function's accesses. *)
  faddr : int;  (** code address of the function entry *)
}

val count_decls : block -> int
(** Number of [Decl] statements anywhere in a block — used to size stack
    frames, which in turn determines the context-key stack offsets. *)

val iter_exprs : (expr -> unit) -> block -> unit
(** Visit every expression in a block, innermost last. *)

val iter_stmts : (stmt -> unit) -> block -> unit
(** Visit every statement, preorder. *)
