(** Source locations for MiniC programs.

    Buggy applications are authored in MiniC (see {!Buggy_apps} in
    [csod_apps]); their overflow reports must name file and line exactly as
    the paper's Figure 6 report names [ssl/t1_lib.c:2588].  A location is
    therefore file + line (+ column for diagnostics). *)

type t = { file : string; line : int; col : int }

val v : file:string -> line:int -> col:int -> t
val dummy : t
val pp : Format.formatter -> t -> unit
(** Renders as ["file:line"]. *)

val to_string : t -> string
