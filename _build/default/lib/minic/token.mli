(** Lexical tokens of MiniC. *)

type t =
  | INT of int
  | STRING of string
  | IDENT of string
  | KW_FN | KW_VAR | KW_IF | KW_ELSE | KW_WHILE | KW_FOR | KW_RETURN
  | KW_BREAK | KW_CONTINUE
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI
  | ASSIGN                                     (** [=] *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQ | NE                (** [== !=] *)
  | AND | OR | NOT                             (** [&& || !] *)
  | AMP | PIPE | CARET | SHL | SHR             (** bitwise *)
  | EOF

val pp : Format.formatter -> t -> unit
val to_string : t -> string

type spanned = { tok : t; loc : Srcloc.t }
(** A token paired with the location of its first character. *)
