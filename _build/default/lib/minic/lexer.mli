(** Hand-rolled lexer for MiniC.

    Supports decimal and hexadecimal ([0x...]) integer literals, double-
    quoted strings with backslash escapes (n, t, backslash, quote), line
    ([// ...]) and
    block ([/* ... */]) comments, and the token set of {!Token}. *)

exception Lex_error of string * Srcloc.t
(** Unexpected character, unterminated string/comment, or malformed
    literal. *)

val tokenize : file:string -> string -> Token.spanned list
(** [tokenize ~file src] lexes the entire source, ending with an [EOF]
    token.  Raises {!Lex_error} on the first lexical fault. *)
