let check funcs =
  let errors = ref [] in
  let err loc fmt = Printf.ksprintf (fun msg -> errors := (msg, loc) :: !errors) fmt in
  let by_name = Hashtbl.create 64 in
  List.iter
    (fun (f : Ast.func) ->
      if Hashtbl.mem by_name f.fname then
        err f.floc "duplicate function definition '%s'" f.fname
      else Hashtbl.add by_name f.fname f)
    funcs;
  (match Hashtbl.find_opt by_name "main" with
  | None -> err Srcloc.dummy "no 'main' function defined"
  | Some f ->
    if f.params <> [] then err f.floc "'main' must take no parameters");
  let arity_ok (a : Builtins.arity) n =
    match a with
    | Builtins.Exact k -> n = k
    | Builtins.Between (lo, hi) -> n >= lo && n <= hi
    | Builtins.At_least k -> n >= k
  in
  let check_call loc name nargs =
    match Builtins.arity name with
    | Some a ->
      if not (arity_ok a nargs) then
        err loc "builtin '%s' called with %d argument(s)" name nargs
    | None -> (
      match Hashtbl.find_opt by_name name with
      | None -> err loc "call to undefined function '%s'" name
      | Some f ->
        let expected = List.length f.params in
        if nargs <> expected then
          err loc "function '%s' expects %d argument(s), got %d" name expected nargs)
  in
  let check_spawn loc (args : Ast.expr list) =
    match args with
    | { e = Ast.Str target; _ } :: rest -> (
      match Hashtbl.find_opt by_name target with
      | None -> err loc "spawn of undefined function '%s'" target
      | Some f ->
        if List.length f.params <> List.length rest then
          err loc "spawn target '%s' expects %d argument(s), got %d" target
            (List.length f.params) (List.length rest))
    | _ -> err loc "first argument of spawn must be a function-name string"
  in
  (* Scoped variable environment: a stack of scopes per function body. *)
  let check_func (f : Ast.func) =
    let scopes = ref [ Hashtbl.create 16 ] in
    List.iter
      (fun p ->
        if Hashtbl.mem (List.hd !scopes) p then
          err f.floc "duplicate parameter '%s' in function '%s'" p f.fname
        else Hashtbl.add (List.hd !scopes) p ())
      f.params;
    let declared name = List.exists (fun sc -> Hashtbl.mem sc name) !scopes in
    let declare loc name =
      if Hashtbl.mem (List.hd !scopes) name then
        err loc "duplicate declaration of '%s' in the same scope" name
      else Hashtbl.add (List.hd !scopes) name ()
    in
    let push () = scopes := Hashtbl.create 8 :: !scopes in
    let pop () = scopes := List.tl !scopes in
    let rec expr ?(string_ok = false) (e : Ast.expr) =
      match e.e with
      | Ast.Int _ -> ()
      | Ast.Str _ -> if not string_ok then err e.eloc "string literal outside print/spawn"
      | Ast.Var x -> if not (declared x) then err e.eloc "use of undeclared variable '%s'" x
      | Ast.Unop (_, a) -> expr a
      | Ast.Binop (_, a, b) ->
        expr a;
        expr b
      | Ast.Index (a, b) ->
        expr a;
        expr b
      | Ast.Call ("print", args) ->
        check_call e.eloc "print" (List.length args);
        List.iter (expr ~string_ok:true) args
      | Ast.Call ("spawn", args) ->
        check_call e.eloc "spawn" (List.length args);
        check_spawn e.eloc args;
        List.iteri (fun i a -> if i > 0 then expr a) args
      | Ast.Call (name, args) ->
        check_call e.eloc name (List.length args);
        List.iter expr args
    in
    let rec stmt ~in_loop (st : Ast.stmt) =
      match st.s with
      | Ast.Decl (x, e) ->
        expr e;
        declare st.sloc x
      | Ast.Assign (x, e) ->
        if not (declared x) then err st.sloc "assignment to undeclared variable '%s'" x;
        expr e
      | Ast.Store (p, i, v) ->
        expr p;
        expr i;
        expr v
      | Ast.If (c, b1, b2) ->
        expr c;
        block ~in_loop b1;
        block ~in_loop b2
      | Ast.While (c, b) ->
        expr c;
        block ~in_loop:true b
      | Ast.For (init, c, step, b) ->
        push ();
        stmt ~in_loop init;
        expr c;
        block ~in_loop:true b;
        stmt ~in_loop:true step;
        pop ()
      | Ast.Return None -> ()
      | Ast.Return (Some e) -> expr e
      | Ast.Break -> if not in_loop then err st.sloc "'break' outside a loop"
      | Ast.Continue -> if not in_loop then err st.sloc "'continue' outside a loop"
      | Ast.Expr e -> expr e
    and block ~in_loop stmts =
      push ();
      List.iter (stmt ~in_loop) stmts;
      pop ()
    in
    block ~in_loop:false f.body
  in
  List.iter check_func funcs;
  List.rev !errors
