exception Lex_error of string * Srcloc.t

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let loc st = Srcloc.v ~file:st.file ~line:st.line ~col:st.col

let error st msg = raise (Lex_error (msg, loc st))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let keyword = function
  | "fn" -> Some Token.KW_FN
  | "var" -> Some Token.KW_VAR
  | "if" -> Some Token.KW_IF
  | "else" -> Some Token.KW_ELSE
  | "while" -> Some Token.KW_WHILE
  | "for" -> Some Token.KW_FOR
  | "return" -> Some Token.KW_RETURN
  | "break" -> Some Token.KW_BREAK
  | "continue" -> Some Token.KW_CONTINUE
  | _ -> None

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
    while peek st <> None && peek st <> Some '\n' do advance st done;
    skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
    advance st;
    advance st;
    let rec go () =
      match (peek st, peek2 st) with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | None, _ -> error st "unterminated block comment"
      | _ ->
        advance st;
        go ()
    in
    go ();
    skip_trivia st
  | _ -> ()

let lex_number st =
  let start = st.pos in
  if peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X') then begin
    advance st;
    advance st;
    let hstart = st.pos in
    while (match peek st with Some c -> is_hex c | None -> false) do advance st done;
    if st.pos = hstart then error st "malformed hexadecimal literal";
    int_of_string (String.sub st.src start (st.pos - start))
  end
  else begin
    while (match peek st with Some c -> is_digit c | None -> false) do advance st done;
    int_of_string (String.sub st.src start (st.pos - start))
  end

let lex_string st =
  advance st; (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some 'n' -> Buffer.add_char buf '\n'; advance st
      | Some 't' -> Buffer.add_char buf '\t'; advance st
      | Some '\\' -> Buffer.add_char buf '\\'; advance st
      | Some '"' -> Buffer.add_char buf '"'; advance st
      | Some c -> error st (Printf.sprintf "unknown escape '\\%c'" c)
      | None -> error st "unterminated escape");
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident c | None -> false) do advance st done;
  String.sub st.src start (st.pos - start)

let next_token st : Token.spanned =
  skip_trivia st;
  let l = loc st in
  let simple tok = advance st; { Token.tok; loc = l } in
  let two tok = advance st; advance st; { Token.tok; loc = l } in
  match peek st with
  | None -> { Token.tok = EOF; loc = l }
  | Some c when is_digit c -> { Token.tok = INT (lex_number st); loc = l }
  | Some c when is_ident_start c ->
    let id = lex_ident st in
    let tok = match keyword id with Some kw -> kw | None -> Token.IDENT id in
    { Token.tok; loc = l }
  | Some '"' -> { Token.tok = STRING (lex_string st); loc = l }
  | Some '(' -> simple LPAREN
  | Some ')' -> simple RPAREN
  | Some '{' -> simple LBRACE
  | Some '}' -> simple RBRACE
  | Some '[' -> simple LBRACKET
  | Some ']' -> simple RBRACKET
  | Some ',' -> simple COMMA
  | Some ';' -> simple SEMI
  | Some '+' -> simple PLUS
  | Some '-' -> simple MINUS
  | Some '*' -> simple STAR
  | Some '/' -> simple SLASH
  | Some '%' -> simple PERCENT
  | Some '^' -> simple CARET
  | Some '=' -> if peek2 st = Some '=' then two EQ else simple ASSIGN
  | Some '!' -> if peek2 st = Some '=' then two NE else simple NOT
  | Some '<' ->
    if peek2 st = Some '=' then two LE
    else if peek2 st = Some '<' then two SHL
    else simple LT
  | Some '>' ->
    if peek2 st = Some '=' then two GE
    else if peek2 st = Some '>' then two SHR
    else simple GT
  | Some '&' -> if peek2 st = Some '&' then two AND else simple AMP
  | Some '|' -> if peek2 st = Some '|' then two OR else simple PIPE
  | Some c -> error st (Printf.sprintf "unexpected character '%c'" c)

let tokenize ~file src =
  let st = { src; file; pos = 0; line = 1; col = 1 } in
  let rec go acc =
    let t = next_token st in
    if t.Token.tok = EOF then List.rev (t :: acc) else go (t :: acc)
  in
  go []
