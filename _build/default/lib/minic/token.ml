type t =
  | INT of int
  | STRING of string
  | IDENT of string
  | KW_FN | KW_VAR | KW_IF | KW_ELSE | KW_WHILE | KW_FOR | KW_RETURN
  | KW_BREAK | KW_CONTINUE
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI
  | ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | LT | LE | GT | GE | EQ | NE
  | AND | OR | NOT
  | AMP | PIPE | CARET | SHL | SHR
  | EOF

let to_string = function
  | INT n -> string_of_int n
  | STRING s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW_FN -> "fn" | KW_VAR -> "var" | KW_IF -> "if" | KW_ELSE -> "else"
  | KW_WHILE -> "while" | KW_FOR -> "for" | KW_RETURN -> "return"
  | KW_BREAK -> "break" | KW_CONTINUE -> "continue"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | COMMA -> "," | SEMI -> ";"
  | ASSIGN -> "="
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">=" | EQ -> "==" | NE -> "!="
  | AND -> "&&" | OR -> "||" | NOT -> "!"
  | AMP -> "&" | PIPE -> "|" | CARET -> "^" | SHL -> "<<" | SHR -> ">>"
  | EOF -> "<eof>"

let pp ppf t = Format.pp_print_string ppf (to_string t)

type spanned = { tok : t; loc : Srcloc.t }
